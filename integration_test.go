// Cross-module integration tests: the full pipeline from a serialized
// overlay trace through augmentation, simulation of both switch
// algorithms, aggregation, and figure formatting — the path cmd/sweep
// exercises, as a test.
package gossipstream_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"gossipstream/internal/experiment"
	"gossipstream/internal/metrics"
	"gossipstream/internal/overlay"
	"gossipstream/internal/sim"
	"gossipstream/internal/trace"
)

// TestPipelineTraceToFigures drives a trace file through every layer.
func TestPipelineTraceToFigures(t *testing.T) {
	// 1. Synthesize, serialize, re-parse — the tracegen round trip.
	tr := trace.Synthesize("integration", 150, 1, 314)
	var wire bytes.Buffer
	if err := tr.Write(&wire); err != nil {
		t.Fatal(err)
	}
	parsed, err := trace.Parse(&wire)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Build and prepare the overlay exactly as Section 5.1 prescribes.
	g, err := parsed.Graph()
	if err != nil {
		t.Fatal(err)
	}
	overlay.AugmentMinDegree(g, 5, rand.New(rand.NewSource(314)))
	if g.MinDegree() < 5 || !g.Connected() {
		t.Fatal("augmented overlay unhealthy")
	}

	// 3. Run the measured switch under both algorithms on clones.
	runOne := func(factory sim.AlgorithmFactory) *sim.Result {
		s, err := sim.New(sim.Config{
			Graph:           g.Clone(),
			Seed:            314,
			NewAlgorithm:    factory,
			WarmupTicks:     30,
			JoinSpreadTicks: 15,
			HorizonTicks:    150,
			FirstSource:     -1,
			NewSource:       -1,
			SharedOutbound:  true,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := runOne(sim.Fast)
	normal := runOne(sim.Normal)
	if fast.UnpreparedS2 > 0 || normal.UnpreparedS2 > 0 {
		t.Fatalf("incomplete switch: fast=%d normal=%d unprepared",
			fast.UnpreparedS2, normal.UnpreparedS2)
	}

	// 4. Aggregate and format as the sweep harness does.
	rows := metrics.AggregateBySize([]metrics.PairSample{{
		N: 150, Seed: 314, Fast: fast, Normal: normal,
	}})
	if len(rows) != 1 || rows[0].N != 150 {
		t.Fatalf("aggregation wrong: %+v", rows)
	}
	table := experiment.FormatSwitchTime(rows, false)
	if !strings.Contains(table, "150") || !strings.Contains(table, "%") {
		t.Fatalf("formatting broken:\n%s", table)
	}
}

// TestPipelineWorkloadSweepShapes checks the reproduction's headline
// shapes end-to-end at test scale, averaged over replicas: fast prepares
// S2 sooner, overheads match to a small margin, and the bit accounting is
// consistent with the 620-bit map / 30 kb segment arithmetic.
func TestPipelineWorkloadSweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation integration test")
	}
	w := experiment.Paper()
	w.Sizes = []int{200}
	w.SeedsPerSize = 3
	w.WarmupTicks = 35
	w.JoinSpreadTicks = 20
	samples, err := w.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	rows := metrics.AggregateBySize(samples)
	r := rows[0]
	if r.FastPrepareS2 >= r.NormalPrepareS2 {
		t.Errorf("fast prepare %.2f not below normal %.2f (averaged over %d replicas)",
			r.FastPrepareS2, r.NormalPrepareS2, r.Samples)
	}
	if r.FastOverhead <= 0 || r.NormalOverhead <= 0 {
		t.Error("overhead accounting missing")
	}
	if diff := r.FastOverhead - r.NormalOverhead; diff > 0.004 || diff < -0.004 {
		t.Errorf("overheads diverge: fast %.4f vs normal %.4f", r.FastOverhead, r.NormalOverhead)
	}
	for _, s := range samples {
		for _, res := range []*sim.Result{s.Fast, s.Normal} {
			if res.ControlBits%620 != 0 {
				t.Errorf("control bits %d not in 620-bit units", res.ControlBits)
			}
			if res.DataBits%(30*1024) != 0 {
				t.Errorf("data bits %d not in 30kb units", res.DataBits)
			}
		}
	}
}

// TestPipelineDynamicMatchesStaticDirection verifies the Figures 9-12
// claim at test scale: the dynamic environment preserves the fast-vs-
// normal direction.
func TestPipelineDynamicMatchesStaticDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation integration test")
	}
	w := experiment.Paper()
	w.Sizes = []int{200}
	w.SeedsPerSize = 3
	w.Churn = true
	w.WarmupTicks = 35
	w.JoinSpreadTicks = 20
	samples, err := w.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	r := metrics.AggregateBySize(samples)[0]
	if r.FastPrepareS2 >= r.NormalPrepareS2 {
		t.Errorf("dynamic: fast prepare %.2f not below normal %.2f",
			r.FastPrepareS2, r.NormalPrepareS2)
	}
}
