// Command bench is the repo's perf-trajectory harness: it runs the
// engine benchmarks (the same workloads as BenchmarkEngineParallel and
// BenchmarkScenario in bench_test.go, at fixed iteration counts so
// captures stay comparable), captures a per-phase timing/allocation
// breakdown of the hot path, and APPENDS the results to
// BENCH_engine.json — one entry per capture, never rewriting history.
// The file is a trajectory, not a snapshot: reading it top to bottom
// replays how engine cost moved PR over PR.
//
//	go run ./cmd/bench                 # append a capture to BENCH_engine.json
//	go run ./cmd/bench -dry            # print the entry instead of appending
//	go run ./cmd/bench -label "PR 6"   # tag the entry
//
// Rows that cannot produce a meaningful number on this machine (the
// workers=GOMAXPROCS variants on a single-CPU runner, where the parallel
// engine degenerates to a serial re-run) are recorded as explicitly
// skipped with a machine-emitted reason, so a missing measurement is
// never mistaken for a measured speedup of 1.0.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"gossipstream/internal/experiment"
	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
)

// engineSizes are the tick-benchmark scales with their fixed warm-up
// iteration counts. Iterations are load-bearing for comparability: the
// workload times b.N-style warm-up ticks from a cold start, so a deeper
// run amortizes more of the early growth. n=100000 is the headline scale
// (10x keeps the harness under a couple of minutes on one core).
var engineSizes = []struct {
	n, iters int
}{
	{1000, 30},
	{10000, 30},
	{100000, 10},
}

const scenarioIters = 10

type hostInfo struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Go         string `json:"go"`
}

type benchRow struct {
	Name       string  `json:"name"`
	N          int     `json:"n,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	Iters      int     `json:"iters,omitempty"`
	NsPerOp    int64   `json:"ns_per_op,omitempty"`
	BytesPerOp uint64  `json:"bytes_per_op,omitempty"`
	AllocsOp   uint64  `json:"allocs_per_op,omitempty"`
	PrepMean   float64 `json:"s_prepare_mean,omitempty"`
	Skipped    string  `json:"skipped,omitempty"`
}

type phaseRow struct {
	Name   string `json:"name"`
	Ns     int64  `json:"ns"`
	Bytes  uint64 `json:"bytes"`
	Allocs uint64 `json:"allocs"`
}

type entry struct {
	Label    string     `json:"label,omitempty"`
	Captured string     `json:"captured"`
	GitRev   string     `json:"git_rev"`
	Host     hostInfo   `json:"host"`
	Rows     []benchRow `json:"benchmarks"`
	// Phases is the per-phase breakdown of one instrumented run
	// (n=10000, workers=1, 30 ticks with engine memory capture on);
	// ns/bytes/allocs are totals over those ticks.
	PhaseN     int        `json:"phase_capture_n,omitempty"`
	PhaseTicks int64      `json:"phase_capture_ticks,omitempty"`
	Phases     []phaseRow `json:"phases,omitempty"`
}

// trajectory is the whole BENCH_engine.json file. Entries are kept as
// raw JSON so appending never re-marshals (and so never corrupts) what
// earlier captures wrote.
type trajectory struct {
	Note    string            `json:"note"`
	Entries []json.RawMessage `json:"entries"`
}

const trajectoryNote = "Append-only engine perf trajectory: one entry per capture, oldest first, written by cmd/bench (go run ./cmd/bench). ns_per_op for the engine rows is the cost of ONE scheduling period of an N-node system under the Fast switch algorithm, shared-outbound substrate, measured over `iters` warm-up ticks from a cold start; the scenario row is one COMPLETE serial-handoff-chain run (3 measured switches, N=200). The engine's determinism contract makes runs bit-identical at any worker count, so ns_per_op across workers variants is a pure speedup measurement. Rows with a `skipped` field were not measurable on the capturing machine (reason recorded); phases is the per-phase timing/alloc breakdown of one instrumented run."

func main() {
	var (
		out   = flag.String("out", "BENCH_engine.json", "trajectory file to append to")
		label = flag.String("label", "", "optional label recorded on the entry")
		dry   = flag.Bool("dry", false, "print the capture as JSON instead of appending it")
	)
	flag.Parse()

	e := capture(*label)

	raw, err := json.MarshalIndent(e, "    ", "  ")
	if err != nil {
		fatal(err)
	}
	if *dry {
		fmt.Println(string(raw))
		return
	}
	if err := appendEntry(*out, raw); err != nil {
		fatal(err)
	}
	fmt.Printf("bench: appended capture %s (%d rows) to %s\n", e.Captured, len(e.Rows), *out)
}

func capture(label string) entry {
	e := entry{
		Label:    label,
		Captured: time.Now().UTC().Format(time.RFC3339),
		GitRev:   gitRev(),
		Host: hostInfo{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Go:         runtime.Version(),
		},
	}

	workerVariants := []int{1, runtime.GOMAXPROCS(0)}
	for _, size := range engineSizes {
		for vi, workers := range workerVariants {
			name := fmt.Sprintf("engine/n=%d/workers=%d", size.n, workers)
			if vi == 1 && workers == 1 {
				// The parallel variant on a 1-CPU machine re-runs the
				// serial engine: record the gap, not a fake speedup.
				e.Rows = append(e.Rows, benchRow{
					Name:    fmt.Sprintf("engine/n=%d/workers=GOMAXPROCS", size.n),
					Skipped: "GOMAXPROCS=1: the parallel variant degenerates to the serial engine on this machine; capture on a multi-core host to measure speedup",
				})
				continue
			}
			fmt.Fprintf(os.Stderr, "bench: %s (%dx)...\n", name, size.iters)
			row, err := engineRow(name, size.n, workers, size.iters)
			if err != nil {
				fatal(err)
			}
			e.Rows = append(e.Rows, row)
		}
	}

	for vi, workers := range workerVariants {
		if vi == 1 && workers == 1 {
			e.Rows = append(e.Rows, benchRow{
				Name:    "scenario/serial-handoff-chain/workers=GOMAXPROCS",
				Skipped: "GOMAXPROCS=1: the parallel variant degenerates to the serial engine on this machine; capture on a multi-core host to measure speedup",
			})
			continue
		}
		name := fmt.Sprintf("scenario/serial-handoff-chain/workers=%d", workers)
		fmt.Fprintf(os.Stderr, "bench: %s (%dx)...\n", name, scenarioIters)
		row, err := scenarioRow(name, workers, scenarioIters)
		if err != nil {
			fatal(err)
		}
		e.Rows = append(e.Rows, row)
	}

	fmt.Fprintf(os.Stderr, "bench: phase capture (n=10000, workers=1, 30 ticks)...\n")
	phases, ticks, err := phaseCapture(10000, 1, 30)
	if err != nil {
		fatal(err)
	}
	e.PhaseN, e.PhaseTicks, e.Phases = 10000, ticks, phases
	return e
}

// engineCfg builds the BenchmarkEngineParallel workload: n nodes on the
// paper's synthesized topology, Fast algorithm, shared outbound, iters
// warm-up ticks (cold start, staggered arrivals) + a 1-tick horizon.
func engineCfg(n, workers, iters int) (sim.Config, error) {
	w := experiment.Paper()
	g, err := w.Topology(n, 0)
	if err != nil {
		return sim.Config{}, err
	}
	return sim.Config{
		Graph: g, Seed: 1, NewAlgorithm: sim.Fast,
		FirstSource: -1, NewSource: -1, SharedOutbound: true,
		WarmupTicks: iters, HorizonTicks: 1, JoinSpreadTicks: 10,
		Workers: workers,
	}, nil
}

// engineRow times one engine workload: wall clock and MemStats deltas
// around the run, divided by the iteration count — the same quantity
// `go test -bench BenchmarkEngineParallel -benchtime <iters>x` reports.
func engineRow(name string, n, workers, iters int) (benchRow, error) {
	cfg, err := engineCfg(n, workers, iters)
	if err != nil {
		return benchRow{}, err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return benchRow{}, err
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if _, err := s.Run(); err != nil {
		return benchRow{}, err
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return benchRow{
		Name: name, N: n, Workers: workers, Iters: iters,
		NsPerOp:    elapsed.Nanoseconds() / int64(iters),
		BytesPerOp: (m1.TotalAlloc - m0.TotalAlloc) / uint64(iters),
		AllocsOp:   (m1.Mallocs - m0.Mallocs) / uint64(iters),
	}, nil
}

// scenarioRow times complete serial-handoff-chain runs (the
// BenchmarkScenario workload): one op is a whole 3-switch run including
// topology synthesis.
func scenarioRow(name string, workers, iters int) (benchRow, error) {
	sc := scenario.SerialHandoffChain().Scaled(200)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	var prep float64
	start := time.Now()
	for i := 0; i < iters; i++ {
		cfg, err := sc.Config(sim.Fast)
		if err != nil {
			return benchRow{}, err
		}
		cfg.Workers = workers
		s, err := sim.New(cfg)
		if err != nil {
			return benchRow{}, err
		}
		res, err := s.Run()
		if err != nil {
			return benchRow{}, err
		}
		if len(res.Windows) != 3 {
			return benchRow{}, fmt.Errorf("scenario run %d: windows = %d, want 3", i, len(res.Windows))
		}
		prep = 0
		for _, w := range res.Windows {
			prep += w.AvgPrepareS2()
		}
		prep /= 3
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return benchRow{
		Name: name, N: 200, Workers: workers, Iters: iters,
		NsPerOp:    elapsed.Nanoseconds() / int64(iters),
		BytesPerOp: (m1.TotalAlloc - m0.TotalAlloc) / uint64(iters),
		AllocsOp:   (m1.Mallocs - m0.Mallocs) / uint64(iters),
		PrepMean:   prep,
	}, nil
}

// phaseCapture runs the engine workload with per-phase memory capture
// enabled (engine.Pipeline.CaptureMem) and returns the breakdown. Run
// separately from the timing rows — the per-phase ReadMemStats calls
// perturb wall clock, so their numbers never mix.
func phaseCapture(n, workers, iters int) ([]phaseRow, int64, error) {
	cfg, err := engineCfg(n, workers, iters)
	if err != nil {
		return nil, 0, err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	s.CapturePhaseMem(true)
	if _, err := s.Run(); err != nil {
		return nil, 0, err
	}
	var rows []phaseRow
	for _, t := range s.PhaseTimings() {
		rows = append(rows, phaseRow{Name: t.Name, Ns: t.Total.Nanoseconds(), Bytes: t.Bytes, Allocs: t.Allocs})
	}
	return rows, int64(iters), nil
}

// appendEntry loads the trajectory (migrating a legacy single-snapshot
// file into entry 0), appends the new capture, and rewrites the file.
func appendEntry(path string, raw json.RawMessage) error {
	var tr trajectory
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		tr.Note = trajectoryNote
	case err != nil:
		return err
	default:
		if jerr := json.Unmarshal(data, &tr); jerr != nil {
			return fmt.Errorf("parse %s: %w", path, jerr)
		}
		if len(tr.Entries) == 0 && strings.Contains(string(data), "\"benchmarks\"") {
			// Legacy single-snapshot format: preserve it verbatim as the
			// trajectory's first entry.
			tr.Entries = append(tr.Entries, json.RawMessage(data))
			tr.Note = trajectoryNote
		}
	}
	tr.Entries = append(tr.Entries, raw)
	out, err := json.MarshalIndent(&tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// gitRev best-effort resolves the current commit (dirty trees get a
// "+dirty" suffix); "unknown" when git is unavailable.
func gitRev() string {
	rev, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	r := strings.TrimSpace(string(rev))
	if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil && len(strings.TrimSpace(string(st))) > 0 {
		r += "+dirty"
	}
	return r
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "bench: %v\n", err)
	os.Exit(1)
}
