// Command switchsim runs one gossip-streaming source-switch simulation and
// prints its metrics: the paper's Section 5 setup on a single synthesized
// overlay, with every knob exposed as a flag.
//
// Examples:
//
//	switchsim -n 1000 -algo fast
//	switchsim -n 1000 -algo both -ratios
//	switchsim -n 500 -algo both -churn -seed 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"gossipstream/internal/overlay"
	"gossipstream/internal/plot"
	"gossipstream/internal/sim"
	"gossipstream/internal/trace"
)

func main() {
	var (
		n       = flag.Int("n", 1000, "overlay size (nodes)")
		algo    = flag.String("algo", "both", "scheduler: fast, normal or both")
		seed    = flag.Int64("seed", 1, "run seed (topology and simulation)")
		m       = flag.Int("m", 5, "neighbors per node after augmentation (M)")
		warmup  = flag.Int("warmup", 40, "warm-up periods before the switch")
		spread  = flag.Int("spread", 25, "arrival stagger during warm-up (periods)")
		horizon = flag.Int("horizon", 300, "post-switch measurement horizon (periods)")
		qs      = flag.Int("qs", 50, "segments of S2 required to start playback (Qs)")
		churn   = flag.Bool("churn", false, "dynamic environment: 5% leave/join per period")
		perLink = flag.Bool("perlink", false, "per-link outbound capacity instead of shared")
		ratios  = flag.Bool("ratios", false, "track and draw the Figure 5/9 ratio curves")
		workers = flag.Int("workers", 0, "engine workers (0/1 = serial engine, <0 = GOMAXPROCS); results are identical at any setting")
		timings = flag.Bool("timings", false, "print the per-phase wall-clock and allocation breakdown")
	)
	flag.Parse()

	run := func(factory sim.AlgorithmFactory) (*sim.Result, error) {
		tr := trace.Synthesize("cli", *n, 1, *seed)
		g, err := tr.Graph()
		if err != nil {
			return nil, err
		}
		overlay.AugmentMinDegree(g, *m, rand.New(rand.NewSource(*seed^0xa06)))
		cfg := sim.Config{
			Graph:           g,
			Seed:            *seed,
			NewAlgorithm:    factory,
			WarmupTicks:     *warmup,
			JoinSpreadTicks: *spread,
			HorizonTicks:    *horizon,
			Qs:              *qs,
			FirstSource:     -1,
			NewSource:       -1,
			SharedOutbound:  !*perLink,
			TrackRatios:     *ratios,
			Workers:         *workers,
		}
		if *churn {
			cfg.Churn = &sim.ChurnConfig{LeaveFraction: 0.05, JoinFraction: 0.05}
		}
		s, err := sim.New(cfg)
		if err != nil {
			return nil, err
		}
		s.CapturePhaseMem(*timings)
		res, err := s.Run()
		if err != nil {
			return nil, err
		}
		if *timings {
			fmt.Printf("  phase timings (%d workers):\n", s.Workers())
			for _, t := range s.PhaseTimings() {
				fmt.Printf("    %-10s %12v %14d B %10d allocs\n", t.Name, t.Total, t.Bytes, t.Allocs)
			}
		}
		return res, nil
	}

	factories := map[string]sim.AlgorithmFactory{}
	switch *algo {
	case "fast":
		factories["fast"] = sim.Fast
	case "normal":
		factories["normal"] = sim.Normal
	case "both":
		factories["fast"] = sim.Fast
		factories["normal"] = sim.Normal
	default:
		fmt.Fprintf(os.Stderr, "switchsim: unknown -algo %q (want fast, normal or both)\n", *algo)
		os.Exit(2)
	}

	results := map[string]*sim.Result{}
	for _, name := range []string{"normal", "fast"} {
		factory, ok := factories[name]
		if !ok {
			continue
		}
		res, err := run(factory)
		if err != nil {
			fmt.Fprintf(os.Stderr, "switchsim: %v\n", err)
			os.Exit(1)
		}
		results[name] = res
		fmt.Printf("%s:\n", name)
		fmt.Printf("  nodes=%d cohort=%d measured=%ds hitHorizon=%v\n",
			res.Nodes, res.Cohort, res.MeasuredTicks, res.HitHorizon)
		fmt.Printf("  avg finish S1  = %6.2f s   (max %6.2f s, unfinished %d)\n",
			res.AvgFinishS1(), res.MaxFinishS1(), res.UnfinishedS1)
		fmt.Printf("  avg prepare S2 = %6.2f s   (max %6.2f s, unprepared %d)\n",
			res.AvgPrepareS2(), res.MaxPrepareS2(), res.UnpreparedS2)
		fmt.Printf("  avg start S2   = %6.2f s\n", res.AvgStartS2())
		fmt.Printf("  overhead       = %6.4f    (control %d bits / data %d bits)\n",
			res.Overhead(), res.ControlBits, res.DataBits)
		fmt.Printf("  continuity     = %6.4f    (%d segments played, %d slots stalled)\n",
			res.Continuity(), res.PlayedSegments, res.StalledSlots)
		if *ratios && res.UndeliveredS1 != nil {
			res.UndeliveredS1.Label = name + ": undelivered S1"
			res.DeliveredS2.Label = name + ": delivered S2"
			fmt.Println(plot.Line("ratio track", 64, 12, res.UndeliveredS1, res.DeliveredS2))
		}
	}

	if fast, ok := results["fast"]; ok {
		if normal, ok := results["normal"]; ok {
			red := (normal.AvgPrepareS2() - fast.AvgPrepareS2()) / normal.AvgPrepareS2()
			fmt.Printf("\nswitch-time reduction (fast vs normal): %.1f%%\n", red*100)
		}
	}
}
