// Command scenario runs event-scripted simulations: declarative
// timelines of source handoffs and crashes, churn bursts, flash crowds
// and bandwidth shifts, each switch reporting its own metrics block.
// Scenarios come from the bundled library (-name, -list) or a plain-text
// file (-f; -dump prints the canonical form of any scenario).
//
// Examples:
//
//	scenario -list
//	scenario -name serial-handoff-chain
//	scenario -name churn-storm -algo both -n 200
//	scenario -f conf.scn -workers -1 -timings
//	scenario -name source-crash -dump > crash.scn
//	scenario -compare -n 150 # fast-vs-normal table over the whole library
//	scenario -smoke          # run every bundled scenario small (CI)
//	scenario -gen -seed 42   # synthesize a valid scenario from a seed
//	scenario -gen -seed 42 | scenario -f /dev/stdin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gossipstream/internal/experiment"
	"gossipstream/internal/obs"
	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
)

func main() {
	var (
		file    = flag.String("f", "", "scenario file to run (see internal/scenario for the format)")
		name    = flag.String("name", "", "bundled scenario to run (see -list)")
		list    = flag.Bool("list", false, "list the bundled scenarios")
		dump    = flag.Bool("dump", false, "print the selected scenario's canonical text instead of running it")
		algo    = flag.String("algo", "fast", "scheduler: fast, normal or both")
		n       = flag.Int("n", 0, "override the overlay size (crowd batches rescale proportionally)")
		seed    = flag.Int64("seed", 0, "override the scenario seed (0 keeps the file's)")
		workers = flag.Int("workers", 0, "engine workers (0/1 = serial engine, <0 = GOMAXPROCS); results are identical at any setting")
		timings = flag.Bool("timings", false, "print the per-phase wall-clock and allocation breakdown")
		smoke   = flag.Bool("smoke", false, "run every bundled scenario at small scale and verify its windows (CI guard)")
		compare = flag.Bool("compare", false, "sweep fast vs normal over the whole bundled library (experiment.ScenarioSweep)")
		gen     = flag.Bool("gen", false, "synthesize a scenario from -seed (with -n as the overlay size) and print its canonical text")

		traceFile   = flag.String("trace", "", "write a structured JSONL run trace to this file (schema: docs/OBSERVABILITY.md)")
		chromeFile  = flag.String("trace-chrome", "", "write engine per-phase spans in Chrome trace-event format (open in chrome://tracing or ui.perfetto.dev)")
		timingsJSON = flag.String("timings-json", "", `write the per-phase timing breakdown as JSON to this file ("-" for stdout)`)
		validate    = flag.String("validate-trace", "", "validate a JSONL trace file against the schema and exit (CI guard)")
	)
	flag.Parse()

	if *validate != "" {
		f, err := os.Open(*validate)
		if err != nil {
			fatal(err)
		}
		n, err := obs.ValidateTrace(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", *validate, err))
		}
		fmt.Printf("trace ok: %d events\n", n)
		return
	}

	if *list {
		for _, sc := range scenario.Library() {
			fmt.Printf("%-22s n=%-5d events=%-2d %s\n", sc.Name, sc.Nodes, len(sc.Events), sc.Desc)
		}
		return
	}
	if *smoke {
		runSmoke()
		return
	}
	if *gen {
		// The generator is deterministic: the same -seed (and -n) prints
		// byte-identical text on every run, so a seed is a shareable,
		// reproducible scenario reference.
		sc := scenario.Generate(scenario.GenOptions{Seed: *seed, Nodes: *n})
		if err := sc.Write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *compare {
		scs := scenario.Library()
		if *n > 0 {
			for i, sc := range scs {
				scs[i] = sc.Scaled(*n)
			}
		}
		outcomes, err := experiment.ScenarioSweep{Scenarios: scs, SimWorkers: *workers}.Run()
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiment.FormatScenarioSweep(outcomes))
		return
	}

	sc := load(*file, *name)
	if *n > 0 {
		sc = sc.Scaled(*n)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *dump {
		if err := sc.Write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	factories := map[string]sim.AlgorithmFactory{}
	switch *algo {
	case "fast":
		factories["fast"] = sim.Fast
	case "normal":
		factories["normal"] = sim.Normal
	case "both":
		factories["fast"] = sim.Fast
		factories["normal"] = sim.Normal
	default:
		fmt.Fprintf(os.Stderr, "scenario: unknown -algo %q (want fast, normal or both)\n", *algo)
		os.Exit(2)
	}

	o, err := buildObs(*traceFile, *chromeFile)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("scenario %s: %s\n", sc.Name, sc.Desc)
	fmt.Printf("  nodes=%d seed=%d events=%d\n\n", sc.Nodes, sc.Seed, len(sc.Events))
	var timingOut []runTimings
	for _, algoName := range []string{"normal", "fast"} {
		factory, ok := factories[algoName]
		if !ok {
			continue
		}
		cfg, err := sc.Config(factory)
		if err != nil {
			fatal(err)
		}
		cfg.Workers = *workers
		cfg.Obs = o
		s, err := sim.New(cfg)
		if err != nil {
			fatal(err)
		}
		s.CapturePhaseMem(*timings || *timingsJSON != "")
		// The run-start line carries the run's identity; the simulation
		// emits the per-tick stream and the closing run-end itself.
		o.Tracer().Emit(obs.TraceEvent{T: obs.EvRunStart,
			Scenario: sc.Name, Algo: algoName, Nodes: sc.Nodes, Seed: sc.Seed})
		res, err := s.Run()
		if err != nil {
			fatal(err)
		}
		printResult(algoName, res)
		if *timings {
			fmt.Printf("  phase timings (%d workers):\n", s.Workers())
			for _, t := range s.PhaseTimings() {
				fmt.Printf("    %-10s %12v %14d B %10d allocs\n", t.Name, t.Total, t.Bytes, t.Allocs)
			}
		}
		if *timingsJSON != "" {
			rt := runTimings{Scenario: sc.Name, Algo: algoName, Workers: s.Workers()}
			for _, t := range s.PhaseTimings() {
				rt.Phases = append(rt.Phases, phaseTimingJSON{
					Phase: t.Name, NS: t.Total.Nanoseconds(), Bytes: t.Bytes, Allocs: t.Allocs})
			}
			timingOut = append(timingOut, rt)
		}
		fmt.Println()
	}
	if err := o.Close(); err != nil {
		fatal(err)
	}
	if *timingsJSON != "" {
		if err := writeTimingsJSON(*timingsJSON, timingOut); err != nil {
			fatal(err)
		}
	}
}

// runTimings is the machine-readable form of one run's -timings table
// (the -timings-json output is an array of these, one per algorithm).
type runTimings struct {
	Scenario string            `json:"scenario"`
	Algo     string            `json:"algo"`
	Workers  int               `json:"workers"`
	Phases   []phaseTimingJSON `json:"phases"`
}

type phaseTimingJSON struct {
	Phase  string `json:"phase"`
	NS     int64  `json:"ns"`
	Bytes  uint64 `json:"bytes"`
	Allocs uint64 `json:"allocs"`
}

// buildObs assembles the run's observability bundle from the trace
// flags; both empty means disabled (a nil *Obs).
func buildObs(traceFile, chromeFile string) (*obs.Obs, error) {
	if traceFile == "" && chromeFile == "" {
		return nil, nil
	}
	o := &obs.Obs{Reg: obs.NewRegistry()}
	if traceFile != "" {
		tr, err := obs.OpenTrace(traceFile)
		if err != nil {
			return nil, err
		}
		o.Trace = tr
	}
	if chromeFile != "" {
		ch, err := obs.OpenChrome(chromeFile)
		if err != nil {
			return nil, err
		}
		o.Chrome = ch
	}
	return o, nil
}

func writeTimingsJSON(path string, out []runTimings) error {
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// load resolves the scenario source: a file, a bundled name, or an error.
func load(file, name string) *scenario.Scenario {
	switch {
	case file != "" && name != "":
		fmt.Fprintln(os.Stderr, "scenario: -f and -name are mutually exclusive")
		os.Exit(2)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sc, err := scenario.Parse(f)
		if err != nil {
			fatal(err)
		}
		return sc
	case name != "":
		sc := scenario.Lookup(name)
		if sc == nil {
			fmt.Fprintf(os.Stderr, "scenario: unknown scenario %q (see -list)\n", name)
			os.Exit(2)
		}
		return sc
	}
	fmt.Fprintln(os.Stderr, "scenario: need -f, -name, -list or -smoke")
	os.Exit(2)
	return nil
}

// printResult renders one run's per-window metric blocks in the report
// format shared with cmd/live (internal/scenario.FormatResult).
func printResult(algoName string, res *sim.Result) {
	scenario.FormatResult(os.Stdout, algoName, res)
}

// runSmoke executes every bundled scenario at small scale and fails loudly
// when a window comes back empty or the result flunks the run-invariant
// checker — the CI guard against scenario rot.
func runSmoke() {
	failed := false
	for _, sc := range scenario.Library() {
		small := sc.Scaled(120)
		cfg, err := small.Config(sim.Fast)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario smoke: %s: %v\n", sc.Name, err)
			failed = true
			continue
		}
		s, err := sim.New(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario smoke: %s: %v\n", sc.Name, err)
			failed = true
			continue
		}
		res, err := s.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario smoke: %s: %v\n", sc.Name, err)
			failed = true
			continue
		}
		if err := sim.CheckInvariants(cfg, res); err != nil {
			fmt.Fprintf(os.Stderr, "scenario smoke: %s: invariants: %v\n", sc.Name, err)
			failed = true
			continue
		}
		bad := len(res.Windows) == 0
		for _, w := range res.Windows {
			if w.Cohort == 0 || w.MeasuredTicks == 0 || w.PlayedSegments == 0 ||
				(w.Kind == "switch" && len(w.PrepareS2Times) == 0) {
				bad = true
			}
		}
		status := "ok"
		if bad {
			status = "EMPTY METRICS"
			failed = true
		}
		fmt.Printf("%-22s %-14s windows=%d\n", sc.Name, status, len(res.Windows))
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "scenario: %v\n", err)
	os.Exit(1)
}
