// Command tracegen emits and inspects the synthetic Clip2-style overlay
// trace family standing in for the paper's dead dss.clip2.com crawls.
//
// Examples:
//
//	tracegen -n 1000 > trace1000.txt      # one trace to stdout
//	tracegen -family -dir traces/         # the full 30-trace family
//	tracegen -inspect trace1000.txt       # parse and summarize a trace
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"gossipstream/internal/overlay"
	"gossipstream/internal/trace"
)

func main() {
	var (
		n       = flag.Int("n", 1000, "node count for a single trace")
		attach  = flag.Int("attach", 1, "edges per arriving node")
		seed    = flag.Int64("seed", 20080917, "synthesis seed")
		family  = flag.Bool("family", false, "emit the full 30-trace family")
		dir     = flag.String("dir", ".", "output directory for -family")
		inspect = flag.String("inspect", "", "parse a trace file and print its summary")
		augment = flag.Int("augment", 0, "report post-augmentation stats for this M (0 = skip)")
	)
	flag.Parse()

	switch {
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.Parse(f)
		if err != nil {
			fatal(err)
		}
		summarize(tr, *augment)

	case *family:
		for _, tr := range trace.Family(*seed) {
			path := filepath.Join(*dir, tr.Name+".txt")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := tr.Write(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d nodes, %d edges)\n", path, tr.N(), len(tr.Edges))
		}

	default:
		tr := trace.Synthesize(fmt.Sprintf("clip2-synth-%05d", *n), *n, *attach, *seed)
		if err := tr.Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func summarize(tr *trace.Trace, augmentM int) {
	g, err := tr.Graph()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("trace %s: %d nodes, %d edges, avg degree %.2f, min degree %d, connected=%v\n",
		tr.Name, g.N(), g.M(), g.AvgDegree(), g.MinDegree(), g.Connected())
	if augmentM > 0 {
		overlay.AugmentMinDegree(g, augmentM, rand.New(rand.NewSource(1)))
		fmt.Printf("after augmentation to M=%d: %d edges, avg degree %.2f, connected=%v\n",
			augmentM, g.M(), g.AvgDegree(), g.Connected())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
