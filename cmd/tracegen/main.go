// Command tracegen emits and inspects the synthetic Clip2-style overlay
// trace family standing in for the paper's dead dss.clip2.com crawls.
//
// Examples:
//
//	tracegen -n 1000 > trace1000.txt      # one trace to stdout
//	tracegen -family -dir traces/         # the full 30-trace family
//	tracegen -inspect trace1000.txt       # parse and summarize a trace
//	tracegen -n 500 -ping-mean 300 -ping-sigma 80 > slow.txt
//	                                      # a high-latency regime for netmodel sweeps
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"gossipstream/internal/overlay"
	"gossipstream/internal/trace"
)

func main() {
	var (
		n         = flag.Int("n", 1000, "node count for a single trace")
		attach    = flag.Int("attach", 1, "edges per arriving node")
		seed      = flag.Int64("seed", 20080917, "synthesis seed")
		family    = flag.Bool("family", false, "emit the full 30-trace family")
		dir       = flag.String("dir", ".", "output directory for -family")
		inspect   = flag.String("inspect", "", "parse a trace file and print its summary")
		augment   = flag.Int("augment", 0, "report post-augmentation stats for this M (0 = skip)")
		pingMean  = flag.Float64("ping-mean", 0, "mean of a Gaussian ping-time distribution in ms (0 = the legacy heavy-tailed crawl mix); the netmodel latency-regime knob")
		pingSigma = flag.Float64("ping-sigma", 0, "sigma of the Gaussian ping-time distribution in ms (with -ping-mean)")
	)
	flag.Parse()

	switch {
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.Parse(f)
		if err != nil {
			fatal(err)
		}
		summarize(tr, *augment)

	case *family:
		for _, tr := range trace.FamilyDist(*seed, *pingMean, *pingSigma) {
			path := filepath.Join(*dir, tr.Name+".txt")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := tr.Write(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d nodes, %d edges)\n", path, tr.N(), len(tr.Edges))
		}

	default:
		tr := trace.SynthesizeDist(fmt.Sprintf("clip2-synth-%05d", *n), *n, *attach, *seed, *pingMean, *pingSigma)
		if err := tr.Write(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func summarize(tr *trace.Trace, augmentM int) {
	g, err := tr.Graph()
	if err != nil {
		fatal(err)
	}
	pingSum, pingMax := 0, 0
	for _, nd := range tr.Nodes {
		pingSum += nd.PingMS
		if nd.PingMS > pingMax {
			pingMax = nd.PingMS
		}
	}
	fmt.Printf("trace %s: %d nodes, %d edges, avg degree %.2f, min degree %d, connected=%v\n",
		tr.Name, g.N(), g.M(), g.AvgDegree(), g.MinDegree(), g.Connected())
	fmt.Printf("ping: avg %.1f ms, max %d ms (the netmodel delay substrate)\n",
		float64(pingSum)/float64(len(tr.Nodes)), pingMax)
	if augmentM > 0 {
		overlay.AugmentMinDegree(g, augmentM, rand.New(rand.NewSource(1)))
		fmt.Printf("after augmentation to M=%d: %d edges, avg degree %.2f, connected=%v\n",
			augmentM, g.M(), g.AvgDegree(), g.Connected())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
