// Command live runs event-scripted scenarios as a live system: every
// node a goroutine-backed peer exchanging real frames over a pluggable
// transport (in-process channels or UDP sockets), paced by a wall-clock
// scheduler — the second execution backend next to cmd/scenario's
// simulator. Results are reported in the same per-window metric blocks,
// in scenario seconds, so sim and live runs of one scenario can be read
// side by side; -compare runs both and prints them together.
//
// Examples:
//
//	live -name paper-single-switch
//	live -name paper-single-switch -n 150 -timescale 100
//	live -name lossy-uplink -transport udp
//	live -f conf.scn -algo both
//	live -name paper-single-switch -n 150 -compare  # sim vs live
//	live -list
//
// A scenario can also span several OS processes: one starter runs the
// coordinator plus shard 0, and each -join process takes another shard
// of the peer population. Joiners bootstrap entirely from the starter —
// the scenario text, the shard assignment and the address directory all
// arrive over the authenticated control plane, and peer socket
// addresses spread by gossip:
//
//	live -name paper-single-switch -serve 127.0.0.1:9310 -workers 2
//	live -join 127.0.0.1:9310   # run twice, in two other terminals
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"

	"gossipstream/internal/cluster"
	"gossipstream/internal/obs"
	"gossipstream/internal/runtime"
	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
)

func main() {
	var (
		file      = flag.String("f", "", "scenario file to run (see internal/scenario for the format)")
		name      = flag.String("name", "", "bundled scenario to run (see -list)")
		list      = flag.Bool("list", false, "list the bundled scenarios")
		algo      = flag.String("algo", "fast", "scheduler: fast, normal or both")
		n         = flag.Int("n", 0, "override the overlay size (crowd batches rescale proportionally)")
		seed      = flag.Int64("seed", 0, "override the scenario seed (0 keeps the file's)")
		transport = flag.String("transport", "chan", "transport: chan (in-process channels) or udp (loopback sockets)")
		timescale = flag.Float64("timescale", 0, "scenario seconds per wall second (0 = default 50; 1 = real time)")
		compare   = flag.Bool("compare", false, "run the simulator first, then the live system, and print both")
		stats     = flag.Bool("stats", false, "print the wall-clock execution stats (periods, overruns, transport counters)")
		serve     = flag.String("serve", "", "run as a cluster starter node listening on this address (host:port)")
		join      = flag.String("join", "", "join a cluster starter at this address and host one shard")
		workers   = flag.Int("workers", 2, "with -serve: joining processes to wait for")
		token     = flag.String("token", "gossipstream", "shared control-plane secret (all processes must agree)")

		suspectAfter = flag.Int("suspect-after", 0, "with -serve: ticks without a status before a worker is suspected (0 = default 10)")
		deadAfter    = flag.Int("dead-after", 0, "with -serve: ticks without a status before a worker is declared dead and failed over (0 = default 30)")

		debugAddr  = flag.String("debug", "", "serve the debug HTTP endpoint on this address during the run (/metrics, /healthz, /runz, /debug/pprof)")
		traceFile  = flag.String("trace", "", "write a structured JSONL run trace to this file (schema: docs/OBSERVABILITY.md)")
		statsEvery = flag.Int("stats-every", 0, "print a periodic stats line (transport counters, kernel UDP drops) every N scheduling periods")
	)
	flag.Parse()

	if *list {
		for _, sc := range scenario.Library() {
			fmt.Printf("%-22s n=%-5d events=%-2d %s\n", sc.Name, sc.Nodes, len(sc.Events), sc.Desc)
		}
		return
	}

	if *join != "" {
		runJoin(*join, *token, *seed, *debugAddr, *traceFile, *statsEvery)
		return
	}

	sc := load(*file, *name)
	if *n > 0 {
		sc = sc.Scaled(*n)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	if *serve != "" {
		runServe(sc, *serve, *algo, *workers, *token, *timescale, *stats,
			*debugAddr, *traceFile, *statsEvery,
			cluster.Tuning{SuspectAfter: *suspectAfter, DeadAfter: *deadAfter})
		return
	}

	factories := map[string]sim.AlgorithmFactory{}
	switch *algo {
	case "fast":
		factories["fast"] = sim.Fast
	case "normal":
		factories["normal"] = sim.Normal
	case "both":
		factories["fast"] = sim.Fast
		factories["normal"] = sim.Normal
	default:
		fmt.Fprintf(os.Stderr, "live: unknown -algo %q (want fast, normal or both)\n", *algo)
		os.Exit(2)
	}

	o, dbg, holder, err := setupObs(*debugAddr, *traceFile)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("scenario %s: %s\n", sc.Name, sc.Desc)
	fmt.Printf("  nodes=%d seed=%d events=%d transport=%s\n\n", sc.Nodes, sc.Seed, len(sc.Events), *transport)

	for _, algoName := range []string{"normal", "fast"} {
		factory, ok := factories[algoName]
		if !ok {
			continue
		}
		if *compare {
			cfg, err := sc.Config(factory)
			if err != nil {
				fatal(err)
			}
			s, err := sim.New(cfg)
			if err != nil {
				fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				fatal(err)
			}
			printResult("sim/"+algoName, res)
			fmt.Println()
		}

		r, err := runtime.FromScenario(sc, factory, runtime.Options{
			Transport:  makeTransport(*transport, sc.Seed),
			TimeScale:  *timescale,
			Obs:        o,
			StatsEvery: *statsEvery,
			Logf:       statsLogf(*statsEvery),
		})
		if err != nil {
			fatal(err)
		}
		if holder != nil {
			holder.p.Store(r)
		}
		label := algoName
		if *compare {
			label = "live/" + algoName
		}
		res, err := r.Run()
		if err != nil {
			fatal(err)
		}
		printResult(label, res)
		if *stats || *compare {
			printLiveStats(r.Stats())
		}
		fmt.Println()
	}
	if err := o.Close(); err != nil {
		fatal(err)
	}
	dbg.Close()
}

// printLiveStats renders the wall-clock execution account, drop
// counters included (kernel drops stay zero on the channel transport).
func printLiveStats(ls runtime.LiveStats) {
	fmt.Printf("  wall: %v for %d periods (%d overruns); transport: %d data frames sent, %d delivered, %d lost, %d inbox-dropped, %d kernel-dropped\n",
		ls.WallDuration.Round(1000000), ls.Periods, ls.Overruns,
		ls.Transport.DataSent, ls.Transport.DataDelivered, ls.Transport.DataLost,
		ls.Transport.InboxDropped, ls.Transport.KernelDrops)
}

// statsLogf is the sink for the runner's periodic stats lines.
func statsLogf(statsEvery int) func(string, ...any) {
	if statsEvery <= 0 {
		return nil
	}
	return func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}

// runHolder publishes the currently executing runner to the debug
// endpoint's handlers (atomically — the HTTP server reads it from its
// own goroutines).
type runHolder struct {
	p atomic.Pointer[runtime.Runner]
}

// setupObs assembles the observability bundle and, when -debug is set,
// binds the debug HTTP endpoint. Both flags empty means disabled.
func setupObs(debugAddr, traceFile string) (*obs.Obs, *obs.DebugServer, *runHolder, error) {
	if debugAddr == "" && traceFile == "" {
		return nil, nil, nil, nil
	}
	o := &obs.Obs{Reg: obs.NewRegistry()}
	if traceFile != "" {
		tr, err := obs.OpenTrace(traceFile)
		if err != nil {
			return nil, nil, nil, err
		}
		o.Trace = tr
	}
	holder := &runHolder{}
	if debugAddr == "" {
		return o, nil, holder, nil
	}
	healthz := func() any {
		if r := holder.p.Load(); r != nil {
			if snap := r.Snapshot(); snap != nil {
				return map[string]any{"status": "ok", "tick": snap.Tick,
					"duration": snap.Duration, "active_peers": snap.ActivePeers}
			}
		}
		return map[string]any{"status": "starting"}
	}
	runz := func() any {
		if r := holder.p.Load(); r != nil {
			if snap := r.Snapshot(); snap != nil {
				return map[string]any{"run": snap, "metrics": o.Reg.Snapshot()}
			}
		}
		return map[string]any{"status": "no run"}
	}
	dbg, err := obs.StartDebug(debugAddr, o.Reg, healthz, runz)
	if err != nil {
		return nil, nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "live: debug endpoint on http://%s\n", dbg.Addr())
	return o, dbg, holder, nil
}

// clusterObs builds the obs bundle a cluster process hands to
// cluster.Serve/Join (the debug server itself is started inside the
// cluster package, where the merged health view lives).
func clusterObs(debugAddr, traceFile string) *obs.Obs {
	if debugAddr == "" && traceFile == "" {
		return nil
	}
	o := &obs.Obs{Reg: obs.NewRegistry()}
	if traceFile != "" {
		tr, err := obs.OpenTrace(traceFile)
		if err != nil {
			fatal(err)
		}
		o.Trace = tr
	}
	return o
}

// runServe drives a multi-process run from the starter side and prints
// the merged result.
func runServe(sc *scenario.Scenario, listen, algo string, workers int, token string, timescale float64, stats bool, debugAddr, traceFile string, statsEvery int, tuning cluster.Tuning) {
	if algo != "fast" && algo != "normal" {
		fmt.Fprintf(os.Stderr, "live: -serve needs -algo fast or normal (got %q)\n", algo)
		os.Exit(2)
	}
	o := clusterObs(debugAddr, traceFile)
	fmt.Printf("scenario %s: %s\n", sc.Name, sc.Desc)
	fmt.Printf("  nodes=%d seed=%d events=%d shards=%d transport=udp\n\n", sc.Nodes, sc.Seed, len(sc.Events), workers+1)
	res, ls, err := cluster.Serve(cluster.Config{
		Scenario:  sc,
		Algo:      algo,
		Workers:   workers,
		TimeScale: timescale,
		Token:     token,
		Listen:    listen,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
		Obs:        o,
		Debug:      debugAddr,
		StatsEvery: statsEvery,
		Tuning:     tuning,
	})
	if err != nil {
		fatal(err)
	}
	printResult("cluster/"+algo, res)
	if stats {
		printLiveStats(ls)
	}
	if err := o.Close(); err != nil {
		fatal(err)
	}
}

// runJoin runs one joining process; everything else (scenario, shard,
// pacing) arrives from the starter.
func runJoin(starter, token string, seed int64, debugAddr, traceFile string, statsEvery int) {
	o := clusterObs(debugAddr, traceFile)
	res, err := cluster.Join(cluster.JoinConfig{
		Starter: starter,
		Token:   token,
		Seed:    seed,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
		Obs:        o,
		Debug:      debugAddr,
		StatsEvery: statsEvery,
	})
	if err != nil {
		fatal(err)
	}
	printResult("shard-local", res)
	if err := o.Close(); err != nil {
		fatal(err)
	}
}

// makeTransport builds a fresh transport per run (a runner owns and
// closes its transport).
func makeTransport(kind string, seed int64) runtime.Transport {
	switch kind {
	case "chan":
		return nil // FromScenario defaults to the channel transport
	case "udp":
		return runtime.NewUDPTransport(seed ^ 0x11fe)
	}
	fmt.Fprintf(os.Stderr, "live: unknown -transport %q (want chan or udp)\n", kind)
	os.Exit(2)
	return nil
}

func printResult(algoName string, res *sim.Result) {
	scenario.FormatResult(os.Stdout, algoName, res)
}

// load resolves the scenario source: a file, a bundled name, or an error.
func load(file, name string) *scenario.Scenario {
	switch {
	case file != "" && name != "":
		fmt.Fprintln(os.Stderr, "live: -f and -name are mutually exclusive")
		os.Exit(2)
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		sc, err := scenario.Parse(f)
		if err != nil {
			fatal(err)
		}
		return sc
	case name != "":
		sc := scenario.Lookup(name)
		if sc == nil {
			fmt.Fprintf(os.Stderr, "live: unknown scenario %q (see -list)\n", name)
			os.Exit(2)
		}
		return sc
	}
	fmt.Fprintln(os.Stderr, "live: need -f, -name or -list")
	os.Exit(2)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "live: %v\n", err)
	os.Exit(1)
}
