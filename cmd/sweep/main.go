// Command sweep regenerates the paper's figures: the ratio tracks
// (Figures 5/9), the finishing/preparing bars (Figures 6/10), the switch
// time and reduction ratio (Figures 7/11), and the communication overhead
// (Figures 8/12) — plus the ablation tables DESIGN.md defines.
//
// Examples:
//
//	sweep                      # every figure, static + dynamic
//	sweep -fig 7               # only Figure 7
//	sweep -sizes 100,500,1000 -seeds 5
//	sweep -ablations           # the design-choice ablation tables
//	sweep -csv                 # machine-readable sweep output
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gossipstream/internal/experiment"
	"gossipstream/internal/metrics"
)

func main() {
	var (
		fig       = flag.Int("fig", 0, "regenerate a single figure (5-12); 0 = all")
		sizes     = flag.String("sizes", "", "comma-separated overlay sizes (default: the paper's 100..8000)")
		seeds     = flag.Int("seeds", 3, "replicas per size")
		ratioN    = flag.Int("ration", 1000, "overlay size for the ratio tracks (Figures 5/9)")
		workers   = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		simWork   = flag.Int("simworkers", 0, "engine workers inside each simulation (0 = serial engine, <0 = GOMAXPROCS); results are identical at any setting")
		csvOut    = flag.Bool("csv", false, "emit CSV instead of tables")
		ablations = flag.Bool("ablations", false, "run the design-choice ablations instead of the figures")
		abN       = flag.Int("abn", 500, "overlay size for ablations")
	)
	flag.Parse()

	w := experiment.Paper()
	w.SeedsPerSize = *seeds
	w.Workers = *workers
	w.SimWorkers = *simWork
	if *sizes != "" {
		w.Sizes = nil
		for _, tok := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				fatal(err)
			}
			w.Sizes = append(w.Sizes, n)
		}
	}

	if *ablations {
		runAblations(w, *abN)
		return
	}

	wants := func(f int) bool { return *fig == 0 || *fig == f }

	for _, dynamic := range []bool{false, true} {
		wd := w
		wd.Churn = dynamic
		ratioFig, firstFig := 5, 6
		if dynamic {
			ratioFig, firstFig = 9, 10
		}
		if wants(ratioFig) {
			rt, err := wd.RunRatioTrack(*ratioN)
			if err != nil {
				fatal(err)
			}
			fmt.Println(rt.Render())
		}
		if wants(firstFig) || wants(firstFig+1) || wants(firstFig+2) {
			rows, err := wd.RunSizeSweep()
			if err != nil {
				fatal(err)
			}
			if *csvOut {
				fmt.Print(experiment.CSV(rows))
				continue
			}
			if wants(firstFig) {
				fmt.Println(experiment.FormatFinishPrepare(rows, dynamic))
			}
			if wants(firstFig + 1) {
				fmt.Println(experiment.FormatSwitchTime(rows, dynamic))
			}
			if wants(firstFig + 2) {
				fmt.Println(experiment.FormatOverhead(rows, dynamic))
			}
		}
	}
}

func runAblations(w experiment.Workload, n int) {
	priority := experiment.Ablation{
		Workload: w, N: n, Baseline: "normal",
		Variants: experiment.PriorityVariants(),
	}
	rows, err := priority.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiment.FormatAblation(
		fmt.Sprintf("Ablation: priority scoring variants (N=%d)", n), rows))

	split := experiment.Ablation{
		Workload: w, N: n, Baseline: "normal",
		Variants: experiment.SplitVariants(),
	}
	rows, err = split.Run()
	if err != nil {
		fatal(err)
	}
	fmt.Println(experiment.FormatAblation(
		fmt.Sprintf("Ablation: optimal rate split (N=%d)", n), rows))

	mRows, ms, err := experiment.NeighborCountSweep(w, n, []int{3, 5, 8, 12})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Ablation: neighbor count M (N=%d)\n", n)
	fmt.Printf("%4s %12s %12s %12s\n", "M", "fast prep(s)", "norm prep(s)", "reduction")
	for i, r := range mRows {
		fmt.Printf("%4d %12.2f %12.2f %11.1f%%\n", ms[i], r.FastPrepareS2, r.NormalPrepareS2, r.Reduction*100)
	}
	fmt.Println()

	qRows, qss, err := experiment.StartupThresholdSweep(w, n, []int{10, 25, 50, 100})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("Ablation: startup threshold Qs (N=%d)\n", n)
	fmt.Printf("%4s %12s %12s %12s\n", "Qs", "fast prep(s)", "norm prep(s)", "reduction")
	for i, r := range qRows {
		fmt.Printf("%4d %12.2f %12.2f %11.1f%%\n", qss[i], r.FastPrepareS2, r.NormalPrepareS2, r.Reduction*100)
	}
	fmt.Println()

	// Substrate ablations: per-link capacity model and no-prefetch mesh.
	for _, sub := range []struct {
		name  string
		apply func(*experiment.Workload)
	}{
		{"per-link outbound", func(w *experiment.Workload) { w.PerLinkOutbound = true }},
		{"prefetch disabled", func(w *experiment.Workload) { w.DisablePrefetch = true }},
	} {
		ws := w
		sub.apply(&ws)
		ws.Sizes = []int{n}
		samples, err := ws.Sweep()
		if err != nil {
			fatal(err)
		}
		rows := metrics.AggregateBySize(samples)
		fmt.Printf("Substrate ablation: %s (N=%d)\n", sub.name, n)
		fmt.Println(experiment.FormatSwitchTime(rows, false))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
	os.Exit(1)
}
