package experiment

import (
	"strings"
	"testing"

	"gossipstream/internal/scenario"
)

func TestScenarioSweep(t *testing.T) {
	scs := []*scenario.Scenario{
		scenario.PaperSingleSwitch().Scaled(100),
		scenario.SerialHandoffChain().Scaled(100),
	}
	sw := ScenarioSweep{Scenarios: scs, Workers: 2}
	outcomes, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(outcomes))
	}
	if n := len(outcomes[1].Fast.Windows); n != 3 {
		t.Errorf("handoff chain fast windows = %d, want 3", n)
	}
	if n := len(outcomes[1].Normal.Windows); n != 3 {
		t.Errorf("handoff chain normal windows = %d, want 3", n)
	}
	for _, o := range outcomes {
		if o.Fast.Algorithm != "fast" || o.Normal.Algorithm != "normal" {
			t.Errorf("%s: mislabeled results %q/%q", o.Scenario.Name, o.Fast.Algorithm, o.Normal.Algorithm)
		}
	}
	table := FormatScenarioSweep(outcomes)
	for _, want := range []string{"paper-single-switch", "serial-handoff-chain", "switch@t=40", "%"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	// Reproducible: a second sweep returns identical headline numbers.
	again, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range outcomes {
		a := outcomes[i].Fast.Windows
		b := again[i].Fast.Windows
		for w := range a {
			if a[w].AvgPrepareS2() != b[w].AvgPrepareS2() {
				t.Errorf("scenario sweep not reproducible (window %d)", w)
			}
		}
	}
}
