package experiment

import (
	"strings"
	"testing"

	"gossipstream/internal/core"
	"gossipstream/internal/overlay"
	"gossipstream/internal/sim"
)

// tiny returns a workload small enough for unit tests.
func tiny() Workload {
	w := Paper()
	w.Sizes = []int{80}
	w.SeedsPerSize = 2
	w.WarmupTicks = 25
	w.JoinSpreadTicks = 12
	w.HorizonTicks = 150
	w.Workers = 2
	return w
}

func TestTopologyProperties(t *testing.T) {
	w := Paper()
	g, err := w.Topology(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 {
		t.Fatalf("N = %d", g.N())
	}
	if g.MinDegree() < w.M {
		t.Errorf("min degree %d < M=%d after augmentation", g.MinDegree(), w.M)
	}
	if !g.Connected() {
		t.Error("topology disconnected")
	}
	// Same cell → identical topology; different replica → different.
	g2, _ := w.Topology(200, 0)
	if g.M() != g2.M() {
		t.Error("same cell produced different topologies")
	}
	g3, _ := w.Topology(200, 1)
	if g3.M() == g.M() && g3.N() == g.N() {
		// Equal edge count alone is possible; degree sequence equality is
		// overwhelmingly unlikely across replicas.
		same := true
		for u := 0; u < g.N(); u++ {
			if g.Degree(overlay.NodeID(u)) != g3.Degree(overlay.NodeID(u)) {
				same = false
				break
			}
		}
		if same {
			t.Error("different replicas produced identical topologies")
		}
	}
}

func TestSweepPairsAlgorithms(t *testing.T) {
	w := tiny()
	samples, err := w.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(samples))
	}
	for _, s := range samples {
		if s.Fast == nil || s.Normal == nil {
			t.Fatal("missing algorithm result")
		}
		if s.Fast.Algorithm != "fast" || s.Normal.Algorithm != "normal" {
			t.Fatalf("mislabeled results: %s / %s", s.Fast.Algorithm, s.Normal.Algorithm)
		}
		if s.Fast.Nodes != s.Normal.Nodes {
			t.Error("paired runs saw different populations")
		}
	}
}

func TestSweepDeterminism(t *testing.T) {
	w := tiny()
	w.SeedsPerSize = 1
	a, err := w.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Fast.AvgPrepareS2() != b[0].Fast.AvgPrepareS2() {
		t.Error("sweep not reproducible")
	}
}

func TestRunSizeSweepAndFormatting(t *testing.T) {
	w := tiny()
	rows, err := w.RunSizeSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].N != 80 {
		t.Fatalf("rows = %+v", rows)
	}
	fp := FormatFinishPrepare(rows, false)
	st := FormatSwitchTime(rows, false)
	ov := FormatOverhead(rows, false)
	for _, out := range []string{fp, st, ov} {
		if !strings.Contains(out, "80") {
			t.Errorf("size missing from table:\n%s", out)
		}
	}
	if !strings.Contains(fp, "Figure 6") || !strings.Contains(st, "Figure 7") || !strings.Contains(ov, "Figure 8") {
		t.Error("figure labels missing")
	}
	if !strings.Contains(FormatSwitchTime(rows, true), "Figure 11") {
		t.Error("dynamic label missing")
	}
	csv := CSV(rows)
	if !strings.HasPrefix(csv, "n,samples,") || !strings.Contains(csv, "80,") {
		t.Errorf("csv malformed:\n%s", csv)
	}
}

func TestRunRatioTrack(t *testing.T) {
	w := tiny()
	w.SeedsPerSize = 1
	rt, err := w.RunRatioTrack(80)
	if err != nil {
		t.Fatal(err)
	}
	if rt.FastUndelivered.Len() == 0 || rt.NormalDelivered.Len() == 0 {
		t.Fatal("ratio series empty")
	}
	out := rt.Render()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "undelivered") {
		t.Errorf("render missing labels:\n%s", out)
	}
}

func TestAblationRun(t *testing.T) {
	w := tiny()
	w.SeedsPerSize = 1
	ab := Ablation{
		Workload: w,
		N:        80,
		Baseline: "normal",
		Variants: []NamedFactory{
			{Name: "normal", Factory: sim.Normal},
			{Name: "fast", Factory: sim.Fast},
		},
	}
	rows, err := ab.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Reduction != 0 {
		t.Errorf("baseline reduction = %v, want 0", rows[0].Reduction)
	}
	out := FormatAblation("test", rows)
	if !strings.Contains(out, "normal") || !strings.Contains(out, "fast") {
		t.Error("ablation table incomplete")
	}
}

func TestVariantSets(t *testing.T) {
	if len(PriorityVariants()) != 5 {
		t.Error("priority variant set wrong")
	}
	if len(SplitVariants()) != 3 {
		t.Error("split variant set wrong")
	}
	for _, v := range PriorityVariants() {
		if v.Factory == nil {
			t.Fatalf("variant %s has nil factory", v.Name)
		}
		if a := v.Factory(); a == nil {
			t.Fatalf("variant %s built nil algorithm", v.Name)
		}
	}
	// The ablation factories must build *distinctly configured* schedulers.
	fs := PriorityVariants()[2].Factory().(*core.FastSwitch)
	if fs.Options.Rarity != core.RarityTraditional {
		t.Error("rarity variant misconfigured")
	}
}

func TestQsOverride(t *testing.T) {
	w := tiny()
	w.SeedsPerSize = 1
	rows, qss, err := StartupThresholdSweep(w, 80, []int{20, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || qss[0] != 20 {
		t.Fatalf("sweep shape wrong: %v", qss)
	}
	// A smaller startup threshold must prepare sooner.
	if rows[0].FastPrepareS2 >= rows[1].FastPrepareS2 {
		t.Errorf("Qs=20 prepare %.2f not below Qs=50 prepare %.2f",
			rows[0].FastPrepareS2, rows[1].FastPrepareS2)
	}
}
