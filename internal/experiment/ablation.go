package experiment

import (
	"fmt"
	"strings"

	"gossipstream/internal/core"
	"gossipstream/internal/metrics"
	"gossipstream/internal/sim"
	"gossipstream/internal/sim/engine"
	"gossipstream/internal/stats"
)

// AblationRow is one variant's aggregate outcome at a fixed network size.
type AblationRow struct {
	Name      string
	PrepareS2 float64 // mean preparing time of S2 (the switch time), seconds
	FinishS1  float64
	Reduction float64 // vs. the row named "normal" in the same table
}

// Ablation compares scheduler or substrate variants on the same
// topologies. Variants map a display name to an algorithm factory; the
// baseline name anchors the reduction column.
type Ablation struct {
	Workload Workload
	N        int
	Baseline string
	Variants []NamedFactory
}

// NamedFactory pairs an algorithm factory with its display name.
type NamedFactory struct {
	Name    string
	Factory sim.AlgorithmFactory
}

// Run executes every variant over the workload's replicas at size N,
// fanning the (variant, replica) trials out over the engine pool with
// per-trial seeds.
func (a Ablation) Run() ([]AblationRow, error) {
	w := a.Workload
	w.Sizes = []int{a.N}
	reps := w.SeedsPerSize
	type outcome struct {
		res *sim.Result
		err error
	}
	outcomes := make([]outcome, len(a.Variants)*reps)
	engine.NewPool(w.Workers).Run(len(outcomes), func(_, i int) {
		v := a.Variants[i/reps]
		r := i % reps
		g, err := w.Topology(a.N, r)
		if err != nil {
			outcomes[i] = outcome{err: err}
			return
		}
		runSeed := w.BaseSeed ^ int64(a.N)<<20 ^ int64(r)<<8
		s, err := sim.New(w.simConfig(g, runSeed, v.Factory))
		if err != nil {
			outcomes[i] = outcome{err: err}
			return
		}
		res, err := s.Run()
		outcomes[i] = outcome{res: res, err: err}
	})

	rows := make([]AblationRow, 0, len(a.Variants))
	var baseline float64
	for vi, v := range a.Variants {
		var preps, fins []float64
		for r := 0; r < reps; r++ {
			o := outcomes[vi*reps+r]
			if o.err != nil {
				return nil, o.err
			}
			preps = append(preps, o.res.AvgPrepareS2())
			fins = append(fins, o.res.AvgFinishS1())
		}
		row := AblationRow{
			Name:      v.Name,
			PrepareS2: stats.Mean(preps),
			FinishS1:  stats.Mean(fins),
		}
		if v.Name == a.Baseline {
			baseline = row.PrepareS2
		}
		rows = append(rows, row)
	}
	for i := range rows {
		rows[i].Reduction = stats.ReductionRatio(baseline, rows[i].PrepareS2)
	}
	return rows, nil
}

// FormatAblation renders an ablation table.
func FormatAblation(title string, rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-28s %12s %12s %12s\n", "variant", "prepareS2(s)", "finishS1(s)", "vs baseline")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %12.2f %12.2f %11.1f%%\n", r.Name, r.PrepareS2, r.FinishS1, r.Reduction*100)
	}
	return b.String()
}

// PriorityVariants builds the eq. (8)/(9) ablation set: the paper's
// scoring against the traditional 1/n rarity and the single-term
// priorities.
func PriorityVariants() []NamedFactory {
	mk := func(opt core.ScoreOptions) sim.AlgorithmFactory {
		return func() core.Algorithm { return &core.FastSwitch{Options: opt} }
	}
	return []NamedFactory{
		{Name: "normal", Factory: sim.Normal},
		{Name: "fast (paper: eq.8 + max)", Factory: sim.Fast},
		{Name: "fast, rarity=1/n", Factory: mk(core.ScoreOptions{Rarity: core.RarityTraditional})},
		{Name: "fast, urgency only", Factory: mk(core.ScoreOptions{Priority: core.PriorityUrgencyOnly})},
		{Name: "fast, rarity only", Factory: mk(core.ScoreOptions{Priority: core.PriorityRarityOnly})},
	}
}

// SplitVariants isolates the optimal rate split: the full algorithm
// against a variant that keeps the scoring but drops the r1/r2 split.
func SplitVariants() []NamedFactory {
	return []NamedFactory{
		{Name: "normal", Factory: sim.Normal},
		{Name: "fast (with rate split)", Factory: sim.Fast},
		{Name: "fast, split disabled", Factory: func() core.Algorithm {
			return &core.FastSwitch{DisableSplit: true}
		}},
	}
}

// NeighborCountSweep reruns the paired comparison at several M values —
// the paper's claim that "M=5 is usually a good practical choice".
func NeighborCountSweep(w Workload, n int, ms []int) ([]metrics.SizeRow, []int, error) {
	rows := make([]metrics.SizeRow, 0, len(ms))
	for _, m := range ms {
		wm := w
		wm.M = m
		wm.Sizes = []int{n}
		samples, err := wm.Sweep()
		if err != nil {
			return nil, nil, err
		}
		agg := metrics.AggregateBySize(samples)
		rows = append(rows, agg[0])
	}
	return rows, ms, nil
}

// StartupThresholdSweep reruns the paired comparison at several Qs values.
func StartupThresholdSweep(w Workload, n int, qss []int) ([]metrics.SizeRow, []int, error) {
	rows := make([]metrics.SizeRow, 0, len(qss))
	for _, qs := range qss {
		wq := w
		wq.Sizes = []int{n}
		wq.qsOverride = qs
		samples, err := wq.Sweep()
		if err != nil {
			return nil, nil, err
		}
		agg := metrics.AggregateBySize(samples)
		rows = append(rows, agg[0])
	}
	return rows, qss, nil
}
