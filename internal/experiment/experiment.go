// Package experiment regenerates every figure of the paper's evaluation
// (Section 5): the ratio tracks of Figures 5/9, the finishing/preparing
// bar charts of Figures 6/10, the switch-time and reduction-ratio curves
// of Figures 7/11, and the communication-overhead curves of Figures 8/12 —
// plus the ablation sweeps DESIGN.md calls out.
//
// A sweep is an embarrassingly parallel bag of simulation runs; the runner
// fans them out over the same engine worker pool the simulator's phases
// run on (internal/sim/engine), one trial per shard, while keeping every
// run individually deterministic (topology seed + run seed). Nested
// parallelism is available too: SimWorkers > 1 additionally parallelizes
// the phases inside each trial — useful when a few huge trials cannot
// saturate the machine by trial fan-out alone.
package experiment

import (
	"fmt"
	"math/rand"

	"gossipstream/internal/metrics"
	"gossipstream/internal/overlay"
	"gossipstream/internal/sim"
	"gossipstream/internal/sim/engine"
	"gossipstream/internal/trace"
)

// Workload is the common configuration of a figure regeneration. The zero
// value is not useful; start from Paper().
type Workload struct {
	// Sizes are the overlay scales to sweep (the paper evaluates 100, 500,
	// 1000, 2000, 4000, 8000).
	Sizes []int
	// SeedsPerSize runs each size on this many synthesized trace
	// topologies with distinct run seeds and averages the results (the
	// paper averages over its 30 crawl traces).
	SeedsPerSize int
	// BaseSeed derives every topology and run seed.
	BaseSeed int64

	// M is the per-node neighbor target after random-edge augmentation
	// (Section 5.1 uses M=5).
	M int

	// WarmupTicks, JoinSpreadTicks and HorizonTicks shape each run; see
	// sim.Config. Defaults reproduce the calibrated stable phase:
	// members assemble over ~25 s and the switch fires at 40 s.
	WarmupTicks     int
	JoinSpreadTicks int
	HorizonTicks    int

	// Churn enables the dynamic environment of Section 5.4 (5 % leave and
	// join per period).
	Churn bool

	// TrackRatios records the Figures 5/9 time series (costs CPU; only the
	// ratio-track experiments need it).
	TrackRatios bool

	// Workers bounds the trial fan-out pool (default: GOMAXPROCS).
	Workers int

	// SimWorkers sets the engine concurrency *inside* each simulation
	// (sim.Config.Workers): 0 runs every trial on the serial engine,
	// negative selects GOMAXPROCS per trial. Results are identical at any
	// setting; only wall-clock changes.
	SimWorkers int

	// FastFactory and NormalFactory build the two compared schedulers.
	// Overridden by the ablation experiments; nil means the paper's pair.
	FastFactory   sim.AlgorithmFactory
	NormalFactory sim.AlgorithmFactory

	// Substrate ablation switches (see sim.Config).
	PerLinkOutbound bool // use the per-link capacity model instead of shared
	DisablePrefetch bool // no leftover-budget random prefetch

	// qsOverride, when positive, replaces the paper's Qs=50 (used by the
	// startup-threshold ablation).
	qsOverride int
}

// Paper returns the calibrated workload reproducing Section 5.1: τ=1 s,
// p=10 segments/s, Q=10, Qs=50, B=600, M=5, I∈[10,33] with mean 15,
// shared outbound capacity, 40 warm-up periods with arrivals spread over
// the first 25.
func Paper() Workload {
	return Workload{
		Sizes:           []int{100, 500, 1000, 2000, 4000, 8000},
		SeedsPerSize:    5,
		BaseSeed:        20080917, // ICPP 2008 proceedings date
		M:               5,
		WarmupTicks:     40,
		JoinSpreadTicks: 25,
		HorizonTicks:    300,
		FastFactory:     sim.Fast,
		NormalFactory:   sim.Normal,
	}
}

// Quick returns a scaled-down workload for tests and the quickstart
// example: small overlays, one seed.
func Quick() Workload {
	w := Paper()
	w.Sizes = []int{100, 300}
	w.SeedsPerSize = 1
	return w
}

// Topology synthesizes the overlay for one (size, replica) cell: a
// Gnutella-like crawl trace augmented with random edges until every node
// holds at least M neighbors (Section 5.1's preparation).
func (w Workload) Topology(n int, replica int) (*overlay.Graph, error) {
	seed := w.BaseSeed + int64(n)*1_000_003 + int64(replica)*7919
	tr := trace.Synthesize(fmt.Sprintf("synth-%d-%d", n, replica), n, 1+replica%2, seed)
	g, err := tr.Graph()
	if err != nil {
		return nil, err
	}
	overlay.AugmentMinDegree(g, w.M, rand.New(rand.NewSource(seed^0xa06)))
	return g, nil
}

// simConfig assembles the sim.Config for one run on a fresh topology.
func (w Workload) simConfig(g *overlay.Graph, runSeed int64, algo sim.AlgorithmFactory) sim.Config {
	cfg := sim.Config{
		Graph:           g,
		Seed:            runSeed,
		NewAlgorithm:    algo,
		WarmupTicks:     w.WarmupTicks,
		JoinSpreadTicks: w.JoinSpreadTicks,
		HorizonTicks:    w.HorizonTicks,
		FirstSource:     -1,
		NewSource:       -1,
		SharedOutbound:  !w.PerLinkOutbound,
		DisablePrefetch: w.DisablePrefetch,
		Qs:              w.qsOverride,
		TrackRatios:     w.TrackRatios,
		Workers:         w.SimWorkers,
	}
	if w.Churn {
		cfg.Churn = &sim.ChurnConfig{LeaveFraction: 0.05, JoinFraction: 0.05}
	}
	return cfg
}

// job is one simulation to execute.
type job struct {
	n, replica int
	fast       bool
}

// Sweep runs both algorithms over every (size, replica) cell and returns
// the paired samples, ordered by size then replica. Trials fan out over
// the engine pool — one trial per shard, each writing its own result
// slot, so no lock guards the fan-out.
func (w Workload) Sweep() ([]metrics.PairSample, error) {
	if w.FastFactory == nil {
		w.FastFactory = sim.Fast
	}
	if w.NormalFactory == nil {
		w.NormalFactory = sim.Normal
	}
	jobs := make([]job, 0, len(w.Sizes)*w.SeedsPerSize*2)
	for si := range w.Sizes {
		for r := 0; r < w.SeedsPerSize; r++ {
			jobs = append(jobs, job{n: w.Sizes[si], replica: r, fast: true})
			jobs = append(jobs, job{n: w.Sizes[si], replica: r, fast: false})
		}
	}

	type outcome struct {
		res *sim.Result
		err error
	}
	outcomes := make([]outcome, len(jobs))
	engine.NewPool(w.Workers).Run(len(jobs), func(_, i int) {
		res, err := w.runOne(jobs[i])
		outcomes[i] = outcome{res: res, err: err}
	})

	samples := make([]metrics.PairSample, 0, len(jobs)/2)
	for i := 0; i < len(jobs); i += 2 {
		j := jobs[i]
		fast, normal := outcomes[i], outcomes[i+1]
		if fast.err != nil {
			return nil, fmt.Errorf("experiment: size %d replica %d: %w", j.n, j.replica, fast.err)
		}
		if normal.err != nil {
			return nil, fmt.Errorf("experiment: size %d replica %d: %w", j.n, j.replica, normal.err)
		}
		samples = append(samples, metrics.PairSample{
			N:    j.n,
			Seed: w.BaseSeed + int64(j.replica),
			Fast: fast.res, Normal: normal.res,
		})
	}
	return samples, nil
}

// runOne executes a single simulation job.
func (w Workload) runOne(j job) (*sim.Result, error) {
	g, err := w.Topology(j.n, j.replica)
	if err != nil {
		return nil, err
	}
	factory := w.NormalFactory
	if j.fast {
		factory = w.FastFactory
	}
	runSeed := w.BaseSeed ^ int64(j.n)<<20 ^ int64(j.replica)<<8
	s, err := sim.New(w.simConfig(g, runSeed, factory))
	if err != nil {
		return nil, err
	}
	return s.Run()
}
