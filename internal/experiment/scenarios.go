package experiment

import (
	"fmt"
	"strings"

	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
	"gossipstream/internal/sim/engine"
	"gossipstream/internal/stats"
)

// The scenario sweep: the experiment layer's fan-out generalized from
// overlay sizes to whole scenarios. Every (scenario, algorithm) trial is
// an independent deterministic run, so the sweep fans out on the engine
// pool exactly like Workload.Sweep, and each scenario contributes one
// comparison row per measurement window — a handoff chain is compared
// handoff by handoff.

// ScenarioSweep compares the two schedulers over a set of scenarios.
type ScenarioSweep struct {
	// Scenarios to run; typically scenario.Library() or a parsed file.
	Scenarios []*scenario.Scenario
	// Workers bounds the trial fan-out pool (0 = GOMAXPROCS); SimWorkers
	// sets the engine concurrency inside each run (results are identical
	// at any setting).
	Workers    int
	SimWorkers int
	// Fast and Normal build the compared schedulers (nil = the paper's
	// pair).
	Fast, Normal sim.AlgorithmFactory
}

// ScenarioOutcome pairs one scenario's runs under both schedulers.
type ScenarioOutcome struct {
	Scenario *scenario.Scenario
	Fast     *sim.Result
	Normal   *sim.Result
}

// Run executes every (scenario, algorithm) trial on the engine pool.
func (sw ScenarioSweep) Run() ([]ScenarioOutcome, error) {
	fast, normal := sw.Fast, sw.Normal
	if fast == nil {
		fast = sim.Fast
	}
	if normal == nil {
		normal = sim.Normal
	}
	type outcome struct {
		res *sim.Result
		err error
	}
	outcomes := make([]outcome, len(sw.Scenarios)*2)
	engine.NewPool(sw.Workers).Run(len(outcomes), func(_, i int) {
		sc := sw.Scenarios[i/2]
		factory := fast
		if i%2 == 1 {
			factory = normal
		}
		cfg, err := sc.Config(factory)
		if err != nil {
			outcomes[i] = outcome{err: err}
			return
		}
		cfg.Workers = sw.SimWorkers
		s, err := sim.New(cfg)
		if err != nil {
			outcomes[i] = outcome{err: err}
			return
		}
		res, err := s.Run()
		outcomes[i] = outcome{res: res, err: err}
	})

	out := make([]ScenarioOutcome, 0, len(sw.Scenarios))
	for i, sc := range sw.Scenarios {
		f, n := outcomes[2*i], outcomes[2*i+1]
		if f.err != nil {
			return nil, fmt.Errorf("experiment: scenario %s: %w", sc.Name, f.err)
		}
		if n.err != nil {
			return nil, fmt.Errorf("experiment: scenario %s: %w", sc.Name, n.err)
		}
		out = append(out, ScenarioOutcome{Scenario: sc, Fast: f.res, Normal: n.res})
	}
	return out, nil
}

// FormatScenarioSweep renders the per-window comparison table: one row
// per measurement window of each scenario, with the fast-vs-normal
// switch-time reduction for switch windows. Scenarios running the
// netmodel transport additionally report the fast run's mean delivery
// delay, loss rate and loss-induced re-requests per window.
func FormatScenarioSweep(outcomes []ScenarioOutcome) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-14s %12s %12s %12s %9s %7s %7s\n",
		"scenario", "window", "fast prep(s)", "norm prep(s)", "reduction",
		"delay(s)", "loss", "rereq")
	for _, o := range outcomes {
		for wi, fw := range o.Fast.Windows {
			label := fmt.Sprintf("%d %s@t=%d", wi, fw.Kind, fw.Tick)
			net := fmt.Sprintf(" %9s %7s %7s", "-", "-", "-")
			if fw.NetDelivered+fw.NetLost > 0 {
				// Millisecond resolution for the sub-tick transport's
				// genuine sub-period delays.
				net = fmt.Sprintf(" %9.3f %6.1f%% %7d",
					fw.MeanDeliveryDelay(), fw.LossRate()*100, fw.NetReRequests)
			}
			if fw.Kind != "switch" {
				fmt.Fprintf(&b, "%-24s %-14s %12s %12s %12s%s\n",
					o.Scenario.Name, label, "-", "-", "-", net)
				continue
			}
			var np float64
			if wi < len(o.Normal.Windows) {
				np = o.Normal.Windows[wi].AvgPrepareS2()
			}
			fp := fw.AvgPrepareS2()
			fmt.Fprintf(&b, "%-24s %-14s %12.2f %12.2f %11.1f%%%s\n",
				o.Scenario.Name, label, fp, np, stats.ReductionRatio(np, fp)*100, net)
		}
	}
	return b.String()
}
