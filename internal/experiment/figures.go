package experiment

import (
	"fmt"
	"strings"

	"gossipstream/internal/metrics"
	"gossipstream/internal/plot"
	"gossipstream/internal/stats"
)

// RatioTrack is the Figures 5/9 result: network-wide undelivered ratio of
// S1 and delivered ratio of S2 over time since the switch, for both
// algorithms, averaged over replicas.
type RatioTrack struct {
	N                int
	Dynamic          bool
	FastUndelivered  *stats.Series
	FastDelivered    *stats.Series
	NormalUndeliv    *stats.Series
	NormalDelivered  *stats.Series
	FastLastFinish   float64 // the "last node finishes S1" marker
	FastLastPrepare  float64
	NormalLastFinish float64
	NormalLastPrep   float64
}

// RunRatioTrack regenerates Figure 5 (static) or Figure 9 (dynamic) at
// one network size.
func (w Workload) RunRatioTrack(n int) (*RatioTrack, error) {
	w.Sizes = []int{n}
	w.TrackRatios = true
	samples, err := w.Sweep()
	if err != nil {
		return nil, err
	}
	rt := &RatioTrack{N: n, Dynamic: w.Churn}
	var fu, fd, nu, nd []*stats.Series
	var flf, flp, nlf, nlp []float64
	for _, s := range samples {
		fu = append(fu, s.Fast.UndeliveredS1)
		fd = append(fd, s.Fast.DeliveredS2)
		nu = append(nu, s.Normal.UndeliveredS1)
		nd = append(nd, s.Normal.DeliveredS2)
		flf = append(flf, s.Fast.MaxFinishS1())
		flp = append(flp, s.Fast.MaxPrepareS2())
		nlf = append(nlf, s.Normal.MaxFinishS1())
		nlp = append(nlp, s.Normal.MaxPrepareS2())
	}
	rt.FastUndelivered = metrics.AverageSeries("fast: undelivered S1", fu)
	rt.FastDelivered = metrics.AverageSeries("fast: delivered S2", fd)
	rt.NormalUndeliv = metrics.AverageSeries("normal: undelivered S1", nu)
	rt.NormalDelivered = metrics.AverageSeries("normal: delivered S2", nd)
	rt.FastLastFinish = stats.Mean(flf)
	rt.FastLastPrepare = stats.Mean(flp)
	rt.NormalLastFinish = stats.Mean(nlf)
	rt.NormalLastPrep = stats.Mean(nlp)
	return rt, nil
}

// Render draws the two panels of Figures 5/9 as ASCII charts.
func (rt *RatioTrack) Render() string {
	env := "static"
	fig := "Figure 5"
	if rt.Dynamic {
		env = "dynamic"
		fig = "Figure 9"
	}
	var b strings.Builder
	b.WriteString(plot.Line(
		fmt.Sprintf("%s (top): undelivered ratio of S1, %s network, %d nodes", fig, env, rt.N),
		64, 12, rt.NormalUndeliv, rt.FastUndelivered))
	b.WriteString("\n")
	b.WriteString(plot.Line(
		fmt.Sprintf("%s (bottom): delivered ratio of S2, %s network, %d nodes", fig, env, rt.N),
		64, 12, rt.FastDelivered, rt.NormalDelivered))
	fmt.Fprintf(&b, "\nlast node finishes S1:  normal=%.1fs fast=%.1fs\n", rt.NormalLastFinish, rt.FastLastFinish)
	fmt.Fprintf(&b, "last node prepares S2:  normal=%.1fs fast=%.1fs\n", rt.NormalLastPrep, rt.FastLastPrepare)
	return b.String()
}

// RunSizeSweep regenerates the size-sweep figures: 6/7/8 in a static
// environment, 10/11/12 with churn enabled.
func (w Workload) RunSizeSweep() ([]metrics.SizeRow, error) {
	samples, err := w.Sweep()
	if err != nil {
		return nil, err
	}
	return metrics.AggregateBySize(samples), nil
}

// FormatFinishPrepare renders the Figures 6/10 bar groups: per size, the
// four bars in the paper's order (normal finish S1, fast finish S1, fast
// prepare S2, normal prepare S2).
func FormatFinishPrepare(rows []metrics.SizeRow, dynamic bool) string {
	fig := "Figure 6 (static)"
	if dynamic {
		fig = "Figure 10 (dynamic)"
	}
	groups := make([]plot.BarGroup, 0, len(rows))
	for _, r := range rows {
		groups = append(groups, plot.BarGroup{
			Label: fmt.Sprintf("N=%d", r.N),
			Values: []float64{
				r.NormalFinishS1, r.FastFinishS1, r.FastPrepareS2, r.NormalPrepareS2,
			},
		})
	}
	return plot.Bars(
		fig+": avg finishing time of S1 and preparing time of S2 (seconds)",
		[]string{"normal: finish S1", "fast:   finish S1", "fast:   prepare S2", "normal: prepare S2"},
		groups, 48)
}

// FormatSwitchTime renders the Figures 7/11 table: average switch time
// per algorithm and the reduction ratio.
func FormatSwitchTime(rows []metrics.SizeRow, dynamic bool) string {
	fig := "Figure 7 (static)"
	if dynamic {
		fig = "Figure 11 (dynamic)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: average switch time and reduction ratio\n", fig)
	fmt.Fprintf(&b, "%8s %10s %10s %12s\n", "N", "normal(s)", "fast(s)", "reduction")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %10.2f %10.2f %11.1f%%\n",
			r.N, r.NormalPrepareS2, r.FastPrepareS2, r.Reduction*100)
	}
	return b.String()
}

// FormatOverhead renders the Figures 8/12 table: communication overhead
// per algorithm and size.
func FormatOverhead(rows []metrics.SizeRow, dynamic bool) string {
	fig := "Figure 8 (static)"
	if dynamic {
		fig = "Figure 12 (dynamic)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: communication overhead (control bits / data bits)\n", fig)
	fmt.Fprintf(&b, "%8s %10s %10s\n", "N", "fast", "normal")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8d %10.4f %10.4f\n", r.N, r.FastOverhead, r.NormalOverhead)
	}
	return b.String()
}

// CSV renders the size rows as comma-separated values for downstream
// tooling.
func CSV(rows []metrics.SizeRow) string {
	var b strings.Builder
	b.WriteString("n,samples,fast_finish_s1,normal_finish_s1,fast_prepare_s2,normal_prepare_s2,reduction,fast_overhead,normal_overhead\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.6f,%.6f\n",
			r.N, r.Samples, r.FastFinishS1, r.NormalFinishS1,
			r.FastPrepareS2, r.NormalPrepareS2, r.Reduction,
			r.FastOverhead, r.NormalOverhead)
	}
	return b.String()
}
