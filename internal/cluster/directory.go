// Package cluster is the distributed control plane of the live
// runtime: it lets one scenario span many OS processes. Peers bootstrap
// from a starter node, learn the address directory via anti-entropy
// gossip piggybacked on the existing map exchange, and receive scenario
// events as resolved runtime.Directives over an authenticated control
// transport — with retry and acknowledgement, because the control
// frames cross the same lossy, partitionable network the data plane
// does.
//
// Topology: the starter process runs the Coordinator (which embeds
// shard 0 of the peer population) plus one Agent loop per joining
// process (`cmd/live -join`). Every process compiles the identical
// scenario (the text travels in the welcome), so graph, profiles and
// start ticks agree by construction; everything nondeterministic —
// successor picks, churn draws, join wiring, partition seeds — is
// resolved once at the coordinator and shipped explicitly.
package cluster

import (
	"math/rand"
	"sync"

	"gossipstream/internal/overlay"
	"gossipstream/internal/runtime"
)

// CtrlIDBase offsets agent control sockets in the shared address
// directory: the control endpoint of shard k is directory entry
// CtrlIDBase+k. Far outside any scenario's node id range, so peer and
// agent addresses gossip through one epidemic.
const CtrlIDBase overlay.NodeID = 1 << 20

// Directory is the gossiped address book: node id → newest known
// socket address, versioned per id so rebinds win over stale gossip.
// It implements runtime.AddrBook, plugging into the UDP transport's
// resolve/publish/piggyback seam, and additionally hands out rotating
// delta batches for the agent-to-agent anti-entropy rounds.
type Directory struct {
	mu       sync.Mutex
	entries  map[overlay.NodeID]runtime.DirEntry
	order    []overlay.NodeID // insertion order, the rotation ring
	piggyPos int
	deltaPos int
	rng      *rand.Rand
}

// NewDirectory returns an empty directory.
func NewDirectory(seed int64) *Directory {
	return &Directory{
		entries: make(map[overlay.NodeID]runtime.DirEntry),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Publish announces a locally bound socket: the entry's version bumps
// past anything previously known for the id, so the new binding
// outruns stale gossip.
func (d *Directory) Publish(id overlay.NodeID, addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	old, ok := d.entries[id]
	ver := uint32(1)
	if ok {
		ver = old.Ver + 1
	}
	d.put(runtime.DirEntry{ID: id, Ver: ver, Addr: addr}, ok)
}

// put stores an entry, extending the rotation ring for new ids. Caller
// holds the lock.
func (d *Directory) put(e runtime.DirEntry, known bool) {
	d.entries[e.ID] = e
	if !known {
		d.order = append(d.order, e.ID)
	}
}

// Resolve answers the newest known address for a node.
func (d *Directory) Resolve(id overlay.NodeID) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[id]
	return e.Addr, ok
}

// Len is the number of known bindings.
func (d *Directory) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// MergeWire folds received entries in, newest version per id winning.
func (d *Directory) MergeWire(entries []runtime.DirEntry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, e := range entries {
		old, ok := d.entries[e.ID]
		if !ok || e.Ver > old.Ver {
			d.put(e, ok)
		}
	}
}

// Piggyback returns up to max entries for a map-frame piggyback,
// advancing a rotation cursor so successive advertisements spread
// different slices of the directory.
func (d *Directory) Piggyback(max int) []runtime.DirEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rotate(&d.piggyPos, max)
}

// DeltaBatch returns up to max entries for an anti-entropy push round,
// on its own rotation cursor.
func (d *Directory) DeltaBatch(max int) []runtime.DirEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rotate(&d.deltaPos, max)
}

// rotate collects max live entries starting at *pos on the ring.
// Caller holds the lock.
func (d *Directory) rotate(pos *int, max int) []runtime.DirEntry {
	if len(d.order) == 0 || max <= 0 {
		return nil
	}
	if max > len(d.order) {
		max = len(d.order)
	}
	out := make([]runtime.DirEntry, 0, max)
	for len(out) < max {
		if *pos >= len(d.order) {
			*pos = 0
		}
		if e, ok := d.entries[d.order[*pos]]; ok {
			out = append(out, e)
		}
		*pos++
	}
	return out
}

// Snapshot copies up to max entries (the welcome's directory seed).
func (d *Directory) Snapshot(max int) []runtime.DirEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]runtime.DirEntry, 0, min(max, len(d.order)))
	for _, id := range d.order {
		if len(out) >= max {
			break
		}
		if e, ok := d.entries[id]; ok {
			out = append(out, e)
		}
	}
	return out
}

var _ runtime.AddrBook = (*Directory)(nil)
