package cluster

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/gob"
	"fmt"

	"gossipstream/internal/runtime"
	"gossipstream/internal/segment"
	"gossipstream/internal/sim"
)

// macLen is the truncated HMAC-SHA256 tag appended to every control
// frame's Ctrl field. 128 bits: comfortably beyond forgery on a
// control plane that moves a few hundred frames per run.
const macLen = 16

// seal authenticates a control frame in place: the tag is computed
// over the frame's full wire encoding (header, directory entries and
// payload — so sequence numbers, addressing and directory contents are
// all covered) and appended to Ctrl. A FrameDirDelta seals with an
// empty payload, leaving Ctrl = tag alone.
func seal(f *runtime.Frame, token []byte) {
	mac := hmac.New(sha256.New, token)
	mac.Write(runtime.EncodeFrame(*f))
	f.Ctrl = append(f.Ctrl, mac.Sum(nil)[:macLen]...)
}

// open verifies and strips the tag, restoring Ctrl to the bare
// payload. It reports false for short, forged or corrupted frames —
// the caller drops them like any malformed datagram.
func open(f *runtime.Frame, token []byte) bool {
	if len(f.Ctrl) < macLen {
		return false
	}
	tag := f.Ctrl[len(f.Ctrl)-macLen:]
	inner := *f
	inner.Ctrl = f.Ctrl[:len(f.Ctrl)-macLen]
	mac := hmac.New(sha256.New, token)
	mac.Write(runtime.EncodeFrame(inner))
	if !hmac.Equal(tag, mac.Sum(nil)[:macLen]) {
		return false
	}
	f.Ctrl = inner.Ctrl
	return true
}

// The control-plane message alphabet, carried gob-encoded in the Ctrl
// payload of FrameHello, FrameEvent and FrameAck.

// Hello is a joining process knocking on the starter node: its control
// socket address, so the coordinator can answer (and gossip it on).
type Hello struct {
	Addr string
}

// Welcome is the coordinator's answer — everything a joiner needs to
// reconstruct the run: its shard assignment, the full scenario text
// (compiled locally, so graph and profiles agree by construction), the
// pacing and algorithm, and a seed of the address directory. The rest
// of the directory arrives by gossip.
type Welcome struct {
	Shard     int
	Shards    int
	Scenario  string
	TimeScale float64
	Algo      string
	Dir       []runtime.DirEntry
}

// Start releases the shards once every expected worker has joined.
type Start struct {
	Workers int
}

// Status is one shard's per-tick heartbeat: where its clock is, whether
// its windows are closed, the highest directive it has applied, and its
// nodes' failure-detector state for the coordinator's resolutions.
// Health piggybacks the shard's compact observability summary on the
// same unreliable cast — the cluster's health gossip rides the existing
// status stream rather than a second reporting channel. (Gob tolerates
// the field being absent, so mixed-version processes interoperate.)
type Status struct {
	Shard      int
	Tick       int
	Idle       bool
	AppliedSeq uint64
	Nodes      []runtime.NodeStatus
	Health     *runtime.HealthSample
}

// Report ships one window of a shard's finished result back for the
// merge — one message per window keeps every datagram far below the
// wire codec's control-payload bound regardless of how many windows a
// scenario opened. Count is the shard's total window count (a shard
// with no windows sends a single Count=0 marker so the coordinator
// still learns it finished).
type Report struct {
	Shard     int
	Algo      string
	WindowIdx int
	Count     int
	Window    *sim.SwitchMetrics
}

// S1End is the reply payload of a DirStopSource ack: the closing
// segment id of the stopped source's session.
type S1End struct {
	Seg segment.ID
	OK  bool
}

// Payload is the gob envelope: exactly one pointer field is set,
// selected by Kind.
type Payload struct {
	Kind    string // "hello", "welcome", "start", "directive", "status", "report", "s1end", "fence"
	Hello   *Hello
	Welcome *Welcome
	Start   *Start
	Dir     *runtime.Directive
	Status  *Status
	Report  *Report
	S1End   *S1End
}

// encodePayload gob-encodes one envelope.
func encodePayload(p *Payload) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		// Every payload type is a plain exported struct; an encode error
		// is a programming bug, not an input condition.
		panic(fmt.Sprintf("cluster: gob encode: %v", err))
	}
	return buf.Bytes()
}

// decodePayload parses an envelope; errors mean a malformed (but
// authenticated — so version-skewed) payload.
func decodePayload(b []byte) (*Payload, error) {
	p := new(Payload)
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(p); err != nil {
		return nil, fmt.Errorf("cluster: payload decode: %w", err)
	}
	return p, nil
}
