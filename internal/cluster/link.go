package cluster

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"gossipstream/internal/netmodel"
	"gossipstream/internal/obs"
	"gossipstream/internal/overlay"
	"gossipstream/internal/runtime"
	"gossipstream/internal/segment"
)

// Control-plane timing (wall clock; the control plane does not stretch
// with TimeScale — retransmission pace is an implementation property,
// not a scenario property).
const (
	retryEvery  = 50 * time.Millisecond
	helloEvery  = 200 * time.Millisecond
	reorderMax  = 64 // held out-of-order frames per source before dropping
	gossipBatch = 64 // directory entries per anti-entropy push
)

// inMsg is one authenticated control message as the link delivers it:
// decoded, deduplicated and — for sequenced messages — in order per
// source. Ack must be called after the message is applied (nil for
// unsequenced messages); its reply travels in the ack frame back to a
// waiting call.
type inMsg struct {
	From int // source shard
	Seq  uint64
	P    *Payload
	Ack  func(reply *Payload)
}

// link is one process's control endpoint: a UDP socket speaking sealed
// runtime frames, with a reliable sequenced channel per peer shard on
// top (retry until acked, in-order delivery, duplicate suppression)
// and unsequenced fire-and-forget for per-tick status.
//
// Frames carry From/To as shard anchor node ids (shard k ↔ node id k,
// which shard k owns by the id-mod-shards split), so the run's shared
// LinkPolicy can judge control traffic exactly as it judges peer
// traffic: a partition that separates the anchor nodes severs the
// control plane. The policy applies on the way OUT only — each process
// polices its own sends — so a coordinator that heals its own policy
// first can always re-reach workers whose policies still carry the
// partition; their acks start flowing once the heal directive lands.
type link struct {
	shard int
	token []byte
	book  *Directory
	conn  *net.UDPConn

	mu      sync.Mutex
	rng     *rand.Rand
	policy  func() netmodel.LinkPolicy // nil or returning nil: unshaped
	tickFn  func() int
	wallPer float64 // wall ms per scenario ms, for shaped control delay
	nextSeq map[int]uint64
	pending map[pendKey]*pendFrame
	waiters map[pendKey]chan []byte
	inNext  map[int]uint64
	held    map[int]map[uint64]runtime.Frame
	replies map[pendKey][]byte // sealed ack datagrams, for dup re-ack
	remote  map[string]*net.UDPAddr
	closed  bool

	// Keepalive: the coordinator probes suspected shards with FramePing;
	// any link answers from its reader goroutine (proving the process
	// alive even when its run loop is wedged), and onPong feeds answers
	// back to the failure detector.
	onPong    func(from int)
	pingNonce int64

	// chaosDrop, when set, vetoes outbound frames of a kind — the
	// fault-injection seam internal/chaos hooks to drop a worker's
	// control acks (see docs/TESTING.md).
	chaosDrop func(kind runtime.FrameKind) bool

	inbox chan inMsg
	done  chan struct{}
	wg    sync.WaitGroup

	// Control-plane telemetry (nil when observability is disabled; both
	// sinks are nil-safe). Retransmissions are the control plane's
	// leading distress signal, so they get a counter and a trace line.
	obsRetries *obs.Counter
	trace      *obs.Trace
}

type pendKey struct {
	shard int
	seq   uint64
}

type pendFrame struct {
	data []byte
	to   int
}

// newLink binds a control socket on listen ("" for an ephemeral
// loopback port) and, when the shard is already known (the
// coordinator), publishes it in the directory under CtrlIDBase+shard
// so gossip spreads it. A joiner binds with shard -1 and calls
// setShard once the welcome assigns one.
func newLink(listen string, shard int, token string, book *Directory, seed int64) (*link, error) {
	laddr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
	if listen != "" {
		var err error
		if laddr, err = net.ResolveUDPAddr("udp", listen); err != nil {
			return nil, fmt.Errorf("cluster: bad listen address %q: %w", listen, err)
		}
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("cluster: control bind: %w", err)
	}
	conn.SetReadBuffer(udpCtrlBuf)
	conn.SetWriteBuffer(udpCtrlBuf)
	l := &link{
		shard:   shard,
		token:   []byte(token),
		book:    book,
		conn:    conn,
		rng:     rand.New(rand.NewSource(seed)),
		wallPer: 1,
		nextSeq: make(map[int]uint64),
		pending: make(map[pendKey]*pendFrame),
		waiters: make(map[pendKey]chan []byte),
		inNext:  make(map[int]uint64),
		held:    make(map[int]map[uint64]runtime.Frame),
		replies: make(map[pendKey][]byte),
		remote:  make(map[string]*net.UDPAddr),
		inbox:   make(chan inMsg, 256),
		done:    make(chan struct{}),
	}
	if shard >= 0 {
		book.Publish(CtrlIDBase+overlay.NodeID(shard), conn.LocalAddr().String())
	}
	l.wg.Add(2)
	go l.read()
	go l.retryLoop()
	return l, nil
}

// setShard records a joiner's welcome-assigned shard and publishes its
// control socket under the corresponding directory id. Must run before
// the welcome is acked (the ack carries the shard's anchor id).
func (l *link) setShard(shard int) {
	l.mu.Lock()
	l.shard = shard
	l.mu.Unlock()
	l.book.Publish(CtrlIDBase+overlay.NodeID(shard), l.conn.LocalAddr().String())
}

// udpCtrlBuf sizes the control socket; modest next to the data plane's
// buffers, but explicit for the same reason.
const udpCtrlBuf = 1 << 20

// setPolicy installs the run's policy seam: the accessor is consulted
// per send, so mid-run mutations (partitions, loss bursts) apply
// immediately.
func (l *link) setPolicy(p func() netmodel.LinkPolicy, tick func() int, wallPerScenarioMS float64) {
	l.mu.Lock()
	l.policy = p
	l.tickFn = tick
	l.wallPer = wallPerScenarioMS
	l.mu.Unlock()
}

// setObs attaches the control plane's telemetry sinks.
func (l *link) setObs(o *obs.Obs) {
	if o == nil {
		return
	}
	l.obsRetries = o.Registry().Counter("gossip_ctrl_retries_total",
		"control-plane retransmissions of unacknowledged sequenced frames")
	l.trace = o.Tracer()
}

// setOnPong installs the keepalive-answer callback (invoked from the
// reader goroutine; the callback must do its own locking).
func (l *link) setOnPong(fn func(from int)) {
	l.mu.Lock()
	l.onPong = fn
	l.mu.Unlock()
}

// setChaosDrop installs the outbound fault-injection veto.
func (l *link) setChaosDrop(fn func(kind runtime.FrameKind) bool) {
	l.mu.Lock()
	l.chaosDrop = fn
	l.mu.Unlock()
}

// dropFrame consults the fault-injection veto for one outbound frame.
func (l *link) dropFrame(kind runtime.FrameKind) bool {
	l.mu.Lock()
	fn := l.chaosDrop
	l.mu.Unlock()
	return fn != nil && fn(kind)
}

// addr is the bound control address.
func (l *link) addr() string { return l.conn.LocalAddr().String() }

// close shuts the socket and reaps the goroutines.
func (l *link) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.mu.Unlock()
	close(l.done)
	l.conn.Close()
	l.wg.Wait()
}

// pendingEmpty reports whether every reliable send toward the shard
// has been acknowledged.
func (l *link) pendingEmpty(dest int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for k := range l.pending {
		if k.shard == dest {
			return false
		}
	}
	return true
}

// forget abandons every reliable send toward a dead shard: pending
// retries stop, and blocked callers are released with a nil reply. The
// coordinator calls it at failover so a corpse cannot pin the retry
// loop or the drain check.
func (l *link) forget(dest int) {
	l.mu.Lock()
	var woken []chan []byte
	for k := range l.pending {
		if k.shard == dest {
			delete(l.pending, k)
		}
	}
	for k, ch := range l.waiters {
		if k.shard == dest {
			delete(l.waiters, k)
			woken = append(woken, ch)
		}
	}
	l.mu.Unlock()
	for _, ch := range woken {
		ch <- nil
	}
}

// probe sends one keepalive ping (unsequenced, losable; the detector
// re-probes every tick while suspicion lasts).
func (l *link) probe(dest int) {
	l.mu.Lock()
	l.pingNonce++
	nonce := l.pingNonce
	l.mu.Unlock()
	f := runtime.Frame{
		Kind: runtime.FramePing,
		Msg: netmodel.Message{
			From: l.anchor(), To: overlay.NodeID(dest),
			Seg: segment.ID(nonce),
		},
	}
	seal(&f, l.token)
	l.transmit(dest, runtime.EncodeFrame(f))
}

// lastSeq is the highest sequence number handed to the peer shard —
// the mark a worker's AppliedSeq must reach before the coordinator may
// declare it drained.
func (l *link) lastSeq(dest int) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq[dest]
}

// send ships a payload on the reliable channel to a peer shard: it is
// retried until acknowledged and delivered in sequence order. Returns
// the assigned sequence number.
func (l *link) send(dest int, p *Payload) uint64 {
	data, seq := l.sealSequenced(dest, p)
	l.transmit(dest, data)
	return seq
}

// call ships reliably and blocks until the acknowledgement arrives (the
// retry loop keeps transmitting meanwhile), returning the ack's reply
// payload (nil when the ack was bare). The error is only ever the
// timeout — a severed control plane that outlasts the caller's
// patience.
func (l *link) call(dest int, p *Payload, timeout time.Duration) (*Payload, error) {
	data, seq := l.sealSequenced(dest, p)
	ch := make(chan []byte, 1)
	key := pendKey{dest, seq}
	l.mu.Lock()
	l.waiters[key] = ch
	l.mu.Unlock()
	l.transmit(dest, data)
	select {
	case reply := <-ch:
		if len(reply) == 0 {
			return nil, nil
		}
		return decodePayload(reply)
	case <-time.After(timeout):
		l.mu.Lock()
		delete(l.waiters, key)
		l.mu.Unlock()
		return nil, fmt.Errorf("cluster: no ack from shard %d for seq %d within %v", dest, seq, timeout)
	case <-l.done:
		return nil, fmt.Errorf("cluster: link closed")
	}
}

// cast ships an unsequenced fire-and-forget payload (per-tick status):
// no retry, no ack, losable by design.
func (l *link) cast(dest int, p *Payload) {
	f := runtime.Frame{
		Kind: runtime.FrameEvent,
		Msg:  netmodel.Message{From: l.anchor(), To: overlay.NodeID(dest)},
		Ctrl: encodePayload(p),
	}
	seal(&f, l.token)
	l.transmit(dest, runtime.EncodeFrame(f))
}

// gossip pushes a directory delta batch to a peer shard's control
// socket — the agent-to-agent anti-entropy round.
func (l *link) gossip(dest int, entries []runtime.DirEntry) {
	if len(entries) == 0 {
		return
	}
	f := runtime.Frame{
		Kind: runtime.FrameDirDelta,
		Msg:  netmodel.Message{From: l.anchor(), To: overlay.NodeID(dest)},
		Dir:  entries,
	}
	seal(&f, l.token)
	l.transmit(dest, runtime.EncodeFrame(f))
}

// sendHello knocks on an explicit address (the starter, known from the
// command line — the only address that is ever configured rather than
// gossiped).
func (l *link) sendHello(to string, h *Hello) error {
	addr, err := l.resolve(to)
	if err != nil {
		return err
	}
	f := runtime.Frame{
		Kind: runtime.FrameHello,
		// The joiner has no shard yet; the anchor is out of the policy's
		// id range and hellos skip shaping (pure pre-run bootstrap).
		Msg:  netmodel.Message{From: CtrlIDBase, To: CtrlIDBase},
		Ctrl: encodePayload(&Payload{Kind: "hello", Hello: h}),
	}
	seal(&f, l.token)
	_, err = l.conn.WriteToUDP(runtime.EncodeFrame(f), addr)
	return err
}

// anchor is this shard's policy-visible node id (the joiner's shard is
// assigned by the welcome, so it is read under the lock).
func (l *link) anchor() overlay.NodeID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return overlay.NodeID(l.shard)
}

// sealSequenced assigns the next sequence number toward dest, seals the
// frame and registers it for retry.
func (l *link) sealSequenced(dest int, p *Payload) ([]byte, uint64) {
	l.mu.Lock()
	l.nextSeq[dest]++
	seq := l.nextSeq[dest]
	l.mu.Unlock()
	f := runtime.Frame{
		Kind: runtime.FrameEvent,
		Msg: netmodel.Message{
			From: l.anchor(), To: overlay.NodeID(dest),
			Sent: int(seq),
		},
		Ctrl: encodePayload(p),
	}
	seal(&f, l.token)
	data := runtime.EncodeFrame(f)
	l.mu.Lock()
	l.pending[pendKey{dest, seq}] = &pendFrame{data: data, to: dest}
	l.mu.Unlock()
	return data, seq
}

// transmit puts one sealed datagram toward a shard through the policy
// gate: blocked links drop it, shaped links may lose or delay it. The
// reliable layer's retries (not the wire) provide delivery.
func (l *link) transmit(dest int, data []byte) {
	addrStr, ok := l.book.Resolve(CtrlIDBase + overlay.NodeID(dest))
	if !ok {
		return // address not yet gossiped: a later retry will find it
	}
	addr, err := l.resolve(addrStr)
	if err != nil {
		return
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	var delay time.Duration
	if l.policy != nil {
		if p := l.policy(); p != nil {
			from, to := overlay.NodeID(l.shard), overlay.NodeID(dest)
			if p.Blocked(from, to) {
				l.mu.Unlock()
				return
			}
			tick := 0
			if l.tickFn != nil {
				tick = l.tickFn()
			}
			if loss := p.LossProb(tick); loss > 0 && l.rng.Float64() < loss {
				l.mu.Unlock()
				return
			}
			jitter := 0.0
			if j := p.JitterMS(); j > 0 {
				jitter = l.rng.Float64() * j
			}
			delay = time.Duration(p.DelayMS(from, to, jitter) * l.wallPer * float64(time.Millisecond))
		}
	}
	l.mu.Unlock()
	if delay <= 0 {
		l.conn.WriteToUDP(data, addr)
		return
	}
	time.AfterFunc(delay, func() {
		l.mu.Lock()
		closed := l.closed
		l.mu.Unlock()
		if !closed {
			l.conn.WriteToUDP(data, addr)
		}
	})
}

// resolve parses and caches a socket address.
func (l *link) resolve(s string) (*net.UDPAddr, error) {
	l.mu.Lock()
	addr, hit := l.remote[s]
	l.mu.Unlock()
	if hit {
		return addr, nil
	}
	addr, err := net.ResolveUDPAddr("udp", s)
	if err != nil {
		return nil, fmt.Errorf("cluster: bad control address %q: %w", s, err)
	}
	l.mu.Lock()
	l.remote[s] = addr
	l.mu.Unlock()
	return addr, nil
}

// retryLoop retransmits every unacknowledged sequenced frame, oldest
// sequence first per destination, until acked or closed.
func (l *link) retryLoop() {
	defer l.wg.Done()
	t := time.NewTicker(retryEvery)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
		}
		l.mu.Lock()
		keys := make([]pendKey, 0, len(l.pending))
		for k := range l.pending {
			keys = append(keys, k)
		}
		frames := make([]*pendFrame, len(keys))
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].shard != keys[j].shard {
				return keys[i].shard < keys[j].shard
			}
			return keys[i].seq < keys[j].seq
		})
		for i, k := range keys {
			frames[i] = l.pending[k]
		}
		l.mu.Unlock()
		for i, k := range keys {
			l.transmit(k.shard, frames[i].data)
			l.obsRetries.Inc()
			if l.trace != nil {
				tick := 0
				l.mu.Lock()
				if l.tickFn != nil {
					tick = l.tickFn()
				}
				l.mu.Unlock()
				l.trace.Emit(obs.TraceEvent{T: obs.EvRetry, Tick: tick,
					Dest: k.shard, Seq: k.seq})
			}
		}
	}
}

// read decodes, authenticates and dispatches inbound control datagrams
// until the socket closes. Inbound frames are never policy-checked —
// the sender's gate already ruled — which is what lets a healed
// coordinator re-reach still-partitioned workers.
func (l *link) read() {
	defer l.wg.Done()
	buf := make([]byte, 64*1024)
	for {
		sz, _, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		f, err := runtime.DecodeFrame(buf[:sz])
		if err != nil || !f.Kind.Control() {
			continue
		}
		if !open(&f, l.token) {
			continue // forged or corrupted: drop silently
		}
		switch f.Kind {
		case runtime.FrameDirDelta:
			l.book.MergeWire(f.Dir)
		case runtime.FrameAck:
			l.handleAck(f)
		case runtime.FrameHello, runtime.FrameEvent:
			l.handleMsg(f)
		case runtime.FramePing:
			// Answer from the reader itself: liveness of the process,
			// not of its run loop, is what the pong attests.
			pong := runtime.Frame{
				Kind: runtime.FramePong,
				Msg: netmodel.Message{
					From: l.anchor(), To: f.Msg.From, Seg: f.Msg.Seg,
				},
			}
			seal(&pong, l.token)
			l.transmit(int(f.Msg.From), runtime.EncodeFrame(pong))
		case runtime.FramePong:
			l.mu.Lock()
			fn := l.onPong
			l.mu.Unlock()
			if fn != nil {
				fn(int(f.Msg.From))
			}
		}
	}
}

// handleAck completes the pending entry and wakes any caller.
func (l *link) handleAck(f runtime.Frame) {
	key := pendKey{int(f.Msg.From), uint64(f.Msg.Seg)}
	l.mu.Lock()
	_, had := l.pending[key]
	delete(l.pending, key)
	ch := l.waiters[key]
	delete(l.waiters, key)
	l.mu.Unlock()
	if !had || ch == nil {
		return
	}
	ch <- append([]byte(nil), f.Ctrl...)
}

// handleMsg runs the sequenced-delivery state machine (and passes
// hellos and unsequenced events straight through).
func (l *link) handleMsg(f runtime.Frame) {
	p, err := decodePayload(f.Ctrl)
	if err != nil {
		return
	}
	from := int(f.Msg.From)
	seq := uint64(f.Msg.Sent)
	if f.Kind == runtime.FrameHello || seq == 0 {
		l.deliver(inMsg{From: from, P: p})
		return
	}
	l.mu.Lock()
	next := l.inNext[from]
	if next == 0 {
		next = 1
		l.inNext[from] = 1
	}
	switch {
	case seq < next:
		// Duplicate of an applied message: re-send the retained ack so
		// the sender stops retrying (the original ack may have been
		// severed on its way out).
		reply := l.replies[pendKey{from, seq}]
		l.mu.Unlock()
		if reply != nil && !l.dropFrame(runtime.FrameAck) {
			l.transmit(from, reply)
		}
		return
	case seq > next:
		h := l.held[from]
		if h == nil {
			h = make(map[uint64]runtime.Frame)
			l.held[from] = h
		}
		if len(h) < reorderMax {
			h[seq] = f
		}
		l.mu.Unlock()
		return
	}
	// In sequence: deliver, then drain any held successors.
	l.inNext[from] = next + 1
	ready := []runtime.Frame{f}
	for {
		nf, ok := l.held[from][l.inNext[from]]
		if !ok {
			break
		}
		delete(l.held[from], l.inNext[from])
		l.inNext[from]++
		ready = append(ready, nf)
	}
	l.mu.Unlock()
	for i, rf := range ready {
		rp := p
		if i > 0 {
			var err error
			if rp, err = decodePayload(rf.Ctrl); err != nil {
				continue
			}
		}
		seq := uint64(rf.Msg.Sent)
		if !l.deliver(l.sequencedMsg(from, seq, rp)) {
			// Inbox full: rewind so the sender's retry re-enters the
			// sequence window here, and discard the rest of the batch
			// (unacked, so it is retried too).
			l.mu.Lock()
			l.inNext[from] = seq
			l.mu.Unlock()
			return
		}
	}
}

// sequencedMsg builds the delivery with its apply-then-ack closure.
func (l *link) sequencedMsg(from int, seq uint64, p *Payload) inMsg {
	return inMsg{
		From: from,
		Seq:  seq,
		P:    p,
		Ack: func(reply *Payload) {
			af := runtime.Frame{
				Kind: runtime.FrameAck,
				Msg: netmodel.Message{
					From: l.anchor(), To: overlay.NodeID(from),
					Seg: segment.ID(seq),
				},
			}
			if reply != nil {
				af.Ctrl = encodePayload(reply)
			}
			seal(&af, l.token)
			data := runtime.EncodeFrame(af)
			l.mu.Lock()
			l.replies[pendKey{from, seq}] = data
			l.mu.Unlock()
			// The retained reply survives a chaos ack-drop window: once
			// the fault lifts, the sender's retry triggers the dup
			// re-ack path above.
			if !l.dropFrame(runtime.FrameAck) {
				l.transmit(from, data)
			}
		},
	}
}

// deliver hands one message to the application without ever blocking
// the reader (a blocked reader would stall ack processing and deadlock
// a waiting call). A full inbox drops the message: the caller rewinds
// sequenced ones for redelivery; unsequenced ones are losable by
// contract.
func (l *link) deliver(m inMsg) bool {
	select {
	case l.inbox <- m:
		return true
	default:
		return false
	}
}
