package cluster

import (
	stdruntime "runtime"
	"sync"
	"testing"

	"gossipstream/internal/runtime"
	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
)

// runClusterOpts executes one scenario as a starter plus `workers`
// joiners, all in this process over real UDP loopback sockets. The
// mutators (either may be nil) adjust the starter Config and each
// joiner's JoinConfig before launch; the joiners' errors come back
// unjudged so chaos tests can expect a scripted death.
func runClusterOpts(t *testing.T, sc *scenario.Scenario, workers int, timeScale float64,
	mutate func(*Config), mutateJoin func(int, *JoinConfig)) (*sim.Result, []error) {
	t.Helper()
	addrCh := make(chan string, 1)
	type out struct {
		res *sim.Result
		err error
	}
	servCh := make(chan out, 1)
	cfg := Config{
		Scenario:  sc,
		Algo:      "fast",
		Workers:   workers,
		TimeScale: timeScale,
		Token:     "cluster-test",
		Listen:    "127.0.0.1:0",
		Ready:     func(a string) { addrCh <- a },
		Logf:      t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	go func() {
		res, _, err := Serve(cfg)
		servCh <- out{res, err}
	}()
	addr := <-addrCh
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jc := JoinConfig{
				Starter: addr,
				Token:   "cluster-test",
				Seed:    int64(i + 1),
				Logf:    t.Logf,
			}
			if mutateJoin != nil {
				mutateJoin(i, &jc)
			}
			_, errs[i] = Join(jc)
		}(i)
	}
	got := <-servCh
	wg.Wait()
	if got.err != nil {
		t.Fatalf("serve: %v", got.err)
	}
	return got.res, errs
}

// runCluster is runClusterOpts with defaults and every join required to
// succeed. Returns the merged result from the starter.
func runCluster(t *testing.T, sc *scenario.Scenario, workers int, timeScale float64) *sim.Result {
	t.Helper()
	res, errs := runClusterOpts(t, sc, workers, timeScale, nil, nil)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}
	return res
}

// TestClusterParityPaperSingleSwitch pins a three-process run of the
// paper's evaluation scenario against a single-process live run over
// the same UDP loopback transport — the PR 5 parity tolerances, one
// layer up: the same scenario, now with the peer population sharded
// across a starter and two joiners whose only shared state is the
// gossiped directory and the broadcast directives.
func TestClusterParityPaperSingleSwitch(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard parity run takes several seconds")
	}
	if raceEnabled && stdruntime.NumCPU() < 2 {
		t.Skip("race build on a single CPU saturates the pacer (see race_on_test.go)")
	}
	sc := scenario.PaperSingleSwitch().Scaled(60)

	r, err := runtime.FromScenario(sc, sim.Fast, runtime.Options{
		Transport: runtime.NewUDPTransport(sc.Seed ^ 0x11fe),
		TimeScale: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}

	res := runCluster(t, sc, 2, 50)

	if len(res.Windows) != len(ref.Windows) {
		t.Fatalf("cluster has %d windows, single-process has %d", len(res.Windows), len(ref.Windows))
	}
	cw, rw := res.Windows[0], ref.Windows[0]
	t.Logf("single : %s", rw)
	t.Logf("cluster: %s", cw)

	if cw.Kind != "switch" || rw.Kind != "switch" {
		t.Fatalf("window kinds: cluster %q, single %q", cw.Kind, rw.Kind)
	}
	// The scripted switch names an old source owned by shard 1, so the
	// coordinator must complete a stop-source round trip before it can
	// resolve the switch — the event lands a tick or two after the
	// scripted instant, never before it.
	if d := cw.Tick - rw.Tick; d < 0 || d > 5 {
		t.Errorf("switch tick: cluster %d, single %d (want scripted tick plus a short stop round trip)", cw.Tick, rw.Tick)
	}
	// The cohort is frozen per shard at each shard's own window-open
	// instant, so a report lagging one period across the process
	// boundary can shift it by a node or two.
	if d := cw.Cohort - rw.Cohort; d > 2 || d < -2 {
		t.Errorf("cohort: cluster %d, single %d", cw.Cohort, rw.Cohort)
	}

	maxStragglers := cw.Cohort / 50
	if cw.UnfinishedS1 > maxStragglers || cw.UnpreparedS2 > maxStragglers {
		t.Errorf("incomplete window: unfinished=%d unprepared=%d (allowed %d of cohort %d)",
			cw.UnfinishedS1, cw.UnpreparedS2, maxStragglers, cw.Cohort)
	}
	if got := len(cw.PrepareS2Times); got < cw.Cohort-maxStragglers {
		t.Errorf("prepare-S2 samples: %d of cohort %d", got, cw.Cohort)
	}

	refPrep, cluPrep := rw.AvgPrepareS2(), cw.AvgPrepareS2()
	if cluPrep < 0.5*refPrep || cluPrep > 2.5*refPrep {
		t.Errorf("avg prepare S2: cluster %.2fs outside [0.5, 2.5]× single %.2fs", cluPrep, refPrep)
	}
	refFin, cluFin := rw.AvgFinishS1(), cw.AvgFinishS1()
	if cluFin < 0.5*refFin || cluFin > 2.5*refFin {
		t.Errorf("avg finish S1: cluster %.2fs outside [0.5, 2.5]× single %.2fs", cluFin, refFin)
	}
	if d := rw.Continuity() - cw.Continuity(); d > 0.25 {
		t.Errorf("continuity: cluster %.4f more than 0.25 below single %.4f", cw.Continuity(), rw.Continuity())
	}
	if cw.Overhead() > 4*rw.Overhead() || cw.Overhead() <= 0 {
		t.Errorf("overhead: cluster %.4f vs single %.4f", cw.Overhead(), rw.Overhead())
	}
}

// TestClusterEventSurvivesLossBurst runs the lossy-uplink scenario
// sharded: a 25% loss burst is already breaking over the control plane
// when the switch directive must go out, so the event only lands
// through the link layer's retries — and the merged window must still
// complete.
func TestClusterEventSurvivesLossBurst(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy multi-shard run takes several seconds")
	}
	if raceEnabled && stdruntime.NumCPU() < 2 {
		t.Skip("race build on a single CPU saturates the pacer (see race_on_test.go)")
	}
	sc := scenario.LossyUplink().Scaled(45)
	res := runCluster(t, sc, 2, 50)

	var sw *sim.SwitchMetrics
	for _, w := range res.Windows {
		if w.Kind == "switch" {
			sw = w
			break
		}
	}
	if sw == nil {
		t.Fatalf("no switch window in %d merged windows — the event never landed", len(res.Windows))
	}
	t.Logf("merged: %s", sw)
	t.Logf("net: delivered=%d lost=%d rereq=%d", sw.NetDelivered, sw.NetLost, sw.NetReRequests)
	if sw.Cohort == 0 {
		t.Fatal("empty merged cohort")
	}
	if got := len(sw.PrepareS2Times); got*2 < sw.Cohort {
		t.Errorf("only %d of cohort %d prepared the new stream under loss", got, sw.Cohort)
	}
	if sw.NetDelivered == 0 {
		t.Error("no shaped data deliveries recorded — the policy seam is dead")
	}
}
