//go:build !race

package cluster

// raceEnabled: see race_on_test.go.
const raceEnabled = false
