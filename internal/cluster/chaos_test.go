package cluster

import (
	"errors"
	stdruntime "runtime"
	"testing"
	"time"

	"gossipstream/internal/chaos"
	"gossipstream/internal/obs"
	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
)

// chaosTuning shrinks the failure detector and the blocking timeouts so
// a failover resolves inside a test run.
var chaosTuning = Tuning{
	SuspectAfter:  3,
	DeadAfter:     6,
	CallTimeout:   10 * time.Second,
	ReportTimeout: 15 * time.Second,
}

// TestClusterSurvivesWorkerKill is the in-process half of the tentpole:
// three shards over UDP loopback, a scripted fail-stop kills one worker
// mid-run, and the merged run must still complete — the dead shard's
// peers reassigned to the survivors, exactly one failover counted, and
// the merged result passing the live invariant audit.
func TestClusterSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard chaos run takes several seconds")
	}
	if raceEnabled && stdruntime.NumCPU() < 2 {
		t.Skip("race build on a single CPU saturates the pacer (see race_on_test.go)")
	}
	sc := scenario.PaperSingleSwitch().Scaled(60)
	// Shard 1 owns the scripted switch's old source (see the parity
	// test), so killing shard 2 exercises the pure reassignment path.
	plan := &chaos.Plan{Faults: []chaos.Fault{
		{Shard: 2, Tick: 12, Kind: chaos.Kill},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, errs := runClusterOpts(t, sc, 2, 50,
		func(cfg *Config) {
			cfg.Obs = &obs.Obs{Reg: reg}
			cfg.Tuning = chaosTuning
		},
		func(_ int, jc *JoinConfig) { jc.Chaos = plan })

	killed := 0
	for i, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, chaos.ErrKilled):
			killed++
		default:
			t.Fatalf("join %d: %v", i, err)
		}
	}
	if killed != 1 {
		t.Fatalf("%d joiners died, the plan kills exactly one", killed)
	}

	if got := reg.Counter("gossip_worker_failovers_total", "").Value(); got != 1 {
		t.Errorf("gossip_worker_failovers_total = %d, want 1", got)
	}
	if got := reg.Counter("gossip_shards_reassigned_total", "").Value(); got != 1 {
		t.Errorf("gossip_shards_reassigned_total = %d, want 1", got)
	}
	if got := reg.Counter("gossip_peers_respawned_total", "").Value(); got < 10 {
		t.Errorf("gossip_peers_respawned_total = %d, want the dead shard's ~20 listeners", got)
	}
	if got := reg.Counter("gossip_workers_suspected_total", "").Value(); got < 1 {
		t.Errorf("gossip_workers_suspected_total = %d, want >= 1", got)
	}

	var sw *sim.SwitchMetrics
	for _, w := range res.Windows {
		if w.Kind == "switch" {
			sw = w
			break
		}
	}
	if sw == nil {
		t.Fatalf("no switch window in %d merged windows — the run never switched after the failover", len(res.Windows))
	}
	t.Logf("merged: %s", sw)
	if sw.Cohort < 50 {
		t.Errorf("merged cohort %d lost the dead shard's peers (population 60)", sw.Cohort)
	}
	if sw.UnfinishedS1 != 0 || sw.UnpreparedS2 != 0 {
		t.Errorf("incomplete window after failover: unfinished=%d unprepared=%d", sw.UnfinishedS1, sw.UnpreparedS2)
	}

	scfg, err := sc.Config(sim.Fast)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckLiveInvariants(scfg, res); err != nil {
		t.Errorf("live invariants: %v", err)
	}
}

// TestClusterHangOnlySuspects scripts a worker hang (plus ack-drop and
// delayed-status windows on the other worker): the detector must
// suspect the wedged shard — the link's reader keeps answering
// keepalives — but never declare it dead, and the run completes with
// zero failovers once the shard wakes up.
func TestClusterHangOnlySuspects(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-shard chaos run takes several seconds")
	}
	if raceEnabled && stdruntime.NumCPU() < 2 {
		t.Skip("race build on a single CPU saturates the pacer (see race_on_test.go)")
	}
	sc := scenario.PaperSingleSwitch().Scaled(60)
	plan := &chaos.Plan{Faults: []chaos.Fault{
		{Shard: 1, Tick: 12, Kind: chaos.Hang, Ticks: 8},
		{Shard: 2, Tick: 20, Kind: chaos.DelayReports, Ticks: 5},
		{Shard: 2, Tick: 38, Kind: chaos.DropAcks, Ticks: 6},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, errs := runClusterOpts(t, sc, 2, 50,
		func(cfg *Config) {
			cfg.Obs = &obs.Obs{Reg: reg}
			// A hung worker must survive: suspicion comes fast, death
			// far beyond the scripted hang.
			cfg.Tuning = Tuning{SuspectAfter: 2, DeadAfter: 40,
				CallTimeout: 10 * time.Second, ReportTimeout: 15 * time.Second}
		},
		func(_ int, jc *JoinConfig) { jc.Chaos = plan })
	for i, err := range errs {
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}

	if got := reg.Counter("gossip_worker_failovers_total", "").Value(); got != 0 {
		t.Errorf("gossip_worker_failovers_total = %d after a mere hang, want 0", got)
	}
	if got := reg.Counter("gossip_workers_suspected_total", "").Value(); got < 1 {
		t.Errorf("gossip_workers_suspected_total = %d, want >= 1 for an 8-tick hang", got)
	}

	var sw *sim.SwitchMetrics
	for _, w := range res.Windows {
		if w.Kind == "switch" {
			sw = w
			break
		}
	}
	if sw == nil {
		t.Fatalf("no switch window in %d merged windows", len(res.Windows))
	}
	t.Logf("merged: %s", sw)
	if sw.Cohort < 50 {
		t.Errorf("merged cohort %d lost peers to a mere hang (population 60)", sw.Cohort)
	}
}

// TestClusterRejectsFalseFailover runs the lossy-uplink scenario — 5%
// baseline loss with a scripted 25% burst breaking over the switch —
// under an aggressively fast detector. Every scripted network fault is
// resolved by the coordinator itself, so the detector must excuse the
// silence it causes: zero suspicions, zero failovers, and the merged
// window still completes through the link layer's retries.
func TestClusterRejectsFalseFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("lossy multi-shard run takes several seconds")
	}
	if raceEnabled && stdruntime.NumCPU() < 2 {
		t.Skip("race build on a single CPU saturates the pacer (see race_on_test.go)")
	}
	sc := scenario.LossyUplink().Scaled(45)
	reg := obs.NewRegistry()
	res, errs := runClusterOpts(t, sc, 2, 50,
		func(cfg *Config) {
			cfg.Obs = &obs.Obs{Reg: reg}
			cfg.Tuning = Tuning{SuspectAfter: 2, DeadAfter: 4,
				CallTimeout: 10 * time.Second, ReportTimeout: 15 * time.Second}
		}, nil)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
	}

	if got := reg.Counter("gossip_worker_failovers_total", "").Value(); got != 0 {
		t.Errorf("gossip_worker_failovers_total = %d on a loss-burst-only run, want 0", got)
	}
	if got := reg.Counter("gossip_workers_suspected_total", "").Value(); got != 0 {
		t.Errorf("gossip_workers_suspected_total = %d, want 0 (scripted loss is excused)", got)
	}

	var sw *sim.SwitchMetrics
	for _, w := range res.Windows {
		if w.Kind == "switch" {
			sw = w
			break
		}
	}
	if sw == nil {
		t.Fatalf("no switch window in %d merged windows — the event never landed", len(res.Windows))
	}
	t.Logf("merged: %s", sw)
	if sw.Cohort == 0 {
		t.Fatal("empty merged cohort")
	}
	if got := len(sw.PrepareS2Times); got*2 < sw.Cohort {
		t.Errorf("only %d of cohort %d prepared the new stream under loss", got, sw.Cohort)
	}

	scfg, err := sc.Config(sim.Fast)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckLiveInvariants(scfg, res); err != nil {
		t.Errorf("live invariants: %v", err)
	}
}
