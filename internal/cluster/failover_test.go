package cluster

import "testing"

// drive advances the detector n ticks with nothing excused, collecting
// every promotion.
func drive(d *Detector, n int) []Transition {
	var out []Transition
	for i := 0; i < n; i++ {
		out = append(out, d.Tick(nil)...)
	}
	return out
}

// TestDetectorStateMachine tables the failure detector's promotion
// ladder: healthy shards stay healthy, silence promotes through
// suspected to dead, a fresh status cancels suspicion, pongs defer
// death indefinitely, scripted faults freeze the counters, and dead is
// terminal.
func TestDetectorStateMachine(t *testing.T) {
	cfg := DetectorConfig{SuspectAfter: 3, DeadAfter: 6}

	cases := []struct {
		name  string
		run   func(d *Detector) []Transition
		state map[int]FDState
		fired []Transition
	}{
		{
			name: "reporting shards stay healthy",
			run: func(d *Detector) (fired []Transition) {
				for i := 0; i < 20; i++ {
					fired = append(fired, d.Tick(nil)...)
					d.Observe(1)
					d.Observe(2)
				}
				return fired
			},
			state: map[int]FDState{1: FDHealthy, 2: FDHealthy},
		},
		{
			name: "silence promotes suspected then dead",
			run: func(d *Detector) (fired []Transition) {
				for i := 0; i < 10; i++ {
					fired = append(fired, d.Tick(nil)...)
					d.Observe(2) // shard 1 goes silent, shard 2 keeps reporting
				}
				return fired
			},
			state: map[int]FDState{1: FDDead, 2: FDHealthy},
			fired: []Transition{
				{Shard: 1, From: FDHealthy, To: FDSuspected},
				{Shard: 1, From: FDSuspected, To: FDDead},
			},
		},
		{
			name: "recovery cancels suspicion",
			run: func(d *Detector) []Transition {
				fired := drive(d, 4) // past SuspectAfter, short of DeadAfter
				tr := d.Observe(1)   // the merely-slow worker reports again
				if tr == nil || tr.From != FDSuspected || tr.To != FDHealthy {
					t.Fatalf("recovery transition = %+v", tr)
				}
				d.Observe(2)
				return fired
			},
			state: map[int]FDState{1: FDHealthy, 2: FDHealthy},
			fired: []Transition{
				{Shard: 1, From: FDHealthy, To: FDSuspected},
				{Shard: 2, From: FDHealthy, To: FDSuspected},
			},
		},
		{
			name: "pong defers death indefinitely",
			run: func(d *Detector) (fired []Transition) {
				for i := 0; i < 40; i++ {
					fired = append(fired, d.Tick(nil)...)
					d.Pong(1) // hung run loop: the link still answers pings
					d.Observe(2)
				}
				return fired
			},
			state: map[int]FDState{1: FDSuspected, 2: FDHealthy},
			fired: []Transition{{Shard: 1, From: FDHealthy, To: FDSuspected}},
		},
		{
			name: "excused shards never advance",
			run: func(d *Detector) (fired []Transition) {
				for i := 0; i < 40; i++ {
					fired = append(fired, d.Tick(func(int) bool { return true })...)
				}
				return fired
			},
			state: map[int]FDState{1: FDHealthy, 2: FDHealthy},
		},
		{
			name: "dead is terminal",
			run: func(d *Detector) []Transition {
				fired := drive(d, 10)
				d.Observe(1) // a late status cannot revive the dead
				d.Pong(1)
				return append(fired, drive(d, 10)...)
			},
			state: map[int]FDState{1: FDDead, 2: FDDead},
			fired: []Transition{
				{Shard: 1, From: FDHealthy, To: FDSuspected},
				{Shard: 2, From: FDHealthy, To: FDSuspected},
				{Shard: 1, From: FDSuspected, To: FDDead},
				{Shard: 2, From: FDSuspected, To: FDDead},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDetector(cfg, []int{1, 2})
			// Burn the startup grace (rows start DeadAfter below zero) so
			// every case begins from a freshly-observed healthy row.
			d.Observe(1)
			d.Observe(2)
			fired := tc.run(d)
			for shard, want := range tc.state {
				if got := d.State(shard); got != want {
					t.Errorf("shard %d: state %v, want %v", shard, got, want)
				}
			}
			if tc.fired != nil {
				if len(fired) != len(tc.fired) {
					t.Fatalf("fired %+v, want %+v", fired, tc.fired)
				}
				for i := range tc.fired {
					if fired[i] != tc.fired[i] {
						t.Errorf("transition %d: %+v, want %+v", i, fired[i], tc.fired[i])
					}
				}
			} else if len(fired) != 0 {
				t.Errorf("unexpected promotions: %+v", fired)
			}
		})
	}
}

// TestDetectorStartupGrace checks that a shard that has never reported
// is given a full DeadAfter allowance below zero before suspicion can
// begin — a slow first status is not a crash.
func TestDetectorStartupGrace(t *testing.T) {
	d := NewDetector(DetectorConfig{SuspectAfter: 3, DeadAfter: 6}, []int{1})
	// Without any Observe, suspicion needs DeadAfter + SuspectAfter ticks.
	if fired := drive(d, 8); len(fired) != 0 {
		t.Fatalf("promotions during the startup grace: %v", fired)
	}
	if fired := drive(d, 1); len(fired) != 1 || fired[0].To != FDSuspected {
		t.Fatalf("expected suspicion right after the grace, got %v", fired)
	}
	if got := d.Suspected(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Suspected() = %v, want [1]", got)
	}
}

// TestDetectorClampsThresholds checks the DeadAfter > SuspectAfter
// clamp and the zero-value defaults, on both the detector and the
// coordinator Tuning that feeds it.
func TestDetectorClampsThresholds(t *testing.T) {
	d := NewDetector(DetectorConfig{SuspectAfter: 5, DeadAfter: 2}, []int{1})
	if d.cfg.DeadAfter <= d.cfg.SuspectAfter {
		t.Fatalf("DeadAfter %d not clamped above SuspectAfter %d", d.cfg.DeadAfter, d.cfg.SuspectAfter)
	}
	d = NewDetector(DetectorConfig{}, []int{1})
	if d.cfg.SuspectAfter != DefaultSuspectAfter || d.cfg.DeadAfter != DefaultDeadAfter {
		t.Fatalf("zero config got %+v, want defaults %d/%d", d.cfg, DefaultSuspectAfter, DefaultDeadAfter)
	}
	tn := Tuning{}.withDefaults()
	if tn.SuspectAfter != DefaultSuspectAfter || tn.DeadAfter != DefaultDeadAfter {
		t.Fatalf("zero Tuning got %d/%d, want defaults %d/%d",
			tn.SuspectAfter, tn.DeadAfter, DefaultSuspectAfter, DefaultDeadAfter)
	}
	if tn.CallTimeout != defaultCallTimeout || tn.ReportTimeout != defaultReportTimeout || tn.JoinDeadline != defaultJoinDeadline {
		t.Fatalf("zero Tuning timeouts got %+v", tn)
	}
}
