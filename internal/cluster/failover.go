package cluster

import (
	"sort"

	"gossipstream/internal/obs"
	"gossipstream/internal/overlay"
)

// Fail-stop tolerance. Failure detection rides the health gossip: every
// worker casts one status per tick, so the coordinator counts the ticks
// since each shard's last status. A shard that misses SuspectAfter
// consecutive ticks is *suspected* (and probed with keepalive pings),
// one that misses DeadAfter is *dead* — its orphaned peers are folded
// into the surviving shards (failover.go further down), and a fence
// keeps a falsely-declared process from ever rejoining.
//
// The detector is loss-burst aware: the coordinator resolved every
// scripted network fault itself, so while its own link policy can drop
// or sever the status stream (a lossburst or partition directive is in
// force) the counters freeze and no suspicion advances. A real crash
// during a scripted burst is therefore detected only after the burst
// ends — deliberate: a false failover is irreversible, a late one just
// stalls the reassignment by the burst length.

// The failure detector's default thresholds, in coordinator ticks.
const (
	DefaultSuspectAfter = 10
	DefaultDeadAfter    = 30
)

// FDState is one shard's position in the failure detector.
type FDState uint8

const (
	FDHealthy FDState = iota
	FDSuspected
	FDDead
)

func (s FDState) String() string {
	switch s {
	case FDHealthy:
		return "healthy"
	case FDSuspected:
		return "suspected"
	case FDDead:
		return "dead"
	}
	return "unknown"
}

// DetectorConfig holds the promotion thresholds, in ticks without a
// status. Zero fields take the defaults; DeadAfter is clamped above
// SuspectAfter so the two promotions can never fire out of order.
type DetectorConfig struct {
	SuspectAfter int
	DeadAfter    int
}

// Transition records one state change for the caller to act on.
type Transition struct {
	Shard    int
	From, To FDState
}

// Detector is the per-worker fail-stop detector. It is driven entirely
// from the coordinator's run loop (no internal locking): Observe on
// every status, Pong on every keepalive answer, Tick once per
// coordinator tick.
type Detector struct {
	cfg   DetectorConfig
	rows  map[int]*fdRow
	order []int // sorted shard ids, for deterministic Tick output
}

type fdRow struct {
	state  FDState
	missed int
	pong   bool
}

// NewDetector tracks the given worker shards. Rows start with a grace
// allowance of one DeadAfter period below zero, so a slow first status
// after the start broadcast cannot be mistaken for a crash.
func NewDetector(cfg DetectorConfig, shards []int) *Detector {
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter + (DefaultDeadAfter - DefaultSuspectAfter)
	}
	d := &Detector{cfg: cfg, rows: make(map[int]*fdRow)}
	for _, s := range shards {
		d.rows[s] = &fdRow{missed: -cfg.DeadAfter}
		d.order = append(d.order, s)
	}
	sort.Ints(d.order)
	return d
}

// Observe records a fresh status from a shard: the miss counter resets
// and a suspected shard recovers. Returns the recovery transition when
// one happened (nil otherwise). Dead is terminal — a status from a dead
// shard is ignored here and fenced by the coordinator.
func (d *Detector) Observe(shard int) *Transition {
	row, ok := d.rows[shard]
	if !ok || row.state == FDDead {
		return nil
	}
	row.missed = 0
	row.pong = false
	if row.state == FDSuspected {
		row.state = FDHealthy
		return &Transition{Shard: shard, From: FDSuspected, To: FDHealthy}
	}
	return nil
}

// Pong records a keepalive answer. A pong is weaker than a status — the
// link's reader goroutine answers pings even while the shard's run loop
// hangs — so it does not clear suspicion, but it caps the miss counter
// just below the death threshold: a hung-but-alive worker stays
// suspected indefinitely instead of being declared dead.
func (d *Detector) Pong(shard int) {
	row, ok := d.rows[shard]
	if !ok || row.state == FDDead {
		return
	}
	if row.missed >= d.cfg.DeadAfter-1 {
		row.missed = d.cfg.DeadAfter - 1
	}
	row.pong = true
}

// Tick advances every tracked shard by one coordinator tick and returns
// the promotions that fired, in shard order. excused reports whether a
// shard's silence is currently explained by the run's own scripted
// network faults; an excused shard's counter freezes.
func (d *Detector) Tick(excused func(shard int) bool) []Transition {
	var out []Transition
	for _, shard := range d.order {
		row := d.rows[shard]
		if row.state == FDDead {
			continue
		}
		if excused != nil && excused(shard) {
			continue
		}
		row.missed++
		if row.pong {
			row.pong = false
			if row.missed >= d.cfg.DeadAfter {
				row.missed = d.cfg.DeadAfter - 1
			}
		}
		switch {
		case row.state == FDHealthy && row.missed >= d.cfg.SuspectAfter:
			row.state = FDSuspected
			out = append(out, Transition{Shard: shard, From: FDHealthy, To: FDSuspected})
		case row.state == FDSuspected && row.missed >= d.cfg.DeadAfter:
			row.state = FDDead
			out = append(out, Transition{Shard: shard, From: FDSuspected, To: FDDead})
		}
	}
	return out
}

// State reports a shard's current detector state (healthy for shards
// the detector does not track, e.g. the coordinator's own shard 0).
func (d *Detector) State(shard int) FDState {
	if row, ok := d.rows[shard]; ok {
		return row.state
	}
	return FDHealthy
}

// Suspected returns the currently suspected shards in ascending order —
// the probe targets for the keepalive pings.
func (d *Detector) Suspected() []int {
	var out []int
	for _, shard := range d.order {
		if d.rows[shard].state == FDSuspected {
			out = append(out, shard)
		}
	}
	return out
}

// ---- coordinator side ----

// notePong collects a keepalive answer; called from the link's reader
// goroutine, drained into the detector by detectTick.
func (c *coordinator) notePong(from int) {
	c.pongMu.Lock()
	c.pongs[from] = true
	c.pongMu.Unlock()
}

// excused reports whether a shard's silence is currently explained by
// the run's own scripted network faults: the coordinator's link policy
// is lossy (a baseline-loss scenario or an active lossburst directive)
// or severs the path to that shard (an unhealed partition). Both were
// resolved by this coordinator, so freezing the detector on them is
// deterministic — a scripted fault can never trigger a false failover.
func (c *coordinator) excused(shard int) bool {
	p := c.r.Policy()
	if p == nil {
		return false
	}
	tick := c.r.CurrentTick()
	if p.LossProb(tick) > 0 {
		return true
	}
	return p.Blocked(0, overlay.NodeID(shard))
}

// detectTick runs one failure-detector step: drain the pongs collected
// since the last tick, advance the counters, probe the suspected, and
// fail over the dead.
func (c *coordinator) detectTick() error {
	c.pongMu.Lock()
	for shard := range c.pongs {
		c.det.Pong(shard)
		delete(c.pongs, shard)
	}
	c.pongMu.Unlock()

	for _, tr := range c.det.Tick(c.excused) {
		switch tr.To {
		case FDSuspected:
			c.obsSuspected.Inc()
			c.cfg.logf("cluster: tick %d: shard %d suspected (no status for %d ticks), probing",
				c.r.CurrentTick(), tr.Shard, c.cfg.Tuning.SuspectAfter)
			c.traceFD("suspected", tr.Shard)
		case FDDead:
			if err := c.failover(tr.Shard); err != nil {
				return err
			}
		}
	}
	for _, shard := range c.det.Suspected() {
		c.l.probe(shard)
	}
	return nil
}

// traceFD emits one failure-detector trace event.
func (c *coordinator) traceFD(kind string, shard int) {
	c.cfg.Obs.Tracer().Emit(obs.TraceEvent{
		T: obs.EvFailover, Tick: c.r.CurrentTick(), Kind: kind, Dest: shard,
	})
}

// failover declares a worker shard dead and folds its orphaned peers
// into the survivors:
//
//  1. the shard leaves the control plane — pending sends toward it are
//     abandoned, its statuses and reports are ignored, and a fence cast
//     tells a falsely-declared process to stop;
//  2. the runner re-resolves the dead shard's peers from the merged
//     status view and the membership directory into reassignment
//     directives — plain listeners respawn on surviving shards anchored
//     at their neighborhood's frontier, dead role-holders (old sources)
//     leave the overlay with their edges repaired;
//  3. the directives broadcast on the same sequenced channel as every
//     other directive, so workers replay them in order;
//  4. if the dead shard owned the live source (or an in-flight
//     stop-source call targeted it), the switch resolves as a crash
//     handoff through the ordinary failure-switch machinery.
func (c *coordinator) failover(w int) error {
	r := c.r
	c.obsFailovers.Inc()
	c.cfg.logf("cluster: FAILOVER: tick %d: shard %d declared dead (no status for %d ticks), reassigning its peers",
		r.CurrentTick(), w, c.cfg.Tuning.DeadAfter)
	c.traceFD("dead", w)

	c.dead[w] = true
	live := c.workers[:0]
	for _, s := range c.workers {
		if s != w {
			live = append(live, s)
		}
	}
	c.workers = live
	delete(c.lastStatus, w)
	c.l.forget(w)
	c.l.cast(w, &Payload{Kind: "fence"})

	survivors := append([]int{0}, c.workers...)
	dirs, srcDied := r.ResolveFailover(w, survivors)
	c.obsReassigned.Inc()
	respawned := 0
	for _, d := range dirs {
		respawned += len(d.Respawns)
		c.broadcastApply(d)
	}
	c.obsRespawned.Add(int64(respawned))
	c.cfg.logf("cluster: tick %d: shard %d reassigned: %d peers respawned across %d survivors",
		r.CurrentTick(), w, respawned, len(survivors))

	if c.pendingStop != nil && c.stopDest == w {
		// The in-flight stop-source call died with its worker: the old
		// source's closing segment is unknowable, so resolve the held
		// switch as a crash handoff (the resolver estimates S1's end
		// from the cohort's high-water mark, exactly as a scripted
		// failure switch does).
		c.pendingStop = nil
		ev := c.stopEvent
		ev.Failure = true
		d := r.ResolveSwitch(ev, c.stopOld, c.stopNew, r.CrashS1End())
		r.PopEvent()
		c.broadcastApply(d)
	} else if srcDied {
		// The live source was owned by the dead shard: synthesize an
		// unscripted crash switch so the stream continues on a survivor.
		d, _, err := r.ResolveFailureSwitch()
		if err != nil {
			return err
		}
		c.broadcastApply(d)
	}
	return nil
}
