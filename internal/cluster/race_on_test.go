//go:build race

package cluster

// raceEnabled reports that this binary was built with the race
// detector: the full-cluster wall-clock runs gate on raceEnabled &&
// runtime.NumCPU() < 2, for the same reason the runtime's parity
// scenarios do — a race build saturating a single CPU stretches
// periods and overflows socket buffers, turning timing tolerances
// into noise. On multi-CPU machines they run under race like
// everywhere else. The link-level tests (lossy ordering, partition,
// forgery) run under race on every machine size and exercise every
// concurrent path in this package.
const raceEnabled = true
