package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"gossipstream/internal/chaos"
	"gossipstream/internal/netmodel"
	"gossipstream/internal/obs"
	"gossipstream/internal/runtime"
	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
)

// JoinConfig parameterizes a joining process.
type JoinConfig struct {
	Starter string // the starter node's control address (host:port)
	Token   string // shared HMAC secret
	Seed    int64  // control-plane socket seed (any value; 0 is fine)
	Logf    func(format string, args ...any)

	// Obs, Debug and StatsEvery mirror Config: instrument the shard's
	// runner and control link, serve the debug HTTP endpoint, print
	// periodic stats lines.
	Obs        *obs.Obs
	Debug      string
	StatsEvery int

	// Chaos, when set, injects this process's share of a scripted fault
	// plan at the agent's seams (see internal/chaos): a kill aborts the
	// shard and Join returns chaos.ErrKilled, a hang wedges the run
	// loop, drop-acks and delay-reports degrade the control streams.
	// The plan is shard-addressed and the injector is built after the
	// welcome assigns this process its shard, so every joiner can carry
	// the same plan without knowing its slot in advance.
	Chaos *chaos.Plan
}

// ErrFenced is returned by Join when the coordinator declared this
// shard dead and fenced it off: the shard's peers were handed to the
// survivors, so continuing would split the brain.
var ErrFenced = errors.New("cluster: fenced by coordinator (shard declared dead)")

func (c *JoinConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Join runs one joining process end to end: knock on the starter until
// welcomed, compile the scenario the welcome carries, drive the
// assigned shard tick by tick applying broadcast directives, gossip
// the address directory, and ship the shard's windows back. Returns
// the shard-local result (the merged run lives at the starter).
func Join(cfg JoinConfig) (*sim.Result, error) {
	if cfg.Debug != "" && cfg.Obs == nil {
		cfg.Obs = &obs.Obs{Reg: obs.NewRegistry()}
	}
	book := NewDirectory(cfg.Seed ^ 0x0d1c7)
	l, err := newLink("", -1, cfg.Token, book, cfg.Seed^0xa6e27)
	if err != nil {
		return nil, err
	}
	defer l.close()
	l.setObs(cfg.Obs)

	w, ackWelcome, err := awaitWelcome(cfg, l)
	if err != nil {
		return nil, err
	}
	cfg.logf("cluster: joined %s as shard %d/%d", cfg.Starter, w.Shard, w.Shards)

	sc, err := scenario.Parse(strings.NewReader(w.Scenario))
	if err != nil {
		return nil, fmt.Errorf("cluster: welcome scenario: %w", err)
	}
	l.setShard(w.Shard)
	book.MergeWire(w.Dir)

	tr := runtime.NewUDPTransport(sc.Seed ^ 0x11fe ^ int64(w.Shard))
	tr.SetAddrBook(book)
	r, err := runtime.FromScenario(sc, algoFactory(w.Algo), runtime.Options{
		Transport: tr, TimeScale: w.TimeScale,
		Obs: cfg.Obs, StatsEvery: cfg.StatsEvery, Logf: cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Debug != "" {
		dbg, err := startClusterDebug(cfg.Debug, cfg.Obs, r, nil)
		if err != nil {
			return nil, err
		}
		defer dbg.Close()
		cfg.logf("cluster: debug endpoint on http://%s", dbg.Addr())
	}
	var tick atomic.Int64
	l.setPolicy(func() netmodel.LinkPolicy { return r.Policy() },
		func() int { return int(tick.Load()) }, 1/w.TimeScale)
	ackWelcome()

	if err := awaitStart(l); err != nil {
		return nil, err
	}
	if err := r.StartShard(w.Shard, w.Shards); err != nil {
		return nil, err
	}
	var inj *chaos.Injector
	if cfg.Chaos != nil {
		inj = chaos.NewInjector(cfg.Chaos, w.Shard)
		l.setChaosDrop(func(kind runtime.FrameKind) bool {
			return kind == runtime.FrameAck && inj.DropAcksActive()
		})
	}
	a := &agent{cfg: cfg, l: l, book: book, r: r, shard: w.Shard,
		shards: w.Shards, timeScale: w.TimeScale, tick: &tick, inj: inj,
		rng: rand.New(rand.NewSource(cfg.Seed ^ 0x905517)),
	}
	return a.run()
}

// awaitWelcome retries the hello until the coordinator's welcome
// arrives; the returned ack closure must be called once the agent is
// ready to receive sequenced traffic under its assigned shard.
func awaitWelcome(cfg JoinConfig, l *link) (*Welcome, func(), error) {
	hello := &Hello{Addr: l.addr()}
	deadline := time.After(5 * time.Minute)
	t := time.NewTicker(helloEvery)
	defer t.Stop()
	if err := l.sendHello(cfg.Starter, hello); err != nil {
		return nil, nil, err
	}
	for {
		select {
		case m := <-l.inbox:
			if m.P.Kind == "welcome" && m.P.Welcome != nil {
				ack := func() {}
				if m.Ack != nil {
					ack = func() { m.Ack(nil) }
				}
				return m.P.Welcome, ack, nil
			}
		case <-t.C:
			if err := l.sendHello(cfg.Starter, hello); err != nil {
				return nil, nil, err
			}
		case <-deadline:
			return nil, nil, fmt.Errorf("cluster: no welcome from %s", cfg.Starter)
		}
	}
}

// awaitStart waits for the coordinator's opening gun (sent once every
// worker joined).
func awaitStart(l *link) error {
	deadline := time.After(5 * time.Minute)
	for {
		select {
		case m := <-l.inbox:
			if m.Ack != nil {
				m.Ack(nil)
			}
			if m.P.Kind == "start" {
				return nil
			}
		case <-deadline:
			return fmt.Errorf("cluster: run never started")
		}
	}
}

// agent is a joined worker's run loop state.
type agent struct {
	cfg       JoinConfig
	l         *link
	book      *Directory
	r         *runtime.Runner
	shard     int
	shards    int
	timeScale float64
	tick      *atomic.Int64
	rng       *rand.Rand
	inj       *chaos.Injector

	appliedSeq uint64
	finishing  bool
	fenced     bool
}

// run drives the shard: apply queued directives in sequence, tick the
// owned peers, report status, gossip the directory — until the finish
// directive (or the scripted duration as the severed-control-plane
// fallback).
func (a *agent) run() (*sim.Result, error) {
	r := a.r
	periodWall := time.Duration(float64(time.Second) * r.Tau() / a.timeScale)
	wallPer := 1 / a.timeScale
	// The fallback deadline: well past the scripted duration, so a
	// coordinator that died partitioned cannot wedge the process.
	fallback := time.Now().Add(time.Duration(r.Duration()+60)*periodWall + time.Minute)
	next := time.Now()
	for r.CurrentTick() < r.Duration() && !a.finishing {
		a.tick.Store(int64(r.CurrentTick()))
		if inj := a.inj; inj != nil {
			st := inj.Step(r.CurrentTick())
			if st.Kill {
				a.cfg.logf("cluster: shard %d: chaos kill at tick %d", a.shard, r.CurrentTick())
				r.Abort()
				return nil, chaos.ErrKilled
			}
			if st.HangTicks > 0 {
				a.cfg.logf("cluster: shard %d: chaos hang for %d ticks at tick %d", a.shard, st.HangTicks, r.CurrentTick())
				time.Sleep(time.Duration(st.HangTicks) * periodWall)
			}
		}
		if err := a.drainDirectives(); err != nil {
			r.Abort()
			return nil, err
		}
		if a.finishing {
			break
		}
		if err := r.TickShard(wallPer); err != nil {
			return nil, err
		}
		hs := r.HealthSample()
		status := &Payload{Kind: "status", Status: &Status{
			Shard:      a.shard,
			Tick:       r.CurrentTick(),
			Idle:       r.Idle(),
			AppliedSeq: a.appliedSeq,
			Nodes:      r.ShardStatus(),
			Health:     &hs,
		}}
		if del := a.statusDelay(); del > 0 {
			time.AfterFunc(time.Duration(del)*periodWall, func() { a.l.cast(0, status) })
		} else {
			a.l.cast(0, status)
		}
		a.gossipRound()
		if time.Now().After(fallback) {
			a.cfg.logf("cluster: shard %d hit its fallback deadline", a.shard)
			break
		}
		next = next.Add(periodWall)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		} else {
			next = time.Now()
		}
	}
	if !a.finishing {
		// Scripted duration reached without a finish directive: wait a
		// grace period for one (the coordinator may simply be behind),
		// then finish alone.
		if err := a.awaitFinish(30 * time.Second); err != nil {
			r.Abort()
			return nil, err
		}
	}
	res := a.r.FinishShard()
	a.cfg.logf("cluster: shard %d finished at tick %d (%d windows)", a.shard, r.CurrentTick(), len(res.Windows))
	a.sendReport(res)
	return res, nil
}

// drainDirectives applies every queued control message without
// blocking. Sequenced messages arrive in order; each is acked after it
// is applied, so the coordinator's drain check sees applied state.
func (a *agent) drainDirectives() error {
	for {
		select {
		case m := <-a.l.inbox:
			if err := a.handle(m); err != nil {
				return err
			}
		default:
			return nil
		}
	}
}

// handle applies one control message.
func (a *agent) handle(m inMsg) error {
	if m.P.Kind == "fence" {
		// The coordinator declared this shard dead and reassigned its
		// peers; stop immediately rather than fight the survivors.
		a.fenced = true
		if m.Ack != nil {
			m.Ack(nil)
		}
		return ErrFenced
	}
	d := m.P.Dir
	if m.P.Kind != "directive" || d == nil {
		if m.Ack != nil {
			m.Ack(nil)
		}
		return nil
	}
	switch d.Kind {
	case runtime.DirStopSource:
		// The targeted stop round trip: close the owned source's session
		// and return the closing segment id in the ack.
		seg, ok := a.r.StopSource(d.Old)
		a.appliedSeq = m.Seq
		if m.Ack != nil {
			m.Ack(&Payload{Kind: "s1end", S1End: &S1End{Seg: seg, OK: ok}})
		}
		return nil
	case runtime.DirFinish:
		a.finishing = true
		a.appliedSeq = m.Seq
		if m.Ack != nil {
			m.Ack(nil)
		}
		return nil
	}
	err := a.r.Apply(d)
	a.appliedSeq = m.Seq
	if m.Ack != nil {
		m.Ack(nil)
	}
	return err
}

// statusDelay asks the chaos injector how long to hold this tick's
// status cast back (0 without an injector or outside a delay window).
func (a *agent) statusDelay() int {
	if a.inj == nil {
		return 0
	}
	return a.inj.StatusDelay(a.r.CurrentTick())
}

// gossipRound pushes a directory batch to the coordinator and to one
// random sibling — the spoke half of the anti-entropy epidemic that
// spreads peer socket addresses without any static list.
func (a *agent) gossipRound() {
	a.l.gossip(0, a.book.DeltaBatch(gossipBatch))
	if a.shards > 2 {
		sib := a.rng.Intn(a.shards-2) + 1
		if sib >= a.shard {
			sib++
		}
		a.l.gossip(sib, a.book.DeltaBatch(gossipBatch))
	}
}

// awaitFinish blocks on the inbox for a finish directive for at most
// the grace period. A fence is fatal; any other apply error just ends
// the wait (the shard finishes with what it has).
func (a *agent) awaitFinish(grace time.Duration) error {
	deadline := time.After(grace)
	for !a.finishing {
		select {
		case m := <-a.l.inbox:
			if err := a.handle(m); err != nil {
				if errors.Is(err, ErrFenced) {
					return err
				}
				return nil
			}
		case <-deadline:
			a.cfg.logf("cluster: shard %d: no finish directive within %v, finishing alone", a.shard, grace)
			return nil
		}
	}
	return nil
}

// sendReport ships every window back to the coordinator reliably (the
// retry loop carries them through whatever the policy still blocks).
func (a *agent) sendReport(res *sim.Result) {
	count := len(res.Windows)
	if count == 0 {
		a.l.send(0, &Payload{Kind: "report", Report: &Report{
			Shard: a.shard, Algo: res.Algorithm, Count: 0,
		}})
	}
	for i, w := range res.Windows {
		a.l.send(0, &Payload{Kind: "report", Report: &Report{
			Shard: a.shard, Algo: res.Algorithm, WindowIdx: i, Count: count, Window: w,
		}})
	}
	a.awaitAcks(defaultReportTimeout)
}

// awaitAcks polls until every reliable send toward the coordinator is
// acknowledged (or the timeout passes — nothing more to do then).
func (a *agent) awaitAcks(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if a.l.pendingEmpty(0) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}
