package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"gossipstream/internal/netmodel"
	"gossipstream/internal/overlay"
	"gossipstream/internal/runtime"
)

// testPolicy is a mutable LinkPolicy stub: a switchable full block and
// a flat loss probability, standing in for the run's netmodel.
type testPolicy struct {
	mu      sync.Mutex
	blocked bool
	loss    float64
}

func (p *testPolicy) DelayMS(a, b overlay.NodeID, jitterMS float64) float64 { return 0 }
func (p *testPolicy) JitterMS() float64                                     { return 0 }

func (p *testPolicy) LossProb(tick int) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.loss
}

func (p *testPolicy) Blocked(a, b overlay.NodeID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked
}

func (p *testPolicy) set(blocked bool, loss float64) {
	p.mu.Lock()
	p.blocked = blocked
	p.loss = loss
	p.mu.Unlock()
}

var _ netmodel.LinkPolicy = (*testPolicy)(nil)

// linkPair wires two links (shards 0 and 1) with each other's control
// addresses, each behind its own policy object — like two processes
// that each applied the same scenario directives to their own model.
func linkPair(t *testing.T, token string) (*link, *link, *testPolicy, *testPolicy) {
	t.Helper()
	bookA, bookB := NewDirectory(1), NewDirectory(2)
	a, err := newLink("", 0, token, bookA, 11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newLink("", 1, token, bookB, 12)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.close(); b.close() })
	bookA.Publish(CtrlIDBase+1, b.addr())
	bookB.Publish(CtrlIDBase+0, a.addr())
	pa, pb := &testPolicy{}, &testPolicy{}
	a.setPolicy(func() netmodel.LinkPolicy { return pa }, func() int { return 0 }, 1)
	b.setPolicy(func() netmodel.LinkPolicy { return pb }, func() int { return 0 }, 1)
	return a, b, pa, pb
}

// ackAll drains a link's inbox on a goroutine, acking every sequenced
// message and recording delivered directive ticks in order.
func ackAll(l *link, into chan<- int) {
	go func() {
		for m := range l.inbox {
			if m.P.Kind == "directive" && m.P.Dir != nil {
				into <- m.P.Dir.Tick
			}
			if m.Ack != nil {
				m.Ack(nil)
			}
		}
	}()
}

// TestLinkLossyDeliveryInOrder drives the reliable channel through 40%
// loss on both directions: every message must still arrive, exactly
// once, in sequence order — the property scenario events depend on
// when a loss burst breaks over a handoff.
func TestLinkLossyDeliveryInOrder(t *testing.T) {
	a, b, pa, pb := linkPair(t, "secret")
	pa.set(false, 0.4)
	pb.set(false, 0.4)
	got := make(chan int, 64)
	ackAll(b, got)

	const n = 20
	for i := 1; i <= n; i++ {
		a.send(1, &Payload{Kind: "directive", Dir: &runtime.Directive{Kind: runtime.DirMeasure, Tick: i}})
	}
	for want := 1; want <= n; want++ {
		select {
		case tick := <-got:
			if tick != want {
				t.Fatalf("delivery %d carried tick %d (out of order or duplicated)", want, tick)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("message %d never delivered through 40%% loss", want)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for !a.pendingEmpty(1) {
		if time.Now().After(deadline) {
			t.Fatal("sender still holds unacked frames after full delivery")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestPartitionSeversControlPlane pins the control plane's partition
// semantics: a directive sent across a severed link does not arrive;
// once the sender's side heals (the coordinator applies its own heal
// first), the retry lands even though the receiver's policy still
// carries the partition — outbound-only policing — and the ack flows
// back only after the receiver heals too.
func TestPartitionSeversControlPlane(t *testing.T) {
	a, b, pa, pb := linkPair(t, "secret")
	got := make(chan int, 8)
	ackAll(b, got)

	pa.set(true, 0)
	pb.set(true, 0)
	a.send(1, &Payload{Kind: "directive", Dir: &runtime.Directive{Kind: runtime.DirHeal, Tick: 7}})

	select {
	case <-got:
		t.Fatal("directive crossed a severed control link")
	case <-time.After(300 * time.Millisecond):
	}

	// Sender heals: the retry must now reach the still-partitioned
	// receiver (inbound frames are never policy-checked).
	pa.set(false, 0)
	select {
	case tick := <-got:
		if tick != 7 {
			t.Fatalf("delivered tick %d, want 7", tick)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry never landed after the sender healed")
	}

	// The receiver's ack is policed by its own (still severed) policy:
	// the sender keeps the frame pending.
	time.Sleep(200 * time.Millisecond)
	if a.pendingEmpty(1) {
		t.Fatal("ack crossed the receiver's severed side")
	}
	pb.set(false, 0)
	deadline := time.Now().Add(5 * time.Second)
	for !a.pendingEmpty(1) {
		if time.Now().After(deadline) {
			t.Fatal("ack never arrived after the receiver healed")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestLinkRejectsForgedFrames: a link with the wrong token cannot get a
// message delivered (or acked) — the authentication boundary.
func TestLinkRejectsForgedFrames(t *testing.T) {
	a, b, _, _ := linkPair(t, "right")
	// Rebuild a with a different token but the same directory wiring.
	forged, err := newLink("", 0, "wrong", a.book, 13)
	if err != nil {
		t.Fatal(err)
	}
	defer forged.close()
	got := make(chan int, 8)
	ackAll(b, got)

	forged.send(1, &Payload{Kind: "directive", Dir: &runtime.Directive{Kind: runtime.DirMeasure, Tick: 1}})
	select {
	case <-got:
		t.Fatal("forged frame delivered")
	case <-time.After(300 * time.Millisecond):
	}

	a.send(1, &Payload{Kind: "directive", Dir: &runtime.Directive{Kind: runtime.DirMeasure, Tick: 2}})
	select {
	case tick := <-got:
		if tick != 2 {
			t.Fatalf("delivered tick %d, want 2", tick)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("authentic frame not delivered")
	}
}

// TestDirectoryMergeAndRotation covers the address book's gossip
// mechanics: newest version wins, rotation cursors cover the whole
// directory, and published rebinds outrun stale entries.
func TestDirectoryMergeAndRotation(t *testing.T) {
	d := NewDirectory(1)
	for i := 0; i < 10; i++ {
		d.Publish(overlay.NodeID(i), "127.0.0.1:1000")
	}
	if d.Len() != 10 {
		t.Fatalf("Len = %d, want 10", d.Len())
	}
	// Stale gossip must not overwrite a newer local rebind.
	d.Publish(3, "127.0.0.1:2000") // ver 2
	d.MergeWire([]runtime.DirEntry{{ID: 3, Ver: 1, Addr: "127.0.0.1:9999"}})
	if addr, _ := d.Resolve(3); addr != "127.0.0.1:2000" {
		t.Fatalf("stale merge won: %s", addr)
	}
	// Newer gossip wins.
	d.MergeWire([]runtime.DirEntry{{ID: 3, Ver: 9, Addr: "127.0.0.1:3000"}})
	if addr, _ := d.Resolve(3); addr != "127.0.0.1:3000" {
		t.Fatalf("newer merge lost: %s", addr)
	}
	// Rotation covers every entry across consecutive batches.
	seen := map[overlay.NodeID]bool{}
	for i := 0; i < 4; i++ {
		for _, e := range d.DeltaBatch(3) {
			seen[e.ID] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("rotation covered %d of 10 entries", len(seen))
	}
	// Piggyback rotates independently and respects its bound.
	if got := len(d.Piggyback(4)); got != 4 {
		t.Fatalf("piggyback returned %d entries, want 4", got)
	}
}

// TestSealOpenRoundTrip fuzzes the sealed-frame boundary: any single
// byte flip in a sealed control frame must fail authentication.
func TestSealOpenRoundTrip(t *testing.T) {
	token := []byte("k")
	f := runtime.Frame{
		Kind: runtime.FrameEvent,
		Msg:  netmodel.Message{From: 0, To: 1, Sent: 5},
		Ctrl: encodePayload(&Payload{Kind: "start", Start: &Start{Workers: 2}}),
	}
	seal(&f, token)
	data := runtime.EncodeFrame(f)

	ok, err := runtime.DecodeFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if !open(&ok, token) {
		t.Fatal("authentic frame rejected")
	}
	if _, err := decodePayload(ok.Ctrl); err != nil {
		t.Fatal(err)
	}

	// The codec is strict (decode(x) re-encodes to x), so a frame that
	// decodes after any byte flip carries a different encoding than the
	// tag was computed over — authentication must fail every time.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		mut := append([]byte(nil), data...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		g, err := runtime.DecodeFrame(mut)
		if err != nil {
			continue // the codec already rejected it
		}
		if g.Kind.Control() && open(&g, token) {
			t.Fatalf("flip %d survived authentication", i)
		}
	}
}
