package cluster

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	stdruntime "runtime"
	"strconv"
	"strings"
	"testing"

	"gossipstream/internal/chaos"
	"gossipstream/internal/obs"
	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
)

// The OS-process chaos test: the coordinator runs in this process, the
// two workers are real child processes (this test binary re-executed
// into the helper below), and one of them is SIGKILLed mid-run — the
// genuine fail-stop, no goroutine stand-in. The cluster must detect the
// death, reassign the dead shard's peers and still complete the merged
// run.

const sigkillHelperEnv = "GOSSIP_CLUSTER_SIGKILL_HELPER"

// TestClusterSIGKILLWorkerHelper is not a test of its own: it is the
// worker process body, run via re-exec by TestClusterSurvivesWorkerSIGKILL
// with the starter address in the environment. It prints the per-tick
// stats marker the chaos kill driver watches.
func TestClusterSIGKILLWorkerHelper(t *testing.T) {
	addr := os.Getenv(sigkillHelperEnv)
	if addr == "" {
		t.Skip("helper: run only as a subprocess of TestClusterSurvivesWorkerSIGKILL")
	}
	seed, _ := strconv.Atoi(os.Getenv("GOSSIP_CLUSTER_SIGKILL_SEED"))
	logf := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
	if _, err := Join(JoinConfig{
		Starter: addr, Token: "cluster-test", Seed: int64(seed),
		Logf: logf, StatsEvery: 1,
	}); err != nil {
		t.Fatalf("join: %v", err)
	}
}

// startWorker launches one worker child process joining addr and
// returns it with its stdout pipe.
func startWorker(t *testing.T, addr string, seed int) (*exec.Cmd, io.ReadCloser) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestClusterSIGKILLWorkerHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		sigkillHelperEnv+"="+addr,
		"GOSSIP_CLUSTER_SIGKILL_SEED="+strconv.Itoa(seed))
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd, out
}

// awaitJoined reads the worker's stdout until its join line appears,
// so shard assignment order is deterministic across the two children.
func awaitJoined(t *testing.T, r *bufio.Reader, shard int) {
	t.Helper()
	want := fmt.Sprintf("as shard %d/", shard)
	for {
		line, err := r.ReadString('\n')
		if strings.Contains(line, want) {
			return
		}
		if err != nil {
			t.Fatalf("worker exited before joining as shard %d: %v", shard, err)
		}
	}
}

// TestClusterSurvivesWorkerSIGKILL is the tentpole's acceptance run:
// three real processes over UDP loopback, one worker SIGKILLed at a
// scripted tick, and the merged run still completes — the dead shard
// reassigned, exactly one failover counted, the merged window clean and
// the live invariant audit green.
func TestClusterSurvivesWorkerSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos run takes several seconds")
	}
	if raceEnabled && stdruntime.NumCPU() < 2 {
		t.Skip("race build on a single CPU saturates the pacer (see race_on_test.go)")
	}
	sc := scenario.PaperSingleSwitch().Scaled(60)
	reg := obs.NewRegistry()
	addrCh := make(chan string, 1)
	type out struct {
		res *sim.Result
		err error
	}
	servCh := make(chan out, 1)
	go func() {
		res, _, err := Serve(Config{
			Scenario:  sc,
			Algo:      "fast",
			Workers:   2,
			TimeScale: 50,
			Token:     "cluster-test",
			Listen:    "127.0.0.1:0",
			Ready:     func(a string) { addrCh <- a },
			Logf:      t.Logf,
			Obs:       &obs.Obs{Reg: reg},
			Tuning:    chaosTuning,
		})
		servCh <- out{res, err}
	}()
	addr := <-addrCh

	// Join strictly in order, so the survivor is shard 1 (it owns the
	// scripted switch's old source) and the victim is shard 2.
	w1, out1 := startWorker(t, addr, 1)
	defer w1.Process.Kill()
	r1 := bufio.NewReader(out1)
	awaitJoined(t, r1, 1)
	go io.Copy(io.Discard, r1)

	w2, out2 := startWorker(t, addr, 2)
	defer w2.Process.Kill()

	// The real fail-stop: watch the victim's stats stream and SIGKILL it
	// the moment it passes tick 12.
	if err := chaos.KillAtTick(w2.Process, out2, 12); err != nil {
		t.Fatal(err)
	}
	if err := w2.Wait(); err == nil {
		t.Error("SIGKILLed worker exited cleanly")
	} else {
		t.Logf("victim: %v", err)
	}

	got := <-servCh
	if got.err != nil {
		t.Fatalf("serve: %v", got.err)
	}
	if err := w1.Wait(); err != nil {
		t.Errorf("surviving worker: %v", err)
	}

	if n := reg.Counter("gossip_worker_failovers_total", "").Value(); n != 1 {
		t.Errorf("gossip_worker_failovers_total = %d, want 1", n)
	}
	if n := reg.Counter("gossip_shards_reassigned_total", "").Value(); n != 1 {
		t.Errorf("gossip_shards_reassigned_total = %d, want 1", n)
	}
	if n := reg.Counter("gossip_peers_respawned_total", "").Value(); n < 10 {
		t.Errorf("gossip_peers_respawned_total = %d, want the dead shard's ~20 listeners", n)
	}

	res := got.res
	var sw *sim.SwitchMetrics
	for _, w := range res.Windows {
		if w.Kind == "switch" {
			sw = w
			break
		}
	}
	if sw == nil {
		t.Fatalf("no switch window in %d merged windows", len(res.Windows))
	}
	t.Logf("merged: %s", sw)
	if sw.Cohort < 50 {
		t.Errorf("merged cohort %d lost the dead shard's peers (population 60)", sw.Cohort)
	}
	if sw.UnfinishedS1 != 0 || sw.UnpreparedS2 != 0 {
		t.Errorf("incomplete window after SIGKILL: unfinished=%d unprepared=%d", sw.UnfinishedS1, sw.UnpreparedS2)
	}

	scfg, err := sc.Config(sim.Fast)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckLiveInvariants(scfg, res); err != nil {
		t.Errorf("live invariants: %v", err)
	}
}
