package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gossipstream/internal/netmodel"
	"gossipstream/internal/obs"
	"gossipstream/internal/overlay"
	"gossipstream/internal/runtime"
	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
)

// Config parameterizes a multi-process run from the starter side.
type Config struct {
	Scenario  *scenario.Scenario
	Algo      string  // algorithm name ("fast" or "normal"), shipped in the welcome
	Workers   int     // joining processes expected; the run spans Workers+1 shards
	TimeScale float64 // 0: runtime.DefaultTimeScale
	Token     string  // shared HMAC secret; every process must agree
	Listen    string  // starter control address (the one configured address)

	// Logf, when set, receives progress lines (worker joins, event
	// resolutions, the finish).
	Logf func(format string, args ...any)

	// Ready, when set, is called with the bound control address once the
	// starter is listening (tests and scripts joining against an
	// ephemeral port).
	Ready func(addr string)

	// Obs, when set, instruments the local shard and the control plane
	// (metrics registry, trace stream).
	Obs *obs.Obs

	// Debug, when non-empty, serves the debug HTTP endpoint on this
	// address for the duration of the run: /metrics, /healthz, /runz
	// (including the merged cluster health table) and /debug/pprof.
	Debug string

	// StatsEvery, when positive, prints a periodic stats line through
	// Logf every that many scheduling periods.
	StatsEvery int

	// Tuning overrides the coordinator's timeouts and failure-detector
	// thresholds; zero fields keep the production defaults. Fault tests
	// shrink these to seconds so a failover resolves inside a test run.
	Tuning Tuning
}

// Tuning bundles the coordinator's time and failure-detection knobs.
// The zero value means "use the defaults" for every field.
type Tuning struct {
	// CallTimeout bounds the coordinator's blocking round trips (the
	// remote stop-source call). The default is generous: a partitioned
	// control plane must be able to out-wait the scripted heal.
	CallTimeout time.Duration // default 2m

	// ReportTimeout bounds the wait for worker reports after the finish
	// directive.
	ReportTimeout time.Duration // default 30s

	// JoinDeadline bounds the starter's wait for all Workers to join.
	JoinDeadline time.Duration // default 5m

	// SuspectAfter and DeadAfter are the failure detector's thresholds,
	// in coordinator ticks without a status from a shard: after
	// SuspectAfter missed ticks a shard is suspected (probed with
	// keepalive pings), after DeadAfter it is declared dead and failed
	// over. DeadAfter is clamped above SuspectAfter.
	SuspectAfter int // default 10
	DeadAfter    int // default 30
}

// withDefaults fills every zero field with its production default.
func (t Tuning) withDefaults() Tuning {
	if t.CallTimeout <= 0 {
		t.CallTimeout = defaultCallTimeout
	}
	if t.ReportTimeout <= 0 {
		t.ReportTimeout = defaultReportTimeout
	}
	if t.JoinDeadline <= 0 {
		t.JoinDeadline = defaultJoinDeadline
	}
	if t.SuspectAfter <= 0 {
		t.SuspectAfter = DefaultSuspectAfter
	}
	if t.DeadAfter <= t.SuspectAfter {
		t.DeadAfter = t.SuspectAfter + DefaultDeadAfter - DefaultSuspectAfter
	}
	return t
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// algoFactory maps the wire algorithm name back to a factory — the
// same names cmd/live accepts.
func algoFactory(name string) sim.AlgorithmFactory {
	if name == "normal" {
		return sim.Normal
	}
	return sim.Fast
}

// The production defaults behind Tuning's zero value.
const (
	defaultCallTimeout   = 2 * time.Minute
	defaultReportTimeout = 30 * time.Second
	defaultJoinDeadline  = 5 * time.Minute
)

// Serve runs the starter node: listen for Workers joining processes,
// welcome each with the scenario and a directory seed, release the
// shards, drive shard 0 locally while resolving every scenario event
// and broadcasting the resolved directives, and finally merge the
// workers' windows with the local ones. Blocks for the whole run.
func Serve(cfg Config) (*sim.Result, runtime.LiveStats, error) {
	var stats runtime.LiveStats
	if cfg.Scenario == nil {
		return nil, stats, fmt.Errorf("cluster: nil scenario")
	}
	if cfg.Workers < 1 {
		return nil, stats, fmt.Errorf("cluster: need at least one worker (got %d)", cfg.Workers)
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = runtime.DefaultTimeScale
	}
	if cfg.Debug != "" && cfg.Obs == nil {
		cfg.Obs = &obs.Obs{Reg: obs.NewRegistry()}
	}
	cfg.Tuning = cfg.Tuning.withDefaults()
	sc := cfg.Scenario
	shards := cfg.Workers + 1

	book := NewDirectory(sc.Seed ^ 0xd1c7)
	l, err := newLink(cfg.Listen, 0, cfg.Token, book, sc.Seed^0xc771)
	if err != nil {
		return nil, stats, err
	}
	defer l.close()
	l.setObs(cfg.Obs)
	cfg.logf("cluster: coordinator listening on %s (%d shards)", l.addr(), shards)
	if cfg.Ready != nil {
		cfg.Ready(l.addr())
	}

	workerShards, err := awaitWorkers(cfg, sc, l, book, shards)
	if err != nil {
		return nil, stats, err
	}

	tr := runtime.NewUDPTransport(sc.Seed ^ 0x11fe)
	tr.SetAddrBook(book)
	r, err := runtime.FromScenario(sc, algoFactory(cfg.Algo), runtime.Options{
		Transport: tr, TimeScale: cfg.TimeScale,
		Obs: cfg.Obs, StatsEvery: cfg.StatsEvery, Logf: cfg.Logf,
	})
	if err != nil {
		return nil, stats, err
	}
	var tick atomic.Int64
	l.setPolicy(func() netmodel.LinkPolicy { return r.Policy() },
		func() int { return int(tick.Load()) }, 1/cfg.TimeScale)

	// Release the shards: every worker acked its welcome, so the start
	// broadcast is the run's opening gun.
	for _, w := range workerShards {
		l.send(w, &Payload{Kind: "start", Start: &Start{Workers: cfg.Workers}})
	}
	if err := r.StartShard(0, shards); err != nil {
		return nil, stats, err
	}

	co := &coordinator{cfg: cfg, l: l, book: book, r: r, shards: shards,
		workers: workerShards, tick: &tick,
		lastStatus: make(map[int]*Status),
		health:     make(map[int]*shardHealth),
		det: NewDetector(DetectorConfig{
			SuspectAfter: cfg.Tuning.SuspectAfter,
			DeadAfter:    cfg.Tuning.DeadAfter,
		}, workerShards),
		dead:  make(map[int]bool),
		pongs: make(map[int]bool),
	}
	co.obsSuspected = cfg.Obs.Registry().Counter("gossip_workers_suspected_total",
		"suspicion episodes opened by the cluster failure detector")
	co.obsFailovers = cfg.Obs.Registry().Counter("gossip_worker_failovers_total",
		"worker shards declared dead and failed over")
	co.obsReassigned = cfg.Obs.Registry().Counter("gossip_shards_reassigned_total",
		"dead shards whose orphaned peers were folded into survivors")
	co.obsRespawned = cfg.Obs.Registry().Counter("gossip_peers_respawned_total",
		"orphaned peers respawned on surviving shards after a failover")
	l.setOnPong(co.notePong)
	if cfg.Debug != "" {
		dbg, err := startClusterDebug(cfg.Debug, cfg.Obs, r, &co.healthPub)
		if err != nil {
			return nil, stats, err
		}
		defer dbg.Close()
		cfg.logf("cluster: debug endpoint on http://%s", dbg.Addr())
	}
	start := time.Now()
	res, err := co.run()
	stats = r.Stats()
	stats.WallDuration = time.Since(start)
	return res, stats, err
}

// awaitWorkers accepts hellos until every expected worker is welcomed,
// assigning shards in join order (stably per address, so a retried
// hello keeps its slot).
func awaitWorkers(cfg Config, sc *scenario.Scenario, l *link, book *Directory, shards int) ([]int, error) {
	var text bytes.Buffer
	if err := sc.Write(&text); err != nil {
		return nil, err
	}
	assigned := make(map[string]int)
	var workers []int
	deadline := time.After(cfg.Tuning.JoinDeadline)
	for len(workers) < shards-1 {
		select {
		case m := <-l.inbox:
			if m.P.Kind != "hello" || m.P.Hello == nil {
				continue
			}
			addr := m.P.Hello.Addr
			if _, ok := assigned[addr]; ok {
				continue // duplicate hello: the pending welcome retry covers it
			}
			shard := len(workers) + 1
			assigned[addr] = shard
			workers = append(workers, shard)
			book.Publish(CtrlIDBase+overlay.NodeID(shard), addr)
			l.send(shard, &Payload{Kind: "welcome", Welcome: &Welcome{
				Shard:     shard,
				Shards:    shards,
				Scenario:  text.String(),
				TimeScale: cfg.TimeScale,
				Algo:      cfg.Algo,
				Dir:       book.Snapshot(maxDirSnapshot),
			}})
			cfg.logf("cluster: worker %s joined as shard %d/%d", addr, shard, shards)
		case <-deadline:
			return nil, fmt.Errorf("cluster: only %d of %d workers joined", len(workers), shards-1)
		}
	}
	return workers, nil
}

// maxDirSnapshot bounds the welcome's directory seed; the rest of the
// directory arrives by gossip like everything else.
const maxDirSnapshot = 128

// coordinator is the starter's run loop state.
type coordinator struct {
	cfg     Config
	l       *link
	book    *Directory
	r       *runtime.Runner
	shards  int
	workers []int
	tick    *atomic.Int64

	lastStatus map[int]*Status

	// The merged cluster health view (see health.go): per-shard samples
	// from the status stream, plus the published table /runz reads.
	health    map[int]*shardHealth
	healthPub atomic.Pointer[healthTable]

	// The fail-stop machinery (see failover.go): the per-worker failure
	// detector, the set of shards already declared dead, keepalive pongs
	// collected from the link's reader goroutine, and the counters.
	det    *Detector
	dead   map[int]bool
	pongMu sync.Mutex
	pongs  map[int]bool

	obsSuspected  *obs.Counter
	obsFailovers  *obs.Counter
	obsReassigned *obs.Counter
	obsRespawned  *obs.Counter

	// earlyReports buffers report messages that raced the finish (a
	// worker on its fallback deadline), so collectReports still sees
	// them after their ack.
	earlyReports []*Report

	// pendingStop holds the event queue while a remote stop-source round
	// trip is in flight (its ack carries the closing segment id).
	pendingStop chan *Payload
	stopEvent   sim.Event
	stopOld     overlay.NodeID
	stopNew     overlay.NodeID
	stopDest    int
}

// run drives shard 0 tick by tick, resolving events and broadcasting
// directives, until the duration (or the early exit) and then collects
// the merge.
func (c *coordinator) run() (*sim.Result, error) {
	r := c.r
	periodWall := time.Duration(float64(time.Second) * r.Tau() / c.cfg.TimeScale)
	wallPer := 1 / c.cfg.TimeScale
	next := time.Now()
	for r.CurrentTick() < r.Duration() {
		c.tick.Store(int64(r.CurrentTick()))
		c.drainInbox()
		if err := c.fireEvents(); err != nil {
			return nil, err
		}
		if err := r.TickShard(wallPer); err != nil {
			return nil, err
		}
		if d := r.ResolveChurnStep(); d != nil {
			c.broadcastApply(d)
		}
		c.gossipRound()
		c.healthTick(false)
		if err := c.detectTick(); err != nil {
			return nil, err
		}
		if r.EarlyExit() && c.drained() {
			break
		}
		next = next.Add(periodWall)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		} else {
			next = time.Now()
		}
	}
	// The final health table: the last word on every shard before the
	// finish, including the cluster-wide drop totals the merged report
	// quotes.
	c.healthTick(true)
	if t := c.healthPub.Load(); t != nil {
		lost, inboxDropped, kernelDropped := t.dropTotals()
		c.cfg.logf("cluster: drop totals across %d shards: %d lost, %d inbox-dropped, %d kernel-dropped",
			c.shards, lost, inboxDropped, kernelDropped)
	}
	// The finish travels reliably: a worker that is still partitioned
	// receives it from the retry loop once its heal directive (queued
	// ahead in sequence) lands.
	for _, w := range c.workers {
		c.l.send(w, &Payload{Kind: "directive", Dir: &runtime.Directive{Kind: runtime.DirFinish}})
	}
	local := r.FinishShard()
	c.cfg.logf("cluster: shard 0 finished at tick %d, collecting reports", r.CurrentTick())
	parts, err := c.collectReports()
	if err != nil {
		return nil, err
	}
	return runtime.MergeWindows(append([]*sim.Result{local}, parts...)), nil
}

// drainInbox folds queued worker messages (statuses, stray hellos)
// into the coordinator's view without blocking.
func (c *coordinator) drainInbox() {
	for {
		select {
		case m := <-c.l.inbox:
			c.handle(m)
		default:
			return
		}
	}
}

func (c *coordinator) handle(m inMsg) {
	// A shard already declared dead gets no say: its state was handed to
	// the survivors, so a late revival would split the brain. Fence it
	// (the cast tells a falsely-declared process to stop) and drop the
	// message on the floor — but still ack, to quiet its retry loop.
	if c.dead[m.From] {
		c.l.cast(m.From, &Payload{Kind: "fence"})
		if m.Ack != nil {
			m.Ack(nil)
		}
		return
	}
	switch m.P.Kind {
	case "status":
		if st := m.P.Status; st != nil {
			c.lastStatus[st.Shard] = st
			c.r.MergeStatus(st.Nodes)
			c.noteHealth(st.Shard, st.Health)
			if tr := c.det.Observe(st.Shard); tr != nil {
				c.cfg.logf("cluster: tick %d: shard %d recovered (suspicion cancelled)",
					c.r.CurrentTick(), st.Shard)
				c.traceFD("recovered", st.Shard)
			}
		}
	case "report":
		// A report can race the finish when a worker hits its fallback
		// deadline; buffer it so collectReports still sees it.
		if m.P.Report != nil {
			c.earlyReports = append(c.earlyReports, m.P.Report)
		}
	}
	if m.Ack != nil {
		m.Ack(nil)
	}
}

// fireEvents resolves due events into directives and broadcasts them.
// A planned switch whose old source lives on another shard turns into
// an asynchronous stop-source call; the queue holds until the closing
// segment id comes back.
func (c *coordinator) fireEvents() error {
	r := c.r
	if c.pendingStop != nil {
		select {
		case reply := <-c.pendingStop:
			c.pendingStop = nil
			if reply == nil || reply.S1End == nil || !reply.S1End.OK {
				return fmt.Errorf("cluster: stop-source round trip for node %d failed", c.stopOld)
			}
			d := r.ResolveSwitch(c.stopEvent, c.stopOld, c.stopNew, reply.S1End.Seg)
			r.PopEvent()
			c.broadcastApply(d)
		default:
			return nil // still waiting: hold the queue
		}
	}
	for {
		ev, due := r.DueEvent()
		if !due {
			return nil
		}
		d, needStop, err := r.ResolveEvent(ev)
		if err != nil {
			return err
		}
		if needStop != nil {
			owner := r.OwnerOf(needStop.Old)
			if c.dead[owner] {
				// The old source's worker died between ticks: resolve the
				// switch as a crash handoff instead of calling a corpse.
				ev.Failure = true
				d := r.ResolveSwitch(ev, needStop.Old, needStop.New, r.CrashS1End())
				r.PopEvent()
				c.broadcastApply(d)
				continue
			}
			c.stopEvent = ev
			c.stopOld = needStop.Old
			c.stopNew = needStop.New
			c.stopDest = owner
			ch := make(chan *Payload, 1)
			c.pendingStop = ch
			go func(dest int, d runtime.Directive) {
				reply, err := c.l.call(dest, &Payload{Kind: "directive", Dir: &d}, c.cfg.Tuning.CallTimeout)
				if err != nil {
					reply = nil
				}
				ch <- reply
			}(owner, *needStop)
			c.cfg.logf("cluster: tick %d: stop-source call to shard %d (node %d)", r.CurrentTick(), owner, needStop.Old)
			return nil // hold until the reply
		}
		r.PopEvent()
		if d == nil {
			continue // resolution-local (churn burst bounds)
		}
		c.broadcastApply(d)
	}
}

// broadcastApply ships one resolved directive to every worker and then
// applies it locally. The broadcast goes first for severing directives
// (the local partition would gate the send), and a heal applies
// locally first so the retry loop can reach still-partitioned workers;
// both orders are safe for everything else because resolution is
// already done.
func (c *coordinator) broadcastApply(d *runtime.Directive) {
	c.cfg.logf("cluster: tick %d: %v directive", c.r.CurrentTick(), d.Kind)
	wire := *d
	wire.Resolved = false // workers must replay the structural mutations
	if d.Kind == runtime.DirHeal {
		c.r.Apply(d)
		for _, w := range c.workers {
			c.l.send(w, &Payload{Kind: "directive", Dir: &wire})
		}
		return
	}
	for _, w := range c.workers {
		c.l.send(w, &Payload{Kind: "directive", Dir: &wire})
	}
	c.r.Apply(d)
}

// gossipRound pushes one directory delta batch to every worker — the
// hub half of the anti-entropy epidemic (workers push back to the
// coordinator and to one random sibling each tick).
func (c *coordinator) gossipRound() {
	for _, w := range c.workers {
		c.l.gossip(w, c.book.DeltaBatch(gossipBatch))
	}
}

// drained reports whether the whole run is idle: local events and
// windows done, and every worker's last status idle with every
// broadcast directive applied (the sequence check defeats the
// stale-idle race where a worker reports idle just before a directive
// lands).
func (c *coordinator) drained() bool {
	if !c.r.Idle() || !c.r.EventsDone() || c.pendingStop != nil {
		return false
	}
	for _, w := range c.workers {
		st := c.lastStatus[w]
		if st == nil || !st.Idle || st.AppliedSeq != c.l.lastSeq(w) {
			return false
		}
	}
	return true
}

// collectReports gathers every worker's windows (one message each,
// reliable) and reassembles per-shard results for the merge.
func (c *coordinator) collectReports() ([]*sim.Result, error) {
	type shardReport struct {
		algo    string
		count   int // -1 until the first message names it
		windows map[int]*sim.SwitchMetrics
	}
	got := make(map[int]*shardReport)
	for _, w := range c.workers {
		got[w] = &shardReport{count: -1, windows: make(map[int]*sim.SwitchMetrics)}
	}
	absorb := func(rep *Report) {
		if sr, ok := got[rep.Shard]; ok {
			sr.algo = rep.Algo
			sr.count = rep.Count
			if rep.Window != nil {
				sr.windows[rep.WindowIdx] = rep.Window
			}
		}
	}
	for _, rep := range c.earlyReports {
		absorb(rep)
	}
	complete := func() bool {
		for _, sr := range got {
			if sr.count < 0 || len(sr.windows) < sr.count {
				return false
			}
		}
		return true
	}
	deadline := time.After(c.cfg.Tuning.ReportTimeout)
	for !complete() {
		select {
		case m := <-c.l.inbox:
			if m.P.Kind != "report" || m.P.Report == nil || c.dead[m.From] {
				c.handle(m)
				continue
			}
			absorb(m.P.Report)
			if m.Ack != nil {
				m.Ack(nil)
			}
		case <-deadline:
			return nil, fmt.Errorf("cluster: worker reports incomplete after %v", c.cfg.Tuning.ReportTimeout)
		}
	}
	var parts []*sim.Result
	for _, w := range c.workers {
		sr := got[w]
		res := &sim.Result{Algorithm: sr.algo}
		res.Windows = make([]*sim.SwitchMetrics, sr.count)
		for i := 0; i < sr.count; i++ {
			win, ok := sr.windows[i]
			if !ok {
				return nil, fmt.Errorf("cluster: shard %d window %d missing from report", w, i)
			}
			res.Windows[i] = win
		}
		parts = append(parts, res)
	}
	return parts, nil
}
