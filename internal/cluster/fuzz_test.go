package cluster

import (
	"bytes"
	"testing"

	"gossipstream/internal/overlay"
	"gossipstream/internal/runtime"
)

// FuzzWireDecode fuzzes the cluster's wire surface end to end: the
// frame codec (runtime.EncodeFrame/DecodeFrame), the HMAC seal, and the
// gob control envelope. Any byte slice must either be rejected or
// decode to a frame whose re-encoding is byte-identical to the input —
// the codec is strict (no trailing bytes, no non-canonical forms), so
// decode∘encode is the identity on accepted inputs. Byte comparison,
// not DeepEqual: the header carries raw float bits, and a NaN
// ArrivalMS or Rate is a perfectly legal frame that DeepEqual would
// misjudge. Frames that also pass authentication feed the gob payload
// decoder, which must fail cleanly rather than panic.
func FuzzWireDecode(f *testing.F) {
	token := []byte("fuzz-wire-token")
	sealed := func(kind runtime.FrameKind, seq int, p *Payload) []byte {
		fr := runtime.Frame{Kind: kind}
		fr.Msg.Sent = seq
		fr.Ctrl = encodePayload(p)
		seal(&fr, token)
		return runtime.EncodeFrame(fr)
	}
	f.Add(sealed(runtime.FrameHello, 1, &Payload{Kind: "hello", Hello: &Hello{Addr: "127.0.0.1:9"}}))
	f.Add(sealed(runtime.FrameEvent, 7, &Payload{Kind: "status", Status: &Status{Shard: 1, Tick: 42, Idle: true}}))
	f.Add(sealed(runtime.FrameAck, 2, &Payload{Kind: "start", Start: &Start{Workers: 3}}))
	data := runtime.Frame{Kind: runtime.FrameData}
	data.Msg.From, data.Msg.To, data.Msg.Seg, data.Msg.Sent, data.Msg.ArrivalMS = 3, 9, 1234, 17, 88.5
	f.Add(runtime.EncodeFrame(data))
	rereq := runtime.Frame{Kind: runtime.FrameRequest, ReReq: true}
	rereq.Msg.Seg = 55
	f.Add(runtime.EncodeFrame(rereq))
	mapFrame := runtime.Frame{Kind: runtime.FrameMap, MapImg: bytes.Repeat([]byte{0xa5}, 78), MaxSeen: 600, Rate: 10.5,
		Dir: []runtime.DirEntry{{ID: 4, Ver: 2, Addr: "127.0.0.1:1234"}}}
	f.Add(runtime.EncodeFrame(mapFrame))
	delta := runtime.Frame{Kind: runtime.FrameDirDelta,
		Dir: []runtime.DirEntry{{ID: 1, Ver: 9, Addr: "[::1]:80"}, {ID: 2, Ver: 1, Addr: ""}}}
	seal(&delta, token)
	f.Add(runtime.EncodeFrame(delta))
	// The failover alphabet: a reassignment directive with respawn specs,
	// a fence, and the keepalive ping/pong pair.
	f.Add(sealed(runtime.FrameEvent, 9, &Payload{Kind: "directive", Dir: &runtime.Directive{
		Kind: runtime.DirReassign, Tick: 18, DeadShard: 2,
		Respawns: []runtime.RespawnSpec{
			{Owner: 0, Join: runtime.JoinSpec{ID: 2, Neighbors: []overlay.NodeID{1, 5}, Anchor: 40, Known: 1, ProfIn: 512, ProfOut: 512}},
			{Owner: 1, Join: runtime.JoinSpec{ID: 5, Anchor: 41, SessionIdx: 0, Known: 1}},
		},
	}}))
	f.Add(sealed(runtime.FrameEvent, 11, &Payload{Kind: "fence"}))
	ping := runtime.Frame{Kind: runtime.FramePing}
	ping.Msg.To, ping.Msg.Seg = 2, 7
	seal(&ping, token)
	f.Add(runtime.EncodeFrame(ping))
	pong := runtime.Frame{Kind: runtime.FramePong}
	pong.Msg.From, pong.Msg.Seg = 2, 7
	seal(&pong, token)
	f.Add(runtime.EncodeFrame(pong))

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := runtime.DecodeFrame(b)
		if err != nil {
			return // rejected input is fine; crashing or looping is not
		}
		enc := runtime.EncodeFrame(fr)
		if !bytes.Equal(enc, b) {
			t.Fatalf("decode/encode not the identity:\n in: %x\nout: %x", b, enc)
		}
		if _, err := runtime.DecodeFrame(enc); err != nil {
			t.Fatalf("re-encoded frame rejected: %v\n%x", err, enc)
		}
		if fr.Kind.Control() && open(&fr, token) {
			// Authenticated control payloads reach the gob decoder; a
			// malformed one (version skew) must error, never panic.
			_, _ = decodePayload(fr.Ctrl)
		}
	})
}
