package cluster

import (
	"bytes"
	"testing"

	"gossipstream/internal/runtime"
)

// FuzzWireDecode fuzzes the cluster's wire surface end to end: the
// frame codec (runtime.EncodeFrame/DecodeFrame), the HMAC seal, and the
// gob control envelope. Any byte slice must either be rejected or
// decode to a frame whose re-encoding is byte-identical to the input —
// the codec is strict (no trailing bytes, no non-canonical forms), so
// decode∘encode is the identity on accepted inputs. Byte comparison,
// not DeepEqual: the header carries raw float bits, and a NaN
// ArrivalMS or Rate is a perfectly legal frame that DeepEqual would
// misjudge. Frames that also pass authentication feed the gob payload
// decoder, which must fail cleanly rather than panic.
func FuzzWireDecode(f *testing.F) {
	token := []byte("fuzz-wire-token")
	sealed := func(kind runtime.FrameKind, seq int, p *Payload) []byte {
		fr := runtime.Frame{Kind: kind}
		fr.Msg.Sent = seq
		fr.Ctrl = encodePayload(p)
		seal(&fr, token)
		return runtime.EncodeFrame(fr)
	}
	f.Add(sealed(runtime.FrameHello, 1, &Payload{Kind: "hello", Hello: &Hello{Addr: "127.0.0.1:9"}}))
	f.Add(sealed(runtime.FrameEvent, 7, &Payload{Kind: "status", Status: &Status{Shard: 1, Tick: 42, Idle: true}}))
	f.Add(sealed(runtime.FrameAck, 2, &Payload{Kind: "start", Start: &Start{Workers: 3}}))
	data := runtime.Frame{Kind: runtime.FrameData}
	data.Msg.From, data.Msg.To, data.Msg.Seg, data.Msg.Sent, data.Msg.ArrivalMS = 3, 9, 1234, 17, 88.5
	f.Add(runtime.EncodeFrame(data))
	rereq := runtime.Frame{Kind: runtime.FrameRequest, ReReq: true}
	rereq.Msg.Seg = 55
	f.Add(runtime.EncodeFrame(rereq))
	mapFrame := runtime.Frame{Kind: runtime.FrameMap, MapImg: bytes.Repeat([]byte{0xa5}, 78), MaxSeen: 600, Rate: 10.5,
		Dir: []runtime.DirEntry{{ID: 4, Ver: 2, Addr: "127.0.0.1:1234"}}}
	f.Add(runtime.EncodeFrame(mapFrame))
	delta := runtime.Frame{Kind: runtime.FrameDirDelta,
		Dir: []runtime.DirEntry{{ID: 1, Ver: 9, Addr: "[::1]:80"}, {ID: 2, Ver: 1, Addr: ""}}}
	seal(&delta, token)
	f.Add(runtime.EncodeFrame(delta))

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := runtime.DecodeFrame(b)
		if err != nil {
			return // rejected input is fine; crashing or looping is not
		}
		enc := runtime.EncodeFrame(fr)
		if !bytes.Equal(enc, b) {
			t.Fatalf("decode/encode not the identity:\n in: %x\nout: %x", b, enc)
		}
		if _, err := runtime.DecodeFrame(enc); err != nil {
			t.Fatalf("re-encoded frame rejected: %v\n%x", err, enc)
		}
		if fr.Kind.Control() && open(&fr, token) {
			// Authenticated control payloads reach the gob decoder; a
			// malformed one (version skew) must error, never panic.
			_, _ = decodePayload(fr.Ctrl)
		}
	})
}
