package cluster

import (
	"fmt"
	"strings"
	"sync/atomic"

	"gossipstream/internal/obs"
	"gossipstream/internal/runtime"
)

// The cluster health view: every shard's compact HealthSample, gossiped
// piggyback on the per-tick status casts, merged at the coordinator
// into one liveness table. Status casts are unreliable by design, so
// each row records when its sample last landed and shards whose
// heartbeats stopped are flagged stale rather than silently frozen.

// staleLag is how many coordinator ticks without a fresh status before
// a shard's row is flagged stale.
const staleLag = 15

// healthEvery is the coordinator's health-table print cadence in ticks.
const healthEvery = 25

// shardHealth is one row of the merged table.
type shardHealth struct {
	Shard    int                  `json:"shard"`
	SeenTick int                  `json:"seen_tick"` // coordinator tick when the sample landed (-1: never)
	Stale    bool                 `json:"stale"`
	FD       string               `json:"fd"` // failure-detector state: healthy|suspected|dead
	Sample   runtime.HealthSample `json:"sample"`
}

// healthTable is the merged per-worker liveness table, printed
// periodically and exposed at /runz.
type healthTable struct {
	Tick   int           `json:"tick"`
	Shards []shardHealth `json:"shards"`
}

// String renders the table as one greppable log line.
func (t *healthTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: health @ tick %d:", t.Tick)
	for _, row := range t.Shards {
		fmt.Fprintf(&b, " | s%d", row.Shard)
		if row.FD != "" && row.FD != "healthy" {
			fmt.Fprintf(&b, " %s", strings.ToUpper(row.FD))
		}
		if row.SeenTick < 0 {
			b.WriteString(" never-reported")
			continue
		}
		if row.Stale {
			fmt.Fprintf(&b, " STALE(seen @%d)", row.SeenTick)
		}
		s := row.Sample
		fmt.Fprintf(&b, " tick=%d peers=%d inbox=%d holes=%d rereq=%d overruns=%d lost=%d drops=%d/%d",
			s.Tick, s.Peers, s.InboxDepth, s.Holes, s.ReRequests, s.Overruns,
			s.DataLost, s.InboxDropped, s.KernelDrops)
	}
	return b.String()
}

// noteHealth folds one shard's piggybacked sample into the
// coordinator's view (run-loop goroutine only).
func (c *coordinator) noteHealth(shard int, h *runtime.HealthSample) {
	if h == nil {
		return
	}
	c.health[shard] = &shardHealth{Shard: shard, SeenTick: c.r.CurrentTick(), Sample: *h}
}

// healthTick refreshes shard 0's own row, publishes the merged table
// for the debug endpoint's /runz, and prints it every healthEvery ticks
// (always, when forced).
func (c *coordinator) healthTick(force bool) {
	tick := c.r.CurrentTick()
	own := c.r.HealthSample()
	c.health[0] = &shardHealth{Shard: 0, SeenTick: tick, Sample: own}
	t := &healthTable{Tick: tick}
	for shard := 0; shard < c.shards; shard++ {
		fd := c.det.State(shard).String()
		row, ok := c.health[shard]
		if !ok {
			t.Shards = append(t.Shards, shardHealth{Shard: shard, SeenTick: -1, Stale: true, FD: fd})
			continue
		}
		r := *row
		r.Stale = tick-r.SeenTick > staleLag
		r.FD = fd
		t.Shards = append(t.Shards, r)
	}
	c.healthPub.Store(t)
	if force || (tick > 0 && tick%healthEvery == 0) {
		c.cfg.logf("%s", t)
	}
}

// startClusterDebug binds the debug HTTP endpoint for a cluster
// process. /healthz and /runz read the runner's atomic snapshot; on the
// coordinator (pub non-nil) /runz additionally carries the merged
// cluster health table.
func startClusterDebug(addr string, o *obs.Obs, r *runtime.Runner, pub *atomic.Pointer[healthTable]) (*obs.DebugServer, error) {
	healthz := func() any {
		if snap := r.Snapshot(); snap != nil {
			return map[string]any{"status": "ok", "tick": snap.Tick,
				"shard": snap.Shard, "shards": snap.Shards}
		}
		if pub != nil {
			if t := pub.Load(); t != nil {
				return map[string]any{"status": "ok", "tick": t.Tick}
			}
		}
		return map[string]any{"status": "starting"}
	}
	runz := func() any {
		v := map[string]any{"metrics": o.Registry().Snapshot()}
		if snap := r.Snapshot(); snap != nil {
			v["run"] = snap
		}
		if pub != nil {
			if t := pub.Load(); t != nil {
				v["health"] = t
			}
		}
		return v
	}
	return obs.StartDebug(addr, o.Registry(), healthz, runz)
}

// dropTotals sums the loss-and-drop counters across the table — the
// cluster-wide tail of the merged report.
func (t *healthTable) dropTotals() (lost, inboxDropped, kernelDropped int64) {
	for _, row := range t.Shards {
		if row.SeenTick < 0 {
			continue
		}
		lost += row.Sample.DataLost
		inboxDropped += row.Sample.InboxDropped
		kernelDropped += row.Sample.KernelDrops
	}
	return
}
