package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestSynthesizeShape(t *testing.T) {
	tr := Synthesize("test", 500, 1, 42)
	if tr.N() != 500 {
		t.Fatalf("N = %d", tr.N())
	}
	for i, n := range tr.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has id %d (ids must be dense)", i, n.ID)
		}
		if n.PingMS <= 0 || n.SpeedKbs <= 0 || n.Port < 6346 {
			t.Fatalf("implausible record: %+v", n)
		}
	}
	g, err := tr.Graph()
	if err != nil {
		t.Fatal(err)
	}
	// Crawl-like: low average degree, well under the M=5 the augmentation
	// later enforces.
	if avg := g.AvgDegree(); avg < 0.5 || avg > 5 {
		t.Errorf("average degree %v outside crawl-like range", avg)
	}
}

// TestSynthesizeDist pins the ping-distribution override: a Gaussian
// regime lands near its mean, pings stay positive even with a huge
// sigma, and pingMean <= 0 reproduces the legacy distribution
// bit-for-bit (Synthesize delegates there).
func TestSynthesizeDist(t *testing.T) {
	tr := SynthesizeDist("g", 2000, 1, 42, 300, 50)
	sum, minPing := 0, 1<<30
	for _, n := range tr.Nodes {
		if n.PingMS < 1 {
			t.Fatalf("non-positive ping %d", n.PingMS)
		}
		sum += n.PingMS
		if n.PingMS < minPing {
			minPing = n.PingMS
		}
	}
	if avg := float64(sum) / float64(tr.N()); avg < 280 || avg > 320 {
		t.Errorf("avg ping %v far from the requested mean 300", avg)
	}
	// Heavy sigma: the ≥ 1 ms clamp holds.
	for _, n := range SynthesizeDist("c", 500, 1, 7, 10, 500).Nodes {
		if n.PingMS < 1 {
			t.Fatalf("clamp failed: ping %d", n.PingMS)
		}
	}
	// Legacy equivalence: the distribution override leaves the default
	// path's RNG sequence untouched.
	a := Synthesize("d", 300, 1, 7)
	b := SynthesizeDist("d", 300, 1, 7, 0, 0)
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("legacy path diverged at node %d: %+v vs %+v", i, a.Nodes[i], b.Nodes[i])
		}
	}
}

func TestSynthesizeDeterminism(t *testing.T) {
	a := Synthesize("d", 200, 1, 7)
	b := Synthesize("d", 200, 1, 7)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("edge counts differ across identical seeds")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("edges differ across identical seeds")
		}
	}
	if a.Nodes[10] != b.Nodes[10] {
		t.Fatal("node records differ across identical seeds")
	}
	c := Synthesize("d", 200, 1, 8)
	same := len(a.Edges) == len(c.Edges)
	if same {
		for i := range a.Edges {
			if a.Edges[i] != c.Edges[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	tr := Synthesize("roundtrip", 150, 2, 99)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || back.N() != tr.N() || len(back.Edges) != len(tr.Edges) {
		t.Fatalf("round trip mismatch: %s/%d/%d vs %s/%d/%d",
			back.Name, back.N(), len(back.Edges), tr.Name, tr.N(), len(tr.Edges))
	}
	for i := range tr.Nodes {
		if back.Nodes[i] != tr.Nodes[i] {
			t.Fatalf("node %d differs: %+v vs %+v", i, back.Nodes[i], tr.Nodes[i])
		}
	}
	for i := range tr.Edges {
		if back.Edges[i] != tr.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"unknown record": "X 1 2\n",
		"short node":     "N 1 1.2.3.4\n",
		"bad id":         "N x 1.2.3.4 host 6346 20 56\n",
		"bad port":       "N 0 1.2.3.4 host x 20 56\n",
		"bad ping":       "N 0 1.2.3.4 host 6346 x 56\n",
		"bad speed":      "N 0 1.2.3.4 host 6346 20 x\n",
		"bad edge":       "N 0 1.2.3.4 host 6346 20 56\nE a 0\n",
		"short edge":     "N 0 1.2.3.4 host 6346 20 56\nE 0\n",
		"bad T":          "T\n",
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Parse accepted %q", name, in)
		}
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\nT demo\nN 0 1.2.3.4 h 6346 20 56\nN 1 1.2.3.5 h 6347 30 128\n\nE 0 1\n"
	tr, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "demo" || tr.N() != 2 || len(tr.Edges) != 1 {
		t.Fatalf("parsed %s/%d/%d", tr.Name, tr.N(), len(tr.Edges))
	}
}

func TestGraphRejectsBadTraces(t *testing.T) {
	tr := &Trace{Name: "bad", Nodes: []Node{{ID: 5}}}
	if _, err := tr.Graph(); err == nil {
		t.Error("non-dense ids accepted")
	}
	tr = &Trace{Name: "bad", Nodes: []Node{{ID: 0}}, Edges: [][2]int{{0, 3}}}
	if _, err := tr.Graph(); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestFamilySizes(t *testing.T) {
	sizes := FamilySizes()
	if len(sizes) != 30 {
		t.Fatalf("family has %d sizes, want 30 (the paper's trace count)", len(sizes))
	}
	must := map[int]bool{100: false, 500: false, 1000: false, 2000: false, 4000: false, 8000: false, 10000: false}
	prev := 0
	for _, s := range sizes {
		if s < 100 || s > 10000 {
			t.Errorf("size %d outside the paper's 100..10000 range", s)
		}
		if s <= prev {
			t.Error("sizes not strictly ascending")
		}
		prev = s
		if _, ok := must[s]; ok {
			must[s] = true
		}
	}
	for s, seen := range must {
		if !seen {
			t.Errorf("evaluation size %d missing from family", s)
		}
	}
}

func TestFamily(t *testing.T) {
	fam := Family(1)
	if len(fam) != 30 {
		t.Fatalf("family has %d traces", len(fam))
	}
	for _, tr := range fam[:5] {
		if _, err := tr.Graph(); err != nil {
			t.Errorf("trace %s: %v", tr.Name, err)
		}
	}
}

func BenchmarkSynthesize1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Synthesize("bench", 1000, 1, int64(i))
	}
}
