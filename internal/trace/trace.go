// Package trace implements the Clip2-DSS-style overlay trace substrate.
//
// The paper evaluates on "30 real-trace P2P overlay topologies whose data
// was collected from Dec. 2000 to Jun. 2001 on dss.clip2.com (this web
// site is unavailable now)" — each record carrying a node's ID, IP, host
// name, port, ping time and speed, of which only ID, IP and ping are used
// (Section 5.1). The crawls are unrecoverable, so this package defines a
// faithful plain-text trace format with the same fields and a
// deterministic synthesizer that emits a 30-trace family at the same
// scales (100–10000 nodes) with Gnutella-like connectivity. After the
// paper's mandatory random-edge augmentation to M=5 neighbors (package
// overlay), the workload is statistically indistinguishable from what the
// authors ran — see DESIGN.md's substitution table.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"gossipstream/internal/overlay"
)

// Node is one trace record (a crawled peer).
type Node struct {
	ID       int
	IP       string
	Host     string
	Port     int
	PingMS   int // round-trip ping in milliseconds
	SpeedKbs int // advertised link speed, kbit/s
}

// Trace is a parsed overlay trace: peers plus the crawled link set.
type Trace struct {
	Name  string
	Nodes []Node
	Edges [][2]int // pairs of Node.IDs
}

// N returns the node count.
func (t *Trace) N() int { return len(t.Nodes) }

// Graph converts the trace into an overlay graph. Node IDs must be dense
// in [0, N); Synthesize and Parse both guarantee it.
func (t *Trace) Graph() (*overlay.Graph, error) {
	g := overlay.New(len(t.Nodes))
	for i, n := range t.Nodes {
		if n.ID != i {
			return nil, fmt.Errorf("trace %q: node ids not dense: index %d holds id %d", t.Name, i, n.ID)
		}
	}
	for _, e := range t.Edges {
		if e[0] < 0 || e[0] >= len(t.Nodes) || e[1] < 0 || e[1] >= len(t.Nodes) {
			return nil, fmt.Errorf("trace %q: edge %v out of range", t.Name, e)
		}
		g.AddEdge(overlay.NodeID(e[0]), overlay.NodeID(e[1]))
	}
	return g, nil
}

// Write serializes the trace in the canonical text format:
//
//	# gossipstream clip2-style trace
//	T <name>
//	N <id> <ip> <host> <port> <ping_ms> <speed_kbps>
//	E <id1> <id2>
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# gossipstream clip2-style trace")
	fmt.Fprintf(bw, "T %s\n", t.Name)
	for _, n := range t.Nodes {
		fmt.Fprintf(bw, "N %d %s %s %d %d %d\n", n.ID, n.IP, n.Host, n.Port, n.PingMS, n.SpeedKbs)
	}
	for _, e := range t.Edges {
		fmt.Fprintf(bw, "E %d %d\n", e[0], e[1])
	}
	return bw.Flush()
}

// Parse reads the canonical text format.
func Parse(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "T":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: want 'T <name>'", line)
			}
			t.Name = fields[1]
		case "N":
			if len(fields) != 7 {
				return nil, fmt.Errorf("trace: line %d: want 'N id ip host port ping speed'", line)
			}
			var n Node
			var err error
			if n.ID, err = strconv.Atoi(fields[1]); err != nil {
				return nil, fmt.Errorf("trace: line %d: bad id: %v", line, err)
			}
			n.IP = fields[2]
			n.Host = fields[3]
			if n.Port, err = strconv.Atoi(fields[4]); err != nil {
				return nil, fmt.Errorf("trace: line %d: bad port: %v", line, err)
			}
			if n.PingMS, err = strconv.Atoi(fields[5]); err != nil {
				return nil, fmt.Errorf("trace: line %d: bad ping: %v", line, err)
			}
			if n.SpeedKbs, err = strconv.Atoi(fields[6]); err != nil {
				return nil, fmt.Errorf("trace: line %d: bad speed: %v", line, err)
			}
			t.Nodes = append(t.Nodes, n)
		case "E":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: want 'E id1 id2'", line)
			}
			a, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad edge endpoint: %v", line, err)
			}
			b, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad edge endpoint: %v", line, err)
			}
			t.Edges = append(t.Edges, [2]int{a, b})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if len(t.Nodes) == 0 {
		return nil, fmt.Errorf("trace: no node records")
	}
	return t, nil
}

// Synthesize builds one Gnutella-like trace: preferential-attachment
// connectivity (attach edges per arriving node), plausible IP/host/port
// fields, ping times drawn from a heavy-tailed distribution, and the
// crawl-era modem/DSL/T1 speed mix.
func Synthesize(name string, n, attach int, seed int64) *Trace {
	return SynthesizeDist(name, n, attach, seed, 0, 0)
}

// SynthesizeDist is Synthesize with the ping-time distribution
// overridden: pings are drawn from a Gaussian with the given mean and
// sigma (milliseconds), clamped to ≥ 1 ms — the knob netmodel
// experiments sweep latency regimes with. pingMean <= 0 selects the
// legacy heavy-tailed crawl distribution, reproducing Synthesize
// bit-for-bit (the RNG draw sequence is preserved).
func SynthesizeDist(name string, n, attach int, seed int64, pingMean, pingSigma float64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	t := &Trace{Name: name}
	speeds := []int{28, 33, 56, 64, 128, 384, 768, 1544}
	for i := 0; i < n; i++ {
		var ping int
		if pingMean > 0 {
			ping = int(pingMean + pingSigma*rng.NormFloat64())
			if ping < 1 {
				ping = 1
			}
		} else {
			ping = 20 + rng.Intn(80)
			if rng.Intn(10) == 0 { // heavy tail: transcontinental / modem peers
				ping += 100 + rng.Intn(400)
			}
		}
		t.Nodes = append(t.Nodes, Node{
			ID:       i,
			IP:       fmt.Sprintf("%d.%d.%d.%d", 1+rng.Intn(223), rng.Intn(256), rng.Intn(256), 1+rng.Intn(254)),
			Host:     fmt.Sprintf("peer%04d.example.net", i),
			Port:     6346 + rng.Intn(10), // Gnutella's default port range
			PingMS:   ping,
			SpeedKbs: speeds[rng.Intn(len(speeds))],
		})
	}
	g := overlay.Generate(overlay.KindPreferential, n, attach, rng)
	for u := 0; u < g.N(); u++ {
		for _, v := range g.Neighbors(overlay.NodeID(u)) {
			if int(v) > u {
				t.Edges = append(t.Edges, [2]int{u, int(v)})
			}
		}
	}
	sort.Slice(t.Edges, func(i, j int) bool {
		if t.Edges[i][0] != t.Edges[j][0] {
			return t.Edges[i][0] < t.Edges[j][0]
		}
		return t.Edges[i][1] < t.Edges[j][1]
	})
	return t
}

// FamilySizes returns the node counts of the synthesized 30-trace family:
// the paper's range 100..10000, log-spaced, with the six evaluation sizes
// (100, 500, 1000, 2000, 4000, 8000) guaranteed to appear.
func FamilySizes() []int {
	sizes := map[int]bool{100: true, 500: true, 1000: true, 2000: true, 4000: true, 8000: true, 10000: true}
	// Fill the remaining slots log-uniformly between 100 and 10000.
	cur := 100.0
	for len(sizes) < 30 {
		cur *= 1.19
		s := int(cur/10) * 10
		if s > 10000 {
			cur = 105 // restart slightly offset to fill gaps
			continue
		}
		sizes[s] = true
	}
	out := make([]int, 0, len(sizes))
	for s := range sizes {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Family synthesizes the full 30-trace family with deterministic seeds
// derived from base.
func Family(base int64) []*Trace {
	return FamilyDist(base, 0, 0)
}

// FamilyDist is Family with the ping-time distribution overridden (see
// SynthesizeDist; pingMean <= 0 keeps the legacy distribution).
func FamilyDist(base int64, pingMean, pingSigma float64) []*Trace {
	sizes := FamilySizes()
	out := make([]*Trace, 0, len(sizes))
	for i, n := range sizes {
		attach := 1 + i%2 // alternate sparse/denser crawls, avg degree ~1.5-3
		name := fmt.Sprintf("clip2-synth-%05d", n)
		out = append(out, SynthesizeDist(name, n, attach, base+int64(i)*1009, pingMean, pingSigma))
	}
	return out
}
