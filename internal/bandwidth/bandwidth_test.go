package bandwidth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDrawRateBoundsAndMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		r := DrawRate(rng)
		if r < MinRate || r > MaxRate {
			t.Fatalf("rate %v outside [%d, %d]", r, MinRate, MaxRate)
		}
		if r != math.Floor(r) {
			t.Fatalf("rate %v not integral", r)
		}
		sum += r
	}
	mean := sum / n
	// Section 5.1: rates span 300 kbps-1 Mbps with a 450 kbps average,
	// i.e. mean I ≈ 15 segments/s (integer rates put it slightly below).
	if mean < 14.0 || mean < MinRate || mean > 16.0 {
		t.Errorf("mean rate %v, want ≈ 15", mean)
	}
}

func TestAssign(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	profiles := Assign(100, rng)
	if len(profiles) != 100 {
		t.Fatalf("got %d profiles", len(profiles))
	}
	for _, p := range profiles {
		if p.In < MinRate || p.In > MaxRate || p.Out < MinRate || p.Out > MaxRate {
			t.Fatalf("profile out of range: %+v", p)
		}
	}
}

func TestSourceProfile(t *testing.T) {
	p := SourceProfile(6)
	if p.In != 0 {
		t.Error("source must have zero inbound")
	}
	if p.Out != 60 {
		t.Errorf("source outbound %v, want 60", p.Out)
	}
	// Non-positive factor falls back to the default.
	if SourceProfile(0).Out != 60 {
		t.Error("default source factor wrong")
	}
}

func TestBudgetRefillAndTake(t *testing.T) {
	b := NewBudget(15)
	if b.Available() != 0 {
		t.Fatal("fresh budget not empty")
	}
	b.Refill(1.0)
	if b.Available() != 15 {
		t.Fatalf("available = %d, want 15", b.Available())
	}
	if !b.Take(10) || b.Available() != 5 {
		t.Fatal("Take(10) failed")
	}
	if b.Take(6) {
		t.Fatal("overdraw allowed")
	}
	if !b.Take(5) || b.Available() != 0 {
		t.Fatal("exact take failed")
	}
}

func TestBudgetFractionalCarry(t *testing.T) {
	// Rate 2.5 at τ=1: availability alternates 2,3,2,3 via the carry.
	b := NewBudget(2.5)
	got := []int{}
	for i := 0; i < 4; i++ {
		b.Refill(1.0)
		got = append(got, b.Available())
		b.Take(b.Available())
	}
	total := got[0] + got[1] + got[2] + got[3]
	if total != 10 {
		t.Errorf("4 periods at rate 2.5 yielded %d segments (%v), want 10", total, got)
	}
}

func TestBudgetDiscardsWholeLeftovers(t *testing.T) {
	// Unused whole segments do not accumulate across periods (link
	// capacity is not storable).
	b := NewBudget(10)
	b.Refill(1.0)
	b.Refill(1.0)
	if b.Available() != 10 {
		t.Errorf("available = %d after double refill, want 10", b.Available())
	}
}

func TestBudgetSetRate(t *testing.T) {
	b := NewBudget(5)
	b.SetRate(60)
	b.Refill(1.0)
	if b.Available() != 60 {
		t.Errorf("available = %d, want 60", b.Available())
	}
}

func TestBudgetPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"negative rate": func() { NewBudget(-1) },
		"negative set":  func() { NewBudget(1).SetRate(-2) },
		"negative take": func() { b := NewBudget(1); b.Refill(1); b.Take(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBitsForSegments(t *testing.T) {
	// One segment is 30 kb = 30720 bits (Section 5.3 arithmetic).
	if got := BitsForSegments(1); got != 30*1024 {
		t.Fatalf("BitsForSegments(1) = %d", got)
	}
	if got := BitsForSegments(10); got != 10*30*1024 {
		t.Fatalf("BitsForSegments(10) = %d", got)
	}
}

func TestQuickBudgetNeverOverdraws(t *testing.T) {
	f := func(rateRaw uint8, takes []uint8) bool {
		rate := float64(rateRaw%40) + 0.5
		b := NewBudget(rate)
		spentTotal := 0
		periods := 0
		for _, tk := range takes {
			b.Refill(1.0)
			periods++
			n := int(tk) % 8
			if b.Take(n) {
				spentTotal += n
			}
			// Per-period spend can never exceed rate+1 (carry bound).
			if float64(spentTotal) > rate*float64(periods)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
