// Package bandwidth models node link capacities: the heterogeneous
// inbound/outbound rate assignment of Section 5.1 and per-period transfer
// budgets.
//
// The paper's setup: streaming rate 300 kbps, 30 kb segments (p = 10
// segments/second); node inbound rates drawn from [300 kbps, 1 Mbps] — in
// segment units I ∈ [10, 33] — with an average of 450 kbps (I = 15);
// outbound rates "alike"; sources have zero inbound and a much larger
// outbound.
package bandwidth

import (
	"fmt"
	"math"
	"math/rand"
)

// Canonical segment-unit constants from Section 5.1.
const (
	// SegmentKb is the payload of one data segment, kilobits.
	SegmentKb = 30
	// PlayRate is p: segments played per second.
	PlayRate = 10
	// MinRate and MaxRate bound node rates in segments/second
	// (300 kbps and 1 Mbps over 30 kb segments).
	MinRate = 10
	MaxRate = 33
	// MeanRate is the target average inbound rate (450 kbps).
	MeanRate = 15
)

// Profile is one node's link capacity in segments/second.
type Profile struct {
	In  float64
	Out float64
}

// SourceProfile returns the capacity profile of a streaming source: zero
// inbound, outFactor·p outbound ("the source node has zero inbound rate
// and much larger outbound rate", Section 5.1).
func SourceProfile(outFactor float64) Profile {
	if outFactor <= 0 {
		outFactor = 6
	}
	return Profile{In: 0, Out: outFactor * PlayRate}
}

// DrawRate samples one rate from the paper's distribution: support
// [MinRate, MaxRate] with mean MeanRate. A uniform draw over [10, 33]
// would average 21.5, so the paper's stated mean of 15 implies a
// low-skewed distribution; we use MinRate plus a truncated exponential
// with mean 5 capped at MaxRate-MinRate, whose mean is
// 10 + 5·(1-e^(-23/5)) ≈ 14.95.
func DrawRate(rng *rand.Rand) float64 {
	const tailMean = MeanRate - MinRate
	const tailCap = MaxRate - MinRate
	x := rng.ExpFloat64() * tailMean
	if x > tailCap {
		x = tailCap
	}
	return MinRate + math.Floor(x) // integer segment rates, as in the paper
}

// Assign draws independent inbound and outbound profiles for n nodes.
func Assign(n int, rng *rand.Rand) []Profile {
	out := make([]Profile, n)
	for i := range out {
		out[i] = Profile{In: DrawRate(rng), Out: DrawRate(rng)}
	}
	return out
}

// Budget is a per-period transfer allowance with fractional carry: each
// period Refill adds rate·τ tokens (carrying sub-segment remainders), and
// Take spends whole segments.
type Budget struct {
	rate   float64
	tokens float64
}

// NewBudget returns a budget for the given rate (segments/second).
func NewBudget(rate float64) *Budget {
	if rate < 0 {
		panic(fmt.Sprintf("bandwidth: negative rate %v", rate))
	}
	return &Budget{rate: rate}
}

// Rate returns the configured rate.
func (b *Budget) Rate() float64 { return b.rate }

// SetRate changes the rate (used when a peer is promoted to source).
func (b *Budget) SetRate(rate float64) {
	if rate < 0 {
		panic(fmt.Sprintf("bandwidth: negative rate %v", rate))
	}
	b.rate = rate
}

// Refill starts a new period of length tau seconds. Unused tokens from the
// previous period are discarded (link capacity does not accumulate), but
// the fractional part carries so non-integer rate·τ products average out.
func (b *Budget) Refill(tau float64) {
	frac := b.tokens - math.Floor(b.tokens)
	if b.tokens <= 0 {
		frac = 0
	}
	b.tokens = b.rate*tau + frac
}

// Available returns the whole segments spendable this period.
func (b *Budget) Available() int { return int(b.tokens) }

// Take spends n segments, reporting false (and spending nothing) when the
// budget is insufficient.
func (b *Budget) Take(n int) bool {
	if n < 0 {
		panic(fmt.Sprintf("bandwidth: Take(%d)", n))
	}
	if float64(n) > b.tokens {
		return false
	}
	b.tokens -= float64(n)
	return true
}

// Refund returns n previously taken segments to the budget (a tentative
// grant that did not commit). Refunding more than was taken this period
// is a programming error the type cannot detect cheaply; callers pair
// every Refund with an earlier successful Take.
func (b *Budget) Refund(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bandwidth: Refund(%d)", n))
	}
	b.tokens += float64(n)
}

// BitsForSegments converts a segment count to payload bits (30 kb = 30·1024
// bits per segment, the convention of Section 5.3's overhead arithmetic).
func BitsForSegments(n int) int64 {
	return int64(n) * SegmentKb * 1024
}
