package sim

import (
	"fmt"

	"gossipstream/internal/stats"
)

// Result is everything one simulation run measured about its source
// switch. Times are seconds relative to the switch instant ("simulation
// time 0" in the paper's figures).
type Result struct {
	Algorithm string
	Nodes     int // alive nodes at the switch
	Cohort    int // nodes eligible for switch metrics

	// Per-node completion times (only nodes that completed in-horizon).
	FinishS1Times  []float64 // finished the whole playback of S1
	PrepareS2Times []float64 // gathered the first Qs segments of S2
	StartS2Times   []float64 // actually started playing S2

	// Incomplete counts at measurement end.
	UnfinishedS1 int
	UnpreparedS2 int

	// Ratio tracks (Figures 5/9); nil unless Config.TrackRatios.
	UndeliveredS1 *stats.Series // Σ Q1(t) / Σ Q0 over the surviving cohort
	DeliveredS2   *stats.Series // Σ (Qs−Q2(t)) / Σ Qs over the surviving cohort

	// Communication accounting over the measurement window.
	ControlBits int64
	DataBits    int64

	// Playback continuity accounting over the measurement window, summed
	// across the cohort: segments actually played, and playback slots
	// lost to a stall (a hole at the playhead while mid-stream).
	PlayedSegments int64
	StalledSlots   int64

	// MeasuredTicks is the length of the measurement window.
	MeasuredTicks int
	// Horizon reports whether measurement stopped at the horizon rather
	// than at cohort completion.
	HitHorizon bool
}

// Continuity returns the cohort's playback continuity during the switch
// window: played / (played + stalled). The paper argues the fast switch
// "indirectly increases the playback continuity"; this makes the claim
// measurable. Returns 1 when nothing was played (no slots lost).
func (r *Result) Continuity() float64 {
	total := r.PlayedSegments + r.StalledSlots
	if total == 0 {
		return 1
	}
	return float64(r.PlayedSegments) / float64(total)
}

// AvgFinishS1 returns the average finishing time of S1 (paper metric).
func (r *Result) AvgFinishS1() float64 { return stats.Mean(r.FinishS1Times) }

// AvgPrepareS2 returns the average preparing time of S2 — the paper's
// "average switch time".
func (r *Result) AvgPrepareS2() float64 { return stats.Mean(r.PrepareS2Times) }

// AvgStartS2 returns the average actual S2 playback start time
// (max of the two start conditions per node).
func (r *Result) AvgStartS2() float64 { return stats.Mean(r.StartS2Times) }

// MaxFinishS1 returns the last node's S1 finishing time.
func (r *Result) MaxFinishS1() float64 { return stats.Max(r.FinishS1Times) }

// MaxPrepareS2 returns the last node's S2 preparing time.
func (r *Result) MaxPrepareS2() float64 { return stats.Max(r.PrepareS2Times) }

// Overhead returns the communication overhead: buffer-map control bits
// over data payload bits in the measurement window (Section 5.2 metric 3).
func (r *Result) Overhead() float64 {
	if r.DataBits == 0 {
		return 0
	}
	return float64(r.ControlBits) / float64(r.DataBits)
}

// String implements fmt.Stringer with the headline numbers.
func (r *Result) String() string {
	return fmt.Sprintf("%s: n=%d cohort=%d finishS1=%.2fs prepareS2=%.2fs overhead=%.4f (unfinished=%d unprepared=%d)",
		r.Algorithm, r.Nodes, r.Cohort, r.AvgFinishS1(), r.AvgPrepareS2(), r.Overhead(),
		r.UnfinishedS1, r.UnpreparedS2)
}
