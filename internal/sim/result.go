package sim

import (
	"fmt"

	"gossipstream/internal/overlay"
	"gossipstream/internal/stats"
)

// SwitchMetrics is everything one measurement window recorded. A run
// produces one window per SwitchSource or MeasureWindow event of its
// script (the implicit paper script has exactly one), so a three-handoff
// conference reports three switch-metrics blocks. Times are seconds
// relative to the window's opening instant ("simulation time 0" in the
// paper's figures — the switch instant for switch windows).
type SwitchMetrics struct {
	Window int    // position in the run's window sequence
	Kind   string // "switch" (a SwitchSource event) or "measure"
	Tick   int    // absolute tick the window opened (the switch instant)

	// Switch windows only: the handoff endpoints.
	OldSource overlay.NodeID // the source that stopped streaming
	NewSource overlay.NodeID // the promoted source
	Failure   bool           // the old source crashed instead of handing off

	Nodes  int // alive nodes when the window opened
	Cohort int // nodes eligible for the window's metrics

	// Per-node completion times (only nodes that completed in-window).
	FinishS1Times  []float64 // finished the whole playback of the ended stream
	PrepareS2Times []float64 // gathered the first Qs segments of the new stream
	StartS2Times   []float64 // actually started playing the new stream

	// Incomplete counts at window end.
	UnfinishedS1 int
	UnpreparedS2 int

	// Ratio tracks (Figures 5/9); nil unless Config.TrackRatios (switch
	// windows only).
	UndeliveredS1 *stats.Series // Σ Q1(t) / Σ Q0 over the surviving cohort
	DeliveredS2   *stats.Series // Σ (Qs−Q2(t)) / Σ Qs over the surviving cohort

	// Communication accounting over the window.
	ControlBits int64
	DataBits    int64

	// Transport accounting over the window (all zero unless the run
	// enabled Config.Net): messages delivered and lost in transit, the
	// loss-induced re-requests that got re-granted, and the delivered
	// messages' summed delivery delay in seconds. The sub-tick transport
	// sums true link delays (sub-period resolution); under
	// Net.QuantizeTicks delays are whole periods, with same-tick
	// delivery counting one period like the classic substrate.
	NetDelivered    int64
	NetLost         int64
	NetReRequests   int64
	NetDelaySeconds float64

	// Playback continuity accounting over the window, summed across the
	// cohort: segments actually played, and playback slots lost to a
	// stall (a hole at the playhead while mid-stream).
	PlayedSegments int64
	StalledSlots   int64

	// MeasuredTicks is the length of the window.
	MeasuredTicks int
	// HitHorizon reports whether the window stopped at its horizon rather
	// than at cohort completion.
	HitHorizon bool
	// Interrupted reports whether a later event cut the window short
	// (e.g. the next handoff of a chain fired before the cohort
	// completed).
	Interrupted bool
}

// Continuity returns the cohort's playback continuity during the window:
// played / (played + stalled). The paper argues the fast switch
// "indirectly increases the playback continuity"; this makes the claim
// measurable. Returns 1 when nothing was played (no slots lost).
func (m *SwitchMetrics) Continuity() float64 {
	total := m.PlayedSegments + m.StalledSlots
	if total == 0 {
		return 1
	}
	return float64(m.PlayedSegments) / float64(total)
}

// AvgFinishS1 returns the average finishing time of the ended stream
// (paper metric).
func (m *SwitchMetrics) AvgFinishS1() float64 { return stats.Mean(m.FinishS1Times) }

// AvgPrepareS2 returns the average preparing time of the new stream —
// the paper's "average switch time".
func (m *SwitchMetrics) AvgPrepareS2() float64 { return stats.Mean(m.PrepareS2Times) }

// AvgStartS2 returns the average actual playback start time of the new
// stream (max of the two start conditions per node).
func (m *SwitchMetrics) AvgStartS2() float64 { return stats.Mean(m.StartS2Times) }

// MaxFinishS1 returns the last node's finishing time.
func (m *SwitchMetrics) MaxFinishS1() float64 { return stats.Max(m.FinishS1Times) }

// MaxPrepareS2 returns the last node's preparing time.
func (m *SwitchMetrics) MaxPrepareS2() float64 { return stats.Max(m.PrepareS2Times) }

// MeanDeliveryDelay returns the average in-window delivery delay of the
// transport model in seconds (0 without Config.Net or when nothing was
// delivered). The sub-tick transport reports true link delays — well
// below one period on a fast mesh; under Net.QuantizeTicks the value is
// tick-floored, with one period the classic instant-substrate floor.
func (m *SwitchMetrics) MeanDeliveryDelay() float64 {
	if m.NetDelivered == 0 {
		return 0
	}
	return m.NetDelaySeconds / float64(m.NetDelivered)
}

// LossRate returns the fraction of in-window transport messages lost in
// transit (loss draws plus partition drops).
func (m *SwitchMetrics) LossRate() float64 {
	total := m.NetDelivered + m.NetLost
	if total == 0 {
		return 0
	}
	return float64(m.NetLost) / float64(total)
}

// Overhead returns the communication overhead: buffer-map control bits
// over data payload bits in the window (Section 5.2 metric 3).
func (m *SwitchMetrics) Overhead() float64 {
	if m.DataBits == 0 {
		return 0
	}
	return float64(m.ControlBits) / float64(m.DataBits)
}

// String implements fmt.Stringer with the window's headline numbers.
func (m *SwitchMetrics) String() string {
	if m.Kind == "measure" {
		return fmt.Sprintf("window %d (measure, t=%d): cohort=%d continuity=%.4f overhead=%.4f",
			m.Window, m.Tick, m.Cohort, m.Continuity(), m.Overhead())
	}
	return fmt.Sprintf("window %d (switch %d->%d, t=%d): cohort=%d finishS1=%.2fs prepareS2=%.2fs (unfinished=%d unprepared=%d)",
		m.Window, m.OldSource, m.NewSource, m.Tick, m.Cohort,
		m.AvgFinishS1(), m.AvgPrepareS2(), m.UnfinishedS1, m.UnpreparedS2)
}

// NetAudit is the transport's whole-run message ledger, kept regardless
// of measurement windows (the per-window Net* counters only accumulate
// while a window is open). Every message handed to the transport is
// accounted for exactly once, so the ledger closes:
//
//	Injected == Delivered + Lost + Severed + Evaporated + InFlight
//
// The run-invariant checker (CheckInvariants) audits this conservation
// law on every completed netmodel run; the counters are deterministic,
// so they are also covered by the worker-count invariance pins.
type NetAudit struct {
	Injected   int64 // messages handed to the transport (committed grants)
	Delivered  int64 // messages that reached their destination's buffer
	Lost       int64 // messages dropped by a loss draw
	Severed    int64 // messages dropped crossing an active partition
	Evaporated int64 // messages whose destination died mid-flight
	InFlight   int64 // messages still airborne when the run ended
}

// Result is everything one simulation run measured. The embedded
// SwitchMetrics mirrors the run's first switch window, so single-switch
// callers read the paper's metrics (and call the metric methods) off the
// Result directly, exactly as before the scenario engine; Windows holds
// every measurement window of the run in order.
type Result struct {
	Algorithm string

	// SwitchMetrics mirrors Windows' first switch window (or the first
	// window of any kind, when the script never switched).
	SwitchMetrics

	// Windows are the run's measurement windows in opening order: one per
	// SwitchSource and MeasureWindow event that fired.
	Windows []*SwitchMetrics

	// Audit is the transport's whole-run message ledger; nil when the run
	// had no netmodel transport (Config.Net unset).
	Audit *NetAudit
}

// String implements fmt.Stringer with the headline numbers.
func (r *Result) String() string {
	s := fmt.Sprintf("%s: n=%d cohort=%d finishS1=%.2fs prepareS2=%.2fs overhead=%.4f (unfinished=%d unprepared=%d)",
		r.Algorithm, r.Nodes, r.Cohort, r.AvgFinishS1(), r.AvgPrepareS2(), r.Overhead(),
		r.UnfinishedS1, r.UnpreparedS2)
	if len(r.Windows) > 1 {
		s += fmt.Sprintf(" [%d windows]", len(r.Windows))
	}
	return s
}
