package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"gossipstream/internal/obs"
	"gossipstream/internal/overlay"
	"gossipstream/internal/trace"
)

// allocSim builds the BenchmarkEngineParallel workload (paper topology,
// Fast algorithm, shared outbound) sized so the switch event stays far
// beyond the ticks a test drives by hand. The topology mirrors
// experiment.Workload.Topology (which this package cannot import —
// cycle): a synthesized crawl trace augmented to min degree M=5.
func allocSim(t testing.TB, n int) *Sim { return allocSimObs(t, n, nil) }

// allocSimObs is allocSim with an observability bundle attached — the
// alloc-budget tests run it both ways to pin that instrumentation stays
// off the allocation path.
func allocSimObs(t testing.TB, n int, o *obs.Obs) *Sim {
	t.Helper()
	seed := int64(20080101) + int64(n)*1_000_003
	tr := trace.Synthesize(fmt.Sprintf("synth-%d-0", n), n, 1, seed)
	g, err := tr.Graph()
	if err != nil {
		t.Fatal(err)
	}
	overlay.AugmentMinDegree(g, 5, rand.New(rand.NewSource(seed^0xa06)))
	s, err := New(Config{
		Graph: g, Seed: 1, NewAlgorithm: Fast,
		FirstSource: -1, NewSource: -1, SharedOutbound: true,
		WarmupTicks: 10_000, HorizonTicks: 1, JoinSpreadTicks: 10,
		Workers: 1, Obs: o,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// tick advances the simulation by one scheduling period, keeping the
// tick counter in sync the way Run's loop does.
func tick(s *Sim) {
	s.step()
	s.tick++
}

// TestTickAllocations pins the steady-state allocation cost of one
// scheduling period at N=1000 on the serial engine. The hot path runs
// on reused scratch (per-shard arenas, pooled snapshots, presized
// buffers), so once every node has joined and per-node slices have
// grown to their working size, a tick should allocate almost nothing.
// The budget is ~10x below the pre-optimization cost (5271 allocs/tick
// at N=1000, BENCH_engine.json entry 0) and far above the ~25 measured
// at steady state, so real regressions trip it while occasional slice
// growth does not.
func TestTickAllocations(t *testing.T) {
	const budget = 500.0

	s := allocSim(t, 1000)
	for s.tick < 80 {
		tick(s)
	}
	got := testing.AllocsPerRun(100, func() { tick(s) })
	if got > budget {
		t.Fatalf("steady-state tick allocations = %.1f, budget %.0f — the hot path regressed "+
			"(compare against the BENCH_engine.json trajectory)", got, budget)
	}
	t.Logf("steady-state allocations per tick at N=1000: %.1f (budget %.0f)", got, budget)
}

// TestTickAllocationsWithObs holds the same steady-state budget with a
// live metrics registry attached: metric handles are registered once at
// setup, so per-tick updates are pure atomics and instrumentation adds
// zero allocations to the hot path.
func TestTickAllocationsWithObs(t *testing.T) {
	const budget = 500.0

	o := &obs.Obs{Reg: obs.NewRegistry()}
	s := allocSimObs(t, 1000, o)
	for s.tick < 80 {
		tick(s)
	}
	got := testing.AllocsPerRun(100, func() { tick(s) })
	if got > budget {
		t.Fatalf("steady-state tick allocations with live registry = %.1f, budget %.0f — "+
			"instrumentation leaked onto the allocation path", got, budget)
	}
	if v := o.Reg.Counter("gossip_ticks_total", "").Value(); v == 0 {
		t.Fatal("registry attached but gossip_ticks_total never advanced")
	}
	t.Logf("steady-state allocations per tick at N=1000 with live registry: %.1f (budget %.0f)", got, budget)
}

// TestTickAllocations100k is the scale smoke: the same pinned hot path
// must hold its per-tick allocation budget at N=100000, where any
// per-node or per-message allocation would multiply 100x. Skipped under
// -short (building and warming a 100k-node overlay takes tens of
// seconds).
func TestTickAllocations100k(t *testing.T) {
	if testing.Short() {
		t.Skip("N=100000 smoke skipped in -short mode")
	}
	// Per-tick budget scales sub-linearly: steady-state allocations come
	// from occasional slice growth, not per-node work.
	const budget = 20_000.0

	s := allocSim(t, 100_000)
	for s.tick < 15 {
		tick(s)
	}
	got := testing.AllocsPerRun(3, func() { tick(s) })
	if got > budget {
		t.Fatalf("steady-state tick allocations at N=100000 = %.1f, budget %.0f", got, budget)
	}
	t.Logf("steady-state allocations per tick at N=100000: %.1f (budget %.0f)", got, budget)
}
