package sim

import (
	"math/rand"

	"gossipstream/internal/core"
	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
)

// This file holds the allocation-free scratch structures behind the
// phase pipeline. The old engine kept four maps on the Sim
// (grantSet, pairGrants, pairReqs, plannedSet) that were cleared by
// iterating every key each tick; the sharded engine replaces them with
// generation-stamped flat arrays (reset is a single counter increment)
// and per-neighbor counter slices on the nodes (see nodeState).

// segSet is a set of segment ids backed by a generation-stamped flat
// array: membership is marks[id] == gen, and begin() empties the set by
// bumping gen. Segment ids are dense from 0 (the global id space of the
// timeline), so the array spans the stream emitted so far.
type segSet struct {
	gen   uint32
	marks []uint32
}

// begin starts a fresh, empty set.
func (s *segSet) begin() {
	s.gen++
	if s.gen == 0 { // wrapped: stale marks could alias, wipe them
		for i := range s.marks {
			s.marks[i] = 0
		}
		s.gen = 1
	}
}

// add inserts id into the set.
func (s *segSet) add(id segment.ID) {
	i := int(id)
	if i >= len(s.marks) {
		grown := make([]uint32, i+i/2+64)
		copy(grown, s.marks)
		s.marks = grown
	}
	s.marks[i] = s.gen
}

// has reports membership.
func (s *segSet) has(id segment.ID) bool {
	i := int(id)
	return i < len(s.marks) && s.marks[i] == s.gen
}

// nodeCounter counts per-node values with the same stamped-reset trick
// (the per-requester proposal counts inside one supplier's serve queue).
type nodeCounter struct {
	gen    uint32
	stamps []uint32
	counts []int32
}

// begin starts a fresh, all-zero counter.
func (c *nodeCounter) begin() {
	c.gen++
	if c.gen == 0 {
		for i := range c.stamps {
			c.stamps[i] = 0
		}
		c.gen = 1
	}
}

func (c *nodeCounter) grow(i int) {
	grown := make([]uint32, i+i/2+64)
	copy(grown, c.stamps)
	c.stamps = grown
	counts := make([]int32, len(grown))
	copy(counts, c.counts)
	c.counts = counts
}

// get returns the count for id.
func (c *nodeCounter) get(id overlay.NodeID) int32 {
	i := int(id)
	if i >= len(c.stamps) || c.stamps[i] != c.gen {
		return 0
	}
	return c.counts[i]
}

// inc increments the count for id.
func (c *nodeCounter) inc(id overlay.NodeID) {
	i := int(id)
	if i >= len(c.stamps) {
		c.grow(i)
	}
	if c.stamps[i] != c.gen {
		c.stamps[i] = c.gen
		c.counts[i] = 0
	}
	c.counts[i]++
}

// workerScratch is the reusable state of one pool worker slot. Workers
// execute shards dynamically, which is safe because nothing here carries
// information between shards: every field is (re)initialized per node or
// per supplier visit.
type workerScratch struct {
	env  core.Env
	plan core.Plan
	algo core.Algorithm
	// supAdj maps env.Suppliers back to adjacency indices for the node
	// currently being planned (parallel slice to env.Suppliers).
	supAdj []int32
	// needOld/needNew hold the round's granted-filtered needs when the
	// cached per-period view cannot be used verbatim (rounds > 0).
	needOld, needNew []segment.ID
	// seen stamps segments already granted or planned (the former
	// plannedSet map, and the distinct-first grant set of shared serve).
	seen segSet
	// reqCount counts proposals per requester inside one supplier queue.
	reqCount nodeCounter
	// retry holds the queue indexes deferred by the distinct-first rule
	// of shared serve (candidates for the duplicate pass).
	retry []int32
	// pool is the prefetch candidate pool (the former poolScratch).
	pool []segment.ID
	// rng is the worker's reusable generator. Every sharded phase that
	// draws randomness reseeds it with its (phase, tick, round, shard)
	// stream before use — Rand.Seed resets the source to exactly the
	// state rand.New(rand.NewSource(seed)) would build, so reuse is
	// stream-identical to a fresh generator while skipping the ~5 KB
	// rngSource allocation per shard per round.
	rng *rand.Rand
}

// seedRNG returns the worker's generator reseeded to the given stream.
func (ws *workerScratch) seedRNG(seed int64) *rand.Rand {
	if ws.rng == nil {
		ws.rng = rand.New(rand.NewSource(seed))
		return ws.rng
	}
	ws.rng.Seed(seed)
	return ws.rng
}

// shardScratch buffers one shard's phase output until the shard-ordered
// reduce (serial in-order walk on the serial engine, sorted-outbox
// parallel gather at Workers>1 — bit-identical by construction). Indexed
// by shard on the fixed grid; contents are valid only within the
// producing round.
type shardScratch struct {
	// requests is the plan phase outbox: requests routed to suppliers
	// during the reduce, in planning order (the parallel gather stably
	// re-sorts them by destination shard first).
	requests []routedRequest
	// proposals is the serve phase outbox: tentative grants awaiting the
	// commit step.
	proposals []proposal
	// Parallel-commit index over proposals (multi-worker engine only):
	// propOrder is the proposal indexes stably sorted by requester shard,
	// accept the per-proposal win flags the requester-shard workers set
	// (distinct indexes, so the concurrent writes are race-free).
	propOrder []int32
	accept    []bool
	// Requester-side commit output, reduced serially in shard order:
	// deliveries landing at this shard's nodes (classic substrate),
	// shared-mode capacity refunds owed to suppliers, and the shard's
	// committed-grant / loss-induced re-request counts.
	landed     []delivery
	refundSup  []overlay.NodeID
	committed  int
	reRequests int
	// Plan-view arenas: the per-period views of the shard's nodes
	// (suppliers, adjacency slots, undelivered windows) live as spans of
	// these backing arrays instead of per-node slices. Reset at round 0 of
	// each period, right before buildView repopulates them shard-locally —
	// so in steady state a whole period's views cost zero allocations,
	// where per-node slices kept paying append-growth during warm-up. A
	// mid-build realloc strands earlier spans on the old backing, which is
	// harmless: spans are read through the node fields, not the arena.
	supArena    []core.Supplier
	supAdjArena []int32
	needArena   []segment.ID
	// controlBits accumulates the round-0 buffer-map exchange cost.
	controlBits int64
	// Per-tick diagnostics, merged into the Sim's counters.
	diagRequests, diagCandidates, diagPlanned int
	// Transit phase output (netmodel runs): messages popped, delivered
	// and lost this tick, and the delivered messages' summed delay —
	// whole ticks under QuantizeTicks, true milliseconds otherwise.
	// Severed (partition-crossing drops) and evaporated (dead
	// destination) messages are tracked apart from loss draws for the
	// run-level conservation ledger; the window's NetLost counter still
	// sums losses and severs together, as it always has.
	netPopped             int
	netDelivered, netLost int64
	netSevered, netEvap   int64
	netDelayTicks         int64
	netDelayMS            float64
}

// routedRequest is a pull request together with the supplier it is
// addressed to (the routing key of the merge step).
type routedRequest struct {
	sup overlay.NodeID
	req pullRequest
}

// pullRequest is one queued segment pull at a supplier.
type pullRequest struct {
	from     overlay.NodeID
	seg      segment.ID
	expected float64
	// nbIdx is the supplier's index in the requester's adjacency list —
	// the requester-side linkGrants/linkReqs slot of this link.
	nbIdx int32
}

// proposal is a tentative grant produced by the parallel serve phase. The
// supplier has already spent the capacity (outbound tokens in shared
// mode, a linkGrants slot in per-link mode); the serial commit either
// lands it as a delivery or refunds the capacity when the requester's
// inbound budget was oversubscribed by competing suppliers.
type proposal struct {
	sup   overlay.NodeID
	from  overlay.NodeID
	seg   segment.ID
	nbIdx int32
}

// delivery is a transfer granted this tick, landed at tick end.
type delivery struct {
	to  overlay.NodeID
	seg segment.ID
}
