package sim

import (
	"os"
	"testing"
)

// TestCalibration sweeps warm-up lengths and sizes to locate the paper's
// operating regime (backlog ~100-200 segments, 20-30% reduction ratio).
// Diagnostic; run with GOSSIPSTREAM_CALIBRATE=1.
func TestCalibration(t *testing.T) {
	if os.Getenv("GOSSIPSTREAM_CALIBRATE") == "" {
		t.Skip("calibration sweep; set GOSSIPSTREAM_CALIBRATE=1 to run")
	}
	for _, tc := range []struct {
		n, warm, spread int
		shared          bool
	}{
		{300, 40, 25, true}, {1000, 40, 25, true}, {300, 45, 30, true},
		{1000, 45, 30, true}, {2000, 45, 30, true}, {1000, 50, 35, true},
	} {
		run := func(factory AlgorithmFactory) *Result {
			g := testTopology(t, tc.n, 42)
			s, err := New(Config{
				Graph: g, Seed: 7, NewAlgorithm: factory,
				WarmupTicks: tc.warm, HorizonTicks: 250, FirstSource: -1, NewSource: -1,
				SharedOutbound: tc.shared, JoinSpreadTicks: tc.spread,
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		fast := run(Fast)
		normal := run(Normal)
		red := (normal.AvgPrepareS2() - fast.AvgPrepareS2()) / normal.AvgPrepareS2()
		t.Logf("n=%4d warm=%3d spread=%3d shared=%v | fast: fin=%6.2f prep=%6.2f | normal: fin=%6.2f prep=%6.2f | reduction=%5.1f%% (unprep f=%d n=%d)",
			tc.n, tc.warm, tc.spread, tc.shared, fast.AvgFinishS1(), fast.AvgPrepareS2(),
			normal.AvgFinishS1(), normal.AvgPrepareS2(), red*100,
			fast.UnpreparedS2, normal.UnpreparedS2)
	}
}
