package sim

import (
	"fmt"
	"math/rand"
	"time"

	"gossipstream/internal/bandwidth"
	"gossipstream/internal/core"
	"gossipstream/internal/membership"
	"gossipstream/internal/netmodel"
	"gossipstream/internal/obs"
	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
	"gossipstream/internal/sim/engine"
	"gossipstream/internal/stats"
)

// Sim is one streaming system instance. Create with New, execute with Run.
// A Sim is not reusable after Run. Each tick executes the phase pipeline
// (events → arrivals → generate → refill → plan/serve rounds → deliver →
// playback → churn → record); the plan, serve, refill and playback phases
// shard per-node work across the engine worker pool, under the engine
// package's determinism contract — results are bit-identical at any
// worker count. The events phase executes the run's Script (the scenario
// engine); a nil Config.Script selects the implicit paper script: one
// planned switch at WarmupTicks, measured for HorizonTicks.
type Sim struct {
	cfg Config

	pool     *engine.Pool
	pipeline *engine.Pipeline
	sched    *engine.Pipeline // the per-round plan → serve sub-pipeline

	rng      *rand.Rand // structural decisions (source pick)
	churnRNG *rand.Rand
	profRNG  *rand.Rand
	// jitterRNG is the serve commit's reusable jitter generator, reseeded
	// to its per-(tick, round) stream before each serial commit walk.
	jitterRNG *rand.Rand

	g     *overlay.Graph
	dir   *membership.Directory
	nodes []*nodeState
	algo  core.Algorithm // naming only; planning uses per-worker instances

	// net is the message-level transport model (nil = classic instant
	// delivery). When set, the pipeline's transit phase replaces the
	// deliver phase and granted segments travel as in-flight messages.
	net *netmodel.Model

	tl      *segment.Timeline
	nextGen segment.ID // next id the current source will emit

	// Event timeline: the run's Script (or the implicit single switch),
	// sorted by tick; nextEvent indexes the first unfired event.
	events    []Event
	nextEvent int
	duration  int
	// earlyExit lets the run end before duration once all events fired
	// and all windows closed. True unless the script set an explicit
	// Duration — a user-set cap is honored exactly.
	earlyExit bool
	// runErr records an event that could not be applied (e.g. a switch
	// with no eligible successor); Run surfaces it.
	runErr error

	// Latest-switch state, updated by each SwitchSource event. The
	// playback and planning phases read these to classify segments into
	// the ending stream (S1) and the new stream (S2) of the most recent
	// switch.
	oldSource, newSource overlay.NodeID
	s1End, s2Begin       segment.ID
	newSessionIdx        int
	// lastRetired is the most recent node that stopped being the source
	// (the default target of an EvDemoteSource).
	lastRetired overlay.NodeID

	// Scenario environment state.
	burst      *ChurnConfig // churn-burst override, nil outside bursts
	burstUntil int          // first tick after the burst
	bwFactor   float64      // current bandwidth shift factor (1 = baseline)

	tick int
	ran  bool
	win  window // the open measurement window, if any

	// Window-relative measurement state (reset when a window opens).
	cohort      []overlay.NodeID
	controlBits int64
	dataBits    int64
	// Transport accounting over the open window (netmodel runs only):
	// delivered/lost message counts, summed delivery delay (whole ticks
	// under QuantizeTicks, true milliseconds on the sub-tick transport),
	// and grants that re-request a previously lost segment.
	netDelivered  int64
	netLost       int64
	netDelayTicks int64
	netDelayMS    float64
	netReRequests int64
	res           *Result

	// Whole-run transport ledger (netmodel runs only), independent of the
	// window state: every injected message ends up in exactly one of the
	// outcome buckets, and finalize closes the books against the
	// transport's in-flight gauge (Result.Audit, audited by
	// CheckInvariants).
	audInjected  int64
	audDelivered int64
	audLost      int64
	audSevered   int64
	audEvap      int64

	// Per-tick pipeline state.
	round    int               // current plan/serve round within the period
	granted  bool              // whether the current round committed any grant
	sessions []segment.Session // per-tick snapshot of the timeline

	// Sharded scratch, reused across ticks.
	workers  []*workerScratch
	shards   []shardScratch
	incoming [][]pullRequest

	// per-tick diagnostics (tests and the debug CLI read these)
	diagRequests   int
	diagCandidates int
	diagPlanned    int

	// Observability (all nil when Config.Obs is unset): counters are
	// registered once in New and updated at the serial merge points and
	// phase boundaries with plain atomics; trace emission happens only at
	// event and window boundaries, never inside sharded work.
	trace        *obs.Trace
	obsSent      *obs.Counter
	obsDelivered *obs.Counter
	obsLost      *obs.Counter
	obsReReq     *obs.Counter
	obsEvents    *obs.Counter
	obsWindows   *obs.Counter
}

// window is the state of one open measurement window. At most one window
// is open at a time: a new SwitchSource or MeasureWindow event closes the
// previous window (marking it Interrupted) before opening its own.
type window struct {
	active   bool
	isSwitch bool
	openTick int
	horizon  int
	metrics  *SwitchMetrics
}

// RNG stream tags of the phases that draw randomness (the `phase` input
// of engine.SeedFor). New parallel phases must claim fresh tags.
const (
	rngPlan = iota + 1
	rngServe
	rngEvents
	rngNet    // transit-phase loss draws, one stream per (tick, shard)
	rngNetJit // serve-commit jitter draws, one stream per (tick, round)
)

// New validates the configuration and builds the initial system: all
// nodes alive, S1 streaming from segment 0, buffers empty.
func New(cfg Config) (*Sim, error) {
	cfg = cfg.Defaulted()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		churnRNG: rand.New(rand.NewSource(cfg.Seed ^ 0x5eed_c0de)),
		profRNG:  rand.New(rand.NewSource(cfg.Seed ^ 0x0ba5_e5)),
		g:        cfg.Graph,
		algo:     cfg.NewAlgorithm(),
		bwFactor: 1,
	}
	s.dir = membership.NewDirectory(s.g, neighborTarget(s.g), rand.New(rand.NewSource(cfg.Seed^0x3a11ce)))

	profiles := cfg.Profiles
	if profiles == nil {
		profiles = bandwidth.Assign(s.g.N(), s.profRNG)
	}
	s.nodes = make([]*nodeState, s.g.N())
	stagger := rand.New(rand.NewSource(cfg.Seed ^ 0x57a6)) // arrival times
	for i := range s.nodes {
		n := newNodeState(overlay.NodeID(i), profiles[i], cfg.BufferCap, 0)
		if cfg.JoinSpreadTicks > 0 {
			n.startTick = stagger.Intn(cfg.JoinSpreadTicks + 1)
			n.alive = n.startTick == 0
		}
		s.nodes[i] = n
	}
	s.oldSource = cfg.FirstSource
	if s.oldSource < 0 {
		s.oldSource = minDegreeNode(s.g)
	}
	s.tl = segment.NewTimeline(segment.SourceID(s.oldSource))
	src := s.nodes[s.oldSource]
	src.becomeSource(cfg.SourceOutFactor * cfg.P)
	src.wasS1 = true
	src.alive = true // the session exists from the moment its source speaks
	src.startTick = 0

	s.incoming = make([][]pullRequest, len(s.nodes))
	s.newSessionIdx = -1
	s.newSource = -1
	s.lastRetired = -1
	if cfg.Net != nil {
		s.net = netmodel.New(*cfg.Net, cfg.Tau)
		// Reserve room for a few grants in flight per node — the
		// steady-state population under sub-period link delays — so the
		// warm-up ticks never grow the transport's heaps.
		s.net.Reserve(len(s.nodes), 4)
	}

	script := cfg.Script
	if script == nil {
		// The implicit paper script: warm up, then one planned switch
		// measured for the configured horizon.
		script = &Script{
			Events:   []Event{SwitchAt(cfg.WarmupTicks, cfg.NewSource)},
			Duration: cfg.WarmupTicks + cfg.HorizonTicks,
		}
	}
	s.events = script.sorted()
	s.earlyExit = cfg.Script == nil || cfg.Script.Duration == 0
	s.duration = script.Duration
	if s.duration <= 0 {
		s.duration = s.autoDuration()
	}
	s.res = &Result{Algorithm: s.algo.Name()}

	workers := cfg.Workers
	if workers == 0 {
		workers = 1 // the serial engine
	}
	s.pool = engine.NewPool(workers)
	s.workers = make([]*workerScratch, s.pool.Workers())
	for i := range s.workers {
		s.workers[i] = &workerScratch{algo: cfg.NewAlgorithm()}
	}
	s.sched = engine.NewPipeline(
		engine.Phase{Name: "plan", Run: s.planRound},
		engine.Phase{Name: "serve", Run: s.serveRound},
	)
	// With the netmodel transport enabled, the sharded transit phase
	// replaces the instant end-of-tick deliver phase: grants travel as
	// in-flight messages and land when their arrival tick comes due.
	landing := engine.Phase{Name: "deliver", Run: s.phaseDeliver}
	if s.net != nil {
		landing = engine.Phase{Name: "transit", Run: s.phaseTransit}
	}
	s.pipeline = engine.NewPipeline(
		engine.Phase{Name: "events", Run: s.phaseEvents},
		engine.Phase{Name: "arrivals", Run: s.phaseArrivals},
		engine.Phase{Name: "generate", Run: s.phaseGenerate},
		engine.Phase{Name: "refill", Run: s.phaseRefill},
		engine.Phase{Name: "schedule", Run: s.phaseSchedule},
		landing,
		engine.Phase{Name: "playback", Run: s.phasePlayback},
		engine.Phase{Name: "churn", Run: s.phaseChurn},
		engine.Phase{Name: "record", Run: s.phaseRecord},
	)
	if o := cfg.Obs; o != nil {
		reg := o.Registry()
		s.pipeline.Observe(reg, o.ChromeSink(), 0, true)
		s.sched.Observe(reg, o.ChromeSink(), 1, false)
		s.trace = o.Tracer()
		s.obsSent = reg.Counter("gossip_frames_sent_total", "data segments granted by suppliers (dispatched grants)")
		s.obsDelivered = reg.Counter("gossip_frames_delivered_total", "data segments that reached their requester")
		s.obsLost = reg.Counter("gossip_frames_lost_total", "data segments lost in transit")
		s.obsReReq = reg.Counter("gossip_frames_rerequested_total", "grants re-requesting a previously lost segment")
		s.obsEvents = reg.Counter("gossip_events_total", "scenario events fired")
		s.obsWindows = reg.Counter("gossip_windows_closed_total", "measurement windows closed")
	}
	return s, nil
}

// autoDuration derives the run length from the event timeline: every
// measurement window gets room to reach its horizon.
func (s *Sim) autoDuration() int {
	end := 1
	for _, ev := range s.events {
		after := 1
		switch ev.Kind {
		case EvSwitchSource:
			after = ev.Horizon
			if after <= 0 {
				after = s.cfg.HorizonTicks
			}
		case EvMeasureWindow, EvChurnBurst, EvLossBurst:
			after = ev.Ticks
		}
		if t := ev.Tick + after; t > end {
			end = t
		}
	}
	return end
}

// Workers returns the engine concurrency the simulation runs with (1 for
// the serial engine).
func (s *Sim) Workers() int { return s.pool.Workers() }

// CapturePhaseMem toggles per-phase allocation capture on both the tick
// pipeline and the plan/serve sub-pipeline (see engine.Pipeline.
// CaptureMem — a diagnostic mode; each phase boundary pays a
// stop-the-world ReadMemStats). Call before Run.
func (s *Sim) CapturePhaseMem(on bool) {
	s.pipeline.CaptureMem(on)
	s.sched.CaptureMem(on)
}

// PhaseTimings returns the accumulated wall-clock cost per pipeline
// phase, with the schedule phase broken down into its plan and serve
// sub-phases. Diagnostic only.
func (s *Sim) PhaseTimings() []engine.PhaseTiming {
	var out []engine.PhaseTiming
	for _, t := range s.pipeline.Timings() {
		if t.Name == "schedule" {
			out = append(out, s.sched.Timings()...)
			continue
		}
		out = append(out, t)
	}
	return out
}

// neighborTarget infers the membership view size from the topology's
// minimum degree (the paper's M, after augmentation).
func neighborTarget(g *overlay.Graph) int {
	m := g.MinDegree()
	if m < 1 {
		m = 5
	}
	return m
}

// minDegreeNode returns the lowest-id node of minimum degree — the
// auto-picked source, which holds exactly M neighbors like the paper's.
func minDegreeNode(g *overlay.Graph) overlay.NodeID {
	best := overlay.NodeID(0)
	for u := 1; u < g.N(); u++ {
		if g.Degree(overlay.NodeID(u)) < g.Degree(best) {
			best = overlay.NodeID(u)
		}
	}
	return best
}

// Run executes the event timeline and returns the collected Result. The
// run ends at the script's duration — or earlier, once every event has
// fired and every measurement window has closed, when the duration was
// auto-derived rather than set explicitly.
func (s *Sim) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("sim: Run called twice")
	}
	s.ran = true
	for s.tick = 0; s.tick < s.duration; s.tick++ {
		if s.trace != nil {
			start := time.Now()
			s.step()
			ns := int64(time.Since(start))
			if ns <= 0 {
				ns = 1 // ns is a required trace field; omitempty must not drop it
			}
			s.trace.Emit(obs.TraceEvent{T: obs.EvTick, Tick: s.tick, NS: ns})
		} else {
			s.step()
		}
		if s.runErr != nil {
			return nil, s.runErr
		}
		if s.earlyExit && !s.win.active && s.nextEvent >= len(s.events) {
			break
		}
	}
	// A window still open here was cut short by the duration cap, not by
	// its own horizon (phaseRecord closes horizon expiries in the loop).
	if s.win.active {
		s.closeWindow(s.duration-s.win.openTick, false, true)
	}
	s.finalize()
	if s.trace != nil {
		s.trace.Emit(obs.TraceEvent{T: obs.EvRunEnd, Tick: s.tick, Windows: len(s.res.Windows)})
	}
	return s.res, nil
}

// step advances the system by one scheduling period τ: one run of the
// phase pipeline.
func (s *Sim) step() { s.pipeline.Run() }

// ensureShards sizes the per-shard scratch to the current population.
func (s *Sim) ensureShards(n int) int {
	shards := engine.NumShards(n)
	for len(s.shards) < shards {
		s.shards = append(s.shards, shardScratch{})
	}
	return shards
}

// phaseEvents executes the script: every event scheduled at or before the
// current tick fires, in timeline order, at the start of the tick. The
// phase is serial (events mutate global structure), so the shard/merge
// determinism contract holds trivially; per-event randomness comes from a
// fresh rngEvents stream keyed by (tick, event index), never from a
// worker-dependent source.
func (s *Sim) phaseEvents() {
	for s.runErr == nil && s.nextEvent < len(s.events) && s.events[s.nextEvent].Tick <= s.tick {
		ev := s.events[s.nextEvent]
		idx := s.nextEvent
		s.nextEvent++
		s.fire(ev, idx)
	}
}

// fire applies one event to the world.
func (s *Sim) fire(ev Event, idx int) {
	s.obsEvents.Inc()
	if s.trace != nil {
		te := obs.TraceEvent{T: obs.EvEvent, Tick: s.tick, Kind: ev.Kind.String()}
		if ev.To >= 0 {
			te.To = obs.P(int64(ev.To))
		}
		s.trace.Emit(te)
	}
	switch ev.Kind {
	case EvSwitchSource:
		s.applySwitch(ev)
	case EvMeasureWindow:
		s.closeWindow(s.tick-s.win.openTick, false, true)
		s.openWindow(false, ev.Ticks, ev)
	case EvChurnBurst:
		s.burst = &ChurnConfig{LeaveFraction: ev.Leave, JoinFraction: ev.Join}
		s.burstUntil = s.tick + ev.Ticks
	case EvFlashCrowd:
		rng := rand.New(rand.NewSource(engine.SeedFor(s.cfg.Seed, rngEvents, s.tick, idx, 0)))
		s.flashCrowd(ev, rng)
	case EvBandwidthShift:
		s.shiftBandwidth(ev.Factor)
	case EvLatencyShift:
		s.net.SetLatencyFactor(ev.Factor)
	case EvLossBurst:
		s.net.SetLossBurst(ev.Prob, s.tick+ev.Ticks)
	case EvPartition:
		// The side-assignment seed comes from the event's own stream, so
		// two partitions in one run split differently.
		seed := engine.SeedFor(s.cfg.Seed, rngEvents, s.tick, idx, 0)
		if ev.ByPing {
			s.net.PartitionByPing(ev.Frac, seed)
		} else {
			s.net.Partition(ev.Frac, seed)
		}
		if s.trace != nil {
			s.trace.Emit(obs.TraceEvent{T: obs.EvPartition, Tick: s.tick, Kind: "sever"})
		}
	case EvHeal:
		s.net.Heal()
		if s.trace != nil {
			s.trace.Emit(obs.TraceEvent{T: obs.EvPartition, Tick: s.tick, Kind: "heal"})
		}
	case EvDemoteSource:
		s.applyDemote(ev)
	}
}

// applyDemote turns an ex-source back into a listener: its base
// bandwidth profile returns (under the current bandwidth shift), it
// rejoins playback at its neighbors' current position exactly like a
// churn joiner, and — no longer being a source — it can be promoted
// again by a later switch (the round-trip handoff). The current source
// and dead ex-sources cannot be demoted; a demote that cannot apply is a
// run error, like an unservable switch.
func (s *Sim) applyDemote(ev Event) {
	id := ev.To
	if id < 0 {
		id = s.lastRetired
	}
	switch {
	case id < 0 || int(id) >= len(s.nodes):
		s.runErr = fmt.Errorf("sim: demote at tick %d: no ex-source to demote", s.tick)
		return
	case !s.nodes[id].isSource:
		s.runErr = fmt.Errorf("sim: demote at tick %d: node %d never held the source role or was already demoted", s.tick, id)
		return
	case overlay.NodeID(s.tl.Current().Source) == id && s.tl.Current().Open():
		s.runErr = fmt.Errorf("sim: demote at tick %d: node %d is the current source", s.tick, id)
		return
	case !s.nodes[id].alive:
		s.runErr = fmt.Errorf("sim: demote at tick %d: ex-source %d is dead", s.tick, id)
		return
	}
	n := s.nodes[id]
	n.isSource = false
	s.applyShift(n) // base × the current bandwidth shift, rates included
	// Rejoin playback by following the neighbors' current steps (the
	// Section 5.4 joiner rule): the ex-source kept its buffer, so it
	// usually starts as a well-provisioned supplier of the old stream.
	anchor := segment.ID(0)
	for _, v := range s.g.Neighbors(n.id) {
		if s.nodes[v].alive {
			if lo := s.nodes[v].WindowLo(); lo > anchor {
				anchor = lo
			}
		}
	}
	n.Active = false
	s.adoptPosition(n, anchor)
	if id == s.lastRetired {
		s.lastRetired = -1
	}
}

// adoptPosition points a (re)joining node's playback at anchor and
// aligns its session bookkeeping with the timeline — the Section 5.4
// "follow its neighbors' current steps" rule, shared by churn joiners
// and demoted ex-sources.
func (s *Sim) adoptPosition(n *nodeState, anchor segment.ID) {
	n.Anchor = anchor
	n.Playhead = anchor
	if ses, ok := s.tl.SessionOf(anchor); ok {
		for idx, sv := range s.tl.Sessions() {
			if sv.Begin == ses.Begin {
				n.SessionIdx = idx
				n.Known = idx + 1
				break
			}
		}
	}
}

// applySwitch is a switch event: the current source stops streaming (or
// crashes), a new source is promoted and starts the next session, and a
// fresh measurement window opens over the frozen cohort. This is the
// generalization of the old single-switch performSwitch: the paper's
// "simulation time 0", once per SwitchSource event.
func (s *Sim) applySwitch(ev Event) {
	cur := s.tl.Current()
	old := overlay.NodeID(cur.Source)
	oldNode := s.nodes[old]

	// Resolve the successor before mutating anything, so an unservable
	// switch surfaces as a run error with the world intact. (The pick
	// draws no randomness on failure paths that matter: RandomAlive is
	// untouched by the mutations below.)
	to := ev.To
	if to >= 0 && (int(to) >= len(s.nodes) || !s.dir.IsAlive(to) || s.nodes[to].isSource) {
		to = -1
	}
	if to < 0 {
		to = s.pickNewSource(old)
	}
	if to < 0 {
		s.runErr = fmt.Errorf("sim: switch at tick %d: no eligible new source (every alive node is or was a source)", s.tick)
		return
	}

	s.closeWindow(s.tick-s.win.openTick, false, true)

	s1End := s.nextGen - 1
	if ev.Failure {
		// The speaker crashes mid-stream: segments that never left its
		// machine are lost, so the session truncates at the last id any
		// other alive node holds (the dead node's buffer is never
		// consulted again — every supplier path checks alive — so the
		// truncated ids are safely reused by the next session).
		s1End = cur.Begin - 1
		for _, n := range s.nodes {
			if n.alive && !n.isSource && n.maxSeen > s1End {
				s1End = n.maxSeen
			}
		}
		oldNode.alive = false
		s.dir.Leave(old)
	}
	s.s1End = s1End
	s.tl.Close(s1End)

	ses, err := s.tl.Append(segment.SourceID(to))
	if err != nil {
		panic(fmt.Sprintf("sim: timeline append: %v", err)) // unreachable: Close precedes
	}
	s.s2Begin = ses.Begin
	s.nextGen = ses.Begin
	s.newSessionIdx = len(s.tl.Sessions()) - 1
	s.oldSource, s.newSource = old, to
	s.lastRetired = old

	ns := s.nodes[to]
	ns.becomeSource(s.cfg.SourceOutFactor * s.cfg.P)
	// The synchronization mechanism the paper assumes: the new source
	// knows S1's ending segment id and embeds it in its first segments.
	ns.Known = s.newSessionIdx + 1

	if s.trace != nil {
		s.trace.Emit(obs.TraceEvent{T: obs.EvSwitch, Tick: s.tick, Kind: "s1-end", Seg: obs.P(int64(s.s1End))})
		s.trace.Emit(obs.TraceEvent{T: obs.EvSwitch, Tick: s.tick, Kind: "become-source", Node: obs.P(int64(to)), Seg: obs.P(int64(s.s2Begin))})
	}

	horizon := ev.Horizon
	if horizon <= 0 {
		horizon = s.cfg.HorizonTicks
	}
	s.openWindow(true, horizon, ev)
}

// pickNewSource draws a uniformly random alive node that never held the
// source role, excluding old; -1 when none exists. The draw comes from
// the membership directory's stream — the same stream churn picks from —
// so a scripted single switch reproduces the classic path bit-for-bit.
func (s *Sim) pickNewSource(old overlay.NodeID) overlay.NodeID {
	for tries := 0; tries < 64; tries++ {
		cand := s.dir.RandomAlive(old)
		if cand < 0 {
			return -1
		}
		if !s.nodes[cand].isSource {
			return cand
		}
	}
	// Dense ex-source corner (long handoff chains on tiny meshes):
	// linear fallback keeps the pick total.
	for _, cand := range s.dir.Alive() {
		if cand != old && !s.nodes[cand].isSource {
			return cand
		}
	}
	return -1
}

// openWindow freezes the measurement cohort and per-node baselines for a
// new window.
func (s *Sim) openWindow(isSwitch bool, horizon int, ev Event) {
	m := &SwitchMetrics{
		Window: len(s.res.Windows),
		Kind:   "measure",
		Tick:   s.tick,
		Nodes:  s.dir.AliveCount(),
	}
	if isSwitch {
		m.Kind = "switch"
		m.OldSource, m.NewSource, m.Failure = s.oldSource, s.newSource, ev.Failure
	}
	s.controlBits, s.dataBits = 0, 0
	s.netDelivered, s.netLost, s.netDelayTicks, s.netDelayMS, s.netReRequests = 0, 0, 0, 0, 0
	s.cohort = s.cohort[:0]
	for _, n := range s.nodes {
		eligible := n.alive && !n.isSource
		n.inCohort = eligible
		if !eligible {
			continue
		}
		n.played, n.stalled = 0, 0
		if isSwitch {
			n.finishS1Tick, n.prepareS2Tick, n.startS2Tick = unset, unset, unset
			n.q0 = n.undeliveredIn(n.WindowLo(), s.s1End)
		}
		s.cohort = append(s.cohort, n.id)
	}
	m.Cohort = len(s.cohort)
	if s.cfg.TrackRatios && isSwitch {
		m.UndeliveredS1 = &stats.Series{Label: "undelivered-S1"}
		m.DeliveredS2 = &stats.Series{Label: "delivered-S2"}
	}
	s.win = window{active: true, isSwitch: isSwitch, openTick: s.tick, horizon: horizon, metrics: m}
	if s.trace != nil {
		s.trace.Emit(obs.TraceEvent{T: obs.EvWindowOpen, Tick: s.tick,
			Window: obs.P(m.Window), Kind: m.Kind, Cohort: m.Cohort})
	}
}

// closeWindow finalizes the open window (no-op when none is open):
// per-node event ticks become the window's time samples and the window
// joins Result.Windows.
func (s *Sim) closeWindow(measured int, hitHorizon, interrupted bool) {
	if !s.win.active {
		return
	}
	m := s.win.metrics
	m.MeasuredTicks = measured
	m.HitHorizon = hitHorizon
	m.Interrupted = interrupted
	m.ControlBits = s.controlBits
	m.DataBits = s.dataBits
	m.NetDelivered = s.netDelivered
	m.NetLost = s.netLost
	m.NetReRequests = s.netReRequests
	if s.net != nil && !s.net.Quantized() {
		m.NetDelaySeconds = s.netDelayMS / 1000
	} else {
		// Tick-floored delays (and the classic substrate's zero), kept as
		// the exact pre-subtick expression for the QuantizeTicks goldens.
		m.NetDelaySeconds = float64(s.netDelayTicks) * s.cfg.Tau
	}
	for _, id := range s.cohort {
		n := s.nodes[id]
		if s.win.isSwitch {
			if n.finishS1Tick != unset {
				m.FinishS1Times = append(m.FinishS1Times, s.timeSince(n.finishS1Tick))
			} else if n.alive {
				m.UnfinishedS1++
			}
			if n.prepareS2Tick != unset {
				m.PrepareS2Times = append(m.PrepareS2Times, s.timeSince(n.prepareS2Tick))
			} else if n.alive {
				m.UnpreparedS2++
			}
			if n.startS2Tick != unset {
				m.StartS2Times = append(m.StartS2Times, s.timeSince(n.startS2Tick))
			}
		}
		m.PlayedSegments += int64(n.played)
		m.StalledSlots += int64(n.stalled)
	}
	s.res.Windows = append(s.res.Windows, m)
	s.win.active = false
	s.obsWindows.Inc()
	if s.trace != nil {
		s.trace.Emit(obs.TraceEvent{T: obs.EvWindowClose, Tick: s.tick,
			Window: obs.P(m.Window), Measured: m.MeasuredTicks,
			Unfinished: m.UnfinishedS1, Unprepared: m.UnpreparedS2})
	}
}

// flashCrowd joins a batch of fresh nodes through the membership
// protocol. Unlike churn joiners, who adopt their neighbors' playback
// position, crowd members play the current stream from its beginning
// (bounded by Backlog) — the catch-up backlog of an audience arriving
// late to a live event. Profiles are drawn from the event's own RNG
// stream (the rngEvents tag).
func (s *Sim) flashCrowd(ev Event, rng *rand.Rand) {
	sessions := s.tl.Sessions()
	curIdx := len(sessions) - 1
	anchor := sessions[curIdx].Begin
	if ev.Backlog > 0 {
		if a := s.nextGen - segment.ID(ev.Backlog); a > anchor {
			anchor = a
		}
	}
	for i := 0; i < ev.Count; i++ {
		id, _ := s.dir.Join()
		prof := bandwidth.Profile{In: bandwidth.DrawRate(rng), Out: bandwidth.DrawRate(rng)}
		n := newNodeState(id, prof, s.cfg.BufferCap, s.tick)
		n.Anchor, n.Playhead = anchor, anchor
		n.SessionIdx = curIdx
		n.Known = curIdx + 1
		s.applyShift(n)
		s.nodes = append(s.nodes, n)
		s.incoming = append(s.incoming, nil)
	}
}

// shiftBandwidth rescales every non-source node's rates to factor times
// its base profile (sources keep their boosted outbound; nodes that have
// not arrived yet shift too, so they join at the shifted rate).
func (s *Sim) shiftBandwidth(factor float64) {
	s.bwFactor = factor
	for _, n := range s.nodes {
		if n.isSource {
			continue
		}
		s.applyShift(n)
	}
}

// applyShift sets a node's working profile to base × the current shift
// (factor 1 restores the baseline exactly).
func (s *Sim) applyShift(n *nodeState) {
	if n.isSource {
		return
	}
	n.profile = bandwidth.Profile{In: n.base.In * s.bwFactor, Out: n.base.Out * s.bwFactor}
	n.in.SetRate(n.profile.In)
	n.out.SetRate(n.profile.Out)
}

// linkRate is R(j): the sending rate supplier j offers on each of its
// links — out_j / LinkShare, a single per-node value, exactly the
// "sending rate of node j" of Algorithm 1 (the paper never differentiates
// R(j) by requester; Figure 4 annotates each neighbor with its outbound
// rate o_j). The rate is never below one segment per period: a live
// connection always makes some progress.
func (s *Sim) linkRate(j *nodeState) float64 {
	r := j.out.Rate() / float64(s.cfg.LinkShare)
	if floor := 1 / s.cfg.Tau; r < floor {
		r = floor
	}
	return r
}

// linkCap is the whole-segment per-period capacity of one link.
func (s *Sim) linkCap(j *nodeState) int {
	c := int(s.linkRate(j)*s.cfg.Tau + 1e-9)
	if c < 1 {
		c = 1
	}
	return c
}

// cohortComplete reports whether every surviving cohort member has both
// finished S1 and prepared S2.
func (s *Sim) cohortComplete() bool {
	for _, id := range s.cohort {
		n := s.nodes[id]
		if !n.alive {
			continue
		}
		if n.finishS1Tick == unset || n.prepareS2Tick == unset {
			return false
		}
	}
	return true
}

// phaseRecord appends the tick's aggregate ratio points (bit counters
// are updated inline by the other phases) and closes the open window
// when its cohort completed or its horizon ran out.
func (s *Sim) phaseRecord() {
	if !s.win.active {
		return
	}
	if s.win.isSwitch {
		s.recordTick()
	}
	elapsed := s.tick - s.win.openTick + 1
	switch {
	case s.win.isSwitch && s.cohortComplete():
		s.closeWindow(elapsed, false, false)
	case elapsed >= s.win.horizon:
		s.closeWindow(s.win.horizon, true, false)
	}
}

func (s *Sim) recordTick() {
	m := s.win.metrics
	if m.UndeliveredS1 == nil {
		return
	}
	var q1Sum, q0Sum, d2Sum, qsSum int
	qs := segment.ID(s.cfg.Qs)
	for _, id := range s.cohort {
		n := s.nodes[id]
		if !n.alive || n.q0 == unset {
			continue
		}
		q0Sum += n.q0
		if n.q0 > 0 {
			lo := n.WindowLo()
			if lo > s.s1End {
				// Finished or moved past S1 — nothing undelivered remains.
			} else {
				q1 := n.undeliveredIn(lo, s.s1End)
				if q1 > n.q0 {
					q1 = n.q0
				}
				q1Sum += q1
			}
		}
		q2 := n.undeliveredIn(s.s2Begin, s.s2Begin+qs-1)
		d2Sum += s.cfg.Qs - q2
		qsSum += s.cfg.Qs
	}
	t := s.timeSince(s.tick)
	if q0Sum > 0 {
		m.UndeliveredS1.Append(t, float64(q1Sum)/float64(q0Sum))
	}
	if qsSum > 0 {
		m.DeliveredS2.Append(t, float64(d2Sum)/float64(qsSum))
	}
}

// timeSince converts an event tick into seconds after the open window's
// start (the switch instant for switch windows): events land at the end
// of their period.
func (s *Sim) timeSince(tick int) float64 {
	return float64(tick-s.win.openTick+1) * s.cfg.Tau
}

// finalize closes the transport's whole-run ledger and mirrors the first
// switch window (or the first window of any kind) into the Result's
// embedded flat metrics, preserving the classic single-switch read path.
func (s *Sim) finalize() {
	if s.net != nil {
		s.res.Audit = &NetAudit{
			Injected:   s.audInjected,
			Delivered:  s.audDelivered,
			Lost:       s.audLost,
			Severed:    s.audSevered,
			Evaporated: s.audEvap,
			InFlight:   int64(s.net.InFlight()),
		}
	}
	for _, w := range s.res.Windows {
		if w.Kind == "switch" {
			s.res.SwitchMetrics = *w
			return
		}
	}
	if len(s.res.Windows) > 0 {
		s.res.SwitchMetrics = *s.res.Windows[0]
	}
}
