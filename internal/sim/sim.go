package sim

import (
	"fmt"
	"math/rand"

	"gossipstream/internal/bandwidth"
	"gossipstream/internal/core"
	"gossipstream/internal/membership"
	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
	"gossipstream/internal/sim/engine"
	"gossipstream/internal/stats"
)

// Sim is one streaming system instance. Create with New, execute with Run.
// A Sim is not reusable after Run. Each tick executes the phase pipeline
// (arrivals → generate → refill → plan/serve rounds → deliver → playback →
// churn → record); the plan, serve, refill and playback phases shard
// per-node work across the engine worker pool, under the engine package's
// determinism contract — results are bit-identical at any worker count.
type Sim struct {
	cfg Config

	pool     *engine.Pool
	pipeline *engine.Pipeline
	sched    *engine.Pipeline // the per-round plan → serve sub-pipeline

	rng      *rand.Rand // structural decisions (source pick)
	churnRNG *rand.Rand
	profRNG  *rand.Rand

	g     *overlay.Graph
	dir   *membership.Directory
	nodes []*nodeState
	algo  core.Algorithm // naming only; planning uses per-worker instances

	tl      *segment.Timeline
	nextGen segment.ID // next id the current source will emit

	oldSource, newSource overlay.NodeID
	switchTick           int
	s1End, s2Begin       segment.ID
	newSessionIdx        int

	tick      int
	measuring bool

	// measurement state
	cohort      []overlay.NodeID
	controlBits int64
	dataBits    int64
	res         *Result

	// Per-tick pipeline state.
	round    int               // current plan/serve round within the period
	granted  bool              // whether the current round committed any grant
	sessions []segment.Session // per-tick snapshot of the timeline

	// Sharded scratch, reused across ticks.
	workers   []*workerScratch
	shards    []shardScratch
	incoming  [][]pullRequest
	delivered []delivery

	// per-tick diagnostics (tests and the debug CLI read these)
	diagRequests   int
	diagCandidates int
	diagPlanned    int
}

// RNG stream tags of the parallel phases (the `phase` input of
// engine.SeedFor). New parallel phases must claim fresh tags.
const (
	rngPlan = iota + 1
	rngServe
)

// New validates the configuration and builds the initial system: all
// nodes alive, S1 streaming from segment 0, buffers empty.
func New(cfg Config) (*Sim, error) {
	cfg = cfg.Defaulted()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		churnRNG: rand.New(rand.NewSource(cfg.Seed ^ 0x5eed_c0de)),
		profRNG:  rand.New(rand.NewSource(cfg.Seed ^ 0x0ba5_e5)),
		g:        cfg.Graph,
		algo:     cfg.NewAlgorithm(),
	}
	s.dir = membership.NewDirectory(s.g, neighborTarget(s.g), rand.New(rand.NewSource(cfg.Seed^0x3a11ce)))

	profiles := cfg.Profiles
	if profiles == nil {
		profiles = bandwidth.Assign(s.g.N(), s.profRNG)
	}
	s.nodes = make([]*nodeState, s.g.N())
	stagger := rand.New(rand.NewSource(cfg.Seed ^ 0x57a6)) // arrival times
	for i := range s.nodes {
		n := newNodeState(overlay.NodeID(i), profiles[i], cfg.BufferCap, 0)
		if cfg.JoinSpreadTicks > 0 {
			n.startTick = stagger.Intn(cfg.JoinSpreadTicks + 1)
			n.alive = n.startTick == 0
		}
		s.nodes[i] = n
	}
	s.oldSource = cfg.FirstSource
	if s.oldSource < 0 {
		s.oldSource = minDegreeNode(s.g)
	}
	s.tl = segment.NewTimeline(segment.SourceID(s.oldSource))
	src := s.nodes[s.oldSource]
	src.becomeSource(cfg.SourceOutFactor * cfg.P)
	src.wasS1 = true
	src.alive = true // the session exists from the moment its source speaks
	src.startTick = 0

	s.incoming = make([][]pullRequest, len(s.nodes))
	s.newSessionIdx = -1

	workers := cfg.Workers
	if workers == 0 {
		workers = 1 // the serial engine
	}
	s.pool = engine.NewPool(workers)
	s.workers = make([]*workerScratch, s.pool.Workers())
	for i := range s.workers {
		s.workers[i] = &workerScratch{algo: cfg.NewAlgorithm()}
	}
	s.sched = engine.NewPipeline(
		engine.Phase{Name: "plan", Run: s.planRound},
		engine.Phase{Name: "serve", Run: s.serveRound},
	)
	s.pipeline = engine.NewPipeline(
		engine.Phase{Name: "arrivals", Run: s.phaseArrivals},
		engine.Phase{Name: "generate", Run: s.phaseGenerate},
		engine.Phase{Name: "refill", Run: s.phaseRefill},
		engine.Phase{Name: "schedule", Run: s.phaseSchedule},
		engine.Phase{Name: "deliver", Run: s.phaseDeliver},
		engine.Phase{Name: "playback", Run: s.phasePlayback},
		engine.Phase{Name: "churn", Run: s.phaseChurn},
		engine.Phase{Name: "record", Run: s.phaseRecord},
	)
	return s, nil
}

// Workers returns the engine concurrency the simulation runs with (1 for
// the serial engine).
func (s *Sim) Workers() int { return s.pool.Workers() }

// PhaseTimings returns the accumulated wall-clock cost per pipeline
// phase, with the schedule phase broken down into its plan and serve
// sub-phases. Diagnostic only.
func (s *Sim) PhaseTimings() []engine.PhaseTiming {
	var out []engine.PhaseTiming
	for _, t := range s.pipeline.Timings() {
		if t.Name == "schedule" {
			out = append(out, s.sched.Timings()...)
			continue
		}
		out = append(out, t)
	}
	return out
}

// neighborTarget infers the membership view size from the topology's
// minimum degree (the paper's M, after augmentation).
func neighborTarget(g *overlay.Graph) int {
	m := g.MinDegree()
	if m < 1 {
		m = 5
	}
	return m
}

// minDegreeNode returns the lowest-id node of minimum degree — the
// auto-picked source, which holds exactly M neighbors like the paper's.
func minDegreeNode(g *overlay.Graph) overlay.NodeID {
	best := overlay.NodeID(0)
	for u := 1; u < g.N(); u++ {
		if g.Degree(overlay.NodeID(u)) < g.Degree(best) {
			best = overlay.NodeID(u)
		}
	}
	return best
}

// Run executes warm-up, the measured switch, and the post-switch window,
// returning the collected Result.
func (s *Sim) Run() (*Result, error) {
	if s.res != nil {
		return nil, fmt.Errorf("sim: Run called twice")
	}
	for s.tick = 0; s.tick < s.cfg.WarmupTicks; s.tick++ {
		s.step()
	}
	s.performSwitch()
	s.measuring = true
	end := s.cfg.WarmupTicks + s.cfg.HorizonTicks
	hitHorizon := true
	for ; s.tick < end; s.tick++ {
		s.step()
		if s.cohortComplete() {
			s.tick++
			hitHorizon = false
			break
		}
	}
	s.finalize(hitHorizon)
	return s.res, nil
}

// step advances the system by one scheduling period τ: one run of the
// phase pipeline.
func (s *Sim) step() { s.pipeline.Run() }

// ensureShards sizes the per-shard scratch to the current population.
func (s *Sim) ensureShards(n int) int {
	shards := engine.NumShards(n)
	for len(s.shards) < shards {
		s.shards = append(s.shards, shardScratch{})
	}
	return shards
}

// performSwitch is simulation time "0": S1 stops streaming, a new source
// is promoted and starts S2, and the measurement cohort is frozen.
func (s *Sim) performSwitch() {
	s.switchTick = s.tick
	s.s1End = s.nextGen - 1
	s.tl.Close(s.s1End)

	s.newSource = s.cfg.NewSource
	if s.newSource < 0 || !s.dir.IsAlive(s.newSource) || s.nodes[s.newSource].isSource {
		s.newSource = s.dir.RandomAlive(s.oldSource)
	}
	ses, err := s.tl.Append(segment.SourceID(s.newSource))
	if err != nil {
		panic(fmt.Sprintf("sim: timeline append: %v", err)) // unreachable: Close precedes
	}
	s.s2Begin = ses.Begin
	s.newSessionIdx = len(s.tl.Sessions()) - 1

	ns := s.nodes[s.newSource]
	ns.becomeSource(s.cfg.SourceOutFactor * s.cfg.P)
	// The synchronization mechanism the paper assumes: the new source
	// knows S1's ending segment id and embeds it in its first segments.
	ns.known = s.newSessionIdx + 1

	// Freeze the cohort and per-node Q0 baselines.
	s.res = &Result{Algorithm: s.algo.Name(), Nodes: s.dir.AliveCount()}
	if s.cfg.TrackRatios {
		s.res.UndeliveredS1 = &stats.Series{Label: "undelivered-S1"}
		s.res.DeliveredS2 = &stats.Series{Label: "delivered-S2"}
	}
	for _, n := range s.nodes {
		if !n.alive || n.isSource {
			continue
		}
		n.inCohort = true
		n.q0 = n.undeliveredIn(s.windowLo(n), s.s1End)
		s.cohort = append(s.cohort, n.id)
	}
	s.res.Cohort = len(s.cohort)
}

// windowLo is the lowest segment id the node still cares about: its
// playhead once playing, its playback anchor before that.
func (s *Sim) windowLo(n *nodeState) segment.ID {
	if n.playActive {
		return n.playhead
	}
	if n.playhead > n.anchor {
		// Between sessions: playhead parked past the previous session.
		return n.playhead
	}
	return n.anchor
}

// linkRate is R(j): the sending rate supplier j offers on each of its
// links — out_j / LinkShare, a single per-node value, exactly the
// "sending rate of node j" of Algorithm 1 (the paper never differentiates
// R(j) by requester; Figure 4 annotates each neighbor with its outbound
// rate o_j). The rate is never below one segment per period: a live
// connection always makes some progress.
func (s *Sim) linkRate(j *nodeState) float64 {
	r := j.out.Rate() / float64(s.cfg.LinkShare)
	if floor := 1 / s.cfg.Tau; r < floor {
		r = floor
	}
	return r
}

// linkCap is the whole-segment per-period capacity of one link.
func (s *Sim) linkCap(j *nodeState) int {
	c := int(s.linkRate(j)*s.cfg.Tau + 1e-9)
	if c < 1 {
		c = 1
	}
	return c
}

// cohortComplete reports whether every surviving cohort member has both
// finished S1 and prepared S2.
func (s *Sim) cohortComplete() bool {
	for _, id := range s.cohort {
		n := s.nodes[id]
		if !n.alive {
			continue
		}
		if n.finishS1Tick == unset || n.prepareS2Tick == unset {
			return false
		}
	}
	return true
}

// phaseRecord appends the tick's aggregate ratio points (bit counters are
// updated inline by the other phases).
func (s *Sim) phaseRecord() {
	if s.measuring {
		s.recordTick()
	}
}

func (s *Sim) recordTick() {
	if !s.cfg.TrackRatios {
		return
	}
	var q1Sum, q0Sum, d2Sum, qsSum int
	qs := segment.ID(s.cfg.Qs)
	for _, id := range s.cohort {
		n := s.nodes[id]
		if !n.alive || n.q0 == unset {
			continue
		}
		q0Sum += n.q0
		if n.q0 > 0 {
			lo := s.windowLo(n)
			if lo > s.s1End {
				// Finished or moved past S1 — nothing undelivered remains.
			} else {
				q1 := n.undeliveredIn(lo, s.s1End)
				if q1 > n.q0 {
					q1 = n.q0
				}
				q1Sum += q1
			}
		}
		q2 := n.undeliveredIn(s.s2Begin, s.s2Begin+qs-1)
		d2Sum += s.cfg.Qs - q2
		qsSum += s.cfg.Qs
	}
	t := s.timeSince(s.tick)
	if q0Sum > 0 {
		s.res.UndeliveredS1.Append(t, float64(q1Sum)/float64(q0Sum))
	}
	if qsSum > 0 {
		s.res.DeliveredS2.Append(t, float64(d2Sum)/float64(qsSum))
	}
}

// timeSince converts an event tick into seconds after the switch: events
// land at the end of their period.
func (s *Sim) timeSince(tick int) float64 {
	return float64(tick-s.switchTick+1) * s.cfg.Tau
}

// finalize assembles the Result from per-node event ticks.
func (s *Sim) finalize(hitHorizon bool) {
	r := s.res
	r.HitHorizon = hitHorizon
	r.MeasuredTicks = s.tick - s.switchTick
	r.ControlBits = s.controlBits
	r.DataBits = s.dataBits
	var played, stalled int64
	for _, id := range s.cohort {
		n := s.nodes[id]
		if n.finishS1Tick != unset {
			r.FinishS1Times = append(r.FinishS1Times, s.timeSince(n.finishS1Tick))
		} else if n.alive {
			r.UnfinishedS1++
		}
		if n.prepareS2Tick != unset {
			r.PrepareS2Times = append(r.PrepareS2Times, s.timeSince(n.prepareS2Tick))
		} else if n.alive {
			r.UnpreparedS2++
		}
		if n.startS2Tick != unset {
			r.StartS2Times = append(r.StartS2Times, s.timeSince(n.startS2Tick))
		}
		played += int64(n.played)
		stalled += int64(n.stalled)
	}
	r.PlayedSegments = played
	r.StalledSlots = stalled
}
