package sim

import (
	"fmt"
	"math/rand"

	"gossipstream/internal/bandwidth"
	"gossipstream/internal/bitfield"
	"gossipstream/internal/core"
	"gossipstream/internal/membership"
	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
	"gossipstream/internal/stats"
)

// Sim is one streaming system instance. Create with New, execute with Run.
// A Sim is single-goroutine and not reusable after Run.
type Sim struct {
	cfg Config

	rng      *rand.Rand // structural decisions (source pick)
	churnRNG *rand.Rand
	profRNG  *rand.Rand

	g     *overlay.Graph
	dir   *membership.Directory
	nodes []*nodeState
	algo  core.Algorithm

	tl      *segment.Timeline
	nextGen segment.ID // next id the current source will emit

	oldSource, newSource overlay.NodeID
	switchTick           int
	s1End, s2Begin       segment.ID
	newSessionIdx        int

	tick      int
	measuring bool

	// measurement state
	cohort      []overlay.NodeID
	controlBits int64
	dataBits    int64
	res         *Result

	// scratch reused across ticks
	incoming    [][]pullRequest
	plan        core.Plan
	env         core.Env
	delivered   []delivery
	grantSet    map[segment.ID]bool
	pairGrants  map[uint64]int // supplier→requester grants this period (per-link cap)
	pairReqs    map[uint64]int // supplier→requester prefetch requests this round
	plannedSet  map[segment.ID]struct{}
	poolScratch []segment.ID

	// per-tick diagnostics (tests and the debug CLI read these)
	diagRequests   int
	diagCandidates int
	diagPlanned    int
}

// pullRequest is one queued segment pull at a supplier.
type pullRequest struct {
	from     overlay.NodeID
	seg      segment.ID
	expected float64
}

// delivery is a transfer granted this tick, landed at tick end.
type delivery struct {
	to  overlay.NodeID
	seg segment.ID
}

// New validates the configuration and builds the initial system: all
// nodes alive, S1 streaming from segment 0, buffers empty.
func New(cfg Config) (*Sim, error) {
	cfg = cfg.Defaulted()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Sim{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		churnRNG: rand.New(rand.NewSource(cfg.Seed ^ 0x5eed_c0de)),
		profRNG:  rand.New(rand.NewSource(cfg.Seed ^ 0x0ba5_e5)),
		g:        cfg.Graph,
		algo:     cfg.NewAlgorithm(),
	}
	s.dir = membership.NewDirectory(s.g, neighborTarget(s.g), rand.New(rand.NewSource(cfg.Seed^0x3a11ce)))

	profiles := cfg.Profiles
	if profiles == nil {
		profiles = bandwidth.Assign(s.g.N(), s.profRNG)
	}
	s.nodes = make([]*nodeState, s.g.N())
	stagger := rand.New(rand.NewSource(cfg.Seed ^ 0x57a6)) // arrival times
	for i := range s.nodes {
		n := newNodeState(overlay.NodeID(i), profiles[i], cfg.BufferCap, 0)
		if cfg.JoinSpreadTicks > 0 {
			n.startTick = stagger.Intn(cfg.JoinSpreadTicks + 1)
			n.alive = n.startTick == 0
		}
		s.nodes[i] = n
	}
	s.oldSource = cfg.FirstSource
	if s.oldSource < 0 {
		s.oldSource = minDegreeNode(s.g)
	}
	s.tl = segment.NewTimeline(segment.SourceID(s.oldSource))
	src := s.nodes[s.oldSource]
	src.becomeSource(cfg.SourceOutFactor * cfg.P)
	src.wasS1 = true
	src.alive = true // the session exists from the moment its source speaks
	src.startTick = 0

	s.incoming = make([][]pullRequest, len(s.nodes))
	s.newSessionIdx = -1
	return s, nil
}

// neighborTarget infers the membership view size from the topology's
// minimum degree (the paper's M, after augmentation).
func neighborTarget(g *overlay.Graph) int {
	m := g.MinDegree()
	if m < 1 {
		m = 5
	}
	return m
}

// minDegreeNode returns the lowest-id node of minimum degree — the
// auto-picked source, which holds exactly M neighbors like the paper's.
func minDegreeNode(g *overlay.Graph) overlay.NodeID {
	best := overlay.NodeID(0)
	for u := 1; u < g.N(); u++ {
		if g.Degree(overlay.NodeID(u)) < g.Degree(best) {
			best = overlay.NodeID(u)
		}
	}
	return best
}

// Run executes warm-up, the measured switch, and the post-switch window,
// returning the collected Result.
func (s *Sim) Run() (*Result, error) {
	if s.res != nil {
		return nil, fmt.Errorf("sim: Run called twice")
	}
	for s.tick = 0; s.tick < s.cfg.WarmupTicks; s.tick++ {
		s.step()
	}
	s.performSwitch()
	s.measuring = true
	end := s.cfg.WarmupTicks + s.cfg.HorizonTicks
	hitHorizon := true
	for ; s.tick < end; s.tick++ {
		s.step()
		if s.cohortComplete() {
			s.tick++
			hitHorizon = false
			break
		}
	}
	s.finalize(hitHorizon)
	return s.res, nil
}

// step advances the system by one scheduling period τ. Within a period,
// planning and serving repeat up to ServeRounds times: the period is one
// second while a pull round-trip is tens of milliseconds, so a real node
// re-requests segments its first-choice supplier had no capacity for.
// Budgets persist across rounds (capacity is per period), and segments
// granted in any round land at period end (one overlay hop per period).
func (s *Sim) step() {
	if s.tick <= s.cfg.JoinSpreadTicks {
		for _, n := range s.nodes {
			if !n.alive && n.joinTick == 0 && n.startTick == s.tick {
				n.alive = true
			}
		}
	}
	if s.cfg.Churn != nil {
		s.applyChurn()
	}
	s.generate()
	s.refill()
	s.delivered = s.delivered[:0]
	if s.pairGrants == nil {
		s.pairGrants = make(map[uint64]int, 4096)
	}
	for k := range s.pairGrants {
		delete(s.pairGrants, k)
	}
	s.diagRequests, s.diagCandidates, s.diagPlanned = 0, 0, 0
	for round := 0; round < s.cfg.ServeRounds; round++ {
		if s.pairReqs == nil {
			s.pairReqs = make(map[uint64]int, 4096)
		}
		for k := range s.pairReqs {
			delete(s.pairReqs, k)
		}
		s.planAll(round)
		if !s.serve() && round > 0 {
			break // no grants: further rounds cannot progress
		}
	}
	s.deliver()
	s.playbackAll()
	if s.measuring {
		s.recordTick()
	}
}

// performSwitch is simulation time "0": S1 stops streaming, a new source
// is promoted and starts S2, and the measurement cohort is frozen.
func (s *Sim) performSwitch() {
	s.switchTick = s.tick
	s.s1End = s.nextGen - 1
	s.tl.Close(s.s1End)

	s.newSource = s.cfg.NewSource
	if s.newSource < 0 || !s.dir.IsAlive(s.newSource) || s.nodes[s.newSource].isSource {
		s.newSource = s.dir.RandomAlive(s.oldSource)
	}
	ses, err := s.tl.Append(segment.SourceID(s.newSource))
	if err != nil {
		panic(fmt.Sprintf("sim: timeline append: %v", err)) // unreachable: Close precedes
	}
	s.s2Begin = ses.Begin
	s.newSessionIdx = len(s.tl.Sessions()) - 1

	ns := s.nodes[s.newSource]
	ns.becomeSource(s.cfg.SourceOutFactor * s.cfg.P)
	// The synchronization mechanism the paper assumes: the new source
	// knows S1's ending segment id and embeds it in its first segments.
	ns.known = s.newSessionIdx + 1

	// Freeze the cohort and per-node Q0 baselines.
	s.res = &Result{Algorithm: s.algo.Name(), Nodes: s.dir.AliveCount()}
	if s.cfg.TrackRatios {
		s.res.UndeliveredS1 = &stats.Series{Label: "undelivered-S1"}
		s.res.DeliveredS2 = &stats.Series{Label: "delivered-S2"}
	}
	for _, n := range s.nodes {
		if !n.alive || n.isSource {
			continue
		}
		n.inCohort = true
		n.q0 = n.undeliveredIn(s.windowLo(n), s.s1End)
		s.cohort = append(s.cohort, n.id)
	}
	s.res.Cohort = len(s.cohort)
}

// windowLo is the lowest segment id the node still cares about: its
// playhead once playing, its playback anchor before that.
func (s *Sim) windowLo(n *nodeState) segment.ID {
	if n.playActive {
		return n.playhead
	}
	if n.playhead > n.anchor {
		// Between sessions: playhead parked past the previous session.
		return n.playhead
	}
	return n.anchor
}

// generate lets the current source emit p·τ fresh segments.
func (s *Sim) generate() {
	cur := s.tl.Current()
	if !cur.Open() {
		return
	}
	src := s.nodes[cur.Source]
	if !src.alive {
		return
	}
	n := int(s.cfg.P*s.cfg.Tau + 1e-9)
	for i := 0; i < n; i++ {
		src.receive(s.nextGen)
		s.nextGen++
	}
}

// refill resets every alive node's per-period transfer budgets and
// refreshes its alive-neighbor count (the denominator of the per-link
// rate).
func (s *Sim) refill() {
	for _, n := range s.nodes {
		if !n.alive {
			continue
		}
		n.in.Refill(s.cfg.Tau)
		n.out.Refill(s.cfg.Tau)
		deg := 0
		for _, v := range s.g.Neighbors(n.id) {
			if s.nodes[v].alive {
				deg++
			}
		}
		n.aliveDeg = deg
	}
}

// linkRate is R(j): the sending rate supplier j offers on each of its
// links — out_j / LinkShare, a single per-node value, exactly the
// "sending rate of node j" of Algorithm 1 (the paper never differentiates
// R(j) by requester; Figure 4 annotates each neighbor with its outbound
// rate o_j). The rate is never below one segment per period: a live
// connection always makes some progress.
func (s *Sim) linkRate(j *nodeState) float64 {
	r := j.out.Rate() / float64(s.cfg.LinkShare)
	if min := 1 / s.cfg.Tau; r < min {
		r = min
	}
	return r
}

// linkCap is the whole-segment per-period capacity of one link.
func (s *Sim) linkCap(j *nodeState) int {
	c := int(s.linkRate(j)*s.cfg.Tau + 1e-9)
	if c < 1 {
		c = 1
	}
	return c
}

// planAll runs every alive non-source node's scheduler and queues the
// resulting pull requests at their suppliers. On the first round it also
// accounts the buffer-map exchange: each alive node receives one 620-bit
// map per alive neighbor per period (retry rounds reuse the same maps).
func (s *Sim) planAll(round int) {
	wire := int64(bitfield.WireBits(s.cfg.BufferCap))
	for i := range s.incoming {
		s.incoming[i] = s.incoming[i][:0]
	}
	for _, n := range s.nodes {
		if !n.alive {
			continue
		}
		// Map exchange cost: n receives its alive neighbors' maps.
		if s.measuring && round == 0 {
			for _, v := range s.g.Neighbors(n.id) {
				if s.nodes[v].alive {
					s.controlBits += wire
				}
			}
		}
		if n.isSource || n.profile.In <= 0 || n.in.Available() < 1 {
			continue
		}
		s.buildEnv(n, round)
		if len(s.env.NeedOld) == 0 && len(s.env.NeedNew) == 0 {
			continue
		}
		s.algo.Plan(&s.env, &s.plan)
		s.diagRequests += len(s.plan.Requests)
		s.diagCandidates += len(s.env.NeedOld) + len(s.env.NeedNew)
		s.diagPlanned++
		for _, req := range s.plan.Requests {
			sup := overlay.NodeID(req.Supplier)
			s.incoming[sup] = append(s.incoming[sup], pullRequest{
				from:     n.id,
				seg:      req.Segment,
				expected: req.ExpectedAt,
			})
		}
		if !s.cfg.DisablePrefetch {
			s.prefetch(n)
		}
	}
}

// prefetch spends the node's leftover inbound budget on uniformly random
// missing segments of the node's *current* stream. This is the substrate
// behaviour of every data-driven mesh (random useful-piece selection): it
// decorrelates neighborhood holdings so all links stay useful. It runs
// identically under both switch algorithms, after — and never instead of —
// their prioritized requests.
//
// Crucially, prefetch never touches the next session's segments: how much
// inbound a node grants the new source before finishing the old one is
// exactly the decision the paper's switch algorithms make, and the
// emergent dissemination speed of S2 is the effect being measured.
func (s *Sim) prefetch(n *nodeState) {
	budget := n.in.Available() - len(s.plan.Requests)
	if budget <= 0 {
		return
	}
	// Segments the plan already requested this round must not be asked for
	// again.
	planned := s.plannedSet
	if planned == nil {
		planned = make(map[segment.ID]struct{}, 64)
		s.plannedSet = planned
	}
	for k := range planned {
		delete(planned, k)
	}
	for _, r := range s.plan.Requests {
		planned[r.Segment] = struct{}{}
	}
	pool := s.poolScratch[:0]
	pool = append(pool, n.needOld...)
	s.poolScratch = pool
	// Partial Fisher-Yates: draw random candidates until the budget or the
	// pool is exhausted.
	for k := 0; k < len(pool) && budget > 0; k++ {
		j := k + s.rng.Intn(len(pool)-k)
		pool[k], pool[j] = pool[j], pool[k]
		id := pool[k]
		if _, dup := planned[id]; dup || n.isGranted(id) {
			continue
		}
		sup := s.pickSupplier(n, id)
		if sup < 0 {
			continue
		}
		key := uint64(sup)<<32 | uint64(uint32(n.id))
		s.pairReqs[key]++
		s.incoming[sup] = append(s.incoming[sup], pullRequest{from: n.id, seg: id})
		budget--
	}
}

// pickSupplier chooses a uniformly random neighbor that holds the segment
// and whose link to n still has request capacity this period; -1 if none.
func (s *Sim) pickSupplier(n *nodeState, id segment.ID) overlay.NodeID {
	best := overlay.NodeID(-1)
	count := 0
	for _, v := range s.g.Neighbors(n.id) {
		nb := s.nodes[v]
		if !nb.alive || !nb.buf.Has(id) {
			continue
		}
		key := uint64(v)<<32 | uint64(uint32(n.id))
		if s.cfg.SharedOutbound {
			if nb.out.Available() < 1 {
				continue
			}
		} else if s.pairGrants[key]+s.pairReqs[key] >= s.linkCap(nb) {
			continue
		}
		count++
		if s.rng.Intn(count) == 0 {
			best = v
		}
	}
	return best
}

// buildEnv assembles the node's local scheduling view: its undelivered
// windows and its alive neighbors as suppliers. Discovery of a new
// session happens here — the node notices neighbors advertising segments
// past the current session's end. In retry rounds (round > 0) neighbors
// that answered "busy" — outbound exhausted — are dropped from the
// supplier set so demand reroutes to peers with remaining capacity.
func (s *Sim) buildEnv(n *nodeState, round int) {
	s.env = core.Env{
		Tau:      s.cfg.Tau,
		P:        s.cfg.P,
		Q:        float64(s.cfg.Q),
		Inbound:  n.profile.In,
		Playhead: s.windowLo(n),
	}
	s.env.Suppliers = s.env.Suppliers[:0]
	maxAdvert := segment.None
	for _, v := range s.g.Neighbors(n.id) {
		nb := s.nodes[v]
		if !nb.alive {
			continue
		}
		if len(s.env.Suppliers) == core.MaxSuppliers {
			// Hubs created by the random augmentation can exceed the
			// scheduler's supplier mask; a node evaluates at most
			// MaxSuppliers neighbors per period (far beyond the M=5 a
			// real deployment maintains).
			break
		}
		if nb.maxSeen > maxAdvert {
			maxAdvert = nb.maxSeen
		}
		if round > 0 {
			// Skip neighbors that signalled "busy" in the previous round:
			// exhausted aggregate outbound (shared mode) or an exhausted
			// link to this node (per-link mode).
			if s.cfg.SharedOutbound {
				if nb.out.Available() < 1 {
					continue
				}
			} else {
				key := uint64(v)<<32 | uint64(uint32(n.id))
				if s.pairGrants[key] >= s.linkCap(nb) {
					continue
				}
			}
		}
		rate := s.linkRate(nb)
		if s.cfg.SharedOutbound {
			rate = nb.out.Rate()
		}
		s.env.Suppliers = append(s.env.Suppliers, core.Supplier{
			ID:   core.SupplierID(v),
			Rate: rate,
			View: nb.buf,
		})
	}
	if maxAdvert == segment.None {
		n.needOld, n.needNew = n.needOld[:0], n.needNew[:0]
		s.env.NeedOld, s.env.NeedNew = nil, nil
		return
	}

	sessions := s.tl.Sessions()
	// Discovery: a neighbor advertises a segment beyond every session the
	// node knows about.
	for n.known < len(sessions) && maxAdvert >= sessions[n.known].Begin {
		n.known++
	}
	if n.sessionIdx >= len(sessions) {
		n.sessionIdx = len(sessions) - 1
	}
	cur := sessions[n.sessionIdx]

	lo := s.windowLo(n)
	hi := maxAdvert
	if !cur.Open() && hi > cur.End {
		hi = cur.End
	}
	if max := lo + segment.ID(s.cfg.BufferCap) - 1; hi > max {
		hi = max
	}
	n.needOld = n.needOld[:0]
	if hi >= lo {
		n.needOld = n.appendMissing(n.needOld, lo, hi)
	}

	n.needNew = n.needNew[:0]
	if next := n.sessionIdx + 1; next < n.known {
		ns := sessions[next]
		nhi := ns.Begin + segment.ID(s.cfg.Qs) - 1
		if !ns.Open() && nhi > ns.End {
			nhi = ns.End
		}
		n.needNew = n.appendMissing(n.needNew, ns.Begin, nhi)
	}
	s.env.NeedOld, s.env.NeedNew = n.needOld, n.needNew
}

// serve resolves this round's requests at every supplier.
//
// In the paper's per-link model (the default) a supplier answers each
// neighbor independently at rate R(j): the only caps are the per-link
// R(j)·τ segments per period and the requester's inbound budget. This is
// exactly the capacity model behind Algorithm 1, whose queueing time τ(j)
// accumulates only the requester's own transfers at j.
//
// In the shared-outbound ablation a supplier's R(j)·τ is an aggregate
// period budget across all links. Service order then decides mesh
// throughput: if a congested supplier answers every queue in the same
// order, same-depth peers end up with identical holdings and have nothing
// to trade. Mirroring the randomized forwarding of gossip protocols, the
// supplier serves its queue in random order and grants each distinct
// segment once before spending leftover capacity on duplicates.
func (s *Sim) serve() (grantedAny bool) {
	for sid := range s.incoming {
		reqs := s.incoming[sid]
		if len(reqs) == 0 {
			continue
		}
		if s.cfg.SharedOutbound {
			grantedAny = s.serveShared(overlay.NodeID(sid), reqs) || grantedAny
		} else {
			grantedAny = s.servePerLink(overlay.NodeID(sid), reqs) || grantedAny
		}
	}
	return grantedAny
}

// servePerLink grants requests under the paper's link-capacity semantics.
func (s *Sim) servePerLink(sid overlay.NodeID, reqs []pullRequest) (grantedAny bool) {
	sup := s.nodes[sid]
	linkCap := s.linkCap(sup)
	for _, r := range reqs {
		req := s.nodes[r.from]
		if !req.alive || req.in.Available() < 1 ||
			!sup.buf.Has(r.seg) || req.buf.Has(r.seg) || req.isGranted(r.seg) {
			continue
		}
		key := uint64(sid)<<32 | uint64(uint32(r.from))
		if s.pairGrants[key] >= linkCap {
			continue // this link's period capacity is exhausted
		}
		s.pairGrants[key]++
		req.in.Take(1)
		req.markGranted(r.seg)
		grantedAny = true
		s.delivered = append(s.delivered, delivery{to: r.from, seg: r.seg})
		if s.measuring {
			s.dataBits += bandwidth.BitsForSegments(1)
		}
	}
	return grantedAny
}

// serveShared grants requests under an aggregate outbound budget with
// randomized, distinct-first service order.
func (s *Sim) serveShared(sid overlay.NodeID, reqs []pullRequest) (grantedAny bool) {
	sup := s.nodes[sid]
	if sup.out.Available() < 1 {
		return false
	}
	// Deterministic shuffle from the run's RNG stream.
	s.rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
	granted := s.grantSet
	if granted == nil {
		granted = make(map[segment.ID]bool, 64)
		s.grantSet = granted
	}
	for k := range granted {
		delete(granted, k)
	}
	for pass := 0; pass < 2 && sup.out.Available() >= 1; pass++ {
		for _, r := range reqs {
			if sup.out.Available() < 1 {
				break
			}
			if pass == 0 && granted[r.seg] {
				continue // distinct segments first
			}
			req := s.nodes[r.from]
			if !req.alive || req.in.Available() < 1 ||
				!sup.buf.Has(r.seg) || req.buf.Has(r.seg) || req.isGranted(r.seg) {
				continue
			}
			sup.out.Take(1)
			req.in.Take(1)
			granted[r.seg] = true
			req.markGranted(r.seg)
			grantedAny = true
			s.delivered = append(s.delivered, delivery{to: r.from, seg: r.seg})
			if s.measuring {
				s.dataBits += bandwidth.BitsForSegments(1)
			}
		}
	}
	return grantedAny
}

// deliver lands this tick's granted transfers (store-and-forward: a
// segment received in period t becomes visible to neighbors in t+1).
func (s *Sim) deliver() {
	for _, d := range s.delivered {
		n := s.nodes[d.to]
		n.receive(d.seg)
		n.clearGranted()
	}
}

// playbackAll advances every alive non-source node's playback state
// machine by one period.
func (s *Sim) playbackAll() {
	sessions := s.tl.Sessions()
	perTick := int(s.cfg.P*s.cfg.Tau + 1e-9)
	for _, n := range s.nodes {
		if !n.alive || n.isSource {
			continue
		}
		s.advancePlayback(n, sessions, perTick)
		if s.measuring && n.inCohort && n.prepareS2Tick == unset && n.known > s.newSessionIdx {
			if n.undeliveredIn(s.s2Begin, s.s2Begin+segment.ID(s.cfg.Qs)-1) == 0 {
				n.prepareS2Tick = s.tick
			}
		}
	}
}

func (s *Sim) advancePlayback(n *nodeState, sessions []segment.Session, perTick int) {
	if n.sessionIdx >= len(sessions) {
		return // finished every session that exists
	}
	cur := sessions[n.sessionIdx]
	if !n.playActive {
		if !s.tryStart(n, sessions, cur) {
			return
		}
	}
	for consumed := 0; consumed < perTick; consumed++ {
		if !cur.Open() && n.playhead > cur.End {
			break
		}
		if !n.buf.Has(n.playhead) {
			// Stall: hole at the playhead. The remaining playback slots of
			// this period are lost (continuity accounting).
			if s.measuring && n.inCohort {
				n.stalled += perTick - consumed
			}
			return
		}
		n.playhead++
		if s.measuring && n.inCohort {
			n.played++
		}
	}
	if !cur.Open() && n.playhead > cur.End {
		s.finishSession(n, cur)
	}
}

// tryStart checks the stream start conditions: Q consecutive segments
// from the playback anchor for a node entering a stream mid-way or at its
// beginning; additionally, for a source switch, the first Qs segments of
// the new source and completed playback of the old one (the latter is
// implied by sessionIdx having advanced).
func (s *Sim) tryStart(n *nodeState, sessions []segment.Session, cur segment.Session) bool {
	if n.sessionIdx > 0 && n.anchor == cur.Begin {
		// Starting a successor session: need its first Qs segments.
		need := s.cfg.Qs
		if !cur.Open() && cur.Len() < need {
			need = cur.Len()
		}
		if n.buf.ConsecutiveFrom(cur.Begin) < need {
			return false
		}
	} else if n.buf.ConsecutiveFrom(n.anchor) < s.cfg.Q {
		return false
	}
	n.playActive = true
	n.playhead = n.anchor
	if s.measuring && n.inCohort && n.sessionIdx == s.newSessionIdx && n.startS2Tick == unset {
		n.startS2Tick = s.tick
	}
	return true
}

// finishSession transitions a node that played its session to the end.
func (s *Sim) finishSession(n *nodeState, cur segment.Session) {
	if s.measuring && n.inCohort && n.sessionIdx == s.newSessionIdx-1 && n.finishS1Tick == unset {
		n.finishS1Tick = s.tick
	}
	n.playActive = false
	n.sessionIdx++
	n.anchor = cur.End + 1
	n.playhead = n.anchor
}

// applyChurn removes LeaveFraction of the alive non-source nodes and adds
// JoinFraction fresh nodes, wired through the membership directory.
func (s *Sim) applyChurn() {
	alive := s.dir.AliveCount()
	leaves := int(s.cfg.Churn.LeaveFraction * float64(alive))
	for i := 0; i < leaves; i++ {
		victim := s.dir.RandomAlive(s.oldSource, s.newSource)
		if victim < 0 {
			break
		}
		if s.nodes[victim].isSource || !s.nodes[victim].alive {
			continue
		}
		s.nodes[victim].alive = false
		s.dir.Leave(victim)
	}
	joins := int(s.cfg.Churn.JoinFraction * float64(alive))
	for i := 0; i < joins; i++ {
		id, neighbors := s.dir.Join()
		prof := bandwidth.Profile{In: bandwidth.DrawRate(s.churnRNG), Out: bandwidth.DrawRate(s.churnRNG)}
		n := newNodeState(id, prof, s.cfg.BufferCap, s.tick)
		// "A new joining node ... starts its media playback by following
		// its neighbors' current steps" (Section 5.4).
		anchor := segment.ID(0)
		for _, v := range neighbors {
			if lo := s.windowLo(s.nodes[v]); lo > anchor {
				anchor = lo
			}
		}
		n.anchor = anchor
		n.playhead = anchor
		if ses, ok := s.tl.SessionOf(anchor); ok {
			for idx, sv := range s.tl.Sessions() {
				if sv.Begin == ses.Begin {
					n.sessionIdx = idx
					n.known = idx + 1
					break
				}
			}
		}
		s.nodes = append(s.nodes, n)
		s.incoming = append(s.incoming, nil)
	}
}

// cohortComplete reports whether every surviving cohort member has both
// finished S1 and prepared S2.
func (s *Sim) cohortComplete() bool {
	for _, id := range s.cohort {
		n := s.nodes[id]
		if !n.alive {
			continue
		}
		if n.finishS1Tick == unset || n.prepareS2Tick == unset {
			return false
		}
	}
	return true
}

// recordTick appends the tick's aggregate ratio points and accumulates
// nothing else (bit counters are updated inline).
func (s *Sim) recordTick() {
	if !s.cfg.TrackRatios {
		return
	}
	var q1Sum, q0Sum, d2Sum, qsSum int
	qs := segment.ID(s.cfg.Qs)
	for _, id := range s.cohort {
		n := s.nodes[id]
		if !n.alive || n.q0 == unset {
			continue
		}
		q0Sum += n.q0
		if n.q0 > 0 {
			lo := s.windowLo(n)
			if lo > s.s1End {
				// Finished or moved past S1 — nothing undelivered remains.
			} else {
				q1 := n.undeliveredIn(lo, s.s1End)
				if q1 > n.q0 {
					q1 = n.q0
				}
				q1Sum += q1
			}
		}
		q2 := n.undeliveredIn(s.s2Begin, s.s2Begin+qs-1)
		d2Sum += s.cfg.Qs - q2
		qsSum += s.cfg.Qs
	}
	t := s.timeSince(s.tick)
	if q0Sum > 0 {
		s.res.UndeliveredS1.Append(t, float64(q1Sum)/float64(q0Sum))
	}
	if qsSum > 0 {
		s.res.DeliveredS2.Append(t, float64(d2Sum)/float64(qsSum))
	}
}

// timeSince converts an event tick into seconds after the switch: events
// land at the end of their period.
func (s *Sim) timeSince(tick int) float64 {
	return float64(tick-s.switchTick+1) * s.cfg.Tau
}

// finalize assembles the Result from per-node event ticks.
func (s *Sim) finalize(hitHorizon bool) {
	r := s.res
	r.HitHorizon = hitHorizon
	r.MeasuredTicks = s.tick - s.switchTick
	r.ControlBits = s.controlBits
	r.DataBits = s.dataBits
	var played, stalled int64
	for _, id := range s.cohort {
		n := s.nodes[id]
		if n.finishS1Tick != unset {
			r.FinishS1Times = append(r.FinishS1Times, s.timeSince(n.finishS1Tick))
		} else if n.alive {
			r.UnfinishedS1++
		}
		if n.prepareS2Tick != unset {
			r.PrepareS2Times = append(r.PrepareS2Times, s.timeSince(n.prepareS2Tick))
		} else if n.alive {
			r.UnpreparedS2++
		}
		if n.startS2Tick != unset {
			r.StartS2Times = append(r.StartS2Times, s.timeSince(n.startS2Tick))
		}
		played += int64(n.played)
		stalled += int64(n.stalled)
	}
	r.PlayedSegments = played
	r.StalledSlots = stalled
}
