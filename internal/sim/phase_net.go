package sim

import (
	"gossipstream/internal/netmodel"
	"gossipstream/internal/overlay"
	"gossipstream/internal/sim/engine"
)

// The transit phase: the netmodel transport's landing step, replacing
// the instant deliver phase when Config.Net is set. The serve commit
// injects every granted segment as an in-flight message (see
// serveRound); transit drains the messages whose continuous arrival
// timestamp falls within the current period, in timestamp order, draws
// their loss fate, and lands the survivors — so two grants issued the
// same tick arrive in their true sub-tick order, and the delay metrics
// resolve below one period. Under Config.Net.QuantizeTicks timestamps
// sit on period boundaries and the drain degenerates to the original
// tick-floored (due, injection) order, bit for bit.
//
// Sharded on the destination grid: each shard owns its own message heap
// inside the model, buffer writes are destination-local, and the loss
// draws come from a fresh rngNet stream per (tick, shard) — so the
// in-flight message state obeys the same shard/merge determinism
// contract as every other phase, and a run with the transport enabled
// is still a pure function of its seed at any worker count. The
// per-shard delivery/loss counters merge serially in shard order.

// blocked reports whether the link between two nodes is severed by an
// active partition (always false without the netmodel transport). The
// planning phases consult it so buffer maps and requests stop crossing
// the boundary, exactly like the data messages transit drops.
func (s *Sim) blocked(a, b overlay.NodeID) bool {
	return s.net != nil && s.net.Blocked(a, b)
}

// phaseTransit lands this tick's due messages: losses (drawn per
// message) and partition-crossing messages are dropped — freeing the
// segment for a re-request and recording it as lost — and the rest
// reach their destination's buffer, store-and-forward, exactly when the
// delay model says they do.
func (s *Sim) phaseTransit() {
	n := len(s.nodes)
	shards := s.ensureShards(n)
	popped := 0
	quantized := s.net.Quantized()
	s.pool.Run(shards, func(worker, shard int) {
		sh := &s.shards[shard]
		sh.netDelivered, sh.netLost, sh.netDelayTicks, sh.netDelayMS, sh.netPopped = 0, 0, 0, 0, 0
		sh.netSevered, sh.netEvap = 0, 0
		rng := s.workers[worker].seedRNG(engine.SeedFor(s.cfg.Seed, rngNet, s.tick, 0, shard))
		loss := s.net.LossProb(s.tick)
		sh.netPopped = s.net.PopDue(shard, s.tick, func(msg netmodel.Message) {
			to := s.nodes[msg.To]
			if !to.alive {
				// The destination left the overlay mid-flight: the message
				// evaporates without loss accounting (nobody re-requests).
				to.removeGranted(msg.Seg)
				sh.netEvap++
				return
			}
			// Severed messages skip the loss draw (the short-circuit keeps
			// the rngNet stream identical to the pre-ledger engine); both
			// branches drop the message the same way, they only differ in
			// which conservation bucket counts it.
			if s.blocked(msg.From, msg.To) {
				to.removeGranted(msg.Seg)
				to.noteLost(msg.Seg)
				sh.netSevered++
				return
			}
			if loss > 0 && rng.Float64() < loss {
				to.removeGranted(msg.Seg)
				to.noteLost(msg.Seg)
				sh.netLost++
				return
			}
			to.receive(msg.Seg)
			to.removeGranted(msg.Seg)
			sh.netDelivered++
			if quantized {
				// Tick-floored delay includes the landing period itself:
				// the classic substrate's same-tick delivery measures one
				// period.
				sh.netDelayTicks += int64(s.tick - msg.Sent + 1)
			} else {
				// The true link delay, sub-period resolution.
				sh.netDelayMS += msg.DelayMS(s.cfg.Tau)
			}
		})
	})
	// Serial merge in shard order: window accounting, the run-level
	// conservation ledger, and the in-flight gauge. The window's NetLost
	// keeps counting losses and severs together (its historical meaning);
	// the ledger splits them.
	for si := 0; si < shards; si++ {
		sh := &s.shards[si]
		popped += sh.netPopped
		s.obsDelivered.Add(sh.netDelivered)
		s.obsLost.Add(sh.netLost + sh.netSevered)
		s.audDelivered += sh.netDelivered
		s.audLost += sh.netLost
		s.audSevered += sh.netSevered
		s.audEvap += sh.netEvap
		if s.win.active {
			s.netDelivered += sh.netDelivered
			s.netLost += sh.netLost + sh.netSevered
			s.netDelayTicks += sh.netDelayTicks
			s.netDelayMS += sh.netDelayMS
		}
	}
	s.net.SettleDelivered(popped)
}
