package sim

import (
	"gossipstream/internal/bandwidth"
	"gossipstream/internal/buffer"
	"gossipstream/internal/core"
	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
)

// unset marks a per-node event that has not happened yet.
const unset = -1

// nodeState is everything one simulated peer owns. During the parallel
// phases a node's fields are mutated only by the worker that owns its
// shard — with two audited exceptions, linkGrants and linkReqs, whose
// per-neighbor slots are each written by exactly one goroutine (see the
// field comments).
type nodeState struct {
	id      overlay.NodeID
	buf     *buffer.Buffer
	profile bandwidth.Profile
	// base is the node's unshifted capacity profile: the anchor
	// BandwidthShift events rescale from (profile = base × factor).
	base    bandwidth.Profile
	in, out *bandwidth.Budget

	alive    bool
	isSource bool // currently acting as the streaming source
	wasS1    bool // was the old source of the measured switch
	joinTick int  // tick the node entered the system (0 for initial nodes)
	// startTick delays initial nodes' activation (staggered assembly of
	// the session); inactive nodes neither request nor supply.
	startTick int

	// aliveDeg is the node's alive-neighbor count, refreshed each period;
	// its outbound is shared equally across those links (link rate =
	// out/aliveDeg — the R(j) of Algorithm 1).
	aliveDeg int

	// maxSeen is the largest segment id the node has received — its local
	// notion of how far the stream extends (neighbors read it as the
	// advertised high-water mark of the last exchanged buffer map).
	maxSeen segment.ID

	// Playback is the embedded per-node protocol core (peercore.go): the
	// playback/session state machine shared with the live runtime.
	Playback

	// Measured-switch bookkeeping (seconds are derived later; ticks here).
	finishS1Tick  int // finished the whole playback of S1
	prepareS2Tick int // gathered the first Qs segments of S2
	startS2Tick   int // actually started playing S2 (max of the two conditions)
	q0            int // undelivered S1 backlog at the switch tick
	inCohort      bool

	// Playback continuity accounting over the measurement window: played
	// counts consumed segments, stalled counts playback slots lost to a
	// hole at the playhead while mid-stream.
	played, stalled int

	// granted holds the segments already won in an earlier serve round of
	// the current period: they are in flight (arriving at period end) and
	// must not be re-requested in retry rounds. At most Inbound·τ entries,
	// so a flat slice with linear membership beats a map; it is appended
	// only by the serial commit step and cleared at delivery. Under the
	// netmodel transport a segment stays granted for its whole flight
	// time (possibly several ticks) and is removed individually at
	// delivery or loss, so the round-0 isGranted scans become
	// load-bearing there.
	granted []segment.ID

	// lostSegs holds segments whose in-flight message the transport
	// lost: the node may request them again, and a later grant of one is
	// counted as a loss-induced re-request. Netmodel runs only.
	lostSegs []segment.ID

	// linkGrants[i] counts this period's grants over the link from the
	// node's i-th neighbor (the per-pair cap of the per-link substrate —
	// the former pairGrants map, now requester-side and allocation-free).
	// Slot i is written only by neighbor i's serve goroutine during
	// propose and by the serial commit, never by two goroutines at once.
	linkGrants []int32
	// linkReqs[i] counts this round's prefetch requests on the same link
	// (the former pairReqs map). Touched only by the node's own plan
	// worker.
	linkReqs []int32

	// Per-period plan view, built once at round 0 of each scheduling
	// period and reused by the retry rounds (suppliers get re-filtered for
	// "busy", needs for "granted" — but the neighbor scan, session
	// discovery and missing-segment scan run once per period, not once per
	// round). viewSuppliers holds the alive neighbors as core suppliers;
	// viewSupAdj maps each of them back to its index in the adjacency list
	// (the linkGrants/linkReqs slot). All four slices are read-only spans
	// into the owning shard's plan-view arenas (shardScratch), valid for
	// the period they were built in — a node that skips a period keeps a
	// stale span but never reads it, because the view is only consumed by
	// the rounds of the period that built it.
	viewSuppliers []core.Supplier
	viewSupAdj    []int32

	// needOld and needNew cache the period's undelivered windows (the
	// other half of the plan view).
	needOld, needNew []segment.ID
}

// markGranted notes an in-flight segment for the rest of the period.
func (n *nodeState) markGranted(id segment.ID) {
	n.granted = append(n.granted, id)
}

// isGranted reports whether the segment is already in flight this period.
func (n *nodeState) isGranted(id segment.ID) bool {
	for _, g := range n.granted {
		if g == id {
			return true
		}
	}
	return false
}

// clearGranted resets the in-flight set at period end.
func (n *nodeState) clearGranted() {
	n.granted = n.granted[:0]
}

// removeGranted drops one segment from the in-flight set (netmodel
// delivery or loss; membership is set-like, so swap-delete is fine).
func (n *nodeState) removeGranted(id segment.ID) {
	for i, g := range n.granted {
		if g == id {
			n.granted[i] = n.granted[len(n.granted)-1]
			n.granted = n.granted[:len(n.granted)-1]
			return
		}
	}
}

// noteLost records a lost in-flight segment so a later re-grant counts
// as a loss-induced re-request.
func (n *nodeState) noteLost(id segment.ID) {
	for _, l := range n.lostSegs {
		if l == id {
			return
		}
	}
	n.lostSegs = append(n.lostSegs, id)
}

// consumeLost reports whether the segment was previously lost for this
// node, removing the record (each loss is counted as at most one
// re-request).
func (n *nodeState) consumeLost(id segment.ID) bool {
	for i, l := range n.lostSegs {
		if l == id {
			n.lostSegs[i] = n.lostSegs[len(n.lostSegs)-1]
			n.lostSegs = n.lostSegs[:len(n.lostSegs)-1]
			return true
		}
	}
	return false
}

// ensureLinkScratch sizes the per-neighbor counters to the node's current
// degree (adjacency lists mutate under churn between periods). Both
// counters share one backing allocation; the three-index slice keeps the
// grant half from growing into the request half.
func (n *nodeState) ensureLinkScratch(deg int) {
	if cap(n.linkGrants) < deg {
		backing := make([]int32, 2*deg)
		n.linkGrants = backing[:deg:deg]
		n.linkReqs = backing[deg:]
		return
	}
	n.linkGrants = n.linkGrants[:deg]
	n.linkReqs = n.linkReqs[:deg]
}

func newNodeState(id overlay.NodeID, prof bandwidth.Profile, bufCap, joinTick int) *nodeState {
	return &nodeState{
		id:      id,
		buf:     buffer.New(bufCap),
		profile: prof,
		base:    prof,
		in:      bandwidth.NewBudget(prof.In),
		out:     bandwidth.NewBudget(prof.Out),
		alive:   true,
		// Pre-size the in-flight set to a period's worth of grants: the
		// slice converges there anyway, and paying it at construction
		// keeps the first scheduling periods growth-free.
		granted:       make([]segment.ID, 0, 16),
		joinTick:      joinTick,
		maxSeen:       segment.None,
		Playback:      NewPlayback(0, 0, 1),
		finishS1Tick:  unset,
		prepareS2Tick: unset,
		startS2Tick:   unset,
		q0:            unset,
	}
}

// receive lands one segment in the node's buffer (end-of-tick delivery).
func (n *nodeState) receive(id segment.ID) {
	n.buf.Insert(id)
	if id > n.maxSeen {
		n.maxSeen = id
	}
}

// becomeSource promotes the node to streaming source: inbound drops to
// zero, outbound is boosted, and any in-progress playback of the previous
// stream is abandoned (the speaker stops being a listener).
func (n *nodeState) becomeSource(outRate float64) {
	n.isSource = true
	n.profile = bandwidth.Profile{In: 0, Out: outRate}
	n.in.SetRate(0)
	n.out.SetRate(outRate)
	n.Active = false
}

// undeliveredIn counts the ids in [lo, hi] missing from the buffer.
func (n *nodeState) undeliveredIn(lo, hi segment.ID) int {
	if hi < lo {
		return 0
	}
	missing := 0
	for id := lo; id <= hi; id++ {
		if !n.buf.Has(id) {
			missing++
		}
	}
	return missing
}
