package sim

import (
	"gossipstream/internal/bandwidth"
	"gossipstream/internal/buffer"
	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
)

// unset marks a per-node event that has not happened yet.
const unset = -1

// nodeState is everything one simulated peer owns. Fields are mutated only
// by the Sim's single goroutine.
type nodeState struct {
	id      overlay.NodeID
	buf     *buffer.Buffer
	profile bandwidth.Profile
	in, out *bandwidth.Budget

	alive    bool
	isSource bool // currently acting as the streaming source
	wasS1    bool // was the old source of the measured switch
	joinTick int  // tick the node entered the system (0 for initial nodes)
	// startTick delays initial nodes' activation (staggered assembly of
	// the session); inactive nodes neither request nor supply.
	startTick int

	// aliveDeg is the node's alive-neighbor count, refreshed each period;
	// its outbound is shared equally across those links (link rate =
	// out/aliveDeg — the R(j) of Algorithm 1).
	aliveDeg int

	// maxSeen is the largest segment id the node has received — its local
	// notion of how far the stream extends (neighbors read it as the
	// advertised high-water mark of the last exchanged buffer map).
	maxSeen segment.ID

	// Playback state machine.
	sessionIdx int        // index into the timeline of the session being played/awaited
	known      int        // number of timeline sessions this node has discovered
	playActive bool       // currently consuming segments
	playhead   segment.ID // next segment to play
	anchor     segment.ID // first segment of the node's playback (joiners adopt a late anchor)

	// Measured-switch bookkeeping (seconds are derived later; ticks here).
	finishS1Tick  int // finished the whole playback of S1
	prepareS2Tick int // gathered the first Qs segments of S2
	startS2Tick   int // actually started playing S2 (max of the two conditions)
	q0            int // undelivered S1 backlog at the switch tick
	inCohort      bool

	// Playback continuity accounting over the measurement window: played
	// counts consumed segments, stalled counts playback slots lost to a
	// hole at the playhead while mid-stream.
	played, stalled int

	// granted holds the segments already won in an earlier serve round of
	// the current period: they are in flight (arriving at period end) and
	// must not be re-requested in retry rounds.
	granted map[segment.ID]struct{}

	// Reused scratch for planning.
	needOld, needNew []segment.ID
}

// markGranted notes an in-flight segment for the rest of the period.
func (n *nodeState) markGranted(id segment.ID) {
	if n.granted == nil {
		n.granted = make(map[segment.ID]struct{}, 64)
	}
	n.granted[id] = struct{}{}
}

// isGranted reports whether the segment is already in flight this period.
func (n *nodeState) isGranted(id segment.ID) bool {
	_, ok := n.granted[id]
	return ok
}

// clearGranted resets the in-flight set at period end.
func (n *nodeState) clearGranted() {
	for k := range n.granted {
		delete(n.granted, k)
	}
}

func newNodeState(id overlay.NodeID, prof bandwidth.Profile, bufCap, joinTick int) *nodeState {
	return &nodeState{
		id:            id,
		buf:           buffer.New(bufCap),
		profile:       prof,
		in:            bandwidth.NewBudget(prof.In),
		out:           bandwidth.NewBudget(prof.Out),
		alive:         true,
		joinTick:      joinTick,
		maxSeen:       segment.None,
		known:         1,
		finishS1Tick:  unset,
		prepareS2Tick: unset,
		startS2Tick:   unset,
		q0:            unset,
	}
}

// receive lands one segment in the node's buffer (end-of-tick delivery).
func (n *nodeState) receive(id segment.ID) {
	n.buf.Insert(id)
	if id > n.maxSeen {
		n.maxSeen = id
	}
}

// becomeSource promotes the node to streaming source: inbound drops to
// zero, outbound is boosted, and any in-progress playback of the previous
// stream is abandoned (the speaker stops being a listener).
func (n *nodeState) becomeSource(outRate float64) {
	n.isSource = true
	n.profile = bandwidth.Profile{In: 0, Out: outRate}
	n.in.SetRate(0)
	n.out.SetRate(outRate)
	n.playActive = false
}

// undeliveredIn counts the ids in [lo, hi] missing from the buffer.
func (n *nodeState) undeliveredIn(lo, hi segment.ID) int {
	if hi < lo {
		return 0
	}
	missing := 0
	for id := lo; id <= hi; id++ {
		if !n.buf.Has(id) {
			missing++
		}
	}
	return missing
}

// appendMissing appends the ids in [lo, hi] absent from the buffer and not
// already in flight to dst.
func (n *nodeState) appendMissing(dst []segment.ID, lo, hi segment.ID) []segment.ID {
	for id := lo; id <= hi; id++ {
		if !n.buf.Has(id) && !n.isGranted(id) {
			dst = append(dst, id)
		}
	}
	return dst
}
