package sim

import (
	"gossipstream/internal/bandwidth"
	"gossipstream/internal/segment"
	"gossipstream/internal/sim/engine"
)

// The world phases: everything around the plan/serve rounds — staggered
// arrivals, segment generation, budget refills, delivery, playback and
// churn. Refill and playback shard per-node work across the pool (the
// work is node-local and RNG-free, so the determinism contract holds
// trivially); the rest is serial by nature (single source, global
// directory) and cheap.

// phaseArrivals activates initial nodes whose staggered start time has
// come (the assembly of the session during warm-up).
func (s *Sim) phaseArrivals() {
	if s.tick > s.cfg.JoinSpreadTicks {
		return
	}
	for _, n := range s.nodes {
		if !n.alive && n.joinTick == 0 && n.startTick == s.tick {
			n.alive = true
		}
	}
}

// phaseGenerate lets the current source emit p·τ fresh segments.
func (s *Sim) phaseGenerate() {
	cur := s.tl.Current()
	if !cur.Open() {
		return
	}
	src := s.nodes[cur.Source]
	if !src.alive {
		return
	}
	n := int(s.cfg.P*s.cfg.Tau + 1e-9)
	for i := 0; i < n; i++ {
		src.receive(s.nextGen)
		s.nextGen++
	}
}

// phaseRefill resets every alive node's per-period transfer budgets and
// per-link grant counters, and refreshes its alive-neighbor count (the
// denominator of the per-link rate). Sharded: all writes are node-local,
// neighbor reads are of the alive flag frozen by the churn phase.
func (s *Sim) phaseRefill() {
	n := len(s.nodes)
	shards := s.ensureShards(n)
	s.pool.Run(shards, func(_, shard int) {
		lo, hi := engine.ShardSpan(n, shard)
		for i := lo; i < hi; i++ {
			nd := s.nodes[i]
			if !nd.alive {
				continue
			}
			nd.in.Refill(s.cfg.Tau)
			nd.out.Refill(s.cfg.Tau)
			nbs := s.g.Neighbors(nd.id)
			nd.ensureLinkScratch(len(nbs))
			deg := 0
			for ni, v := range nbs {
				nd.linkGrants[ni] = 0 // per-period link grant counters
				if s.nodes[v].alive {
					deg++
				}
			}
			nd.aliveDeg = deg
		}
	})
}

// phaseDeliver lands this tick's granted transfers (store-and-forward: a
// segment received in period t becomes visible to neighbors in t+1).
// Sharded: the commit step buckets deliveries by recipient shard, and a
// node's buffer is touched only by the worker owning its shard.
func (s *Sim) phaseDeliver() {
	shards := s.ensureShards(len(s.nodes))
	if s.obsDelivered != nil {
		// The classic substrate delivers every landed grant losslessly.
		var n int64
		for si := 0; si < shards; si++ {
			n += int64(len(s.shards[si].landed))
		}
		s.obsDelivered.Add(n)
	}
	s.pool.Run(shards, func(_, shard int) {
		for _, d := range s.shards[shard].landed {
			n := s.nodes[d.to]
			n.receive(d.seg)
			n.clearGranted()
		}
	})
}

// phasePlayback advances every alive non-source node's playback state
// machine by one period and checks the cohort's prepare-S2 condition.
// Sharded: playback state is node-local and the timeline snapshot is
// read-only.
func (s *Sim) phasePlayback() {
	sessions := s.sessions
	perTick := int(s.cfg.P*s.cfg.Tau + 1e-9)
	n := len(s.nodes)
	shards := s.ensureShards(n)
	s.pool.Run(shards, func(_, shard int) {
		lo, hi := engine.ShardSpan(n, shard)
		for i := lo; i < hi; i++ {
			nd := s.nodes[i]
			if !nd.alive || nd.isSource {
				continue
			}
			// The playback state machine itself is the shared per-node
			// protocol core (peercore.go); the window accounting around it
			// — the finish-S1/start-S2 stamps and the continuity counters —
			// stays simulator-side, driven by the step report.
			st := nd.Advance(nd.buf, sessions, s.cfg.Q, s.cfg.Qs, perTick)
			measured := s.win.active && nd.inCohort
			if measured {
				nd.played += st.Played
				nd.stalled += st.Stalled
			}
			if measured && s.win.isSwitch {
				if st.Started == s.newSessionIdx && nd.startS2Tick == unset {
					nd.startS2Tick = s.tick
				}
				if st.Finished == s.newSessionIdx-1 && nd.finishS1Tick == unset {
					nd.finishS1Tick = s.tick
				}
			}
			if s.win.active && s.win.isSwitch && nd.inCohort && nd.prepareS2Tick == unset && nd.Known > s.newSessionIdx {
				if nd.undeliveredIn(s.s2Begin, s.s2Begin+segment.ID(s.cfg.Qs)-1) == 0 {
					nd.prepareS2Tick = s.tick
				}
			}
		}
	})
}

// phaseChurn removes LeaveFraction of the alive non-source nodes and adds
// JoinFraction fresh nodes, wired through the membership directory.
// Running at tick end, after playback: departures and joins take effect
// for the next period's refill and planning. A ChurnBurst event overrides
// the baseline fractions for its duration.
func (s *Sim) phaseChurn() {
	cc := s.cfg.Churn
	if s.burst != nil {
		if s.tick < s.burstUntil {
			cc = s.burst
		} else {
			s.burst = nil
		}
	}
	if cc == nil {
		return
	}
	alive := s.dir.AliveCount()
	leaves := int(cc.LeaveFraction * float64(alive))
	for i := 0; i < leaves; i++ {
		victim := s.dir.RandomAlive(s.oldSource, s.newSource)
		if victim < 0 {
			break
		}
		if s.nodes[victim].isSource || !s.nodes[victim].alive {
			continue
		}
		s.nodes[victim].alive = false
		s.dir.Leave(victim)
	}
	joins := int(cc.JoinFraction * float64(alive))
	for i := 0; i < joins; i++ {
		id, neighbors := s.dir.Join()
		prof := bandwidth.Profile{In: bandwidth.DrawRate(s.churnRNG), Out: bandwidth.DrawRate(s.churnRNG)}
		n := newNodeState(id, prof, s.cfg.BufferCap, s.tick)
		s.applyShift(n)
		// "A new joining node ... starts its media playback by following
		// its neighbors' current steps" (Section 5.4).
		anchor := segment.ID(0)
		for _, v := range neighbors {
			if lo := s.nodes[v].WindowLo(); lo > anchor {
				anchor = lo
			}
		}
		s.adoptPosition(n, anchor)
		s.nodes = append(s.nodes, n)
		s.incoming = append(s.incoming, nil)
	}
}
