package sim

import (
	"reflect"
	"testing"

	"gossipstream/internal/buffer"
	"gossipstream/internal/segment"
)

// The per-node protocol core is exercised end-to-end by every simulator
// test (nodeState embeds Playback); these unit tests pin the semantics
// the live runtime depends on directly.

func closedSession(src segment.SourceID, begin, end segment.ID) segment.Session {
	return segment.Session{Source: src, Begin: begin, End: end}
}

func TestPlaybackAdvanceStartPlayFinish(t *testing.T) {
	sessions := []segment.Session{
		closedSession(1, 0, 19),
		{Source: 2, Begin: 20, End: segment.None},
	}
	buf := buffer.New(100)
	pb := NewPlayback(0, 0, 1)

	// Below the Q-consecutive start threshold: nothing happens.
	for id := segment.ID(0); id < 5; id++ {
		buf.Insert(id)
	}
	st := pb.Advance(buf, sessions, 10, 5, 10)
	if st.Started != -1 || st.Played != 0 || pb.Active {
		t.Fatalf("started below threshold: %+v", st)
	}

	// Q=10 consecutive: starts and plays a full period.
	for id := segment.ID(5); id < 15; id++ {
		buf.Insert(id)
	}
	st = pb.Advance(buf, sessions, 10, 5, 10)
	if st.Started != 0 || st.Played != 10 || st.Stalled != 0 {
		t.Fatalf("start period: %+v", st)
	}
	if pb.Playhead != 10 || pb.WindowLo() != 10 {
		t.Fatalf("playhead %d windowLo %d", pb.Playhead, pb.WindowLo())
	}

	// A hole at 15 stalls the rest of the period.
	st = pb.Advance(buf, sessions, 10, 5, 10)
	if st.Played != 5 || st.Stalled != 5 || st.Finished != -1 {
		t.Fatalf("stall period: %+v", st)
	}

	// Filling to the session end finishes it and parks at the successor.
	for id := segment.ID(15); id < 20; id++ {
		buf.Insert(id)
	}
	st = pb.Advance(buf, sessions, 10, 5, 10)
	if st.Finished != 0 || pb.SessionIdx != 1 || pb.Anchor != 20 || pb.Active {
		t.Fatalf("finish period: %+v, pb %+v", st, pb)
	}

	// The successor session needs its first qs=5 segments to start.
	for id := segment.ID(20); id < 24; id++ {
		buf.Insert(id)
	}
	if st = pb.Advance(buf, sessions, 10, 5, 10); st.Started != -1 {
		t.Fatalf("successor started below qs: %+v", st)
	}
	buf.Insert(24)
	if st = pb.Advance(buf, sessions, 10, 5, 10); st.Started != 1 || st.Played != 5 {
		t.Fatalf("successor start: %+v", st)
	}
}

func TestPlaybackDiscoverAndNeedWindows(t *testing.T) {
	sessions := []segment.Session{
		closedSession(1, 0, 9),
		{Source: 2, Begin: 10, End: segment.None},
	}
	buf := buffer.New(50)
	buf.Insert(0)
	buf.Insert(2)
	pb := NewPlayback(0, 0, 1)

	// A high-water mark below the successor's begin reveals nothing.
	pb.Discover(sessions, 9)
	if pb.Known != 1 {
		t.Fatalf("known = %d before discovery", pb.Known)
	}
	needOld, needNew := pb.NeedWindows(buf, sessions, 9, 50, 4, nil, nil, nil)
	if want := []segment.ID{1, 3, 4, 5, 6, 7, 8, 9}; !reflect.DeepEqual(needOld, want) {
		t.Fatalf("needOld %v, want %v", needOld, want)
	}
	if len(needNew) != 0 {
		t.Fatalf("needNew %v before discovery", needNew)
	}

	// Seeing a successor segment reveals the session; its first qs=4
	// ids become the new-stream window, minus holdings and in-flight.
	pb.Discover(sessions, 12)
	if pb.Known != 2 {
		t.Fatalf("known = %d after discovery", pb.Known)
	}
	buf.Insert(10)
	needOld, needNew = pb.NeedWindows(buf, sessions, 12, 50, 4, []segment.ID{11}, needOld, needNew)
	if want := []segment.ID{1, 3, 4, 5, 6, 7, 8, 9}; !reflect.DeepEqual(needOld, want) {
		t.Fatalf("needOld %v, want %v (clipped at the session end)", needOld, want)
	}
	if want := []segment.ID{12, 13}; !reflect.DeepEqual(needNew, want) {
		t.Fatalf("needNew %v, want %v (10 held, 11 in flight)", needNew, want)
	}
}

func TestPreparedMatchesUndeliveredWindow(t *testing.T) {
	buf := buffer.New(50)
	for id := segment.ID(20); id < 24; id++ {
		buf.Insert(id)
	}
	if Prepared(buf, 20, 5) {
		t.Fatal("prepared with one segment missing")
	}
	buf.Insert(24)
	if !Prepared(buf, 20, 5) {
		t.Fatal("not prepared with the full startup window held")
	}
}
