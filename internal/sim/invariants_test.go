package sim

import (
	"strings"
	"testing"

	"gossipstream/internal/netmodel"
)

// invariantConfig builds the stress configuration the checker is
// exercised against: the full event alphabet over the sub-tick netmodel
// transport (latency storm, loss burst, partition, heal, demote), plus
// churn — every conservation bucket of the ledger is populated.
func invariantConfig(t *testing.T, quantize bool) Config {
	t.Helper()
	g := testTopology(t, 180, 33)
	cfg := quickConfig(g, Fast)
	cfg.TrackRatios = true
	cfg.Churn = &ChurnConfig{LeaveFraction: 0.02, JoinFraction: 0.02}
	cfg.Net = &netmodel.Config{PingMS: testPings(180), DefaultPingMS: 120, JitterMS: 400, Loss: 0.05, QuantizeTicks: quantize}
	cfg.Script = &Script{Events: []Event{
		SwitchAt(25, -1),
		LatencyShiftAt(35, 12),
		PartitionAt(45, 0.4),
		LossBurstAt(55, 15, 0.3),
		HealAt(75),
		LatencyShiftAt(80, 1),
		SwitchAt(95, -1),
		MeasureAt(110, 20),
		DemoteAt(120, -1),
		SwitchAt(135, -1),
	}, Duration: 170}
	return cfg
}

func runFor(t *testing.T, cfg Config) *Result {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCheckInvariantsClean runs the checker against healthy runs across
// the configuration space: no transport, sub-tick transport, quantized
// transport, and a lossless transport (where the zero-loss rules bite).
func TestCheckInvariantsClean(t *testing.T) {
	t.Run("no-net", func(t *testing.T) {
		g := testTopology(t, 120, 7)
		cfg := quickConfig(g, Fast)
		res := runFor(t, cfg)
		if res.Audit != nil {
			t.Fatal("transport ledger on a run without Config.Net")
		}
		if err := CheckInvariants(cfg, res); err != nil {
			t.Fatal(err)
		}
	})
	for _, quantize := range []bool{false, true} {
		name := "subtick"
		if quantize {
			name = "quantized"
		}
		t.Run(name, func(t *testing.T) {
			cfg := invariantConfig(t, quantize)
			res := runFor(t, cfg)
			if res.Audit == nil {
				t.Fatal("netmodel run produced no transport ledger")
			}
			if res.Audit.Injected == 0 || res.Audit.Delivered == 0 {
				t.Fatalf("ledger never saw traffic: %+v", res.Audit)
			}
			if res.Audit.Lost == 0 || res.Audit.Severed == 0 {
				t.Fatalf("stress run should populate every drop bucket: %+v", res.Audit)
			}
			if err := CheckInvariants(cfg, res); err != nil {
				t.Fatal(err)
			}
		})
	}
	t.Run("lossless", func(t *testing.T) {
		g := testTopology(t, 150, 9)
		cfg := quickConfig(g, Fast)
		cfg.Net = &netmodel.Config{PingMS: testPings(150), DefaultPingMS: 120, JitterMS: 200}
		cfg.Script = &Script{Events: []Event{
			SwitchAt(25, -1),
			SwitchAt(70, -1),
			MeasureAt(100, 20),
		}, Duration: 140}
		res := runFor(t, cfg)
		if res.Audit == nil || res.Audit.Delivered == 0 {
			t.Fatalf("lossless run saw no deliveries: %+v", res.Audit)
		}
		if res.Audit.Lost != 0 || res.Audit.Severed != 0 {
			t.Fatalf("drops on a lossless, unpartitioned run: %+v", res.Audit)
		}
		if err := CheckInvariants(cfg, res); err != nil {
			t.Fatal(err)
		}
	})
}

// TestCheckInvariantsCatches corrupts one field of a healthy Result per
// case and asserts the checker names the violation. Each corruption is
// undone afterwards, and the result must audit clean again — proving the
// failure came from the injected damage, not a leftover.
func TestCheckInvariantsCatches(t *testing.T) {
	cfg := invariantConfig(t, false)
	res := runFor(t, cfg)
	if err := CheckInvariants(cfg, res); err != nil {
		t.Fatal(err)
	}
	w0 := res.Windows[0]
	var savedDelay float64
	cases := []struct {
		name    string
		want    string
		corrupt func()
		restore func()
	}{
		{
			name:    "negative-counter",
			want:    "negative NetDelivered",
			corrupt: func() { w0.NetDelivered = -(w0.NetDelivered + 1) },
			restore: func() { w0.NetDelivered = -w0.NetDelivered - 1 },
		},
		{
			name:    "cohort-overflow",
			want:    "exceeds population",
			corrupt: func() { w0.Cohort += w0.Nodes + 1 },
			restore: func() { w0.Cohort -= w0.Nodes + 1 },
		},
		{
			name:    "broken-conservation",
			want:    "does not conserve",
			corrupt: func() { res.Audit.Delivered++ },
			restore: func() { res.Audit.Delivered-- },
		},
		{
			name:    "window-exceeds-ledger",
			want:    "run total",
			corrupt: func() { w0.NetDelivered += res.Audit.Delivered },
			restore: func() { w0.NetDelivered -= res.Audit.Delivered },
		},
		{
			name:    "delay-over-bound",
			want:    "above the model bound",
			corrupt: func() { savedDelay, w0.NetDelaySeconds = w0.NetDelaySeconds, 1e9 },
			restore: func() { w0.NetDelaySeconds = savedDelay },
		},
		{
			name:    "missing-ledger",
			want:    "without a transport ledger",
			corrupt: func() { res.Audit = nil },
			restore: func() {},
		},
	}
	audit := res.Audit
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.corrupt()
			err := CheckInvariants(cfg, res)
			if err == nil {
				t.Fatalf("checker passed corrupted result")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			res.Audit = audit
			tc.restore()
			if err := CheckInvariants(cfg, res); err != nil {
				t.Fatalf("restore left damage: %v", err)
			}
		})
	}

	// A lossless run must not report losses or re-requests: corrupt a
	// clean zero-loss result with a fake re-request count.
	t.Run("fake-rerequests-lossless", func(t *testing.T) {
		g := testTopology(t, 150, 9)
		cfg := quickConfig(g, Fast)
		cfg.Net = &netmodel.Config{PingMS: testPings(150), DefaultPingMS: 120}
		res := runFor(t, cfg)
		if err := CheckInvariants(cfg, res); err != nil {
			t.Fatal(err)
		}
		res.Windows[0].NetReRequests = 5
		err := CheckInvariants(cfg, res)
		if err == nil || !strings.Contains(err.Error(), "re-request") {
			t.Fatalf("fake re-requests on lossless run not caught: %v", err)
		}
	})
}
