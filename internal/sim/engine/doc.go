// Package engine is the execution layer of the simulator: a
// deterministic phase pipeline and a worker pool that shards per-node
// work. This comment is the normative statement of the determinism
// contract every caller relies on (docs/ARCHITECTURE.md restates it
// with context):
//
//  1. Work is decomposed into shards on a fixed grid (ShardSize nodes
//     per shard) that depends only on the population size — never on
//     the worker count. Node i always lands in shard i/ShardSize.
//  2. Any randomness inside a shard comes from a dedicated RNG stream
//     derived from (seed, phase, tick, round, shard) via SeedFor, so a
//     shard draws the same values no matter which worker executes it or
//     in which order shards complete.
//  3. Shard outputs are buffered per shard and reduced in ascending
//     shard order. The reduce may itself run sharded — each destination
//     shard gathering from every source shard's buffer, walking source
//     shards in ascending order — provided the outcome is
//     element-for-element identical to the serial in-order merge.
//
// Together these rules make a run a pure function of its configuration:
// the same seed produces a bit-identical result at any worker count,
// including the serial (one-worker) engine. Workers only decide how
// many shards execute concurrently.
package engine
