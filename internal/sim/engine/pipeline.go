package engine

import "time"

// Phase is one named stage of a tick: generate, refill, plan, serve,
// deliver, playback, churn, record. Run executes the stage over the whole
// population (internally sharded or serial — the pipeline does not care).
type Phase struct {
	Name string
	Run  func()
}

// Pipeline executes a fixed sequence of phases once per tick and
// accumulates wall-clock time per phase. The timing instrumentation is
// observational only — it never feeds back into simulation state, so it
// cannot perturb determinism.
type Pipeline struct {
	phases []Phase
	nanos  []int64
	ticks  int64
}

// NewPipeline assembles a pipeline from its phases, in execution order.
func NewPipeline(phases ...Phase) *Pipeline {
	return &Pipeline{phases: phases, nanos: make([]int64, len(phases))}
}

// Run executes every phase in order (one simulated tick).
func (p *Pipeline) Run() {
	for i := range p.phases {
		start := time.Now()
		p.phases[i].Run()
		p.nanos[i] += int64(time.Since(start))
	}
	p.ticks++
}

// PhaseTiming reports the accumulated cost of one phase.
type PhaseTiming struct {
	Name  string
	Total time.Duration
}

// Timings returns the per-phase accumulated wall-clock costs, in phase
// order, over the Ticks() executed so far.
func (p *Pipeline) Timings() []PhaseTiming {
	out := make([]PhaseTiming, len(p.phases))
	for i, ph := range p.phases {
		out[i] = PhaseTiming{Name: ph.Name, Total: time.Duration(p.nanos[i])}
	}
	return out
}

// Ticks returns how many times the pipeline has run.
func (p *Pipeline) Ticks() int64 { return p.ticks }
