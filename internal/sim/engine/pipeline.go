package engine

import (
	"fmt"
	"runtime"
	"time"

	"gossipstream/internal/obs"
)

// Phase is one named stage of a tick: generate, refill, plan, serve,
// deliver, playback, churn, record. Run executes the stage over the whole
// population (internally sharded or serial — the pipeline does not care).
type Phase struct {
	Name string
	Run  func()
}

// Pipeline executes a fixed sequence of phases once per tick and
// accumulates wall-clock time per phase — and, when memory capture is
// enabled, heap bytes and allocation counts per phase. The
// instrumentation is observational only — it never feeds back into
// simulation state, so it cannot perturb determinism.
type Pipeline struct {
	phases []Phase
	nanos  []int64
	bytes  []uint64
	allocs []uint64
	ticks  int64
	mem    bool

	// Observability sinks (nil when disabled — see Observe). The phase
	// counters are registered once; the run loop only touches atomics.
	obsPhase []*obs.Counter
	obsTick  *obs.Histogram
	obsTicks *obs.Counter
	chrome   *obs.ChromeTrace
	tid      int
}

// NewPipeline assembles a pipeline from its phases, in execution order.
func NewPipeline(phases ...Phase) *Pipeline {
	return &Pipeline{phases: phases, nanos: make([]int64, len(phases))}
}

// CaptureMem toggles per-phase allocation capture. Each phase boundary
// then costs a runtime.ReadMemStats (a stop-the-world operation), so the
// capture is off by default and meant for diagnostic runs — enabling it
// perturbs wall-clock timings a little, never results.
func (p *Pipeline) CaptureMem(on bool) {
	p.mem = on
	if on && p.bytes == nil {
		p.bytes = make([]uint64, len(p.phases))
		p.allocs = make([]uint64, len(p.phases))
	}
}

// MemCaptured reports whether allocation capture is (or was) enabled.
func (p *Pipeline) MemCaptured() bool { return p.bytes != nil }

// Observe attaches metric and span sinks. Each phase gets a
// gossip_phase_ns_total{phase="..."} counter; with tickLevel set the
// pipeline also maintains gossip_tick_ns / gossip_ticks_total (the
// tick-level pipeline owns those; sub-pipelines must not). chrome spans
// land on row tid. Call once at setup, before Run; any argument may be
// nil.
func (p *Pipeline) Observe(reg *obs.Registry, chrome *obs.ChromeTrace, tid int, tickLevel bool) {
	if reg != nil {
		p.obsPhase = make([]*obs.Counter, len(p.phases))
		for i, ph := range p.phases {
			p.obsPhase[i] = reg.Counter(
				fmt.Sprintf(`gossip_phase_ns_total{phase=%q}`, ph.Name),
				"cumulative wall-clock nanoseconds spent in each pipeline phase")
		}
		if tickLevel {
			p.obsTick = reg.Histogram("gossip_tick_ns", "wall-clock duration of one tick of the phase pipeline")
			p.obsTicks = reg.Counter("gossip_ticks_total", "scheduling periods executed")
		}
	}
	p.chrome = chrome
	p.tid = tid
}

// Run executes every phase in order (one simulated tick).
func (p *Pipeline) Run() {
	if p.mem {
		p.runWithMem()
		return
	}
	tickStart := time.Now()
	for i := range p.phases {
		start := time.Now()
		p.phases[i].Run()
		d := time.Since(start)
		p.nanos[i] += int64(d)
		if p.obsPhase != nil {
			p.obsPhase[i].Add(int64(d))
		}
		p.chrome.Span(p.phases[i].Name, p.tid, p.ticks, start, d)
	}
	p.ticks++
	if p.obsTick != nil {
		p.obsTick.Observe(int64(time.Since(tickStart)))
		p.obsTicks.Inc()
	}
}

// runWithMem is the capture variant of Run: cumulative-counter deltas
// (TotalAlloc, Mallocs) bracket each phase, so per-phase numbers add up
// exactly to the tick's total allocation.
func (p *Pipeline) runWithMem() {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	tickStart := time.Now()
	for i := range p.phases {
		start := time.Now()
		p.phases[i].Run()
		d := time.Since(start)
		p.nanos[i] += int64(d)
		if p.obsPhase != nil {
			p.obsPhase[i].Add(int64(d))
		}
		p.chrome.Span(p.phases[i].Name, p.tid, p.ticks, start, d)
		runtime.ReadMemStats(&after)
		p.bytes[i] += after.TotalAlloc - before.TotalAlloc
		p.allocs[i] += after.Mallocs - before.Mallocs
		before = after
	}
	p.ticks++
	if p.obsTick != nil {
		p.obsTick.Observe(int64(time.Since(tickStart)))
		p.obsTicks.Inc()
	}
}

// PhaseTiming reports the accumulated cost of one phase. Bytes and
// Allocs are zero unless memory capture was enabled on the pipeline.
type PhaseTiming struct {
	Name  string
	Total time.Duration
	// Bytes and Allocs are the phase's cumulative heap allocation over
	// every captured tick (runtime.MemStats TotalAlloc/Mallocs deltas).
	Bytes  uint64
	Allocs uint64
}

// Timings returns the per-phase accumulated wall-clock costs, in phase
// order, over the Ticks() executed so far.
func (p *Pipeline) Timings() []PhaseTiming {
	out := make([]PhaseTiming, len(p.phases))
	for i, ph := range p.phases {
		out[i] = PhaseTiming{Name: ph.Name, Total: time.Duration(p.nanos[i])}
		if p.bytes != nil {
			out[i].Bytes = p.bytes[i]
			out[i].Allocs = p.allocs[i]
		}
	}
	return out
}

// Ticks returns how many times the pipeline has run.
func (p *Pipeline) Ticks() int64 { return p.ticks }
