package engine

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestShardGridCoversPopulation(t *testing.T) {
	for _, n := range []int{0, 1, ShardSize - 1, ShardSize, ShardSize + 1, 10_000} {
		shards := NumShards(n)
		covered := 0
		for s := 0; s < shards; s++ {
			lo, hi := ShardSpan(n, s)
			if lo != s*ShardSize {
				t.Fatalf("n=%d shard %d lo=%d", n, s, lo)
			}
			if hi < lo || hi > n {
				t.Fatalf("n=%d shard %d span [%d,%d)", n, s, lo, hi)
			}
			for i := lo; i < hi; i++ {
				if ShardOf(i) != s {
					t.Fatalf("item %d not owned by shard %d", i, s)
				}
			}
			covered += hi - lo
		}
		if covered != n {
			t.Fatalf("n=%d covered %d", n, covered)
		}
	}
}

func TestPoolRunsEveryShardExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const shards = 100
		var counts [shards]atomic.Int64
		NewPool(workers).Run(shards, func(worker, shard int) {
			if worker < 0 || worker >= workers {
				t.Errorf("worker id %d out of range", worker)
			}
			counts[shard].Add(1)
		})
		for s := range counts {
			if got := counts[s].Load(); got != 1 {
				t.Fatalf("workers=%d shard %d ran %d times", workers, s, got)
			}
		}
	}
}

func TestPoolZeroShardsNoop(t *testing.T) {
	ran := false
	NewPool(4).Run(0, func(int, int) { ran = true })
	if ran {
		t.Fatal("fn ran with zero shards")
	}
}

func TestPoolPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic swallowed")
		}
	}()
	NewPool(4).Run(16, func(_, shard int) {
		if shard == 7 {
			panic("boom")
		}
	})
}

// TestSeedForIndependence is the heart of the determinism contract: the
// derived stream for a cell never varies, and distinct cells get distinct
// streams.
func TestSeedForIndependence(t *testing.T) {
	if SeedFor(1, 2, 3, 4, 5) != SeedFor(1, 2, 3, 4, 5) {
		t.Fatal("SeedFor not a pure function")
	}
	seen := map[int64]bool{}
	for phase := 0; phase < 4; phase++ {
		for tick := 0; tick < 8; tick++ {
			for round := 0; round < 3; round++ {
				for shard := 0; shard < 8; shard++ {
					s := SeedFor(42, phase, tick, round, shard)
					if seen[s] {
						t.Fatalf("seed collision at (%d,%d,%d,%d)", phase, tick, round, shard)
					}
					seen[s] = true
				}
			}
		}
	}
}

// TestShardedDrawsWorkerInvariant simulates the usage pattern: every shard
// draws from its own derived stream, results merge in shard order, and the
// merged sequence must not depend on the worker count.
func TestShardedDrawsWorkerInvariant(t *testing.T) {
	const shards = 37
	draw := func(workers int) []int64 {
		out := make([][]int64, shards)
		NewPool(workers).Run(shards, func(_, shard int) {
			rng := rand.New(rand.NewSource(SeedFor(7, 1, 0, 0, shard)))
			vals := make([]int64, 16)
			for i := range vals {
				vals[i] = rng.Int63()
			}
			out[shard] = vals
		})
		var merged []int64
		for _, vals := range out {
			merged = append(merged, vals...)
		}
		return merged
	}
	base := draw(1)
	for _, workers := range []int{2, 3, 8} {
		got := draw(workers)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d diverged at %d", workers, i)
			}
		}
	}
}

func TestPipelineOrderAndTimings(t *testing.T) {
	var order []string
	p := NewPipeline(
		Phase{Name: "a", Run: func() { order = append(order, "a") }},
		Phase{Name: "b", Run: func() { order = append(order, "b") }},
	)
	p.Run()
	p.Run()
	if len(order) != 4 || order[0] != "a" || order[1] != "b" || order[2] != "a" {
		t.Fatalf("phase order %v", order)
	}
	if p.Ticks() != 2 {
		t.Fatalf("ticks %d", p.Ticks())
	}
	timings := p.Timings()
	if len(timings) != 2 || timings[0].Name != "a" || timings[1].Name != "b" {
		t.Fatalf("timings %v", timings)
	}
}
