package engine

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ShardSize is the number of consecutive node indices per shard. It is a
// constant of the determinism contract: changing it reshuffles every
// per-shard RNG stream and therefore changes simulation results (like
// changing a seed would), so it must never depend on the worker count or
// the hardware.
const ShardSize = 256

// NumShards returns the shard count covering a population of n items on
// the fixed grid (0 for an empty population).
func NumShards(n int) int {
	return (n + ShardSize - 1) / ShardSize
}

// ShardSpan returns the half-open index range [lo, hi) of shard s over a
// population of n items.
func ShardSpan(n, s int) (lo, hi int) {
	lo = s * ShardSize
	hi = lo + ShardSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ShardOf returns the shard index owning item i.
func ShardOf(i int) int { return i / ShardSize }

// Pool executes shard-indexed work across a bounded set of goroutines.
// A Pool with one worker runs everything inline on the caller's
// goroutine — that is the serial engine. Pools are reusable and safe for
// sequential reuse; a single Run call distributes shards to workers
// dynamically (work stealing), which is safe because the determinism
// contract makes shard results independent of execution order.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given concurrency. workers <= 0 selects
// GOMAXPROCS; workers == 1 is the serial engine.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's concurrency (>= 1).
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(worker, shard) for every shard in [0, shards). worker
// identifies the executing slot in [0, Workers()) so callers can use
// per-worker scratch without locks. Run returns when every shard has
// completed. fn must not panic across shards it does not own; a panic in
// any shard propagates to the caller.
func (p *Pool) Run(shards int, fn func(worker, shard int)) {
	if shards <= 0 {
		return
	}
	workers := p.workers
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for s := 0; s < shards; s++ {
			fn(0, s)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	panics := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// The panic crosses a goroutine boundary; capture the
					// worker's stack here or it is lost to the rethrow.
					panics <- fmt.Sprintf("%v\n%s", r, debug.Stack())
				}
			}()
			for {
				s := int(next.Add(1)) - 1
				if s >= shards {
					return
				}
				fn(worker, s)
			}
		}(w)
	}
	wg.Wait()
	select {
	case r := <-panics:
		panic(fmt.Sprintf("engine: worker panic: %s", r))
	default:
	}
}

// SeedFor derives the RNG seed of one (phase, tick, round, shard) cell
// from the run seed. Streams for distinct cells are independent for all
// practical purposes (splitmix64 finalization between injections), and
// the derivation never involves the worker count, upholding the
// determinism contract.
func SeedFor(seed int64, phase, tick, round, shard int) int64 {
	h := splitmix64(uint64(seed) ^ 0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(phase))
	h = splitmix64(h ^ uint64(tick))
	h = splitmix64(h ^ uint64(round))
	h = splitmix64(h ^ uint64(shard))
	return int64(h)
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed 64-bit permutation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
