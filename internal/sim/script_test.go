package sim

import (
	"testing"

	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
)

// TestScriptImplicitEquivalence is the scenario engine's anchor: a script
// spelling out the implicit paper run (one planned switch at WarmupTicks,
// measured for HorizonTicks) must reproduce the classic single-switch
// path bit for bit.
func TestScriptImplicitEquivalence(t *testing.T) {
	run := func(script *Script) *Result {
		g := testTopology(t, 160, 21)
		cfg := quickConfig(g, Fast)
		cfg.TrackRatios = true
		cfg.Script = script
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	legacy := run(nil)
	scripted := run(&Script{
		Events:   []Event{SwitchAt(30, -1)}, // quickConfig: WarmupTicks=30
		Duration: 30 + 200,                  // HorizonTicks=200
	})
	resultsEqual(t, "implicit-vs-explicit", legacy, scripted)
	if len(legacy.Windows) != 1 || len(scripted.Windows) != 1 {
		t.Fatalf("window counts: legacy=%d scripted=%d, want 1",
			len(legacy.Windows), len(scripted.Windows))
	}
}

// TestScriptMultiSwitchWindows checks the serial-handoff contract: one
// switch-metrics block per SwitchSource event, chained sources, and the
// flat Result mirroring the first switch window.
func TestScriptMultiSwitchWindows(t *testing.T) {
	g := testTopology(t, 180, 22)
	cfg := quickConfig(g, Fast)
	cfg.Script = &Script{Events: []Event{
		SwitchAt(30, 20),
		SwitchAt(90, 40),
		SwitchAt(150, -1),
	}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 3 {
		t.Fatalf("windows = %d, want 3 (one per SwitchSource)", len(res.Windows))
	}
	for i, w := range res.Windows {
		if w.Kind != "switch" {
			t.Errorf("window %d kind = %q", i, w.Kind)
		}
		if w.Window != i {
			t.Errorf("window %d indexed %d", i, w.Window)
		}
		if w.Cohort == 0 {
			t.Errorf("window %d has empty cohort", i)
		}
		if len(w.PrepareS2Times) == 0 {
			t.Errorf("window %d: nobody prepared", i)
		}
		if i > 0 && w.OldSource != res.Windows[i-1].NewSource {
			t.Errorf("window %d old source %d != previous new source %d",
				i, w.OldSource, res.Windows[i-1].NewSource)
		}
	}
	if res.Windows[0].NewSource != 20 || res.Windows[1].NewSource != 40 {
		t.Errorf("pinned targets not honored: %d, %d",
			res.Windows[0].NewSource, res.Windows[1].NewSource)
	}
	// The flat metrics mirror the first switch window.
	if res.Cohort != res.Windows[0].Cohort || res.AvgPrepareS2() != res.Windows[0].AvgPrepareS2() {
		t.Error("flat Result does not mirror the first switch window")
	}
	// Each handoff ends the previous speaker's tenure: three sources were
	// promoted, and every promoted node is marked a source.
	for _, w := range res.Windows {
		if !s.nodes[w.NewSource].isSource {
			t.Errorf("promoted node %d not a source", w.NewSource)
		}
	}
}

// TestScriptSourceCrash checks the failure semantics: the old source
// leaves the overlay, and the session truncates at the last segment id
// any surviving node holds — nothing beyond it survives anywhere alive.
func TestScriptSourceCrash(t *testing.T) {
	g := testTopology(t, 160, 23)
	cfg := quickConfig(g, Fast)
	cfg.Script = &Script{Events: []Event{CrashAt(30, -1)}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 1 || !res.Windows[0].Failure {
		t.Fatalf("crash window missing: %+v", res.Windows)
	}
	w := res.Windows[0]
	if s.nodes[w.OldSource].alive || s.dir.IsAlive(w.OldSource) {
		t.Error("crashed source still alive")
	}
	sessions := s.tl.Sessions()
	if len(sessions) != 2 {
		t.Fatalf("sessions = %d, want 2", len(sessions))
	}
	s1 := sessions[0]
	// Truncation: no surviving non-source node holds a segment past the
	// closed session end that belongs to S1's id range as generated.
	for _, n := range s.nodes {
		if n.id == w.OldSource || n.isSource {
			continue
		}
		if n.maxSeen > s1.End && n.maxSeen < sessions[1].Begin {
			t.Fatalf("node %d holds segment %d beyond truncated end %d", n.id, n.maxSeen, s1.End)
		}
	}
	// The mesh recovers: the new session is prepared by (nearly) everyone.
	if len(w.PrepareS2Times) == 0 {
		t.Error("nobody prepared the new stream after the crash")
	}
	// The crashed node's former neighbors were re-linked (membership
	// repair): the alive mesh stays one component (the dead node itself
	// is rightly isolated — its edges were cleared).
	for _, comp := range s.g.Components() {
		holdsAlive := false
		for _, v := range comp {
			if s.dir.IsAlive(v) {
				holdsAlive = true
				break
			}
		}
		if holdsAlive && len(comp) < s.dir.AliveCount() {
			t.Errorf("alive mesh fragmented: component of %d nodes vs %d alive", len(comp), s.dir.AliveCount())
		}
	}
}

// TestScriptFlashCrowd checks batch arrivals: population grows by Count
// and the joiners anchor at the current session's beginning (the catch-up
// backlog), bounded by Backlog when set.
func TestScriptFlashCrowd(t *testing.T) {
	g := testTopology(t, 120, 24)
	cfg := quickConfig(g, Fast)
	cfg.JoinSpreadTicks = -1 // simultaneous start: population is exactly N
	cfg.Script = &Script{Events: []Event{
		FlashCrowdAt(20, 30, 0),
		FlashCrowdAt(25, 10, 50),
		SwitchAt(60, -1),
	}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Step manually past both crowds: anchors must be checked at join
	// time, before playback advances them.
	for s.tick = 0; s.tick < 30; s.tick++ {
		s.step()
	}
	if got := len(s.nodes); got != 120+40 {
		t.Fatalf("population = %d, want 160", got)
	}
	for _, n := range s.nodes[120:150] {
		if n.Anchor != 0 {
			t.Errorf("full-catch-up joiner %d anchored at %d, want 0", n.id, n.Anchor)
		}
		if n.joinTick != 20 {
			t.Errorf("joiner %d joinTick = %d", n.id, n.joinTick)
		}
	}
	// Backlog-bounded joiners anchor at most 50 segments behind the head
	// at their join tick (head = 10 segments/tick × 25 ticks).
	for _, n := range s.nodes[150:] {
		if n.Anchor < segment.ID(10*25-50) {
			t.Errorf("bounded joiner %d anchored at %d, backlog > 50", n.id, n.Anchor)
		}
	}
	// Continue through the switch: joiners present before it are part of
	// its cohort.
	for ; s.tick < 65; s.tick++ {
		s.step()
	}
	if got := s.res.Windows; len(got) > 0 {
		t.Fatalf("window closed prematurely: %+v", got)
	}
	// Everyone but the old and the newly promoted source is in the cohort.
	if s.win.metrics.Cohort != 120+40-2 {
		t.Errorf("cohort %d does not include the crowd (want %d)", s.win.metrics.Cohort, 120+40-2)
	}
}

// TestScriptBandwidthShift checks rate rescaling: profiles follow the
// factor relative to the node's base, and factor 1 restores the baseline.
func TestScriptBandwidthShift(t *testing.T) {
	g := testTopology(t, 100, 25)
	cfg := quickConfig(g, Fast)
	cfg.Script = &Script{
		Events:   []Event{BandwidthShiftAt(10, 0.5), BandwidthShiftAt(20, 1.0)},
		Duration: 40,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s.tick = 0; s.tick < 15; s.tick++ {
		s.step()
	}
	for _, n := range s.nodes {
		if n.isSource {
			continue
		}
		if n.profile.In != n.base.In*0.5 || n.in.Rate() != n.base.In*0.5 {
			t.Fatalf("node %d not shifted: profile %v, base %v", n.id, n.profile, n.base)
		}
	}
	for ; s.tick < 25; s.tick++ {
		s.step()
	}
	for _, n := range s.nodes {
		if n.isSource {
			continue
		}
		if n.profile != n.base {
			t.Fatalf("node %d not restored: profile %v, base %v", n.id, n.profile, n.base)
		}
	}
}

// TestScriptChurnBurstAndMeasure checks the burst override window and the
// plain measurement window: churn happens only during the burst (no
// baseline churn configured), and the measure window records continuity
// without switch semantics.
func TestScriptChurnBurstAndMeasure(t *testing.T) {
	g := testTopology(t, 150, 26)
	cfg := quickConfig(g, Fast)
	cfg.JoinSpreadTicks = -1
	cfg.Script = &Script{
		Events: []Event{
			MeasureAt(15, 30),
			ChurnBurstAt(20, 10, 0.08, 0.04), // asymmetric: the mesh shrinks during the storm
		},
		Duration: 60,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.nodes) <= 150 {
		t.Error("burst joins did not grow the node slots")
	}
	if s.dir.AliveCount() == 150 {
		t.Error("burst did not churn the population")
	}
	if len(res.Windows) != 1 {
		t.Fatalf("windows = %d, want 1", len(res.Windows))
	}
	w := res.Windows[0]
	if w.Kind != "measure" || w.MeasuredTicks != 30 || !w.HitHorizon {
		t.Errorf("measure window malformed: %+v", w)
	}
	if w.PlayedSegments == 0 {
		t.Error("measure window recorded no playback")
	}
	if len(w.PrepareS2Times) != 0 || len(w.FinishS1Times) != 0 {
		t.Error("measure window carries switch metrics")
	}
	// Churn stops after the burst: the alive count is stable afterwards.
	after := s.dir.AliveCount()
	for i := 0; i < 5; i++ {
		s.tick = 60 + i
		s.step()
	}
	if s.dir.AliveCount() != after {
		t.Error("churn continued after the burst window")
	}
}

// TestScriptInterruptedWindow checks that a handoff firing before the
// previous cohort completes closes that window as Interrupted.
func TestScriptInterruptedWindow(t *testing.T) {
	g := testTopology(t, 150, 27)
	cfg := quickConfig(g, Fast)
	cfg.Script = &Script{Events: []Event{
		SwitchAt(30, -1),
		SwitchAt(33, -1), // long before anyone can gather Qs segments
	}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(res.Windows))
	}
	w0 := res.Windows[0]
	if !w0.Interrupted || w0.MeasuredTicks != 3 {
		t.Errorf("first window not interrupted at 3 ticks: %+v", w0)
	}
}

// TestScriptSourceExhaustion: a script demanding more random switches
// than there are never-source nodes must surface as a Run error, not a
// panic (scenario files are user input).
func TestScriptSourceExhaustion(t *testing.T) {
	g := testTopology(t, 6, 29)
	cfg := quickConfig(g, Fast)
	cfg.JoinSpreadTicks = -1
	events := make([]Event, 8) // 8 switches on a 6-node mesh
	for i := range events {
		events[i] = SwitchAt(5+2*i, -1)
	}
	cfg.Script = &Script{Events: events}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("source exhaustion did not surface as a Run error")
	}
}

// TestScriptExplicitDuration: a user-set Duration is honored exactly —
// an event-free script runs its full length, and a window cut short by
// the cap reports Interrupted, not HitHorizon.
func TestScriptExplicitDuration(t *testing.T) {
	g := testTopology(t, 80, 30)
	cfg := quickConfig(g, Fast)
	cfg.Script = &Script{Duration: 50} // no events at all
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if s.tick != 50 {
		t.Errorf("event-free run stopped at tick %d, want the explicit 50", s.tick)
	}
	if len(res.Windows) != 0 {
		t.Errorf("event-free run grew %d windows", len(res.Windows))
	}

	// A window cut short by the cap: 5 ticks after the switch, nodes that
	// arrived at spread tick 15 cannot have played S1 to its end (300
	// segments at p=10), so the cohort cannot be complete — only the
	// duration cap can close this window.
	g2 := testTopology(t, 80, 30)
	cfg2 := quickConfig(g2, Fast)
	cfg2.Script = &Script{Events: []Event{SwitchAt(30, -1)}, Duration: 35}
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	w := res2.Windows[0]
	if !w.Interrupted || w.HitHorizon {
		t.Errorf("duration-capped window flags wrong (want Interrupted, not HitHorizon): %+v", w)
	}
	if w.MeasuredTicks != 5 {
		t.Errorf("capped window measured %d ticks, want 5", w.MeasuredTicks)
	}
}

// TestPinNewSourceZero is the Config sentinel regression: node 0 must be
// pinnable as the new source (the old Defaulted rule made NewSource=0
// unpinnable whenever FirstSource was 0).
func TestPinNewSourceZero(t *testing.T) {
	if got := (Config{NewSource: 0}).Defaulted().NewSource; got != -1 {
		t.Errorf("unset NewSource defaulted to %d, want -1", got)
	}
	if got := (Config{NewSource: 0, PinNewSource: true}).Defaulted().NewSource; got != 0 {
		t.Errorf("pinned NewSource=0 defaulted to %d, want 0", got)
	}
	if got := (Config{NewSource: 7}).Defaulted().NewSource; got != 7 {
		t.Errorf("NewSource=7 defaulted to %d, want 7", got)
	}
	g := testTopology(t, 100, 28)
	cfg := quickConfig(g, Fast)
	cfg.FirstSource = 3
	cfg.NewSource = 0
	cfg.PinNewSource = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.newSource != overlay.NodeID(0) {
		t.Errorf("new source = %d, want pinned node 0", s.newSource)
	}
	if !s.nodes[0].isSource {
		t.Error("node 0 not promoted")
	}
}
