package sim

import (
	"fmt"

	"gossipstream/internal/bandwidth"
	"gossipstream/internal/core"
	"gossipstream/internal/netmodel"
	"gossipstream/internal/obs"
	"gossipstream/internal/overlay"
)

// AlgorithmFactory builds a fresh scheduler instance for a run. Factories
// rather than instances are configured because schedulers carry reusable
// scratch state and runs may execute concurrently.
type AlgorithmFactory func() core.Algorithm

// Fast returns the paper's fast switch algorithm.
func Fast() core.Algorithm { return &core.FastSwitch{} }

// Normal returns the baseline normal switch algorithm.
func Normal() core.Algorithm { return &core.NormalSwitch{} }

// ChurnConfig enables the dynamic environment of Section 5.4: per
// scheduling period, LeaveFraction of the alive nodes depart and the same
// number of fresh nodes join, wiring themselves through the membership
// protocol and adopting their neighbors' playback position.
type ChurnConfig struct {
	// LeaveFraction of alive non-source nodes leaving per tick (paper: 0.05).
	LeaveFraction float64
	// JoinFraction of alive nodes joining per tick (paper: 0.05).
	JoinFraction float64
}

// Config fully describes one simulation run. Zero fields default to the
// paper's Section 5.1 settings via Defaulted.
type Config struct {
	// Graph is the overlay topology; it is mutated by churn, so callers
	// that reuse topologies should pass a Clone. Required.
	Graph *overlay.Graph
	// Seed drives every random decision of the run.
	Seed int64

	Tau       float64 // scheduling period τ, seconds (default 1.0)
	P         float64 // playback rate, segments/second (default 10)
	Q         int     // S1 consecutive-segment start threshold (default 10)
	Qs        int     // segments of the new source needed to start (default 50)
	BufferCap int     // buffer capacity B in segments (default 600)

	// SourceOutFactor scales the source's outbound rate to
	// SourceOutFactor·p ("much larger outbound rate"; default 6).
	SourceOutFactor float64

	// ServeRounds is the number of request/serve exchanges per scheduling
	// period (default 3). The period is one second while a pull round-trip
	// is tens of milliseconds, so nodes whose first-choice supplier ran out
	// of capacity retry elsewhere within the same period.
	ServeRounds int

	// LinkShare divides a node's outbound rate across its links: the rate
	// R(j) a supplier offers each neighbor is out_j / LinkShare. The
	// default 1 is the paper's semantics — Figure 4 annotates each
	// neighbor with its full outbound rate o_j, and Algorithm 1's τ(j)
	// queues only the requester's own transfers at j. Setting LinkShare=M
	// models a node provisioning its outbound equally across its M
	// connections (used by the substrate-ablation benchmarks).
	LinkShare int

	// DisablePrefetch turns off the substrate's leftover-budget random
	// prefetch. The paper's switch algorithms govern the *prioritized*
	// share of inbound; like every data-driven mesh system (CoolStreaming
	// et al.), the substrate spends any leftover inbound on randomly
	// chosen missing segments so neighborhood holdings stay diverse and
	// every link stays useful. Disabling it degenerates the mesh into an
	// in-order wave bounded by the per-link rate — the substrate-ablation
	// benchmark quantifies exactly that collapse.
	DisablePrefetch bool

	// SharedOutbound switches the bandwidth substrate from the paper's
	// per-link model to a contention model.
	//
	// The paper's Algorithm 1 treats R(j) as the rate supplier j offers
	// *to the requesting node* — queueing time τ(j) accumulates only the
	// requester's own transfers, with no term for competing neighbors — so
	// the faithful default (false) caps each supplier→requester link at
	// R(j)·τ segments per period and lets a supplier serve all links at
	// once. With SharedOutbound=true, R(j)·τ is instead a per-period
	// aggregate budget shared by all of j's links (modern swarm-style
	// contention; used by the substrate-ablation benchmarks).
	SharedOutbound bool

	// Profiles optionally pins per-node bandwidth; drawn from the paper's
	// distribution when nil. Must match Graph.N() if set.
	Profiles []bandwidth.Profile

	// NewAlgorithm builds the per-run scheduler (default: the fast switch
	// algorithm).
	NewAlgorithm AlgorithmFactory

	// WarmupTicks run before the measured switch so the system reaches its
	// stable phase (default 40).
	WarmupTicks int

	// JoinSpreadTicks staggers node arrivals uniformly over the first part
	// of the warm-up (default WarmupTicks/2; set negative for simultaneous
	// start). Members of a conference or lecture session assemble over
	// time but play the stream from its beginning, so a node arriving at
	// time t carries a catch-up backlog of p·t segments — the undelivered
	// backlog Q1 that the source switch problem is about. Nodes with
	// little inbound headroom (I close to p) still carry part of it when
	// the switch happens.
	JoinSpreadTicks int
	// HorizonTicks bound the post-switch measurement window (default 150).
	HorizonTicks int

	// FirstSource is the initial streaming source S1. A negative value
	// auto-picks the lowest-id node whose degree equals the topology's
	// minimum (a source "holding M connected neighbors", like every other
	// node). Default: node 0.
	FirstSource overlay.NodeID
	// NewSource, when positive (or zero with PinNewSource set), pins the
	// node promoted to S2 at the implicit single switch; otherwise a
	// random alive non-source node is chosen. Ignored when Script is set
	// (scenario events carry their own targets). Because the zero value
	// must mean "unset", pinning node 0 requires PinNewSource.
	NewSource overlay.NodeID
	// PinNewSource disambiguates NewSource's zero value: when true,
	// NewSource=0 pins node 0 instead of selecting a random new source.
	PinNewSource bool

	// Script, when set, replaces the implicit single-switch run with a
	// scenario event timeline: tick-scheduled source switches (planned or
	// crash), churn bursts, flash crowds, bandwidth shifts and extra
	// measurement windows, each switch reporting its own metrics block in
	// Result.Windows. When nil, the run executes the classic paper shape:
	// WarmupTicks of warm-up, one planned switch (to NewSource), measured
	// for HorizonTicks. See Script and the internal/scenario package.
	Script *Script

	// Churn enables the dynamic environment; nil means static.
	Churn *ChurnConfig

	// Net enables the message-level transport model: granted segments
	// become in-flight messages with a continuous sub-tick arrival
	// timestamp derived from trace ping times (plus seeded jitter), a
	// per-message loss probability, and partition semantics, drained in
	// timestamp order by the pipeline's transit phase
	// (Net.QuantizeTicks restores the tick-floored behavior bit for
	// bit). nil keeps the classic substrate — every grant delivered
	// instantly and losslessly at the end of its tick, bit-identical to
	// the pre-netmodel engine. See internal/netmodel.
	Net *netmodel.Config

	// TrackRatios records the per-tick undelivered/delivered ratio series
	// (Figures 5 and 9). Costs one window scan per node per tick.
	TrackRatios bool

	// Obs attaches the run's observability sinks (metrics registry, JSONL
	// trace, Chrome span exporter — see internal/obs). Observational
	// only: sinks read run state and never feed anything back, so an
	// instrumented run is bit-identical to a bare one (pinned by
	// TestTracedRunBitIdentical). nil disables everything at the cost of
	// one nil check per update.
	Obs *obs.Obs

	// Workers sets the engine concurrency for the sharded phases (plan,
	// serve, refill, playback). 0 or 1 selects the serial engine;
	// negative selects GOMAXPROCS. The worker count never affects
	// results: per-shard RNG streams and shard-ordered merges make a run
	// a pure function of the seed at any concurrency (see
	// internal/sim/engine).
	Workers int
}

// Defaulted returns a copy with unset fields replaced by the paper's
// defaults.
func (c Config) Defaulted() Config {
	if c.Tau <= 0 {
		c.Tau = 1.0
	}
	if c.P <= 0 {
		c.P = bandwidth.PlayRate
	}
	if c.Q <= 0 {
		c.Q = 10
	}
	if c.Qs <= 0 {
		c.Qs = 50
	}
	if c.BufferCap <= 0 {
		c.BufferCap = 600
	}
	if c.SourceOutFactor <= 0 {
		c.SourceOutFactor = 6
	}
	if c.ServeRounds <= 0 {
		c.ServeRounds = 3
	}
	if c.LinkShare <= 0 {
		c.LinkShare = 1
	}
	if c.NewAlgorithm == nil {
		c.NewAlgorithm = Fast
	}
	if c.WarmupTicks <= 0 {
		c.WarmupTicks = 40
	}
	if c.JoinSpreadTicks == 0 {
		c.JoinSpreadTicks = c.WarmupTicks / 2
	}
	if c.JoinSpreadTicks < 0 {
		c.JoinSpreadTicks = 0
	}
	if c.HorizonTicks <= 0 {
		c.HorizonTicks = 150
	}
	if c.NewSource == 0 && !c.PinNewSource {
		// The zero value means "unset" (random pick): pinning node 0
		// requires the explicit PinNewSource flag.
		c.NewSource = -1
	}
	return c
}

// Validate reports configuration errors that Defaulted cannot repair.
func (c Config) Validate() error {
	if c.Graph == nil {
		return fmt.Errorf("sim: Config.Graph is required")
	}
	if c.Graph.N() < 2 {
		return fmt.Errorf("sim: need at least 2 nodes, have %d", c.Graph.N())
	}
	if c.Profiles != nil && len(c.Profiles) != c.Graph.N() {
		return fmt.Errorf("sim: %d profiles for %d nodes", len(c.Profiles), c.Graph.N())
	}
	if int(c.FirstSource) >= c.Graph.N() {
		return fmt.Errorf("sim: FirstSource %d out of range", c.FirstSource)
	}
	if c.NewSource >= 0 && int(c.NewSource) >= c.Graph.N() {
		return fmt.Errorf("sim: NewSource %d out of range", c.NewSource)
	}
	if c.Churn != nil {
		if c.Churn.LeaveFraction < 0 || c.Churn.LeaveFraction >= 1 {
			return fmt.Errorf("sim: LeaveFraction %v out of [0,1)", c.Churn.LeaveFraction)
		}
		if c.Churn.JoinFraction < 0 || c.Churn.JoinFraction >= 1 {
			return fmt.Errorf("sim: JoinFraction %v out of [0,1)", c.Churn.JoinFraction)
		}
	}
	if c.Net != nil {
		if err := c.Net.Validate(); err != nil {
			return err
		}
	}
	if c.Script != nil {
		if err := c.Script.Validate(); err != nil {
			return err
		}
		if c.Net == nil {
			for i, ev := range c.Script.Events {
				if ev.Kind.NeedsNet() {
					return fmt.Errorf("sim: event %d (%s) requires Config.Net", i, ev.Kind)
				}
			}
		}
	}
	return nil
}
