package sim

import (
	"math/rand"
	"testing"

	"gossipstream/internal/overlay"
)

func testTopology(t testing.TB, n int, seed int64) *overlay.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := overlay.Generate(overlay.KindPreferential, n, 1, rng)
	overlay.AugmentMinDegree(g, 5, rng)
	return g
}

func TestSmokeFastVsNormal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation smoke test")
	}
	run := func(factory AlgorithmFactory) *Result {
		g := testTopology(t, 300, 42)
		s, err := New(Config{Graph: g, Seed: 7, NewAlgorithm: factory, TrackRatios: true, NewSource: 17})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(Fast)
	normal := run(Normal)
	t.Logf("fast:   %v", fast)
	t.Logf("normal: %v", normal)
	t.Logf("fast   finish=%.2f prepare=%.2f maxPrep=%.2f ticks=%d", fast.AvgFinishS1(), fast.AvgPrepareS2(), fast.MaxPrepareS2(), fast.MeasuredTicks)
	t.Logf("normal finish=%.2f prepare=%.2f maxPrep=%.2f ticks=%d", normal.AvgFinishS1(), normal.AvgPrepareS2(), normal.MaxPrepareS2(), normal.MeasuredTicks)
	if fast.UnpreparedS2 > 0 || normal.UnpreparedS2 > 0 {
		t.Errorf("unprepared nodes: fast=%d normal=%d", fast.UnpreparedS2, normal.UnpreparedS2)
	}
}
