package sim

import (
	"math"
	"testing"

	"gossipstream/internal/netmodel"
)

// netConfig is the transport setup the netmodel tests share: every node
// on the default ping, moderate jitter, a little baseline loss.
func netConfig(loss float64) *netmodel.Config {
	return &netmodel.Config{DefaultPingMS: 80, JitterMS: 200, Loss: loss}
}

// TestNetInstantEquivalence pins the timing contract of the transport:
// with zero loss, zero jitter and sub-period pings, the netmodel run
// reproduces the instant-delivery run's metrics exactly — every message
// lands within its sending period, so the transit phase is the deliver
// phase. The sub-tick transport reports the true 40 ms link delay; the
// QuantizeTicks compatibility mode rounds it up to the classic whole
// period. Both are otherwise bit-identical to the classic run.
func TestNetInstantEquivalence(t *testing.T) {
	run := func(net *netmodel.Config) *Result {
		g := testTopology(t, 150, 9)
		cfg := quickConfig(g, Fast)
		cfg.TrackRatios = true
		cfg.Net = net
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	classic := run(nil)
	cases := []struct {
		name      string
		cfg       *netmodel.Config
		wantDelay float64 // seconds
	}{
		// 40 ms << 1 s period; the sub-tick transport reports it exactly.
		{"subtick", &netmodel.Config{DefaultPingMS: 40}, 0.040},
		// The compatibility mode floors onto periods: one period each.
		{"quantized", &netmodel.Config{DefaultPingMS: 40, QuantizeTicks: true}, 1.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			instant := run(tc.cfg)
			if instant.NetDelivered == 0 {
				t.Fatal("transport delivered nothing")
			}
			if instant.NetLost != 0 || instant.NetReRequests != 0 {
				t.Errorf("lossless run recorded %d losses, %d re-requests", instant.NetLost, instant.NetReRequests)
			}
			if d := instant.MeanDeliveryDelay(); math.Abs(d-tc.wantDelay) > 1e-9 {
				t.Errorf("mean delivery delay = %v s, want %v", d, tc.wantDelay)
			}
			// Apart from its own accounting (zero on the classic run by
			// definition), the transport changes nothing. The run-level
			// ledger must show a perfect lossless run before it goes.
			if a := instant.Audit; a == nil {
				t.Fatal("netmodel run carries no transport ledger")
			} else if a.Delivered != a.Injected || a.Lost != 0 || a.Severed != 0 ||
				a.Evaporated != 0 || a.InFlight != 0 {
				t.Errorf("lossless ledger not fully delivered: %+v", *a)
			}
			instant.Audit = nil
			zeroNet := func(m *SwitchMetrics) {
				m.NetDelivered, m.NetLost, m.NetReRequests, m.NetDelaySeconds = 0, 0, 0, 0
			}
			zeroNet(&instant.SwitchMetrics)
			for _, w := range instant.Windows {
				zeroNet(w)
			}
			resultsEqual(t, "instant-net", classic, instant)
		})
	}
}

// TestSubtickDelayBelowOnePeriod pins the tentpole's metric claim: with
// heterogeneous pings and jitter but every delay under one period, the
// sub-tick run's mean delivery delay is a genuine sub-second value — not
// the whole-period floor the quantized transport reports for the very
// same messages.
func TestSubtickDelayBelowOnePeriod(t *testing.T) {
	run := func(quantize bool) *Result {
		g := testTopology(t, 150, 9)
		cfg := quickConfig(g, Fast)
		cfg.Net = &netmodel.Config{DefaultPingMS: 80, JitterMS: 400, QuantizeTicks: quantize}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sub, quant := run(false), run(true)
	if sub.NetDelivered == 0 || quant.NetDelivered == 0 {
		t.Fatal("transport delivered nothing")
	}
	// 80 ms propagation + U[0,400) ms jitter: every delay is in
	// (0.08 s, 0.48 s) — strictly below one period.
	d := sub.MeanDeliveryDelay()
	if d <= 0.08 || d >= 0.48 {
		t.Errorf("sub-tick mean delay = %v s, want within (0.08, 0.48)", d)
	}
	if qd := quant.MeanDeliveryDelay(); math.Abs(qd-1.0) > 1e-9 {
		t.Errorf("quantized mean delay = %v s, want the 1-period floor", qd)
	}
}

// TestNetLossSlowsTheSwitch checks the loss semantics end to end: losses
// are recorded, induce re-requests that eventually land, and the mesh
// still converges (nobody is wedged by a lost grant).
func TestNetLossSlowsTheSwitch(t *testing.T) {
	g := testTopology(t, 150, 9)
	cfg := quickConfig(g, Fast)
	cfg.Net = netConfig(0.15)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.NetLost == 0 {
		t.Fatal("15% loss produced zero lost messages")
	}
	if res.NetReRequests == 0 {
		t.Error("losses induced no re-requests")
	}
	if res.LossRate() < 0.05 || res.LossRate() > 0.30 {
		t.Errorf("loss rate = %v, want around 0.15", res.LossRate())
	}
	if res.UnpreparedS2 > res.Cohort/4 {
		t.Errorf("mesh did not converge under loss: %d of %d unprepared", res.UnpreparedS2, res.Cohort)
	}
}

// TestNetPartitionBlocksAndHeals checks partition semantics: during the
// split only the source's side progresses, and after heal the far side
// catches up.
func TestNetPartitionBlocksAndHeals(t *testing.T) {
	g := testTopology(t, 150, 9)
	cfg := quickConfig(g, Fast)
	cfg.Net = &netmodel.Config{DefaultPingMS: 40}
	cfg.Script = &Script{Events: []Event{
		PartitionAt(20, 0.5),
		HealAt(60),
		SwitchAt(80, -1),
	}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The switch happened after the heal, so the whole cohort should
	// still converge.
	if len(res.Windows) != 1 || res.Windows[0].Kind != "switch" {
		t.Fatalf("windows: %+v", res.Windows)
	}
	if res.UnpreparedS2 > res.Cohort/4 {
		t.Errorf("mesh did not recover from the partition: %d of %d unprepared", res.UnpreparedS2, res.Cohort)
	}
}

// TestNetEventsRequireNet pins the validation: latency/loss/partition
// events without Config.Net are a configuration error.
func TestNetEventsRequireNet(t *testing.T) {
	g := testTopology(t, 50, 1)
	for _, ev := range []Event{
		LatencyShiftAt(10, 5),
		LossBurstAt(10, 5, 0.3),
		PartitionAt(10, 0.5),
		HealAt(10),
	} {
		cfg := quickConfig(g, Fast)
		cfg.Script = &Script{Events: []Event{ev}, Duration: 20}
		if _, err := New(cfg); err == nil {
			t.Errorf("%s event without Config.Net accepted", ev.Kind)
		}
	}
	// Demote needs no transport.
	cfg := quickConfig(g, Fast)
	cfg.Script = &Script{Events: []Event{SwitchAt(10, -1), DemoteAt(20, -1)}, Duration: 40}
	if _, err := New(cfg); err != nil {
		t.Errorf("demote without Config.Net rejected: %v", err)
	}
}

// TestDemoteRoundTripHandoff is the speaker-demotion acceptance test:
// the floor passes 3 → 7 → back to 3, which is only possible because the
// demote at tick 70 returned node 3 to the listener pool with nonzero
// inbound.
func TestDemoteRoundTripHandoff(t *testing.T) {
	g := testTopology(t, 150, 9)
	cfg := quickConfig(g, Fast)
	cfg.FirstSource = 3
	cfg.Script = &Script{Events: []Event{
		SwitchAt(25, 7),
		DemoteAt(70, 3),
		SwitchAt(100, 3),
	}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(res.Windows))
	}
	first, second := res.Windows[0], res.Windows[1]
	if first.OldSource != 3 || first.NewSource != 7 {
		t.Errorf("first handoff %d -> %d, want 3 -> 7", first.OldSource, first.NewSource)
	}
	if second.OldSource != 7 || second.NewSource != 3 {
		t.Errorf("round trip %d -> %d, want 7 -> 3", second.OldSource, second.NewSource)
	}
	if len(second.PrepareS2Times) == 0 {
		t.Error("nobody prepared the returned speaker's stream")
	}
	// Without the demote, the same script must fail: ex-sources cannot
	// retake the floor. (The pinned target silently falls back to the
	// random pick, so assert on the promoted node instead of an error.)
	cfg2 := quickConfig(testTopology(t, 150, 9), Fast)
	cfg2.FirstSource = 3
	cfg2.Script = &Script{Events: []Event{
		SwitchAt(25, 7),
		SwitchAt(100, 3),
	}}
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Windows[1].NewSource == 3 {
		t.Error("ex-source retook the floor without a demote")
	}
}

// TestDemoteErrors pins the demote failure modes as run errors.
func TestDemoteErrors(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
	}{
		{"no-ex-source", []Event{DemoteAt(10, -1)}},
		{"never-source", []Event{SwitchAt(10, 7), DemoteAt(20, 12)}},
		{"current-source", []Event{SwitchAt(10, 7), DemoteAt(20, 7)}},
		{"dead-ex-source", []Event{CrashAt(10, 7), DemoteAt(20, -1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := testTopology(t, 150, 9)
			cfg := quickConfig(g, Fast)
			cfg.FirstSource = 3
			cfg.Script = &Script{Events: tc.events, Duration: 40}
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(); err == nil {
				t.Error("invalid demote did not surface as a run error")
			}
		})
	}
}
