package sim

import (
	"errors"
	"fmt"
	"reflect"
)

// This file is the run-invariant checker: a structural audit of any
// completed Result against the Config that produced it. The determinism
// pins assert that two runs are bit-identical; the checker asserts that
// one run is *internally consistent* — counters conserve, cohorts stay
// inside the population, transport metrics respect the configured delay
// model, and nothing goes negative. Property tests run it over the
// generated-scenario family (internal/scenario/gen.go), so the contract
// holds on an unbounded set of timelines, not just the hand-written
// goldens.

// invariantEps absorbs float accumulation error in the delay bounds: the
// summed delay of a window is a sum of ~1e0-magnitude terms, so parts in
// 1e-9 is far beyond any real violation.
const invariantEps = 1e-9

// CheckInvariants audits a completed Result against the configuration of
// the run that produced it. It returns nil when every invariant holds,
// or an error joining every violation found:
//
//   - non-negative counters everywhere (windows and the transport ledger)
//   - cohort ⊆ population, completion samples ⊆ cohort, per-sample times
//     inside the window
//   - window conservation against the whole-run transport ledger, and the
//     ledger's own closure: injected = delivered + lost + severed +
//     evaporated + in-flight
//   - loss accounting only where loss is possible: NetLost and
//     NetReRequests stay zero unless the run configured baseline loss, a
//     loss burst, or a partition
//   - MeanDeliveryDelay within the netmodel's configured bound
//     (max latency factor × max ping + jitter amplitude, plus one period
//     of quantization slack), and at or above the model's delay floor —
//     one period under QuantizeTicks, the minimum scaled ping sub-tick
//     (the near-optimal floor a lossless run cannot beat)
//
// cfg must be the Config the run was built with (it is re-defaulted
// internally, so passing the pre-Defaulted form is fine).
func CheckInvariants(cfg Config, res *Result) error {
	cfg = cfg.Defaulted()
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	events := implicitEvents(cfg)
	checkWindows(cfg, res, events, fail)
	checkLedger(cfg, res, events, fail)

	// The embedded SwitchMetrics must mirror the first switch window (or
	// the first window of any kind when the run never switched).
	if len(res.Windows) > 0 {
		mirror := res.Windows[0]
		for _, w := range res.Windows {
			if w.Kind == "switch" {
				mirror = w
				break
			}
		}
		if !reflect.DeepEqual(res.SwitchMetrics, *mirror) {
			fail("embedded SwitchMetrics does not mirror window %d", mirror.Window)
		}
	}

	return errors.Join(errs...)
}

// CheckLiveInvariants audits a merged live-cluster Result: the window
// checks and the SwitchMetrics mirror of CheckInvariants, plus the
// loss-possibility rule applied directly to the windows. The transport
// ledger is deliberately absent — live transports are real sockets (or
// wall-clock shapers) with no conservation ledger, so a live result
// must not carry one. unscripted lists events the run resolved beyond
// the script — a failover-induced crash switch opens a window no
// scripted event accounts for.
func CheckLiveInvariants(cfg Config, res *Result, unscripted ...Event) error {
	cfg = cfg.Defaulted()
	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	for i, w := range res.Windows {
		if w == nil {
			fail("window %d missing from the merge (no shard reported it)", i)
		}
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}

	events := append(append([]Event(nil), implicitEvents(cfg)...), unscripted...)
	checkWindows(cfg, res, events, fail)

	if res.Audit != nil {
		fail("live result carries a transport ledger")
	}
	if cfg.Net != nil {
		nc := cfg.Net.Defaulted()
		lossPossible := nc.Loss > 0
		partitionPossible := false
		for _, ev := range events {
			switch ev.Kind {
			case EvLossBurst:
				if ev.Prob > 0 {
					lossPossible = true
				}
			case EvPartition:
				partitionPossible = true
			}
		}
		var winLost, winReReq int64
		for _, w := range res.Windows {
			winLost += w.NetLost
			winReReq += w.NetReRequests
		}
		if !lossPossible && !partitionPossible && (winLost != 0 || winReReq != 0) {
			fail("windows report %d losses and %d re-requests on a lossless, unpartitioned run", winLost, winReReq)
		}
	}

	if len(res.Windows) > 0 {
		mirror := res.Windows[0]
		for _, w := range res.Windows {
			if w.Kind == "switch" {
				mirror = w
				break
			}
		}
		if !reflect.DeepEqual(res.SwitchMetrics, *mirror) {
			fail("embedded SwitchMetrics does not mirror window %d", mirror.Window)
		}
	}

	return errors.Join(errs...)
}

// implicitEvents returns the run's event timeline: the script's events,
// or the implicit single planned switch of a nil script.
func implicitEvents(cfg Config) []Event {
	if cfg.Script != nil {
		return cfg.Script.Events
	}
	return []Event{SwitchAt(cfg.WarmupTicks, cfg.NewSource)}
}

// checkWindows audits every measurement window's internal consistency.
func checkWindows(cfg Config, res *Result, events []Event, fail func(string, ...any)) {
	openers := 0
	for _, ev := range events {
		if ev.Kind == EvSwitchSource || ev.Kind == EvMeasureWindow {
			openers++
		}
	}
	if len(res.Windows) > openers {
		fail("%d windows from %d switch/measure events", len(res.Windows), openers)
	}
	prevTick := -1
	for i, w := range res.Windows {
		where := fmt.Sprintf("window %d (%s, t=%d)", i, w.Kind, w.Tick)
		if w.Window != i {
			fail("%s: position field %d", where, w.Window)
		}
		if w.Tick < prevTick {
			fail("%s: opened before window %d", where, i-1)
		}
		prevTick = w.Tick

		for name, v := range map[string]int64{
			"Nodes": int64(w.Nodes), "Cohort": int64(w.Cohort),
			"UnfinishedS1": int64(w.UnfinishedS1), "UnpreparedS2": int64(w.UnpreparedS2),
			"ControlBits": w.ControlBits, "DataBits": w.DataBits,
			"NetDelivered": w.NetDelivered, "NetLost": w.NetLost,
			"NetReRequests":  w.NetReRequests,
			"PlayedSegments": w.PlayedSegments, "StalledSlots": w.StalledSlots,
			"MeasuredTicks": int64(w.MeasuredTicks), "Tick": int64(w.Tick),
		} {
			if v < 0 {
				fail("%s: negative %s = %d", where, name, v)
			}
		}
		if w.NetDelaySeconds < 0 {
			fail("%s: negative NetDelaySeconds = %v", where, w.NetDelaySeconds)
		}

		// Cohort ⊆ population, samples ⊆ cohort.
		if w.Cohort > w.Nodes {
			fail("%s: cohort %d exceeds population %d", where, w.Cohort, w.Nodes)
		}
		if got := len(w.FinishS1Times) + w.UnfinishedS1; got > w.Cohort {
			fail("%s: finishS1 accounting %d exceeds cohort %d", where, got, w.Cohort)
		}
		if got := len(w.PrepareS2Times) + w.UnpreparedS2; got > w.Cohort {
			fail("%s: prepareS2 accounting %d exceeds cohort %d", where, got, w.Cohort)
		}
		if len(w.StartS2Times) > w.Cohort {
			fail("%s: %d startS2 samples for cohort %d", where, len(w.StartS2Times), w.Cohort)
		}
		if w.Kind == "measure" &&
			(len(w.FinishS1Times)+len(w.PrepareS2Times)+len(w.StartS2Times)+w.UnfinishedS1+w.UnpreparedS2 > 0) {
			fail("%s: switch samples on a measure window", where)
		}

		// Every completion sample lands inside the window: samples are
		// end-of-period times relative to the opening instant, so they sit
		// in (0, MeasuredTicks·τ].
		limit := float64(w.MeasuredTicks)*cfg.Tau + invariantEps
		for _, samples := range [][]float64{w.FinishS1Times, w.PrepareS2Times, w.StartS2Times} {
			for _, v := range samples {
				if v <= 0 || v > limit {
					fail("%s: completion sample %v outside (0, %v]", where, v, limit)
				}
			}
		}

		if cfg.Net == nil {
			if w.NetDelivered != 0 || w.NetLost != 0 || w.NetReRequests != 0 || w.NetDelaySeconds != 0 {
				fail("%s: transport counters on a run without Config.Net", where)
			}
		} else if w.NetDelivered == 0 && w.NetDelaySeconds != 0 {
			fail("%s: delay %v without deliveries", where, w.NetDelaySeconds)
		}
	}
}

// checkLedger audits the whole-run transport ledger: conservation, the
// per-window counters against the run totals, the loss-possibility rule,
// and the delay bound/floor of every window's mean delivery delay.
func checkLedger(cfg Config, res *Result, events []Event, fail func(string, ...any)) {
	if cfg.Net == nil {
		if res.Audit != nil {
			fail("transport ledger present on a run without Config.Net")
		}
		return
	}
	a := res.Audit
	if a == nil {
		fail("netmodel run without a transport ledger")
		return
	}
	for name, v := range map[string]int64{
		"Injected": a.Injected, "Delivered": a.Delivered, "Lost": a.Lost,
		"Severed": a.Severed, "Evaporated": a.Evaporated, "InFlight": a.InFlight,
	} {
		if v < 0 {
			fail("ledger: negative %s = %d", name, v)
		}
	}
	if out := a.Delivered + a.Lost + a.Severed + a.Evaporated + a.InFlight; a.Injected != out {
		fail("ledger does not conserve: injected %d, accounted %d (delivered %d + lost %d + severed %d + evaporated %d + in-flight %d)",
			a.Injected, out, a.Delivered, a.Lost, a.Severed, a.Evaporated, a.InFlight)
	}

	// The windows see a subset of the run: their totals cannot exceed the
	// ledger's. (Window NetLost counts losses and severs together.)
	var winDelivered, winLost, winReReq int64
	for _, w := range res.Windows {
		winDelivered += w.NetDelivered
		winLost += w.NetLost
		winReReq += w.NetReRequests
	}
	if winDelivered > a.Delivered {
		fail("windows delivered %d, run total %d", winDelivered, a.Delivered)
	}
	if winLost > a.Lost+a.Severed {
		fail("windows lost %d, run total %d", winLost, a.Lost+a.Severed)
	}
	if winReReq > a.Lost+a.Severed {
		fail("windows re-requested %d segments, only %d messages were ever dropped", winReReq, a.Lost+a.Severed)
	}

	// Loss accounting only where loss is possible.
	nc := cfg.Net.Defaulted()
	lossPossible := nc.Loss > 0
	partitionPossible := false
	maxLat, minLat := 1.0, 1.0
	for _, ev := range events {
		switch ev.Kind {
		case EvLossBurst:
			if ev.Prob > 0 {
				lossPossible = true
			}
		case EvPartition:
			partitionPossible = true
		case EvLatencyShift:
			if ev.Factor > maxLat {
				maxLat = ev.Factor
			}
			if ev.Factor < minLat {
				minLat = ev.Factor
			}
		}
	}
	if !lossPossible && a.Lost != 0 {
		fail("ledger: %d loss-drawn drops on a run with no configured loss", a.Lost)
	}
	if !partitionPossible && a.Severed != 0 {
		fail("ledger: %d severed messages on a run with no partition", a.Severed)
	}
	if !lossPossible && !partitionPossible && (winLost != 0 || winReReq != 0) {
		fail("windows report %d losses and %d re-requests on a lossless, unpartitioned run", winLost, winReReq)
	}

	// Delay bound and floor. Every message's delay is
	// latFactor·(ping_a+ping_b)/2 + jitter, so the mean of any window sits
	// between minLat·minPing (the near-optimal floor: no schedule can beat
	// the wire) and maxLat·maxPing + jitter amplitude; QuantizeTicks adds
	// one period of flooring slack on top and raises the floor to a whole
	// period (same-tick delivery counts one period).
	minPing, maxPing := nc.DefaultPingMS, nc.DefaultPingMS
	for _, p := range nc.PingMS {
		if p < minPing {
			minPing = p
		}
		if p > maxPing {
			maxPing = p
		}
	}
	bound := (maxLat*float64(maxPing)+nc.JitterMS)/1000 + cfg.Tau + invariantEps
	floor := minLat * float64(minPing) / 1000
	if nc.QuantizeTicks {
		floor = cfg.Tau
	}
	floor -= invariantEps
	for i, w := range res.Windows {
		if w.NetDelivered == 0 {
			continue
		}
		mean := w.MeanDeliveryDelay()
		if mean > bound {
			fail("window %d: mean delivery delay %v above the model bound %v", i, mean, bound)
		}
		if mean < floor {
			fail("window %d: mean delivery delay %v below the model floor %v", i, mean, floor)
		}
	}
}
