package sim

import (
	"math"
	"testing"

	"gossipstream/internal/bandwidth"
	"gossipstream/internal/overlay"
)

func quickConfig(g *overlay.Graph, factory AlgorithmFactory) Config {
	return Config{
		Graph:           g,
		Seed:            11,
		NewAlgorithm:    factory,
		WarmupTicks:     30,
		JoinSpreadTicks: 15,
		HorizonTicks:    200,
		FirstSource:     -1,
		NewSource:       -1,
		SharedOutbound:  true,
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{}).Defaulted().Validate(); err == nil {
		t.Error("nil graph accepted")
	}
	g := testTopology(t, 50, 1)
	bad := quickConfig(g, Fast)
	bad.Profiles = make([]bandwidth.Profile, 3)
	if err := bad.Defaulted().Validate(); err == nil {
		t.Error("profile count mismatch accepted")
	}
	bad = quickConfig(g, Fast)
	bad.FirstSource = 1000
	if err := bad.Defaulted().Validate(); err == nil {
		t.Error("out-of-range FirstSource accepted")
	}
	bad = quickConfig(g, Fast)
	bad.Churn = &ChurnConfig{LeaveFraction: 1.5}
	if err := bad.Defaulted().Validate(); err == nil {
		t.Error("bad churn fraction accepted")
	}
	tiny := Config{Graph: overlay.New(1)}
	if err := tiny.Defaulted().Validate(); err == nil {
		t.Error("single-node graph accepted")
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	c := Config{}.Defaulted()
	if c.Tau != 1.0 || c.P != 10 || c.Q != 10 || c.Qs != 50 || c.BufferCap != 600 {
		t.Errorf("defaults diverge from Section 5.1: %+v", c)
	}
}

func TestRunCompletesAndMeasures(t *testing.T) {
	g := testTopology(t, 200, 3)
	s, err := New(quickConfig(g, Fast))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cohort < 190 {
		t.Errorf("cohort = %d, want ~198", res.Cohort)
	}
	if res.UnpreparedS2 > 0 || res.UnfinishedS1 > 0 {
		t.Errorf("incomplete nodes: %d unfinished, %d unprepared", res.UnfinishedS1, res.UnpreparedS2)
	}
	if res.AvgPrepareS2() <= 0 || math.IsNaN(res.AvgPrepareS2()) {
		t.Errorf("prepare time = %v", res.AvgPrepareS2())
	}
	if res.AvgFinishS1() <= 0 || math.IsNaN(res.AvgFinishS1()) {
		t.Errorf("finish time = %v", res.AvgFinishS1())
	}
	if res.DataBits == 0 || res.ControlBits == 0 {
		t.Error("communication accounting empty")
	}
	if res.Overhead() <= 0 || res.Overhead() > 0.2 {
		t.Errorf("overhead = %v, implausible", res.Overhead())
	}
}

func TestRunTwiceFails(t *testing.T) {
	g := testTopology(t, 60, 4)
	s, err := New(quickConfig(g, Fast))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("second Run succeeded")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		g := testTopology(t, 150, 9)
		s, err := New(quickConfig(g, Fast))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.AvgPrepareS2() != b.AvgPrepareS2() || a.AvgFinishS1() != b.AvgFinishS1() {
		t.Errorf("identical seeds diverged: %v vs %v", a, b)
	}
	if a.DataBits != b.DataBits || a.ControlBits != b.ControlBits {
		t.Error("bit accounting diverged across identical seeds")
	}
}

func TestSeedSensitivity(t *testing.T) {
	g1 := testTopology(t, 150, 9)
	c1 := quickConfig(g1, Fast)
	s1, _ := New(c1)
	r1, err := s1.Run()
	if err != nil {
		t.Fatal(err)
	}
	g2 := testTopology(t, 150, 9)
	c2 := quickConfig(g2, Fast)
	c2.Seed = 999
	s2, _ := New(c2)
	r2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.AvgPrepareS2() == r2.AvgPrepareS2() && r1.DataBits == r2.DataBits {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

// invariantSim runs a simulation tick by tick, checking conservation
// invariants after every step. The switch fires through the event queue
// (the events phase at the start of its tick), exactly as Run drives it.
func TestTickInvariants(t *testing.T) {
	g := testTopology(t, 120, 5)
	cfg := quickConfig(g, Fast)
	total := cfg.WarmupTicks + 40
	cfg.Script = &Script{
		Events:   []Event{SwitchAt(cfg.WarmupTicks, -1)},
		Duration: total,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for s.tick = 0; s.tick < total; s.tick++ {
		prevPlayheads := make(map[overlay.NodeID]int64)
		for _, n := range s.nodes {
			prevPlayheads[n.id] = int64(n.Playhead)
		}
		s.step()
		perTick := int(s.cfg.P * s.cfg.Tau)
		seen := map[[2]int64]bool{}
		perNode := map[overlay.NodeID]int{}
		for si := range s.shards {
			for _, d := range s.shards[si].landed {
				key := [2]int64{int64(d.to), int64(d.seg)}
				if seen[key] {
					t.Fatalf("tick %d: duplicate delivery %v", s.tick, key)
				}
				seen[key] = true
				perNode[d.to]++
			}
		}
		for id, got := range perNode {
			n := s.nodes[id]
			// Inbound cap: rate·τ plus one carry segment.
			if float64(got) > n.profile.In*s.cfg.Tau+1 {
				t.Fatalf("tick %d: node %d received %d > inbound %v", s.tick, id, got, n.profile.In)
			}
		}
		for _, n := range s.nodes {
			if !n.alive {
				continue
			}
			adv := int64(n.Playhead) - prevPlayheads[n.id]
			if adv < 0 && n.Active {
				t.Fatalf("tick %d: node %d playhead moved backwards", s.tick, n.id)
			}
			if adv > int64(perTick) && prevPlayheads[n.id] > 0 {
				t.Fatalf("tick %d: node %d played %d > p segments", s.tick, n.id, adv)
			}
			// A playing node must hold every segment it has played up to
			// the buffer horizon.
			if n.Active && n.Playhead > n.Anchor && !n.buf.Has(n.Playhead-1) {
				t.Fatalf("tick %d: node %d played a segment it does not hold", s.tick, n.id)
			}
		}
	}
}

func TestPrepareImpliesConsecutiveQs(t *testing.T) {
	g := testTopology(t, 150, 6)
	s, err := New(quickConfig(g, Fast))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range s.cohort {
		n := s.nodes[id]
		if n.prepareS2Tick != unset && n.alive {
			if got := n.buf.ConsecutiveFrom(s.s2Begin); got < s.cfg.Qs {
				t.Fatalf("node %d prepared with only %d consecutive S2 segments", id, got)
			}
		}
	}
}

func TestFinishImpliesFullS1Playback(t *testing.T) {
	g := testTopology(t, 150, 6)
	s, err := New(quickConfig(g, Normal))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range s.cohort {
		n := s.nodes[id]
		if n.finishS1Tick != unset && n.Playhead <= s.s1End {
			t.Fatalf("node %d marked finished with playhead %d <= s1End %d", id, n.Playhead, s.s1End)
		}
	}
}

func TestStartS2RequiresBothConditions(t *testing.T) {
	g := testTopology(t, 150, 6)
	s, err := New(quickConfig(g, Fast))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range s.cohort {
		n := s.nodes[id]
		if n.startS2Tick == unset {
			continue
		}
		if n.finishS1Tick == unset || n.startS2Tick < n.finishS1Tick {
			t.Fatalf("node %d started S2 at %d before finishing S1 (%d)", id, n.startS2Tick, n.finishS1Tick)
		}
		if n.prepareS2Tick == unset || n.startS2Tick < n.prepareS2Tick {
			t.Fatalf("node %d started S2 at %d before preparing (%d)", id, n.startS2Tick, n.prepareS2Tick)
		}
	}
}

func TestOverheadMatchesWireArithmetic(t *testing.T) {
	// Control bits must be an exact multiple of the 620-bit map and data
	// bits of the 30 kb segment (Section 5.3).
	g := testTopology(t, 100, 7)
	s, err := New(quickConfig(g, Fast))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ControlBits%620 != 0 {
		t.Errorf("control bits %d not a multiple of 620", res.ControlBits)
	}
	if res.DataBits%(30*1024) != 0 {
		t.Errorf("data bits %d not a multiple of 30 kb", res.DataBits)
	}
}

func TestTrackRatiosSeries(t *testing.T) {
	g := testTopology(t, 150, 8)
	cfg := quickConfig(g, Normal)
	cfg.TrackRatios = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	u, d := res.UndeliveredS1, res.DeliveredS2
	if u == nil || d == nil || u.Len() == 0 || d.Len() == 0 {
		t.Fatal("ratio series missing")
	}
	// The undelivered ratio starts at 1 and ends at 0; delivered starts at
	// 0 and ends at 1 (Figure 5's envelope).
	if _, y := u.At(0); y < 0.9 {
		t.Errorf("undelivered ratio starts at %v, want ≈1", y)
	}
	if _, y := u.At(u.Len() - 1); y > 0.05 {
		t.Errorf("undelivered ratio ends at %v, want ≈0", y)
	}
	if _, y := d.At(0); y > 0.3 {
		t.Errorf("delivered ratio starts at %v, want ≈0", y)
	}
	if _, y := d.At(d.Len() - 1); y < 0.95 {
		t.Errorf("delivered ratio ends at %v, want ≈1", y)
	}
	// Monotone directions (within small tolerance for churnless runs).
	for i := 1; i < u.Len(); i++ {
		if u.Y[i] > u.Y[i-1]+1e-9 {
			t.Fatal("undelivered ratio increased")
		}
		if d.Y[i] < d.Y[i-1]-1e-9 {
			t.Fatal("delivered ratio decreased")
		}
	}
}

func TestDynamicEnvironmentRuns(t *testing.T) {
	g := testTopology(t, 200, 10)
	cfg := quickConfig(g, Fast)
	cfg.Churn = &ChurnConfig{LeaveFraction: 0.05, JoinFraction: 0.05}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cohort == 0 {
		t.Fatal("empty cohort under churn")
	}
	// At 5% departures per period most of the cohort leaves before the
	// switch completes; what matters is that the survivors are not
	// wedged: (nearly) every cohort node still alive at the end prepared.
	if res.UnpreparedS2 > res.Cohort/20 {
		t.Errorf("%d surviving cohort nodes never prepared (cohort %d)", res.UnpreparedS2, res.Cohort)
	}
	if len(res.PrepareS2Times) == 0 {
		t.Error("nobody prepared under churn")
	}
}

func TestPerLinkModeRuns(t *testing.T) {
	g := testTopology(t, 150, 12)
	cfg := quickConfig(g, Fast)
	cfg.SharedOutbound = false
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.UnpreparedS2 > 0 {
		t.Errorf("%d unprepared in per-link mode", res.UnpreparedS2)
	}
}

func TestPrefetchAblationDegradesThroughput(t *testing.T) {
	// Without the random prefetch the mesh degenerates toward an in-order
	// pipeline during streaming: delivery falls behind, so the undelivered
	// backlog at the switch is larger and S1 takes visibly longer to
	// finish (the substrate ablation's point).
	run := func(disable bool) float64 {
		g := testTopology(t, 150, 13)
		cfg := quickConfig(g, Fast)
		cfg.DisablePrefetch = disable
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgFinishS1()
	}
	with := run(false)
	without := run(true)
	if !(without > with) {
		t.Errorf("finish time with prefetch off (%v) not above prefetch on (%v)", without, with)
	}
}

func TestPinnedSources(t *testing.T) {
	g := testTopology(t, 100, 14)
	cfg := quickConfig(g, Fast)
	cfg.FirstSource = 3
	cfg.NewSource = 7
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.oldSource != 3 || s.newSource != 7 {
		t.Errorf("sources = (%d, %d), want (3, 7)", s.oldSource, s.newSource)
	}
	if !s.nodes[7].isSource || s.nodes[7].profile.In != 0 {
		t.Error("new source not promoted")
	}
}

func TestSourcesExcludedFromCohort(t *testing.T) {
	g := testTopology(t, 100, 15)
	cfg := quickConfig(g, Fast)
	cfg.FirstSource = 3
	cfg.NewSource = 7
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, id := range s.cohort {
		if id == 3 || id == 7 {
			t.Fatalf("source %d in cohort", id)
		}
	}
}

func TestContinuityAccounting(t *testing.T) {
	g := testTopology(t, 150, 6)
	s, err := New(quickConfig(g, Fast))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PlayedSegments == 0 {
		t.Fatal("no playback recorded in the measurement window")
	}
	c := res.Continuity()
	if c <= 0 || c > 1 {
		t.Fatalf("continuity = %v, outside (0,1]", c)
	}
	// During a switch some stalling is expected (nodes drain backlogs and
	// wait for S2), but the system must not be mostly stalled.
	if c < 0.5 {
		t.Errorf("continuity %v implausibly low", c)
	}
	// Zero-window result reports perfect continuity by convention.
	empty := &Result{}
	if empty.Continuity() != 1 {
		t.Error("empty result continuity must be 1")
	}
}

func TestFastBeatsNormalOnPreparingTime(t *testing.T) {
	// The headline reproduction at test scale: averaged over topologies,
	// the fast algorithm prepares S2 sooner than the normal algorithm.
	var fastSum, normalSum float64
	const runs = 3
	for r := 0; r < runs; r++ {
		for _, alg := range []struct {
			factory AlgorithmFactory
			sum     *float64
		}{{Fast, &fastSum}, {Normal, &normalSum}} {
			g := testTopology(t, 250, int64(20+r))
			cfg := quickConfig(g, alg.factory)
			cfg.Seed = int64(100 + r)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			*alg.sum += res.AvgPrepareS2()
		}
	}
	if fastSum >= normalSum {
		t.Errorf("fast total prepare %.2f not below normal %.2f", fastSum, normalSum)
	}
	t.Logf("prepare time over %d runs: fast=%.2f normal=%.2f reduction=%.1f%%",
		runs, fastSum/runs, normalSum/runs, (normalSum-fastSum)/normalSum*100)
}
