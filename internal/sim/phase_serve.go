package sim

import (
	"math/rand"

	"gossipstream/internal/bandwidth"
	"gossipstream/internal/overlay"
	"gossipstream/internal/sim/engine"
)

// The serve phase resolves the round's requests at every supplier in two
// sub-steps:
//
//   - propose (parallel, sharded over suppliers): each supplier walks its
//     request queue and tentatively grants under its own capacity — the
//     per-link R(j)·τ caps of the paper's model, or the aggregate
//     outbound budget of the shared ablation — spending that capacity
//     immediately. Requester state is only read (it is frozen during the
//     parallel step), so proposals depend solely on round-start state and
//     supplier-local state: deterministic at any worker count.
//
//   - commit (serial, shard order): each proposal is re-validated against
//     the requester's live inbound budget, which competing suppliers may
//     have oversubscribed during propose. Winners become deliveries;
//     losers refund the supplier's spent capacity so it is available to
//     the next round (capacity is per period).
//
// In the paper's per-link model (the default) a supplier answers each
// neighbor independently at rate R(j): the only caps are the per-link
// R(j)·τ segments per period and the requester's inbound budget. This is
// exactly the capacity model behind Algorithm 1, whose queueing time τ(j)
// accumulates only the requester's own transfers at j.
//
// In the shared-outbound ablation a supplier's R(j)·τ is an aggregate
// period budget across all links. Service order then decides mesh
// throughput: if a congested supplier answers every queue in the same
// order, same-depth peers end up with identical holdings and have nothing
// to trade. Mirroring the randomized forwarding of gossip protocols, the
// supplier serves its queue in random order (from its shard's RNG
// stream) and grants each distinct segment once before spending leftover
// capacity on duplicates.

// serveRound executes propose and commit for the current round, setting
// s.granted when any grant landed.
func (s *Sim) serveRound() {
	n := len(s.nodes)
	shards := s.ensureShards(n)
	round := s.round
	s.pool.Run(shards, func(worker, shard int) {
		ws := s.workers[worker]
		sh := &s.shards[shard]
		sh.proposals = sh.proposals[:0]
		var rng *rand.Rand
		if s.cfg.SharedOutbound {
			rng = rand.New(rand.NewSource(engine.SeedFor(s.cfg.Seed, rngServe, s.tick, round, shard)))
		}
		lo, hi := engine.ShardSpan(n, shard)
		for sid := lo; sid < hi; sid++ {
			reqs := s.incoming[sid]
			if len(reqs) == 0 {
				continue
			}
			if s.cfg.SharedOutbound {
				s.proposeShared(ws, sh, overlay.NodeID(sid), reqs, rng)
			} else {
				s.proposePerLink(ws, sh, overlay.NodeID(sid), reqs)
			}
		}
	})

	// Serial commit in shard order. Under the netmodel transport the
	// committed grant becomes an in-flight message instead of an
	// end-of-tick delivery; its jitter draw comes from a dedicated
	// per-(tick, round) stream, deterministic because the commit walk
	// itself is serial and shard-ordered.
	var jitterRNG *rand.Rand
	if s.net != nil && s.net.JitterMS() > 0 {
		jitterRNG = rand.New(rand.NewSource(engine.SeedFor(s.cfg.Seed, rngNetJit, s.tick, round, 0)))
	}
	granted := false
	for si := 0; si < shards; si++ {
		for _, p := range s.shards[si].proposals {
			req := s.nodes[p.from]
			if !req.in.Take(1) {
				// Competing suppliers oversubscribed this requester's
				// inbound budget: refund the capacity spent at propose.
				if s.cfg.SharedOutbound {
					s.nodes[p.sup].out.Refund(1)
				} else {
					req.linkGrants[p.nbIdx]--
				}
				continue
			}
			req.markGranted(p.seg)
			granted = true
			if s.net != nil {
				if req.consumeLost(p.seg) && s.win.active {
					s.netReRequests++ // a loss-induced re-request got re-granted
				}
				var jitter float64
				if jitterRNG != nil {
					jitter = jitterRNG.Float64() * s.net.JitterMS()
				}
				s.net.Send(s.tick, p.sup, p.from, p.seg, jitter)
			} else {
				s.delivered = append(s.delivered, delivery{to: p.from, seg: p.seg})
			}
			if s.win.active {
				s.dataBits += bandwidth.BitsForSegments(1)
			}
		}
	}
	s.granted = granted
}

// proposePerLink proposes grants under the paper's link-capacity
// semantics. The per-pair counter lives requester-side
// (req.linkGrants[nbIdx]); the slot belongs to exactly one supplier, so
// the concurrent increment is race-free.
func (s *Sim) proposePerLink(ws *workerScratch, sh *shardScratch, sid overlay.NodeID, reqs []pullRequest) {
	sup := s.nodes[sid]
	perLink := int32(s.linkCap(sup))
	ws.reqCount.begin()
	for _, r := range reqs {
		req := s.nodes[r.from]
		if !req.alive || req.in.Available() < int(ws.reqCount.get(r.from))+1 ||
			!sup.buf.Has(r.seg) || req.buf.Has(r.seg) || req.isGranted(r.seg) {
			continue
		}
		if req.linkGrants[r.nbIdx] >= perLink {
			continue // this link's period capacity is exhausted
		}
		req.linkGrants[r.nbIdx]++
		ws.reqCount.inc(r.from)
		sh.proposals = append(sh.proposals, proposal{sup: sid, from: r.from, seg: r.seg, nbIdx: r.nbIdx})
	}
}

// proposeShared proposes grants under an aggregate outbound budget with
// randomized, distinct-first service order.
func (s *Sim) proposeShared(ws *workerScratch, sh *shardScratch, sid overlay.NodeID, reqs []pullRequest, rng *rand.Rand) {
	sup := s.nodes[sid]
	if sup.out.Available() < 1 {
		return
	}
	// Deterministic shuffle from the shard's RNG stream.
	rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
	ws.seen.begin()     // distinct segments proposed so far
	ws.reqCount.begin() // per-requester proposals in this queue
	propose := func(r pullRequest) bool {
		req := s.nodes[r.from]
		if !req.alive || req.in.Available() < int(ws.reqCount.get(r.from))+1 ||
			!sup.buf.Has(r.seg) || req.buf.Has(r.seg) || req.isGranted(r.seg) {
			return false
		}
		sup.out.Take(1)
		ws.seen.add(r.seg)
		ws.reqCount.inc(r.from)
		sh.proposals = append(sh.proposals, proposal{sup: sid, from: r.from, seg: r.seg, nbIdx: r.nbIdx})
		return true
	}
	// Pass 1: distinct segments only; queue entries deferred by the
	// distinct-first rule are collected for the duplicate pass (an entry
	// proposed once must not be proposed again — the grant is pending).
	ws.retry = ws.retry[:0]
	for i, r := range reqs {
		if sup.out.Available() < 1 {
			break
		}
		if ws.seen.has(r.seg) {
			ws.retry = append(ws.retry, int32(i))
			continue
		}
		propose(r)
	}
	// Pass 2: spend leftover capacity on duplicate segments.
	for _, i := range ws.retry {
		if sup.out.Available() < 1 {
			break
		}
		propose(reqs[i])
	}
}
