package sim

import (
	"math/rand"
	"slices"
	"sort"

	"gossipstream/internal/bandwidth"
	"gossipstream/internal/overlay"
	"gossipstream/internal/sim/engine"
)

// The serve phase resolves the round's requests at every supplier in two
// sub-steps:
//
//   - propose (parallel, sharded over suppliers): each supplier walks its
//     request queue and tentatively grants under its own capacity — the
//     per-link R(j)·τ caps of the paper's model, or the aggregate
//     outbound budget of the shared ablation — spending that capacity
//     immediately. Requester state is only read (it is frozen during the
//     parallel step), so proposals depend solely on round-start state and
//     supplier-local state: deterministic at any worker count.
//
//   - commit: each proposal is re-validated against the requester's live
//     inbound budget, which competing suppliers may have oversubscribed
//     during propose. Winners become deliveries; losers refund the
//     supplier's spent capacity so it is available to the next round
//     (capacity is per period). On the serial engine the commit is one
//     walk in (shard, proposal) order. On the parallel engine it is
//     sharded over *requesters*: a proposal's fate depends only on its
//     requester's inbound budget and per-requester arrival order, so
//     workers that own disjoint requester shards make the identical
//     decisions — see commitParallel for the exact argument.
//
// In the paper's per-link model (the default) a supplier answers each
// neighbor independently at rate R(j): the only caps are the per-link
// R(j)·τ segments per period and the requester's inbound budget. This is
// exactly the capacity model behind Algorithm 1, whose queueing time τ(j)
// accumulates only the requester's own transfers at j.
//
// In the shared-outbound ablation a supplier's R(j)·τ is an aggregate
// period budget across all links. Service order then decides mesh
// throughput: if a congested supplier answers every queue in the same
// order, same-depth peers end up with identical holdings and have nothing
// to trade. Mirroring the randomized forwarding of gossip protocols, the
// supplier serves its queue in random order (from its shard's RNG
// stream) and grants each distinct segment once before spending leftover
// capacity on duplicates.

// serveRound executes propose and commit for the current round, setting
// s.granted when any grant landed.
func (s *Sim) serveRound() {
	n := len(s.nodes)
	shards := s.ensureShards(n)
	round := s.round
	parallel := s.pool.Workers() > 1
	s.pool.Run(shards, func(worker, shard int) {
		ws := s.workers[worker]
		sh := &s.shards[shard]
		sh.proposals = sh.proposals[:0]
		var rng *rand.Rand
		if s.cfg.SharedOutbound {
			rng = ws.seedRNG(engine.SeedFor(s.cfg.Seed, rngServe, s.tick, round, shard))
		}
		lo, hi := engine.ShardSpan(n, shard)
		for sid := lo; sid < hi; sid++ {
			reqs := s.incoming[sid]
			if len(reqs) == 0 {
				continue
			}
			if s.cfg.SharedOutbound {
				s.proposeShared(ws, sh, overlay.NodeID(sid), reqs, rng)
			} else {
				s.proposePerLink(ws, sh, overlay.NodeID(sid), reqs)
			}
		}
		if parallel {
			sh.buildCommitIndex()
		}
	})
	if parallel {
		s.commitParallel(shards, round)
	} else {
		s.commitSerial(shards, round)
	}
}

// serveJitterRNG returns the round's jitter stream (nil when the transport
// draws no jitter), reseeding the Sim's reusable generator.
func (s *Sim) serveJitterRNG(round int) *rand.Rand {
	if s.net == nil || s.net.JitterMS() <= 0 {
		return nil
	}
	seed := engine.SeedFor(s.cfg.Seed, rngNetJit, s.tick, round, 0)
	if s.jitterRNG == nil {
		s.jitterRNG = rand.New(rand.NewSource(seed))
	} else {
		s.jitterRNG.Seed(seed)
	}
	return s.jitterRNG
}

// commitSerial is the single-worker commit: one walk over every shard's
// proposals in (shard, position) order. Under the netmodel transport the
// committed grant becomes an in-flight message instead of an end-of-tick
// delivery; its jitter draw comes from a dedicated per-(tick, round)
// stream, deterministic because the walk is shard-ordered.
func (s *Sim) commitSerial(shards, round int) {
	jitterRNG := s.serveJitterRNG(round)
	granted := false
	var committed int64
	for si := 0; si < shards; si++ {
		for _, p := range s.shards[si].proposals {
			req := s.nodes[p.from]
			if !req.in.Take(1) {
				// Competing suppliers oversubscribed this requester's
				// inbound budget: refund the capacity spent at propose.
				if s.cfg.SharedOutbound {
					s.nodes[p.sup].out.Refund(1)
				} else {
					req.linkGrants[p.nbIdx]--
				}
				continue
			}
			req.markGranted(p.seg)
			granted = true
			committed++
			if s.net != nil {
				if req.consumeLost(p.seg) {
					s.obsReReq.Inc()
					if s.win.active {
						s.netReRequests++ // a loss-induced re-request got re-granted
					}
				}
				var jitter float64
				if jitterRNG != nil {
					jitter = jitterRNG.Float64() * s.net.JitterMS()
				}
				s.net.Send(s.tick, p.sup, p.from, p.seg, jitter)
				s.audInjected++
			} else {
				dst := &s.shards[engine.ShardOf(int(p.from))]
				dst.landed = append(dst.landed, delivery{to: p.from, seg: p.seg})
			}
			if s.win.active {
				s.dataBits += bandwidth.BitsForSegments(1)
			}
		}
	}
	s.granted = granted
	s.obsSent.Add(committed)
}

// commitParallel is the multi-worker commit. A proposal's fate depends on
// exactly two things: its requester's inbound budget and the order the
// requester's proposals arrive in the global (shard, position) commit
// walk. Both are requester-local, so the decisions can be sharded over
// requesters: each worker replays, for its own requesters only, the same
// subsequence of the global walk the serial commit would visit (source
// shards ascending, original proposal order within each — the per-source
// commit index is a *stable* sort by requester shard, so intra-shard
// order survives the bucketing). Identical per-requester order plus
// untouched cross-requester state means bit-identical Take/markGranted
// decisions at any worker count.
//
// Writes stay disjoint: requester state (inbound budget, granted set,
// linkGrants refunds) belongs to the worker owning the requester's shard;
// accept flags land at distinct indexes of the source shards' flag
// arrays; deliveries and counters buffer in the requester shard's
// scratch. The two cross-shard effects — shared-mode supplier refunds and
// the global window counters — are deferred to a serial shard-ordered
// reduce. Refunds only influence the *next* round's planning (commit
// decisions never read supplier budgets), so deferring them is
// behavior-identical to the serial commit's in-walk refunds.
//
// Under the netmodel transport the message sends themselves stay serial:
// a final pass walks the accept flags in the original (shard, position)
// order, so jitter draws and transport sequence numbers match the serial
// engine exactly.
func (s *Sim) commitParallel(shards, round int) {
	s.pool.Run(shards, func(_, d int) {
		dsh := &s.shards[d]
		dsh.refundSup = dsh.refundSup[:0]
		dsh.committed, dsh.reRequests = 0, 0
		for si := 0; si < shards; si++ {
			src := &s.shards[si]
			lo, hi := src.reqShardRange(d)
			for _, idx := range src.propOrder[lo:hi] {
				p := src.proposals[idx]
				req := s.nodes[p.from]
				if !req.in.Take(1) {
					if s.cfg.SharedOutbound {
						dsh.refundSup = append(dsh.refundSup, p.sup)
					} else {
						req.linkGrants[p.nbIdx]--
					}
					continue
				}
				req.markGranted(p.seg)
				src.accept[idx] = true
				dsh.committed++
				if s.net != nil {
					if req.consumeLost(p.seg) {
						s.obsReReq.Inc() // atomic; observational only
						if s.win.active {
							dsh.reRequests++
						}
					}
				} else {
					dsh.landed = append(dsh.landed, delivery{to: p.from, seg: p.seg})
				}
			}
		}
	})

	// Serial reduce in shard order: supplier refunds and window counters.
	granted := false
	for d := 0; d < shards; d++ {
		dsh := &s.shards[d]
		if dsh.committed > 0 {
			granted = true
		}
		s.obsSent.Add(int64(dsh.committed))
		for _, sup := range dsh.refundSup {
			s.nodes[sup].out.Refund(1)
		}
		if s.win.active {
			s.dataBits += int64(dsh.committed) * bandwidth.BitsForSegments(1)
			s.netReRequests += int64(dsh.reRequests)
		}
	}
	s.granted = granted

	// Netmodel landing: serial sends in the original commit order.
	if s.net != nil {
		jitterRNG := s.serveJitterRNG(round)
		for si := 0; si < shards; si++ {
			src := &s.shards[si]
			for idx, p := range src.proposals {
				if !src.accept[idx] {
					continue
				}
				var jitter float64
				if jitterRNG != nil {
					jitter = jitterRNG.Float64() * s.net.JitterMS()
				}
				s.net.Send(s.tick, p.sup, p.from, p.seg, jitter)
				s.audInjected++
			}
		}
	}
}

// buildCommitIndex prepares the shard's proposals for the parallel
// commit: propOrder is the proposal indexes stably sorted by requester
// shard (so one requester shard's slice is a contiguous range, in
// original proposal order), accept the cleared per-proposal win flags.
func (sh *shardScratch) buildCommitIndex() {
	n := len(sh.proposals)
	if cap(sh.propOrder) < n {
		sh.propOrder = make([]int32, 0, n+n/2+8)
	}
	sh.propOrder = sh.propOrder[:0]
	if cap(sh.accept) < n {
		sh.accept = make([]bool, n)
	}
	sh.accept = sh.accept[:n]
	for i := 0; i < n; i++ {
		sh.propOrder = append(sh.propOrder, int32(i))
		sh.accept[i] = false
	}
	slices.SortStableFunc(sh.propOrder, func(a, b int32) int {
		return engine.ShardOf(int(sh.proposals[a].from)) - engine.ShardOf(int(sh.proposals[b].from))
	})
}

// reqShardRange returns the propOrder subrange whose proposals address
// requesters in shard d (binary search over the sorted index).
func (sh *shardScratch) reqShardRange(d int) (lo, hi int) {
	lo = sort.Search(len(sh.propOrder), func(i int) bool {
		return engine.ShardOf(int(sh.proposals[sh.propOrder[i]].from)) >= d
	})
	hi = lo + sort.Search(len(sh.propOrder)-lo, func(i int) bool {
		return engine.ShardOf(int(sh.proposals[sh.propOrder[lo+i]].from)) > d
	})
	return lo, hi
}

// proposePerLink proposes grants under the paper's link-capacity
// semantics. The per-pair counter lives requester-side
// (req.linkGrants[nbIdx]); the slot belongs to exactly one supplier, so
// the concurrent increment is race-free.
func (s *Sim) proposePerLink(ws *workerScratch, sh *shardScratch, sid overlay.NodeID, reqs []pullRequest) {
	sup := s.nodes[sid]
	perLink := int32(s.linkCap(sup))
	ws.reqCount.begin()
	for _, r := range reqs {
		req := s.nodes[r.from]
		if !req.alive || req.in.Available() < int(ws.reqCount.get(r.from))+1 ||
			!sup.buf.Has(r.seg) || req.buf.Has(r.seg) || req.isGranted(r.seg) {
			continue
		}
		if req.linkGrants[r.nbIdx] >= perLink {
			continue // this link's period capacity is exhausted
		}
		req.linkGrants[r.nbIdx]++
		ws.reqCount.inc(r.from)
		sh.proposals = append(sh.proposals, proposal{sup: sid, from: r.from, seg: r.seg, nbIdx: r.nbIdx})
	}
}

// proposeShared proposes grants under an aggregate outbound budget with
// randomized, distinct-first service order.
func (s *Sim) proposeShared(ws *workerScratch, sh *shardScratch, sid overlay.NodeID, reqs []pullRequest, rng *rand.Rand) {
	sup := s.nodes[sid]
	if sup.out.Available() < 1 {
		return
	}
	// Deterministic shuffle from the shard's RNG stream.
	rng.Shuffle(len(reqs), func(i, j int) { reqs[i], reqs[j] = reqs[j], reqs[i] })
	ws.seen.begin()     // distinct segments proposed so far
	ws.reqCount.begin() // per-requester proposals in this queue
	propose := func(r pullRequest) bool {
		req := s.nodes[r.from]
		if !req.alive || req.in.Available() < int(ws.reqCount.get(r.from))+1 ||
			!sup.buf.Has(r.seg) || req.buf.Has(r.seg) || req.isGranted(r.seg) {
			return false
		}
		sup.out.Take(1)
		ws.seen.add(r.seg)
		ws.reqCount.inc(r.from)
		sh.proposals = append(sh.proposals, proposal{sup: sid, from: r.from, seg: r.seg, nbIdx: r.nbIdx})
		return true
	}
	// Pass 1: distinct segments only; queue entries deferred by the
	// distinct-first rule are collected for the duplicate pass (an entry
	// proposed once must not be proposed again — the grant is pending).
	ws.retry = ws.retry[:0]
	for i, r := range reqs {
		if sup.out.Available() < 1 {
			break
		}
		if ws.seen.has(r.seg) {
			ws.retry = append(ws.retry, int32(i))
			continue
		}
		propose(r)
	}
	// Pass 2: spend leftover capacity on duplicate segments.
	for _, i := range ws.retry {
		if sup.out.Available() < 1 {
			break
		}
		propose(reqs[i])
	}
}
