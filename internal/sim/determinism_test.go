package sim

import (
	"reflect"
	"testing"

	"gossipstream/internal/netmodel"
	"gossipstream/internal/stats"
)

// resultsEqual compares two Results field by field, including the bit
// accounting and the optional ratio series.
func resultsEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.Algorithm != b.Algorithm || a.Nodes != b.Nodes || a.Cohort != b.Cohort {
		t.Errorf("%s: header diverged: %+v vs %+v", label, a, b)
	}
	if a.ControlBits != b.ControlBits {
		t.Errorf("%s: controlBits %d vs %d", label, a.ControlBits, b.ControlBits)
	}
	if a.DataBits != b.DataBits {
		t.Errorf("%s: dataBits %d vs %d", label, a.DataBits, b.DataBits)
	}
	if a.UnfinishedS1 != b.UnfinishedS1 || a.UnpreparedS2 != b.UnpreparedS2 {
		t.Errorf("%s: incomplete counts diverged", label)
	}
	if a.PlayedSegments != b.PlayedSegments || a.StalledSlots != b.StalledSlots {
		t.Errorf("%s: continuity accounting diverged", label)
	}
	if a.MeasuredTicks != b.MeasuredTicks || a.HitHorizon != b.HitHorizon {
		t.Errorf("%s: window diverged", label)
	}
	if !reflect.DeepEqual(a.FinishS1Times, b.FinishS1Times) ||
		!reflect.DeepEqual(a.PrepareS2Times, b.PrepareS2Times) ||
		!reflect.DeepEqual(a.StartS2Times, b.StartS2Times) {
		t.Errorf("%s: per-node event times diverged", label)
	}
	seriesEqual := func(name string, x, y *stats.Series) {
		if (x == nil) != (y == nil) {
			t.Errorf("%s: %s presence diverged", label, name)
			return
		}
		if x != nil && (!reflect.DeepEqual(x.X, y.X) || !reflect.DeepEqual(x.Y, y.Y)) {
			t.Errorf("%s: %s series diverged", label, name)
		}
	}
	seriesEqual("undeliveredS1", a.UndeliveredS1, b.UndeliveredS1)
	seriesEqual("deliveredS2", a.DeliveredS2, b.DeliveredS2)
	if len(a.Windows) != len(b.Windows) {
		t.Errorf("%s: window counts diverged: %d vs %d", label, len(a.Windows), len(b.Windows))
		return
	}
	for i := range a.Windows {
		if !reflect.DeepEqual(a.Windows[i], b.Windows[i]) {
			t.Errorf("%s: window %d diverged:\n%+v\nvs\n%+v", label, i, a.Windows[i], b.Windows[i])
		}
	}
	if (a.Audit == nil) != (b.Audit == nil) || (a.Audit != nil && *a.Audit != *b.Audit) {
		t.Errorf("%s: transport ledger diverged:\n%+v\nvs\n%+v", label, a.Audit, b.Audit)
	}
}

// testPings synthesizes a heterogeneous per-node ping table: varied
// sub-period delays so sub-tick arrival order differs from injection
// order, and real spread around any by-ping partition cut.
func testPings(n int) []int {
	pings := make([]int, n)
	for i := range pings {
		pings[i] = 20 + 35*(i%13)
	}
	return pings
}

// TestEngineWorkerCountInvariance is the determinism regression test of
// the sharded engine: the same Config (including seeds) run on the serial
// engine and with 1, 2 and 8 workers must produce identical Results —
// every event time, ratio point, and the controlBits/dataBits accounting.
func TestEngineWorkerCountInvariance(t *testing.T) {
	scenarios := []struct {
		name string
		mut  func(*Config)
	}{
		{"shared", func(c *Config) { c.SharedOutbound = true }},
		{"perlink", func(c *Config) { c.SharedOutbound = false }},
		{"shared-churn", func(c *Config) {
			c.SharedOutbound = true
			c.Churn = &ChurnConfig{LeaveFraction: 0.05, JoinFraction: 0.05}
		}},
		{"perlink-normal-algo", func(c *Config) {
			c.SharedOutbound = false
			c.NewAlgorithm = Normal
		}},
		// The scenario engine's events phase under the full event alphabet:
		// a serial handoff chain with a churn burst, a flash crowd, a
		// bandwidth shift, a plain measurement window — and a round-trip
		// handoff: the initial speaker (pinned to node 2) is demoted back
		// to listener at 120 and retakes the floor at 135. Every event
		// must be worker-count invariant.
		{"scripted-chain", func(c *Config) {
			c.SharedOutbound = true
			c.FirstSource = 2
			c.Churn = &ChurnConfig{LeaveFraction: 0.02, JoinFraction: 0.02}
			c.Script = &Script{Events: []Event{
				SwitchAt(25, -1),
				FlashCrowdAt(35, 40, 120),
				ChurnBurstAt(45, 15, 0.08, 0.05),
				SwitchAt(70, -1),
				BandwidthShiftAt(85, 0.7),
				SwitchAt(110, 5),
				DemoteAt(120, 2),
				SwitchAt(135, 2),
				MeasureAt(160, 25),
			}, Duration: 200}
		}},
		// The sub-tick netmodel transport under stress: multi-tick flights
		// (latency storm), a loss burst, and a partition that severs
		// messages already in flight, plus churn (joiners take the default
		// ping) and a demote — the in-flight message state, its sub-tick
		// pop order and the millisecond delay accounting must all be
		// worker-count invariant.
		{"netmodel", func(c *Config) {
			c.SharedOutbound = true
			c.Churn = &ChurnConfig{LeaveFraction: 0.02, JoinFraction: 0.02}
			c.Net = &netmodel.Config{PingMS: testPings(180), DefaultPingMS: 120, JitterMS: 400, Loss: 0.05}
			c.Script = &Script{Events: []Event{
				SwitchAt(25, -1),
				LatencyShiftAt(35, 12),
				PartitionAt(45, 0.4),
				LossBurstAt(55, 15, 0.3),
				HealAt(75),
				LatencyShiftAt(80, 1),
				SwitchAt(95, -1),
				DemoteAt(120, -1),
				SwitchAt(135, -1),
			}, Duration: 170}
		}},
		// The same stress script on the QuantizeTicks compatibility
		// transport (the pre-subtick tick-floored model), with the
		// partition latency-clustered instead of uniform: both partition
		// assignments and both arrival-ordering modes are worker-count
		// invariant. The heterogeneous ping table matters — it puts real
		// nodes on both sides of the by-ping quantile cut (an empty table
		// would degenerate the split to the uniform hash).
		{"netmodel-quantized", func(c *Config) {
			c.SharedOutbound = true
			c.Churn = &ChurnConfig{LeaveFraction: 0.02, JoinFraction: 0.02}
			c.Net = &netmodel.Config{PingMS: testPings(180), DefaultPingMS: 120, JitterMS: 400, Loss: 0.05, QuantizeTicks: true}
			c.Script = &Script{Events: []Event{
				SwitchAt(25, -1),
				LatencyShiftAt(35, 12),
				PartitionByPingAt(45, 0.4),
				LossBurstAt(55, 15, 0.3),
				HealAt(75),
				LatencyShiftAt(80, 1),
				SwitchAt(95, -1),
				DemoteAt(120, -1),
				SwitchAt(135, -1),
			}, Duration: 170}
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			run := func(workers int) (*Result, Config) {
				g := testTopology(t, 180, 33)
				cfg := quickConfig(g, Fast)
				cfg.TrackRatios = true
				sc.mut(&cfg)
				cfg.Workers = workers
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res, cfg
			}
			serial, cfg := run(0) // the serial engine
			if err := CheckInvariants(cfg, serial); err != nil {
				t.Errorf("%s: run invariants violated: %v", sc.name, err)
			}
			for _, workers := range []int{1, 2, 8} {
				res, _ := run(workers)
				resultsEqual(t, sc.name, serial, res)
			}
		})
	}
}
