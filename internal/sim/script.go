package sim

import (
	"fmt"
	"math"
	"sort"

	"gossipstream/internal/overlay"
)

// An Event is one tick-scheduled change of the simulated world: the
// currency of the scenario engine. A run executes a Script — an ordered
// timeline of events — through the `events` pipeline phase, which fires
// at the start of each tick, before arrivals. Events are serial (they
// mutate global structure: the timeline, the membership directory, node
// rates), so the engine's shard/merge determinism contract holds
// trivially; any randomness an event draws comes from a fresh per-event
// stream derived via engine.SeedFor with the rngEvents tag, never from a
// worker-dependent source.
//
// Construct events with the XxxAt helpers: the zero value of To pins
// node 0, so building Event literals by hand risks the same zero-value
// ambiguity Config.NewSource used to have.
type Event struct {
	// Tick schedules the event: it fires at the start of that tick.
	Tick int
	// Kind selects the event type and which parameter fields apply.
	Kind EventKind

	// To pins the node promoted to source by an EvSwitchSource (node 0 is
	// a valid target); negative picks a uniformly random alive non-source
	// node. A pinned target that is dead, out of range, or already a
	// source falls back to the random pick. For an EvDemoteSource, To is
	// the ex-source to demote (negative: the most recently retired one).
	To overlay.NodeID
	// Failure makes the switch an abrupt source crash instead of a
	// planned handoff: the old source leaves the overlay (membership
	// repairs around it) and the stream is truncated at the last segment
	// id any other alive node holds — segments that never left the
	// crashed speaker's machine are lost.
	Failure bool
	// Horizon bounds the switch measurement window in ticks
	// (0 → Config.HorizonTicks).
	Horizon int

	// Ticks is the duration of an EvMeasureWindow or EvChurnBurst.
	Ticks int

	// Leave and Join are the per-tick churn fractions of an EvChurnBurst,
	// overriding Config.Churn for the burst's duration.
	Leave, Join float64

	// Count is the batch size of an EvFlashCrowd.
	Count int
	// Backlog bounds a flash-crowd joiner's catch-up backlog in segments:
	// joiners anchor at most Backlog segments behind the stream head.
	// 0 anchors at the current session's beginning (full catch-up, the
	// conference-latecomer semantics).
	Backlog int

	// Factor is the EvBandwidthShift rate multiplier, applied to every
	// non-source node's base profile (1.0 restores the baseline) — and
	// the EvLatencyShift propagation multiplier.
	Factor float64

	// Prob is the EvLossBurst per-message loss probability, overriding
	// the netmodel baseline for Ticks ticks.
	Prob float64

	// Frac is the EvPartition split fraction: the expected share of
	// nodes hashed onto the far side of the partition.
	Frac float64

	// ByPing makes an EvPartition split by round-trip ping instead of a
	// uniform hash: the low-ping cluster (the Frac-quantile of the trace
	// ping table) lands on one side — latency-clustered geographic
	// islands rather than a random bisection.
	ByPing bool
}

// EventKind enumerates the scenario event types.
type EventKind uint8

const (
	// EvSwitchSource ends the current source's session and promotes a new
	// source — a planned handoff, or an abrupt crash when Failure is set.
	// Opens a switch measurement window (one switch-metrics block per
	// event in Result.Windows).
	EvSwitchSource EventKind = iota + 1
	// EvMeasureWindow opens a plain measurement window for Ticks ticks:
	// playback continuity and communication bits, without switch
	// semantics. Used to quantify disruption from churn bursts or flash
	// crowds in scenarios that do not switch.
	EvMeasureWindow
	// EvChurnBurst overrides the baseline churn with Leave/Join fractions
	// for Ticks ticks (a churn storm).
	EvChurnBurst
	// EvFlashCrowd joins Count fresh nodes at once through the membership
	// protocol; unlike churn joiners (who adopt their neighbors' playback
	// position) they play the current stream from its beginning — the
	// catch-up backlog of a crowd arriving late to a live event.
	EvFlashCrowd
	// EvBandwidthShift scales every non-source node's rates by Factor.
	EvBandwidthShift
	// EvLatencyShift scales every subsequent message's propagation delay
	// by Factor (a latency storm; 1 restores the baseline). Messages
	// already in flight keep their original arrival tick. Requires
	// Config.Net.
	EvLatencyShift
	// EvLossBurst overrides the transport loss probability with Prob for
	// Ticks ticks (a lossy-uplink episode). Requires Config.Net.
	EvLossBurst
	// EvPartition splits the overlay in two: each node is assigned a
	// side (Frac the expected far-side share, seeded from a fresh
	// rngEvents stream; ByPing clusters the split by trace ping instead
	// of a uniform hash), and no traffic — buffer maps, requests or
	// data, including messages already in flight — crosses the boundary
	// until an EvHeal. Requires Config.Net.
	EvPartition
	// EvHeal ends the active partition. Requires Config.Net.
	EvHeal
	// EvDemoteSource turns an ex-source back into a listener: its base
	// inbound rate returns, it rejoins playback at its neighbors' current
	// position, and it becomes eligible to retake the floor at a later
	// SwitchSource (the round-trip handoff). To pins the ex-source to
	// demote; negative demotes the most recently retired one.
	EvDemoteSource
)

// NeedsNet reports whether the event kind requires the netmodel
// transport (Config.Net) to be enabled.
func (k EventKind) NeedsNet() bool {
	switch k {
	case EvLatencyShift, EvLossBurst, EvPartition, EvHeal:
		return true
	}
	return false
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvSwitchSource:
		return "switch"
	case EvMeasureWindow:
		return "measure"
	case EvChurnBurst:
		return "churnburst"
	case EvFlashCrowd:
		return "crowd"
	case EvBandwidthShift:
		return "bandwidth"
	case EvLatencyShift:
		return "latency"
	case EvLossBurst:
		return "lossburst"
	case EvPartition:
		return "partition"
	case EvHeal:
		return "heal"
	case EvDemoteSource:
		return "demote"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// SwitchAt schedules a planned source handoff (to < 0: random successor).
func SwitchAt(tick int, to overlay.NodeID) Event {
	return Event{Tick: tick, Kind: EvSwitchSource, To: to}
}

// CrashAt schedules an abrupt source failure with successor to
// (to < 0: random successor).
func CrashAt(tick int, to overlay.NodeID) Event {
	return Event{Tick: tick, Kind: EvSwitchSource, To: to, Failure: true}
}

// MeasureAt schedules a plain measurement window of the given length.
func MeasureAt(tick, ticks int) Event {
	return Event{Tick: tick, Kind: EvMeasureWindow, Ticks: ticks}
}

// ChurnBurstAt schedules a churn burst of the given length and fractions.
func ChurnBurstAt(tick, ticks int, leave, join float64) Event {
	return Event{Tick: tick, Kind: EvChurnBurst, Ticks: ticks, Leave: leave, Join: join}
}

// FlashCrowdAt schedules a batch arrival of count nodes; backlog bounds
// their catch-up backlog in segments (0: the whole current session).
func FlashCrowdAt(tick, count, backlog int) Event {
	return Event{Tick: tick, Kind: EvFlashCrowd, Count: count, Backlog: backlog}
}

// BandwidthShiftAt schedules a rate shift of every non-source node.
func BandwidthShiftAt(tick int, factor float64) Event {
	return Event{Tick: tick, Kind: EvBandwidthShift, Factor: factor}
}

// LatencyShiftAt schedules a propagation-delay shift (factor 1 restores
// the baseline). Requires Config.Net.
func LatencyShiftAt(tick int, factor float64) Event {
	return Event{Tick: tick, Kind: EvLatencyShift, Factor: factor}
}

// LossBurstAt schedules a loss burst: the transport loss probability
// becomes prob for the given number of ticks. Requires Config.Net.
func LossBurstAt(tick, ticks int, prob float64) Event {
	return Event{Tick: tick, Kind: EvLossBurst, Ticks: ticks, Prob: prob}
}

// PartitionAt schedules a network partition with the given expected
// far-side fraction. Requires Config.Net.
func PartitionAt(tick int, frac float64) Event {
	return Event{Tick: tick, Kind: EvPartition, Frac: frac}
}

// PartitionByPingAt schedules a latency-clustered network partition: the
// sides split by trace ping around the frac-quantile instead of a
// uniform hash. Requires Config.Net.
func PartitionByPingAt(tick int, frac float64) Event {
	return Event{Tick: tick, Kind: EvPartition, Frac: frac, ByPing: true}
}

// HealAt schedules the end of the active partition. Requires Config.Net.
func HealAt(tick int) Event {
	return Event{Tick: tick, Kind: EvHeal}
}

// DemoteAt schedules an ex-source's demotion back to listener (node < 0:
// the most recently retired source).
func DemoteAt(tick int, node overlay.NodeID) Event {
	return Event{Tick: tick, Kind: EvDemoteSource, To: node}
}

// Script is a declarative event timeline driving one run. A nil
// Config.Script selects the implicit paper script — a single planned
// switch at WarmupTicks measured for HorizonTicks — so the scenario
// engine and the classic single-switch path are one code path.
type Script struct {
	// Events fire in Tick order; same-tick events fire in slice order.
	Events []Event
	// Duration caps the run length in ticks. 0 derives it from the
	// timeline — every window gets room to reach its horizon, and the run
	// ends early once all events have fired and every window has closed.
	// A positive Duration is honored exactly: the run executes that many
	// ticks (a window still open at the cap closes as Interrupted).
	Duration int
}

// Validate reports script errors.
func (sc *Script) Validate() error {
	if len(sc.Events) == 0 && sc.Duration <= 0 {
		return fmt.Errorf("sim: empty script needs a positive Duration")
	}
	if sc.Duration < 0 {
		return fmt.Errorf("sim: negative script Duration %d", sc.Duration)
	}
	for i, ev := range sc.Events {
		if ev.Tick < 0 {
			return fmt.Errorf("sim: event %d at negative tick %d", i, ev.Tick)
		}
		// NaN passes every range check below (it fails both sides of any
		// comparison), so screen the float parameters for finiteness first.
		for _, f := range [...]float64{ev.Leave, ev.Join, ev.Factor, ev.Prob, ev.Frac} {
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("sim: event %d: non-finite parameter %v", i, f)
			}
		}
		switch ev.Kind {
		case EvSwitchSource:
			if ev.Horizon < 0 {
				return fmt.Errorf("sim: event %d: negative horizon %d", i, ev.Horizon)
			}
		case EvMeasureWindow:
			if ev.Ticks <= 0 {
				return fmt.Errorf("sim: event %d: measure window needs positive Ticks", i)
			}
		case EvChurnBurst:
			if ev.Ticks <= 0 {
				return fmt.Errorf("sim: event %d: churn burst needs positive Ticks", i)
			}
			if ev.Leave < 0 || ev.Leave >= 1 || ev.Join < 0 || ev.Join >= 1 {
				return fmt.Errorf("sim: event %d: churn fractions (%v, %v) out of [0,1)", i, ev.Leave, ev.Join)
			}
		case EvFlashCrowd:
			if ev.Count <= 0 {
				return fmt.Errorf("sim: event %d: flash crowd needs positive Count", i)
			}
			if ev.Backlog < 0 {
				return fmt.Errorf("sim: event %d: negative backlog %d", i, ev.Backlog)
			}
		case EvBandwidthShift:
			if ev.Factor <= 0 {
				return fmt.Errorf("sim: event %d: bandwidth factor %v must be positive", i, ev.Factor)
			}
		case EvLatencyShift:
			if ev.Factor <= 0 {
				return fmt.Errorf("sim: event %d: latency factor %v must be positive", i, ev.Factor)
			}
		case EvLossBurst:
			if ev.Ticks <= 0 {
				return fmt.Errorf("sim: event %d: loss burst needs positive Ticks", i)
			}
			if ev.Prob < 0 || ev.Prob >= 1 {
				return fmt.Errorf("sim: event %d: loss probability %v out of [0,1)", i, ev.Prob)
			}
		case EvPartition:
			if ev.Frac <= 0 || ev.Frac >= 1 {
				return fmt.Errorf("sim: event %d: partition fraction %v out of (0,1)", i, ev.Frac)
			}
		case EvHeal, EvDemoteSource:
			// No parameters to validate.
		default:
			return fmt.Errorf("sim: event %d: unknown kind %d", i, ev.Kind)
		}
	}
	return nil
}

// sorted returns the events ordered by tick (stable, so same-tick events
// keep their authored order).
func (sc *Script) sorted() []Event {
	out := make([]Event, len(sc.Events))
	copy(out, sc.Events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Tick < out[j].Tick })
	return out
}
