// Package sim is the gossip-based P2P streaming simulator the paper's
// evaluation (Section 5) runs on: a deterministic, time-stepped model of
// pull-based mesh streaming with heterogeneous bandwidth, FIFO buffers,
// periodic buffer-map exchange, supplier-side contention, playback state
// machines, and scripted world events (source switches and crashes,
// churn bursts, flash crowds, bandwidth shifts — see Script).
//
// One tick runs the phase pipeline (events → arrivals → generate →
// refill → plan/serve rounds → deliver-or-transit → playback → churn →
// record); Config.Net swaps the instant deliver phase for the netmodel
// transport's sub-tick transit. A run is a pure function of its Config
// (including seeds): re-running reproduces every transfer and metric
// bit-for-bit at any Config.Workers setting, per the shard/merge
// determinism contract of internal/sim/engine. The full architecture —
// pipeline, determinism rule, extension recipes — is documented in
// docs/ARCHITECTURE.md.
package sim
