package sim

import (
	"gossipstream/internal/buffer"
	"gossipstream/internal/segment"
)

// This file is the per-node protocol core: the playback/session state
// machine and the need-window computation every gossipstream peer runs
// once per scheduling period, extracted from the simulator's phases so
// that a second execution backend can drive the same protocol step. Two
// consumers exist today:
//
//   - the simulator's playback and plan phases (phase_world.go,
//     phase_plan.go) call these methods on the nodeState's embedded
//     Playback, exactly as the monolithic phases used to inline them —
//     the extraction is behavior-preserving bit for bit;
//
//   - the live runtime (internal/runtime) drives one Playback per peer
//     goroutine on the wall clock, with the same sessions/needs/advance
//     semantics but buffer maps decoded from real transport frames.
//
// Everything here is pure node-local state: no Sim, no RNG, no engine.
// The measurement hooks (finish-S1 / prepare-S2 / start-S2 ticks) stay
// with the caller — Advance reports which sessions started and finished
// so each backend can do its own window accounting.

// Playback is one peer's playback and session-discovery state machine
// over the serial session timeline. The zero value is NOT ready to use;
// a fresh peer starts with Known=1 (it knows the first session) and
// Anchor at its playback entry point.
type Playback struct {
	// SessionIdx indexes the timeline session being played or awaited.
	SessionIdx int
	// Known is the number of timeline sessions the peer has discovered
	// (a neighbor advertising a segment at or past a session's begin
	// reveals that session).
	Known int
	// Active reports whether playback is currently consuming segments.
	Active bool
	// Playhead is the next segment playback will consume.
	Playhead segment.ID
	// Anchor is the first segment of the peer's playback: joiners adopt
	// a late anchor ("follow its neighbors' current steps", Section 5.4).
	Anchor segment.ID
}

// NewPlayback returns the state of a peer entering the stream at anchor,
// playing the session with the given timeline index, having discovered
// known sessions.
func NewPlayback(anchor segment.ID, sessionIdx, known int) Playback {
	return Playback{SessionIdx: sessionIdx, Known: known, Playhead: anchor, Anchor: anchor}
}

// WindowLo is the lowest segment id the peer still cares about: its
// playhead once playing (or once parked past a finished session), its
// playback anchor before that. It is the lower edge of the request
// window and the reference point q0/Q1 measurements count from.
func (pb *Playback) WindowLo() segment.ID {
	if pb.Active {
		return pb.Playhead
	}
	if pb.Playhead > pb.Anchor {
		// Between sessions: playhead parked past the previous session.
		return pb.Playhead
	}
	return pb.Anchor
}

// Discover advances the known-session count past every session whose
// begin the advertised high-water mark has reached — the paper's
// synchronization mechanism: the new source embeds the previous stream's
// ending id in its first segments, so seeing any S2 segment reveals the
// session boundary. It also clamps SessionIdx into the timeline (a
// defensive bound; the index only runs past the end transiently while a
// successor session is being appended).
func (pb *Playback) Discover(sessions []segment.Session, maxAdvert segment.ID) {
	for pb.Known < len(sessions) && maxAdvert >= sessions[pb.Known].Begin {
		pb.Known++
	}
	if pb.SessionIdx >= len(sessions) {
		pb.SessionIdx = len(sessions) - 1
	}
}

// NeedWindows computes the peer's two undelivered request windows for
// the period: the current stream's window — [WindowLo, maxAdvert],
// clipped to the session end and to one buffer capacity — and, once the
// successor session is discovered, the first qs segments of the new
// stream. Segments already held and segments in the granted in-flight
// set are excluded. Results are appended to needOld/needNew (reset to
// length zero first) and returned, so callers can reuse backing arrays
// across periods.
func (pb *Playback) NeedWindows(buf *buffer.Buffer, sessions []segment.Session, maxAdvert segment.ID, bufferCap, qs int, granted []segment.ID, needOld, needNew []segment.ID) ([]segment.ID, []segment.ID) {
	dst, split := pb.NeedWindowsInto(buf, sessions, maxAdvert, bufferCap, qs, granted, needOld[:0])
	needNew = append(needNew[:0], dst[split:]...)
	return dst[:split:split], needNew
}

// NeedWindowsInto is the arena form of NeedWindows: both windows are
// appended to dst — the old-stream window first — and the returned split
// index separates them (needOld = dst[base:split], needNew = dst[split:],
// where base is len(dst) at the call). The simulator points many nodes'
// windows into one per-shard arena this way, paying append growth once
// per shard instead of once per node.
func (pb *Playback) NeedWindowsInto(buf *buffer.Buffer, sessions []segment.Session, maxAdvert segment.ID, bufferCap, qs int, granted, dst []segment.ID) ([]segment.ID, int) {
	cur := sessions[pb.SessionIdx]

	lo := pb.WindowLo()
	hi := maxAdvert
	if !cur.Open() && hi > cur.End {
		hi = cur.End
	}
	if winHi := lo + segment.ID(bufferCap) - 1; hi > winHi {
		hi = winHi
	}
	if hi >= lo {
		dst = appendMissing(dst, buf, granted, lo, hi)
	}

	split := len(dst)
	if next := pb.SessionIdx + 1; next < pb.Known {
		ns := sessions[next]
		nhi := ns.Begin + segment.ID(qs) - 1
		if !ns.Open() && nhi > ns.End {
			nhi = ns.End
		}
		dst = appendMissing(dst, buf, granted, ns.Begin, nhi)
	}
	return dst, split
}

// appendMissing appends the ids in [lo, hi] absent from the buffer and
// not in the granted in-flight set to dst. The granted scan is linear —
// the set holds at most Inbound·τ entries per period (and is empty at
// round 0 of classic runs), so a flat slice beats a map.
func appendMissing(dst []segment.ID, buf *buffer.Buffer, granted []segment.ID, lo, hi segment.ID) []segment.ID {
	for id := lo; id <= hi; id++ {
		if buf.Has(id) {
			continue
		}
		inFlight := false
		for _, g := range granted {
			if g == id {
				inFlight = true
				break
			}
		}
		if !inFlight {
			dst = append(dst, id)
		}
	}
	return dst
}

// PlaybackStep reports what one Advance did, so the caller can do its
// own measurement accounting (the simulator stamps finish-S1 /
// prepare-S2 / start-S2 ticks; the live runtime reports the same events
// to its collector).
type PlaybackStep struct {
	// Played counts segments consumed this period; Stalled counts
	// playback slots lost to a hole at the playhead while mid-stream.
	Played, Stalled int
	// Started is the timeline index of the session whose playback
	// started this period, -1 otherwise.
	Started int
	// Finished is the timeline index of the session played to its end
	// this period, -1 otherwise.
	Finished int
}

// Advance runs one scheduling period of the playback state machine:
// start (the Q-consecutive rule, or the first-qs rule when entering a
// successor session at its beginning), consume up to perTick segments,
// stall on a hole, and transition to the next session when the current
// one is played out. q and qs are the paper's startup thresholds,
// perTick is p·τ.
func (pb *Playback) Advance(buf *buffer.Buffer, sessions []segment.Session, q, qs, perTick int) PlaybackStep {
	st := PlaybackStep{Started: -1, Finished: -1}
	if pb.SessionIdx >= len(sessions) {
		return st // finished every session that exists
	}
	cur := sessions[pb.SessionIdx]
	if !pb.Active {
		if !pb.tryStart(buf, cur, q, qs) {
			return st
		}
		st.Started = pb.SessionIdx
	}
	for consumed := 0; consumed < perTick; consumed++ {
		if !cur.Open() && pb.Playhead > cur.End {
			break
		}
		if !buf.Has(pb.Playhead) {
			// Stall: hole at the playhead. The remaining playback slots
			// of this period are lost (continuity accounting).
			st.Stalled = perTick - consumed
			return st
		}
		pb.Playhead++
		st.Played++
	}
	if !cur.Open() && pb.Playhead > cur.End {
		st.Finished = pb.SessionIdx
		pb.Active = false
		pb.SessionIdx++
		pb.Anchor = cur.End + 1
		pb.Playhead = pb.Anchor
	}
	return st
}

// tryStart checks the stream start conditions: Q consecutive segments
// from the playback anchor for a peer entering a stream mid-way or at
// its beginning; the first qs segments for a peer starting a successor
// session at its beginning (completed playback of the previous stream
// is implied by SessionIdx having advanced).
func (pb *Playback) tryStart(buf *buffer.Buffer, cur segment.Session, q, qs int) bool {
	if pb.SessionIdx > 0 && pb.Anchor == cur.Begin {
		// Starting a successor session: need its first qs segments.
		need := qs
		if !cur.Open() && cur.Len() < need {
			need = cur.Len()
		}
		if buf.ConsecutiveFrom(cur.Begin) < need {
			return false
		}
	} else if buf.ConsecutiveFrom(pb.Anchor) < q {
		return false
	}
	pb.Active = true
	pb.Playhead = pb.Anchor
	return true
}

// Prepared reports whether the peer holds the entire startup window of a
// session beginning at begin — the paper's prepare-S2 condition (all of
// the first qs segments delivered). Undelivered-count zero over the
// window is equivalent to qs consecutive from its begin.
func Prepared(buf *buffer.Buffer, begin segment.ID, qs int) bool {
	return buf.ConsecutiveFrom(begin) >= qs
}
