package sim

import (
	"math/rand"
	"slices"
	"sort"

	"gossipstream/internal/bitfield"
	"gossipstream/internal/core"
	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
	"gossipstream/internal/sim/engine"
)

// The plan phase runs every alive non-source node's scheduler and routes
// the resulting pull requests to their suppliers. Nodes are sharded on
// the engine grid; each shard plans its nodes with a dedicated RNG stream
// and buffers its requests in a per-shard outbox, which the merge step
// routes into the suppliers' queues in shard order — so the queue
// contents are identical at any worker count. On the serial engine the
// merge is one walk; on the parallel engine each outbox is stably
// bucketed by destination shard and a second sharded pass gathers each
// supplier shard's slice of every outbox in source-shard order, which
// reproduces the serial queue contents exactly (a supplier's requests
// within one outbox keep their planning order — stable bucketing — and
// outboxes are visited in the same shard order).

// phaseSchedule drives the per-period plan/serve rounds: planning and
// serving repeat up to ServeRounds times, because the period is one
// second while a pull round-trip is tens of milliseconds — a real node
// re-requests segments its first-choice supplier had no capacity for.
// Budgets persist across rounds (capacity is per period), and segments
// granted in any round land at period end (one overlay hop per period).
func (s *Sim) phaseSchedule() {
	s.sessions = s.tl.SessionsInto(s.sessions)
	s.ensureShards(len(s.nodes))
	for i := range s.shards {
		s.shards[i].landed = s.shards[i].landed[:0]
	}
	s.diagRequests, s.diagCandidates, s.diagPlanned = 0, 0, 0
	for s.round = 0; s.round < s.cfg.ServeRounds; s.round++ {
		s.granted = false
		s.sched.Run() // plan, then serve
		if !s.granted && s.round > 0 {
			break // no grants: further rounds cannot progress
		}
	}
}

// planRound is the parallel half of one scheduling round. On round 0 it
// also snapshots each node's plan view (neighbor suppliers + undelivered
// windows) for the period and accounts the buffer-map exchange: each
// alive node receives one 620-bit map per alive neighbor per period
// (retry rounds reuse the same maps).
func (s *Sim) planRound() {
	n := len(s.nodes)
	shards := s.ensureShards(n)
	round := s.round
	parallel := s.pool.Workers() > 1
	if !parallel {
		for i := range s.incoming {
			s.incoming[i] = s.incoming[i][:0]
		}
	}
	s.pool.Run(shards, func(worker, shard int) {
		ws := s.workers[worker]
		sh := &s.shards[shard]
		sh.requests = sh.requests[:0]
		sh.controlBits = 0
		sh.diagRequests, sh.diagCandidates, sh.diagPlanned = 0, 0, 0
		if round == 0 {
			// New period: the plan-view arenas are rebuilt from scratch
			// (buildView repopulates them for every planning node below).
			sh.supArena = sh.supArena[:0]
			sh.supAdjArena = sh.supAdjArena[:0]
			sh.needArena = sh.needArena[:0]
		}
		rng := ws.seedRNG(engine.SeedFor(s.cfg.Seed, rngPlan, s.tick, round, shard))
		wire := int64(bitfield.WireBits(s.cfg.BufferCap))
		lo, hi := engine.ShardSpan(n, shard)
		for i := lo; i < hi; i++ {
			nd := s.nodes[i]
			if !nd.alive {
				continue
			}
			// Map exchange cost: nd receives its alive neighbors' maps
			// (maps do not cross an active partition).
			if s.win.active && round == 0 {
				for _, v := range s.g.Neighbors(nd.id) {
					if s.nodes[v].alive && !s.blocked(nd.id, v) {
						sh.controlBits += wire
					}
				}
			}
			if nd.isSource || nd.profile.In <= 0 || nd.in.Available() < 1 {
				continue
			}
			s.planNode(ws, sh, nd, round, rng)
		}
		if parallel {
			// Stable bucketing by destination shard: a supplier's requests
			// keep their planning order, so the sharded gather below
			// reproduces the serial merge's queue contents exactly.
			slices.SortStableFunc(sh.requests, func(a, b routedRequest) int {
				return engine.ShardOf(int(a.sup)) - engine.ShardOf(int(b.sup))
			})
		}
	})
	// Scalar reduce in shard order (identical on both engines).
	for si := 0; si < shards; si++ {
		sh := &s.shards[si]
		s.controlBits += sh.controlBits
		s.diagRequests += sh.diagRequests
		s.diagCandidates += sh.diagCandidates
		s.diagPlanned += sh.diagPlanned
	}
	if !parallel {
		// Serial merge: route every shard's requests in shard order.
		for si := 0; si < shards; si++ {
			for _, rr := range s.shards[si].requests {
				s.incoming[rr.sup] = append(s.incoming[rr.sup], rr.req)
			}
		}
		return
	}
	// Parallel gather, sharded over *suppliers*: each worker fills its own
	// shard's queues by visiting every outbox's slice for that shard in
	// source-shard order — same contents, same order, no write conflicts.
	s.pool.Run(shards, func(_, d int) {
		lo, hi := engine.ShardSpan(n, d)
		for i := lo; i < hi; i++ {
			s.incoming[i] = s.incoming[i][:0]
		}
		for si := 0; si < shards; si++ {
			sh := &s.shards[si]
			rlo, rhi := destShardRange(sh.requests, d)
			for _, rr := range sh.requests[rlo:rhi] {
				s.incoming[rr.sup] = append(s.incoming[rr.sup], rr.req)
			}
		}
	})
}

// destShardRange returns the subrange of a destination-sorted outbox
// addressed to suppliers in shard d.
func destShardRange(reqs []routedRequest, d int) (lo, hi int) {
	lo = sort.Search(len(reqs), func(i int) bool {
		return engine.ShardOf(int(reqs[i].sup)) >= d
	})
	hi = lo + sort.Search(len(reqs)-lo, func(i int) bool {
		return engine.ShardOf(int(reqs[lo+i].sup)) > d
	})
	return lo, hi
}

// planNode runs one node's scheduler for the round and queues its
// requests in the shard outbox.
func (s *Sim) planNode(ws *workerScratch, sh *shardScratch, n *nodeState, round int, rng *rand.Rand) {
	if round == 0 {
		s.buildView(sh, n)
	}
	for i := range n.linkReqs {
		n.linkReqs[i] = 0 // per-round prefetch request counters
	}
	ws.env = core.Env{
		Tau:       s.cfg.Tau,
		P:         s.cfg.P,
		Q:         float64(s.cfg.Q),
		Inbound:   n.profile.In,
		Playhead:  n.WindowLo(),
		Suppliers: ws.env.Suppliers[:0],
	}
	ws.supAdj = ws.supAdj[:0]
	for k := range n.viewSuppliers {
		sup := n.viewSuppliers[k]
		if round > 0 {
			// Skip neighbors that signalled "busy" in the previous round:
			// exhausted aggregate outbound (shared mode) or an exhausted
			// link to this node (per-link mode).
			nb := s.nodes[sup.ID]
			if s.cfg.SharedOutbound {
				if nb.out.Available() < 1 {
					continue
				}
			} else if int(n.linkGrants[n.viewSupAdj[k]]) >= s.linkCap(nb) {
				continue
			}
		}
		ws.env.Suppliers = append(ws.env.Suppliers, sup)
		ws.supAdj = append(ws.supAdj, n.viewSupAdj[k])
	}

	// Needs: the cached per-period windows, minus segments granted in
	// earlier rounds of this period (in flight, must not be re-requested).
	needOld, needNew := n.needOld, n.needNew
	ws.seen.begin()
	if round > 0 && len(n.granted) > 0 {
		for _, id := range n.granted {
			ws.seen.add(id)
		}
		needOld = filterSeen(ws.needOld[:0], n.needOld, &ws.seen)
		ws.needOld = needOld
		needNew = filterSeen(ws.needNew[:0], n.needNew, &ws.seen)
		ws.needNew = needNew
	}
	if len(needOld) == 0 && len(needNew) == 0 {
		return
	}
	ws.env.NeedOld, ws.env.NeedNew = needOld, needNew

	ws.algo.Plan(&ws.env, &ws.plan)
	sh.diagRequests += len(ws.plan.Requests)
	sh.diagCandidates += len(needOld) + len(needNew)
	sh.diagPlanned++
	for _, req := range ws.plan.Requests {
		sh.requests = append(sh.requests, routedRequest{
			sup: overlay.NodeID(req.Supplier),
			req: pullRequest{
				from:     n.id,
				seg:      req.Segment,
				expected: req.ExpectedAt,
				nbIdx:    ws.supAdj[req.SupplierIndex],
			},
		})
	}
	if !s.cfg.DisablePrefetch {
		s.prefetch(ws, sh, n, rng)
	}
}

// filterSeen appends the ids of src absent from seen to dst.
func filterSeen(dst, src []segment.ID, seen *segSet) []segment.ID {
	for _, id := range src {
		if !seen.has(id) {
			dst = append(dst, id)
		}
	}
	return dst
}

// buildView snapshots the node's per-period plan view: its alive
// neighbors as suppliers (with their adjacency slots) and its undelivered
// windows. Built once per period — the view is stable across the retry
// rounds because buffers, rates and playheads only change at period
// boundaries; rounds re-filter it for busy suppliers and in-flight
// segments. Discovery of a new session happens here — the node notices
// neighbors advertising segments past the current session's end.
//
// The view lives as spans of the shard's arenas (the node fields are
// windows into them), appended shard-locally by the worker that owns the
// node — so the arena layout, like the view contents, is a pure function
// of shard state and the determinism contract is untouched.
func (s *Sim) buildView(sh *shardScratch, n *nodeState) {
	supBase := len(sh.supArena)
	maxAdvert := segment.None
	for ni, v := range s.g.Neighbors(n.id) {
		nb := s.nodes[v]
		if !nb.alive || s.blocked(n.id, v) {
			// Dead — or unreachable across an active partition: no maps,
			// no requests, no supply until the partition heals.
			continue
		}
		if len(sh.supArena)-supBase == core.MaxSuppliers {
			// Hubs created by the random augmentation can exceed the
			// scheduler's supplier mask; a node evaluates at most
			// MaxSuppliers neighbors per period (far beyond the M=5 a
			// real deployment maintains).
			break
		}
		if nb.maxSeen > maxAdvert {
			maxAdvert = nb.maxSeen
		}
		rate := s.linkRate(nb)
		if s.cfg.SharedOutbound {
			rate = nb.out.Rate()
		}
		sh.supArena = append(sh.supArena, core.Supplier{
			ID:   core.SupplierID(v),
			Rate: rate,
			View: nb.buf,
		})
		sh.supAdjArena = append(sh.supAdjArena, int32(ni))
	}
	n.viewSuppliers = sh.supArena[supBase:len(sh.supArena):len(sh.supArena)]
	n.viewSupAdj = sh.supAdjArena[supBase:len(sh.supAdjArena):len(sh.supAdjArena)]
	if maxAdvert == segment.None {
		n.needOld, n.needNew = nil, nil
		return
	}

	// Session discovery and the undelivered request windows: the shared
	// per-node protocol core (peercore.go), driven here against same-tick
	// buffer state and in the live runtime against decoded wire maps.
	n.Discover(s.sessions, maxAdvert)
	needBase := len(sh.needArena)
	arena, split := n.NeedWindowsInto(n.buf, s.sessions, maxAdvert,
		s.cfg.BufferCap, s.cfg.Qs, n.granted, sh.needArena)
	sh.needArena = arena
	n.needOld = arena[needBase:split:split]
	n.needNew = arena[split:len(arena):len(arena)]
}

// prefetch spends the node's leftover inbound budget on uniformly random
// missing segments of the node's *current* stream. This is the substrate
// behaviour of every data-driven mesh (random useful-piece selection): it
// decorrelates neighborhood holdings so all links stay useful. It runs
// identically under both switch algorithms, after — and never instead of —
// their prioritized requests.
//
// Crucially, prefetch never touches the next session's segments: how much
// inbound a node grants the new source before finishing the old one is
// exactly the decision the paper's switch algorithms make, and the
// emergent dissemination speed of S2 is the effect being measured.
func (s *Sim) prefetch(ws *workerScratch, sh *shardScratch, n *nodeState, rng *rand.Rand) {
	budget := n.in.Available() - len(ws.plan.Requests)
	if budget <= 0 {
		return
	}
	// Segments the plan already requested this round must not be asked
	// for again (ws.seen already stamps the in-flight set).
	for _, r := range ws.plan.Requests {
		ws.seen.add(r.Segment)
	}
	pool := append(ws.pool[:0], ws.env.NeedOld...)
	ws.pool = pool
	// Partial Fisher-Yates: draw random candidates until the budget or the
	// pool is exhausted.
	for k := 0; k < len(pool) && budget > 0; k++ {
		j := k + rng.Intn(len(pool)-k)
		pool[k], pool[j] = pool[j], pool[k]
		id := pool[k]
		if ws.seen.has(id) {
			continue
		}
		sup, ni := s.pickSupplier(n, id, rng)
		if sup < 0 {
			continue
		}
		n.linkReqs[ni]++
		sh.requests = append(sh.requests, routedRequest{
			sup: sup,
			req: pullRequest{from: n.id, seg: id, nbIdx: ni},
		})
		budget--
	}
}

// pickSupplier chooses a uniformly random neighbor that holds the segment
// and whose link to n still has request capacity this period; -1 if none.
// The second return is the neighbor's adjacency slot.
func (s *Sim) pickSupplier(n *nodeState, id segment.ID, rng *rand.Rand) (overlay.NodeID, int32) {
	best, bestIdx := overlay.NodeID(-1), int32(-1)
	count := 0
	for ni, v := range s.g.Neighbors(n.id) {
		nb := s.nodes[v]
		if !nb.alive || !nb.buf.Has(id) || s.blocked(n.id, v) {
			continue
		}
		if s.cfg.SharedOutbound {
			if nb.out.Available() < 1 {
				continue
			}
		} else if int(n.linkGrants[ni]+n.linkReqs[ni]) >= s.linkCap(nb) {
			continue
		}
		count++
		if rng.Intn(count) == 0 {
			best, bestIdx = v, int32(ni)
		}
	}
	return best, bestIdx
}
