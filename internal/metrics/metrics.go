// Package metrics aggregates simulation results across repeated runs:
// per-size means, reduction ratios, and point-wise series averaging for
// the figure tracks. It sits between the raw sim.Result values and the
// experiment tables.
package metrics

import (
	"fmt"
	"math"

	"gossipstream/internal/sim"
	"gossipstream/internal/stats"
)

// PairSample is one (topology, seed) run of both algorithms on identical
// conditions.
type PairSample struct {
	N      int
	Seed   int64
	Fast   *sim.Result
	Normal *sim.Result
}

// SizeRow is the aggregate of all samples at one network size — one bar
// group of Figures 6/10, one point of Figures 7/8/11/12.
type SizeRow struct {
	N       int
	Samples int

	// Mean times in seconds since the switch.
	FastFinishS1    float64
	FastPrepareS2   float64
	NormalFinishS1  float64
	NormalPrepareS2 float64

	// Reduction is the paper's headline ratio:
	// (normal switch time − fast switch time) / normal switch time.
	Reduction float64

	// Communication overhead (control bits / data bits).
	FastOverhead   float64
	NormalOverhead float64

	// Completion diagnostics: cohort nodes that never prepared in-horizon
	// (should be zero in a healthy run).
	FastUnprepared   int
	NormalUnprepared int
}

// AggregateBySize groups samples by N and averages each group's metrics.
// Rows come back sorted by N ascending.
func AggregateBySize(samples []PairSample) []SizeRow {
	byN := map[int][]PairSample{}
	order := []int{}
	for _, s := range samples {
		if _, seen := byN[s.N]; !seen {
			order = append(order, s.N)
		}
		byN[s.N] = append(byN[s.N], s)
	}
	sortInts(order)
	rows := make([]SizeRow, 0, len(order))
	for _, n := range order {
		rows = append(rows, aggregateGroup(n, byN[n]))
	}
	return rows
}

func aggregateGroup(n int, group []PairSample) SizeRow {
	row := SizeRow{N: n, Samples: len(group)}
	var ff, fp, nf, np, fo, no []float64
	for _, s := range group {
		ff = append(ff, s.Fast.AvgFinishS1())
		fp = append(fp, s.Fast.AvgPrepareS2())
		nf = append(nf, s.Normal.AvgFinishS1())
		np = append(np, s.Normal.AvgPrepareS2())
		fo = append(fo, s.Fast.Overhead())
		no = append(no, s.Normal.Overhead())
		row.FastUnprepared += s.Fast.UnpreparedS2
		row.NormalUnprepared += s.Normal.UnpreparedS2
	}
	row.FastFinishS1 = stats.Mean(ff)
	row.FastPrepareS2 = stats.Mean(fp)
	row.NormalFinishS1 = stats.Mean(nf)
	row.NormalPrepareS2 = stats.Mean(np)
	row.FastOverhead = stats.Mean(fo)
	row.NormalOverhead = stats.Mean(no)
	row.Reduction = stats.ReductionRatio(row.NormalPrepareS2, row.FastPrepareS2)
	return row
}

// String implements fmt.Stringer with the headline columns.
func (r SizeRow) String() string {
	return fmt.Sprintf("N=%-5d finishS1 fast=%.2f normal=%.2f | prepareS2 fast=%.2f normal=%.2f | reduction=%.1f%% | overhead fast=%.4f normal=%.4f",
		r.N, r.FastFinishS1, r.NormalFinishS1, r.FastPrepareS2, r.NormalPrepareS2,
		r.Reduction*100, r.FastOverhead, r.NormalOverhead)
}

// AverageSeries averages several series point-wise on a shared integer x
// grid (seconds). Series may have different lengths; each x averages the
// series that have a value there (carrying their last value forward so a
// finished run keeps contributing its terminal ratio).
func AverageSeries(label string, in []*stats.Series) *stats.Series {
	out := &stats.Series{Label: label}
	if len(in) == 0 {
		return out
	}
	maxX := 0.0
	for _, s := range in {
		if s == nil || s.Len() == 0 {
			continue
		}
		if x := s.X[s.Len()-1]; x > maxX {
			maxX = x
		}
	}
	for x := 1.0; x <= maxX+0.5; x++ {
		sum, cnt := 0.0, 0
		for _, s := range in {
			if s == nil || s.Len() == 0 {
				continue
			}
			v := s.YAt(x)
			if !math.IsNaN(v) {
				sum += v
				cnt++
			}
		}
		if cnt > 0 {
			out.Append(x, sum/float64(cnt))
		}
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
