package metrics

import (
	"math"
	"testing"

	"gossipstream/internal/sim"
	"gossipstream/internal/stats"
)

func fakeResult(alg string, finish, prepare float64, control, data int64) *sim.Result {
	return &sim.Result{
		Algorithm: alg,
		SwitchMetrics: sim.SwitchMetrics{
			Nodes:          100,
			Cohort:         98,
			FinishS1Times:  []float64{finish - 1, finish, finish + 1},
			PrepareS2Times: []float64{prepare - 2, prepare, prepare + 2},
			ControlBits:    control,
			DataBits:       data,
		},
	}
}

func TestAggregateBySize(t *testing.T) {
	samples := []PairSample{
		{N: 500, Seed: 1, Fast: fakeResult("fast", 10, 12, 620, 62000), Normal: fakeResult("normal", 9, 16, 620, 62000)},
		{N: 500, Seed: 2, Fast: fakeResult("fast", 12, 14, 620, 62000), Normal: fakeResult("normal", 11, 18, 620, 62000)},
		{N: 100, Seed: 1, Fast: fakeResult("fast", 6, 8, 310, 31000), Normal: fakeResult("normal", 5, 10, 310, 31000)},
	}
	rows := AggregateBySize(samples)
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	if rows[0].N != 100 || rows[1].N != 500 {
		t.Fatalf("rows not sorted by N: %v, %v", rows[0].N, rows[1].N)
	}
	r := rows[1]
	if r.Samples != 2 {
		t.Errorf("samples = %d", r.Samples)
	}
	if math.Abs(r.FastPrepareS2-13) > 1e-9 {
		t.Errorf("fast prepare = %v, want 13", r.FastPrepareS2)
	}
	if math.Abs(r.NormalPrepareS2-17) > 1e-9 {
		t.Errorf("normal prepare = %v, want 17", r.NormalPrepareS2)
	}
	wantRed := (17.0 - 13.0) / 17.0
	if math.Abs(r.Reduction-wantRed) > 1e-9 {
		t.Errorf("reduction = %v, want %v", r.Reduction, wantRed)
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestAverageSeries(t *testing.T) {
	a := &stats.Series{}
	b := &stats.Series{}
	for x := 1.0; x <= 5; x++ {
		a.Append(x, 1.0)
	}
	for x := 1.0; x <= 3; x++ {
		b.Append(x, 0.0)
	}
	avg := AverageSeries("avg", []*stats.Series{a, b})
	if avg.Len() != 5 {
		t.Fatalf("averaged length = %d, want 5", avg.Len())
	}
	// Where both exist: 0.5; past b's end its last value (0) carries.
	if _, y := avg.At(0); y != 0.5 {
		t.Errorf("avg[0] = %v, want 0.5", y)
	}
	if _, y := avg.At(4); y != 0.5 {
		t.Errorf("avg[4] = %v, want 0.5 (carry-forward)", y)
	}
}

func TestAverageSeriesEmpty(t *testing.T) {
	avg := AverageSeries("none", nil)
	if avg.Len() != 0 {
		t.Error("empty input must yield empty series")
	}
	avg = AverageSeries("nil-members", []*stats.Series{nil, {}})
	if avg.Len() != 0 {
		t.Error("nil members must be skipped")
	}
}
