// Package netmodel is the simulator's message-level transport model: a
// deterministic sub-tick delay model derived from trace ping times, a
// per-message loss probability, and network partitions. Without it the
// engine delivers every granted segment instantly and losslessly at the
// end of its tick; with it, a granted segment becomes a Message carrying
// a continuous arrival timestamp in milliseconds (propagation derived
// from the endpoint ping times, plus caller-supplied jitter), may be
// lost, and is dropped at the boundary of an active partition. The
// transit phase drains every message whose timestamp falls inside the
// current scheduling period, in timestamp order, so two grants issued
// the same tick arrive in their true sub-tick order and delay metrics
// resolve below one period. Config.QuantizeTicks restores the original
// tick-floored behavior bit for bit.
//
// The Model is deliberately RNG-free: jitter values and loss draws are
// made by the caller from dedicated engine.SeedFor streams, so the model
// itself is a pure state machine and the engine's shard/merge
// determinism contract (docs/ARCHITECTURE.md) extends to the in-flight
// message queue. The Message shape is the intended seam for a future
// real-socket runtime: a transport that delivers the same (From, To,
// Seg, ArrivalMS) tuples over real links slots into the same transit
// phase.
package netmodel
