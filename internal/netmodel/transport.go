package netmodel

import "gossipstream/internal/overlay"

// The transit seam. The Message shape plus the delay/loss/partition
// policy below are the full transport-facing surface of the network
// model, and they now have two consumers:
//
//   - the simulator's transit phase: Model.Send injects a Message into
//     the per-destination-shard heaps, PopDue drains it on the virtual
//     clock (internal/sim's `transit` phase);
//
//   - the live runtime (internal/runtime): peers exchange the same
//     Message shape as real frames over channel or UDP transports, and
//     the shaped transports apply LinkPolicy on the wall clock — delay
//     a frame by DelayMS, drop it with LossProb, sever it with Blocked.
//
// Keeping the policy behind an interface is what makes the seam
// swappable: scenario events (latency storms, loss bursts, partitions,
// heals) mutate one *Model, and whichever backend is executing — heap
// drain or socket delivery — observes the change on its next message.

// LinkPolicy is the delay/loss/partition surface of the transport
// model: everything a message carrier needs to decide when a message
// arrives, whether it is dropped, and whether its link is severed.
// *Model satisfies it (the simulator's heaps and the runtime's shaped
// transports share one instance per run); Flat is the self-contained
// implementation for carriers that run without a model.
type LinkPolicy interface {
	// DelayMS is the continuous link delay for one message between two
	// endpoints, with the caller's jitter draw already included.
	DelayMS(a, b overlay.NodeID, jitterMS float64) float64
	// JitterMS is the per-message uniform jitter amplitude (0 = none;
	// the caller can skip its jitter stream entirely).
	JitterMS() float64
	// LossProb is the per-message loss probability in effect at the
	// given scheduling tick (loss bursts are tick-bounded).
	LossProb(tick int) float64
	// Blocked reports whether the link between two nodes is severed by
	// an active partition.
	Blocked(a, b overlay.NodeID) bool
}

// Model is the stateful LinkPolicy — the compile-time assertion pins
// the seam.
var _ LinkPolicy = (*Model)(nil)

// Flat is the trivial LinkPolicy: one constant propagation delay, one
// constant loss probability, no jitter, no partitions. It is what a
// live transport runs with when no network model is configured (Delay
// and Loss zero: deliver immediately, drop nothing — the raw-socket
// deployment where the real network provides delay and loss), and what
// unit tests use to pin shaping behavior without a full Model.
type Flat struct {
	// Delay is the flat one-way link delay in milliseconds.
	Delay float64
	// Loss is the flat per-message loss probability in [0, 1).
	Loss float64
}

// DelayMS returns the flat delay plus the caller's jitter draw.
func (f Flat) DelayMS(a, b overlay.NodeID, jitterMS float64) float64 { return f.Delay + jitterMS }

// JitterMS returns 0: Flat itself never asks for jitter.
func (f Flat) JitterMS() float64 { return 0 }

// LossProb returns the flat loss probability at every tick.
func (f Flat) LossProb(tick int) float64 { return f.Loss }

// Blocked returns false: Flat has no partitions.
func (f Flat) Blocked(a, b overlay.NodeID) bool { return false }

var _ LinkPolicy = Flat{}
