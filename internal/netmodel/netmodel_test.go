package netmodel

import (
	"testing"

	"gossipstream/internal/overlay"
	"gossipstream/internal/sim/engine"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Loss: 1.0},
		{Loss: -0.1},
		{JitterMS: -1},
		{DefaultPingMS: -5},
		{PingMS: []int{10, -3}},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("accepted invalid config %+v", c)
		}
	}
	if err := (Config{Loss: 0.3, JitterMS: 50, PingMS: []int{10, 20}}).Validate(); err != nil {
		t.Errorf("rejected valid config: %v", err)
	}
	if d := (Config{}).Defaulted().DefaultPingMS; d != DefaultPingMS {
		t.Errorf("DefaultPingMS = %d, want %d", d, DefaultPingMS)
	}
}

func TestDelayTicks(t *testing.T) {
	m := New(Config{PingMS: []int{100, 300}, DefaultPingMS: 60}, 1.0)
	// Mean one-way propagation (100+300)/2 = 200 ms < 1000 ms: no extra
	// ticks — the classic end-of-tick delivery.
	if d := m.DelayTicks(0, 1, 0); d != 0 {
		t.Errorf("sub-period delay gave %d extra ticks", d)
	}
	// Jitter pushes it over one period.
	if d := m.DelayTicks(0, 1, 900); d != 1 {
		t.Errorf("200+900 ms = %d ticks, want 1", d)
	}
	// A latency storm scales propagation but not jitter.
	m.SetLatencyFactor(10)
	if d := m.DelayTicks(0, 1, 0); d != 2 {
		t.Errorf("10x200 ms = %d ticks, want 2", d)
	}
	m.SetLatencyFactor(1)
	// Nodes beyond the ping table use the default.
	if d := m.DelayTicks(0, 99, 0); d != 0 {
		t.Errorf("default-ping delay gave %d extra ticks", d)
	}
	if p := m.Ping(99); p != 60 {
		t.Errorf("Ping(99) = %d, want the default 60", p)
	}
}

// TestSubtickPopOrder is the tentpole's ordering contract: two grants
// issued the same tick with different ping-derived delays pop in delay
// order, not injection order — the sub-tick transport distinguishes
// arrivals the quantized model collapsed onto one period boundary.
func TestSubtickPopOrder(t *testing.T) {
	// Node 2 is a slow peer (800 ms), node 3 a fast one (100 ms); both
	// send to node 1 (ping 100) in tick 0, slow first.
	cfg := Config{PingMS: []int{60, 100, 800, 100}}
	m := New(cfg, 1.0)
	m.Send(0, 2, 1, 7, 0) // delay (800+100)/2 = 450 ms, injected first
	m.Send(0, 3, 1, 8, 0) // delay (100+100)/2 = 100 ms, injected second
	var got []int
	m.SettleDelivered(m.PopDue(0, 0, func(msg Message) {
		got = append(got, int(msg.Seg))
		want := 450.0
		if msg.Seg == 8 {
			want = 100.0
		}
		if d := msg.DelayMS(1.0); d != want {
			t.Errorf("seg %d delay = %v ms, want %v", msg.Seg, d, want)
		}
	}))
	if len(got) != 2 || got[0] != 8 || got[1] != 7 {
		t.Errorf("sub-tick pop order = %v, want [8 7] (delay order)", got)
	}

	// The same two sends under QuantizeTicks collapse onto the period
	// boundary and pop in injection order — the pre-subtick behavior.
	cfg.QuantizeTicks = true
	q := New(cfg, 1.0)
	q.Send(0, 2, 1, 7, 0)
	q.Send(0, 3, 1, 8, 0)
	got = got[:0]
	q.SettleDelivered(q.PopDue(0, 0, func(msg Message) { got = append(got, int(msg.Seg)) }))
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Errorf("quantized pop order = %v, want [7 8] (injection order)", got)
	}
}

// TestSubtickDueTick pins that the sub-tick transport never changes
// *which* tick a message lands in — only the order and the reported
// delay: the arrival timestamp falls in the period the quantized model
// floored onto.
func TestSubtickDueTick(t *testing.T) {
	m := New(Config{DefaultPingMS: 100}, 1.0)
	q := New(Config{DefaultPingMS: 100, QuantizeTicks: true}, 1.0)
	for _, jit := range []float64{0, 850, 950, 1900, 2850} {
		if sub, quant := m.Send(3, 0, 1, 1, jit), q.Send(3, 0, 1, 1, jit); sub != quant {
			t.Errorf("jitter %v ms: sub-tick due %d != quantized due %d", jit, sub, quant)
		}
	}
	// Every message pops exactly at its due tick under both models.
	for tick := 3; tick <= 6; tick++ {
		var subSegs, quantSegs int
		m.SettleDelivered(m.PopDue(0, tick, func(Message) { subSegs++ }))
		q.SettleDelivered(q.PopDue(0, tick, func(Message) { quantSegs++ }))
		if subSegs != quantSegs {
			t.Errorf("tick %d: sub-tick popped %d, quantized popped %d", tick, subSegs, quantSegs)
		}
	}
	if m.InFlight() != 0 || q.InFlight() != 0 {
		t.Errorf("stragglers left in flight: %d sub-tick, %d quantized", m.InFlight(), q.InFlight())
	}
}

// TestSendPopOrder pins the heap contract: messages pop in (arrival
// timestamp, injection sequence) order regardless of push order, per
// destination shard.
func TestSendPopOrder(t *testing.T) {
	m := New(Config{DefaultPingMS: 10}, 1.0)
	// Four messages to node 1 (shard 0) with staggered delays via jitter.
	m.Send(0, 2, 1, 7, 2500) // due 2
	m.Send(0, 3, 1, 8, 0)    // due 0
	m.Send(0, 4, 1, 9, 1500) // due 1
	m.Send(0, 5, 1, 10, 0)   // due 0, injected after seg 8
	if m.InFlight() != 4 {
		t.Fatalf("inFlight = %d, want 4", m.InFlight())
	}

	var got []int
	popped := m.PopDue(0, 1, func(msg Message) { got = append(got, int(msg.Seg)) })
	m.SettleDelivered(popped)
	want := []int{8, 10, 9} // due 0 in injection order, then due 1
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
	if m.InFlight() != 1 {
		t.Errorf("inFlight = %d after settle, want 1", m.InFlight())
	}
	// The straggler pops at its due tick.
	popped = m.PopDue(0, 2, func(msg Message) {
		if msg.Seg != 7 {
			t.Errorf("straggler seg = %d, want 7", msg.Seg)
		}
	})
	m.SettleDelivered(popped)
	if m.InFlight() != 0 {
		t.Errorf("inFlight = %d, want 0", m.InFlight())
	}
	// An out-of-range shard is an empty heap, not a panic.
	if n := m.PopDue(50, 100, func(Message) { t.Error("popped from empty shard") }); n != 0 {
		t.Errorf("empty shard popped %d", n)
	}
}

// TestShardRouting pins that messages land in the destination's engine
// shard.
func TestShardRouting(t *testing.T) {
	m := New(Config{DefaultPingMS: 10}, 1.0)
	far := engine.ShardSize + 3 // node in shard 1
	m.Send(0, 0, 1, 1, 0)
	m.Send(0, 0, int32ID(far), 2, 0)
	seen := map[int]bool{}
	for shard := 0; shard < 2; shard++ {
		m.PopDue(shard, 0, func(msg Message) { seen[int(msg.To)] = true })
	}
	if !seen[1] || !seen[far] {
		t.Errorf("messages not routed per shard: %v", seen)
	}
}

func TestLossBurst(t *testing.T) {
	m := New(Config{Loss: 0.05}, 1.0)
	if p := m.LossProb(10); p != 0.05 {
		t.Errorf("baseline loss = %v", p)
	}
	m.SetLossBurst(0.5, 20)
	if p := m.LossProb(19); p != 0.5 {
		t.Errorf("burst loss = %v", p)
	}
	if p := m.LossProb(20); p != 0.05 {
		t.Errorf("post-burst loss = %v", p)
	}
}

// TestPartitionSides pins the side assignment: deterministic, two-sided
// at frac 0.5, stable for ids assigned after the partition started, and
// all-clear after Heal.
func TestPartitionSides(t *testing.T) {
	m := New(Config{}, 1.0)
	if m.Blocked(1, 2) {
		t.Error("blocked without a partition")
	}
	m.Partition(0.5, 12345)
	ones, zeros := 0, 0
	for i := 0; i < 1000; i++ {
		if m.Side(int32ID(i)) == 1 {
			ones++
		} else {
			zeros++
		}
	}
	if ones < 300 || zeros < 300 {
		t.Errorf("lopsided split: %d vs %d", ones, zeros)
	}
	// Determinism: same seed, same sides.
	m2 := New(Config{}, 1.0)
	m2.Partition(0.5, 12345)
	for i := 0; i < 1000; i++ {
		if m.Side(int32ID(i)) != m2.Side(int32ID(i)) {
			t.Fatalf("side of node %d not deterministic", i)
		}
	}
	var a, b int = -1, -1
	for i := 0; i < 1000 && (a < 0 || b < 0); i++ {
		if m.Side(int32ID(i)) == 0 {
			a = i
		} else {
			b = i
		}
	}
	if !m.Blocked(int32ID(a), int32ID(b)) {
		t.Error("cross-side link not blocked")
	}
	if m.Blocked(int32ID(a), int32ID(a)) {
		t.Error("same-side link blocked")
	}
	m.Heal()
	if m.Blocked(int32ID(a), int32ID(b)) {
		t.Error("blocked after heal")
	}
}

// TestPartitionByPingSides pins the latency-clustered split: the
// low-ping cluster lands on side 1 around the frac-quantile cut, the
// assignment is a deterministic pure function of (pings, frac, seed),
// nodes beyond the ping table sit on their default-ping side, and ties
// at the cut split by the seeded hash to hit the requested fraction.
func TestPartitionByPingSides(t *testing.T) {
	// 100 low-ping nodes (20 ms) then 100 high-ping nodes (500 ms).
	pings := make([]int, 200)
	for i := range pings {
		if i < 100 {
			pings[i] = 20
		} else {
			pings[i] = 500
		}
	}
	m := New(Config{PingMS: pings, DefaultPingMS: 500}, 1.0)
	m.PartitionByPing(0.5, 42)
	for i := 0; i < 100; i++ {
		if m.Side(int32ID(i)) != 1 {
			t.Fatalf("low-ping node %d not on side 1", i)
		}
	}
	for i := 100; i < 200; i++ {
		if m.Side(int32ID(i)) != 0 {
			t.Fatalf("high-ping node %d not on side 0", i)
		}
	}
	// A churn joiner beyond the table carries the default (high) ping.
	if m.Side(int32ID(999)) != 0 {
		t.Error("default-ping joiner not on the high-ping side")
	}
	if !m.Blocked(0, 150) || m.Blocked(0, 50) || m.Blocked(150, 199) {
		t.Error("by-ping blocking does not follow the cluster sides")
	}
	// Determinism: same inputs, same sides.
	m2 := New(Config{PingMS: pings, DefaultPingMS: 500}, 1.0)
	m2.PartitionByPing(0.5, 42)
	for i := 0; i < 200; i++ {
		if m.Side(int32ID(i)) != m2.Side(int32ID(i)) {
			t.Fatalf("side of node %d not deterministic", i)
		}
	}
	m.Heal()
	if m.Blocked(0, 150) {
		t.Error("blocked after heal")
	}

	// Uniform pings: everyone ties at the cut, the seeded hash carries
	// the split, and the fraction still roughly holds.
	flat := make([]int, 1000)
	for i := range flat {
		flat[i] = 60
	}
	mf := New(Config{PingMS: flat}, 1.0)
	mf.PartitionByPing(0.3, 7)
	ones := 0
	for i := 0; i < 1000; i++ {
		if mf.Side(int32ID(i)) == 1 {
			ones++
		}
	}
	if ones < 200 || ones > 400 {
		t.Errorf("tie-broken split put %d of 1000 on side 1, want ~300", ones)
	}
}

func int32ID(i int) overlay.NodeID { return overlay.NodeID(i) }

// TestFlatPolicy pins the self-contained LinkPolicy: constant delay
// plus caller jitter, constant loss, no partitions — the raw live
// transport configuration.
func TestFlatPolicy(t *testing.T) {
	var p LinkPolicy = Flat{Delay: 40, Loss: 0.25}
	if d := p.DelayMS(1, 2, 5); d != 45 {
		t.Errorf("DelayMS = %v, want 45", d)
	}
	if p.JitterMS() != 0 {
		t.Errorf("JitterMS = %v, want 0", p.JitterMS())
	}
	if l := p.LossProb(7); l != 0.25 {
		t.Errorf("LossProb = %v, want 0.25", l)
	}
	if p.Blocked(1, 2) {
		t.Error("Flat reported a blocked link")
	}
	// The zero Flat is the deliver-everything-immediately policy.
	zero := Flat{}
	if zero.DelayMS(1, 2, 0) != 0 || zero.LossProb(0) != 0 {
		t.Error("zero Flat is not a no-op policy")
	}
}

// TestModelIsLinkPolicy pins the transit seam: the heap-backed Model
// and the runtime's flat shaper satisfy the same transport-facing
// interface, so scenario events reach both backends through one
// surface.
func TestModelIsLinkPolicy(t *testing.T) {
	m := New(Config{PingMS: []int{20, 80}, JitterMS: 0}, 1)
	var p LinkPolicy = m
	if d := p.DelayMS(0, 1, 0); d != 50 {
		t.Errorf("model DelayMS = %v, want (20+80)/2", d)
	}
	m.SetLatencyFactor(3)
	if d := p.DelayMS(0, 1, 0); d != 150 {
		t.Errorf("model DelayMS under latency shift = %v, want 150", d)
	}
	m.SetLossBurst(0.5, 10)
	if p.LossProb(9) != 0.5 || p.LossProb(10) != 0 {
		t.Error("loss burst not visible through the policy surface")
	}
	m.Partition(0.5, 42)
	blockedAny := false
	for a := overlay.NodeID(0); a < 20 && !blockedAny; a++ {
		for b := a + 1; b < 20; b++ {
			if p.Blocked(a, b) {
				blockedAny = true
				break
			}
		}
	}
	if !blockedAny {
		t.Error("no link blocked under an active 50/50 partition")
	}
	m.Heal()
	if p.Blocked(0, 1) {
		t.Error("link still blocked after heal")
	}
}
