package netmodel

import (
	"testing"

	"gossipstream/internal/overlay"
	"gossipstream/internal/sim/engine"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Loss: 1.0},
		{Loss: -0.1},
		{JitterMS: -1},
		{DefaultPingMS: -5},
		{PingMS: []int{10, -3}},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("accepted invalid config %+v", c)
		}
	}
	if err := (Config{Loss: 0.3, JitterMS: 50, PingMS: []int{10, 20}}).Validate(); err != nil {
		t.Errorf("rejected valid config: %v", err)
	}
	if d := (Config{}).Defaulted().DefaultPingMS; d != DefaultPingMS {
		t.Errorf("DefaultPingMS = %d, want %d", d, DefaultPingMS)
	}
}

func TestDelayTicks(t *testing.T) {
	m := New(Config{PingMS: []int{100, 300}, DefaultPingMS: 60}, 1.0)
	// Mean one-way propagation (100+300)/2 = 200 ms < 1000 ms: no extra
	// ticks — the classic end-of-tick delivery.
	if d := m.DelayTicks(0, 1, 0); d != 0 {
		t.Errorf("sub-period delay gave %d extra ticks", d)
	}
	// Jitter pushes it over one period.
	if d := m.DelayTicks(0, 1, 900); d != 1 {
		t.Errorf("200+900 ms = %d ticks, want 1", d)
	}
	// A latency storm scales propagation but not jitter.
	m.SetLatencyFactor(10)
	if d := m.DelayTicks(0, 1, 0); d != 2 {
		t.Errorf("10x200 ms = %d ticks, want 2", d)
	}
	m.SetLatencyFactor(1)
	// Nodes beyond the ping table use the default.
	if d := m.DelayTicks(0, 99, 0); d != 0 {
		t.Errorf("default-ping delay gave %d extra ticks", d)
	}
	if p := m.Ping(99); p != 60 {
		t.Errorf("Ping(99) = %d, want the default 60", p)
	}
}

// TestSendPopOrder pins the heap contract: messages pop in (Due, injection
// sequence) order regardless of push order, per destination shard.
func TestSendPopOrder(t *testing.T) {
	m := New(Config{DefaultPingMS: 10}, 1.0)
	// Three messages to node 1 (shard 0) with staggered delays via jitter.
	m.Send(0, 2, 1, 7, 2500) // due 2
	m.Send(0, 3, 1, 8, 0)    // due 0
	m.Send(0, 4, 1, 9, 1500) // due 1
	m.Send(0, 5, 1, 10, 0)   // due 0, injected after seg 8
	if m.InFlight() != 4 {
		t.Fatalf("inFlight = %d, want 4", m.InFlight())
	}

	var got []int
	popped := m.PopDue(0, 1, func(msg Message) { got = append(got, int(msg.Seg)) })
	m.SettleDelivered(popped)
	want := []int{8, 10, 9} // due 0 in injection order, then due 1
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v", got, want)
		}
	}
	if m.InFlight() != 1 {
		t.Errorf("inFlight = %d after settle, want 1", m.InFlight())
	}
	// The straggler pops at its due tick.
	popped = m.PopDue(0, 2, func(msg Message) {
		if msg.Seg != 7 {
			t.Errorf("straggler seg = %d, want 7", msg.Seg)
		}
	})
	m.SettleDelivered(popped)
	if m.InFlight() != 0 {
		t.Errorf("inFlight = %d, want 0", m.InFlight())
	}
	// An out-of-range shard is an empty heap, not a panic.
	if n := m.PopDue(50, 100, func(Message) { t.Error("popped from empty shard") }); n != 0 {
		t.Errorf("empty shard popped %d", n)
	}
}

// TestShardRouting pins that messages land in the destination's engine
// shard.
func TestShardRouting(t *testing.T) {
	m := New(Config{DefaultPingMS: 10}, 1.0)
	far := engine.ShardSize + 3 // node in shard 1
	m.Send(0, 0, 1, 1, 0)
	m.Send(0, 0, int32ID(far), 2, 0)
	seen := map[int]bool{}
	for shard := 0; shard < 2; shard++ {
		m.PopDue(shard, 0, func(msg Message) { seen[int(msg.To)] = true })
	}
	if !seen[1] || !seen[far] {
		t.Errorf("messages not routed per shard: %v", seen)
	}
}

func TestLossBurst(t *testing.T) {
	m := New(Config{Loss: 0.05}, 1.0)
	if p := m.LossProb(10); p != 0.05 {
		t.Errorf("baseline loss = %v", p)
	}
	m.SetLossBurst(0.5, 20)
	if p := m.LossProb(19); p != 0.5 {
		t.Errorf("burst loss = %v", p)
	}
	if p := m.LossProb(20); p != 0.05 {
		t.Errorf("post-burst loss = %v", p)
	}
}

// TestPartitionSides pins the side assignment: deterministic, two-sided
// at frac 0.5, stable for ids assigned after the partition started, and
// all-clear after Heal.
func TestPartitionSides(t *testing.T) {
	m := New(Config{}, 1.0)
	if m.Blocked(1, 2) {
		t.Error("blocked without a partition")
	}
	m.Partition(0.5, 12345)
	ones, zeros := 0, 0
	for i := 0; i < 1000; i++ {
		if m.Side(int32ID(i)) == 1 {
			ones++
		} else {
			zeros++
		}
	}
	if ones < 300 || zeros < 300 {
		t.Errorf("lopsided split: %d vs %d", ones, zeros)
	}
	// Determinism: same seed, same sides.
	m2 := New(Config{}, 1.0)
	m2.Partition(0.5, 12345)
	for i := 0; i < 1000; i++ {
		if m.Side(int32ID(i)) != m2.Side(int32ID(i)) {
			t.Fatalf("side of node %d not deterministic", i)
		}
	}
	var a, b int = -1, -1
	for i := 0; i < 1000 && (a < 0 || b < 0); i++ {
		if m.Side(int32ID(i)) == 0 {
			a = i
		} else {
			b = i
		}
	}
	if !m.Blocked(int32ID(a), int32ID(b)) {
		t.Error("cross-side link not blocked")
	}
	if m.Blocked(int32ID(a), int32ID(a)) {
		t.Error("same-side link blocked")
	}
	m.Heal()
	if m.Blocked(int32ID(a), int32ID(b)) {
		t.Error("blocked after heal")
	}
}

func int32ID(i int) overlay.NodeID { return overlay.NodeID(i) }
