package netmodel

import (
	"fmt"
	"sort"

	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
	"gossipstream/internal/sim/engine"
)

// DefaultPingMS is the fallback round-trip ping for nodes without a
// trace record (churn joiners, flash-crowd members): a middle-of-the-road
// Clip2 peer.
const DefaultPingMS = 60

// Config describes the transport model of one run. The zero value of
// every field selects a sane default via Defaulted; a nil *Config on
// sim.Config disables the model entirely (instant lossless delivery).
type Config struct {
	// PingMS holds per-node round-trip ping times in milliseconds,
	// indexed by node id — typically the ping column of the run's trace
	// (the one Clip2-DSS field the paper exploits for heterogeneity).
	// Nodes beyond the slice (churn joiners, crowd members) use
	// DefaultPingMS.
	PingMS []int
	// DefaultPingMS is the ping of nodes without a PingMS entry
	// (0 → the package DefaultPingMS constant).
	DefaultPingMS int
	// JitterMS is the amplitude of the per-message uniform jitter added
	// to the propagation delay: each message draws from [0, JitterMS).
	JitterMS float64
	// Loss is the baseline per-message loss probability in [0, 1). A
	// LossBurst event overrides it for a bounded window.
	Loss float64
	// QuantizeTicks floors every message's arrival timestamp onto whole
	// scheduling periods — the original tick-quantized transport. Under
	// it, same-tick arrivals pop in injection order (not sub-tick delay
	// order) and delivery delays are reported in whole periods, exactly
	// reproducing the pre-subtick engine bit for bit. The default (false)
	// is the sub-tick transport: continuous arrival timestamps, true
	// sub-period delay metrics.
	QuantizeTicks bool
}

// Defaulted returns a copy with zero fields replaced by defaults.
func (c Config) Defaulted() Config {
	if c.DefaultPingMS <= 0 {
		c.DefaultPingMS = DefaultPingMS
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("netmodel: loss probability %v out of [0,1)", c.Loss)
	}
	if c.JitterMS < 0 {
		return fmt.Errorf("netmodel: negative jitter %v", c.JitterMS)
	}
	if c.DefaultPingMS < 0 {
		return fmt.Errorf("netmodel: negative default ping %d", c.DefaultPingMS)
	}
	for i, p := range c.PingMS {
		if p < 0 {
			return fmt.Errorf("netmodel: node %d has negative ping %d", i, p)
		}
	}
	return nil
}

// Message is one granted segment in flight from a supplier to a
// requester. The shape is shared with the planned real-socket runtime:
// any transport that produces (From, To, Seg, ArrivalMS) tuples can feed
// the same transit phase.
type Message struct {
	From overlay.NodeID
	To   overlay.NodeID
	Seg  segment.ID
	// Sent is the tick the grant was committed; Due the tick whose
	// transit phase delivers the message — derived from ArrivalMS with
	// the same comparisons PopDue makes, so it names the actual delivery
	// tick in both ordering modes (Due == Sent reproduces the classic
	// end-of-tick delivery timing).
	Sent, Due int
	// ArrivalMS is the message's continuous arrival timestamp in
	// milliseconds since the start of the run: the send tick's start
	// plus the link delay. Under QuantizeTicks it is floored onto the
	// start of the Due period, which makes the (ArrivalMS, seq) heap
	// order degenerate to the original (Due, injection) order.
	ArrivalMS float64
	// seq is the global injection sequence number — the heap tiebreak
	// that makes equal-timestamp pops independent of heap internals.
	seq uint64
}

// DelayMS returns the message's link delay relative to its send instant:
// ArrivalMS minus the start of the Sent period.
func (m Message) DelayMS(tauSeconds float64) float64 {
	return m.ArrivalMS - float64(m.Sent)*tauSeconds*1000
}

// Model is the runtime transport state of one run: the delay/loss
// parameters, the current latency factor and partition, and the
// in-flight message heaps. Methods that mutate it (Send, PopDue,
// SetLatencyFactor, ...) are called from serial pipeline steps or — for
// PopDue — from the worker owning the destination shard, so the Model
// needs no locking.
type Model struct {
	cfg   Config
	tau   float64
	tauMS float64

	latFactor float64 // current propagation multiplier (LatencyShift)

	burstLoss  float64 // loss override while a LossBurst is active
	burstUntil int     // first tick after the burst

	partitioned bool
	partSeed    uint64
	partFrac    float64
	// Ping-clustered split state (PartitionByPing): side 1 is the
	// low-ping cluster below partPingCut, with ties at the cut broken by
	// the seeded hash with probability partTieFrac.
	partByPing  bool
	partPingCut int
	partTieFrac float64

	seq      uint64
	heaps    []msgHeap // in-flight messages, per destination shard
	inFlight int
}

// New builds the model for one run. cfg is defaulted, not validated —
// sim.Config.Validate runs Validate before any Model exists.
func New(cfg Config, tau float64) *Model {
	return &Model{cfg: cfg.Defaulted(), tau: tau, tauMS: tau * 1000, latFactor: 1}
}

// Reserve pre-sizes the per-destination-shard heaps for an expected
// in-flight population of perNode messages per node. Purely an
// allocation optimization: the heaps reach this capacity through
// amortized growth anyway, but reserving it up front keeps the warm-up
// ticks free of heap reallocations. Call before the first Send; later
// calls only ever grow the reservation.
func (m *Model) Reserve(nodes, perNode int) {
	if nodes <= 0 || perNode <= 0 {
		return
	}
	shards := engine.NumShards(nodes)
	for len(m.heaps) < shards {
		m.heaps = append(m.heaps, nil)
	}
	want := engine.ShardSize * perNode
	for i := range m.heaps {
		if cap(m.heaps[i]) < want {
			h := make(msgHeap, len(m.heaps[i]), want)
			copy(h, m.heaps[i])
			m.heaps[i] = h
		}
	}
}

// Ping returns the configured round-trip ping of a node in milliseconds.
func (m *Model) Ping(n overlay.NodeID) int {
	if int(n) < len(m.cfg.PingMS) {
		return m.cfg.PingMS[n]
	}
	return m.cfg.DefaultPingMS
}

// JitterMS returns the configured jitter amplitude (0 = no jitter, the
// caller can skip its jitter stream entirely).
func (m *Model) JitterMS() float64 { return m.cfg.JitterMS }

// Quantized reports whether the model runs in the tick-quantized
// compatibility mode (Config.QuantizeTicks).
func (m *Model) Quantized() bool { return m.cfg.QuantizeTicks }

// DelayMS is one message's continuous link delay in milliseconds:
// propagation is the mean of the two endpoints' one-way delays (ping/2
// each), scaled by the current latency factor, plus the caller-drawn
// jitter.
func (m *Model) DelayMS(a, b overlay.NodeID, jitterMS float64) float64 {
	return m.latFactor*(float64(m.Ping(a))+float64(m.Ping(b)))/2 + jitterMS
}

// DelayTicks converts one message's link delay into whole scheduling
// periods beyond the sending tick. The classic substrate's end-of-tick
// delivery is the zero of this function — a delay below one period adds
// no extra ticks, so with small pings and no latency storm the model
// reproduces the paper's timing exactly.
func (m *Model) DelayTicks(a, b overlay.NodeID, jitterMS float64) int {
	return int(m.DelayMS(a, b, jitterMS) / m.tauMS)
}

// Send injects one granted segment into the in-flight queue and returns
// its delivery tick. jitterMS is the caller's draw from its jitter
// stream (0 when jitter is disabled). The arrival timestamp is the send
// tick's start plus the continuous link delay; under QuantizeTicks it is
// floored onto the start of the due period instead, reproducing the
// original (Due, injection) pop order exactly.
func (m *Model) Send(tick int, from, to overlay.NodeID, seg segment.ID, jitterMS float64) int {
	delay := m.DelayMS(from, to, jitterMS)
	var due int
	var arrival float64
	if m.cfg.QuantizeTicks {
		// The pre-subtick floor, kept as the exact original expression —
		// the QuantizeTicks goldens pin it bit for bit.
		due = tick + int(delay/m.tauMS)
		arrival = float64(due) * m.tauMS
	} else {
		arrival = float64(tick)*m.tauMS + delay
		// Derive Due from the timestamp with the same comparisons PopDue
		// makes, so the returned tick agrees with the actual delivery
		// even when the division rounds across a period boundary.
		due = int(arrival / m.tauMS)
		for float64(due)*m.tauMS > arrival {
			due--
		}
		for float64(due+1)*m.tauMS <= arrival {
			due++
		}
	}
	shard := engine.ShardOf(int(to))
	for len(m.heaps) <= shard {
		m.heaps = append(m.heaps, nil)
	}
	m.seq++
	m.heaps[shard].push(Message{From: from, To: to, Seg: seg, Sent: tick, Due: due, ArrivalMS: arrival, seq: m.seq})
	m.inFlight++
	return due
}

// PopDue pops every message of the destination shard whose arrival
// timestamp falls within the current period (ArrivalMS < the start of
// tick+1), in (ArrivalMS, injection) order, and hands each to fn. It is
// the shard-local half of the transit phase: distinct shards touch
// distinct heaps, so concurrent PopDue calls for different shards are
// race-free. The inFlight counter is deliberately not maintained here —
// the serial merge step calls SettleDelivered with the per-shard pop
// counts.
func (m *Model) PopDue(shard, tick int, fn func(Message)) int {
	if shard >= len(m.heaps) {
		return 0
	}
	cutoff := float64(tick+1) * m.tauMS
	h := &m.heaps[shard]
	n := 0
	for len(*h) > 0 && (*h)[0].ArrivalMS < cutoff {
		fn(h.pop())
		n++
	}
	return n
}

// SettleDelivered subtracts the tick's popped message count from the
// in-flight gauge (called once, serially, after the transit merge).
func (m *Model) SettleDelivered(n int) { m.inFlight -= n }

// InFlight returns the number of messages currently in transit.
func (m *Model) InFlight() int { return m.inFlight }

// SetLatencyFactor scales every subsequent message's propagation delay
// (1 restores the baseline). Messages already in flight keep the delay
// they were injected with.
func (m *Model) SetLatencyFactor(f float64) { m.latFactor = f }

// LatencyFactor returns the current propagation multiplier.
func (m *Model) LatencyFactor() float64 { return m.latFactor }

// SetLossBurst overrides the loss probability with p until (exclusive)
// tick until.
func (m *Model) SetLossBurst(p float64, until int) {
	m.burstLoss, m.burstUntil = p, until
}

// LossProb returns the per-message loss probability in effect at tick.
func (m *Model) LossProb(tick int) float64 {
	if tick < m.burstUntil {
		return m.burstLoss
	}
	return m.cfg.Loss
}

// Partition splits the overlay in two: every node is hashed onto a side
// by the partition seed, with frac the expected fraction on side 1, and
// messages crossing the boundary are dropped at delivery time (in-flight
// messages included). The side assignment is a pure function of (seed,
// node id), so nodes that join during the partition land on a
// deterministic side too.
func (m *Model) Partition(frac float64, seed int64) {
	m.partitioned = true
	m.partByPing = false
	m.partFrac = frac
	m.partSeed = uint64(seed)
}

// PartitionByPing splits the overlay by round-trip ping instead of a
// uniform hash: the configured ping table is cut at its frac-quantile,
// the low-ping cluster lands on side 1 (CliqueStream-style latency
// islands: nearby peers stay connected to each other), and ties exactly
// at the cut are broken by the seeded hash so the expected side-1 share
// is still frac. Nodes without a ping entry carry the default ping, so
// churn joiners land on a deterministic side too. With an empty ping
// table every node ties at the cut and the split degenerates to the
// uniform hash.
func (m *Model) PartitionByPing(frac float64, seed int64) {
	m.partitioned = true
	m.partByPing = true
	m.partFrac = frac
	m.partSeed = uint64(seed)

	pings := append([]int(nil), m.cfg.PingMS...)
	sort.Ints(pings)
	want := int(frac * float64(len(pings)))
	if len(pings) == 0 || want >= len(pings) {
		// Nothing to cut below: every node ties at the default ping and
		// the hash tiebreak carries the whole split.
		m.partPingCut = m.cfg.DefaultPingMS
		m.partTieFrac = frac
		return
	}
	cut := pings[want]
	below, at := 0, 0
	for _, p := range pings {
		switch {
		case p < cut:
			below++
		case p == cut:
			at++
		}
	}
	m.partPingCut = cut
	m.partTieFrac = 0
	if at > 0 {
		m.partTieFrac = float64(want-below) / float64(at)
	}
}

// Heal ends the partition: every link carries traffic again.
func (m *Model) Heal() { m.partitioned = false }

// Partitioned reports whether a partition is active.
func (m *Model) Partitioned() bool { return m.partitioned }

// Side returns the node's partition side (0 or 1); 0 for everyone when
// no partition is active.
func (m *Model) Side(n overlay.NodeID) int {
	if !m.partitioned {
		return 0
	}
	if m.partByPing {
		switch p := m.Ping(n); {
		case p < m.partPingCut:
			return 1
		case p > m.partPingCut:
			return 0
		}
		if m.hashFrac(n) < m.partTieFrac {
			return 1
		}
		return 0
	}
	if m.hashFrac(n) < m.partFrac {
		return 1
	}
	return 0
}

// hashFrac maps a node id onto [0, 1) via the seeded splitmix64 hash —
// the uniform side assignment, and the tie-break of the ping split.
func (m *Model) hashFrac(n overlay.NodeID) float64 {
	h := splitmix64(m.partSeed ^ uint64(n))
	return float64(h>>11) / (1 << 53)
}

// Blocked reports whether the link between two nodes is severed by the
// active partition. Buffer maps, requests and data all stop crossing a
// severed link.
func (m *Model) Blocked(a, b overlay.NodeID) bool {
	return m.partitioned && m.Side(a) != m.Side(b)
}

// splitmix64 is the same finalizer the engine's SeedFor uses — a cheap,
// well-mixed 64-bit permutation for the side assignment hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// msgHeap is a binary min-heap of in-flight messages ordered by
// (ArrivalMS, seq): the injection sequence tiebreak makes the pop order
// of equal-timestamp messages a pure function of the push order. Under
// QuantizeTicks arrival timestamps sit on period boundaries, so this
// order degenerates to the original (Due, injection) order.
type msgHeap []Message

func (h msgHeap) less(i, j int) bool {
	if h[i].ArrivalMS != h[j].ArrivalMS {
		return h[i].ArrivalMS < h[j].ArrivalMS
	}
	return h[i].seq < h[j].seq
}

func (h *msgHeap) push(m Message) {
	*h = append(*h, m)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *msgHeap) pop() Message {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && (*h).less(l, smallest) {
			smallest = l
		}
		if r < last && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
}
