// Package netmodel is the simulator's message-level transport model: a
// deterministic per-link delay model derived from trace ping times, a
// per-message loss probability, and network partitions. Without it the
// engine delivers every granted segment instantly and losslessly at the
// end of its tick; with it, a granted segment becomes a Message that
// spends DelayTicks in flight (propagation derived from the endpoint
// ping times, plus caller-supplied jitter), may be lost, and is dropped
// at the boundary of an active partition.
//
// The Model is deliberately RNG-free: jitter values and loss draws are
// made by the caller from dedicated engine.SeedFor streams (the sim's
// rngNet/rngNetJit tags), so the model itself is a pure state machine
// and the engine's shard/merge determinism contract extends to the
// in-flight message queue. Messages are stored in per-destination-shard
// binary heaps keyed by (arrival tick, injection sequence): pushes
// happen in the serial serve commit, pops in the sharded transit phase,
// and both orders are independent of the worker count.
package netmodel

import (
	"fmt"

	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
	"gossipstream/internal/sim/engine"
)

// DefaultPingMS is the fallback round-trip ping for nodes without a
// trace record (churn joiners, flash-crowd members): a middle-of-the-road
// Clip2 peer.
const DefaultPingMS = 60

// Config describes the transport model of one run. The zero value of
// every field selects a sane default via Defaulted; a nil *Config on
// sim.Config disables the model entirely (instant lossless delivery).
type Config struct {
	// PingMS holds per-node round-trip ping times in milliseconds,
	// indexed by node id — typically the ping column of the run's trace
	// (the one Clip2-DSS field the paper exploits for heterogeneity).
	// Nodes beyond the slice (churn joiners, crowd members) use
	// DefaultPingMS.
	PingMS []int
	// DefaultPingMS is the ping of nodes without a PingMS entry
	// (0 → the package DefaultPingMS constant).
	DefaultPingMS int
	// JitterMS is the amplitude of the per-message uniform jitter added
	// to the propagation delay: each message draws from [0, JitterMS).
	JitterMS float64
	// Loss is the baseline per-message loss probability in [0, 1). A
	// LossBurst event overrides it for a bounded window.
	Loss float64
}

// Defaulted returns a copy with zero fields replaced by defaults.
func (c Config) Defaulted() Config {
	if c.DefaultPingMS <= 0 {
		c.DefaultPingMS = DefaultPingMS
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("netmodel: loss probability %v out of [0,1)", c.Loss)
	}
	if c.JitterMS < 0 {
		return fmt.Errorf("netmodel: negative jitter %v", c.JitterMS)
	}
	if c.DefaultPingMS < 0 {
		return fmt.Errorf("netmodel: negative default ping %d", c.DefaultPingMS)
	}
	for i, p := range c.PingMS {
		if p < 0 {
			return fmt.Errorf("netmodel: node %d has negative ping %d", i, p)
		}
	}
	return nil
}

// Message is one granted segment in flight from a supplier to a
// requester.
type Message struct {
	From overlay.NodeID
	To   overlay.NodeID
	Seg  segment.ID
	// Sent is the tick the grant was committed; Due the tick whose
	// transit phase delivers the message (Due == Sent reproduces the
	// classic end-of-tick delivery timing).
	Sent, Due int
	// seq is the global injection sequence number — the heap tiebreak
	// that makes same-tick pops independent of heap internals.
	seq uint64
}

// Model is the runtime transport state of one run: the delay/loss
// parameters, the current latency factor and partition, and the
// in-flight message heaps. Methods that mutate it (Send, PopDue,
// SetLatencyFactor, ...) are called from serial pipeline steps or — for
// PopDue — from the worker owning the destination shard, so the Model
// needs no locking.
type Model struct {
	cfg Config
	tau float64

	latFactor float64 // current propagation multiplier (LatencyShift)

	burstLoss  float64 // loss override while a LossBurst is active
	burstUntil int     // first tick after the burst

	partitioned bool
	partSeed    uint64
	partFrac    float64

	seq      uint64
	heaps    []msgHeap // in-flight messages, per destination shard
	inFlight int
}

// New builds the model for one run. cfg is defaulted, not validated —
// sim.Config.Validate runs Validate before any Model exists.
func New(cfg Config, tau float64) *Model {
	return &Model{cfg: cfg.Defaulted(), tau: tau, latFactor: 1}
}

// Ping returns the configured round-trip ping of a node in milliseconds.
func (m *Model) Ping(n overlay.NodeID) int {
	if int(n) < len(m.cfg.PingMS) {
		return m.cfg.PingMS[n]
	}
	return m.cfg.DefaultPingMS
}

// JitterMS returns the configured jitter amplitude (0 = no jitter, the
// caller can skip its jitter stream entirely).
func (m *Model) JitterMS() float64 { return m.cfg.JitterMS }

// DelayTicks converts one message's link delay into whole scheduling
// periods beyond the sending tick: propagation is the mean of the two
// endpoints' one-way delays (ping/2 each), scaled by the current latency
// factor, plus the caller-drawn jitter. The classic substrate's
// end-of-tick delivery is the zero of this function — a delay below one
// period adds no extra ticks, so with small pings and no latency storm
// the model reproduces the paper's timing exactly.
func (m *Model) DelayTicks(a, b overlay.NodeID, jitterMS float64) int {
	prop := m.latFactor * (float64(m.Ping(a)) + float64(m.Ping(b))) / 2
	return int((prop + jitterMS) / (m.tau * 1000))
}

// Send injects one granted segment into the in-flight queue and returns
// its arrival tick. jitterMS is the caller's draw from its jitter
// stream (0 when jitter is disabled).
func (m *Model) Send(tick int, from, to overlay.NodeID, seg segment.ID, jitterMS float64) int {
	due := tick + m.DelayTicks(from, to, jitterMS)
	shard := engine.ShardOf(int(to))
	for len(m.heaps) <= shard {
		m.heaps = append(m.heaps, nil)
	}
	m.seq++
	m.heaps[shard].push(Message{From: from, To: to, Seg: seg, Sent: tick, Due: due, seq: m.seq})
	m.inFlight++
	return due
}

// PopDue pops every message of the destination shard whose arrival tick
// has come, in (Due, injection) order, and hands each to fn. It is the
// shard-local half of the transit phase: distinct shards touch distinct
// heaps, so concurrent PopDue calls for different shards are race-free.
// The inFlight counter is deliberately not maintained here — the serial
// merge step calls SettleDelivered with the per-shard pop counts.
func (m *Model) PopDue(shard, tick int, fn func(Message)) int {
	if shard >= len(m.heaps) {
		return 0
	}
	h := &m.heaps[shard]
	n := 0
	for len(*h) > 0 && (*h)[0].Due <= tick {
		fn(h.pop())
		n++
	}
	return n
}

// SettleDelivered subtracts the tick's popped message count from the
// in-flight gauge (called once, serially, after the transit merge).
func (m *Model) SettleDelivered(n int) { m.inFlight -= n }

// InFlight returns the number of messages currently in transit.
func (m *Model) InFlight() int { return m.inFlight }

// SetLatencyFactor scales every subsequent message's propagation delay
// (1 restores the baseline). Messages already in flight keep the delay
// they were injected with.
func (m *Model) SetLatencyFactor(f float64) { m.latFactor = f }

// LatencyFactor returns the current propagation multiplier.
func (m *Model) LatencyFactor() float64 { return m.latFactor }

// SetLossBurst overrides the loss probability with p until (exclusive)
// tick until.
func (m *Model) SetLossBurst(p float64, until int) {
	m.burstLoss, m.burstUntil = p, until
}

// LossProb returns the per-message loss probability in effect at tick.
func (m *Model) LossProb(tick int) float64 {
	if tick < m.burstUntil {
		return m.burstLoss
	}
	return m.cfg.Loss
}

// Partition splits the overlay in two: every node is hashed onto a side
// by the partition seed, with frac the expected fraction on side 1, and
// messages crossing the boundary are dropped at delivery time (in-flight
// messages included). The side assignment is a pure function of (seed,
// node id), so nodes that join during the partition land on a
// deterministic side too.
func (m *Model) Partition(frac float64, seed int64) {
	m.partitioned = true
	m.partFrac = frac
	m.partSeed = uint64(seed)
}

// Heal ends the partition: every link carries traffic again.
func (m *Model) Heal() { m.partitioned = false }

// Partitioned reports whether a partition is active.
func (m *Model) Partitioned() bool { return m.partitioned }

// Side returns the node's partition side (0 or 1); 0 for everyone when
// no partition is active.
func (m *Model) Side(n overlay.NodeID) int {
	if !m.partitioned {
		return 0
	}
	h := splitmix64(m.partSeed ^ uint64(n))
	if float64(h>>11)/(1<<53) < m.partFrac {
		return 1
	}
	return 0
}

// Blocked reports whether the link between two nodes is severed by the
// active partition. Buffer maps, requests and data all stop crossing a
// severed link.
func (m *Model) Blocked(a, b overlay.NodeID) bool {
	return m.partitioned && m.Side(a) != m.Side(b)
}

// splitmix64 is the same finalizer the engine's SeedFor uses — a cheap,
// well-mixed 64-bit permutation for the side assignment hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// msgHeap is a binary min-heap of in-flight messages ordered by
// (Due, seq): the injection sequence tiebreak makes the pop order of
// same-tick messages a pure function of the push order.
type msgHeap []Message

func (h msgHeap) less(i, j int) bool {
	if h[i].Due != h[j].Due {
		return h[i].Due < h[j].Due
	}
	return h[i].seq < h[j].seq
}

func (h *msgHeap) push(m Message) {
	*h = append(*h, m)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !(*h).less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *msgHeap) pop() Message {
	old := *h
	top := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && (*h).less(l, smallest) {
			smallest = l
		}
		if r < last && (*h).less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		(*h)[i], (*h)[smallest] = (*h)[smallest], (*h)[i]
		i = smallest
	}
}
