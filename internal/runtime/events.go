package runtime

import (
	"gossipstream/internal/overlay"
)

// Event firing: the scenario's tick-scheduled timeline executed on the
// wall clock. Every event is resolved into an explicit Directive (see
// directive.go) and applied — in a single-process run the two happen
// back to back here; in a multi-process run the cluster coordinator
// resolves and every shard applies the broadcast directive. Role
// changes and membership travel over the control plane; network
// conditions — latency storms, loss bursts, partitions — mutate the
// transport's LinkPolicy, which severs and shapes traffic at the
// transport level exactly where the simulator's transit phase applies
// the same Model.

// fireEvents applies every event scheduled at or before the current
// tick, in timeline order — the live counterpart of the simulator's
// events phase, running while every peer is quiescent between periods.
func (r *Runner) fireEvents() {
	for r.err == nil && r.nextEvent < len(r.events) && r.events[r.nextEvent].Tick <= r.tick {
		ev := r.events[r.nextEvent]
		r.nextEvent++
		d, _, err := r.ResolveEvent(ev)
		if err != nil {
			r.err = err
			return
		}
		if d == nil {
			continue // resolution-local (churn burst bounds)
		}
		if err := r.Apply(d); err != nil {
			r.err = err
			return
		}
	}
}

// churnStep resolves and applies the baseline (or burst-overridden)
// churn at tick end, mirroring the simulator's churn phase: departures
// repair the mesh through the directory, joiners adopt their neighbors'
// current playback position.
func (r *Runner) churnStep() {
	if d := r.resolveChurn(); d != nil {
		r.applyMembership(d)
	}
}

// pickNewSource draws a uniformly random active peer that never held
// the source role, excluding old; -1 when none exists.
func (r *Runner) pickNewSource(old overlay.NodeID) overlay.NodeID {
	for tries := 0; tries < 64; tries++ {
		cand := r.dir.RandomAlive(old)
		if cand < 0 {
			return -1
		}
		if r.sourceEligible(cand) {
			return cand
		}
	}
	for _, cand := range r.dir.Alive() {
		if cand == old {
			continue
		}
		if r.sourceEligible(cand) {
			return cand
		}
	}
	return -1
}
