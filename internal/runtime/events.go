package runtime

import (
	"fmt"

	"gossipstream/internal/bandwidth"
	"gossipstream/internal/netmodel"
	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
	"gossipstream/internal/sim"
)

// Event firing: the scenario's tick-scheduled timeline executed on the
// wall clock. Role changes and membership travel over the in-process
// control plane (a deployment would use an authenticated control
// channel); network conditions — latency storms, loss bursts,
// partitions — mutate the transport's LinkPolicy, which severs and
// shapes traffic at the transport level exactly where the simulator's
// transit phase applies the same Model.

// fireEvents applies every event scheduled at or before the current
// tick, in timeline order — the live counterpart of the simulator's
// events phase, running while every peer is quiescent between periods.
func (r *Runner) fireEvents() {
	for r.err == nil && r.nextEvent < len(r.events) && r.events[r.nextEvent].Tick <= r.tick {
		ev := r.events[r.nextEvent]
		r.nextEvent++
		r.fire(ev)
	}
}

func (r *Runner) fire(ev sim.Event) {
	switch ev.Kind {
	case sim.EvSwitchSource:
		r.applySwitch(ev)
	case sim.EvMeasureWindow:
		r.closeWindow(r.tick-r.win.openTick, false, true)
		r.openWindow(false, ev.Ticks, ev)
	case sim.EvChurnBurst:
		r.burst = &sim.ChurnConfig{LeaveFraction: ev.Leave, JoinFraction: ev.Join}
		r.burstUntil = r.tick + ev.Ticks
	case sim.EvFlashCrowd:
		r.flashCrowd(ev)
	case sim.EvBandwidthShift:
		r.bwFactor = ev.Factor
		for _, h := range r.peers {
			if h.running {
				h.p.ctrlCh <- ctrlMsg{kind: ctrlBandwidth, factor: ev.Factor}
			}
		}
	case sim.EvLatencyShift:
		r.policy.mutate(func(m *netmodel.Model) { m.SetLatencyFactor(ev.Factor) })
	case sim.EvLossBurst:
		until := r.tick + ev.Ticks
		r.policy.mutate(func(m *netmodel.Model) { m.SetLossBurst(ev.Prob, until) })
	case sim.EvPartition:
		seed := r.rng.Int63()
		r.policy.mutate(func(m *netmodel.Model) {
			if ev.ByPing {
				m.PartitionByPing(ev.Frac, seed)
			} else {
				m.Partition(ev.Frac, seed)
			}
		})
	case sim.EvHeal:
		r.policy.mutate(func(m *netmodel.Model) { m.Heal() })
	case sim.EvDemoteSource:
		r.applyDemote(ev)
	}
}

// applySwitch executes one source handoff (or crash): close the old
// session through the control plane, promote the successor, open the
// switch measurement window. This is the same choreography as the
// simulator's applySwitch, with control round-trips in place of shared
// memory — the paper's assumed synchronization (the new source learns
// S1's ending id) is the stop-reply/become pair.
func (r *Runner) applySwitch(ev sim.Event) {
	cur := r.timeline[len(r.timeline)-1]
	old := overlay.NodeID(cur.Source)

	to := ev.To
	if to >= 0 {
		h, ok := r.peers[to]
		if !ok || !h.running || !h.active || h.isSource {
			to = -1 // pinned target unusable: fall back to the random pick
		}
	}
	if to < 0 {
		to = r.pickNewSource(old)
	}
	if to < 0 {
		r.err = fmt.Errorf("runtime: switch at tick %d: no eligible new source (every active peer is or was a source)", r.tick)
		return
	}

	r.closeWindow(r.tick-r.win.openTick, false, true)

	var s1End segment.ID
	oldH := r.peers[old]
	if ev.Failure {
		// The speaker crashes mid-stream: segments that never left its
		// machine are lost. The stream truncates at the highest id any
		// other active peer reported holding (the membership service's
		// best knowledge — one period stale, like any failure detector).
		s1End = cur.Begin - 1
		for id, rep := range r.lastRep {
			if r.activeListener(id) && rep.maxSeen > s1End {
				s1End = rep.maxSeen
			}
		}
		r.quitPeer(old)
		r.refreshNeighbors()
	} else {
		reply := make(chan segment.ID, 1)
		oldH.p.ctrlCh <- ctrlMsg{kind: ctrlStopSource, reply: reply}
		s1End = <-reply
	}
	r.timeline[len(r.timeline)-1].End = s1End
	r.timeline = append(r.timeline, segment.Session{
		Source: segment.SourceID(to), Begin: s1End + 1, End: segment.None,
	})

	newH := r.peers[to]
	newH.isSource = true
	newH.active = true
	newH.p.ctrlCh <- ctrlMsg{kind: ctrlBecomeSource, sessions: append([]segment.Session(nil), r.timeline...)}
	r.lastRetired = old

	horizon := ev.Horizon
	if horizon <= 0 {
		horizon = r.horizonDefault()
	}
	r.openWindow(true, horizon, ev)
}

// pickNewSource draws a uniformly random active peer that never held
// the source role, excluding old; -1 when none exists.
func (r *Runner) pickNewSource(old overlay.NodeID) overlay.NodeID {
	for tries := 0; tries < 64; tries++ {
		cand := r.dir.RandomAlive(old)
		if cand < 0 {
			return -1
		}
		if h, ok := r.peers[cand]; ok && h.running && h.active && !h.isSource {
			return cand
		}
	}
	for _, cand := range r.dir.Alive() {
		if cand == old {
			continue
		}
		if h, ok := r.peers[cand]; ok && h.running && h.active && !h.isSource {
			return cand
		}
	}
	return -1
}

// applyDemote returns an ex-source to listener duty, rejoining playback
// at its neighbors' current position — the simulator's demote rule over
// the control plane.
func (r *Runner) applyDemote(ev sim.Event) {
	id := ev.To
	if id < 0 {
		id = r.lastRetired
	}
	h, ok := r.peers[id]
	switch {
	case id < 0 || !ok:
		r.err = fmt.Errorf("runtime: demote at tick %d: no ex-source to demote", r.tick)
		return
	case !h.isSource:
		r.err = fmt.Errorf("runtime: demote at tick %d: node %d never held the source role or was already demoted", r.tick, id)
		return
	case overlay.NodeID(r.timeline[len(r.timeline)-1].Source) == id && r.timeline[len(r.timeline)-1].Open():
		r.err = fmt.Errorf("runtime: demote at tick %d: node %d is the current source", r.tick, id)
		return
	case !h.running:
		r.err = fmt.Errorf("runtime: demote at tick %d: ex-source %d is dead", r.tick, id)
		return
	}
	anchor := segment.ID(0)
	for _, v := range r.g.Neighbors(id) {
		if rep, ok := r.lastRep[v]; ok && rep.alive {
			if rep.windowLo > anchor {
				anchor = rep.windowLo
			}
		}
	}
	h.isSource = false
	h.p.ctrlCh <- ctrlMsg{
		kind:     ctrlDemote,
		sessions: append([]segment.Session(nil), r.timeline...),
		anchor:   anchor,
	}
	if id == r.lastRetired {
		r.lastRetired = -1
	}
}

// flashCrowd joins a batch of fresh peers through the membership
// directory; like the simulator's crowd members they anchor at the
// current session's beginning (bounded by the backlog cap).
func (r *Runner) flashCrowd(ev sim.Event) {
	curIdx := len(r.timeline) - 1
	anchor := r.timeline[curIdx].Begin
	if ev.Backlog > 0 {
		// The stream head, as last reported by the current source.
		if rep, ok := r.lastRep[overlay.NodeID(r.timeline[curIdx].Source)]; ok {
			if a := rep.maxSeen + 1 - segment.ID(ev.Backlog); a > anchor {
				anchor = a
			}
		}
	}
	for i := 0; i < ev.Count; i++ {
		r.join(anchor, curIdx)
	}
	r.refreshNeighbors()
}

// join spawns one fresh peer wired through the membership protocol.
func (r *Runner) join(anchor segment.ID, sessionIdx int) {
	id, _ := r.dir.Join()
	prof := bandwidth.Profile{In: bandwidth.DrawRate(r.churnRNG), Out: bandwidth.DrawRate(r.churnRNG)}
	spec := spawnSpec{
		id:         id,
		profile:    prof,
		bwFactor:   r.bwFactor,
		neighbors:  r.g.Neighbors(id),
		sessions:   r.timeline,
		anchor:     anchor,
		sessionIdx: sessionIdx,
		known:      sessionIdx + 1,
		mySession:  -1,
		seed:       r.sc.Seed ^ (int64(id)+1)*0x9e37_79b9,
	}
	if err := r.spawn(spec); err != nil {
		r.err = err
	}
}

// churnStep applies the baseline (or burst-overridden) churn at tick
// end, mirroring the simulator's churn phase: departures repair the
// mesh through the directory, joiners adopt their neighbors' current
// playback position.
func (r *Runner) churnStep() {
	cc := r.cfg.Churn
	if r.burst != nil {
		if r.tick < r.burstUntil {
			cc = r.burst
		} else {
			r.burst = nil
		}
	}
	if cc == nil {
		return
	}
	alive := r.dir.AliveCount()
	changed := false
	leaves := int(cc.LeaveFraction * float64(alive))
	curSrc := overlay.NodeID(r.timeline[len(r.timeline)-1].Source)
	for i := 0; i < leaves; i++ {
		victim := r.dir.RandomAlive(curSrc, r.lastRetired)
		if victim < 0 {
			break
		}
		h, ok := r.peers[victim]
		if !ok || !h.running || h.isSource {
			continue
		}
		r.quitPeer(victim)
		changed = true
	}
	joins := int(cc.JoinFraction * float64(alive))
	for i := 0; i < joins; i++ {
		// "A new joining node ... starts its media playback by following
		// its neighbors' current steps" (Section 5.4).
		id, neighbors := r.dir.Join()
		anchor := segment.ID(0)
		for _, v := range neighbors {
			if rep, ok := r.lastRep[v]; ok && rep.alive && rep.windowLo > anchor {
				anchor = rep.windowLo
			}
		}
		idx, known := 0, 1
		for si, s := range r.timeline {
			if s.Contains(anchor) {
				idx, known = si, si+1
			}
		}
		prof := bandwidth.Profile{In: bandwidth.DrawRate(r.churnRNG), Out: bandwidth.DrawRate(r.churnRNG)}
		spec := spawnSpec{
			id:         id,
			profile:    prof,
			bwFactor:   r.bwFactor,
			neighbors:  r.g.Neighbors(id),
			sessions:   r.timeline,
			anchor:     anchor,
			sessionIdx: idx,
			known:      known,
			mySession:  -1,
			seed:       r.sc.Seed ^ (int64(id)+1)*0x9e37_79b9,
		}
		if err := r.spawn(spec); err != nil {
			r.err = err
			return
		}
		changed = true
	}
	if changed {
		r.refreshNeighbors()
	}
}
