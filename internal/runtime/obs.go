package runtime

import (
	"sync/atomic"
	"time"

	"gossipstream/internal/obs"
)

// Live-runtime observability: per-tick metrics, the periodic stats line,
// the atomic /runz snapshot and the compact health sample the cluster
// gossips on its status stream. Everything here is observational — it
// reads runner state after the period's reports have landed and never
// feeds anything back, so an instrumented live run behaves identically
// to a bare one (modulo wall-clock noise the scheduler already absorbs).

// transportSampleEvery bounds how often the runner calls
// Transport.Stats for telemetry: on the UDP transport that call parses
// /proc/net/udp for kernel receive drops, which is far too expensive
// per tick.
const transportSampleEvery = 10

// runnerObs is the runner's registered metric set (nil when disabled).
type runnerObs struct {
	trace *obs.Trace

	tickNS   *obs.Histogram
	ticks    *obs.Counter
	overruns *obs.Counter

	sent      *obs.Counter
	delivered *obs.Counter
	lost      *obs.Counter
	reReqs    *obs.Counter
	inboxDrop *obs.Counter
	malformed *obs.Counter
	kernel    *obs.Counter

	peers      *obs.Gauge
	inboxDepth *obs.Gauge
	holes      *obs.Counter
	events     *obs.Counter
	windows    *obs.Counter
	windowOpen *obs.Gauge

	snap atomic.Pointer[RunSnapshot]
}

// newRunnerObs registers the live runtime's metric catalog. Series
// names are shared with the simulator where the semantics match, so a
// dashboard reads either backend.
func newRunnerObs(o *obs.Obs) *runnerObs {
	reg := o.Registry()
	return &runnerObs{
		trace:    o.Tracer(),
		tickNS:   reg.Histogram("gossip_tick_ns", "wall-clock duration of one scheduling period"),
		ticks:    reg.Counter("gossip_ticks_total", "scheduling periods executed"),
		overruns: reg.Counter("gossip_overruns_total", "periods whose processing outlasted the period length"),

		sent:      reg.Counter("gossip_frames_sent_total", "data frames handed to the transport"),
		delivered: reg.Counter("gossip_frames_delivered_total", "data frames that reached their destination inbox"),
		lost:      reg.Counter("gossip_frames_lost_total", "data frames lost to policy draws or severed links"),
		reReqs:    reg.Counter("gossip_frames_rerequested_total", "granted loss-induced re-requests (supplier side)"),
		inboxDrop: reg.Counter("gossip_transport_inbox_dropped_total", "frames dropped at a full peer inbox"),
		malformed: reg.Counter("gossip_transport_malformed_total", "datagrams that failed to decode"),
		kernel:    reg.Counter("gossip_kernel_udp_drops_total", "kernel-reported receive drops on the transport's UDP sockets"),

		peers:      reg.Gauge("gossip_active_peers", "running, arrived peers this period"),
		inboxDepth: reg.Gauge("gossip_inbox_depth", "deepest peer inbox observed at period end"),
		holes:      reg.Counter("gossip_playback_holes_total", "playback slots that stalled on a missing segment"),
		events:     reg.Counter("gossip_events_total", "scenario directives applied"),
		windows:    reg.Counter("gossip_windows_closed_total", "measurement windows closed"),
		windowOpen: reg.Gauge("gossip_window_open", "1 while a measurement window is accumulating"),
	}
}

// RunSnapshot is the /runz view of a live run. The runner publishes one
// atomically at every period end, so HTTP handlers read a consistent
// snapshot without touching runner state.
type RunSnapshot struct {
	Scenario      string         `json:"scenario"`
	Algo          string         `json:"algo"`
	Shard         int            `json:"shard"`
	Shards        int            `json:"shards"`
	Tick          int            `json:"tick"`
	Duration      int            `json:"duration"`
	Periods       int            `json:"periods"`
	Overruns      int            `json:"overruns"`
	ActivePeers   int            `json:"active_peers"`
	InboxDepth    int            `json:"inbox_depth"`
	WindowOpen    bool           `json:"window_open"`
	WindowsClosed int            `json:"windows_closed"`
	Transport     TransportStats `json:"transport"`
}

// Snapshot returns the latest published RunSnapshot (nil before the
// first period, or when observability is disabled).
func (r *Runner) Snapshot() *RunSnapshot {
	if r.obs == nil {
		return nil
	}
	return r.obs.snap.Load()
}

// HealthSample is the compact per-process health view a cluster worker
// piggybacks on its status heartbeat — enough for the coordinator's
// liveness table without a second reporting channel. Counters are
// cumulative over the run; the transport numbers come from the sampled
// stats cache (see transportSampleEvery).
type HealthSample struct {
	Tick         int
	Peers        int
	InboxDepth   int
	Holes        int64
	ReRequests   int64
	Overruns     int
	DataLost     int64
	InboxDropped int64
	KernelDrops  int64
}

// HealthSample assembles the current health view. Works with or
// without an attached obs bundle (the cluster gossips health even on
// un-instrumented runs).
func (r *Runner) HealthSample() HealthSample {
	r.maybeRefreshStats()
	h := HealthSample{
		Tick:         r.tick,
		Peers:        r.activeCount(),
		InboxDepth:   r.maxInboxDepth(),
		Overruns:     r.stats.Overruns,
		DataLost:     r.statsCache.DataLost,
		InboxDropped: r.statsCache.InboxDropped,
		KernelDrops:  r.statsCache.KernelDrops,
	}
	if r.obs != nil {
		h.Holes = r.obs.holes.Value()
		h.ReRequests = r.obs.reReqs.Value()
	}
	return h
}

// maxInboxDepth is the deepest owned-peer inbox right now — queued
// frames a peer has not drained, the live runtime's backlog signal.
func (r *Runner) maxInboxDepth() int {
	depth := 0
	for _, h := range r.peers {
		if h.running {
			if n := len(h.p.ep.Recv()); n > depth {
				depth = n
			}
		}
	}
	return depth
}

// maybeRefreshStats refreshes the transport stats cache at most every
// transportSampleEvery periods (Stats is expensive on UDP).
func (r *Runner) maybeRefreshStats() {
	if r.statsCacheTick >= 0 && r.tick-r.statsCacheTick < transportSampleEvery {
		return
	}
	r.refreshStats()
}

// refreshStats reads the transport counters now and mirrors them into
// the registry.
func (r *Runner) refreshStats() {
	r.statsCache = r.tr.Stats()
	r.statsCacheTick = r.tick
	if ob := r.obs; ob != nil {
		st := r.statsCache
		ob.sent.SetTotal(st.DataSent)
		ob.delivered.SetTotal(st.DataDelivered)
		ob.lost.SetTotal(st.DataLost)
		ob.inboxDrop.SetTotal(st.InboxDropped)
		ob.malformed.SetTotal(st.Malformed)
		ob.kernel.SetTotal(st.KernelDrops)
	}
}

// tickObs runs the per-period observability work after the period's
// reports landed: tick metrics, the trace line, the /runz snapshot and
// the periodic stats line. A no-op when neither obs nor periodic stats
// are configured.
func (r *Runner) tickObs(tickStart time.Time) {
	statsLine := r.opt.StatsEvery > 0 && r.opt.Logf != nil &&
		(r.tick+1)%r.opt.StatsEvery == 0
	if r.obs == nil && !statsLine {
		return
	}
	r.maybeRefreshStats()
	depth := r.maxInboxDepth()
	active := r.activeCount()
	if ob := r.obs; ob != nil {
		ns := int64(time.Since(tickStart))
		if ns <= 0 {
			ns = 1 // required trace field; omitempty must not drop it
		}
		ob.tickNS.Observe(ns)
		ob.ticks.Inc()
		ob.overruns.SetTotal(int64(r.stats.Overruns))
		ob.peers.Set(int64(active))
		ob.inboxDepth.Set(int64(depth))
		if r.win.active {
			ob.windowOpen.Set(1)
		} else {
			ob.windowOpen.Set(0)
		}
		te := obs.TraceEvent{T: obs.EvTick, Tick: r.tick, NS: ns}
		if r.shards > 1 {
			te.Shard = r.shard
		}
		ob.trace.Emit(te)
		r.publishSnapshot(depth, active)
	}
	if statsLine {
		st := r.statsCache
		r.opt.Logf("live: tick %d/%d peers=%d inbox=%d sent=%d delivered=%d lost=%d inboxDrop=%d kernelDrop=%d overruns=%d",
			r.tick+1, r.duration, active, depth,
			st.DataSent, st.DataDelivered, st.DataLost,
			st.InboxDropped, st.KernelDrops, r.stats.Overruns)
	}
}

// publishSnapshot stores a fresh RunSnapshot for /runz readers.
func (r *Runner) publishSnapshot(inboxDepth, active int) {
	r.obs.snap.Store(&RunSnapshot{
		Scenario:      r.sc.Name,
		Algo:          r.res.Algorithm,
		Shard:         r.shard,
		Shards:        r.shards,
		Tick:          r.tick,
		Duration:      r.duration,
		Periods:       r.stats.Periods,
		Overruns:      r.stats.Overruns,
		ActivePeers:   active,
		InboxDepth:    inboxDepth,
		WindowOpen:    r.win.active,
		WindowsClosed: len(r.res.Windows),
		Transport:     r.statsCache,
	})
}

// finishObs closes out the run's telemetry: a final stats refresh (so
// the kernel drop and transport totals are exact), a final snapshot,
// and the run-end trace line.
func (r *Runner) finishObs() {
	if r.obs == nil {
		return
	}
	r.refreshStats()
	r.publishSnapshot(r.maxInboxDepth(), r.activeCount())
	r.obs.trace.Emit(obs.TraceEvent{T: obs.EvRunEnd, Tick: r.tick, Windows: len(r.res.Windows)})
}
