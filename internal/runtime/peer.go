package runtime

import (
	"math/rand"

	"gossipstream/internal/bandwidth"
	"gossipstream/internal/buffer"
	"gossipstream/internal/core"
	"gossipstream/internal/netmodel"
	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
	"gossipstream/internal/sim"
)

// A peer is one live protocol participant: a goroutine owning a buffer,
// budgets, a sim.Playback (the per-node protocol core shared with the
// simulator) and a scheduler instance, exchanging frames with its
// neighbors through a transport Endpoint. Nothing here touches shared
// state — the peer's world is its inbox, its control channel from the
// runner, and the tick signal that paces its scheduling period.
//
// Per period a peer: refills its budgets, generates (source) or plays
// back (listener), advertises its buffer map to every neighbor, and
// plans pull requests with the same core.Algorithm the simulator runs —
// against views decoded from real map frames rather than same-tick
// shared memory. Requests are served (or denied) asynchronously as they
// arrive; denials refund the requester's inbound budget and trigger a
// bounded retry at an alternate supplier, the live counterpart of the
// simulator's retry rounds.

// peerParams is the protocol parameter block, fixed for a run.
type peerParams struct {
	tau             float64
	p               float64
	q, qs           int
	bufferCap       int
	linkShare       int
	sharedOut       bool
	sourceOutFactor float64
	disablePrefetch bool
	perTick         int   // p·τ whole segments
	wireBits        int64 // control cost of one buffer map
}

// viewTTLPeriods is how many periods a neighbor's buffer-map view stays
// usable without a refresh. Maps arrive every period on a healthy link,
// so a view this stale means the neighbor is gone or the link is
// severed (the live runtime discovers partitions by silence, where the
// simulator's planner consults the partition oracle directly).
const viewTTLPeriods = 3

// denyRetryCap bounds how many suppliers a peer tries for one segment
// within a period (the first request plus retries after denials) — the
// live counterpart of the simulator's bounded retry rounds.
const denyRetryCap = 3

// tickCmd paces one scheduling period.
type tickCmd struct {
	n int // period number
}

// ctrlKind enumerates runner→peer control messages: the in-process
// control plane (spin-up metadata, role changes, membership updates)
// that a multi-host deployment would move onto an authenticated
// control transport.
type ctrlKind uint8

const (
	ctrlBecomeSource ctrlKind = iota + 1
	ctrlStopSource
	ctrlDemote
	ctrlNeighbors
	ctrlBandwidth
	ctrlQuit
)

type ctrlMsg struct {
	kind      ctrlKind
	sessions  []segment.Session // authoritative timeline (become/demote)
	neighbors []overlay.NodeID  // ctrlNeighbors
	anchor    segment.ID        // ctrlDemote rejoin anchor
	factor    float64           // ctrlBandwidth
	reply     chan segment.ID   // ctrlStopSource: the closed session's end id
}

// report is one peer's per-period account to the runner's collector.
type report struct {
	id       overlay.NodeID
	period   int
	alive    bool
	isSource bool

	played, stalled   int
	mapBits, dataBits int64
	maxSeen           segment.ID
	windowLo          segment.ID

	started, finished int   // session indices, -1 when nothing happened
	prepared          []int // session indices newly prepared this period

	dupes, denies int // diagnostics
	reReqs        int // granted loss-induced re-requests (supplier side)
}

// neighborView is the last decoded advertisement from one neighbor.
type neighborView struct {
	m       *buffer.Map
	maxSeen segment.ID
	rate    float64
	period  int
}

type peer struct {
	id  overlay.NodeID
	par peerParams
	ep  Endpoint
	rng *rand.Rand

	algo core.Algorithm
	buf  *buffer.Buffer
	pb   sim.Playback

	base, profile bandwidth.Profile
	in, out       *bandwidth.Budget
	bwFactor      float64

	alive     bool
	startTick int
	tick      int

	isSource  bool // holds (or held) the source role
	mySession int  // timeline index of the session this peer sources, -1
	nextGen   segment.ID
	maxSeen   segment.ID

	sessions  []segment.Session
	neighbors []overlay.NodeID
	views     map[overlay.NodeID]*neighborView

	// Per-period request state: segments in flight (requested this or
	// the previous period), the suppliers that denied each of them, and
	// the per-supplier request counts of the per-link capacity estimate.
	requested map[segment.ID]int
	deniedBy  map[segment.ID][]overlay.NodeID
	reqPer    map[overlay.NodeID]int
	// Segments whose request timed out without data or deny — on a lossy
	// link, the request or its answer was lost. The next request for one
	// of these carries the wire-level re-request bit, the live
	// counterpart of the simulator's NetReRequests accounting.
	timedOut map[segment.ID]int
	// Per-period grant counts per requester (the per-link serve cap).
	grantsOut map[overlay.NodeID]int

	// Period accumulators, flushed into the report.
	mapBits, dataBits int64
	played, stalled   int
	started, finished int
	preparedDone      map[int]bool
	newlyPrepared     []int
	dupes, denies     int
	reReqs            int

	// Scratch reused across periods.
	env     core.Env
	plan    core.Plan
	granted []segment.ID
	needOld []segment.ID
	needNew []segment.ID
	pool    []segment.ID
	// mapSnap is the reusable advertisement snapshot (SnapshotInto
	// refills it each period; the encoded image, not the map, crosses
	// the transport).
	mapSnap *buffer.Map

	tickCh  chan tickCmd
	ctrlCh  chan ctrlMsg
	reports chan<- report
}

// spawnSpec is everything the runner passes to build one peer.
type spawnSpec struct {
	id         overlay.NodeID
	profile    bandwidth.Profile
	bwFactor   float64
	startTick  int
	neighbors  []overlay.NodeID
	sessions   []segment.Session
	anchor     segment.ID
	sessionIdx int
	known      int
	isSource   bool
	mySession  int
	nextGen    segment.ID
	seed       int64
}

func newPeer(spec spawnSpec, par peerParams, algo core.Algorithm, ep Endpoint, reports chan<- report) *peer {
	p := &peer{
		id:           spec.id,
		par:          par,
		ep:           ep,
		rng:          rand.New(rand.NewSource(spec.seed)),
		algo:         algo,
		buf:          buffer.New(par.bufferCap),
		pb:           sim.NewPlayback(spec.anchor, spec.sessionIdx, spec.known),
		base:         spec.profile,
		profile:      spec.profile,
		bwFactor:     spec.bwFactor,
		alive:        spec.startTick == 0,
		startTick:    spec.startTick,
		isSource:     spec.isSource,
		mySession:    spec.mySession,
		nextGen:      spec.nextGen,
		maxSeen:      segment.None,
		sessions:     append([]segment.Session(nil), spec.sessions...),
		neighbors:    append([]overlay.NodeID(nil), spec.neighbors...),
		views:        make(map[overlay.NodeID]*neighborView),
		requested:    make(map[segment.ID]int),
		deniedBy:     make(map[segment.ID][]overlay.NodeID),
		timedOut:     make(map[segment.ID]int),
		reqPer:       make(map[overlay.NodeID]int),
		grantsOut:    make(map[overlay.NodeID]int),
		preparedDone: make(map[int]bool),
		started:      -1,
		finished:     -1,
		tickCh:       make(chan tickCmd, 1),
		ctrlCh:       make(chan ctrlMsg, 8),
		reports:      reports,
	}
	if !spec.isSource {
		p.profile = bandwidth.Profile{In: spec.profile.In * spec.bwFactor, Out: spec.profile.Out * spec.bwFactor}
	} else {
		p.profile = bandwidth.SourceProfile(par.sourceOutFactor)
		p.pb.Known = len(p.sessions)
	}
	p.in = bandwidth.NewBudget(p.profile.In)
	p.out = bandwidth.NewBudget(p.profile.Out)
	return p
}

// run is the peer goroutine: frames and control between ticks, the
// period step on each tick. It exits only on ctrlQuit.
func (p *peer) run() {
	for {
		select {
		case c := <-p.ctrlCh:
			if !p.handleCtrl(c) {
				return
			}
		case f := <-p.ep.Recv():
			p.handleFrame(f)
		case t := <-p.tickCh:
			// Drain the inbox before the period: everything that reached
			// this node by the period boundary is visible to playback and
			// planning, however the host happened to schedule the
			// goroutines (the live analog of the simulator's
			// store-and-forward rule).
			if !p.drain() {
				return
			}
			p.period(t.n)
		}
	}
}

// drain empties the control and frame queues; false means a quit
// arrived mid-drain.
func (p *peer) drain() bool {
	for {
		select {
		case c := <-p.ctrlCh:
			if !p.handleCtrl(c) {
				return false
			}
		case f := <-p.ep.Recv():
			p.handleFrame(f)
		default:
			return true
		}
	}
}

// period runs one scheduling step and files the period report.
func (p *peer) period(tick int) {
	p.tick = tick
	if !p.alive && !p.isSource && tick >= p.startTick {
		p.alive = true // staggered arrival
	}
	if p.alive {
		p.refill()
		p.generate()
		p.playback()
		p.checkPrepared()
		p.advertise()
		p.plan_()
	}
	p.reports <- p.makeReport(tick)
}

// refill resets the per-period budgets and request bookkeeping.
func (p *peer) refill() {
	p.in.Refill(p.par.tau)
	p.out.Refill(p.par.tau)
	for k := range p.grantsOut {
		delete(p.grantsOut, k)
	}
	for k := range p.reqPer {
		delete(p.reqPer, k)
	}
	for k := range p.deniedBy {
		delete(p.deniedBy, k)
	}
	// A request stays "in flight" for the period it was issued plus one
	// (the response may be crossing the wire); older ones are forgotten
	// and the segment becomes requestable again — the live counterpart
	// of the simulator clearing grants at delivery. A forgotten request
	// got neither data nor a deny: remember the segment so its next
	// request is tagged as a loss-induced re-request.
	for seg, at := range p.requested {
		if at < p.tick-1 {
			delete(p.requested, seg)
			p.timedOut[seg] = p.tick
		}
	}
	for seg, at := range p.timedOut {
		if at < p.tick-8 {
			delete(p.timedOut, seg) // long-gone: playback moved past it
		}
	}
}

// generate emits this period's fresh segments when this peer is the
// streaming source of the open session.
func (p *peer) generate() {
	if !p.isSource || p.mySession < 0 || p.mySession >= len(p.sessions) || !p.sessions[p.mySession].Open() {
		return
	}
	for i := 0; i < p.par.perTick; i++ {
		p.buf.Insert(p.nextGen)
		if p.nextGen > p.maxSeen {
			p.maxSeen = p.nextGen
		}
		p.nextGen++
	}
}

// playback advances the shared playback state machine by one period.
func (p *peer) playback() {
	if p.isSource {
		return
	}
	st := p.pb.Advance(p.buf, p.sessions, p.par.q, p.par.qs, p.par.perTick)
	p.played += st.Played
	p.stalled += st.Stalled
	if st.Started >= 0 {
		p.started = st.Started
	}
	if st.Finished >= 0 {
		p.finished = st.Finished
	}
}

// checkPrepared reports sessions whose startup window just completed
// (the paper's prepare-S2 condition, evaluated at period boundaries
// exactly like the simulator's playback phase).
func (p *peer) checkPrepared() {
	if p.isSource {
		return
	}
	for k := 1; k < p.pb.Known && k < len(p.sessions); k++ {
		if p.preparedDone[k] {
			continue
		}
		if sim.Prepared(p.buf, p.sessions[k].Begin, p.par.qs) {
			p.preparedDone[k] = true
			p.newlyPrepared = append(p.newlyPrepared, k)
		}
	}
}

// advertise sends this period's buffer map to every neighbor.
func (p *peer) advertise() {
	if len(p.neighbors) == 0 {
		return
	}
	// Advertise the freshest capacity window: a promoted ex-listener's
	// buffer spans old playback holdings AND the live edge it generates
	// at — anchoring at MinID would clip the very segments only it has.
	anchor := p.buf.MinID()
	if anchor < 0 {
		anchor = 0
	}
	if lo := p.maxSeen - segment.ID(p.par.bufferCap) + 1; lo > anchor {
		anchor = lo
	}
	p.mapSnap = p.buf.SnapshotInto(p.mapSnap, anchor)
	img, err := p.mapSnap.Encode()
	if err != nil {
		img = nil
	}
	sessions := make([]SessionInfo, len(p.sessions))
	for i, s := range p.sessions {
		sessions[i] = SessionInfo{Source: overlay.NodeID(s.Source), Begin: s.Begin, End: s.End}
	}
	rate := p.advertisedRate()
	for _, v := range p.neighbors {
		p.ep.Send(Frame{
			Kind:     FrameMap,
			Msg:      netmodel.Message{To: v, Sent: p.tick},
			MapImg:   img,
			MaxSeen:  p.maxSeen,
			Rate:     rate,
			Sessions: sessions,
		})
	}
}

// advertisedRate is the R(j) this peer offers a neighbor: its full
// outbound in the shared-capacity substrate, out/LinkShare (floored at
// one segment per period) in the paper's per-link model — the same
// values the simulator's buildView computes from shared memory.
func (p *peer) advertisedRate() float64 {
	if p.par.sharedOut {
		return p.out.Rate()
	}
	r := p.out.Rate() / float64(p.par.linkShare)
	if floor := 1 / p.par.tau; r < floor {
		r = floor
	}
	return r
}

// linkCapFor estimates a supplier's per-link per-period grant capacity
// from its advertised rate.
func (p *peer) linkCapFor(rate float64) int {
	c := int(rate*p.par.tau + 1e-9)
	if c < 1 {
		c = 1
	}
	return c
}

// plan_ runs the scheduler against the decoded neighbor views and
// issues this period's pull requests. (Named with a trailing underscore
// only to dodge the plan scratch field.)
func (p *peer) plan_() {
	if p.isSource || p.profile.In <= 0 || p.in.Available() < 1 {
		return
	}
	p.env = core.Env{
		Tau:       p.par.tau,
		P:         p.par.p,
		Q:         float64(p.par.q),
		Inbound:   p.profile.In,
		Playhead:  p.pb.WindowLo(),
		Suppliers: p.env.Suppliers[:0],
	}
	supIDs := p.env.Suppliers[:0]
	maxAdvert := segment.None
	supOf := make([]overlay.NodeID, 0, len(p.neighbors))
	for _, v := range p.neighbors {
		view, ok := p.views[v]
		if !ok || view.period < p.tick-viewTTLPeriods || view.m == nil {
			continue // never heard from it, or the link has gone silent
		}
		if len(supIDs) == core.MaxSuppliers {
			break
		}
		if view.maxSeen > maxAdvert {
			maxAdvert = view.maxSeen
		}
		supIDs = append(supIDs, core.Supplier{ID: core.SupplierID(v), Rate: view.rate, View: view.m})
		supOf = append(supOf, v)
	}
	p.env.Suppliers = supIDs
	if maxAdvert == segment.None {
		return
	}

	// The shared per-node protocol core: session discovery and the two
	// undelivered request windows, with in-flight requests excluded.
	p.pb.Discover(p.sessions, maxAdvert)
	p.granted = p.granted[:0]
	for seg := range p.requested {
		p.granted = append(p.granted, seg)
	}
	p.needOld, p.needNew = p.pb.NeedWindows(p.buf, p.sessions, maxAdvert,
		p.par.bufferCap, p.par.qs, p.granted, p.needOld, p.needNew)
	if len(p.needOld) == 0 && len(p.needNew) == 0 {
		return
	}
	p.env.NeedOld, p.env.NeedNew = p.needOld, p.needNew

	p.algo.Plan(&p.env, &p.plan)
	for _, req := range p.plan.Requests {
		if p.in.Available() < 1 {
			break
		}
		if _, dup := p.requested[req.Segment]; dup {
			continue
		}
		p.request(req.Segment, overlay.NodeID(req.Supplier))
	}
	if !p.par.disablePrefetch {
		p.prefetch(supOf)
	}
}

// request spends one inbound token on a pull request, tagging the
// retry of a timed-out (lost) exchange with the wire re-request bit.
func (p *peer) request(seg segment.ID, sup overlay.NodeID) {
	p.in.Take(1)
	p.requested[seg] = p.tick
	p.reqPer[sup]++
	_, re := p.timedOut[seg]
	if re {
		delete(p.timedOut, seg)
	}
	p.ep.Send(Frame{Kind: FrameRequest, ReReq: re, Msg: netmodel.Message{To: sup, Seg: seg, Sent: p.tick}})
}

// prefetch spends leftover inbound budget on uniformly random missing
// segments of the current stream — the data-driven-mesh substrate
// behavior, identical in role to the simulator's prefetch (random
// useful-piece selection keeps neighborhood holdings diverse).
func (p *peer) prefetch(sups []overlay.NodeID) {
	budget := p.in.Available()
	if budget <= 0 {
		return
	}
	pool := append(p.pool[:0], p.needOld...)
	p.pool = pool
	for k := 0; k < len(pool) && budget > 0; k++ {
		j := k + p.rng.Intn(len(pool)-k)
		pool[k], pool[j] = pool[j], pool[k]
		id := pool[k]
		if _, dup := p.requested[id]; dup {
			continue
		}
		sup := p.pickSupplier(sups, id)
		if sup < 0 {
			continue
		}
		p.request(id, sup)
		budget--
	}
}

// pickSupplier chooses a uniformly random supplier advertising the
// segment with per-link request headroom; -1 if none.
func (p *peer) pickSupplier(sups []overlay.NodeID, id segment.ID) overlay.NodeID {
	best := overlay.NodeID(-1)
	count := 0
	for _, v := range sups {
		view := p.views[v]
		if view == nil || view.m == nil || !view.m.Has(id) {
			continue
		}
		if !p.par.sharedOut && p.reqPer[v] >= p.linkCapFor(view.rate) {
			continue
		}
		count++
		if p.rng.Intn(count) == 0 {
			best = v
		}
	}
	return best
}

// handleFrame processes one inbound frame.
func (p *peer) handleFrame(f Frame) {
	if !p.alive {
		return
	}
	switch f.Kind {
	case FrameMap:
		p.handleMap(f)
	case FrameRequest:
		p.serve(f.Msg.From, f.Msg.Seg, f.ReReq)
	case FrameDeny:
		p.handleDeny(f.Msg.From, f.Msg.Seg)
	case FrameData:
		p.handleData(f.Msg.Seg)
	}
}

// handleMap decodes a neighbor's advertisement and merges its session
// gossip.
func (p *peer) handleMap(f Frame) {
	m, err := buffer.DecodeMap(f.MapImg, p.par.bufferCap)
	if err != nil {
		return
	}
	p.views[f.Msg.From] = &neighborView{m: m, maxSeen: f.MaxSeen, rate: f.Rate, period: p.tick}
	p.mapBits += p.par.wireBits
	p.mergeSessions(f.Sessions)
}

// mergeSessions folds gossiped timeline knowledge into the local copy.
// Sessions are created by one authority (the runner's control plane),
// so lists agree on their common prefix; merging only appends newly
// learned sessions and closes ones the sender has seen end.
func (p *peer) mergeSessions(remote []SessionInfo) {
	for i, rs := range remote {
		if i < len(p.sessions) {
			if p.sessions[i].Open() && rs.End != segment.None {
				p.sessions[i].End = rs.End
			}
			continue
		}
		p.sessions = append(p.sessions, segment.Session{Source: segment.SourceID(rs.Source), Begin: rs.Begin, End: rs.End})
	}
}

// serve answers one pull request: grant under this period's capacity,
// deny otherwise. The requester's own state is unknown here — unlike
// the simulator's serve phase, a live supplier cannot read the
// requester's budget, so over-subscription resolves at the requester
// (duplicate data is dropped on arrival).
func (p *peer) serve(from overlay.NodeID, seg segment.ID, reReq bool) {
	grant := p.buf.Has(seg)
	if grant {
		if p.par.sharedOut {
			grant = p.out.Take(1)
		} else if p.grantsOut[from] < p.linkCapFor(p.advertisedRate()) {
			p.grantsOut[from]++
		} else {
			grant = false
		}
	}
	if grant && reReq {
		// A loss-induced re-request re-granted: the counter the
		// simulator's serve phase keeps as NetReRequests.
		p.reReqs++
	}
	kind := FrameData
	if !grant {
		kind = FrameDeny
	}
	p.ep.Send(Frame{Kind: kind, Msg: netmodel.Message{To: from, Seg: seg, Sent: p.tick}})
}

// handleDeny refunds the inbound token and retries the segment at an
// alternate supplier, at most denyRetryCap suppliers per period.
func (p *peer) handleDeny(from overlay.NodeID, seg segment.ID) {
	if _, ok := p.requested[seg]; !ok {
		return // stale deny from a previous period
	}
	p.denies++
	denied := append(p.deniedBy[seg], from)
	p.deniedBy[seg] = denied
	if len(denied) < denyRetryCap {
		if alt := p.alternateSupplier(seg, denied); alt >= 0 {
			p.requested[seg] = p.tick
			p.reqPer[alt]++
			p.ep.Send(Frame{Kind: FrameRequest, Msg: netmodel.Message{To: alt, Seg: seg, Sent: p.tick}})
			return
		}
	}
	delete(p.requested, seg)
	p.in.Refund(1)
}

// alternateSupplier picks a random fresh-view neighbor advertising the
// segment that has not denied it this period.
func (p *peer) alternateSupplier(seg segment.ID, denied []overlay.NodeID) overlay.NodeID {
	best := overlay.NodeID(-1)
	count := 0
outer:
	for _, v := range p.neighbors {
		view := p.views[v]
		if view == nil || view.m == nil || view.period < p.tick-viewTTLPeriods || !view.m.Has(seg) {
			continue
		}
		for _, d := range denied {
			if d == v {
				continue outer
			}
		}
		count++
		if p.rng.Intn(count) == 0 {
			best = v
		}
	}
	return best
}

// handleData lands one granted segment.
func (p *peer) handleData(seg segment.ID) {
	delete(p.requested, seg)
	if p.buf.Has(seg) {
		p.dupes++ // over-subscription resolved here, not at the supplier
		return
	}
	p.buf.Insert(seg)
	if seg > p.maxSeen {
		p.maxSeen = seg
	}
	p.dataBits += bandwidth.BitsForSegments(1)
}

// handleCtrl applies one control message; false means quit.
func (p *peer) handleCtrl(c ctrlMsg) bool {
	switch c.kind {
	case ctrlBecomeSource:
		p.sessions = append(p.sessions[:0], c.sessions...)
		p.mySession = len(p.sessions) - 1
		p.nextGen = p.sessions[p.mySession].Begin
		p.isSource = true
		p.alive = true
		p.profile = bandwidth.SourceProfile(p.par.sourceOutFactor)
		p.in.SetRate(0)
		p.out.SetRate(p.profile.Out)
		p.pb.Active = false
		p.pb.Known = len(p.sessions)
	case ctrlStopSource:
		end := p.nextGen - 1
		if p.mySession >= 0 && p.mySession < len(p.sessions) && p.sessions[p.mySession].Open() {
			p.sessions[p.mySession].End = end
		}
		c.reply <- end
	case ctrlDemote:
		p.isSource = false
		p.mySession = -1
		p.profile = bandwidth.Profile{In: p.base.In * p.bwFactor, Out: p.base.Out * p.bwFactor}
		p.in.SetRate(p.profile.In)
		p.out.SetRate(p.profile.Out)
		p.sessions = append(p.sessions[:0], c.sessions...)
		p.adoptPosition(c.anchor)
	case ctrlNeighbors:
		p.neighbors = append(p.neighbors[:0], c.neighbors...)
		for v := range p.views {
			if !containsNode(p.neighbors, v) {
				delete(p.views, v)
			}
		}
	case ctrlBandwidth:
		p.bwFactor = c.factor
		if !p.isSource {
			p.profile = bandwidth.Profile{In: p.base.In * c.factor, Out: p.base.Out * c.factor}
			p.in.SetRate(p.profile.In)
			p.out.SetRate(p.profile.Out)
		}
	case ctrlQuit:
		p.ep.Close()
		return false
	}
	return true
}

// adoptPosition rejoins playback at anchor — the Section 5.4 "follow
// its neighbors' current steps" rule, shared with the simulator's
// adoptPosition.
func (p *peer) adoptPosition(anchor segment.ID) {
	idx, known := 0, 1
	for i, s := range p.sessions {
		if s.Contains(anchor) {
			idx, known = i, i+1
			break
		}
	}
	p.pb = sim.NewPlayback(anchor, idx, known)
}

func containsNode(list []overlay.NodeID, v overlay.NodeID) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// makeReport flushes the period accumulators.
func (p *peer) makeReport(tick int) report {
	r := report{
		id:       p.id,
		period:   tick,
		alive:    p.alive,
		isSource: p.isSource,
		played:   p.played,
		stalled:  p.stalled,
		mapBits:  p.mapBits,
		dataBits: p.dataBits,
		maxSeen:  p.maxSeen,
		windowLo: p.pb.WindowLo(),
		started:  p.started,
		finished: p.finished,
		dupes:    p.dupes,
		denies:   p.denies,
		reReqs:   p.reReqs,
	}
	if len(p.newlyPrepared) > 0 {
		r.prepared = append([]int(nil), p.newlyPrepared...)
	}
	p.played, p.stalled = 0, 0
	p.mapBits, p.dataBits = 0, 0
	p.started, p.finished = -1, -1
	p.newlyPrepared = p.newlyPrepared[:0]
	p.dupes, p.denies = 0, 0
	p.reReqs = 0
	return r
}
