package runtime

import (
	"fmt"
	"time"

	"gossipstream/internal/bandwidth"
	"gossipstream/internal/netmodel"
	"gossipstream/internal/obs"
	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
	"gossipstream/internal/sim"
)

// The resolve/apply split: every scenario event is resolved — all
// nondeterministic choices made explicit (successor picks, closing
// segment ids, churn victims, join wiring, partition seeds) — into a
// Directive, then applied. A single-process run resolves and applies
// back to back; a multi-process run resolves once at the coordinator
// and applies the broadcast Directive on every shard, so every process
// makes the same decisions without sharing memory or RNG state. The
// Directive is the unit the cluster control plane retries until
// acknowledged.

// DirKind enumerates resolved directives.
type DirKind uint8

const (
	// DirSwitch executes a resolved source handoff (planned or crash).
	DirSwitch DirKind = iota + 1
	// DirStopSource closes the current source's open session (targeted
	// at the shard owning it; the ack carries the closing segment id).
	DirStopSource
	// DirDemote returns a resolved ex-source to listener duty.
	DirDemote
	// DirMeasure closes the open window and opens a plain measurement
	// window of Ticks periods.
	DirMeasure
	// DirMembership applies one resolved membership step: churn leaves
	// with their repair edges, and joins with their full wiring.
	DirMembership
	// DirBandwidth scales every listener's bandwidth by Factor.
	DirBandwidth
	// DirLatency scales the policy's latency by Factor.
	DirLatency
	// DirLoss starts a loss burst of probability Prob until tick Until.
	DirLoss
	// DirPartition splits the policy's reachability with the resolved
	// Seed.
	DirPartition
	// DirHeal lifts the partition.
	DirHeal
	// DirFinish ends the run (coordinator-initiated early exit).
	DirFinish
	// DirReassign folds a dead shard's orphaned peers into survivors:
	// every process records the ownership overrides, and the new owners
	// respawn their peers anchored at the neighborhood frontier.
	DirReassign
)

// String implements fmt.Stringer.
func (k DirKind) String() string {
	switch k {
	case DirSwitch:
		return "switch"
	case DirStopSource:
		return "stop-source"
	case DirDemote:
		return "demote"
	case DirMeasure:
		return "measure"
	case DirMembership:
		return "membership"
	case DirBandwidth:
		return "bandwidth"
	case DirLatency:
		return "latency"
	case DirLoss:
		return "loss"
	case DirPartition:
		return "partition"
	case DirHeal:
		return "heal"
	case DirFinish:
		return "finish"
	case DirReassign:
		return "reassign"
	}
	return "directive(?)"
}

// JoinSpec is one resolved joiner: the id the membership walk assigned,
// the wiring it chose, the playback anchor, and the bandwidth profile
// drawn for it — everything a shard needs to spawn the peer without
// its own RNG draw.
type JoinSpec struct {
	ID         overlay.NodeID
	Neighbors  []overlay.NodeID
	Anchor     segment.ID
	SessionIdx int
	Known      int
	ProfIn     float64
	ProfOut    float64
}

// Directive is one resolved control-plane command. Fields are a union
// over kinds; unused fields are zero.
type Directive struct {
	Kind DirKind
	Tick int // coordinator tick the directive was resolved at

	// DirSwitch / DirStopSource / DirDemote.
	Old     overlay.NodeID
	New     overlay.NodeID
	S1End   segment.ID
	Horizon int
	Failure bool
	Node    overlay.NodeID
	Anchor  segment.ID

	// DirMeasure / DirLoss.
	Ticks int
	Until int

	// DirBandwidth / DirLatency / DirLoss / DirPartition.
	Factor float64
	Prob   float64
	Frac   float64
	ByPing bool
	Seed   int64

	// DirMembership.
	Leaves []overlay.NodeID
	Repair [][2]overlay.NodeID
	Joins  []JoinSpec

	// DirReassign.
	DeadShard int
	Respawns  []RespawnSpec

	// Resolved marks a directive applied on the process that resolved
	// it: the membership directory already mutated the graph during
	// resolution, so apply must not replay the structural mutations. A
	// directive shipped to another process arrives with Resolved false.
	Resolved bool
}

// NodeStatus is one node's per-period state as shipped from a shard to
// the coordinator — the failure-detector knowledge event resolution
// runs on (crash truncation points, demote/join anchors, successor
// eligibility).
type NodeStatus struct {
	ID       overlay.NodeID
	Alive    bool
	IsSource bool
	MaxSeen  segment.ID
	WindowLo segment.ID
}

// owns reports whether this runner's shard hosts the node's goroutine.
func (r *Runner) owns(id overlay.NodeID) bool {
	return r.shards <= 1 || r.ownerOf(id) == r.shard
}

// ownerOf names the shard hosting a node: a failover reassignment
// override when one exists, the id-mod-shards rule otherwise.
func (r *Runner) ownerOf(id overlay.NodeID) int {
	if s, ok := r.owner[id]; ok {
		return s
	}
	return int(id) % r.shards
}

// OwnerOf exposes the ownership rule to the cluster coordinator (the
// stop-source call and the failover machinery route by it).
func (r *Runner) OwnerOf(id overlay.NodeID) int { return r.ownerOf(id) }

// Shard and Shards expose the runner's slice of the population.
func (r *Runner) Shard() int  { return r.shard }
func (r *Runner) Shards() int { return r.shards }

// sourceEligible reports whether a node can take (or crash-survive as)
// a listener role in resolution decisions: running, arrived, never a
// source. Owned nodes answer from the live handle; remote nodes from
// the merged status map plus the coordinator's own death/role ledger.
func (r *Runner) sourceEligible(id overlay.NodeID) bool {
	if h, ok := r.peers[id]; ok {
		return h.running && h.active && !h.isSource
	}
	if r.shards <= 1 || r.dead[id] || r.roles[id] {
		return false
	}
	rep, ok := r.lastRep[id]
	return ok && rep.alive && !rep.isSource
}

// leaveEligible is the churn victim predicate (a not-yet-arrived peer
// is still a valid victim, matching the simulator).
func (r *Runner) leaveEligible(id overlay.NodeID) bool {
	if h, ok := r.peers[id]; ok {
		return h.running && !h.isSource
	}
	if r.shards <= 1 || r.dead[id] || r.roles[id] {
		return false
	}
	rep, ok := r.lastRep[id]
	return ok && rep.alive
}

// MergeStatus folds a shard's per-node status into the coordinator's
// global view (synthetic reports alongside the locally collected ones).
func (r *Runner) MergeStatus(sts []NodeStatus) {
	for _, st := range sts {
		if r.owns(st.ID) {
			continue // local reports are fresher
		}
		r.lastRep[st.ID] = report{
			id:       st.ID,
			alive:    st.Alive,
			isSource: st.IsSource,
			maxSeen:  st.MaxSeen,
			windowLo: st.WindowLo,
		}
	}
}

// ShardStatus snapshots every owned running peer's last report for the
// coordinator.
func (r *Runner) ShardStatus() []NodeStatus {
	sts := make([]NodeStatus, 0, len(r.peers))
	for id, h := range r.peers {
		if !h.running {
			continue
		}
		rep, ok := r.lastRep[id]
		if !ok {
			continue
		}
		sts = append(sts, NodeStatus{
			ID: id, Alive: rep.alive, IsSource: rep.isSource,
			MaxSeen: rep.maxSeen, WindowLo: rep.windowLo,
		})
	}
	return sts
}

// ---- Resolution (coordinator side) ----

// ResolveEvent resolves one timeline event into a directive. For a
// planned switch it needs the old source's closing segment id: when the
// old source is owned the stop round trip runs inline; when it is
// remote, ResolveEvent returns needStop=true and the caller must obtain
// S1End (a DirStopSource round trip to the owning shard) and finish
// with ResolveSwitch.
func (r *Runner) ResolveEvent(ev sim.Event) (d *Directive, needStop *Directive, err error) {
	switch ev.Kind {
	case sim.EvSwitchSource:
		old, to, err := r.resolveSwitchTarget(ev)
		if err != nil {
			return nil, nil, err
		}
		if !ev.Failure && !r.owns(old) {
			return nil, &Directive{Kind: DirStopSource, Tick: r.tick, Old: old, New: to}, nil
		}
		var s1End segment.ID
		if ev.Failure {
			s1End = r.crashS1End()
		} else {
			s1End, _ = r.StopSource(old)
		}
		return r.ResolveSwitch(ev, old, to, s1End), nil, nil
	case sim.EvMeasureWindow:
		return &Directive{Kind: DirMeasure, Tick: r.tick, Ticks: ev.Ticks}, nil, nil
	case sim.EvChurnBurst:
		// Resolution-local: churn is resolved per tick at the
		// coordinator, so the burst bounds never need to travel.
		r.burst = &sim.ChurnConfig{LeaveFraction: ev.Leave, JoinFraction: ev.Join}
		r.burstUntil = r.tick + ev.Ticks
		return nil, nil, nil
	case sim.EvFlashCrowd:
		return r.resolveFlashCrowd(ev), nil, nil
	case sim.EvBandwidthShift:
		return &Directive{Kind: DirBandwidth, Tick: r.tick, Factor: ev.Factor}, nil, nil
	case sim.EvLatencyShift:
		return &Directive{Kind: DirLatency, Tick: r.tick, Factor: ev.Factor}, nil, nil
	case sim.EvLossBurst:
		return &Directive{Kind: DirLoss, Tick: r.tick, Prob: ev.Prob, Until: r.tick + ev.Ticks}, nil, nil
	case sim.EvPartition:
		return &Directive{Kind: DirPartition, Tick: r.tick, Frac: ev.Frac, ByPing: ev.ByPing, Seed: r.rng.Int63()}, nil, nil
	case sim.EvHeal:
		return &Directive{Kind: DirHeal, Tick: r.tick}, nil, nil
	case sim.EvDemoteSource:
		return r.resolveDemote(ev)
	}
	return nil, nil, fmt.Errorf("runtime: unknown event kind %v at tick %d", ev.Kind, ev.Tick)
}

// resolveSwitchTarget picks the handoff pair: the current source and a
// resolved successor (the pinned target when eligible, else a uniform
// draw over never-source active peers).
func (r *Runner) resolveSwitchTarget(ev sim.Event) (old, to overlay.NodeID, err error) {
	cur := r.timeline[len(r.timeline)-1]
	old = overlay.NodeID(cur.Source)
	to = ev.To
	if to >= 0 && !r.sourceEligible(to) {
		to = -1 // pinned target unusable: fall back to the random pick
	}
	if to < 0 {
		to = r.pickNewSource(old)
	}
	if to < 0 {
		return old, -1, fmt.Errorf("runtime: switch at tick %d: no eligible new source (every active peer is or was a source)", r.tick)
	}
	return old, to, nil
}

// crashS1End truncates the stream at the highest id any active listener
// reported holding — the membership service's best knowledge, one
// period stale like any failure detector.
func (r *Runner) crashS1End() segment.ID {
	s1End := r.timeline[len(r.timeline)-1].Begin - 1
	for id, rep := range r.lastRep {
		if r.sourceEligible(id) && rep.maxSeen > s1End {
			s1End = rep.maxSeen
		}
	}
	return s1End
}

// StopSource runs the local control round trip closing an owned
// source's session; ok is false when the node is not an owned running
// peer.
func (r *Runner) StopSource(id overlay.NodeID) (segment.ID, bool) {
	h, ok := r.peers[id]
	if !ok || !h.running {
		return segment.None, false
	}
	reply := make(chan segment.ID, 1)
	h.p.ctrlCh <- ctrlMsg{kind: ctrlStopSource, reply: reply}
	return <-reply, true
}

// ResolveSwitch finishes a switch resolution once the closing segment
// id is known. A crash additionally resolves the membership repair
// (the directory draw happens here, once, at the resolver).
func (r *Runner) ResolveSwitch(ev sim.Event, old, to overlay.NodeID, s1End segment.ID) *Directive {
	d := &Directive{
		Kind: DirSwitch, Tick: r.tick,
		Old: old, New: to, S1End: s1End,
		Failure: ev.Failure, Resolved: true,
	}
	if ev.Failure {
		d.Repair = r.dir.Leave(old)
		r.dead[old] = true
	}
	d.Horizon = ev.Horizon
	if d.Horizon <= 0 {
		d.Horizon = r.horizonDefault()
	}
	return d
}

// resolveDemote validates the demote target and resolves its rejoin
// anchor from its neighbors' reported playback positions.
func (r *Runner) resolveDemote(ev sim.Event) (*Directive, *Directive, error) {
	id := ev.To
	if id < 0 {
		id = r.lastRetired
	}
	known := false
	if id >= 0 {
		if _, ok := r.peers[id]; ok {
			known = true
		} else if _, ok := r.lastRep[id]; ok && r.shards > 1 {
			known = true
		}
	}
	running := false
	if h, ok := r.peers[id]; ok {
		running = h.running
	} else if known {
		running = !r.dead[id]
	}
	switch {
	case id < 0 || !known:
		return nil, nil, fmt.Errorf("runtime: demote at tick %d: no ex-source to demote", r.tick)
	case !r.roles[id]:
		return nil, nil, fmt.Errorf("runtime: demote at tick %d: node %d never held the source role or was already demoted", r.tick, id)
	case overlay.NodeID(r.timeline[len(r.timeline)-1].Source) == id && r.timeline[len(r.timeline)-1].Open():
		return nil, nil, fmt.Errorf("runtime: demote at tick %d: node %d is the current source", r.tick, id)
	case !running:
		return nil, nil, fmt.Errorf("runtime: demote at tick %d: ex-source %d is dead", r.tick, id)
	}
	anchor := segment.ID(0)
	for _, v := range r.g.Neighbors(id) {
		if rep, ok := r.lastRep[v]; ok && rep.alive {
			if rep.windowLo > anchor {
				anchor = rep.windowLo
			}
		}
	}
	return &Directive{Kind: DirDemote, Tick: r.tick, Node: id, Anchor: anchor, Resolved: true}, nil, nil
}

// resolveFlashCrowd resolves a batch of fresh joiners through the
// membership directory; like the simulator's crowd members they anchor
// at the current session's beginning (bounded by the backlog cap).
func (r *Runner) resolveFlashCrowd(ev sim.Event) *Directive {
	curIdx := len(r.timeline) - 1
	anchor := r.timeline[curIdx].Begin
	if ev.Backlog > 0 {
		// The stream head, as last reported by the current source.
		if rep, ok := r.lastRep[overlay.NodeID(r.timeline[curIdx].Source)]; ok {
			if a := rep.maxSeen + 1 - segment.ID(ev.Backlog); a > anchor {
				anchor = a
			}
		}
	}
	d := &Directive{Kind: DirMembership, Tick: r.tick, Resolved: true}
	for i := 0; i < ev.Count; i++ {
		d.Joins = append(d.Joins, r.resolveJoin(anchor, curIdx, curIdx+1))
	}
	return d
}

// resolveJoin draws one joiner's wiring and profile (the resolver-only
// RNG consumption).
func (r *Runner) resolveJoin(anchor segment.ID, sessionIdx, known int) JoinSpec {
	id, neighbors := r.dir.Join()
	return JoinSpec{
		ID:         id,
		Neighbors:  append([]overlay.NodeID(nil), neighbors...),
		Anchor:     anchor,
		SessionIdx: sessionIdx,
		Known:      known,
		ProfIn:     bandwidth.DrawRate(r.churnRNG),
		ProfOut:    bandwidth.DrawRate(r.churnRNG),
	}
}

// resolveChurn resolves this tick's baseline (or burst-overridden)
// churn into one membership directive; nil when nothing changes.
func (r *Runner) resolveChurn() *Directive {
	cc := r.cfg.Churn
	if r.burst != nil {
		if r.tick < r.burstUntil {
			cc = r.burst
		} else {
			r.burst = nil
		}
	}
	if cc == nil {
		return nil
	}
	alive := r.dir.AliveCount()
	d := &Directive{Kind: DirMembership, Tick: r.tick, Resolved: true}
	leaves := int(cc.LeaveFraction * float64(alive))
	curSrc := overlay.NodeID(r.timeline[len(r.timeline)-1].Source)
	for i := 0; i < leaves; i++ {
		victim := r.dir.RandomAlive(curSrc, r.lastRetired)
		if victim < 0 {
			break
		}
		if !r.leaveEligible(victim) {
			continue
		}
		repaired := r.dir.Leave(victim)
		r.dead[victim] = true
		d.Leaves = append(d.Leaves, victim)
		d.Repair = append(d.Repair, repaired...)
	}
	joins := int(cc.JoinFraction * float64(alive))
	for i := 0; i < joins; i++ {
		// "A new joining node ... starts its media playback by following
		// its neighbors' current steps" (Section 5.4). The anchor draw
		// needs the joiner's wiring, so Join runs first and the spec is
		// assembled from its result.
		id, neighbors := r.dir.Join()
		anchor := segment.ID(0)
		for _, v := range neighbors {
			if rep, ok := r.lastRep[v]; ok && rep.alive && rep.windowLo > anchor {
				anchor = rep.windowLo
			}
		}
		idx, known := 0, 1
		for si, s := range r.timeline {
			if s.Contains(anchor) {
				idx, known = si, si+1
			}
		}
		d.Joins = append(d.Joins, JoinSpec{
			ID:         id,
			Neighbors:  append([]overlay.NodeID(nil), neighbors...),
			Anchor:     anchor,
			SessionIdx: idx,
			Known:      known,
			ProfIn:     bandwidth.DrawRate(r.churnRNG),
			ProfOut:    bandwidth.DrawRate(r.churnRNG),
		})
	}
	if len(d.Leaves) == 0 && len(d.Joins) == 0 {
		return nil
	}
	return d
}

// ---- Application (every shard) ----

// Apply executes one resolved directive against this shard: structural
// graph mutations are replayed when the directive came from another
// process (Resolved false), peer-facing actions run for owned nodes
// only, and window bookkeeping runs everywhere so each shard's windows
// line up by index for the merge.
func (r *Runner) Apply(d *Directive) error {
	if ob := r.obs; ob != nil {
		ob.events.Inc()
		if ob.trace != nil {
			te := obs.TraceEvent{T: obs.EvEvent, Tick: r.tick, Kind: d.Kind.String()}
			if r.shards > 1 {
				te.Shard = r.shard
			}
			switch d.Kind {
			case DirSwitch:
				te.Node = obs.P(int64(d.Old))
				te.To = obs.P(int64(d.New))
			case DirDemote:
				te.Node = obs.P(int64(d.Node))
			}
			ob.trace.Emit(te)
			switch d.Kind {
			case DirPartition:
				ob.trace.Emit(obs.TraceEvent{T: obs.EvPartition, Tick: r.tick, Kind: "sever"})
			case DirHeal:
				ob.trace.Emit(obs.TraceEvent{T: obs.EvPartition, Tick: r.tick, Kind: "heal"})
			}
		}
	}
	switch d.Kind {
	case DirSwitch:
		r.applySwitchDirective(d)
	case DirStopSource:
		// Targeted resolution helper; the caller (cluster agent) uses
		// StopSource directly for the reply. Applying it standalone is a
		// no-op by design.
	case DirDemote:
		r.applyDemoteDirective(d)
	case DirMeasure:
		r.closeWindow(r.tick-r.win.openTick, false, true)
		r.openWindow(false, d.Ticks, sim.Event{})
	case DirMembership:
		r.applyMembership(d)
	case DirBandwidth:
		r.bwFactor = d.Factor
		for _, h := range r.peers {
			if h.running {
				h.p.ctrlCh <- ctrlMsg{kind: ctrlBandwidth, factor: d.Factor}
			}
		}
	case DirLatency:
		r.policy.mutate(func(m *netmodel.Model) { m.SetLatencyFactor(d.Factor) })
	case DirLoss:
		r.policy.mutate(func(m *netmodel.Model) { m.SetLossBurst(d.Prob, d.Until) })
	case DirPartition:
		r.policy.mutate(func(m *netmodel.Model) {
			if d.ByPing {
				m.PartitionByPing(d.Frac, d.Seed)
			} else {
				m.Partition(d.Frac, d.Seed)
			}
		})
	case DirHeal:
		r.policy.mutate(func(m *netmodel.Model) { m.Heal() })
	case DirFinish:
		// Handled by the driving loop (cluster agent); nothing to apply.
	case DirReassign:
		r.applyReassign(d)
	default:
		return fmt.Errorf("runtime: unknown directive kind %d", d.Kind)
	}
	return r.err
}

// applySwitchDirective executes one resolved source handoff (or crash):
// close the old session through the control plane, promote the
// successor, open the switch measurement window — the same choreography
// as the simulator's applySwitch, with control round-trips in place of
// shared memory.
func (r *Runner) applySwitchDirective(d *Directive) {
	r.closeWindow(r.tick-r.win.openTick, false, true)
	if d.Failure {
		if !d.Resolved {
			// Replay the resolver's membership repair structurally.
			r.g.ClearNode(d.Old)
			for _, e := range d.Repair {
				r.g.AddEdge(e[0], e[1])
			}
		}
		r.stopPeer(d.Old)
		r.refreshNeighbors()
	}
	r.timeline[len(r.timeline)-1].End = d.S1End
	r.timeline = append(r.timeline, segment.Session{
		Source: segment.SourceID(d.New), Begin: d.S1End + 1, End: segment.None,
	})
	r.roles[d.New] = true
	if newH, ok := r.peers[d.New]; ok {
		newH.isSource = true
		newH.active = true
		newH.p.ctrlCh <- ctrlMsg{kind: ctrlBecomeSource, sessions: append([]segment.Session(nil), r.timeline...)}
	}
	r.lastRetired = d.Old
	r.openWindow(true, d.Horizon, sim.Event{Failure: d.Failure})
}

// applyDemoteDirective returns the resolved ex-source to listener duty.
func (r *Runner) applyDemoteDirective(d *Directive) {
	delete(r.roles, d.Node)
	if h, ok := r.peers[d.Node]; ok {
		h.isSource = false
		h.p.ctrlCh <- ctrlMsg{
			kind:     ctrlDemote,
			sessions: append([]segment.Session(nil), r.timeline...),
			anchor:   d.Anchor,
		}
	}
	if d.Node == r.lastRetired {
		r.lastRetired = -1
	}
}

// applyMembership executes a resolved membership step: stop victims,
// replay structural mutations when they came from another process,
// spawn owned joiners, refresh neighbor lists.
func (r *Runner) applyMembership(d *Directive) {
	changed := false
	for _, v := range d.Leaves {
		if !d.Resolved {
			r.g.ClearNode(v)
		}
		r.stopPeer(v)
		changed = true
	}
	if !d.Resolved {
		for _, e := range d.Repair {
			r.g.AddEdge(e[0], e[1])
		}
	}
	for _, js := range d.Joins {
		r.applyJoin(js, d.Resolved)
		if r.err != nil {
			return
		}
		changed = true
	}
	if changed {
		r.refreshNeighbors()
	}
}

// applyJoin wires one resolved joiner into the local graph and spawns
// it when owned.
func (r *Runner) applyJoin(js JoinSpec, resolved bool) {
	// Every process records the joiner's profile, owner or not — the
	// failover machinery restates it if the peer ever respawns.
	r.profile[js.ID] = bandwidth.Profile{In: js.ProfIn, Out: js.ProfOut}
	if !resolved {
		// Ids are assigned sequentially by the resolver's directory; the
		// local graph must agree or the two processes have diverged.
		id := r.g.AddNode()
		if id != js.ID {
			r.err = fmt.Errorf("runtime: join replay assigned node %d, resolver assigned %d (diverged topology)", id, js.ID)
			return
		}
		for _, nb := range js.Neighbors {
			r.g.AddEdge(js.ID, nb)
		}
	}
	if !r.owns(js.ID) {
		return
	}
	spec := spawnSpec{
		id:         js.ID,
		profile:    bandwidth.Profile{In: js.ProfIn, Out: js.ProfOut},
		bwFactor:   r.bwFactor,
		neighbors:  r.g.Neighbors(js.ID),
		sessions:   r.timeline,
		anchor:     js.Anchor,
		sessionIdx: js.SessionIdx,
		known:      js.Known,
		mySession:  -1,
		seed:       r.sc.Seed ^ (int64(js.ID)+1)*0x9e37_79b9,
	}
	if err := r.spawn(spec); err != nil {
		r.err = err
	}
}

// ---- Sharded driving (cluster agent side) ----

// StartShard prepares the runner to be driven tick by tick as one shard
// of a multi-process run: it spawns the owned slice of the initial
// population and hands pacing, event resolution and directive delivery
// to the caller. shards must divide the id space consistently across
// every process (id mod shards == shard).
func (r *Runner) StartShard(shard, shards int) error {
	if r.ran {
		return fmt.Errorf("runtime: Run called twice")
	}
	if shard < 0 || shards < 1 || shard >= shards {
		return fmt.Errorf("runtime: shard %d of %d out of range", shard, shards)
	}
	r.ran = true
	r.shard, r.shards = shard, shards
	if err := r.spawnInitial(); err != nil {
		return err
	}
	if r.obs != nil {
		r.obs.trace.Emit(obs.TraceEvent{T: obs.EvRunStart,
			Scenario: r.sc.Name, Algo: r.res.Algorithm, Nodes: r.g.N(),
			Seed: r.sc.Seed, Shard: shard})
	}
	return nil
}

// TickShard runs one scheduling period: publish the tick, pace every
// owned peer through its period, collect reports, advance windows. The
// caller paces the wall clock and applies directives between calls.
func (r *Runner) TickShard(wallPerScenarioMS float64) error {
	tickStart := time.Now()
	r.tr.SetTick(r.tick, wallPerScenarioMS)
	ticked := 0
	for _, h := range r.peers {
		if h.running {
			h.p.tickCh <- tickCmd{n: r.tick}
			ticked++
		}
	}
	for i := 0; i < ticked; i++ {
		r.observe(<-r.reports)
	}
	r.stats.Periods++
	r.windowsTick()
	r.tickObs(tickStart)
	r.tick++
	return r.err
}

// CurrentTick is the next period TickShard will run.
func (r *Runner) CurrentTick() int { return r.tick }

// Tau is the scheduling period in scenario seconds — the pacing unit a
// shard's driving loop stretches onto the wall clock.
func (r *Runner) Tau() float64 { return r.par.tau }

// Duration is the scripted (or auto-derived) run length in periods.
func (r *Runner) Duration() int { return r.duration }

// EarlyExit reports whether the scenario allows ending once all events
// fired and all windows closed (auto-derived duration).
func (r *Runner) EarlyExit() bool { return r.earlyExit }

// Idle reports whether this shard has no open measurement window.
func (r *Runner) Idle() bool { return !r.win.active }

// DueEvent peeks the next unfired timeline event due at or before the
// current tick.
func (r *Runner) DueEvent() (sim.Event, bool) {
	if r.nextEvent < len(r.events) && r.events[r.nextEvent].Tick <= r.tick {
		return r.events[r.nextEvent], true
	}
	return sim.Event{}, false
}

// PopEvent consumes the event DueEvent returned.
func (r *Runner) PopEvent() { r.nextEvent++ }

// EventsDone reports whether the whole timeline has been consumed.
func (r *Runner) EventsDone() bool { return r.nextEvent >= len(r.events) }

// ResolveChurnStep exposes the per-tick churn resolution to the
// coordinator loop (nil when this tick churns nothing).
func (r *Runner) ResolveChurnStep() *Directive { return r.resolveChurn() }

// FinishShard closes any open window, finalizes the shard-local result
// and shuts the peers and transport down. The per-shard Result holds
// this shard's windows (cohorts are owned peers only); the coordinator
// merges them by window index.
func (r *Runner) FinishShard() *sim.Result {
	if r.win.active {
		r.closeWindow(r.tick-r.win.openTick, false, true)
	}
	r.finalize()
	r.finishObs()
	r.stats.Transport = r.tr.Stats()
	r.shutdown()
	return r.res
}

// MergeWindows folds per-shard windows (matched by index) into one
// result: counters sum, completion-time lists concatenate, the measured
// span is the longest shard's, and the flat SwitchMetrics re-derive
// from the merged windows. Window identity fields (kind, tick, the
// handoff pair) come from the first shard carrying them — every shard
// applied the same directives, so they agree.
func MergeWindows(parts []*sim.Result) *sim.Result {
	merged := &sim.Result{}
	var windows []*sim.SwitchMetrics
	for _, part := range parts {
		if part == nil {
			continue
		}
		if merged.Algorithm == "" {
			merged.Algorithm = part.Algorithm
		}
		for i, w := range part.Windows {
			for len(windows) <= i {
				windows = append(windows, nil)
			}
			if windows[i] == nil {
				cp := *w
				cp.FinishS1Times = append([]float64(nil), w.FinishS1Times...)
				cp.PrepareS2Times = append([]float64(nil), w.PrepareS2Times...)
				cp.StartS2Times = append([]float64(nil), w.StartS2Times...)
				windows[i] = &cp
				continue
			}
			m := windows[i]
			m.Nodes += w.Nodes
			m.Cohort += w.Cohort
			m.ControlBits += w.ControlBits
			m.DataBits += w.DataBits
			m.PlayedSegments += w.PlayedSegments
			m.StalledSlots += w.StalledSlots
			m.UnfinishedS1 += w.UnfinishedS1
			m.UnpreparedS2 += w.UnpreparedS2
			m.NetDelivered += w.NetDelivered
			m.NetLost += w.NetLost
			m.NetReRequests += w.NetReRequests
			m.NetDelaySeconds += w.NetDelaySeconds
			m.FinishS1Times = append(m.FinishS1Times, w.FinishS1Times...)
			m.PrepareS2Times = append(m.PrepareS2Times, w.PrepareS2Times...)
			m.StartS2Times = append(m.StartS2Times, w.StartS2Times...)
			if w.MeasuredTicks > m.MeasuredTicks {
				m.MeasuredTicks = w.MeasuredTicks
			}
			m.HitHorizon = m.HitHorizon || w.HitHorizon
			m.Interrupted = m.Interrupted || w.Interrupted
		}
	}
	merged.Windows = windows
	for _, w := range merged.Windows {
		if w != nil && w.Kind == "switch" {
			merged.SwitchMetrics = *w
			return merged
		}
	}
	if len(merged.Windows) > 0 && merged.Windows[0] != nil {
		merged.SwitchMetrics = *merged.Windows[0]
	}
	return merged
}
