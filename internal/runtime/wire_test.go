package runtime

import (
	"reflect"
	"testing"

	"gossipstream/internal/buffer"
	"gossipstream/internal/netmodel"
	"gossipstream/internal/segment"
)

func TestWireRoundTrip(t *testing.T) {
	buf := buffer.New(600)
	for id := segment.ID(100); id < 180; id += 3 {
		buf.Insert(id)
	}
	img, err := buf.Snapshot().Encode()
	if err != nil {
		t.Fatalf("encode map image: %v", err)
	}
	frames := []Frame{
		{Kind: FrameRequest, Msg: netmodel.Message{From: 3, To: 9, Seg: 1234, Sent: 41}},
		{Kind: FrameDeny, Msg: netmodel.Message{From: 9, To: 3, Seg: 1234, Sent: 41}},
		{Kind: FrameData, Msg: netmodel.Message{From: 9, To: 3, Seg: 1234, Sent: 41, ArrivalMS: 41234.5}},
		{Kind: FrameData, Msg: netmodel.Message{From: 0, To: 1, Seg: segment.None, Sent: 0}},
		{
			Kind:    FrameMap,
			Msg:     netmodel.Message{From: 7, To: 8, Seg: segment.None, Sent: 99},
			MapImg:  img,
			MaxSeen: 179,
			Rate:    12.5,
			Sessions: []SessionInfo{
				{Source: 4, Begin: 0, End: 399},
				{Source: 27, Begin: 400, End: segment.None},
			},
		},
		{Kind: FrameMap, Msg: netmodel.Message{From: 1, To: 2, Seg: segment.None}, MaxSeen: segment.None},
	}
	for i, f := range frames {
		got, err := DecodeFrame(EncodeFrame(f))
		if err != nil {
			t.Fatalf("frame %d (%s): decode: %v", i, f.Kind, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("frame %d (%s): round trip\n got %+v\nwant %+v", i, f.Kind, got, f)
		}
	}
	// The decoded map must behave as a core.View for the planner.
	f := frames[4]
	got, _ := DecodeFrame(EncodeFrame(f))
	m, err := buffer.DecodeMap(got.MapImg, 600)
	if err != nil {
		t.Fatalf("decode map: %v", err)
	}
	for id := segment.ID(95); id < 185; id++ {
		if m.Has(id) != buf.Has(id) {
			t.Fatalf("decoded map disagrees with buffer at %d", id)
		}
	}
}

func TestWireDecodeErrors(t *testing.T) {
	good := EncodeFrame(Frame{Kind: FrameMap, Msg: netmodel.Message{From: 1, To: 2},
		Sessions: []SessionInfo{{Source: 1, Begin: 0, End: segment.None}}})
	cases := map[string][]byte{
		"empty":             nil,
		"short header":      good[:10],
		"bad kind":          append([]byte{0x7f}, good[1:]...),
		"truncated payload": good[:len(good)-3],
		"trailing junk":     append(append([]byte(nil), good...), 1, 2, 3),
	}
	for name, b := range cases {
		if _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
