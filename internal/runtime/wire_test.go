package runtime

import (
	"math/rand"
	"reflect"
	"testing"

	"gossipstream/internal/buffer"
	"gossipstream/internal/netmodel"
	"gossipstream/internal/segment"
)

func TestWireRoundTrip(t *testing.T) {
	buf := buffer.New(600)
	for id := segment.ID(100); id < 180; id += 3 {
		buf.Insert(id)
	}
	img, err := buf.Snapshot().Encode()
	if err != nil {
		t.Fatalf("encode map image: %v", err)
	}
	frames := []Frame{
		{Kind: FrameRequest, Msg: netmodel.Message{From: 3, To: 9, Seg: 1234, Sent: 41}},
		{Kind: FrameDeny, Msg: netmodel.Message{From: 9, To: 3, Seg: 1234, Sent: 41}},
		{Kind: FrameData, Msg: netmodel.Message{From: 9, To: 3, Seg: 1234, Sent: 41, ArrivalMS: 41234.5}},
		{Kind: FrameData, Msg: netmodel.Message{From: 0, To: 1, Seg: segment.None, Sent: 0}},
		{
			Kind:    FrameMap,
			Msg:     netmodel.Message{From: 7, To: 8, Seg: segment.None, Sent: 99},
			MapImg:  img,
			MaxSeen: 179,
			Rate:    12.5,
			Sessions: []SessionInfo{
				{Source: 4, Begin: 0, End: 399},
				{Source: 27, Begin: 400, End: segment.None},
			},
		},
		{Kind: FrameMap, Msg: netmodel.Message{From: 1, To: 2, Seg: segment.None}, MaxSeen: segment.None},
		{Kind: FrameRequest, Msg: netmodel.Message{From: 3, To: 9, Seg: 1234, Sent: 44}, ReReq: true},
		{
			Kind:    FrameMap,
			Msg:     netmodel.Message{From: 7, To: 8, Seg: segment.None, Sent: 99},
			MapImg:  img,
			MaxSeen: 179,
			Dir: []DirEntry{
				{ID: 7, Ver: 3, Addr: "127.0.0.1:40107"},
				{ID: 12, Ver: 1, Addr: "127.0.0.1:40112"},
			},
		},
		{Kind: FrameHello, Msg: netmodel.Message{From: 1001, To: 1000, Seg: segment.None, Sent: 1},
			Ctrl: []byte("sealed-hello-payload")},
		{Kind: FrameDirDelta, Msg: netmodel.Message{From: 1000, To: 1001, Seg: segment.None, Sent: 4},
			Dir: []DirEntry{
				{ID: 0, Ver: 9, Addr: "127.0.0.1:40100"},
				{ID: 1, Ver: 2, Addr: "[::1]:40101"},
				{ID: 250, Ver: 1, Addr: ""},
			},
			Ctrl: []byte{0xde, 0xad, 0xbe, 0xef}},
		{Kind: FrameEvent, Msg: netmodel.Message{From: 1000, To: 1002, Seg: segment.None, Sent: 17},
			Ctrl: make([]byte, 2000)},
		{Kind: FrameAck, Msg: netmodel.Message{From: 1002, To: 1000, Seg: 17, Sent: 0},
			Ctrl: []byte("reply")},
		{Kind: FrameAck, Msg: netmodel.Message{From: 1002, To: 1000, Seg: 3}},
	}
	for i, f := range frames {
		got, err := DecodeFrame(EncodeFrame(f))
		if err != nil {
			t.Fatalf("frame %d (%s): decode: %v", i, f.Kind, err)
		}
		if !reflect.DeepEqual(got, f) {
			t.Errorf("frame %d (%s): round trip\n got %+v\nwant %+v", i, f.Kind, got, f)
		}
	}
	// The decoded map must behave as a core.View for the planner.
	f := frames[4]
	got, _ := DecodeFrame(EncodeFrame(f))
	m, err := buffer.DecodeMap(got.MapImg, 600)
	if err != nil {
		t.Fatalf("decode map: %v", err)
	}
	for id := segment.ID(95); id < 185; id++ {
		if m.Has(id) != buf.Has(id) {
			t.Fatalf("decoded map disagrees with buffer at %d", id)
		}
	}
}

func TestWireDecodeErrors(t *testing.T) {
	good := EncodeFrame(Frame{Kind: FrameMap, Msg: netmodel.Message{From: 1, To: 2},
		Sessions: []SessionInfo{{Source: 1, Begin: 0, End: segment.None}}})
	delta := EncodeFrame(Frame{Kind: FrameDirDelta, Msg: netmodel.Message{From: 1, To: 2, Seg: segment.None},
		Dir:  []DirEntry{{ID: 3, Ver: 1, Addr: "127.0.0.1:40103"}},
		Ctrl: []byte("mac-bytes-here")})
	event := EncodeFrame(Frame{Kind: FrameEvent, Msg: netmodel.Message{From: 1, To: 2, Seg: segment.None, Sent: 5},
		Ctrl: []byte("sealed")})
	deny := EncodeFrame(Frame{Kind: FrameDeny, Msg: netmodel.Message{From: 9, To: 3, Seg: 12}})

	// A dir-delta claiming more entries than it carries.
	shortDelta := append([]byte(nil), delta...)
	shortDelta[wireHeaderLen] = 200

	// A map frame whose piggyback count exceeds the wire bound.
	fatMap := append([]byte(nil), good...)
	fatMap[len(fatMap)-1] = maxMapDirEntries + 1

	cases := map[string][]byte{
		"empty":                nil,
		"short header":         good[:10],
		"bad kind":             append([]byte{0x7f}, good[1:]...),
		"truncated payload":    good[:len(good)-3],
		"trailing junk":        append(append([]byte(nil), good...), 1, 2, 3),
		"re-req on deny":       append([]byte{byte(FrameDeny) | wireReReqBit}, deny[1:]...),
		"re-req on event":      append([]byte{byte(FrameEvent) | wireReReqBit}, event[1:]...),
		"truncated dir entry":  shortDelta,
		"truncated dir addr":   delta[:wireHeaderLen+2+5],
		"oversized piggyback":  fatMap,
		"truncated ctrl":       event[:len(event)-2],
		"short ctrl length":    event[:wireHeaderLen+1],
		"delta trailing junk":  append(append([]byte(nil), delta...), 9),
		"event trailing junk":  append(append([]byte(nil), event...), 9),
		"headerless dir-delta": EncodeFrame(Frame{Kind: FrameHello, Msg: netmodel.Message{From: 1, To: 2}})[:wireHeaderLen],
	}
	for name, b := range cases {
		if _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestWireGarbageFuzz hammers the decoder with mutated valid frames and
// raw noise: it must never panic, and whatever decodes must re-encode
// (the decoder's bounds checks are the only defense the UDP read loop
// has against a hostile or corrupted datagram).
func TestWireGarbageFuzz(t *testing.T) {
	seeds := [][]byte{
		EncodeFrame(Frame{Kind: FrameRequest, Msg: netmodel.Message{From: 3, To: 9, Seg: 77, Sent: 4}, ReReq: true}),
		EncodeFrame(Frame{Kind: FrameMap, Msg: netmodel.Message{From: 1, To: 2, Seg: segment.None},
			MaxSeen: 50, Rate: 5,
			Sessions: []SessionInfo{{Source: 1, Begin: 0, End: segment.None}},
			MapImg:   make([]byte, 80),
			Dir:      []DirEntry{{ID: 1, Ver: 1, Addr: "127.0.0.1:1"}}}),
		EncodeFrame(Frame{Kind: FrameDirDelta, Msg: netmodel.Message{From: 1, To: 2, Seg: segment.None},
			Dir:  []DirEntry{{ID: 3, Ver: 1, Addr: "addr"}, {ID: 4, Ver: 2, Addr: "other"}},
			Ctrl: []byte("tag")}),
		EncodeFrame(Frame{Kind: FrameEvent, Msg: netmodel.Message{From: 1, To: 2, Seg: segment.None, Sent: 9},
			Ctrl: []byte("payload-bytes")}),
	}
	rng := rand.New(rand.NewSource(0xf022))
	for round := 0; round < 20000; round++ {
		b := append([]byte(nil), seeds[round%len(seeds)]...)
		switch round % 3 {
		case 0: // flip random bytes
			for i := 0; i < 1+round%4; i++ {
				b[rng.Intn(len(b))] ^= byte(rng.Intn(256))
			}
		case 1: // truncate
			b = b[:rng.Intn(len(b)+1)]
		case 2: // extend with noise
			extra := make([]byte, rng.Intn(40))
			for i := range extra {
				extra[i] = byte(rng.Intn(256))
			}
			b = append(b, extra...)
		}
		f, err := DecodeFrame(b)
		if err != nil {
			continue
		}
		// Whatever survives decode must be internally consistent enough
		// to encode again without panicking.
		_ = EncodeFrame(f)
	}
}
