package runtime

import (
	"encoding/binary"
	"fmt"
	"math"

	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
)

// The binary wire format of one frame, little-endian. Request, deny
// and data frames are a fixed 29-byte header; a map frame adds the
// availability image (80 bytes for B=600) and the gossiped session
// timeline at 20 bytes per session, so it fits a 1500-byte MTU up to
// ~66 sessions and a loopback datagram up to the maxWireSessions
// bound, which EncodeFrame enforces by truncating the newest sessions
// (the prefix must survive — receivers merge timelines by index):
//
//	kind     uint8
//	from     uint32
//	to       uint32
//	seg      int64   (segment.None = -1 encoded two's-complement)
//	sent     int32   (sender's scheduling period)
//	arrival  float64 (shaped scenario-ms delay; 0 unshaped)
//	--- FrameMap only ---
//	maxSeen  int64
//	rate     float64 (IEEE 754 bits)
//	nsess    uint16
//	nsess ×  { source int32, begin int64, end int64 }
//	maplen   uint16
//	maplen × bytes   (buffer.Map wire image)

const wireHeaderLen = 1 + 4 + 4 + 8 + 4 + 8

// maxWireSessions bounds the gossiped timeline length on the wire
// (enforced on both encode and decode): a live event passes the floor
// a handful of times, scenario validation caps switches below the node
// count, and the bound keeps a hostile datagram from allocating
// unbounded session slices while keeping every frame inside one
// loopback datagram.
const maxWireSessions = 1024

// EncodeFrame serializes a frame into the binary wire format.
func EncodeFrame(f Frame) []byte {
	if len(f.Sessions) > maxWireSessions {
		f.Sessions = f.Sessions[:maxWireSessions]
	}
	n := wireHeaderLen
	if f.Kind == FrameMap {
		n += 8 + 8 + 2 + len(f.Sessions)*20 + 2 + len(f.MapImg)
	}
	b := make([]byte, 0, n)
	b = append(b, byte(f.Kind))
	b = binary.LittleEndian.AppendUint32(b, uint32(f.Msg.From))
	b = binary.LittleEndian.AppendUint32(b, uint32(f.Msg.To))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(f.Msg.Seg)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(f.Msg.Sent)))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f.Msg.ArrivalMS))
	if f.Kind != FrameMap {
		return b
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(f.MaxSeen)))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f.Rate))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(f.Sessions)))
	for _, s := range f.Sessions {
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(s.Source)))
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(s.Begin)))
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(s.End)))
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(f.MapImg)))
	b = append(b, f.MapImg...)
	return b
}

// DecodeFrame parses the binary wire format. The returned frame owns
// its slices (nothing aliases the input).
func DecodeFrame(b []byte) (Frame, error) {
	var f Frame
	if len(b) < wireHeaderLen {
		return f, fmt.Errorf("runtime: frame of %d bytes, want >= %d", len(b), wireHeaderLen)
	}
	f.Kind = FrameKind(b[0])
	if f.Kind < FrameMap || f.Kind > FrameData {
		return f, fmt.Errorf("runtime: unknown frame kind %d", b[0])
	}
	f.Msg.From = overlay.NodeID(binary.LittleEndian.Uint32(b[1:]))
	f.Msg.To = overlay.NodeID(binary.LittleEndian.Uint32(b[5:]))
	f.Msg.Seg = segment.ID(int64(binary.LittleEndian.Uint64(b[9:])))
	f.Msg.Sent = int(int32(binary.LittleEndian.Uint32(b[17:])))
	f.Msg.ArrivalMS = math.Float64frombits(binary.LittleEndian.Uint64(b[21:]))
	if f.Kind != FrameMap {
		return f, nil
	}
	rest := b[wireHeaderLen:]
	if len(rest) < 8+8+2 {
		return f, fmt.Errorf("runtime: truncated map frame (%d payload bytes)", len(rest))
	}
	f.MaxSeen = segment.ID(int64(binary.LittleEndian.Uint64(rest[0:])))
	f.Rate = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
	nsess := int(binary.LittleEndian.Uint16(rest[16:]))
	rest = rest[18:]
	if nsess > maxWireSessions {
		return f, fmt.Errorf("runtime: map frame advertises %d sessions (max %d)", nsess, maxWireSessions)
	}
	if len(rest) < nsess*20+2 {
		return f, fmt.Errorf("runtime: truncated session list (%d sessions, %d bytes left)", nsess, len(rest))
	}
	if nsess > 0 {
		f.Sessions = make([]SessionInfo, nsess)
		for i := range f.Sessions {
			f.Sessions[i] = SessionInfo{
				Source: overlay.NodeID(int32(binary.LittleEndian.Uint32(rest[i*20:]))),
				Begin:  segment.ID(int64(binary.LittleEndian.Uint64(rest[i*20+4:]))),
				End:    segment.ID(int64(binary.LittleEndian.Uint64(rest[i*20+12:]))),
			}
		}
	}
	rest = rest[nsess*20:]
	maplen := int(binary.LittleEndian.Uint16(rest[0:]))
	rest = rest[2:]
	if len(rest) != maplen {
		return f, fmt.Errorf("runtime: map image length %d, frame carries %d bytes", maplen, len(rest))
	}
	if maplen > 0 {
		f.MapImg = append([]byte(nil), rest...)
	}
	return f, nil
}
