package runtime

import (
	"encoding/binary"
	"fmt"
	"math"

	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
)

// The binary wire format of one frame, little-endian. Request, deny
// and data frames are a fixed 29-byte header; a map frame adds the
// availability image (80 bytes for B=600), the gossiped session
// timeline at 20 bytes per session, and a small piggybacked directory
// batch, so it fits a 1500-byte MTU up to ~60 sessions and a loopback
// datagram up to the maxWireSessions bound, which EncodeFrame enforces
// by truncating the newest sessions (the prefix must survive —
// receivers merge timelines by index):
//
//	kind     uint8   (bit 7 = re-request flag, FrameRequest only)
//	from     uint32
//	to       uint32
//	seg      int64   (segment.None = -1 encoded two's-complement;
//	                  FrameAck: the acked sequence number)
//	sent     int32   (sender's scheduling period; control frames: the
//	                  control sequence number)
//	arrival  float64 (shaped scenario-ms delay; 0 unshaped)
//	--- FrameMap only ---
//	maxSeen  int64
//	rate     float64 (IEEE 754 bits)
//	nsess    uint16
//	nsess ×  { source int32, begin int64, end int64 }
//	maplen   uint16
//	maplen × bytes   (buffer.Map wire image)
//	ndir     uint8   (piggybacked directory entries)
//	ndir  ×  dir entry
//	--- FrameDirDelta only ---
//	ndir     uint16
//	ndir  ×  dir entry
//	ctrllen  uint16  (authentication tag)
//	ctrllen × bytes
//	--- FrameHello / FrameEvent / FrameAck only ---
//	ctrllen  uint16
//	ctrllen × bytes  (sealed control payload, internal/cluster)
//
// A dir entry is { id uint32, ver uint32, addrlen uint8, addrlen ×
// bytes }.

const wireHeaderLen = 1 + 4 + 4 + 8 + 4 + 8

// wireReReqBit flags a FrameRequest as a loss-induced re-request in the
// kind byte's high bit — the wire-level counterpart of the simulator's
// NetReRequests accounting.
const wireReReqBit = 0x80

// maxWireSessions bounds the gossiped timeline length on the wire
// (enforced on both encode and decode): a live event passes the floor
// a handful of times, scenario validation caps switches below the node
// count, and the bound keeps a hostile datagram from allocating
// unbounded session slices while keeping every frame inside one
// loopback datagram.
const maxWireSessions = 1024

// maxWireDirEntries bounds a directory batch on the wire (FrameDirDelta
// anti-entropy rounds rotate through larger directories across rounds);
// maxMapDirEntries bounds the FrameMap piggyback so advertisements stay
// near one MTU.
const (
	maxWireDirEntries = 256
	maxMapDirEntries  = 8
)

// maxWireCtrl bounds a sealed control payload (a resolved directive, a
// status batch or a report chunk plus its authentication tag) to one
// comfortable loopback datagram.
const maxWireCtrl = 60000

// EncodeFrame serializes a frame into the binary wire format.
func EncodeFrame(f Frame) []byte {
	if len(f.Sessions) > maxWireSessions {
		f.Sessions = f.Sessions[:maxWireSessions]
	}
	switch f.Kind {
	case FrameMap:
		if len(f.Dir) > maxMapDirEntries {
			f.Dir = f.Dir[:maxMapDirEntries]
		}
	case FrameDirDelta:
		if len(f.Dir) > maxWireDirEntries {
			f.Dir = f.Dir[:maxWireDirEntries]
		}
	}
	n := wireHeaderLen
	if f.Kind == FrameMap {
		n += 8 + 8 + 2 + len(f.Sessions)*20 + 2 + len(f.MapImg) + 1 + dirWireLen(f.Dir)
	}
	b := make([]byte, 0, n)
	kind := byte(f.Kind)
	if f.ReReq && f.Kind == FrameRequest {
		kind |= wireReReqBit
	}
	b = append(b, kind)
	b = binary.LittleEndian.AppendUint32(b, uint32(f.Msg.From))
	b = binary.LittleEndian.AppendUint32(b, uint32(f.Msg.To))
	b = binary.LittleEndian.AppendUint64(b, uint64(int64(f.Msg.Seg)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(f.Msg.Sent)))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f.Msg.ArrivalMS))
	switch f.Kind {
	case FrameMap:
		b = binary.LittleEndian.AppendUint64(b, uint64(int64(f.MaxSeen)))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f.Rate))
		b = binary.LittleEndian.AppendUint16(b, uint16(len(f.Sessions)))
		for _, s := range f.Sessions {
			b = binary.LittleEndian.AppendUint32(b, uint32(int32(s.Source)))
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(s.Begin)))
			b = binary.LittleEndian.AppendUint64(b, uint64(int64(s.End)))
		}
		b = binary.LittleEndian.AppendUint16(b, uint16(len(f.MapImg)))
		b = append(b, f.MapImg...)
		b = append(b, byte(len(f.Dir)))
		b = appendDirEntries(b, f.Dir)
	case FrameDirDelta:
		b = binary.LittleEndian.AppendUint16(b, uint16(len(f.Dir)))
		b = appendDirEntries(b, f.Dir)
		b = appendCtrl(b, f.Ctrl)
	case FrameHello, FrameEvent, FrameAck, FramePing, FramePong:
		b = appendCtrl(b, f.Ctrl)
	}
	return b
}

func dirWireLen(entries []DirEntry) int {
	n := 0
	for _, e := range entries {
		n += 4 + 4 + 1 + len(e.Addr)
	}
	return n
}

func appendDirEntries(b []byte, entries []DirEntry) []byte {
	for _, e := range entries {
		b = binary.LittleEndian.AppendUint32(b, uint32(e.ID))
		b = binary.LittleEndian.AppendUint32(b, e.Ver)
		addr := e.Addr
		if len(addr) > 255 {
			addr = addr[:255]
		}
		b = append(b, byte(len(addr)))
		b = append(b, addr...)
	}
	return b
}

func appendCtrl(b, ctrl []byte) []byte {
	if len(ctrl) > maxWireCtrl {
		ctrl = ctrl[:maxWireCtrl]
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(ctrl)))
	return append(b, ctrl...)
}

// DecodeFrame parses the binary wire format. The returned frame owns
// its slices (nothing aliases the input).
func DecodeFrame(b []byte) (Frame, error) {
	var f Frame
	if len(b) < wireHeaderLen {
		return f, fmt.Errorf("runtime: frame of %d bytes, want >= %d", len(b), wireHeaderLen)
	}
	f.Kind = FrameKind(b[0] &^ wireReReqBit)
	f.ReReq = b[0]&wireReReqBit != 0
	if f.Kind < FrameMap || f.Kind > FramePong {
		return f, fmt.Errorf("runtime: unknown frame kind %d", b[0])
	}
	if f.ReReq && f.Kind != FrameRequest {
		return f, fmt.Errorf("runtime: re-request flag on a %s frame", f.Kind)
	}
	f.Msg.From = overlay.NodeID(binary.LittleEndian.Uint32(b[1:]))
	f.Msg.To = overlay.NodeID(binary.LittleEndian.Uint32(b[5:]))
	f.Msg.Seg = segment.ID(int64(binary.LittleEndian.Uint64(b[9:])))
	f.Msg.Sent = int(int32(binary.LittleEndian.Uint32(b[17:])))
	f.Msg.ArrivalMS = math.Float64frombits(binary.LittleEndian.Uint64(b[21:]))
	rest := b[wireHeaderLen:]
	switch f.Kind {
	case FrameMap:
		return decodeMapPayload(f, rest)
	case FrameDirDelta:
		if len(rest) < 2 {
			return f, fmt.Errorf("runtime: truncated dir-delta frame")
		}
		ndir := int(binary.LittleEndian.Uint16(rest[0:]))
		if ndir > maxWireDirEntries {
			return f, fmt.Errorf("runtime: dir-delta advertises %d entries (max %d)", ndir, maxWireDirEntries)
		}
		var err error
		f.Dir, rest, err = decodeDirEntries(rest[2:], ndir)
		if err != nil {
			return f, err
		}
		f.Ctrl, rest, err = decodeCtrl(rest)
		if err != nil {
			return f, err
		}
		if len(rest) != 0 {
			return f, fmt.Errorf("runtime: %d trailing bytes on a dir-delta frame", len(rest))
		}
		return f, nil
	case FrameHello, FrameEvent, FrameAck, FramePing, FramePong:
		var err error
		f.Ctrl, rest, err = decodeCtrl(rest)
		if err != nil {
			return f, err
		}
		if len(rest) != 0 {
			return f, fmt.Errorf("runtime: %d trailing bytes on a %s frame", len(rest), f.Kind)
		}
		return f, nil
	default:
		if len(rest) != 0 {
			return f, fmt.Errorf("runtime: %d trailing bytes on a %s frame", len(rest), f.Kind)
		}
		return f, nil
	}
}

func decodeMapPayload(f Frame, rest []byte) (Frame, error) {
	if len(rest) < 8+8+2 {
		return f, fmt.Errorf("runtime: truncated map frame (%d payload bytes)", len(rest))
	}
	f.MaxSeen = segment.ID(int64(binary.LittleEndian.Uint64(rest[0:])))
	f.Rate = math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
	nsess := int(binary.LittleEndian.Uint16(rest[16:]))
	rest = rest[18:]
	if nsess > maxWireSessions {
		return f, fmt.Errorf("runtime: map frame advertises %d sessions (max %d)", nsess, maxWireSessions)
	}
	if len(rest) < nsess*20+2 {
		return f, fmt.Errorf("runtime: truncated session list (%d sessions, %d bytes left)", nsess, len(rest))
	}
	if nsess > 0 {
		f.Sessions = make([]SessionInfo, nsess)
		for i := range f.Sessions {
			f.Sessions[i] = SessionInfo{
				Source: overlay.NodeID(int32(binary.LittleEndian.Uint32(rest[i*20:]))),
				Begin:  segment.ID(int64(binary.LittleEndian.Uint64(rest[i*20+4:]))),
				End:    segment.ID(int64(binary.LittleEndian.Uint64(rest[i*20+12:]))),
			}
		}
	}
	rest = rest[nsess*20:]
	maplen := int(binary.LittleEndian.Uint16(rest[0:]))
	rest = rest[2:]
	if len(rest) < maplen+1 {
		return f, fmt.Errorf("runtime: map image length %d, frame carries %d bytes", maplen, len(rest))
	}
	if maplen > 0 {
		f.MapImg = append([]byte(nil), rest[:maplen]...)
	}
	rest = rest[maplen:]
	ndir := int(rest[0])
	if ndir > maxMapDirEntries {
		return f, fmt.Errorf("runtime: map frame piggybacks %d dir entries (max %d)", ndir, maxMapDirEntries)
	}
	var err error
	f.Dir, rest, err = decodeDirEntries(rest[1:], ndir)
	if err != nil {
		return f, err
	}
	if len(rest) != 0 {
		return f, fmt.Errorf("runtime: %d trailing bytes on a map frame", len(rest))
	}
	return f, nil
}

func decodeDirEntries(b []byte, n int) ([]DirEntry, []byte, error) {
	if n == 0 {
		return nil, b, nil
	}
	entries := make([]DirEntry, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 9 {
			return nil, b, fmt.Errorf("runtime: truncated dir entry %d of %d", i, n)
		}
		e := DirEntry{
			ID:  overlay.NodeID(binary.LittleEndian.Uint32(b[0:])),
			Ver: binary.LittleEndian.Uint32(b[4:]),
		}
		alen := int(b[8])
		b = b[9:]
		if len(b) < alen {
			return nil, b, fmt.Errorf("runtime: truncated dir entry address (%d of %d bytes)", len(b), alen)
		}
		e.Addr = string(b[:alen])
		b = b[alen:]
		entries = append(entries, e)
	}
	return entries, b, nil
}

func decodeCtrl(b []byte) ([]byte, []byte, error) {
	if len(b) < 2 {
		return nil, b, fmt.Errorf("runtime: truncated control payload length")
	}
	clen := int(binary.LittleEndian.Uint16(b[0:]))
	b = b[2:]
	if len(b) < clen {
		return nil, b, fmt.Errorf("runtime: control payload %d bytes, frame carries %d", clen, len(b))
	}
	var ctrl []byte
	if clen > 0 {
		ctrl = append([]byte(nil), b[:clen]...)
	}
	return ctrl, b[clen:], nil
}
