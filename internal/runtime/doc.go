// Package runtime executes gossipstream scenarios as a live system:
// every node is a goroutine-backed peer exchanging real frames over a
// pluggable Transport, paced by a wall-clock scheduler in place of the
// simulator's tick loop. It is the second execution backend of the
// repository — same protocol, same scenarios, same metrics, different
// clock.
//
// # Architecture
//
//	scenario.Scenario ──FromScenario──▶ Runner
//	                                      │ control plane (channels)
//	                      ┌───────────────┼───────────────┐
//	                   peer 0          peer 1   ...    peer N-1     (goroutines)
//	                      └───────┬───────┴───────┬───────┘
//	                          Transport (Frame = netmodel.Message + map/request/deny)
//	                       ChanTransport         UDPTransport
//	                       (in-process)          (loopback sockets)
//
// The peers run the exact protocol core the simulator runs: request
// planning is the same core.Algorithm, playback and session discovery
// are the same sim.Playback state machine, and the capacity substrate
// uses the same bandwidth.Budget arithmetic. What changes is the
// substrate of truth: neighbor knowledge comes from decoded buffer-map
// frames instead of same-tick shared memory, grants arrive as data
// frames whenever the transport delivers them, and a supplier that
// cannot serve answers with a deny — the requester's bounded retry at
// an alternate supplier replaces the simulator's retry rounds.
//
// # The transit seam
//
// Data frames carry the netmodel.Message shape, and the shaped
// transports consult the same netmodel LinkPolicy (delay, loss,
// partition) the simulator's transit phase drains from its heaps —
// scenario events mutate one Model and both backends obey it. See
// internal/netmodel/transport.go and docs/RUNTIME.md.
//
// # Determinism
//
// None, at the bit level: goroutine scheduling and the wall clock
// replace the engine's seeded phase pipeline. Structure stays seeded
// (topology, profiles, stagger, successor picks), so repeated runs are
// statistically alike, and the parity tests in this package pin live
// results against the simulator within stated tolerances. Scenario
// timing in results is reported in scenario seconds (periods × τ)
// regardless of Options.TimeScale.
package runtime
