package runtime

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"gossipstream/internal/netmodel"
	"gossipstream/internal/overlay"
)

// UDPTransport carries frames as binary datagrams over real UDP
// sockets: one loopback socket per node, an address book mapping node
// ids to socket addresses, and a reader goroutine per socket decoding
// datagrams into the node's inbox. It is the deployment-shaped
// transport — everything that crosses a node boundary is a real
// serialized datagram subject to the kernel's network stack — while the
// peers themselves still run as goroutines of one process (the address
// book is in-process state; a multi-host runtime would distribute it).
//
// Shaping composes: with a LinkPolicy installed, data frames are
// delayed before the socket write and the loss/partition draws apply on
// top of whatever the real network does. The raw configuration (nil
// policy) lets loopback provide its own (near-zero) delay — the
// delivery-ratio parity configuration; a WAN-parameterized Model makes
// localhost behave like the traced swarm.
type UDPTransport struct {
	mu     sync.RWMutex
	nodes  map[overlay.NodeID]*udpNode
	addrs  map[overlay.NodeID]*net.UDPAddr
	shape  *shaper
	closed bool

	dataSent      atomic.Int64
	dataDelivered atomic.Int64
	dataLost      atomic.Int64
	delayMu       sync.Mutex
	delaySum      float64 // scenario ms

	wg sync.WaitGroup
}

type udpNode struct {
	conn  *net.UDPConn
	inbox chan Frame
}

// NewUDPTransport returns an empty UDP transport; seed drives the
// shaping draws.
func NewUDPTransport(seed int64) *UDPTransport {
	return &UDPTransport{
		nodes: make(map[overlay.NodeID]*udpNode),
		addrs: make(map[overlay.NodeID]*net.UDPAddr),
		shape: newShaper(seed),
	}
}

// Open binds a loopback UDP socket for the node and starts its reader.
func (t *UDPTransport) Open(id overlay.NodeID) (Endpoint, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
	if err != nil {
		return nil, fmt.Errorf("runtime: udp bind for node %d: %w", id, err)
	}
	// Generous kernel buffers: a time-compressed run bursts a whole
	// period's frames at once, and a reader goroutine on a loaded host
	// may lag behind the socket.
	conn.SetReadBuffer(1 << 20)
	conn.SetWriteBuffer(1 << 20)
	n := &udpNode{conn: conn, inbox: make(chan Frame, inboxCap)}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("runtime: udp transport closed")
	}
	if old, ok := t.nodes[id]; ok {
		old.conn.Close()
	}
	t.nodes[id] = n
	t.addrs[id] = conn.LocalAddr().(*net.UDPAddr)
	t.mu.Unlock()

	t.wg.Add(1)
	go t.read(n)
	return &udpEndpoint{t: t, id: id, node: n}, nil
}

// read decodes datagrams into the node's inbox until the socket closes.
func (t *UDPTransport) read(n *udpNode) {
	defer t.wg.Done()
	// Sized for the largest legal frame: a map datagram at the
	// maxWireSessions bound plus image (loopback carries datagrams far
	// beyond one physical MTU).
	buf := make([]byte, 32*1024)
	for {
		sz, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed (endpoint Close or transport Close)
		}
		f, err := DecodeFrame(buf[:sz])
		if err != nil {
			continue // malformed datagram: drop
		}
		select {
		case n.inbox <- f:
			if f.Kind == FrameData {
				t.dataDelivered.Add(1)
				if f.Msg.ArrivalMS > 0 {
					t.delayMu.Lock()
					t.delaySum += f.Msg.ArrivalMS
					t.delayMu.Unlock()
				}
			}
		default:
			if f.Kind == FrameData {
				t.dataLost.Add(1) // inbox overflow: datagram semantics
			}
		}
	}
}

// SetPolicy installs the delay/loss/partition policy.
func (t *UDPTransport) SetPolicy(p netmodel.LinkPolicy) { t.shape.setPolicy(p) }

// SetTick publishes the scheduling period and time compression.
func (t *UDPTransport) SetTick(tick int, wallPerScenarioMS float64) {
	t.shape.setTick(tick, wallPerScenarioMS)
}

// Stats returns cumulative data-plane counters.
func (t *UDPTransport) Stats() TransportStats {
	t.delayMu.Lock()
	delay := t.delaySum
	t.delayMu.Unlock()
	return TransportStats{
		DataSent:        t.dataSent.Load(),
		DataDelivered:   t.dataDelivered.Load(),
		DataLost:        t.dataLost.Load(),
		DelayScenarioMS: delay,
	}
}

// Close shuts every socket down and reaps the readers.
func (t *UDPTransport) Close() {
	t.shape.stop()
	t.mu.Lock()
	t.closed = true
	for _, n := range t.nodes {
		n.conn.Close()
	}
	t.nodes = make(map[overlay.NodeID]*udpNode)
	t.addrs = make(map[overlay.NodeID]*net.UDPAddr)
	t.mu.Unlock()
	t.wg.Wait()
}

// send routes one frame through the shaper onto the wire.
func (t *UDPTransport) send(from *udpNode, f Frame) {
	if f.Kind == FrameData {
		t.dataSent.Add(1)
	}
	delivered := t.shape.route(f, func(f Frame) { t.write(from, f) })
	if !delivered && f.Kind == FrameData {
		t.dataLost.Add(1) // severed at injection
	}
}

// write serializes the frame and puts it on the sender's socket.
func (t *UDPTransport) write(from *udpNode, f Frame) {
	if f.Kind == frameDropped {
		t.dataLost.Add(1)
		return
	}
	t.mu.RLock()
	addr, ok := t.addrs[f.Msg.To]
	closed := t.closed
	t.mu.RUnlock()
	if !ok || closed {
		return // destination detached: the datagram evaporates
	}
	from.conn.WriteToUDP(EncodeFrame(f), addr)
}

type udpEndpoint struct {
	t    *UDPTransport
	id   overlay.NodeID
	node *udpNode
}

func (e *udpEndpoint) Send(f Frame) {
	f.Msg.From = e.id
	e.t.send(e.node, f)
}

func (e *udpEndpoint) Recv() <-chan Frame { return e.node.inbox }

func (e *udpEndpoint) Close() {
	e.t.mu.Lock()
	if e.t.nodes[e.id] == e.node {
		delete(e.t.nodes, e.id)
		delete(e.t.addrs, e.id)
	}
	e.t.mu.Unlock()
	e.node.conn.Close()
}
