package runtime

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"gossipstream/internal/netmodel"
	"gossipstream/internal/overlay"
)

// udpSocketBuf is the explicit kernel buffer request for every node
// socket. A time-compressed run bursts a whole period's frames at once
// and a reader goroutine on a loaded host may lag far behind the
// socket; the kernel clamps the request to net.core.rmem_max, so this
// asks for plenty and takes what it gets.
const udpSocketBuf = 4 << 20

// AddrBook resolves node ids to socket addresses beyond the locally
// opened sockets — the seam through which a cluster's gossiped address
// directory plugs into the transport. Publish announces a socket this
// process bound; Resolve answers where a remote node's socket lives;
// Piggyback and MergeWire attach and absorb the small directory batches
// that ride every map advertisement, spreading the directory epidemic
// along the same links the data plane uses.
type AddrBook interface {
	Resolve(id overlay.NodeID) (string, bool)
	Publish(id overlay.NodeID, addr string)
	Piggyback(max int) []DirEntry
	MergeWire(entries []DirEntry)
}

// UDPTransport carries frames as binary datagrams over real UDP
// sockets: one loopback socket per node, an address book mapping node
// ids to socket addresses, and a reader goroutine per socket decoding
// datagrams into the node's inbox. With an AddrBook installed the
// transport spans processes: locally unknown destinations resolve
// through the gossiped directory, locally bound sockets are published
// into it, and map frames carry directory piggybacks both ways.
//
// Shaping composes: with a LinkPolicy installed, data frames are
// delayed before the socket write and the loss/partition draws apply on
// top of whatever the real network does. The raw configuration (nil
// policy) lets loopback provide its own (near-zero) delay — the
// delivery-ratio parity configuration; a WAN-parameterized Model makes
// localhost behave like the traced swarm.
type UDPTransport struct {
	mu     sync.RWMutex
	nodes  map[overlay.NodeID]*udpNode
	addrs  map[overlay.NodeID]*net.UDPAddr
	remote map[string]*net.UDPAddr // resolved AddrBook endpoints, by string form
	book   AddrBook
	shape  *shaper
	closed bool

	dataSent      atomic.Int64
	dataDelivered atomic.Int64
	dataLost      atomic.Int64
	inboxDropped  atomic.Int64
	malformed     atomic.Int64
	delayMu       sync.Mutex
	delaySum      float64 // scenario ms

	wg sync.WaitGroup
}

type udpNode struct {
	conn  *net.UDPConn
	inbox chan Frame
}

// NewUDPTransport returns an empty UDP transport; seed drives the
// shaping draws.
func NewUDPTransport(seed int64) *UDPTransport {
	return &UDPTransport{
		nodes:  make(map[overlay.NodeID]*udpNode),
		addrs:  make(map[overlay.NodeID]*net.UDPAddr),
		remote: make(map[string]*net.UDPAddr),
		shape:  newShaper(seed),
	}
}

// SetAddrBook installs the gossiped address directory (nil: purely
// local, the single-process configuration). Must be set before Open.
func (t *UDPTransport) SetAddrBook(b AddrBook) {
	t.mu.Lock()
	t.book = b
	t.mu.Unlock()
}

// Open binds a loopback UDP socket for the node and starts its reader.
func (t *UDPTransport) Open(id overlay.NodeID) (Endpoint, error) {
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0})
	if err != nil {
		return nil, fmt.Errorf("runtime: udp bind for node %d: %w", id, err)
	}
	conn.SetReadBuffer(udpSocketBuf)
	conn.SetWriteBuffer(udpSocketBuf)
	n := &udpNode{conn: conn, inbox: make(chan Frame, inboxCap)}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("runtime: udp transport closed")
	}
	if old, ok := t.nodes[id]; ok {
		old.conn.Close()
	}
	addr := conn.LocalAddr().(*net.UDPAddr)
	t.nodes[id] = n
	t.addrs[id] = addr
	book := t.book
	t.mu.Unlock()

	if book != nil {
		book.Publish(id, addr.String())
	}
	t.wg.Add(1)
	go t.read(n)
	return &udpEndpoint{t: t, id: id, node: n}, nil
}

// read decodes datagrams into the node's inbox until the socket closes.
func (t *UDPTransport) read(n *udpNode) {
	defer t.wg.Done()
	// Sized for the largest legal frame: a map datagram at the
	// maxWireSessions bound plus image (loopback carries datagrams far
	// beyond one physical MTU).
	buf := make([]byte, 64*1024)
	for {
		sz, _, err := n.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed (endpoint Close or transport Close)
		}
		f, err := DecodeFrame(buf[:sz])
		if err != nil {
			t.malformed.Add(1)
			continue // malformed datagram: drop
		}
		if len(f.Dir) > 0 {
			// Absorb the directory piggyback; peers never see it.
			t.mu.RLock()
			book := t.book
			t.mu.RUnlock()
			if book != nil {
				book.MergeWire(f.Dir)
			}
			f.Dir = nil
		}
		select {
		case n.inbox <- f:
			if f.Kind == FrameData {
				t.dataDelivered.Add(1)
				if f.Msg.ArrivalMS > 0 {
					t.delayMu.Lock()
					t.delaySum += f.Msg.ArrivalMS
					t.delayMu.Unlock()
				}
			}
		default:
			t.inboxDropped.Add(1)
			if f.Kind == FrameData {
				t.dataLost.Add(1) // inbox overflow: datagram semantics
			}
		}
	}
}

// SetPolicy installs the delay/loss/partition policy.
func (t *UDPTransport) SetPolicy(p netmodel.LinkPolicy) { t.shape.setPolicy(p) }

// SetTick publishes the scheduling period and time compression.
func (t *UDPTransport) SetTick(tick int, wallPerScenarioMS float64) {
	t.shape.setTick(tick, wallPerScenarioMS)
}

// Stats returns cumulative data-plane counters plus the kernel's own
// receive-drop account for the transport's live sockets.
func (t *UDPTransport) Stats() TransportStats {
	t.delayMu.Lock()
	delay := t.delaySum
	t.delayMu.Unlock()
	t.mu.RLock()
	ports := make(map[int]bool, len(t.nodes))
	for _, a := range t.addrs {
		ports[a.Port] = true
	}
	t.mu.RUnlock()
	return TransportStats{
		DataSent:        t.dataSent.Load(),
		DataDelivered:   t.dataDelivered.Load(),
		DataLost:        t.dataLost.Load(),
		DelayScenarioMS: delay,
		InboxDropped:    t.inboxDropped.Load(),
		Malformed:       t.malformed.Load(),
		KernelDrops:     kernelUDPDrops(ports),
	}
}

// Close shuts every socket down and reaps the readers.
func (t *UDPTransport) Close() {
	t.shape.stop()
	t.mu.Lock()
	t.closed = true
	for _, n := range t.nodes {
		n.conn.Close()
	}
	t.nodes = make(map[overlay.NodeID]*udpNode)
	t.addrs = make(map[overlay.NodeID]*net.UDPAddr)
	t.mu.Unlock()
	t.wg.Wait()
}

// send routes one frame through the shaper onto the wire.
func (t *UDPTransport) send(from *udpNode, f Frame) {
	if f.Kind == FrameData {
		t.dataSent.Add(1)
	}
	delivered := t.shape.route(f, func(f Frame) { t.write(from, f) })
	if !delivered && f.Kind == FrameData {
		t.dataLost.Add(1) // severed at injection
	}
}

// write serializes the frame and puts it on the sender's socket,
// resolving cross-process destinations through the address book and
// attaching the directory piggyback to map frames.
func (t *UDPTransport) write(from *udpNode, f Frame) {
	if f.Kind == frameDropped {
		t.dataLost.Add(1)
		return
	}
	t.mu.RLock()
	addr, ok := t.addrs[f.Msg.To]
	book := t.book
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return
	}
	if !ok && book != nil {
		addr, ok = t.resolveRemote(book, f.Msg.To)
	}
	if !ok {
		return // destination unknown everywhere: the datagram evaporates
	}
	if f.Kind == FrameMap && book != nil {
		f.Dir = book.Piggyback(maxMapDirEntries)
	}
	from.conn.WriteToUDP(EncodeFrame(f), addr)
}

// resolveRemote answers a cross-process destination from the address
// book, caching the parsed socket address by its string form (a node
// that rebinds publishes a new string, so the cache never serves a
// stale binding).
func (t *UDPTransport) resolveRemote(book AddrBook, id overlay.NodeID) (*net.UDPAddr, bool) {
	s, ok := book.Resolve(id)
	if !ok || s == "" {
		return nil, false
	}
	t.mu.RLock()
	addr, hit := t.remote[s]
	t.mu.RUnlock()
	if hit {
		return addr, true
	}
	addr, err := net.ResolveUDPAddr("udp", s)
	if err != nil {
		return nil, false
	}
	t.mu.Lock()
	t.remote[s] = addr
	t.mu.Unlock()
	return addr, true
}

type udpEndpoint struct {
	t    *UDPTransport
	id   overlay.NodeID
	node *udpNode
}

func (e *udpEndpoint) Send(f Frame) {
	f.Msg.From = e.id
	e.t.send(e.node, f)
}

func (e *udpEndpoint) Recv() <-chan Frame { return e.node.inbox }

func (e *udpEndpoint) Close() {
	e.t.mu.Lock()
	if e.t.nodes[e.id] == e.node {
		delete(e.t.nodes, e.id)
		delete(e.t.addrs, e.id)
	}
	e.t.mu.Unlock()
	e.node.conn.Close()
}
