package runtime

import (
	"math/rand"
	"sync"
	"time"

	"gossipstream/internal/netmodel"
	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
)

// FrameKind distinguishes the payloads peers exchange on the wire.
type FrameKind uint8

// The live protocol's frame alphabet. Data frames carry exactly the
// netmodel.Message shape the simulator's transit phase drains; the
// control-plane frames (map, request, deny) are the parts of the gossip
// protocol the simulator resolves in shared memory.
const (
	// FrameMap is the periodic buffer-map advertisement: the 620-bit
	// availability image plus the sender's high-water mark, advertised
	// supplier rate, and known session timeline (the paper's
	// synchronization metadata rides on the map exchange).
	FrameMap FrameKind = iota + 1
	// FrameRequest pulls one segment (Msg.Seg) from the destination.
	FrameRequest
	// FrameDeny answers a request the supplier had no capacity (or no
	// copy) for; the requester refunds its inbound budget and may retry
	// at another supplier.
	FrameDeny
	// FrameData lands one granted segment — the live counterpart of the
	// simulator's in-flight Message popping due.
	FrameData

	// The control-plane alphabet (internal/cluster): frames exchanged
	// between process agents, not peers. They share the codec and the
	// shaped transports with the data plane, so a partition or loss
	// burst severs membership and event delivery as realistically as it
	// severs segments.

	// FrameHello bootstraps a joining process against the starter node:
	// an authenticated Ctrl payload carrying the joiner's control
	// address. The starter answers with a FrameAck whose payload is the
	// welcome (shard assignment, scenario, directory seed).
	FrameHello
	// FrameDirDelta is directory anti-entropy: a batch of address
	// directory entries (Dir), pushed between agents and piggybacked in
	// small batches on FrameMap advertisements.
	FrameDirDelta
	// FrameEvent carries one control-plane message (a resolved scenario
	// directive, a status report, a metrics report chunk) as an
	// authenticated Ctrl payload, sequenced by Msg.Sent.
	FrameEvent
	// FrameAck acknowledges a FrameHello or FrameEvent by sequence
	// number (Msg.Seg carries the acked sequence) and may carry a reply
	// payload (the welcome, a stop-source's closing segment id).
	FrameAck
	// FramePing is the coordinator's keepalive probe to a suspected
	// worker (Msg.Seg carries a nonce). The worker's link answers from
	// its reader goroutine, so a pong proves the process is alive even
	// while its run loop is wedged.
	FramePing
	// FramePong answers a FramePing, echoing the nonce in Msg.Seg.
	FramePong
)

// String implements fmt.Stringer.
func (k FrameKind) String() string {
	switch k {
	case FrameMap:
		return "map"
	case FrameRequest:
		return "request"
	case FrameDeny:
		return "deny"
	case FrameData:
		return "data"
	case FrameHello:
		return "hello"
	case FrameDirDelta:
		return "dir-delta"
	case FrameEvent:
		return "event"
	case FrameAck:
		return "ack"
	case FramePing:
		return "ping"
	case FramePong:
		return "pong"
	}
	return "frame(?)"
}

// Control reports whether the kind belongs to the cluster control plane
// (agent-to-agent traffic) rather than the peer protocol.
func (k FrameKind) Control() bool { return k >= FrameHello }

// SessionInfo is one timeline session as gossiped on map frames.
type SessionInfo struct {
	Source overlay.NodeID
	Begin  segment.ID
	End    segment.ID // segment.None while the session is open
}

// DirEntry is one address-directory record as it travels on the wire:
// a node (or agent) id bound to a transport address, versioned so
// receivers keep the newest binding. Entries ride FrameDirDelta batches
// between cluster agents and piggyback in small batches on FrameMap
// advertisements — the anti-entropy path that spreads the directory
// without any static address list.
type DirEntry struct {
	ID   overlay.NodeID
	Ver  uint32
	Addr string
}

// Frame is one unit on a live transport. Msg carries the shared
// netmodel.Message shape on every frame (From and To always; Seg for
// request/deny/data; Sent is the sender's scheduling period); the
// remaining fields are the FrameMap payload.
type Frame struct {
	Kind FrameKind
	Msg  netmodel.Message

	// ReReq marks a FrameRequest as a re-request: the requester already
	// asked for this segment and the exchange timed out without data or
	// deny — on a lossy link, the loss-induced retry the simulator
	// counts as NetReRequests. One bit on the wire (the kind byte's high
	// bit).
	ReReq bool

	// Map payload (FrameMap only). The availability window's anchor id
	// rides inside MapImg (the wire image's 20-bit anchor field).
	MapImg   []byte // buffer.Map wire image (620 bits for B=600)
	MaxSeen  segment.ID
	Rate     float64 // advertised supplier rate R(j), segments/second
	Sessions []SessionInfo

	// Dir is the address-directory payload: the batch of a
	// FrameDirDelta, or the piggybacked entries of a FrameMap (the
	// transport attaches them on send and merges+strips them on
	// receive; peers never see them).
	Dir []DirEntry

	// Ctrl is the opaque control payload of FrameHello, FrameEvent and
	// FrameAck — sealed (HMAC-authenticated) by internal/cluster; the
	// codec only moves the bytes. Msg.Sent carries the control sequence
	// number; FrameAck's Msg.Seg carries the acked sequence.
	Ctrl []byte
}

// Endpoint is one node's attachment to a Transport: an outbox that
// shapes and routes frames, and an inbox channel the peer goroutine
// selects on. Send never blocks — a frame to a full inbox, a detached
// destination or across a severed link is dropped, exactly like a
// datagram.
type Endpoint interface {
	// Send queues one frame for delivery to f.Msg.To.
	Send(f Frame)
	// Recv is the endpoint's inbox. It is never closed; peers exit via
	// their control channel, not by observing transport shutdown.
	Recv() <-chan Frame
	// Close detaches the endpoint: subsequent frames to this node are
	// dropped.
	Close()
}

// Transport wires a set of node endpoints together. Implementations
// must support concurrent Send from many peer goroutines and mid-run
// Open (churn joiners). The delay/loss/partition behavior of a
// transport comes from the installed netmodel.LinkPolicy — the same
// policy object the simulator's heaps consult, mutated live by scenario
// events (latency shifts, loss bursts, partitions) through the runner.
type Transport interface {
	// Open attaches a node and returns its endpoint. Opening an id
	// twice replaces the previous attachment.
	Open(id overlay.NodeID) (Endpoint, error)
	// SetPolicy installs the delay/loss/partition policy (nil: deliver
	// everything immediately — the raw transport).
	SetPolicy(p netmodel.LinkPolicy)
	// SetTick publishes the current scheduling period to the policy
	// clock (loss bursts are tick-bounded) and the wall-milliseconds
	// that correspond to one scenario millisecond (time compression for
	// shaped delays).
	SetTick(tick int, wallPerScenarioMS float64)
	// Stats returns cumulative data-plane counters.
	Stats() TransportStats
	// Close shuts the transport down; in-flight shaped frames are
	// dropped.
	Close()
}

// TransportStats counts the data plane (FrameData only — maps, requests
// and denies are control traffic, accounted in bits by the peers).
// DelayScenarioMS sums the shaped (scenario-time) delay of delivered
// data frames; it stays zero on an unshaped transport, where the real
// network provides the delay.
type TransportStats struct {
	DataSent        int64
	DataDelivered   int64
	DataLost        int64 // policy loss draws + severed links
	DelayScenarioMS float64

	// Drop accounting across every frame kind (not just data): frames
	// lost to a full inbox, datagrams that failed to decode, and — on
	// the UDP transport — receive drops the kernel reported against the
	// transport's sockets (the buffer-pressure artifact explicit socket
	// sizing is meant to shrink).
	InboxDropped int64
	Malformed    int64
	KernelDrops  int64
}

// shaper applies a netmodel.LinkPolicy to frames on the wall clock: the
// transit seam's second consumer. Data frames and control-plane frames
// are delayed by DelayMS (compressed into wall time) and subjected to
// the loss draw; every frame kind respects partitions, mirroring the
// simulator (buffer maps and requests stop crossing a severed link, but
// only data messages are lossy — and the control plane, whose
// reliability comes from the cluster layer's retries, not the wire).
// The zero shaper (nil policy) delivers everything immediately.
type shaper struct {
	mu      sync.Mutex
	policy  netmodel.LinkPolicy
	rng     *rand.Rand
	tick    int
	wallPer float64 // wall ms per scenario ms (1/TimeScale scaling folded in)
	stopped bool
}

func newShaper(seed int64) *shaper {
	return &shaper{rng: rand.New(rand.NewSource(seed)), wallPer: 1}
}

func (s *shaper) setPolicy(p netmodel.LinkPolicy) {
	s.mu.Lock()
	s.policy = p
	s.mu.Unlock()
}

func (s *shaper) setTick(tick int, wallPerScenarioMS float64) {
	s.mu.Lock()
	s.tick = tick
	s.wallPer = wallPerScenarioMS
	s.mu.Unlock()
}

func (s *shaper) stop() {
	s.mu.Lock()
	s.stopped = true
	s.mu.Unlock()
}

// route decides one frame's fate: blocked (drop now), or deliver after
// a wall-clock delay (0 for control frames and unshaped transports).
// The loss draw happens at delivery time — like the transit phase's
// pop — so a partition or loss burst that begins mid-flight still
// catches the frame. deliver runs on the caller's goroutine for
// immediate frames and on a timer goroutine for delayed ones.
func (s *shaper) route(f Frame, deliver func(Frame)) (sent bool) {
	s.mu.Lock()
	p := s.policy
	if s.stopped || (p != nil && p.Blocked(f.Msg.From, f.Msg.To)) {
		s.mu.Unlock()
		return false
	}
	var wallDelay time.Duration
	if p != nil && (f.Kind == FrameData || f.Kind.Control()) {
		jitter := 0.0
		if j := p.JitterMS(); j > 0 {
			jitter = s.rng.Float64() * j
		}
		scenarioMS := p.DelayMS(f.Msg.From, f.Msg.To, jitter)
		f.Msg.ArrivalMS = scenarioMS // record the shaped delay on the message
		wallDelay = time.Duration(scenarioMS * s.wallPer * float64(time.Millisecond))
	}
	s.mu.Unlock()
	if wallDelay <= 0 {
		s.land(f, deliver)
		return true
	}
	// In-flight timers are not drained on shutdown: land re-checks the
	// stopped flag, so frames delayed past Close simply evaporate (the
	// documented drop-on-close semantics).
	time.AfterFunc(wallDelay, func() { s.land(f, deliver) })
	return true
}

// land applies the delivery-time policy checks (partition, loss) and
// hands surviving frames to deliver.
func (s *shaper) land(f Frame, deliver func(Frame)) {
	s.mu.Lock()
	p := s.policy
	stopped := s.stopped
	dropped := false
	if !stopped && p != nil {
		if p.Blocked(f.Msg.From, f.Msg.To) {
			dropped = true
		} else if f.Kind == FrameData || f.Kind.Control() {
			if loss := p.LossProb(s.tick); loss > 0 && s.rng.Float64() < loss {
				dropped = true
			}
		}
	}
	s.mu.Unlock()
	if stopped || dropped {
		if f.Kind == FrameData && !stopped {
			deliver(Frame{Kind: frameDropped, Msg: f.Msg})
		}
		return
	}
	deliver(f)
}

// frameDropped is the internal sentinel land hands to the transport's
// deliver hook for a lost data frame, so stats can count it; it never
// reaches a peer inbox.
const frameDropped FrameKind = 0
