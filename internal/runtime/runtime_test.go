package runtime

import (
	"runtime"
	"testing"

	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
)

// raceSmokeScenario exercises the full live event alphabet in one short
// run: handoff, crash, demote round-trip, churn burst, flash crowd,
// bandwidth shift, latency storm, loss burst, partition and heal — the
// -race CI scenario for the concurrent machinery (peer goroutines,
// shaped transport timers, control plane, policy mutation).
func raceSmokeScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name:        "live-race-smoke",
		Desc:        "every live event kind in 90 ticks",
		Nodes:       50,
		M:           5,
		Seed:        3,
		Spread:      8,
		Horizon:     25,
		Net:         true,
		NetLoss:     0.02,
		NetJitterMS: 150,
		ChurnLeave:  0.01,
		ChurnJoin:   0.01,
		Duration:    90,
		Events: []sim.Event{
			sim.LatencyShiftAt(10, 4),
			sim.SwitchAt(14, -1),
			sim.LossBurstAt(16, 8, 0.2),
			sim.LatencyShiftAt(22, 1),
			sim.PartitionAt(26, 0.4),
			sim.HealAt(34),
			sim.BandwidthShiftAt(38, 0.8),
			sim.FlashCrowdAt(42, 10, 100),
			sim.ChurnBurstAt(46, 6, 0.05, 0.05),
			// Demote the first retired speaker back to listener duty
			// before the crash retires (and kills) the second one.
			sim.DemoteAt(50, -1),
			sim.CrashAt(52, -1),
			sim.BandwidthShiftAt(74, 1.0),
			sim.MeasureAt(76, 10),
		},
	}
}

// TestLiveEventAlphabetSmoke runs the kitchen-sink scenario on the
// channel transport and checks the run survives with sane metrics.
// This is the CI -race job's main target.
func TestLiveEventAlphabetSmoke(t *testing.T) {
	sc := raceSmokeScenario()
	if err := sc.Validate(); err != nil {
		t.Fatalf("smoke scenario invalid: %v", err)
	}
	r, err := FromScenario(sc, sim.Fast, Options{TimeScale: 100})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 3 {
		t.Fatalf("got %d windows, want 3 (handoff, crash, measure)", len(res.Windows))
	}
	for _, w := range res.Windows {
		if w.Cohort == 0 {
			t.Errorf("window %d: empty cohort", w.Window)
		}
		if w.PlayedSegments == 0 {
			t.Errorf("window %d: nothing played", w.Window)
		}
	}
	if res.Windows[0].Kind != "switch" || res.Windows[1].Failure != true || res.Windows[2].Kind != "measure" {
		t.Errorf("window shapes: %s / %s / %s", res.Windows[0], res.Windows[1], res.Windows[2])
	}
	st := r.Stats()
	if st.Transport.DataDelivered == 0 {
		t.Error("no data frames delivered")
	}
	if st.Transport.DataLost == 0 {
		t.Error("a 2% lossy run with a partition lost nothing — shaping is not wired")
	}
	if st.Periods != 90 {
		t.Errorf("ran %d periods, want the explicit duration 90", st.Periods)
	}
}

// TestLiveUDPScenario runs a short lossless scenario over real UDP
// loopback sockets end to end.
func TestLiveUDPScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("udp scenario run takes a few seconds")
	}
	if raceEnabled && runtime.NumCPU() < 2 {
		t.Skip("race build on a single CPU overflows the socket buffers (see race_on_test.go)")
	}
	sc := scenario.PaperSingleSwitch().Scaled(40)
	tr := NewUDPTransport(9)
	r, err := FromScenario(sc, sim.Fast, Options{Transport: tr, TimeScale: 100})
	if err != nil {
		t.Skipf("udp transport unavailable: %v", err)
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 1 || res.Windows[0].Kind != "switch" {
		t.Fatalf("windows: %v", res.Windows)
	}
	w := res.Windows[0]
	if w.Cohort == 0 || len(w.PrepareS2Times) == 0 || w.PlayedSegments == 0 {
		t.Fatalf("empty metrics over udp: %s", w)
	}
	if st := r.Stats().Transport; st.DataDelivered == 0 {
		t.Fatal("no datagrams delivered")
	}
}

// TestLiveRunTwiceFails pins the one-shot contract.
func TestLiveRunTwiceFails(t *testing.T) {
	sc := scenario.PaperSingleSwitch().Scaled(20)
	sc.Events = []sim.Event{sim.SwitchAt(3, -1)}
	sc.Spread = 0
	sc.Horizon = 5
	r, err := FromScenario(sc, sim.Fast, Options{TimeScale: 200})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err == nil {
		t.Fatal("second Run did not fail")
	}
}
