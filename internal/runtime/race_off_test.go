//go:build !race

package runtime

// raceEnabled: see race_on_test.go.
const raceEnabled = false
