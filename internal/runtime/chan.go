package runtime

import (
	"sync"
	"sync/atomic"

	"gossipstream/internal/netmodel"
	"gossipstream/internal/overlay"
)

// inboxCap bounds one node's inbox. A peer receives a few dozen frames
// per period (M maps, its inbound budget in requests and data, denies);
// the cap is generous headroom for bursty scheduling, and overflow
// drops like a datagram rather than blocking the sender.
const inboxCap = 512

// ChanTransport is the in-process transport: per-node buffered channels
// with LinkPolicy shaping. It is the tests/CI transport — no sockets,
// no serialization, frames move by value — and the reference
// implementation of the Transport contract. With a nil (or zero-Flat)
// policy, delivery is immediate and lossless; with a *netmodel.Model
// installed, the same latency storms, loss bursts and partitions the
// simulator's transit phase applies are imposed on the wall clock.
type ChanTransport struct {
	mu      sync.RWMutex
	inboxes map[overlay.NodeID]chan Frame
	shape   *shaper
	closed  bool

	dataSent      atomic.Int64
	dataDelivered atomic.Int64
	dataLost      atomic.Int64
	delayMu       sync.Mutex
	delaySum      float64 // scenario ms
}

// NewChanTransport returns an empty in-process transport; seed drives
// the shaping draws (loss, jitter).
func NewChanTransport(seed int64) *ChanTransport {
	return &ChanTransport{
		inboxes: make(map[overlay.NodeID]chan Frame),
		shape:   newShaper(seed),
	}
}

// Open attaches a node.
func (t *ChanTransport) Open(id overlay.NodeID) (Endpoint, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch := make(chan Frame, inboxCap)
	t.inboxes[id] = ch
	return &chanEndpoint{t: t, id: id, inbox: ch}, nil
}

// SetPolicy installs the delay/loss/partition policy.
func (t *ChanTransport) SetPolicy(p netmodel.LinkPolicy) { t.shape.setPolicy(p) }

// SetTick publishes the scheduling period and time compression.
func (t *ChanTransport) SetTick(tick int, wallPerScenarioMS float64) {
	t.shape.setTick(tick, wallPerScenarioMS)
}

// Stats returns cumulative data-plane counters.
func (t *ChanTransport) Stats() TransportStats {
	t.delayMu.Lock()
	delay := t.delaySum
	t.delayMu.Unlock()
	return TransportStats{
		DataSent:        t.dataSent.Load(),
		DataDelivered:   t.dataDelivered.Load(),
		DataLost:        t.dataLost.Load(),
		DelayScenarioMS: delay,
	}
}

// Close shuts the transport down.
func (t *ChanTransport) Close() {
	t.shape.stop()
	t.mu.Lock()
	t.closed = true
	t.inboxes = make(map[overlay.NodeID]chan Frame)
	t.mu.Unlock()
}

// send routes one frame through the shaper into the destination inbox.
func (t *ChanTransport) send(f Frame) {
	if f.Kind == FrameData {
		t.dataSent.Add(1)
	}
	delivered := t.shape.route(f, t.deliver)
	if !delivered && f.Kind == FrameData {
		t.dataLost.Add(1) // severed at injection
	}
}

func (t *ChanTransport) deliver(f Frame) {
	if f.Kind == frameDropped {
		t.dataLost.Add(1)
		return
	}
	t.mu.RLock()
	ch, ok := t.inboxes[f.Msg.To]
	t.mu.RUnlock()
	if !ok {
		return // destination detached (churn): the datagram evaporates
	}
	select {
	case ch <- f:
		if f.Kind == FrameData {
			t.dataDelivered.Add(1)
			if f.Msg.ArrivalMS > 0 {
				t.delayMu.Lock()
				t.delaySum += f.Msg.ArrivalMS
				t.delayMu.Unlock()
			}
		}
	default:
		// Inbox overflow: drop like a datagram.
		if f.Kind == FrameData {
			t.dataLost.Add(1)
		}
	}
}

type chanEndpoint struct {
	t     *ChanTransport
	id    overlay.NodeID
	inbox chan Frame
}

func (e *chanEndpoint) Send(f Frame) {
	f.Msg.From = e.id
	e.t.send(f)
}

func (e *chanEndpoint) Recv() <-chan Frame { return e.inbox }

func (e *chanEndpoint) Close() {
	e.t.mu.Lock()
	if e.t.inboxes[e.id] == e.inbox {
		delete(e.t.inboxes, e.id)
	}
	e.t.mu.Unlock()
}
