//go:build race

package runtime

// raceEnabled reports that this binary was built with the race
// detector. The wall-clock parity and UDP end-to-end scenarios gate on
// raceEnabled && runtime.NumCPU() < 2: a race build's 5-10× slowdown
// on a single CPU saturates the pacer and overflows kernel socket
// buffers — a load artifact, not a concurrency question — and that
// failure mode was reproduced empirically on a 1-CPU container. With
// two or more CPUs the goroutine population gets real parallelism and
// the scenarios run under race like everywhere else (CI's main race
// job covers them). The event-alphabet smoke exercises the same
// concurrent machinery under race on every machine size.
const raceEnabled = true
