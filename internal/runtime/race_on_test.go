//go:build race

package runtime

// raceEnabled reports that this binary was built with the race
// detector: the wall-clock parity and UDP end-to-end scenarios skip
// themselves there (a saturated 1-CPU race build overflows kernel
// socket buffers and stretches every period — a load artifact, not a
// concurrency question; the event-alphabet smoke covers the
// concurrent machinery under race, and CI runs these scenarios in a
// race-free step).
const raceEnabled = true
