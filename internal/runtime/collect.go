package runtime

import (
	"gossipstream/internal/obs"
	"gossipstream/internal/overlay"
	"gossipstream/internal/sim"
)

// The measurement collector: the live counterpart of the simulator's
// window bookkeeping. Windows open at switch (and measure) events over
// a frozen cohort, accumulate the cohort's per-period reports, and
// close into the same sim.SwitchMetrics blocks the simulator emits —
// with completion times in scenario seconds (periods × τ), so the
// output of a live run reads identically to a simulated one. What does
// NOT survive the move to the wall clock is bit-level determinism and
// the per-tick ratio series (TrackRatios needs whole-cohort buffer
// scans the runner deliberately has no access to).

// unset marks a per-peer completion that has not happened yet.
const unset = -1

// cohortState tracks one cohort member through a window.
type cohortState struct {
	alive     bool
	finishS1  int // period the peer finished the old stream, unset
	prepareS2 int // period the peer gathered the new stream's startup window
	startS2   int // period the peer started playing the new stream
}

// liveWindow is the open measurement window.
type liveWindow struct {
	active        bool
	isSwitch      bool
	openTick      int
	horizon       int
	newSessionIdx int
	m             *sim.SwitchMetrics
	cohort        map[overlay.NodeID]*cohortState
	statsOpen     TransportStats
}

// openWindow freezes the cohort — every running, arrived, non-source
// peer — and starts accumulating.
func (r *Runner) openWindow(isSwitch bool, horizon int, ev sim.Event) {
	m := &sim.SwitchMetrics{
		Window: len(r.res.Windows),
		Kind:   "measure",
		Tick:   r.tick,
		Nodes:  r.activeCount(),
	}
	cohort := make(map[overlay.NodeID]*cohortState)
	for id := range r.peers {
		if r.activeListener(id) {
			cohort[id] = &cohortState{alive: true, finishS1: unset, prepareS2: unset, startS2: unset}
		}
	}
	m.Cohort = len(cohort)
	if isSwitch {
		m.Kind = "switch"
		m.OldSource = overlay.NodeID(r.timeline[len(r.timeline)-2].Source)
		m.NewSource = overlay.NodeID(r.timeline[len(r.timeline)-1].Source)
		m.Failure = ev.Failure
	}
	r.win = liveWindow{
		active:        true,
		isSwitch:      isSwitch,
		openTick:      r.tick,
		horizon:       horizon,
		newSessionIdx: len(r.timeline) - 1,
		m:             m,
		cohort:        cohort,
		statsOpen:     r.tr.Stats(),
	}
	if ob := r.obs; ob != nil {
		ob.windowOpen.Set(1)
		ob.trace.Emit(obs.TraceEvent{T: obs.EvWindowOpen, Tick: r.tick,
			Window: obs.P(m.Window), Kind: m.Kind, Cohort: m.Cohort})
	}
}

// windowObserve folds one peer report into the open window.
func (r *Runner) windowObserve(rep report) {
	if !r.win.active {
		return
	}
	m := r.win.m
	// Communication accounting covers the whole mesh, like the
	// simulator's global bit counters.
	m.ControlBits += rep.mapBits
	m.DataBits += rep.dataBits
	if r.policy != nil {
		// Loss-induced re-requests, counted at the supplier's re-grant
		// like the simulator's serve phase (and like the Net* counters,
		// only meaningful under a shaping policy).
		m.NetReRequests += int64(rep.reReqs)
	}
	cs, inCohort := r.win.cohort[rep.id]
	if !inCohort {
		return
	}
	cs.alive = rep.alive
	m.PlayedSegments += int64(rep.played)
	m.StalledSlots += int64(rep.stalled)
	if !r.win.isSwitch {
		return
	}
	if rep.finished == r.win.newSessionIdx-1 && cs.finishS1 == unset {
		cs.finishS1 = rep.period
	}
	if rep.started == r.win.newSessionIdx && cs.startS2 == unset {
		cs.startS2 = rep.period
	}
	for _, k := range rep.prepared {
		if k == r.win.newSessionIdx && cs.prepareS2 == unset {
			cs.prepareS2 = rep.period
		}
	}
}

// cohortDied marks a cohort member dead (churn or crash) so it stops
// counting toward completion and the unfinished tallies.
func (r *Runner) cohortDied(id overlay.NodeID) {
	if r.win.active {
		if cs, ok := r.win.cohort[id]; ok {
			cs.alive = false
		}
	}
}

// windowsTick runs the per-period window transition after all reports
// landed: close on cohort completion or horizon expiry (the simulator's
// record phase).
func (r *Runner) windowsTick() {
	if !r.win.active {
		return
	}
	elapsed := r.tick - r.win.openTick + 1
	switch {
	case r.win.isSwitch && r.cohortComplete():
		r.closeWindow(elapsed, false, false)
	case elapsed >= r.win.horizon:
		r.closeWindow(r.win.horizon, true, false)
	}
}

// cohortComplete reports whether every surviving cohort member finished
// the old stream and prepared the new one.
func (r *Runner) cohortComplete() bool {
	for _, cs := range r.win.cohort {
		if !cs.alive {
			continue
		}
		if cs.finishS1 == unset || cs.prepareS2 == unset {
			return false
		}
	}
	return true
}

// timeSince converts a completion period into seconds after the
// window's opening instant — the same convention as the simulator
// (events land at the end of their period).
func (r *Runner) timeSince(period int) float64 {
	return float64(period-r.win.openTick+1) * r.par.tau
}

// closeWindow finalizes the open window (no-op when none is open).
func (r *Runner) closeWindow(measured int, hitHorizon, interrupted bool) {
	if !r.win.active {
		return
	}
	m := r.win.m
	m.MeasuredTicks = measured
	m.HitHorizon = hitHorizon
	m.Interrupted = interrupted
	for _, cs := range r.win.cohort {
		if !r.win.isSwitch {
			continue
		}
		if cs.finishS1 != unset {
			m.FinishS1Times = append(m.FinishS1Times, r.timeSince(cs.finishS1))
		} else if cs.alive {
			m.UnfinishedS1++
		}
		if cs.prepareS2 != unset {
			m.PrepareS2Times = append(m.PrepareS2Times, r.timeSince(cs.prepareS2))
		} else if cs.alive {
			m.UnpreparedS2++
		}
		if cs.startS2 != unset {
			m.StartS2Times = append(m.StartS2Times, r.timeSince(cs.startS2))
		}
	}
	// Transport accounting over the window: only meaningful when a
	// network model shapes the transport (otherwise the counters would
	// report the mechanics of the in-process transport, which have no
	// simulator counterpart and would clutter the comparison).
	if r.policy != nil {
		stats := r.tr.Stats()
		m.NetDelivered = stats.DataDelivered - r.win.statsOpen.DataDelivered
		m.NetLost = stats.DataLost - r.win.statsOpen.DataLost
		m.NetDelaySeconds = (stats.DelayScenarioMS - r.win.statsOpen.DelayScenarioMS) / 1000
	}
	r.res.Windows = append(r.res.Windows, m)
	r.win.active = false
	if ob := r.obs; ob != nil {
		ob.windows.Inc()
		ob.windowOpen.Set(0)
		ob.trace.Emit(obs.TraceEvent{T: obs.EvWindowClose, Tick: r.tick,
			Window: obs.P(m.Window), Measured: m.MeasuredTicks,
			Unfinished: m.UnfinishedS1, Unprepared: m.UnpreparedS2})
	}
}

// finalize mirrors the simulator: the first switch window (or the first
// window of any kind) becomes the Result's embedded flat metrics.
func (r *Runner) finalize() {
	for _, w := range r.res.Windows {
		if w.Kind == "switch" {
			r.res.SwitchMetrics = *w
			return
		}
	}
	if len(r.res.Windows) > 0 {
		r.res.SwitchMetrics = *r.res.Windows[0]
	}
}
