package runtime

import (
	"sort"

	"gossipstream/internal/bandwidth"
	"gossipstream/internal/overlay"
	"gossipstream/internal/segment"
	"gossipstream/internal/sim"
)

// Shard re-ownership after a worker fail-stop. The coordinator declares
// a shard dead (internal/cluster's failure detector), then asks the
// runner to re-resolve that shard's peers from its merged status view:
// plain listeners are respawned on surviving shards — each anchored at
// its neighborhood's playback frontier, exactly like a churn joiner —
// while role-holders (old sources) leave the overlay with their edges
// repaired, and a live source dies through the ordinary crash-switch
// machinery. The result is a batch of Directives broadcast on the same
// sequenced, authenticated channel as every scripted event, so every
// surviving process replays the identical re-mapping.

// RespawnSpec is one reassigned peer: the surviving shard that adopts
// it and the full join wiring it respawns with. The JoinSpec restates
// the peer's original bandwidth profile (from the profile ledger every
// process keeps) — no RNG draw happens at respawn time.
type RespawnSpec struct {
	Owner int
	Join  JoinSpec
}

// maxRespawnsPerDirective chunks a large reassignment across several
// directives so each stays well under the control frame's payload
// bound (maxWireCtrl).
const maxRespawnsPerDirective = 64

// respawnSeedSalt separates a respawned peer's RNG stream from its
// first incarnation's: the old goroutine may have consumed any prefix
// of the original stream before the crash.
const respawnSeedSalt = 0x0fa1_10ff

// ResolveFailover re-resolves a dead shard's peers into reassignment
// directives (coordinator side). survivors are the shards still in the
// run, the resolving shard included; orphaned listeners are distributed
// round-robin across them in ascending id order. srcDied reports that
// the dead shard owned the live source — the caller must follow up
// with a crash switch (ResolveFailureSwitch or the pending stop-source
// resolution), which handles that node's departure itself.
func (r *Runner) ResolveFailover(deadShard int, survivors []int) (dirs []*Directive, srcDied bool) {
	order := append([]int(nil), survivors...)
	sort.Ints(order)
	cur := overlay.NodeID(r.timeline[len(r.timeline)-1].Source)

	var lost, orphans []overlay.NodeID
	for i := 0; i < r.g.N(); i++ {
		id := overlay.NodeID(i)
		if r.dead[id] || r.ownerOf(id) != deadShard {
			continue
		}
		switch {
		case id == cur:
			srcDied = true
		case r.roles[id]:
			// An ex-source died with its shard: its session history is
			// not reconstructible, so it leaves like a churn victim.
			lost = append(lost, id)
		default:
			orphans = append(orphans, id)
		}
	}

	if len(lost) > 0 {
		d := &Directive{Kind: DirMembership, Tick: r.tick, Resolved: true}
		for _, id := range lost {
			d.Repair = append(d.Repair, r.dir.Leave(id)...)
			r.dead[id] = true
			d.Leaves = append(d.Leaves, id)
		}
		dirs = append(dirs, d)
	}

	var d *Directive
	for i, id := range orphans {
		if d == nil {
			d = &Directive{Kind: DirReassign, Tick: r.tick, DeadShard: deadShard, Resolved: true}
		}
		d.Respawns = append(d.Respawns, RespawnSpec{
			Owner: order[i%len(order)],
			Join:  r.respawnSpec(id),
		})
		if len(d.Respawns) >= maxRespawnsPerDirective {
			dirs = append(dirs, d)
			d = nil
		}
	}
	if d != nil {
		dirs = append(dirs, d)
	}
	return dirs, srcDied
}

// respawnSpec rebuilds one orphan's join wiring: current adjacency from
// the graph, the playback anchor from its neighbors' reported frontier
// (the churn-join rule — "follow the neighbors' current steps"), and
// the bandwidth profile restated from the ledger.
func (r *Runner) respawnSpec(id overlay.NodeID) JoinSpec {
	anchor := segment.ID(0)
	for _, v := range r.g.Neighbors(id) {
		if rep, ok := r.lastRep[v]; ok && rep.alive && rep.windowLo > anchor {
			anchor = rep.windowLo
		}
	}
	if anchor == 0 {
		// No live neighbor report (an isolated corner): start at the
		// current session's first segment.
		anchor = r.timeline[len(r.timeline)-1].Begin
	}
	idx, known := 0, 1
	for si, s := range r.timeline {
		if s.Contains(anchor) {
			idx, known = si, si+1
		}
	}
	prof := r.profile[id]
	return JoinSpec{
		ID:         id,
		Neighbors:  append([]overlay.NodeID(nil), r.g.Neighbors(id)...),
		Anchor:     anchor,
		SessionIdx: idx,
		Known:      known,
		ProfIn:     prof.In,
		ProfOut:    prof.Out,
	}
}

// applyReassign executes one reassignment on any shard: record the
// ownership overrides (every process must agree on the new routing),
// then respawn the peers this shard adopted. The node is already in
// the graph, so unlike a join there is no structural replay and the
// Resolved flag plays no role.
func (r *Runner) applyReassign(d *Directive) {
	changed := false
	for _, rs := range d.Respawns {
		js := rs.Join
		r.owner[js.ID] = rs.Owner
		if rs.Owner != r.shard {
			continue
		}
		if h, ok := r.peers[js.ID]; ok && h.running {
			continue // already hosted here (a replayed directive)
		}
		spec := spawnSpec{
			id:         js.ID,
			profile:    bandwidth.Profile{In: js.ProfIn, Out: js.ProfOut},
			bwFactor:   r.bwFactor,
			neighbors:  r.g.Neighbors(js.ID),
			sessions:   r.timeline,
			anchor:     js.Anchor,
			sessionIdx: js.SessionIdx,
			known:      js.Known,
			mySession:  -1,
			seed:       r.sc.Seed ^ (int64(js.ID)+1)*0x9e37_79b9 ^ respawnSeedSalt,
		}
		if err := r.spawn(spec); err != nil {
			r.err = err
			return
		}
		changed = true
	}
	if changed {
		r.refreshNeighbors()
	}
}

// ResolveFailureSwitch synthesizes and resolves an unscripted crash
// switch — the live source's worker died, so the stream must continue
// from a surviving successor. The closing segment id is estimated from
// the cohort's reported high-water mark (CrashS1End), exactly like a
// scripted failure switch.
func (r *Runner) ResolveFailureSwitch() (*Directive, *Directive, error) {
	ev := sim.Event{Kind: sim.EvSwitchSource, Tick: r.tick, To: -1, Failure: true}
	return r.ResolveEvent(ev)
}

// CrashS1End exposes the crash truncation point to the cluster
// coordinator: the highest segment any eligible listener reported
// having seen, floored at the current session's first segment.
func (r *Runner) CrashS1End() segment.ID { return r.crashS1End() }

// Abort stops every owned peer and the transport without finalizing a
// result — the fail-stop path of a chaos-killed or fenced agent.
func (r *Runner) Abort() { r.shutdown() }
