package runtime

import (
	"runtime"
	"testing"

	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
)

// TestLiveSimParityPaperSingleSwitch pins the live runtime against the
// simulator on the paper's evaluation scenario: paper-single-switch,
// in-process channel transport, zero loss. The two backends share
// topology, profiles, parameters and protocol core but run on different
// clocks, so the pin is statistical, with the tolerances stated below.
//
// Why the live numbers sit above the simulator's: the simulator
// resolves a request, its grant and the delivery inside one tick (three
// serve rounds against same-tick buffer state), while a live peer pays
// one full scheduling period of request-to-playback latency whenever a
// hole reaches its playhead — the data frame arrives mid-period, but
// playback only consumes at period boundaries. Those stalls compound
// along the dissemination path, which bounds the live times at roughly
// twice the simulated ones on this scenario rather than a constant
// offset. What must agree exactly: the windows complete (every cohort
// member finishes S1 and prepares S2 — the delivery-ratio guarantee),
// the cohort itself, and the shape of the report.
func TestLiveSimParityPaperSingleSwitch(t *testing.T) {
	if testing.Short() {
		t.Skip("parity run takes a few seconds")
	}
	if raceEnabled && runtime.NumCPU() < 2 {
		t.Skip("race build on a single CPU saturates the pacer (see race_on_test.go)")
	}
	sc := scenario.PaperSingleSwitch().Scaled(150)

	cfg, err := sc.Config(sim.Fast)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	r, err := FromScenario(sc, sim.Fast, Options{TimeScale: 50})
	if err != nil {
		t.Fatal(err)
	}
	liveRes, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}

	if len(liveRes.Windows) != len(simRes.Windows) {
		t.Fatalf("live has %d windows, sim has %d", len(liveRes.Windows), len(simRes.Windows))
	}
	lw, sw := liveRes.Windows[0], simRes.Windows[0]
	t.Logf("sim : %s", sw)
	t.Logf("live: %s", lw)

	// Structure: same kind of window over the same cohort.
	if lw.Kind != "switch" || sw.Kind != "switch" {
		t.Fatalf("window kinds: live %q, sim %q", lw.Kind, sw.Kind)
	}
	if lw.Tick != sw.Tick {
		t.Errorf("switch tick: live %d, sim %d", lw.Tick, sw.Tick)
	}
	if lw.Cohort != sw.Cohort {
		t.Errorf("cohort: live %d, sim %d", lw.Cohort, sw.Cohort)
	}

	// Delivery ratio: every measurement window completes — at most 2% of
	// the cohort may straggle past the horizon (wall-clock tail the
	// simulator does not have), and every completion time is recorded.
	maxStragglers := lw.Cohort / 50
	if lw.UnfinishedS1 > maxStragglers || lw.UnpreparedS2 > maxStragglers {
		t.Errorf("incomplete window: unfinished=%d unprepared=%d (allowed %d of cohort %d)",
			lw.UnfinishedS1, lw.UnpreparedS2, maxStragglers, lw.Cohort)
	}
	if got := len(lw.PrepareS2Times); got < lw.Cohort-maxStragglers {
		t.Errorf("prepare-S2 samples: %d of cohort %d", got, lw.Cohort)
	}

	// Switch delay: the live average prepare-S2 (the paper's "switch
	// time") lands within [0.5×, 2.5×] of the simulator's, and never
	// more than one horizon out in absolute terms.
	simPrep, livePrep := sw.AvgPrepareS2(), lw.AvgPrepareS2()
	if livePrep < 0.5*simPrep || livePrep > 2.5*simPrep {
		t.Errorf("avg prepare S2: live %.2fs outside [0.5, 2.5]× sim %.2fs", livePrep, simPrep)
	}
	simFin, liveFin := sw.AvgFinishS1(), lw.AvgFinishS1()
	if liveFin < 0.5*simFin || liveFin > 2.5*simFin {
		t.Errorf("avg finish S1: live %.2fs outside [0.5, 2.5]× sim %.2fs", liveFin, simFin)
	}

	// Playback continuity: within 0.25 absolute of the simulator (the
	// per-hole period of latency shows up here first).
	if d := sw.Continuity() - lw.Continuity(); d > 0.25 {
		t.Errorf("continuity: live %.4f more than 0.25 below sim %.4f", lw.Continuity(), sw.Continuity())
	}

	// Overhead: the same 620-bit maps against the same data volume, so
	// the ratio lands in the same order of magnitude.
	if lw.Overhead() > 4*sw.Overhead() || lw.Overhead() <= 0 {
		t.Errorf("overhead: live %.4f vs sim %.4f", lw.Overhead(), sw.Overhead())
	}

	// The unshaped channel transport loses nothing but inbox-overflow
	// drops under burst scheduling; more than 0.01% of the data plane
	// means something is actually broken.
	if st := r.Stats().Transport; st.DataLost*10000 > st.DataSent {
		t.Errorf("lost %d of %d data frames on the lossless channel transport", st.DataLost, st.DataSent)
	}
}
