package runtime

import (
	"testing"
	"time"

	"gossipstream/internal/netmodel"
	"gossipstream/internal/overlay"
)

// recvOne pops a frame from the endpoint with a deadline.
func recvOne(t *testing.T, ep Endpoint, what string) Frame {
	t.Helper()
	select {
	case f := <-ep.Recv():
		return f
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
		return Frame{}
	}
}

func TestChanTransportDelivery(t *testing.T) {
	tr := NewChanTransport(1)
	defer tr.Close()
	a, _ := tr.Open(1)
	b, _ := tr.Open(2)

	a.Send(Frame{Kind: FrameData, Msg: netmodel.Message{To: 2, Seg: 7}})
	f := recvOne(t, b, "data frame")
	if f.Kind != FrameData || f.Msg.From != 1 || f.Msg.Seg != 7 {
		t.Fatalf("got %+v", f)
	}
	st := tr.Stats()
	if st.DataSent != 1 || st.DataDelivered != 1 || st.DataLost != 0 {
		t.Fatalf("stats %+v", st)
	}

	// A detached destination swallows frames without error.
	b.Close()
	a.Send(Frame{Kind: FrameData, Msg: netmodel.Message{To: 2, Seg: 8}})
	if st := tr.Stats(); st.DataDelivered != 1 {
		t.Fatalf("delivered to closed endpoint: %+v", st)
	}
}

func TestChanTransportPolicyLossAndSever(t *testing.T) {
	tr := NewChanTransport(2)
	defer tr.Close()
	a, _ := tr.Open(1)
	b, _ := tr.Open(2)

	// Total loss: data frames die, control frames (maps) still flow —
	// the simulator's convention (loss draws cover granted segments,
	// not the map exchange).
	tr.SetPolicy(netmodel.Flat{Loss: 0.999999999})
	a.Send(Frame{Kind: FrameData, Msg: netmodel.Message{To: 2, Seg: 1}})
	a.Send(Frame{Kind: FrameMap, Msg: netmodel.Message{To: 2}})
	if f := recvOne(t, b, "map frame"); f.Kind != FrameMap {
		t.Fatalf("expected the map to survive total data loss, got %s", f.Kind)
	}
	if st := tr.Stats(); st.DataLost != 1 || st.DataDelivered != 0 {
		t.Fatalf("loss stats %+v", st)
	}

	// A partition severs everything, maps included, in both directions.
	model := netmodel.New(netmodel.Config{}, 1)
	model.Partition(0.5, 12345)
	sideA, sideB := overlay.NodeID(-1), overlay.NodeID(-1)
	for id := overlay.NodeID(1); id < 100; id++ {
		if model.Side(id) == 0 && sideA < 0 {
			sideA = id
		}
		if model.Side(id) == 1 && sideB < 0 {
			sideB = id
		}
	}
	tr.SetPolicy(model)
	x, _ := tr.Open(sideA)
	y, _ := tr.Open(sideB)
	x.Send(Frame{Kind: FrameMap, Msg: netmodel.Message{To: sideB}})
	x.Send(Frame{Kind: FrameData, Msg: netmodel.Message{To: sideB, Seg: 2}})
	select {
	case f := <-y.Recv():
		t.Fatalf("frame %s crossed an active partition", f.Kind)
	case <-time.After(50 * time.Millisecond):
	}
	model.Heal()
	x.Send(Frame{Kind: FrameData, Msg: netmodel.Message{To: sideB, Seg: 3}})
	if f := recvOne(t, y, "post-heal data"); f.Msg.Seg != 3 {
		t.Fatalf("got %+v", f)
	}
}

func TestChanTransportShapedDelay(t *testing.T) {
	tr := NewChanTransport(3)
	defer tr.Close()
	a, _ := tr.Open(1)
	b, _ := tr.Open(2)
	// 40 scenario-ms links at 1 wall-ms per scenario-ms: the frame must
	// arrive delayed, carrying its shaped delay on ArrivalMS.
	tr.SetPolicy(netmodel.Flat{Delay: 40})
	tr.SetTick(0, 1)
	start := time.Now()
	a.Send(Frame{Kind: FrameData, Msg: netmodel.Message{To: 2, Seg: 9}})
	f := recvOne(t, b, "delayed data")
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("shaped frame arrived after %v, want >= ~40ms", elapsed)
	}
	if f.Msg.ArrivalMS != 40 {
		t.Fatalf("ArrivalMS = %v, want 40", f.Msg.ArrivalMS)
	}
	st := tr.Stats()
	if st.DelayScenarioMS != 40 {
		t.Fatalf("delay sum %v, want 40", st.DelayScenarioMS)
	}
}

func TestUDPTransportLoopback(t *testing.T) {
	tr := NewUDPTransport(4)
	a, err := tr.Open(1)
	if err != nil {
		t.Skipf("udp bind unavailable: %v", err)
	}
	defer tr.Close()
	b, _ := tr.Open(2)

	a.Send(Frame{Kind: FrameRequest, Msg: netmodel.Message{To: 2, Seg: 55, Sent: 3}})
	f := recvOne(t, b, "udp request")
	if f.Kind != FrameRequest || f.Msg.From != 1 || f.Msg.Seg != 55 || f.Msg.Sent != 3 {
		t.Fatalf("got %+v", f)
	}
	b.Send(Frame{Kind: FrameData, Msg: netmodel.Message{To: 1, Seg: 55}})
	if f := recvOne(t, a, "udp data"); f.Kind != FrameData || f.Msg.Seg != 55 {
		t.Fatalf("got %+v", f)
	}
	if st := tr.Stats(); st.DataSent != 1 || st.DataDelivered != 1 {
		t.Fatalf("stats %+v", st)
	}
}
