package runtime

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// kernelUDPDrops sums the kernel's receive-drop counters for the given
// local ports by reading the /proc/net/udp tables — the drops the
// kernel made because a socket buffer was full, which no userspace
// counter sees. Returns 0 wherever the tables are unavailable (non-
// Linux hosts, restricted containers): the counter is best-effort
// diagnostics, not accounting the protocol depends on.
func kernelUDPDrops(ports map[int]bool) int64 {
	if len(ports) == 0 {
		return 0
	}
	var total int64
	for _, path := range []string{"/proc/net/udp", "/proc/net/udp6"} {
		total += procUDPDrops(path, ports)
	}
	return total
}

// procUDPDrops parses one kernel UDP table. Row shape (header then one
// socket per line):
//
//	sl  local_address rem_address   st tx_queue rx_queue tr tm->when retrnsmt   uid  timeout inode ref pointer drops
//	 0: 0100007F:A6B2 00000000:0000 07 00000000:00000000 00:00000000 00000000     0        0 12345 2 ... 17
//
// The local port is the hex field after the colon in local_address; the
// drop counter is the final field.
func procUDPDrops(path string, ports map[int]bool) int64 {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	var total int64
	sc := bufio.NewScanner(f)
	sc.Scan() // header
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 13 {
			continue
		}
		local := fields[1]
		colon := strings.LastIndexByte(local, ':')
		if colon < 0 {
			continue
		}
		port, err := strconv.ParseInt(local[colon+1:], 16, 32)
		if err != nil || !ports[int(port)] {
			continue
		}
		drops, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			continue
		}
		total += drops
	}
	return total
}
