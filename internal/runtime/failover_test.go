package runtime

import (
	"testing"

	"gossipstream/internal/overlay"
	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
)

// shardRunner builds one shard of a three-way split of the small paper
// scenario on an in-process chan transport.
func shardRunner(t *testing.T, shard int) *Runner {
	t.Helper()
	sc := scenario.PaperSingleSwitch().Scaled(30)
	r, err := FromScenario(sc, sim.Fast, Options{
		Transport: NewChanTransport(sc.Seed ^ int64(shard)),
		TimeScale: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.StartShard(shard, 3); err != nil {
		t.Fatal(err)
	}
	return r
}

// TestResolveFailoverRemapsOrphans drives the directory-driven shard
// re-mapping end to end in-process: the coordinator (shard 0) declares
// shard 1 dead, resolves its peers into reassignment directives, and a
// surviving worker (shard 2) applies them — after which every orphan
// has a surviving owner on both processes and shard 2 actually runs the
// peers it adopted.
func TestResolveFailoverRemapsOrphans(t *testing.T) {
	r0 := shardRunner(t, 0)
	defer r0.Abort()
	r2 := shardRunner(t, 2)
	defer r2.Abort()

	// A few ticks so local reports exist, then share shard 2's view with
	// the coordinator the way the status stream would.
	for i := 0; i < 3; i++ {
		if err := r0.TickShard(1); err != nil {
			t.Fatal(err)
		}
		if err := r2.TickShard(1); err != nil {
			t.Fatal(err)
		}
	}
	r0.MergeStatus(r2.ShardStatus())

	dirs, srcDied := r0.ResolveFailover(1, []int{0, 2})
	if srcDied {
		t.Fatal("the initial source is owned by shard 0; killing shard 1 must not report srcDied")
	}
	if len(dirs) == 0 {
		t.Fatal("no directives for a shard that owned a third of the population")
	}

	// Every shard-1 peer must be re-owned exactly once, by a survivor.
	owners := map[overlay.NodeID]int{}
	for _, d := range dirs {
		if d.Kind != DirReassign {
			t.Fatalf("unexpected %v directive (no role-holders lived on shard 1 yet)", d.Kind)
		}
		if d.DeadShard != 1 {
			t.Fatalf("DeadShard = %d, want 1", d.DeadShard)
		}
		if len(d.Respawns) > maxRespawnsPerDirective {
			t.Fatalf("directive carries %d respawns, cap is %d", len(d.Respawns), maxRespawnsPerDirective)
		}
		for _, rs := range d.Respawns {
			if _, dup := owners[rs.Join.ID]; dup {
				t.Fatalf("node %d reassigned twice", rs.Join.ID)
			}
			if rs.Owner != 0 && rs.Owner != 2 {
				t.Fatalf("node %d assigned to dead or unknown shard %d", rs.Join.ID, rs.Owner)
			}
			if rs.Join.Anchor < 0 {
				t.Fatalf("node %d respawns with anchor %d", rs.Join.ID, rs.Join.Anchor)
			}
			if rs.Join.Known < 1 {
				t.Fatalf("node %d respawns knowing %d sessions", rs.Join.ID, rs.Join.Known)
			}
			owners[rs.Join.ID] = rs.Owner
		}
	}
	for i := 0; i < 30; i++ {
		id := overlay.NodeID(i)
		if int(id)%3 != 1 {
			continue
		}
		if _, ok := owners[id]; !ok {
			t.Errorf("shard-1 node %d was never reassigned", id)
		}
	}

	// Both sides apply; the ownership override must agree everywhere and
	// shard 2 must now be running its adopted peers.
	before := len(r2.ShardStatus())
	for _, d := range dirs {
		if err := r0.Apply(d); err != nil {
			t.Fatalf("coordinator apply: %v", err)
		}
		wire := *d
		wire.Resolved = false
		if err := r2.Apply(&wire); err != nil {
			t.Fatalf("worker apply: %v", err)
		}
	}
	for id, owner := range owners {
		if got := r0.OwnerOf(id); got != owner {
			t.Errorf("shard 0 routes node %d to shard %d, directive said %d", id, got, owner)
		}
		if got := r2.OwnerOf(id); got != owner {
			t.Errorf("shard 2 routes node %d to shard %d, directive said %d", id, got, owner)
		}
	}

	// Replaying the same directive must be a no-op (the control plane
	// may retry a directive the ack lost).
	for _, d := range dirs {
		wire := *d
		wire.Resolved = false
		if err := r2.Apply(&wire); err != nil {
			t.Fatalf("replayed apply: %v", err)
		}
	}

	for i := 0; i < 3; i++ {
		if err := r0.TickShard(1); err != nil {
			t.Fatal(err)
		}
		if err := r2.TickShard(1); err != nil {
			t.Fatal(err)
		}
	}
	after := len(r2.ShardStatus())
	adopted := 0
	for _, owner := range owners {
		if owner == 2 {
			adopted++
		}
	}
	if after < before+adopted {
		t.Errorf("shard 2 reports %d peers after adopting %d (had %d before)", after, adopted, before)
	}
}

// TestRespawnSeedDiffers pins the salt: a respawned peer must not
// resume its first incarnation's RNG stream.
func TestRespawnSeedDiffers(t *testing.T) {
	if respawnSeedSalt == 0 {
		t.Fatal("respawn seed salt is zero — respawns would replay the original stream")
	}
}
