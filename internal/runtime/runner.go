package runtime

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gossipstream/internal/bandwidth"
	"gossipstream/internal/bitfield"
	"gossipstream/internal/membership"
	"gossipstream/internal/netmodel"
	"gossipstream/internal/obs"
	"gossipstream/internal/overlay"
	"gossipstream/internal/scenario"
	"gossipstream/internal/segment"
	"gossipstream/internal/sim"
)

// Options tune a live run.
type Options struct {
	// Transport carries the frames; nil selects the in-process channel
	// transport. The runner owns the transport and closes it.
	Transport Transport
	// TimeScale compresses scenario time onto the wall clock: a run at
	// TimeScale 50 executes one τ=1s scheduling period every 20ms of
	// wall time. 0 selects the default (50). 1 is real time — the pace
	// an actual deployment would run at.
	TimeScale float64

	// Obs attaches the run's observability sinks (metrics registry,
	// JSONL trace — see internal/obs). Observational only; nil disables.
	Obs *obs.Obs
	// StatsEvery prints a periodic execution-stats line through Logf
	// every StatsEvery scheduling periods (0 disables). The line carries
	// the transport counters including kernel UDP receive drops.
	StatsEvery int
	// Logf receives the periodic stats lines (nil disables them).
	Logf func(format string, args ...any)
}

// DefaultTimeScale is the time compression a live run uses when
// Options.TimeScale is zero.
const DefaultTimeScale = 50

// LiveStats describes how the wall-clock execution went — the numbers
// that have no simulator counterpart.
type LiveStats struct {
	// WallDuration is the elapsed wall time of the run.
	WallDuration time.Duration
	// Periods is the number of scheduling periods executed.
	Periods int
	// Overruns counts periods whose processing outlasted the configured
	// period length (the scheduler stretches rather than dropping
	// ticks, so overruns slow the wall clock but do not skew the
	// scenario-time metrics).
	Overruns int
	// Transport is the cumulative data-plane account.
	Transport TransportStats
}

// peerHandle is the runner's view of one spawned peer.
type peerHandle struct {
	p        *peer
	running  bool // goroutine live (false after quit)
	active   bool // participating (past its staggered start, not dead)
	isSource bool // holds or held the source role (cleared by demote)
}

// Runner executes one scenario as a live system: peers as goroutines
// wired by a Transport, a wall-clock scheduler in place of the
// simulator's tick loop, and the scenario's event timeline fired on the
// wall clock through the control plane and the transport's LinkPolicy.
// It collects the same SwitchMetrics windows the simulator reports, in
// scenario seconds, so sim and live runs of one scenario read
// identically.
type Runner struct {
	sc  *scenario.Scenario
	cfg sim.Config // the defaulted simulator compilation of sc
	par peerParams
	opt Options

	factory sim.AlgorithmFactory

	tr     Transport
	policy *lockedPolicy // nil without the network model

	g   *overlay.Graph
	dir *membership.Directory

	rng      *rand.Rand // structural decisions (successor picks, partition seeds)
	churnRNG *rand.Rand // churn victim/joiner profile draws

	timeline []segment.Session

	events    []sim.Event
	nextEvent int
	duration  int
	earlyExit bool

	peers   map[overlay.NodeID]*peerHandle
	lastRep map[overlay.NodeID]report
	reports chan report

	// Sharding: a single-process run owns every node (shard 0 of 1); a
	// multi-process run owns ids congruent to shard mod shards and is
	// driven tick by tick through the StartShard/TickShard/Apply API.
	// roles and dead are the resolver's global ledger of source-role
	// holders and departed nodes — the state that substitutes for
	// peerHandle flags when the node lives in another process.
	shard, shards int
	roles         map[overlay.NodeID]bool
	dead          map[overlay.NodeID]bool

	// Failover state (see failover.go): owner overrides for peers
	// reassigned off a dead shard (consulted before the id-mod-shards
	// rule), and the bandwidth-profile ledger every process keeps for
	// every node so a respawn directive can restate a peer's profile
	// without an RNG draw.
	owner   map[overlay.NodeID]int
	profile map[overlay.NodeID]bandwidth.Profile

	lastRetired overlay.NodeID
	burst       *sim.ChurnConfig
	burstUntil  int
	bwFactor    float64

	tick int
	ran  bool
	err  error

	win liveWindow
	res *sim.Result

	stats LiveStats

	// Observability (see obs.go). statsCache holds the last sampled
	// transport counters — Transport.Stats is expensive on UDP, so the
	// runner reads it every transportSampleEvery periods, not every tick.
	obs            *runnerObs
	statsCache     TransportStats
	statsCacheTick int
}

// FromScenario compiles a scenario into a live run, reusing the exact
// sim.Config the simulator would execute — one compilation path
// (scenario.Scenario.Config), so topology, profiles, parameters and
// the event timeline cannot drift between the two backends — and
// binding it to a transport instead of the phase pipeline. The
// scenario's tick schedule becomes a wall-clock schedule at
// Options.TimeScale.
func FromScenario(sc *scenario.Scenario, factory sim.AlgorithmFactory, opt Options) (*Runner, error) {
	if factory == nil {
		factory = sim.Fast
	}
	if opt.TimeScale == 0 {
		opt.TimeScale = DefaultTimeScale
	}
	if opt.TimeScale < 0 {
		return nil, fmt.Errorf("runtime: negative TimeScale %v", opt.TimeScale)
	}
	cfg, err := sc.Config(factory)
	if err != nil {
		return nil, err
	}
	cfg = cfg.Defaulted()
	g := cfg.Graph

	// The membership view target, inferred from the augmented topology's
	// minimum degree exactly like the simulator's neighborTarget.
	m := g.MinDegree()
	if m < 1 {
		m = 5
	}
	par := peerParams{
		tau:             cfg.Tau,
		p:               cfg.P,
		q:               cfg.Q,
		qs:              cfg.Qs,
		bufferCap:       cfg.BufferCap,
		linkShare:       cfg.LinkShare,
		sharedOut:       cfg.SharedOutbound,
		sourceOutFactor: cfg.SourceOutFactor,
		disablePrefetch: cfg.DisablePrefetch,
		perTick:         int(cfg.P*cfg.Tau + 1e-9),
		wireBits:        int64(bitfield.WireBits(cfg.BufferCap)),
	}

	transport := opt.Transport
	if transport == nil {
		transport = NewChanTransport(sc.Seed ^ 0x11fe)
	}
	r := &Runner{
		sc:          sc,
		cfg:         cfg,
		par:         par,
		opt:         opt,
		factory:     factory,
		tr:          transport,
		g:           g,
		dir:         membership.NewDirectory(g, m, rand.New(rand.NewSource(sc.Seed^0x3a11ce))),
		rng:         rand.New(rand.NewSource(sc.Seed)),
		churnRNG:    rand.New(rand.NewSource(sc.Seed ^ 0x5eed_c0de)),
		peers:       make(map[overlay.NodeID]*peerHandle),
		lastRep:     make(map[overlay.NodeID]report),
		reports:     make(chan report, 4096),
		shards:      1,
		roles:       make(map[overlay.NodeID]bool),
		dead:        make(map[overlay.NodeID]bool),
		owner:       make(map[overlay.NodeID]int),
		profile:     make(map[overlay.NodeID]bandwidth.Profile),
		lastRetired: -1,
		bwFactor:    1,
		res:         &sim.Result{Algorithm: factory().Name()},

		statsCacheTick: -1,
	}
	if opt.Obs != nil {
		r.obs = newRunnerObs(opt.Obs)
	}
	if cfg.Net != nil {
		// The same trace-derived delay/loss/partition state machine the
		// transit phase would drain, shared with the shaped transports.
		// (QuantizeTicks only affects the heap path the live runtime
		// never calls; the wall clock is continuous by nature.)
		r.policy = &lockedPolicy{m: netmodel.New(*cfg.Net, cfg.Tau)}
		transport.SetPolicy(r.policy)
	}

	r.events = cfg.Script.Events
	sortEvents(r.events)
	r.earlyExit = cfg.Script.Duration == 0
	r.duration = cfg.Script.Duration
	if r.duration <= 0 {
		r.duration = r.autoDuration()
	}
	return r, nil
}

// sortEvents orders the timeline by tick (stable, like sim.Script).
func sortEvents(evs []sim.Event) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].Tick < evs[j-1].Tick; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

// autoDuration mirrors the simulator's rule: every window gets room to
// reach its horizon.
func (r *Runner) autoDuration() int {
	end := 1
	for _, ev := range r.events {
		after := 1
		switch ev.Kind {
		case sim.EvSwitchSource:
			after = ev.Horizon
			if after <= 0 {
				after = r.horizonDefault()
			}
		case sim.EvMeasureWindow, sim.EvChurnBurst, sim.EvLossBurst:
			after = ev.Ticks
		}
		if t := ev.Tick + after; t > end {
			end = t
		}
	}
	return end
}

func (r *Runner) horizonDefault() int { return r.cfg.HorizonTicks }

// Stats returns the wall-clock execution account (valid after Run).
func (r *Runner) Stats() LiveStats { return r.stats }

// Policy exposes the run's shared LinkPolicy (nil without a network
// model) — the cluster control plane shapes its own frames against the
// same policy object scenario events mutate, so a partition severs the
// control plane exactly when it severs the data plane.
func (r *Runner) Policy() netmodel.LinkPolicy {
	if r.policy == nil {
		return nil
	}
	return r.policy
}

// Run spins the peers up, executes the event timeline on the wall
// clock, and returns the collected Result. Like the simulator, the run
// ends at the script duration — or earlier, once every event fired and
// every measurement window closed, when the duration was auto-derived.
func (r *Runner) Run() (*sim.Result, error) {
	if r.ran {
		return nil, fmt.Errorf("runtime: Run called twice")
	}
	r.ran = true
	start := time.Now()
	defer func() {
		r.stats.WallDuration = time.Since(start)
		r.stats.Transport = r.tr.Stats()
		r.shutdown()
	}()

	if err := r.spawnInitial(); err != nil {
		return nil, err
	}
	if r.obs != nil {
		r.obs.trace.Emit(obs.TraceEvent{T: obs.EvRunStart,
			Scenario: r.sc.Name, Algo: r.res.Algorithm, Nodes: r.g.N(), Seed: r.sc.Seed})
	}

	periodWall := time.Duration(float64(time.Second) * r.par.tau / r.opt.TimeScale)
	wallPerScenarioMS := 1 / r.opt.TimeScale
	next := time.Now()
	for r.tick = 0; r.tick < r.duration; r.tick++ {
		tickStart := time.Now()
		r.tr.SetTick(r.tick, wallPerScenarioMS)
		r.fireEvents()
		if r.err != nil {
			return nil, r.err
		}
		// Pace every running peer through one scheduling period and
		// collect their reports; the frame exchange itself runs on the
		// wall clock in the peers' own goroutines.
		ticked := 0
		for _, h := range r.peers {
			if h.running {
				h.p.tickCh <- tickCmd{n: r.tick}
				ticked++
			}
		}
		for i := 0; i < ticked; i++ {
			r.observe(<-r.reports)
		}
		r.stats.Periods++
		r.windowsTick()
		r.churnStep()
		if r.err != nil {
			return nil, r.err
		}
		r.tickObs(tickStart)
		if r.earlyExit && !r.win.active && r.nextEvent >= len(r.events) {
			break
		}
		next = next.Add(periodWall)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		} else {
			// The host could not complete the period's work in time:
			// stretch the wall clock instead of dropping ticks.
			next = time.Now()
			r.stats.Overruns++
		}
	}
	if r.win.active {
		r.closeWindow(r.duration-r.win.openTick, false, true)
	}
	r.finalize()
	r.finishObs()
	return r.res, nil
}

// spawnInitial builds the whole population from the synthesized trace:
// the first source streaming from segment 0, everyone else staggered
// over the scenario's spread — the same assembly the simulator runs.
func (r *Runner) spawnInitial() error {
	n := r.g.N()
	profiles := r.cfg.Profiles
	if profiles == nil {
		profiles = bandwidth.Assign(n, rand.New(rand.NewSource(r.sc.Seed^0x0ba5_e5)))
	}
	stagger := rand.New(rand.NewSource(r.sc.Seed ^ 0x57a6))
	spread := r.cfg.JoinSpreadTicks // 0 after Defaulted = simultaneous start

	first := r.cfg.FirstSource
	if first < 0 {
		first = minDegreeNode(r.g)
	}
	r.timeline = []segment.Session{{Source: segment.SourceID(first), Begin: 0, End: segment.None}}
	r.roles[first] = true

	for i := 0; i < n; i++ {
		id := overlay.NodeID(i)
		// The profile ledger records every node's draw regardless of
		// ownership — the profiles slice is seed-identical on every
		// process, and a failover respawn restates it from here.
		r.profile[id] = profiles[i]
		// The stagger draw runs for every node regardless of ownership,
		// so every shard's RNG stream stays aligned and any process can
		// recompute any node's start tick.
		startTick := 0
		if spread > 0 {
			startTick = stagger.Intn(spread + 1)
		}
		if !r.owns(id) {
			continue
		}
		spec := spawnSpec{
			id:        id,
			profile:   profiles[i],
			bwFactor:  1,
			startTick: startTick,
			neighbors: r.g.Neighbors(id),
			sessions:  r.timeline,
			mySession: -1,
			seed:      r.sc.Seed ^ (int64(id)+1)*0x9e37_79b9,
			known:     1,
		}
		if id == first {
			spec.isSource = true
			spec.mySession = 0
			spec.startTick = 0
		}
		if err := r.spawn(spec); err != nil {
			return err
		}
	}
	return nil
}

// spawn opens a transport endpoint and starts one peer goroutine.
func (r *Runner) spawn(spec spawnSpec) error {
	ep, err := r.tr.Open(spec.id)
	if err != nil {
		return err
	}
	p := newPeer(spec, r.par, r.factory(), ep, r.reports)
	h := &peerHandle{
		p:        p,
		running:  true,
		active:   spec.startTick == 0 || spec.isSource,
		isSource: spec.isSource,
	}
	r.peers[spec.id] = h
	go p.run()
	return nil
}

// stopPeer stops an owned peer's goroutine and marks its cohort slot
// dead. The structural overlay repair happens at resolution time
// (Directory.Leave on the resolving process, a replayed graph delta on
// the others); the caller refreshes neighbor lists afterwards. Unowned
// ids are a no-op — their shard applies the same directive.
func (r *Runner) stopPeer(id overlay.NodeID) {
	h, ok := r.peers[id]
	if !ok || !h.running {
		return
	}
	h.running = false
	h.active = false
	h.p.ctrlCh <- ctrlMsg{kind: ctrlQuit}
	r.cohortDied(id)
}

// refreshNeighbors pushes every running peer's current adjacency list —
// the membership service's view — through the control plane.
func (r *Runner) refreshNeighbors() {
	for id, h := range r.peers {
		if !h.running {
			continue
		}
		nbs := append([]overlay.NodeID(nil), r.g.Neighbors(id)...)
		h.p.ctrlCh <- ctrlMsg{kind: ctrlNeighbors, neighbors: nbs}
	}
}

// shutdown stops every peer and the transport.
func (r *Runner) shutdown() {
	for _, h := range r.peers {
		if h.running {
			h.running = false
			h.p.ctrlCh <- ctrlMsg{kind: ctrlQuit}
		}
	}
	r.tr.Close()
}

// observe folds one per-period report into the runner's state and the
// open measurement window.
func (r *Runner) observe(rep report) {
	r.lastRep[rep.id] = rep
	if h, ok := r.peers[rep.id]; ok && h.running {
		h.active = rep.alive
	}
	if ob := r.obs; ob != nil {
		ob.holes.Add(int64(rep.stalled))
		ob.reReqs.Add(int64(rep.reReqs))
	}
	r.windowObserve(rep)
}

// activeListener reports whether a node is a running, arrived,
// non-source peer — the cohort eligibility rule.
func (r *Runner) activeListener(id overlay.NodeID) bool {
	h, ok := r.peers[id]
	return ok && h.running && h.active && !h.isSource
}

func (r *Runner) activeCount() int {
	n := 0
	for _, h := range r.peers {
		if h.running && h.active {
			n++
		}
	}
	return n
}

// minDegreeNode mirrors the simulator's auto-pick: the lowest-id node
// of minimum degree holds exactly M neighbors, like the paper's source.
func minDegreeNode(g *overlay.Graph) overlay.NodeID {
	best := overlay.NodeID(0)
	for u := 1; u < g.N(); u++ {
		if g.Degree(overlay.NodeID(u)) < g.Degree(best) {
			best = overlay.NodeID(u)
		}
	}
	return best
}

// lockedPolicy wraps the run's netmodel.Model so transport goroutines
// (reads) and the runner's event firing (mutations) can share it. It is
// the live runtime's instance of the transit seam: the same Model state
// machine the simulator's heaps consult, behind the same LinkPolicy
// surface.
type lockedPolicy struct {
	mu sync.RWMutex
	m  *netmodel.Model
}

func (l *lockedPolicy) DelayMS(a, b overlay.NodeID, jitterMS float64) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.m.DelayMS(a, b, jitterMS)
}

func (l *lockedPolicy) JitterMS() float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.m.JitterMS()
}

func (l *lockedPolicy) LossProb(tick int) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.m.LossProb(tick)
}

func (l *lockedPolicy) Blocked(a, b overlay.NodeID) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.m.Blocked(a, b)
}

// mutate runs one event mutation under the write lock.
func (l *lockedPolicy) mutate(f func(m *netmodel.Model)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f(l.m)
}

var _ netmodel.LinkPolicy = (*lockedPolicy)(nil)
