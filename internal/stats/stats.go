// Package stats provides the small numeric helpers the metrics and
// experiment layers aggregate with: means, quantiles, dispersion, and
// simple series utilities. Everything is deterministic and allocation-
// conscious; no external dependencies.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of the values.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the smallest value, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the population variance, or NaN for an empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the q-th percentile (q in [0,100]) using linear
// interpolation between order statistics. It copies and sorts its input.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the usual aggregate descriptors of one sample.
type Summary struct {
	N             int
	Mean, StdDev  float64
	Min, Max      float64
	Median        float64
	P90, P95, P99 float64
}

// Summarize computes a Summary; empty input yields NaN fields and N=0.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
		P90:    Percentile(xs, 90),
		P95:    Percentile(xs, 95),
		P99:    Percentile(xs, 99),
	}
}

// String implements fmt.Stringer with a compact one-line rendering.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f max=%.3f",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.P90, s.Max)
}

// ConfidenceInterval95 returns the half-width of the normal-approximation
// 95% confidence interval of the mean (1.96·sd/√n), or NaN when n < 2.
func ConfidenceInterval95(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	// Sample (not population) standard deviation for the CI.
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	sd := math.Sqrt(s / float64(len(xs)-1))
	return 1.96 * sd / math.Sqrt(float64(len(xs)))
}

// ReductionRatio returns (base - improved) / base — the paper's headline
// metric ("reduction ratio of average source switch time"). It is NaN when
// base is zero or negative.
func ReductionRatio(base, improved float64) float64 {
	if base <= 0 {
		return math.NaN()
	}
	return (base - improved) / base
}

// Series is an ordered sequence of (x, y) points, used for the figure
// time-series (ratio tracks) and size sweeps.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the point count.
func (s *Series) Len() int { return len(s.X) }

// At returns the i-th point.
func (s *Series) At(i int) (x, y float64) { return s.X[i], s.Y[i] }

// YAt returns the y value at the first x >= target, or the last y when the
// series ends earlier. Series must be x-sorted.
func (s *Series) YAt(target float64) float64 {
	for i, x := range s.X {
		if x >= target {
			return s.Y[i]
		}
	}
	if len(s.Y) == 0 {
		return math.NaN()
	}
	return s.Y[len(s.Y)-1]
}

// CrossingTime returns the first x at which y passes threshold in the
// given direction (rising: y >= th; falling: y <= th), or NaN.
func (s *Series) CrossingTime(th float64, rising bool) float64 {
	for i := range s.X {
		if rising && s.Y[i] >= th {
			return s.X[i]
		}
		if !rising && s.Y[i] <= th {
			return s.X[i]
		}
	}
	return math.NaN()
}
