package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanSumMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if !almost(Mean(xs), 2.8) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if !almost(Sum(xs), 14) {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("empty-slice aggregates must be NaN")
	}
	if Sum(nil) != 0 {
		t.Error("empty Sum must be 0")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Variance(xs), 4) {
		t.Errorf("Variance = %v, want 4", Variance(xs))
	}
	if !almost(StdDev(xs), 2) {
		t.Errorf("StdDev = %v, want 2", StdDev(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {75, 32.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.q); !almost(got, c.want) {
			t.Errorf("P%v = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("single-element percentile = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile must be NaN")
	}
}

func TestPercentilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Percentile(101) did not panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Median, 3) || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestConfidenceInterval95(t *testing.T) {
	if !math.IsNaN(ConfidenceInterval95([]float64{1})) {
		t.Error("CI of single sample must be NaN")
	}
	ci := ConfidenceInterval95([]float64{10, 10, 10, 10})
	if !almost(ci, 0) {
		t.Errorf("CI of constant sample = %v, want 0", ci)
	}
	ci = ConfidenceInterval95([]float64{0, 10})
	want := 1.96 * math.Sqrt(50) / math.Sqrt(2)
	if !almost(ci, want) {
		t.Errorf("CI = %v, want %v", ci, want)
	}
}

func TestReductionRatio(t *testing.T) {
	// The paper's headline arithmetic: normal 24 s → fast 18 s = 25 %.
	if got := ReductionRatio(24, 18); !almost(got, 0.25) {
		t.Errorf("reduction = %v, want 0.25", got)
	}
	if !math.IsNaN(ReductionRatio(0, 5)) {
		t.Error("zero baseline must yield NaN")
	}
	if got := ReductionRatio(10, 12); !almost(got, -0.2) {
		t.Errorf("regression case = %v, want -0.2", got)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Label: "x"}
	for i := 1; i <= 5; i++ {
		s.Append(float64(i), float64(i*i))
	}
	if s.Len() != 5 {
		t.Fatal("Len wrong")
	}
	if x, y := s.At(2); x != 3 || y != 9 {
		t.Errorf("At(2) = (%v, %v)", x, y)
	}
	if got := s.YAt(3.5); got != 16 {
		t.Errorf("YAt(3.5) = %v, want 16 (first x >= 3.5)", got)
	}
	if got := s.YAt(99); got != 25 {
		t.Errorf("YAt past end = %v, want last y", got)
	}
	if got := (&Series{}).YAt(1); !math.IsNaN(got) {
		t.Error("YAt on empty series must be NaN")
	}
}

func TestSeriesCrossingTime(t *testing.T) {
	s := &Series{}
	ys := []float64{1.0, 0.8, 0.5, 0.2, 0.0}
	for i, y := range ys {
		s.Append(float64(i), y)
	}
	if got := s.CrossingTime(0.5, false); got != 2 {
		t.Errorf("falling crossing = %v, want 2", got)
	}
	up := &Series{}
	for i, y := range []float64{0, 0.4, 0.9, 1} {
		up.Append(float64(i), y)
	}
	if got := up.CrossingTime(0.9, true); got != 2 {
		t.Errorf("rising crossing = %v, want 2", got)
	}
	if got := up.CrossingTime(2, true); !math.IsNaN(got) {
		t.Error("unreachable threshold must be NaN")
	}
}

func TestQuickPercentileWithinRange(t *testing.T) {
	f := func(raw []int16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		q := float64(qRaw) / 255 * 100
		p := Percentile(xs, q)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return p >= sorted[0] && p <= sorted[len(sorted)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMeanBetweenMinMax(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
