package plot

import (
	"strings"
	"testing"

	"gossipstream/internal/stats"
)

func TestLineRendersAllSeries(t *testing.T) {
	a := &stats.Series{Label: "alpha"}
	b := &stats.Series{Label: "beta"}
	for x := 0.0; x <= 10; x++ {
		a.Append(x, x)
		b.Append(x, 10-x)
	}
	out := Line("demo", 40, 10, a, b)
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("series glyphs missing")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestLineEmpty(t *testing.T) {
	out := Line("empty", 40, 10, &stats.Series{Label: "x"})
	if !strings.Contains(out, "no data") {
		t.Error("empty chart must say so")
	}
}

func TestLineConstantSeries(t *testing.T) {
	s := &stats.Series{Label: "flat"}
	for x := 0.0; x < 5; x++ {
		s.Append(x, 1.0)
	}
	out := Line("flat", 30, 6, s)
	if !strings.Contains(out, "*") {
		t.Error("constant series not drawn")
	}
}

func TestBars(t *testing.T) {
	groups := []BarGroup{
		{Label: "N=100", Values: []float64{5, 4, 6, 8}},
		{Label: "N=500", Values: []float64{10, 9, 11, 14}},
	}
	names := []string{"a", "b", "c", "d"}
	out := Bars("fig", names, groups, 40)
	for _, want := range []string{"fig", "N=100", "N=500", "a", "d", "="} {
		if !strings.Contains(out, want) {
			t.Errorf("%q missing from output", want)
		}
	}
	// The largest value gets the longest bar.
	lines := strings.Split(out, "\n")
	longest, longestIdx := 0, -1
	for i, l := range lines {
		n := strings.Count(l, "=")
		if n > longest {
			longest, longestIdx = n, i
		}
	}
	if longestIdx < 0 || !strings.Contains(lines[longestIdx], "14") {
		t.Errorf("longest bar is not the max value: %q", lines[longestIdx])
	}
}

func TestBarsZeroValues(t *testing.T) {
	out := Bars("z", []string{"only"}, []BarGroup{{Label: "g", Values: []float64{0}}}, 20)
	if !strings.Contains(out, "0.000") {
		t.Error("zero value not rendered")
	}
}
