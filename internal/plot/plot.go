// Package plot renders the experiment results as ASCII charts so every
// figure of the paper can be eyeballed straight from a terminal: line
// charts for the ratio tracks (Figures 5/9) and grouped bars for the size
// sweeps (Figures 6-8, 10-12).
package plot

import (
	"fmt"
	"math"
	"strings"

	"gossipstream/internal/stats"
)

// Line renders one or more series as an ASCII line chart of the given
// width and height. Each series is drawn with its own glyph, in order:
// '*', 'o', '+', 'x'.
func Line(title string, width, height int, series ...*stats.Series) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#', '@'}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := 0; i < s.Len(); i++ {
			x, y := s.At(i)
			if math.IsNaN(y) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if !any {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := 0; i < s.Len(); i++ {
			x, y := s.At(i)
			if math.IsNaN(y) {
				continue
			}
			c := int((x - minX) / (maxX - minX) * float64(width-1))
			r := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			grid[r][c] = g
		}
	}
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.3f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.3f ", minY)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        %-*.1f%*.1f\n", width/2, minX, width-width/2, maxX)
	for si, s := range series {
		fmt.Fprintf(&b, "        %c %s\n", glyphs[si%len(glyphs)], s.Label)
	}
	return b.String()
}

// BarGroup is one cluster of bars sharing an x label (one network size).
type BarGroup struct {
	Label  string
	Values []float64
}

// Bars renders grouped horizontal bars with a shared scale. names label
// the bars within each group.
func Bars(title string, names []string, groups []BarGroup, width int) string {
	if width < 20 {
		width = 20
	}
	maxV := 0.0
	for _, g := range groups {
		for _, v := range g.Values {
			if !math.IsNaN(v) && v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	nameW := 0
	for _, n := range names {
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, g := range groups {
		fmt.Fprintf(&b, "%s\n", g.Label)
		for i, v := range g.Values {
			name := ""
			if i < len(names) {
				name = names[i]
			}
			n := 0
			if !math.IsNaN(v) {
				n = int(v / maxV * float64(width))
			}
			fmt.Fprintf(&b, "  %-*s |%s %.3f\n", nameW, name, strings.Repeat("=", n), v)
		}
	}
	return b.String()
}
