package membership

import (
	"math/rand"
	"testing"

	"gossipstream/internal/overlay"
)

func freshDirectory(t *testing.T, n, m int, seed int64) *Directory {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := overlay.Generate(overlay.KindPreferential, n, 1, rng)
	overlay.AugmentMinDegree(g, m, rng)
	return NewDirectory(g, m, rand.New(rand.NewSource(seed+1)))
}

func TestDirectoryInitialState(t *testing.T) {
	d := freshDirectory(t, 100, 5, 1)
	if d.AliveCount() != 100 {
		t.Fatalf("alive = %d", d.AliveCount())
	}
	for i := 0; i < 100; i++ {
		if !d.IsAlive(overlay.NodeID(i)) {
			t.Fatalf("node %d not alive", i)
		}
	}
	if d.TargetDegree() != 5 {
		t.Fatalf("target degree = %d", d.TargetDegree())
	}
}

func TestRandomAliveExcludes(t *testing.T) {
	d := freshDirectory(t, 10, 3, 2)
	var exclude []overlay.NodeID
	for i := 0; i < 9; i++ {
		exclude = append(exclude, overlay.NodeID(i))
	}
	got := d.RandomAlive(exclude...)
	if got != 9 {
		t.Fatalf("RandomAlive with 9 exclusions = %d, want 9", got)
	}
	exclude = append(exclude, 9)
	if got := d.RandomAlive(exclude...); got != -1 {
		t.Fatalf("RandomAlive with all excluded = %d, want -1", got)
	}
}

func TestLeaveRepairsNeighbors(t *testing.T) {
	d := freshDirectory(t, 200, 5, 3)
	g := d.Graph()
	victim := overlay.NodeID(17)
	former := append([]overlay.NodeID(nil), g.Neighbors(victim)...)
	d.Leave(victim)

	if d.IsAlive(victim) {
		t.Fatal("victim still alive")
	}
	if g.Degree(victim) != 0 {
		t.Fatal("victim still wired")
	}
	if d.AliveCount() != 199 {
		t.Fatalf("alive = %d", d.AliveCount())
	}
	// Every surviving ex-neighbor is repaired back to the target degree.
	for _, nb := range former {
		if d.IsAlive(nb) && g.Degree(nb) < d.TargetDegree() {
			t.Errorf("ex-neighbor %d left at degree %d", nb, g.Degree(nb))
		}
	}
	// Leaving twice is a no-op.
	if rep := d.Leave(victim); rep != nil {
		t.Error("second Leave repaired something")
	}
}

func TestJoinWiresNewNode(t *testing.T) {
	d := freshDirectory(t, 100, 5, 4)
	id, neighbors := d.Join()
	if int(id) != 100 {
		t.Fatalf("new id = %d, want 100", id)
	}
	if !d.IsAlive(id) || d.AliveCount() != 101 {
		t.Fatal("joiner not registered alive")
	}
	if len(neighbors) != 5 {
		t.Fatalf("joiner got %d neighbors, want 5", len(neighbors))
	}
	seen := map[overlay.NodeID]bool{}
	for _, nb := range neighbors {
		if nb == id {
			t.Fatal("joiner adopted itself")
		}
		if seen[nb] {
			t.Fatal("duplicate neighbor")
		}
		seen[nb] = true
		if !d.Graph().HasEdge(id, nb) {
			t.Fatalf("edge to %d missing", nb)
		}
	}
}

func TestJoinIntoTinySystem(t *testing.T) {
	g := overlay.New(2)
	g.AddEdge(0, 1)
	d := NewDirectory(g, 5, rand.New(rand.NewSource(5)))
	id, neighbors := d.Join()
	// Only 2 peers exist; the joiner can hold at most 2 neighbors.
	if len(neighbors) > 2 || len(neighbors) == 0 {
		t.Fatalf("joiner neighbors = %v", neighbors)
	}
	if !d.IsAlive(id) {
		t.Fatal("joiner not alive")
	}
}

func TestChurnStormKeepsSystemHealthy(t *testing.T) {
	// Sustained 5% join + 5% leave per round (the paper's dynamic
	// environment) must keep the overlay repaired: alive nodes near the
	// target degree and the alive population stable.
	d := freshDirectory(t, 300, 5, 6)
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 40; round++ {
		k := d.AliveCount() / 20
		for i := 0; i < k; i++ {
			if v := d.RandomAlive(); v >= 0 {
				d.Leave(v)
			}
		}
		for i := 0; i < k; i++ {
			d.Join()
		}
		_ = rng
	}
	if got := d.AliveCount(); got < 250 || got > 350 {
		t.Fatalf("alive population drifted to %d", got)
	}
	deficient := 0
	for _, id := range d.Alive() {
		if d.Graph().Degree(id) < d.TargetDegree()-1 {
			deficient++
		}
	}
	// Joins may briefly leave a node slightly under target; the system
	// must not decay wholesale.
	if deficient > d.AliveCount()/10 {
		t.Errorf("%d of %d alive nodes below target degree", deficient, d.AliveCount())
	}
	// Dead nodes must never appear in adjacency lists of alive nodes.
	for _, id := range d.Alive() {
		for _, nb := range d.Graph().Neighbors(id) {
			if !d.IsAlive(nb) {
				t.Fatalf("alive node %d wired to dead node %d", id, nb)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []overlay.NodeID {
		d := freshDirectory(t, 100, 5, 42)
		d.Leave(3)
		d.Leave(50)
		_, nbs := d.Join()
		return nbs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("join results differ across identical seeds")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("join neighbor sets differ across identical seeds")
		}
	}
}
