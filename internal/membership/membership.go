// Package membership maintains the gossip overlay under churn, in the
// spirit of the peer-to-peer membership protocol of Ganesh, Kermarrec and
// Massoulié that the paper builds on (reference [4]): every node keeps a
// small partial view (M neighbors); a newcomer subscribes through a random
// contact and its subscription is forwarded along the overlay until M
// distinct peers adopt it; a departure triggers local repair, with the
// leaver's former neighbors re-linking so their views stay near M.
//
// The Directory is the authoritative bookkeeping the simulator drives; the
// subscription-forwarding walks are the protocol-shaped part (they only use
// locally-available adjacency, never global scans).
package membership

import (
	"fmt"
	"math/rand"

	"gossipstream/internal/overlay"
)

// Directory tracks which node slots are alive and rewires the overlay on
// join and leave. Dense node ids are never reused; dead slots stay dead
// (the simulator relies on stable ids).
type Directory struct {
	g     *overlay.Graph
	m     int
	rng   *rand.Rand
	alive []bool
	// list of alive ids with O(1) removal (swap-delete + position index)
	list []overlay.NodeID
	pos  []int // node id -> index in list, -1 when dead
}

// NewDirectory wraps an existing fully-alive overlay. m is the target view
// size (the paper's M=5).
func NewDirectory(g *overlay.Graph, m int, rng *rand.Rand) *Directory {
	if m <= 0 {
		panic(fmt.Sprintf("membership: target view size %d must be positive", m))
	}
	d := &Directory{g: g, m: m, rng: rng}
	n := g.N()
	d.alive = make([]bool, n)
	d.list = make([]overlay.NodeID, n)
	d.pos = make([]int, n)
	for i := 0; i < n; i++ {
		d.alive[i] = true
		d.list[i] = overlay.NodeID(i)
		d.pos[i] = i
	}
	return d
}

// Graph returns the underlying overlay (shared with the simulator).
func (d *Directory) Graph() *overlay.Graph { return d.g }

// TargetDegree returns M.
func (d *Directory) TargetDegree() int { return d.m }

// AliveCount returns the number of alive nodes.
func (d *Directory) AliveCount() int { return len(d.list) }

// IsAlive reports whether the node slot is alive.
func (d *Directory) IsAlive(id overlay.NodeID) bool {
	return int(id) < len(d.alive) && d.alive[id]
}

// Alive returns the alive ids; the slice is owned by the directory.
func (d *Directory) Alive() []overlay.NodeID { return d.list }

// RandomAlive returns a uniformly random alive node, excluding the given
// ids. It returns -1 when no eligible node exists.
func (d *Directory) RandomAlive(exclude ...overlay.NodeID) overlay.NodeID {
	if len(d.list) == 0 {
		return -1
	}
	for tries := 0; tries < 64; tries++ {
		cand := d.list[d.rng.Intn(len(d.list))]
		ok := true
		for _, e := range exclude {
			if cand == e {
				ok = false
				break
			}
		}
		if ok {
			return cand
		}
	}
	// Dense exclusion corner: linear fallback keeps the method total.
	for _, cand := range d.list {
		ok := true
		for _, e := range exclude {
			if cand == e {
				ok = false
				break
			}
		}
		if ok {
			return cand
		}
	}
	return -1
}

// Leave marks a node dead, clears its edges and repairs its former
// neighbors' views: every ex-neighbor left under the target degree is
// re-linked, preferring another ex-neighbor of the leaver (local mesh
// healing) and falling back to a random alive peer. It returns the edges
// added during repair.
func (d *Directory) Leave(id overlay.NodeID) (repaired [][2]overlay.NodeID) {
	if !d.IsAlive(id) {
		return nil
	}
	d.markDead(id)
	former := d.g.ClearNode(id)
	// Local healing pass: chain ex-neighbors pairwise.
	for i := 0; i+1 < len(former); i += 2 {
		a, b := former[i], former[i+1]
		if d.IsAlive(a) && d.IsAlive(b) &&
			d.g.Degree(a) < d.m && d.g.Degree(b) < d.m &&
			d.g.AddEdge(a, b) {
			repaired = append(repaired, [2]overlay.NodeID{a, b})
		}
	}
	// Fallback: top up each still-deficient ex-neighbor from the alive set.
	for _, a := range former {
		if !d.IsAlive(a) {
			continue
		}
		for d.g.Degree(a) < d.m {
			b := d.RandomAlive(a)
			if b < 0 {
				break
			}
			if d.g.AddEdge(a, b) {
				repaired = append(repaired, [2]overlay.NodeID{a, b})
			} else if d.g.Degree(a) >= d.AliveCount()-1 {
				break // already adjacent to everyone alive
			}
		}
	}
	return repaired
}

// Join allocates a fresh node slot, selects M neighbors by subscription
// forwarding from a random bootstrap contact, wires the edges, and returns
// the new id with its neighbor set.
func (d *Directory) Join() (id overlay.NodeID, neighbors []overlay.NodeID) {
	id = d.g.AddNode()
	d.alive = append(d.alive, true)
	d.pos = append(d.pos, len(d.list))
	d.list = append(d.list, id)

	bootstrap := d.RandomAlive(id)
	if bootstrap < 0 {
		return id, nil
	}
	neighbors = d.subscriptionWalk(bootstrap, id)
	for _, nb := range neighbors {
		d.g.AddEdge(id, nb)
	}
	return id, neighbors
}

// subscriptionWalk emulates SCAMP-style subscription forwarding: the
// bootstrap contact keeps the subscription and forwards M-1 copies; each
// copy performs a short random walk over alive neighbors and is adopted
// where it lands. Walks that collide retry with a fresh uniform pick so a
// joiner always ends with min(M, alive-1) distinct neighbors.
func (d *Directory) subscriptionWalk(bootstrap, joiner overlay.NodeID) []overlay.NodeID {
	want := d.m
	if avail := d.AliveCount() - 1; want > avail {
		want = avail
	}
	adopted := make(map[overlay.NodeID]bool, want)
	out := make([]overlay.NodeID, 0, want)
	adopt := func(n overlay.NodeID) {
		if n != joiner && d.IsAlive(n) && !adopted[n] {
			adopted[n] = true
			out = append(out, n)
		}
	}
	adopt(bootstrap)
	for tries := 0; len(out) < want && tries < want*16; tries++ {
		cur := bootstrap
		hops := 1 + d.rng.Intn(4)
		for h := 0; h < hops; h++ {
			nbs := d.aliveNeighbors(cur)
			if len(nbs) == 0 {
				break
			}
			cur = nbs[d.rng.Intn(len(nbs))]
		}
		if adopted[cur] || cur == joiner {
			cur = d.RandomAlive(append(keys(adopted), joiner)...)
			if cur < 0 {
				break
			}
		}
		adopt(cur)
	}
	return out
}

func (d *Directory) aliveNeighbors(u overlay.NodeID) []overlay.NodeID {
	var out []overlay.NodeID
	for _, v := range d.g.Neighbors(u) {
		if d.IsAlive(v) {
			out = append(out, v)
		}
	}
	return out
}

func keys(m map[overlay.NodeID]bool) []overlay.NodeID {
	out := make([]overlay.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func (d *Directory) markDead(id overlay.NodeID) {
	i := d.pos[id]
	last := len(d.list) - 1
	d.list[i] = d.list[last]
	d.pos[d.list[i]] = i
	d.list = d.list[:last]
	d.pos[id] = -1
	d.alive[id] = false
}
