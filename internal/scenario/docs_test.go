package scenario

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// The grammar drift test: docs/SCENARIOS.md documents exactly the
// grammar the parser in format.go accepts — every directive, event verb
// and option, in both directions. The parser side is extracted from
// format.go's AST (the case labels of parseLine/parseNet/parseEvent and
// the take/takeInt/takeFloat calls inside each verb's case), the doc
// side from the reference tables' first columns and the per-verb
// headings. Add a clause to the parser without documenting it — or
// document one that does not exist — and this test names it.

// parserGrammar is the grammar as implemented by format.go.
type parserGrammar struct {
	directives  map[string]bool
	netOptions  map[string]bool
	verbOptions map[string]map[string]bool // verb → options
}

// grammarFromSource parses format.go and extracts the accepted grammar.
func grammarFromSource(t *testing.T) parserGrammar {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "format.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := parserGrammar{
		directives:  map[string]bool{},
		netOptions:  map[string]bool{},
		verbOptions: map[string]map[string]bool{},
	}
	funcs := map[string]*ast.FuncDecl{}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			funcs[fd.Name.Name] = fd
		}
	}
	for name, fd := range map[string]*ast.FuncDecl{
		"parseLine":  funcs["parseLine"],
		"parseNet":   funcs["parseNet"],
		"parseEvent": funcs["parseEvent"],
	} {
		if fd == nil {
			t.Fatalf("format.go no longer has %s — update the drift test's extraction", name)
		}
	}
	// Directives: the case labels of parseLine's switch on `key`.
	for _, c := range switchCases(funcs["parseLine"], "key") {
		for _, label := range caseStrings(c) {
			g.directives[label] = true
		}
	}
	// Net options: the case labels of parseNet's switch on `k`.
	for _, c := range switchCases(funcs["parseNet"], "k") {
		for _, label := range caseStrings(c) {
			g.netOptions[label] = true
		}
	}
	// Verbs and their options: parseEvent's switch on `verb`; options are
	// the string literals handed to take/takeInt/takeFloat in each case.
	for _, c := range switchCases(funcs["parseEvent"], "verb") {
		opts := map[string]bool{}
		ast.Inspect(c, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, ok := call.Fun.(*ast.Ident)
			if !ok || len(call.Args) == 0 {
				return true
			}
			switch fn.Name {
			case "take", "takeInt", "takeFloat":
				if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
					opt, err := strconv.Unquote(lit.Value)
					if err == nil {
						opts[opt] = true
					}
				}
			}
			return true
		})
		for _, label := range caseStrings(c) {
			g.verbOptions[label] = opts
		}
	}
	if len(g.directives) == 0 || len(g.verbOptions) == 0 {
		t.Fatal("grammar extraction came back empty — format.go's switch shape changed")
	}
	return g
}

// switchCases returns the case clauses of the switch statements in fn
// whose tag is the identifier tag (nested tagless switches are skipped).
func switchCases(fn *ast.FuncDecl, tag string) []*ast.CaseClause {
	var out []*ast.CaseClause
	ast.Inspect(fn, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		id, ok := sw.Tag.(*ast.Ident)
		if !ok || id.Name != tag {
			return true
		}
		for _, stmt := range sw.Body.List {
			if c, ok := stmt.(*ast.CaseClause); ok && c.List != nil { // skip default
				out = append(out, c)
			}
		}
		return true
	})
	return out
}

// caseStrings returns a clause's string labels.
func caseStrings(c *ast.CaseClause) []string {
	var out []string
	for _, e := range c.List {
		if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				out = append(out, s)
			}
		}
	}
	return out
}

// docGrammar is the grammar as documented by docs/SCENARIOS.md.
type docGrammar struct {
	directives  map[string]bool
	netOptions  map[string]bool
	verbOptions map[string]map[string]bool
}

var (
	rowRe  = regexp.MustCompile("^\\| `([a-z]+)` ")
	verbRe = regexp.MustCompile("^### `([a-z]+)`$")
)

// grammarFromDoc extracts the documented grammar from the reference
// sections of docs/SCENARIOS.md: directive and net-option table rows
// (first column) and the per-verb subsections with their option tables.
func grammarFromDoc(t *testing.T) docGrammar {
	t.Helper()
	raw, err := os.ReadFile("../../docs/SCENARIOS.md")
	if err != nil {
		t.Fatalf("docs/SCENARIOS.md missing: %v", err)
	}
	g := docGrammar{
		directives:  map[string]bool{},
		netOptions:  map[string]bool{},
		verbOptions: map[string]map[string]bool{},
	}
	section := ""
	verb := ""
	for _, line := range strings.Split(string(raw), "\n") {
		switch {
		case line == "## Directives":
			section, verb = "directives", ""
			continue
		case line == "### `net` options":
			section, verb = "net", ""
			continue
		case line == "## Event verbs":
			section, verb = "verbs", ""
			continue
		case strings.HasPrefix(line, "## "):
			section, verb = "", ""
			continue
		}
		if section == "verbs" {
			if m := verbRe.FindStringSubmatch(line); m != nil {
				verb = m[1]
				g.verbOptions[verb] = map[string]bool{}
				continue
			}
		}
		m := rowRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		switch section {
		case "directives":
			g.directives[m[1]] = true
		case "net":
			g.netOptions[m[1]] = true
		case "verbs":
			if verb != "" {
				g.verbOptions[verb][m[1]] = true
			}
		}
	}
	if len(g.directives) == 0 || len(g.verbOptions) == 0 {
		t.Fatal("doc extraction came back empty — docs/SCENARIOS.md's reference sections moved")
	}
	return g
}

// TestScenarioDocMatchesParser is the drift check both ways: the doc
// documents exactly what the parser accepts.
func TestScenarioDocMatchesParser(t *testing.T) {
	src := grammarFromSource(t)
	doc := grammarFromDoc(t)

	diffSets(t, "directive", src.directives, doc.directives)
	diffSets(t, "net option", src.netOptions, doc.netOptions)

	srcVerbs, docVerbs := map[string]bool{}, map[string]bool{}
	for v := range src.verbOptions {
		srcVerbs[v] = true
	}
	for v := range doc.verbOptions {
		docVerbs[v] = true
	}
	diffSets(t, "event verb", srcVerbs, docVerbs)
	for v, srcOpts := range src.verbOptions {
		if docOpts, ok := doc.verbOptions[v]; ok {
			diffSets(t, fmt.Sprintf("option of verb %q", v), srcOpts, docOpts)
		}
	}
}

// diffSets reports the elements present on one side only.
func diffSets(t *testing.T, kind string, parser, doc map[string]bool) {
	t.Helper()
	for _, name := range sortedKeys(parser) {
		if !doc[name] {
			t.Errorf("%s %q is accepted by the parser but undocumented in docs/SCENARIOS.md", kind, name)
		}
	}
	for _, name := range sortedKeys(doc) {
		if !parser[name] {
			t.Errorf("%s %q is documented in docs/SCENARIOS.md but the parser does not accept it", kind, name)
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestDocWorkedExamplesParse keeps the doc's worked examples honest:
// every fenced scenario block in docs/SCENARIOS.md must parse, and the
// bundled-library examples must match the canonical dump of the bundled
// scenario of the same name.
func TestDocWorkedExamplesParse(t *testing.T) {
	raw, err := os.ReadFile("../../docs/SCENARIOS.md")
	if err != nil {
		t.Fatal(err)
	}
	blocks, pinned := 0, 0
	for _, chunk := range strings.Split(string(raw), "```")[1:] {
		if blocks%2 == 0 { // odd chunks are inside fences
			text := chunk
			if strings.HasPrefix(strings.TrimSpace(text), "scenario ") {
				sc, err := Parse(strings.NewReader(text))
				if err != nil {
					t.Errorf("worked example does not parse: %v\n%s", err, text)
				} else if lib := Lookup(sc.Name); lib != nil {
					pinned++
					var want strings.Builder
					if err := lib.Write(&want); err != nil {
						t.Fatal(err)
					}
					if strings.TrimSpace(want.String()) != strings.TrimSpace(text) {
						t.Errorf("worked example for %s drifted from the bundled scenario:\ndoc:\n%s\nbundled:\n%s",
							sc.Name, strings.TrimSpace(text), strings.TrimSpace(want.String()))
					}
				}
			}
		}
		blocks++
	}
	// Every bundled scenario must have its worked example — a fence or
	// formatting change that hides the blocks fails loudly, not silently.
	if want := len(Library()); pinned != want {
		t.Fatalf("doc pins %d bundled-library examples, want %d (one per Library() scenario)", pinned, want)
	}
}
