package scenario

import (
	"fmt"
	"math/rand"

	"gossipstream/internal/overlay"
	"gossipstream/internal/sim"
)

// This file is the seeded scenario generator: from a single seed it
// synthesizes a valid scenario spanning the full event alphabet —
// planned and failure switches, demotions, churn bursts, flash crowds,
// bandwidth and latency shifts, loss bursts, partitions (uniform and
// latency-clustered), heals, and overlapping measurement windows, over
// both the quantized and sub-tick transports. Every output satisfies
// Validate, round-trips through Write/Parse, and — the property the
// fuzz driver leans on — runs without a run error at any worker count,
// so the determinism contract and the run invariants can be checked on
// an unbounded family of timelines instead of the hand-written library.
//
// The generation is biased where uniform sampling would produce
// scenarios that cannot run or measure anything:
//
//   - the first event is always a planned switch, so every scenario has
//     at least one measurement window;
//   - demotions only target the implicit last-retired speaker, only
//     after a planned switch (a failure kills the retiree), and only in
//     churn-free scenarios (churn could kill the retiree first);
//   - churn rates are bounded and joins accompany leaves, keeping the
//     population near its starting size so switches always find a
//     successor;
//   - partitions never nest, and a heal is strongly preferred while one
//     is active (a bare heal is still emitted occasionally — it is a
//     valid no-op).

// GenOptions parameterizes Generate. The zero value of every field
// means "derive it from the seed".
type GenOptions struct {
	// Seed drives every generation decision; equal options generate
	// byte-identical scenarios.
	Seed int64
	// Nodes overrides the overlay size when positive (default 60–160,
	// seed-drawn).
	Nodes int
	// Events overrides the timeline length when positive (default 4–12,
	// seed-drawn).
	Events int
}

// Generate synthesizes a valid scenario from the options. The result
// always passes Validate; the generator panics otherwise (that is a bug
// in the generator, not a user error).
func Generate(opt GenOptions) *Scenario {
	rng := rand.New(rand.NewSource(opt.Seed))
	name := fmt.Sprintf("gen-%d", opt.Seed)
	if opt.Seed < 0 {
		name = fmt.Sprintf("gen-n%d", uint64(-opt.Seed))
	}
	nodes := opt.Nodes
	if nodes <= 0 {
		nodes = 60 + rng.Intn(101)
	}
	sc := &Scenario{
		Name:  name,
		Desc:  fmt.Sprintf("seeded fuzz scenario %d", opt.Seed),
		Nodes: nodes,
		Seed:  rng.Int63n(1 << 31),
		// Always cap the per-window horizon: the generated timelines are
		// about event interleaving, not long-tail completion, and the cap
		// keeps the auto-derived duration (and the fuzz driver) fast.
		Horizon: 40 + rng.Intn(81),
	}
	if rng.Intn(3) == 0 {
		sc.M = 4 + rng.Intn(5)
	}
	if rng.Intn(4) == 0 {
		sc.Spread = 5 + rng.Intn(16)
	}
	if rng.Intn(4) == 0 {
		sc.PerLink = true
	}
	if rng.Intn(4) == 0 {
		sc.Qs = 20 + rng.Intn(41)
	}
	if rng.Intn(5) == 0 {
		sc.First = overlay.NodeID(1 + rng.Intn(nodes-1))
	}

	withChurn := rng.Intn(2) == 0
	if withChurn && rng.Intn(2) == 0 {
		f := 0.005 + 0.015*rng.Float64()
		sc.ChurnLeave, sc.ChurnJoin = f, f
	}
	if rng.Intn(4) != 0 {
		sc.Net = true
		sc.NetSubtick = rng.Intn(2) == 0
		if rng.Intn(3) == 0 {
			sc.NetLoss = 0.01 + 0.09*rng.Float64()
		}
		if rng.Intn(3) == 0 {
			sc.NetJitterMS = 50 + 250*rng.Float64()
		}
		if rng.Intn(3) == 0 {
			sc.NetPingMS = 40 + rng.Intn(121)
		}
	}

	count := opt.Events
	if count <= 0 {
		count = 4 + rng.Intn(9)
	}
	tick := 15 + rng.Intn(26)
	demotable := false       // a planned switch retired a live ex-speaker
	partitionActive := false // an unhealed partition is in force
	genSwitch := func() {
		ev := sim.SwitchAt(tick, -1)
		if rng.Intn(4) == 0 {
			// A pinned successor; the simulator falls back to the random
			// pick when the pin is ineligible, so any id in range is safe.
			ev.To = overlay.NodeID(rng.Intn(nodes))
		}
		if rng.Intn(4) == 0 {
			ev.Horizon = 30 + rng.Intn(51)
		}
		if rng.Intn(3) == 0 {
			ev.Failure = true
			demotable = false // the crash kills the would-be retiree
		} else {
			demotable = true
		}
		sc.Events = append(sc.Events, ev)
	}
	genSwitch() // bias: open with a window, every scenario measures something
	for len(sc.Events) < count {
		tick += 3 + rng.Intn(30)
		// The verb menu, rebuilt each step: entries repeat to weight the
		// draw, and availability depends on the scenario's state.
		type verb int
		const (
			vSwitch verb = iota
			vMeasure
			vCrowd
			vBandwidth
			vChurnBurst
			vDemote
			vLatency
			vLossBurst
			vPartition
			vHeal
		)
		menu := []verb{vSwitch, vSwitch, vMeasure, vMeasure, vCrowd, vBandwidth}
		if withChurn {
			menu = append(menu, vChurnBurst, vChurnBurst)
		} else if demotable {
			menu = append(menu, vDemote, vDemote)
		}
		if sc.Net {
			menu = append(menu, vLatency, vLatency, vLossBurst, vLossBurst)
			if partitionActive {
				menu = append(menu, vHeal, vHeal, vHeal, vHeal)
			} else {
				menu = append(menu, vPartition, vPartition, vHeal)
			}
		}
		switch menu[rng.Intn(len(menu))] {
		case vSwitch:
			genSwitch()
		case vMeasure:
			sc.Events = append(sc.Events, sim.MeasureAt(tick, 10+rng.Intn(31)))
		case vCrowd:
			backlog := 0
			if rng.Intn(2) == 0 {
				backlog = 50 + rng.Intn(251)
			}
			sc.Events = append(sc.Events, sim.FlashCrowdAt(tick, 5+rng.Intn(max(nodes/4, 6)), backlog))
		case vBandwidth:
			sc.Events = append(sc.Events, sim.BandwidthShiftAt(tick, 0.5+rng.Float64()))
		case vChurnBurst:
			leave := 0.01 + 0.03*rng.Float64()
			join := leave + 0.03*rng.Float64()
			sc.Events = append(sc.Events, sim.ChurnBurstAt(tick, 5+rng.Intn(11), leave, join))
		case vDemote:
			sc.Events = append(sc.Events, sim.DemoteAt(tick, -1))
			demotable = false
		case vLatency:
			factor := 0.5 + 1.5*rng.Float64() // mild drift
			switch rng.Intn(3) {
			case 0:
				factor = 4 + 16*rng.Float64() // latency storm
			case 1:
				factor = 1 // restore
			}
			sc.Events = append(sc.Events, sim.LatencyShiftAt(tick, factor))
		case vLossBurst:
			sc.Events = append(sc.Events, sim.LossBurstAt(tick, 5+rng.Intn(26), 0.05+0.35*rng.Float64()))
		case vPartition:
			frac := 0.3 + 0.4*rng.Float64()
			if rng.Intn(2) == 0 {
				sc.Events = append(sc.Events, sim.PartitionByPingAt(tick, frac))
			} else {
				sc.Events = append(sc.Events, sim.PartitionAt(tick, frac))
			}
			partitionActive = true
		case vHeal:
			sc.Events = append(sc.Events, sim.HealAt(tick))
			partitionActive = false
		}
	}
	if rng.Intn(4) == 0 {
		sc.Duration = sc.Events[len(sc.Events)-1].Tick + 40 + rng.Intn(61)
	}
	if err := sc.Validate(); err != nil {
		panic(fmt.Sprintf("scenario: generator emitted an invalid scenario (seed %d): %v", opt.Seed, err))
	}
	return sc
}
