package scenario

import (
	"fmt"
	"io"

	"gossipstream/internal/sim"
)

// FormatResult renders one run's per-window metric blocks — the shared
// report format of cmd/scenario (simulator runs) and cmd/live (live
// runs over real transports), so results from the two execution
// backends read identically and can be diffed side by side.
func FormatResult(w io.Writer, algoName string, res *sim.Result) {
	fmt.Fprintf(w, "%s: %d measurement window(s)\n", algoName, len(res.Windows))
	for _, win := range res.Windows {
		FormatWindow(w, win)
	}
}

// FormatWindow renders one measurement window's block.
func FormatWindow(w io.Writer, win *sim.SwitchMetrics) {
	if win.Kind == "switch" {
		kind := "handoff"
		if win.Failure {
			kind = "CRASH"
		}
		fmt.Fprintf(w, "  window %d: %s %d -> %d at t=%d (n=%d cohort=%d)\n",
			win.Window, kind, win.OldSource, win.NewSource, win.Tick, win.Nodes, win.Cohort)
		fmt.Fprintf(w, "    finish S1  avg %6.2f s (max %6.2f, unfinished %d)\n",
			win.AvgFinishS1(), win.MaxFinishS1(), win.UnfinishedS1)
		fmt.Fprintf(w, "    prepare S2 avg %6.2f s (max %6.2f, unprepared %d)\n",
			win.AvgPrepareS2(), win.MaxPrepareS2(), win.UnpreparedS2)
	} else {
		fmt.Fprintf(w, "  window %d: measure at t=%d for %d ticks (n=%d cohort=%d)\n",
			win.Window, win.Tick, win.MeasuredTicks, win.Nodes, win.Cohort)
	}
	fmt.Fprintf(w, "    continuity %.4f  overhead %.4f  measured %d ticks%s%s\n",
		win.Continuity(), win.Overhead(), win.MeasuredTicks,
		flagStr(win.HitHorizon, "  [hit horizon]"), flagStr(win.Interrupted, "  [interrupted]"))
	if win.NetDelivered+win.NetLost > 0 {
		// Millisecond resolution: the sub-tick transport (and the live
		// runtime's shaped transports) report true link delays well below
		// one scheduling period.
		fmt.Fprintf(w, "    transport: delay %.3f s  loss %.1f%% (%d lost, %d re-requested of %d msgs)\n",
			win.MeanDeliveryDelay(), win.LossRate()*100, win.NetLost, win.NetReRequests, win.NetDelivered+win.NetLost)
	}
}

func flagStr(b bool, s string) string {
	if b {
		return s
	}
	return ""
}
