package scenario

import "gossipstream/internal/sim"

// The bundled scenario library: one named Scenario per dynamic the north
// star calls for. Each is a plain value — Scaled(n) shrinks any of them
// for tests and smoke runs — and each round-trips through the text
// format (cmd/scenario -dump prints the canonical file).

// PaperSingleSwitch is the paper's evaluation shape as a scenario: the
// session assembles over 25 ticks, warms up to 40, then one planned
// switch to a random successor, measured to the horizon. Compiling and
// running it reproduces the classic sim.Config single-switch path bit
// for bit (the equivalence regression in scenario_test.go).
func PaperSingleSwitch() *Scenario {
	return &Scenario{
		Name:    "paper-single-switch",
		Desc:    "Section 5.1 baseline: warm-up, one planned handoff, one measured window",
		Nodes:   1000,
		M:       5,
		Seed:    7,
		Spread:  25,
		Horizon: 300,
		Events: []sim.Event{
			sim.SwitchAt(40, -1),
		},
	}
}

// SerialHandoffChain is the conference floor passing along four speakers:
// three serial measured handoffs in one live mesh (the multi-switch
// acceptance scenario — three switch-metrics blocks per run).
func SerialHandoffChain() *Scenario {
	return &Scenario{
		Name:    "serial-handoff-chain",
		Desc:    "conference: the floor passes 3 times through one live mesh",
		Nodes:   400,
		M:       5,
		Seed:    7,
		Spread:  25,
		Horizon: 120,
		Events: []sim.Event{
			sim.SwitchAt(40, 41),
			sim.SwitchAt(160, 97),
			sim.SwitchAt(280, 155),
		},
	}
}

// FlashCrowdJoin is the live-entertainment arrival burst: half the
// audience floods in at once with a catch-up backlog, a measurement
// window quantifies the disruption, then the source hands off under the
// crowd's load.
func FlashCrowdJoin() *Scenario {
	return &Scenario{
		Name:    "flash-crowd-join",
		Desc:    "batch arrival of half the audience, then a handoff under load",
		Nodes:   300,
		M:       5,
		Seed:    11,
		Spread:  20,
		Horizon: 200,
		Events: []sim.Event{
			sim.FlashCrowdAt(35, 150, 200),
			sim.MeasureAt(36, 40),
			sim.SwitchAt(90, -1),
		},
	}
}

// ChurnStorm is Section 5.4 pushed harder: baseline churn, then a storm
// at double the paper's rate breaking over the switch itself.
func ChurnStorm() *Scenario {
	return &Scenario{
		Name:       "churn-storm",
		Desc:       "baseline churn with a 10% storm breaking over the handoff",
		Nodes:      300,
		M:          5,
		Seed:       13,
		Spread:     25,
		Horizon:    200,
		ChurnLeave: 0.02,
		ChurnJoin:  0.02,
		Events: []sim.Event{
			sim.ChurnBurstAt(35, 30, 0.10, 0.10),
			sim.SwitchAt(50, -1),
		},
	}
}

// SourceCrash contrasts a planned handoff with an abrupt source failure
// in the same run: the second speaker crashes mid-stream, segments that
// never left their machine are lost, and the mesh must still converge on
// the successor's stream.
func SourceCrash() *Scenario {
	return &Scenario{
		Name:    "source-crash",
		Desc:    "planned handoff, then the second speaker crashes mid-stream",
		Nodes:   300,
		M:       5,
		Seed:    17,
		Spread:  25,
		Horizon: 150,
		Events: []sim.Event{
			sim.SwitchAt(40, -1),
			sim.CrashAt(110, -1),
		},
	}
}

// LossyUplink is the netmodel baseline scenario: the whole session runs
// over a lossy sub-tick transport (5% baseline, trace-derived delays
// plus jitter), and a 25% loss burst breaks over the handoff itself —
// the regime "Adaptive Streaming in P2P Live Video Systems" shows
// dominates perceived switch quality. Lost grants surface as
// loss-induced re-requests, and the window's mean delivery delay now
// resolves the sub-second trace latencies the quantized transport used
// to round up to a whole period.
func LossyUplink() *Scenario {
	return &Scenario{
		Name:        "lossy-uplink",
		Desc:        "5% baseline loss with a 25% burst breaking over the handoff",
		Nodes:       300,
		M:           5,
		Seed:        19,
		Spread:      25,
		Horizon:     220,
		Net:         true,
		NetLoss:     0.05,
		NetJitterMS: 150,
		NetSubtick:  true,
		Events: []sim.Event{
			sim.LossBurstAt(45, 40, 0.25),
			sim.SwitchAt(55, -1),
		},
	}
}

// TransatlanticSplit severs the overlay in two mid-session: the switch
// happens while part of the mesh is unreachable (only the source's side
// converges), the partition heals, and a second measurement window
// quantifies the far side's catch-up — the CliqueStream link-failure
// experiment as one scenario file. The split is latency-clustered
// (by=ping): the low-ping half of the trace forms one island, so the
// partition is genuinely geographic rather than a random bisection.
func TransatlanticSplit() *Scenario {
	return &Scenario{
		Name:        "transatlantic-split",
		Desc:        "a ping-clustered 50/50 partition over the handoff, healed after 35 ticks",
		Nodes:       300,
		M:           5,
		Seed:        23,
		Spread:      25,
		Horizon:     90,
		Net:         true,
		NetJitterMS: 1500, // multi-tick flights: the split severs messages mid-air
		NetSubtick:  true,
		Events: []sim.Event{
			sim.PartitionByPingAt(45, 0.5),
			sim.SwitchAt(50, -1),
			sim.HealAt(80),
			sim.MeasureAt(145, 60),
		},
	}
}

// LatencyStorm multiplies every link's propagation delay twentyfold
// around the handoff (trace pings of tens of milliseconds become
// seconds, i.e. multi-tick flights), then restores the baseline: the
// switch must complete while every grant spends periods in transit, and
// under the sub-tick transport same-tick grants land in true delay
// order instead of injection order.
func LatencyStorm() *Scenario {
	return &Scenario{
		Name:        "latency-storm",
		Desc:        "propagation ×20 around the handoff: every grant flies for ticks",
		Nodes:       300,
		M:           5,
		Seed:        29,
		Spread:      25,
		Horizon:     250,
		Net:         true,
		NetJitterMS: 300,
		NetSubtick:  true,
		Events: []sim.Event{
			sim.LatencyShiftAt(40, 20),
			sim.SwitchAt(55, -1),
			sim.LatencyShiftAt(110, 1),
		},
	}
}

// Library returns the bundled scenarios, in documentation order.
func Library() []*Scenario {
	return []*Scenario{
		PaperSingleSwitch(),
		SerialHandoffChain(),
		FlashCrowdJoin(),
		ChurnStorm(),
		SourceCrash(),
		LossyUplink(),
		TransatlanticSplit(),
		LatencyStorm(),
	}
}

// Lookup returns the bundled scenario with the given name, or nil.
func Lookup(name string) *Scenario {
	for _, sc := range Library() {
		if sc.Name == name {
			return sc
		}
	}
	return nil
}
