package scenario

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"gossipstream/internal/obs"
	"gossipstream/internal/sim"
)

// TestTracedRunBitIdentical pins the observability contract: metrics
// and tracing are observational only, so a run with a live registry and
// trace stream attached produces a bit-identical Result to a bare run —
// at any worker count. This is what lets an operator turn tracing on in
// anger without changing what the run computes.
func TestTracedRunBitIdentical(t *testing.T) {
	scens := []func() *Scenario{PaperSingleSwitch, TransatlanticSplit}
	for _, mk := range scens {
		for _, workers := range []int{1, 8} {
			name := fmt.Sprintf("%s/workers=%d", mk().Name, workers)
			t.Run(name, func(t *testing.T) {
				run := func(o *obs.Obs) *sim.Result {
					cfg, err := mk().Scaled(120).Config(sim.Fast)
					if err != nil {
						t.Fatal(err)
					}
					cfg.Workers = workers
					cfg.Obs = o
					s, err := sim.New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					res, err := s.Run()
					if err != nil {
						t.Fatal(err)
					}
					return res
				}

				bare := run(nil)
				var buf bytes.Buffer
				o := &obs.Obs{Reg: obs.NewRegistry(), Trace: obs.NewTrace(&buf)}
				traced := run(o)
				if err := o.Close(); err != nil {
					t.Fatal(err)
				}

				if !reflect.DeepEqual(bare, traced) {
					t.Errorf("traced run diverged from bare run:\nbare:   %+v\ntraced: %+v",
						bare.SwitchMetrics, traced.SwitchMetrics)
				}
				if n, err := obs.ValidateTrace(&buf); err != nil {
					t.Errorf("trace stream invalid after %d lines: %v", n, err)
				}
			})
		}
	}
}
