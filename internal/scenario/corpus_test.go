package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gossipstream/internal/sim"
)

// TestCorpus replays the minimized regression corpus: every .scn file
// under testdata/corpus must parse, round-trip through the canonical
// form, and run clean (invariants included) at 1 and 4 workers; every
// file under testdata/corpus/reject must fail to parse. Fuzzer finds
// get minimized into one of the two directories so the regression
// replays on every plain `go test` run, not only under -fuzz.
func TestCorpus(t *testing.T) {
	accepted, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.scn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(accepted) == 0 {
		t.Fatal("empty corpus")
	}
	for _, path := range accepted {
		t.Run(strings.TrimSuffix(filepath.Base(path), ".scn"), func(t *testing.T) {
			text, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			sc, err := Parse(bytes.NewReader(text))
			if err != nil {
				t.Fatalf("corpus file rejected: %v", err)
			}
			var buf bytes.Buffer
			if err := sc.Write(&buf); err != nil {
				t.Fatal(err)
			}
			re, err := Parse(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("canonical text does not reparse: %v\n%s", err, buf.String())
			}
			if !reflect.DeepEqual(re, sc) {
				t.Fatalf("canonical form unstable:\n%+v\nvs\n%+v", sc, re)
			}
			var results []*sim.Result
			for _, workers := range []int{1, 4} {
				cfg, err := sc.Config(sim.Fast)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Workers = workers
				res := mustRun(t, cfg)
				if err := sim.CheckInvariants(cfg, res); err != nil {
					t.Fatalf("workers=%d: run invariants violated: %v", workers, err)
				}
				results = append(results, res)
			}
			if !reflect.DeepEqual(results[0], results[1]) {
				t.Fatal("workers 1 vs 4 diverged")
			}
		})
	}

	rejected, err := filepath.Glob(filepath.Join("testdata", "corpus", "reject", "*.scn"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rejected) == 0 {
		t.Fatal("empty reject corpus")
	}
	for _, path := range rejected {
		t.Run("reject-"+strings.TrimSuffix(filepath.Base(path), ".scn"), func(t *testing.T) {
			text, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if sc, err := Parse(bytes.NewReader(text)); err == nil {
				t.Fatalf("invalid scenario accepted: %+v", sc)
			}
		})
	}
}
