package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzScenarioParse fuzzes the scenario text parser: arbitrary input
// must either be rejected with an error or produce a scenario whose
// canonical form is stable — Write must emit text that reparses to a
// DeepEqual scenario. The seed corpus (testdata/fuzz/FuzzScenarioParse)
// holds the regressions this fuzzer has found: negative event pins and
// non-finite floats both used to parse fine and then break the
// round-trip.
func FuzzScenarioParse(f *testing.F) {
	for _, sc := range Library() {
		var buf bytes.Buffer
		if err := sc.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	for _, seed := range []int64{1, 17, 99} {
		var buf bytes.Buffer
		if err := Generate(GenOptions{Seed: seed}).Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Add("scenario x\nnodes 10\nseed 1\n\nat 5 switch\n")
	f.Add("scenario x\nnodes 10\nseed 1\nnet loss=0.1 jitter=40 ping=80 subtick\n\nat 5 switch to=3 failure horizon=9\nat 9 partition frac=0.5 by=ping\nat 11 heal\n")
	f.Add("# comment\nscenario a0\ndesc words here\nnodes 4\nm 3\nseed -7\nfirst 2\nspread 3\nhorizon 20\nduration 90\nchurn 0.01 0.02\nperlink\nqs 30\n\nat 1 measure for=10\nat 2 churnburst for=3 leave=0.1 join=0.2\nat 3 crowd count=2 backlog=5\nat 4 bandwidth factor=0.5\n")
	f.Fuzz(func(t *testing.T, text string) {
		sc, err := Parse(strings.NewReader(text))
		if err != nil {
			return // rejected input is fine; crashing or looping is not
		}
		var buf bytes.Buffer
		if err := sc.Write(&buf); err != nil {
			t.Fatalf("accepted scenario does not write: %v", err)
		}
		re, err := Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical text does not reparse: %v\n%s", err, buf.String())
		}
		if !reflect.DeepEqual(re, sc) {
			t.Fatalf("canonical form unstable:\n%+v\nvs\n%+v\ntext:\n%s", sc, re, buf.String())
		}
	})
}
