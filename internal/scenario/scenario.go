package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"regexp"

	"gossipstream/internal/netmodel"
	"gossipstream/internal/overlay"
	"gossipstream/internal/sim"
	"gossipstream/internal/trace"
)

// Scenario is one named, self-contained experiment: topology parameters,
// base environment, and the event timeline.
type Scenario struct {
	// Name identifies the scenario (kebab-case; it also seeds the
	// synthesized topology's trace label).
	Name string
	// Desc is a one-line human description.
	Desc string

	// Nodes is the overlay size; M the per-node neighbor target after
	// random-edge augmentation (0 → 5, the paper's choice).
	Nodes int
	M     int
	// Seed drives the topology synthesis and every random decision of
	// the run.
	Seed int64

	// First pins the initial streaming source when positive; 0 (the
	// default) auto-picks the lowest-id minimum-degree node, the paper's
	// "source holding M connected neighbors".
	First overlay.NodeID

	// Spread staggers initial arrivals over the first Spread ticks
	// (members assembling while the first source streams); 0 starts
	// everyone at once.
	Spread int
	// Horizon is the default measurement horizon of each switch window,
	// in ticks (0 → the simulator's default, 150).
	Horizon int
	// Duration caps the run length in ticks; 0 derives it from the
	// timeline (every window gets room to reach its horizon).
	Duration int

	// ChurnLeave/ChurnJoin enable baseline churn (fractions per tick).
	ChurnLeave float64
	ChurnJoin  float64

	// PerLink selects the paper's per-link capacity model instead of the
	// shared-outbound substrate.
	PerLink bool
	// Qs overrides the new-stream startup threshold (0 → 50).
	Qs int

	// Net enables the message-level transport model (internal/netmodel):
	// per-link delivery delay derived from the synthesized trace's ping
	// times, per-message loss, and partition semantics. Required by the
	// latency/lossburst/partition/heal events.
	Net bool
	// NetLoss is the baseline per-message loss probability in [0, 1).
	NetLoss float64
	// NetJitterMS is the per-message uniform jitter amplitude in
	// milliseconds.
	NetJitterMS float64
	// NetPingMS is the ping of nodes without a trace record — churn
	// joiners and crowd members (0 → netmodel's default).
	NetPingMS int
	// NetSubtick selects the sub-tick event-driven transport (`net ...
	// subtick`): messages carry continuous arrival timestamps, same-tick
	// grants land in true delay order, and delay metrics resolve below
	// one period. The default (false) keeps the scenario file format's
	// original tick-quantized transport, so existing files reproduce
	// their pre-subtick runs bit for bit (netmodel.Config.QuantizeTicks).
	NetSubtick bool

	// Events is the timeline, in firing order.
	Events []sim.Event
}

var nameRe = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// Validate reports scenario errors.
func (sc *Scenario) Validate() error {
	if !nameRe.MatchString(sc.Name) {
		return fmt.Errorf("scenario: invalid name %q (want kebab-case)", sc.Name)
	}
	if sc.Nodes < 2 {
		return fmt.Errorf("scenario %s: need at least 2 nodes, have %d", sc.Name, sc.Nodes)
	}
	if sc.M < 0 || sc.Spread < 0 || sc.Horizon < 0 || sc.Duration < 0 || sc.Qs < 0 {
		return fmt.Errorf("scenario %s: negative parameter", sc.Name)
	}
	// Non-finite floats would sail through the range checks below (NaN
	// fails both sides of every comparison) and then poison the run and
	// break round-trip equality, so reject them outright.
	for _, f := range [...]float64{sc.ChurnLeave, sc.ChurnJoin, sc.NetLoss, sc.NetJitterMS} {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("scenario %s: non-finite parameter %v", sc.Name, f)
		}
	}
	if sc.ChurnLeave < 0 || sc.ChurnLeave >= 1 || sc.ChurnJoin < 0 || sc.ChurnJoin >= 1 {
		return fmt.Errorf("scenario %s: churn fractions (%v, %v) out of [0,1)", sc.Name, sc.ChurnLeave, sc.ChurnJoin)
	}
	if sc.NetLoss < 0 || sc.NetLoss >= 1 {
		return fmt.Errorf("scenario %s: net loss %v out of [0,1)", sc.Name, sc.NetLoss)
	}
	if sc.NetJitterMS < 0 || sc.NetPingMS < 0 {
		return fmt.Errorf("scenario %s: negative net parameter", sc.Name)
	}
	script := sim.Script{Events: sc.Events, Duration: sc.Duration}
	if err := script.Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	if int(sc.First) >= sc.Nodes {
		return fmt.Errorf("scenario %s: first source %d out of %d nodes", sc.Name, sc.First, sc.Nodes)
	}
	switches, demotes := 0, 0
	for i, ev := range sc.Events {
		if ev.Kind.NeedsNet() && !sc.Net {
			return fmt.Errorf("scenario %s: event %d (%s) requires the net directive", sc.Name, i, ev.Kind)
		}
		switch ev.Kind {
		case sim.EvSwitchSource:
			switches++
			if int(ev.To) >= sc.Nodes {
				return fmt.Errorf("scenario %s: event %d targets node %d of %d", sc.Name, i, ev.To, sc.Nodes)
			}
		case sim.EvDemoteSource:
			demotes++
			if int(ev.To) >= sc.Nodes {
				return fmt.Errorf("scenario %s: event %d demotes node %d of %d", sc.Name, i, ev.To, sc.Nodes)
			}
		}
	}
	// Every switch consumes one never-source node, plus one for the
	// initial source — but each demotion returns an ex-speaker to the
	// pool. Churn joins can relax this at run time, so it is a static
	// sanity bound, not the final word — the simulator reports exhaustion
	// as a run error.
	if switches-demotes >= sc.Nodes {
		return fmt.Errorf("scenario %s: %d switches cannot be served by %d nodes", sc.Name, switches, sc.Nodes)
	}
	return nil
}

// Scaled returns a copy sized to n nodes, with flash-crowd batch sizes
// rescaled proportionally and pinned switch targets clamped into range
// (dropped to the random pick when out of range). Used by tests, the CI
// smoke run and the -n CLI override to run big scenarios small.
func (sc *Scenario) Scaled(n int) *Scenario {
	out := *sc
	out.Events = make([]sim.Event, len(sc.Events))
	copy(out.Events, sc.Events)
	if n <= 0 || n == sc.Nodes {
		return &out
	}
	for i := range out.Events {
		ev := &out.Events[i]
		switch ev.Kind {
		case sim.EvFlashCrowd:
			if sc.Nodes > 0 {
				ev.Count = ev.Count * n / sc.Nodes
			}
			if ev.Count < 1 {
				ev.Count = 1
			}
		case sim.EvSwitchSource, sim.EvDemoteSource:
			if int(ev.To) >= n {
				ev.To = -1
			}
		}
	}
	if int(out.First) >= n {
		out.First = 0 // auto-pick
	}
	out.Nodes = n
	return &out
}

// Config validates the scenario, synthesizes its overlay (a Gnutella-like
// crawl trace augmented to min-degree M, the Section 5.1 preparation) and
// assembles the sim.Config. Callers typically set Workers or TrackRatios
// on the returned config before sim.New.
func (sc *Scenario) Config(factory sim.AlgorithmFactory) (sim.Config, error) {
	if err := sc.Validate(); err != nil {
		return sim.Config{}, err
	}
	m := sc.M
	if m <= 0 {
		m = 5
	}
	tr := trace.Synthesize(sc.Name, sc.Nodes, 1, sc.Seed)
	g, err := tr.Graph()
	if err != nil {
		return sim.Config{}, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	overlay.AugmentMinDegree(g, m, rand.New(rand.NewSource(sc.Seed^0xa06)))

	first := overlay.NodeID(-1)
	if sc.First > 0 {
		first = sc.First
	}
	cfg := sim.Config{
		Graph:           g,
		Seed:            sc.Seed,
		NewAlgorithm:    factory,
		FirstSource:     first,
		NewSource:       -1,
		SharedOutbound:  !sc.PerLink,
		Qs:              sc.Qs,
		HorizonTicks:    sc.Horizon,
		JoinSpreadTicks: sc.Spread,
		Script: &sim.Script{
			Events:   append([]sim.Event(nil), sc.Events...),
			Duration: sc.Duration,
		},
	}
	if sc.Spread <= 0 {
		cfg.JoinSpreadTicks = -1 // simultaneous start (0 would mean "default")
	}
	if sc.ChurnLeave > 0 || sc.ChurnJoin > 0 {
		cfg.Churn = &sim.ChurnConfig{LeaveFraction: sc.ChurnLeave, JoinFraction: sc.ChurnJoin}
	}
	if sc.Net {
		// The transport's delay model runs on the trace's ping column —
		// the one Clip2-DSS field the capacity substrate was dropping on
		// the floor. Nodes beyond the trace (churn joiners, crowd
		// members) fall back to NetPingMS.
		pings := make([]int, len(tr.Nodes))
		for i, n := range tr.Nodes {
			pings[i] = n.PingMS
		}
		cfg.Net = &netmodel.Config{
			PingMS:        pings,
			DefaultPingMS: sc.NetPingMS,
			JitterMS:      sc.NetJitterMS,
			Loss:          sc.NetLoss,
			QuantizeTicks: !sc.NetSubtick,
		}
	}
	return cfg, nil
}

// Run compiles and executes the scenario with the given scheduler on the
// serial engine. For worker control or ratio tracking, use Config and
// drive sim.New directly.
func (sc *Scenario) Run(factory sim.AlgorithmFactory) (*sim.Result, error) {
	cfg, err := sc.Config(factory)
	if err != nil {
		return nil, err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
