package scenario

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"gossipstream/internal/sim"
)

// TestFormatRoundTrip is the text format's compatibility contract: every
// library scenario survives Write → Parse unchanged.
func TestFormatRoundTrip(t *testing.T) {
	for _, sc := range Library() {
		t.Run(sc.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := sc.Write(&buf); err != nil {
				t.Fatal(err)
			}
			back, err := Parse(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("parse back:\n%s\n%v", buf.String(), err)
			}
			if !reflect.DeepEqual(sc, back) {
				t.Errorf("round trip diverged:\n%+v\nvs\n%+v\ntext:\n%s", sc, back, buf.String())
			}
		})
	}
}

// TestParseFull exercises every directive and event verb of the grammar,
// including comments, blank lines and flag options.
func TestParseFull(t *testing.T) {
	text := `
# a kitchen-sink scenario
scenario kitchen-sink
desc every directive once
nodes 200
m 6
seed 42
first 9
spread 10     # trailing comment
horizon 80
duration 500
churn 0.01 0.02
perlink
qs 25
net loss=0.05 jitter=150 ping=80 subtick

at 20 switch to=3 horizon=90
at 60 switch
at 100 switch failure
at 30 crowd count=50 backlog=120
at 45 churnburst for=15 leave=0.1 join=0.05
at 70 bandwidth factor=0.5
at 120 measure for=25
at 55 latency factor=20
at 65 lossburst for=30 p=0.25
at 75 partition frac=0.5
at 80 partition frac=0.4 by=ping
at 95 heal
at 130 demote node=3
at 140 demote
`
	sc, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "kitchen-sink" || sc.Nodes != 200 || sc.M != 6 || sc.Seed != 42 ||
		sc.First != 9 || sc.Spread != 10 || sc.Horizon != 80 || sc.Duration != 500 ||
		sc.ChurnLeave != 0.01 || sc.ChurnJoin != 0.02 || !sc.PerLink || sc.Qs != 25 {
		t.Errorf("header misparsed: %+v", sc)
	}
	if !sc.Net || sc.NetLoss != 0.05 || sc.NetJitterMS != 150 || sc.NetPingMS != 80 || !sc.NetSubtick {
		t.Errorf("net directive misparsed: %+v", sc)
	}
	want := []sim.Event{
		{Tick: 20, Kind: sim.EvSwitchSource, To: 3, Horizon: 90},
		{Tick: 60, Kind: sim.EvSwitchSource, To: -1},
		{Tick: 100, Kind: sim.EvSwitchSource, To: -1, Failure: true},
		sim.FlashCrowdAt(30, 50, 120),
		sim.ChurnBurstAt(45, 15, 0.1, 0.05),
		sim.BandwidthShiftAt(70, 0.5),
		sim.MeasureAt(120, 25),
		sim.LatencyShiftAt(55, 20),
		sim.LossBurstAt(65, 30, 0.25),
		sim.PartitionAt(75, 0.5),
		sim.PartitionByPingAt(80, 0.4),
		sim.HealAt(95),
		sim.DemoteAt(130, 3),
		sim.DemoteAt(140, -1),
	}
	if !reflect.DeepEqual(sc.Events, want) {
		t.Errorf("events misparsed:\n%+v\nwant\n%+v", sc.Events, want)
	}
	// And it round-trips.
	var buf bytes.Buffer
	if err := sc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Error("kitchen-sink round trip diverged")
	}
}

// TestParseErrors rejects malformed input with the offending line.
func TestParseErrors(t *testing.T) {
	bad := []string{
		"scenario ok\nnodes 100\nseed 1\nbogus 3\nat 10 switch",
		"scenario ok\nnodes 100\nseed 1\nat x switch",
		"scenario ok\nnodes 100\nseed 1\nat 10 explode",
		"scenario ok\nnodes 100\nseed 1\nat 10 switch to=abc",
		"scenario ok\nnodes 100\nseed 1\nat 10 crowd count=0",
		"scenario ok\nnodes 100\nseed 1\nat 10 switch to=3 to=4",
		"scenario ok\nnodes 100\nseed 1\nat 10 switch speed=9",
		"scenario Bad_Name\nnodes 100\nseed 1\nat 10 switch",
		"scenario ok\nnodes 1\nseed 1\nat 10 switch",
		"scenario ok\nnodes 100\nseed 1\nat 10 churnburst for=10 leave=1.5",
		"scenario ok\nnodes 100\nseed 1", // no events, no duration
		// Netmodel clauses: malformed options.
		"scenario ok\nnodes 100\nseed 1\nnet\nat 10 latency factor=0",
		"scenario ok\nnodes 100\nseed 1\nnet\nat 10 latency factor=abc",
		"scenario ok\nnodes 100\nseed 1\nnet\nat 10 lossburst for=0 p=0.2",
		"scenario ok\nnodes 100\nseed 1\nnet\nat 10 lossburst for=10 p=1.5",
		"scenario ok\nnodes 100\nseed 1\nnet\nat 10 partition frac=0",
		"scenario ok\nnodes 100\nseed 1\nnet\nat 10 partition frac=1.2",
		"scenario ok\nnodes 100\nseed 1\nnet\nat 10 partition frac=0.5 side=3",
		"scenario ok\nnodes 100\nseed 1\nnet\nat 10 heal now",
		"scenario ok\nnodes 100\nseed 1\nat 10 demote node=abc",
		"scenario ok\nnodes 100\nseed 1\nat 10 demote node=500",
		// Net directive: bad options, and net events without it.
		"scenario ok\nnodes 100\nseed 1\nnet loss=2\nat 10 switch",
		"scenario ok\nnodes 100\nseed 1\nnet jitter=-5\nat 10 switch",
		"scenario ok\nnodes 100\nseed 1\nnet speed=56\nat 10 switch",
		"scenario ok\nnodes 100\nseed 1\nnet loss\nat 10 switch",
		"scenario ok\nnodes 100\nseed 1\nnet subtick=1\nat 10 switch",
		"scenario ok\nnodes 100\nseed 1\nnet\nat 10 partition frac=0.5 by=hash",
		"scenario ok\nnodes 100\nseed 1\nnet\nat 10 partition frac=0.5 by",
		"scenario ok\nnodes 100\nseed 1\nat 10 partition frac=0.5",
		"scenario ok\nnodes 100\nseed 1\nat 10 heal",
		"scenario ok\nnodes 100\nseed 1\nat 10 lossburst for=10 p=0.2",
		"scenario ok\nnodes 100\nseed 1\nat 10 latency factor=5",
	}
	for _, text := range bad {
		if _, err := Parse(strings.NewReader(text)); err == nil {
			t.Errorf("accepted malformed scenario:\n%s", text)
		}
	}
}

// TestPaperSingleSwitchMatchesLegacy is the acceptance anchor: compiling
// and running paper-single-switch reproduces the classic sim.Config
// single-switch path bit for bit.
func TestPaperSingleSwitchMatchesLegacy(t *testing.T) {
	sc := PaperSingleSwitch().Scaled(200)

	cfg, err := sc.Config(sim.Fast)
	if err != nil {
		t.Fatal(err)
	}
	scripted := mustRun(t, cfg)

	// The same run, hand-assembled the pre-scenario way: no Script, the
	// switch at WarmupTicks, measured for HorizonTicks.
	legacy, err := sc.Config(sim.Fast) // fresh graph: runs mutate topologies
	if err != nil {
		t.Fatal(err)
	}
	legacy.Script = nil
	legacy.WarmupTicks = 40
	legacyRes := mustRun(t, legacy)

	if !reflect.DeepEqual(scripted.SwitchMetrics, legacyRes.SwitchMetrics) {
		t.Errorf("flat metrics diverged:\n%+v\nvs\n%+v", scripted.SwitchMetrics, legacyRes.SwitchMetrics)
	}
	if !reflect.DeepEqual(scripted.Windows, legacyRes.Windows) {
		t.Errorf("windows diverged")
	}
}

// TestSerialHandoffDeterminism is the multi-switch acceptance criterion:
// three serial switches produce three switch-metrics blocks, and the same
// seed yields a bit-identical Result at Workers ∈ {0, 1, 8}.
func TestSerialHandoffDeterminism(t *testing.T) {
	run := func(workers int) *sim.Result {
		cfg, err := SerialHandoffChain().Scaled(180).Config(sim.Fast)
		if err != nil {
			t.Fatal(err)
		}
		cfg.TrackRatios = true
		cfg.Workers = workers
		return mustRun(t, cfg)
	}
	serial := run(0)
	if len(serial.Windows) != 3 {
		t.Fatalf("windows = %d, want 3 (one per handoff)", len(serial.Windows))
	}
	for i, w := range serial.Windows {
		if w.Kind != "switch" || len(w.PrepareS2Times) == 0 {
			t.Errorf("window %d unusable: %+v", i, w)
		}
	}
	for _, workers := range []int{1, 8} {
		if got := run(workers); !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d diverged from the serial engine", workers)
		}
	}
}

// TestNetScenarioDeterminism is the netmodel acceptance criterion at the
// scenario level: with the transport enabled the same seed yields a
// bit-identical Result at Workers ∈ {0, 1, 8} — including the in-flight
// messages severed by the partition (the scenario's jitter keeps grants
// airborne across the split instant). The bundled transatlantic-split
// runs the sub-tick transport with a ping-clustered partition, so this
// is also the sub-tick worker-count invariance pin the CI netmodel job
// exercises.
func TestNetScenarioDeterminism(t *testing.T) {
	if !TransatlanticSplit().NetSubtick {
		t.Fatal("transatlantic-split no longer pins the sub-tick transport")
	}
	run := func(workers int) (*sim.Result, sim.Config) {
		cfg, err := TransatlanticSplit().Scaled(150).Config(sim.Fast)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = workers
		return mustRun(t, cfg), cfg
	}
	serial, cfg := run(0)
	if err := sim.CheckInvariants(cfg, serial); err != nil {
		t.Errorf("run invariants violated: %v", err)
	}
	if len(serial.Windows) != 2 {
		t.Fatalf("windows = %d, want 2", len(serial.Windows))
	}
	if serial.NetDelivered == 0 {
		t.Fatal("transport delivered nothing")
	}
	// Sub-tick delay metrics resolve below whole periods: with 1.5 s
	// uniform jitter the summed delay cannot sit on a period boundary.
	if d := serial.NetDelaySeconds; d == math.Trunc(d) {
		t.Errorf("NetDelaySeconds = %v looks tick-quantized on a sub-tick run", d)
	}
	for _, workers := range []int{1, 8} {
		if got, _ := run(workers); !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d diverged from the serial engine", workers)
		}
	}
}

// TestLibrarySmoke runs every bundled scenario at small scale: parse its
// canonical text, compile, run, and demand non-empty per-window metrics.
// This is the CI rot guard for the scenario files (cmd/scenario -smoke
// wraps the same check for the workflow).
func TestLibrarySmoke(t *testing.T) {
	for _, sc := range Library() {
		t.Run(sc.Name, func(t *testing.T) {
			small := sc.Scaled(120)
			// Through the text format, so the bundled definitions and the
			// parser cannot drift apart.
			var buf bytes.Buffer
			if err := small.Write(&buf); err != nil {
				t.Fatal(err)
			}
			parsed, err := Parse(&buf)
			if err != nil {
				t.Fatal(err)
			}
			// Through Config rather than Run, so the run-invariant checker
			// can audit the result against the exact configuration.
			cfg, err := parsed.Config(sim.Fast)
			if err != nil {
				t.Fatal(err)
			}
			res := mustRun(t, cfg)
			if err := sim.CheckInvariants(cfg, res); err != nil {
				t.Errorf("run invariants violated: %v", err)
			}
			if len(res.Windows) == 0 {
				t.Fatal("no measurement windows")
			}
			for i, w := range res.Windows {
				if w.Cohort == 0 {
					t.Errorf("window %d: empty cohort", i)
				}
				if w.MeasuredTicks == 0 {
					t.Errorf("window %d: zero-length window", i)
				}
				if w.Kind == "switch" && len(w.PrepareS2Times) == 0 {
					t.Errorf("window %d: nobody prepared the new stream", i)
				}
				if w.PlayedSegments == 0 {
					t.Errorf("window %d: no playback recorded", i)
				}
			}
		})
	}
}

// TestScaled rescales flash crowds and clamps out-of-range pins.
func TestScaled(t *testing.T) {
	sc := FlashCrowdJoin() // 300 nodes, crowd of 150
	small := sc.Scaled(100)
	if small.Nodes != 100 {
		t.Fatalf("nodes = %d", small.Nodes)
	}
	for _, ev := range small.Events {
		if ev.Kind == sim.EvFlashCrowd && ev.Count != 50 {
			t.Errorf("crowd not rescaled: %d", ev.Count)
		}
	}
	chain := SerialHandoffChain().Scaled(100) // pins 41, 97, 155
	if chain.Events[2].To != -1 {
		t.Errorf("out-of-range pin not dropped: %d", chain.Events[2].To)
	}
	if chain.Events[0].To != 41 {
		t.Errorf("in-range pin lost: %d", chain.Events[0].To)
	}
	// The original is untouched.
	if sc.Events[0].Count != 150 {
		t.Error("Scaled mutated its receiver")
	}
}

func mustRun(t *testing.T, cfg sim.Config) *sim.Result {
	t.Helper()
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}
