package scenario

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gossipstream/internal/overlay"
	"gossipstream/internal/sim"
)

// Parse reads the plain-text scenario format. The format is line
// oriented; '#' starts a comment, blank lines are ignored. Header
// directives set the base environment, `at` lines schedule events:
//
//	scenario serial-handoff-chain
//	desc The floor passes along four speakers.
//	nodes 400
//	m 5
//	seed 7
//	first 3              # pin the initial source (default: auto-pick)
//	spread 25            # arrival stagger, ticks
//	horizon 120          # default per-switch measurement horizon
//	duration 0           # 0 = derive from the timeline
//	churn 0.02 0.02      # baseline leave/join fractions (join defaults to leave)
//	perlink              # per-link capacity model (default: shared outbound)
//	qs 50
//	net loss=0.05 jitter=200 ping=80 subtick   # message-level transport model
//
// The net directive enables the netmodel transport: per-link delivery
// delay derived from the synthesized trace's ping times, per-message
// loss (`loss`, baseline probability), uniform jitter (`jitter`,
// milliseconds) and the default ping of nodes without a trace record
// (`ping`, milliseconds; churn joiners and crowd members). The bare
// `subtick` flag selects the sub-tick event-driven transport (continuous
// arrival timestamps, true sub-period delay metrics); without it the
// file keeps the original tick-quantized transport. All options are
// optional — a bare `net` turns on the transport with trace delays
// only. The latency/lossburst/partition/heal events require it.
//
//	at 40  switch to=41            # planned handoff to a pinned speaker
//	at 110 switch                  # planned handoff, random successor
//	at 150 switch failure          # the speaker crashes; random successor
//	at 60  switch to=3 horizon=90  # per-window horizon override
//	at 35  crowd count=150 backlog=200
//	at 45  churnburst for=30 leave=0.10 join=0.05
//	at 85  bandwidth factor=0.7
//	at 160 measure for=25
//	at 55  latency factor=20       # latency storm (propagation ×20; 1 restores)
//	at 65  lossburst for=30 p=0.25 # loss probability override for 30 ticks
//	at 75  partition frac=0.5      # sever the overlay in two (seeded split)
//	at 76  partition frac=0.5 by=ping  # latency-clustered sides (trace ping)
//	at 95  heal                    # end the partition
//	at 130 demote node=3           # ex-source 3 back to listener (omit node:
//	                               # the most recently retired source)
//
// Parse and Write round-trip: Write emits the canonical form of exactly
// this grammar. docs/SCENARIOS.md is the full reference; a drift test
// keeps it and this parser in lockstep.
func Parse(r io.Reader) (*Scenario, error) {
	sc := &Scenario{}
	scan := bufio.NewScanner(r)
	lineNo := 0
	for scan.Scan() {
		lineNo++
		line := scan.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := sc.parseLine(fields); err != nil {
			return nil, fmt.Errorf("scenario: line %d: %w", lineNo, err)
		}
	}
	if err := scan.Err(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

func (sc *Scenario) parseLine(fields []string) error {
	key, args := fields[0], fields[1:]
	needOne := func() (string, error) {
		if len(args) != 1 {
			return "", fmt.Errorf("%s takes one argument, got %d", key, len(args))
		}
		return args[0], nil
	}
	intArg := func() (int, error) {
		a, err := needOne()
		if err != nil {
			return 0, err
		}
		v, err := strconv.Atoi(a)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", key, err)
		}
		return v, nil
	}
	var err error
	switch key {
	case "scenario":
		sc.Name, err = needOne()
		return err
	case "desc":
		sc.Desc = strings.Join(args, " ")
		return nil
	case "nodes":
		sc.Nodes, err = intArg()
		return err
	case "m":
		sc.M, err = intArg()
		return err
	case "seed":
		a, err := needOne()
		if err != nil {
			return err
		}
		sc.Seed, err = strconv.ParseInt(a, 10, 64)
		return err
	case "first":
		v, err := intArg()
		sc.First = overlay.NodeID(v)
		return err
	case "spread":
		sc.Spread, err = intArg()
		return err
	case "horizon":
		sc.Horizon, err = intArg()
		return err
	case "duration":
		sc.Duration, err = intArg()
		return err
	case "qs":
		sc.Qs, err = intArg()
		return err
	case "perlink":
		if len(args) != 0 {
			return fmt.Errorf("perlink takes no arguments")
		}
		sc.PerLink = true
		return nil
	case "churn":
		if len(args) < 1 || len(args) > 2 {
			return fmt.Errorf("churn takes 1 or 2 fractions")
		}
		if sc.ChurnLeave, err = strconv.ParseFloat(args[0], 64); err != nil {
			return err
		}
		sc.ChurnJoin = sc.ChurnLeave
		if len(args) == 2 {
			sc.ChurnJoin, err = strconv.ParseFloat(args[1], 64)
		}
		return err
	case "net":
		return sc.parseNet(args)
	case "at":
		return sc.parseEvent(args)
	}
	return fmt.Errorf("unknown directive %q", key)
}

// parseNet handles the net directive's k=v options and bare flags.
func (sc *Scenario) parseNet(args []string) error {
	sc.Net = true
	for _, a := range args {
		k, v, found := strings.Cut(a, "=")
		var err error
		switch k {
		case "loss":
			sc.NetLoss, err = strconv.ParseFloat(v, 64)
		case "jitter":
			sc.NetJitterMS, err = strconv.ParseFloat(v, 64)
		case "ping":
			sc.NetPingMS, err = strconv.Atoi(v)
		case "subtick":
			if found {
				return fmt.Errorf("net: subtick is a bare flag, got %q", a)
			}
			sc.NetSubtick = true
			continue
		default:
			return fmt.Errorf("net: unknown option %q", k)
		}
		if !found {
			return fmt.Errorf("net: want key=value, got %q", a)
		}
		if err != nil {
			return fmt.Errorf("net: %w", err)
		}
	}
	return nil
}

func (sc *Scenario) parseEvent(args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("at takes a tick and a verb")
	}
	tick, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("at: bad tick %q", args[0])
	}
	verb := args[1]
	// Parse k=v options and bare flags.
	opts := map[string]string{}
	for _, a := range args[2:] {
		k, v, found := strings.Cut(a, "=")
		if !found {
			v = "" // bare flag (failure)
		}
		if _, dup := opts[k]; dup {
			return fmt.Errorf("%s: duplicate option %q", verb, k)
		}
		opts[k] = v
	}
	take := func(k string) (string, bool) {
		v, ok := opts[k]
		delete(opts, k)
		return v, ok
	}
	takeInt := func(k string, def int) (int, error) {
		v, ok := take(k)
		if !ok {
			return def, nil
		}
		return strconv.Atoi(v)
	}
	takeFloat := func(k string, def float64) (float64, error) {
		v, ok := take(k)
		if !ok {
			return def, nil
		}
		return strconv.ParseFloat(v, 64)
	}

	var ev sim.Event
	switch verb {
	case "switch":
		to, err := takeInt("to", -1)
		if err != nil {
			return err
		}
		horizon, err := takeInt("horizon", 0)
		if err != nil {
			return err
		}
		_, failure := take("failure")
		if to < -1 {
			// Every negative pin means "pick at random"; canonicalize to -1
			// so Write (which omits the default) round-trips the event.
			to = -1
		}
		ev = sim.SwitchAt(tick, overlay.NodeID(to))
		ev.Failure = failure
		ev.Horizon = horizon
	case "crowd":
		count, err := takeInt("count", 0)
		if err != nil {
			return err
		}
		backlog, err := takeInt("backlog", 0)
		if err != nil {
			return err
		}
		ev = sim.FlashCrowdAt(tick, count, backlog)
	case "churnburst":
		ticks, err := takeInt("for", 0)
		if err != nil {
			return err
		}
		leave, err := takeFloat("leave", 0)
		if err != nil {
			return err
		}
		join, err := takeFloat("join", leave)
		if err != nil {
			return err
		}
		ev = sim.ChurnBurstAt(tick, ticks, leave, join)
	case "bandwidth":
		factor, err := takeFloat("factor", 0)
		if err != nil {
			return err
		}
		ev = sim.BandwidthShiftAt(tick, factor)
	case "measure":
		ticks, err := takeInt("for", 0)
		if err != nil {
			return err
		}
		ev = sim.MeasureAt(tick, ticks)
	case "latency":
		factor, err := takeFloat("factor", 0)
		if err != nil {
			return err
		}
		ev = sim.LatencyShiftAt(tick, factor)
	case "lossburst":
		ticks, err := takeInt("for", 0)
		if err != nil {
			return err
		}
		prob, err := takeFloat("p", 0)
		if err != nil {
			return err
		}
		ev = sim.LossBurstAt(tick, ticks, prob)
	case "partition":
		frac, err := takeFloat("frac", 0)
		if err != nil {
			return err
		}
		by, hasBy := take("by")
		switch {
		case !hasBy:
			ev = sim.PartitionAt(tick, frac)
		case by == "ping":
			ev = sim.PartitionByPingAt(tick, frac)
		default:
			return fmt.Errorf("partition: unknown split %q (want by=ping)", by)
		}
	case "heal":
		ev = sim.HealAt(tick)
	case "demote":
		node, err := takeInt("node", -1)
		if err != nil {
			return err
		}
		if node < -1 {
			// Same canonicalization as switch pins: any negative means "the
			// last retired speaker", which Write spells by omission.
			node = -1
		}
		ev = sim.DemoteAt(tick, overlay.NodeID(node))
	default:
		return fmt.Errorf("unknown event verb %q", verb)
	}
	for k := range opts {
		return fmt.Errorf("%s: unknown option %q", verb, k)
	}
	sc.Events = append(sc.Events, ev)
	return nil
}

// Write emits the scenario in canonical text form; Parse reads it back
// to an identical Scenario (the round-trip regression in format_test.go
// is the format's compatibility contract).
func (sc *Scenario) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "scenario %s\n", sc.Name)
	if sc.Desc != "" {
		fmt.Fprintf(bw, "desc %s\n", sc.Desc)
	}
	fmt.Fprintf(bw, "nodes %d\n", sc.Nodes)
	if sc.M != 0 {
		fmt.Fprintf(bw, "m %d\n", sc.M)
	}
	fmt.Fprintf(bw, "seed %d\n", sc.Seed)
	if sc.First != 0 {
		fmt.Fprintf(bw, "first %d\n", sc.First)
	}
	if sc.Spread != 0 {
		fmt.Fprintf(bw, "spread %d\n", sc.Spread)
	}
	if sc.Horizon != 0 {
		fmt.Fprintf(bw, "horizon %d\n", sc.Horizon)
	}
	if sc.Duration != 0 {
		fmt.Fprintf(bw, "duration %d\n", sc.Duration)
	}
	if sc.ChurnLeave != 0 || sc.ChurnJoin != 0 {
		fmt.Fprintf(bw, "churn %s %s\n", ftoa(sc.ChurnLeave), ftoa(sc.ChurnJoin))
	}
	if sc.PerLink {
		fmt.Fprintln(bw, "perlink")
	}
	if sc.Qs != 0 {
		fmt.Fprintf(bw, "qs %d\n", sc.Qs)
	}
	if sc.Net {
		fmt.Fprint(bw, "net")
		if sc.NetLoss != 0 {
			fmt.Fprintf(bw, " loss=%s", ftoa(sc.NetLoss))
		}
		if sc.NetJitterMS != 0 {
			fmt.Fprintf(bw, " jitter=%s", ftoa(sc.NetJitterMS))
		}
		if sc.NetPingMS != 0 {
			fmt.Fprintf(bw, " ping=%d", sc.NetPingMS)
		}
		if sc.NetSubtick {
			fmt.Fprint(bw, " subtick")
		}
		fmt.Fprintln(bw)
	}
	if len(sc.Events) > 0 {
		fmt.Fprintln(bw)
	}
	for _, ev := range sc.Events {
		switch ev.Kind {
		case sim.EvSwitchSource:
			fmt.Fprintf(bw, "at %d switch", ev.Tick)
			if ev.To >= 0 {
				fmt.Fprintf(bw, " to=%d", ev.To)
			}
			if ev.Failure {
				fmt.Fprint(bw, " failure")
			}
			if ev.Horizon != 0 {
				fmt.Fprintf(bw, " horizon=%d", ev.Horizon)
			}
			fmt.Fprintln(bw)
		case sim.EvFlashCrowd:
			fmt.Fprintf(bw, "at %d crowd count=%d", ev.Tick, ev.Count)
			if ev.Backlog != 0 {
				fmt.Fprintf(bw, " backlog=%d", ev.Backlog)
			}
			fmt.Fprintln(bw)
		case sim.EvChurnBurst:
			fmt.Fprintf(bw, "at %d churnburst for=%d leave=%s join=%s\n",
				ev.Tick, ev.Ticks, ftoa(ev.Leave), ftoa(ev.Join))
		case sim.EvBandwidthShift:
			fmt.Fprintf(bw, "at %d bandwidth factor=%s\n", ev.Tick, ftoa(ev.Factor))
		case sim.EvMeasureWindow:
			fmt.Fprintf(bw, "at %d measure for=%d\n", ev.Tick, ev.Ticks)
		case sim.EvLatencyShift:
			fmt.Fprintf(bw, "at %d latency factor=%s\n", ev.Tick, ftoa(ev.Factor))
		case sim.EvLossBurst:
			fmt.Fprintf(bw, "at %d lossburst for=%d p=%s\n", ev.Tick, ev.Ticks, ftoa(ev.Prob))
		case sim.EvPartition:
			fmt.Fprintf(bw, "at %d partition frac=%s", ev.Tick, ftoa(ev.Frac))
			if ev.ByPing {
				fmt.Fprint(bw, " by=ping")
			}
			fmt.Fprintln(bw)
		case sim.EvHeal:
			fmt.Fprintf(bw, "at %d heal\n", ev.Tick)
		case sim.EvDemoteSource:
			fmt.Fprintf(bw, "at %d demote", ev.Tick)
			if ev.To >= 0 {
				fmt.Fprintf(bw, " node=%d", ev.To)
			}
			fmt.Fprintln(bw)
		default:
			return fmt.Errorf("scenario: cannot serialize event kind %v", ev.Kind)
		}
	}
	return bw.Flush()
}

// ftoa formats a float so ParseFloat reads back the identical value.
func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
