package scenario

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"gossipstream/internal/sim"
)

// genText renders a scenario to its canonical text.
func genText(t *testing.T, sc *Scenario) string {
	t.Helper()
	var buf bytes.Buffer
	if err := sc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestGenerateDeterministic pins the generator's own contract: the same
// options produce byte-identical text, and the seed actually matters.
func TestGenerateDeterministic(t *testing.T) {
	a := genText(t, Generate(GenOptions{Seed: 42}))
	b := genText(t, Generate(GenOptions{Seed: 42}))
	if a != b {
		t.Fatalf("seed 42 generated two different scenarios:\n%s\nvs\n%s", a, b)
	}
	if c := genText(t, Generate(GenOptions{Seed: 43})); c == a {
		t.Fatal("seeds 42 and 43 generated the same scenario")
	}
	if sc := Generate(GenOptions{Seed: 7, Nodes: 80, Events: 6}); sc.Nodes != 80 || len(sc.Events) != 6 {
		t.Fatalf("overrides ignored: nodes=%d events=%d", sc.Nodes, len(sc.Events))
	}
	if sc := Generate(GenOptions{Seed: -3}); sc.Name != "gen-n3" {
		t.Fatalf("negative seed named %q", sc.Name)
	}
}

// genCount returns how many seeds the property driver replays: 100 by
// default (the acceptance bar), 10 under -short, or the
// GEN_SCENARIO_COUNT override (CI uses a mid-size run under -race).
func genCount() int {
	if v := os.Getenv("GEN_SCENARIO_COUNT"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	if testing.Short() {
		return 10
	}
	return 100
}

// TestGeneratedScenarioDeterminism is the property-test driver of the
// determinism contract: every generated scenario round-trips through the
// text format, replays bit-identically at 1 and 8 workers, and its
// result passes the run-invariant checker.
func TestGeneratedScenarioDeterminism(t *testing.T) {
	for seed := int64(1); seed <= int64(genCount()); seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			sc := Generate(GenOptions{Seed: seed})
			text := genText(t, sc)
			parsed, err := Parse(strings.NewReader(text))
			if err != nil {
				t.Fatalf("canonical text does not parse: %v\n%s", err, text)
			}
			if !reflect.DeepEqual(parsed, sc) {
				t.Fatalf("round-trip drift:\n%+v\nvs\n%+v\n%s", parsed, sc, text)
			}
			run := func(workers int) *sim.Result {
				cfg, err := sc.Config(sim.Fast)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Workers = workers
				res := mustRun(t, cfg)
				return res
			}
			r1, r8 := run(1), run(8)
			if !reflect.DeepEqual(r1, r8) {
				t.Fatalf("workers 1 vs 8 diverged:\n%+v\nvs\n%+v\n%s", r1, r8, text)
			}
			cfg, err := sc.Config(sim.Fast)
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.CheckInvariants(cfg, r1); err != nil {
				t.Fatalf("run invariants violated: %v\n%s", err, text)
			}
		})
	}
}

// TestGeneratorCoverage asserts the 100-seed family actually spans the
// event alphabet and the transport configuration space — a generator
// that silently stopped emitting some verb would hollow out the property
// test without failing it.
func TestGeneratorCoverage(t *testing.T) {
	kinds := map[sim.EventKind]int{}
	var planned, failed, byPing, uniform, subtick, quantized, churny int
	for seed := int64(1); seed <= 100; seed++ {
		sc := Generate(GenOptions{Seed: seed})
		if sc.Net {
			if sc.NetSubtick {
				subtick++
			} else {
				quantized++
			}
		}
		if sc.ChurnLeave > 0 || sc.ChurnJoin > 0 {
			churny++
		}
		for _, ev := range sc.Events {
			kinds[ev.Kind]++
			switch ev.Kind {
			case sim.EvSwitchSource:
				if ev.Failure {
					failed++
				} else {
					planned++
				}
			case sim.EvPartition:
				if ev.ByPing {
					byPing++
				} else {
					uniform++
				}
			}
		}
	}
	for _, k := range []sim.EventKind{
		sim.EvSwitchSource, sim.EvMeasureWindow, sim.EvChurnBurst,
		sim.EvFlashCrowd, sim.EvBandwidthShift, sim.EvLatencyShift,
		sim.EvLossBurst, sim.EvPartition, sim.EvHeal, sim.EvDemoteSource,
	} {
		if kinds[k] == 0 {
			t.Errorf("event kind %v never generated in 100 seeds", k)
		}
	}
	for name, n := range map[string]int{
		"planned switch": planned, "failure switch": failed,
		"uniform partition": uniform, "by=ping partition": byPing,
		"subtick net": subtick, "quantized net": quantized,
		"churn": churny,
	} {
		if n == 0 {
			t.Errorf("%s never generated in 100 seeds", name)
		}
	}
}
