// Package scenario is the declarative layer over the simulator's event
// engine: a Scenario names a topology, a base environment (including
// the netmodel transport), and a tick-scheduled event timeline, and
// compiles into a sim.Config whose Script drives the run. The paper's
// entire evaluation shape — warm up, one switch, one measurement
// window — is just one scenario (paper-single-switch); everything else
// the north star asks for is a different file, not a different main.go.
//
// Scenarios are deterministic (bit-identical at any sim worker count)
// and round-trip through a plain-text file format (Parse/Write). The
// complete grammar reference is docs/SCENARIOS.md, kept in lockstep
// with the parser by the drift test in docs_test.go; a bundled library
// of named scenarios ships in library.go.
package scenario
