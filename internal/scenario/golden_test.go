package scenario

import (
	"fmt"
	"testing"

	"gossipstream/internal/sim"
)

// TestNetNilMatchesPreNetmodelGolden pins the netmodel equivalence
// acceptance criterion: a run with Config.Net == nil is bit-identical to
// the engine as it was before the transport subsystem existed. The
// constants below were captured from the pre-netmodel HEAD (PR 2) with
// exactly these configurations; any drift in the nil path — an extra
// RNG draw, a reordered delivery, a changed phase — shows up here as a
// golden mismatch.
func TestNetNilMatchesPreNetmodelGolden(t *testing.T) {
	t.Run("serial-handoff-chain-160", func(t *testing.T) {
		cfg, err := SerialHandoffChain().Scaled(160).Config(sim.Fast)
		if err != nil {
			t.Fatal(err)
		}
		cfg.TrackRatios = true
		res := mustRun(t, cfg)
		want := []string{
			"kind=switch tick=40 old=2 new=41 cohort=158 ctrl=18412760 data=1223884800 played=40557 stalled=7358 finish=25.708861 prepare=19.594937 start=26.923567 nf=0 np=0 measured=31",
			"kind=switch tick=160 old=41 new=97 cohort=157 ctrl=20194640 data=1429708800 played=52217 stalled=414 finish=32.471338 prepare=21.598726 start=33.441558 nf=0 np=0 measured=34",
			"kind=switch tick=280 old=97 new=155 cohort=156 ctrl=29698000 data=2133012480 played=76736 stalled=597 finish=48.448718 prepare=24.980769 start=49.307692 nf=0 np=0 measured=50",
		}
		if len(res.Windows) != len(want) {
			t.Fatalf("windows = %d, want %d", len(res.Windows), len(want))
		}
		for i, w := range res.Windows {
			if got := goldenLine(w); got != want[i] {
				t.Errorf("window %d drifted from the pre-netmodel engine:\n got %s\nwant %s", i, got, want[i])
			}
		}
	})
	t.Run("paper-single-switch-150-normal", func(t *testing.T) {
		cfg, err := PaperSingleSwitch().Scaled(150).Config(sim.Normal)
		if err != nil {
			t.Fatal(err)
		}
		res := mustRun(t, cfg)
		w := &res.SwitchMetrics
		got := fmt.Sprintf("cohort=%d ctrl=%d data=%d finish=%.6f prepare=%.6f nf=%d np=%d measured=%d",
			w.Cohort, w.ControlBits, w.DataBits, w.AvgFinishS1(), w.AvgPrepareS2(),
			w.UnfinishedS1, w.UnpreparedS2, w.MeasuredTicks)
		want := "cohort=148 ctrl=16516800 data=1203087360 finish=27.527027 prepare=21.256757 nf=0 np=0 measured=30"
		if got != want {
			t.Errorf("single switch drifted from the pre-netmodel engine:\n got %s\nwant %s", got, want)
		}
	})
}

func goldenLine(w *sim.SwitchMetrics) string {
	return fmt.Sprintf("kind=%s tick=%d old=%d new=%d cohort=%d ctrl=%d data=%d played=%d stalled=%d finish=%.6f prepare=%.6f start=%.6f nf=%d np=%d measured=%d",
		w.Kind, w.Tick, w.OldSource, w.NewSource, w.Cohort, w.ControlBits, w.DataBits,
		w.PlayedSegments, w.StalledSlots, w.AvgFinishS1(), w.AvgPrepareS2(), w.AvgStartS2(),
		w.UnfinishedS1, w.UnpreparedS2, w.MeasuredTicks)
}
