package scenario

import (
	"fmt"
	"testing"

	"gossipstream/internal/sim"
)

// TestNetNilMatchesPreNetmodelGolden pins the netmodel equivalence
// acceptance criterion: a run with Config.Net == nil is bit-identical to
// the engine as it was before the transport subsystem existed. The
// constants below were captured from the pre-netmodel HEAD (PR 2) with
// exactly these configurations; any drift in the nil path — an extra
// RNG draw, a reordered delivery, a changed phase — shows up here as a
// golden mismatch.
func TestNetNilMatchesPreNetmodelGolden(t *testing.T) {
	t.Run("serial-handoff-chain-160", func(t *testing.T) {
		cfg, err := SerialHandoffChain().Scaled(160).Config(sim.Fast)
		if err != nil {
			t.Fatal(err)
		}
		cfg.TrackRatios = true
		res := mustRun(t, cfg)
		want := []string{
			"kind=switch tick=40 old=2 new=41 cohort=158 ctrl=18412760 data=1223884800 played=40557 stalled=7358 finish=25.708861 prepare=19.594937 start=26.923567 nf=0 np=0 measured=31",
			"kind=switch tick=160 old=41 new=97 cohort=157 ctrl=20194640 data=1429708800 played=52217 stalled=414 finish=32.471338 prepare=21.598726 start=33.441558 nf=0 np=0 measured=34",
			"kind=switch tick=280 old=97 new=155 cohort=156 ctrl=29698000 data=2133012480 played=76736 stalled=597 finish=48.448718 prepare=24.980769 start=49.307692 nf=0 np=0 measured=50",
		}
		if len(res.Windows) != len(want) {
			t.Fatalf("windows = %d, want %d", len(res.Windows), len(want))
		}
		for i, w := range res.Windows {
			if got := goldenLine(w); got != want[i] {
				t.Errorf("window %d drifted from the pre-netmodel engine:\n got %s\nwant %s", i, got, want[i])
			}
		}
	})
	t.Run("paper-single-switch-150-normal", func(t *testing.T) {
		cfg, err := PaperSingleSwitch().Scaled(150).Config(sim.Normal)
		if err != nil {
			t.Fatal(err)
		}
		res := mustRun(t, cfg)
		w := &res.SwitchMetrics
		got := fmt.Sprintf("cohort=%d ctrl=%d data=%d finish=%.6f prepare=%.6f nf=%d np=%d measured=%d",
			w.Cohort, w.ControlBits, w.DataBits, w.AvgFinishS1(), w.AvgPrepareS2(),
			w.UnfinishedS1, w.UnpreparedS2, w.MeasuredTicks)
		want := "cohort=148 ctrl=16516800 data=1203087360 finish=27.527027 prepare=21.256757 nf=0 np=0 measured=30"
		if got != want {
			t.Errorf("single switch drifted from the pre-netmodel engine:\n got %s\nwant %s", got, want)
		}
	})
}

// TestQuantizeTicksMatchesPR3Golden pins the sub-tick migration: the
// QuantizeTicks compatibility mode must reproduce the tick-floored
// transport exactly as it behaved before the sub-tick transit landed.
// Each case is the PR 3 definition of a bundled net scenario — today's
// library runs them with `subtick` (and transatlantic-split with a
// ping-clustered partition), so the shapes are pinned inline here with
// those knobs off; the golden values were captured at the pre-subtick
// HEAD. Any drift in the quantized path — a reordered pop, an extra RNG
// draw, a changed delay floor — shows up as a mismatch.
func TestQuantizeTicksMatchesPR3Golden(t *testing.T) {
	cases := []struct {
		sc   *Scenario
		want []string
	}{
		{
			sc: &Scenario{
				Name: "lossy-uplink", Nodes: 300, M: 5, Seed: 19, Spread: 25, Horizon: 220,
				Net: true, NetLoss: 0.05, NetJitterMS: 150,
				Events: []sim.Event{
					sim.LossBurstAt(45, 40, 0.25),
					sim.SwitchAt(55, -1),
				},
			},
			want: []string{
				"kind=switch tick=55 old=5 new=3 cohort=148 ctrl=25110000 data=1861847040 played=46161 stalled=19455 finish=41.141892 prepare=29.594595 start=42.340136 nf=0 np=0 measured=45 netdel=48590 netlost=12017 rereq=12308 delay=48590.000000",
			},
		},
		{
			sc: &Scenario{
				Name: "transatlantic-split", Nodes: 300, M: 5, Seed: 23, Spread: 25, Horizon: 90,
				Net: true, NetJitterMS: 1500,
				Events: []sim.Event{
					sim.PartitionAt(45, 0.5),
					sim.SwitchAt(50, -1),
					sim.HealAt(80),
					sim.MeasureAt(145, 60),
				},
			},
			want: []string{
				"kind=switch tick=50 old=5 new=124 cohort=148 ctrl=26111920 data=2006200320 played=61932 stalled=28667 finish=40.594595 prepare=33.114865 start=41.748299 nf=0 np=0 measured=62 netdel=65308 netlost=0 rereq=43 delay=90797.000000",
				"kind=measure tick=145 old=0 new=0 cohort=148 ctrl=33405600 data=2795274240 played=87735 stalled=1065 finish=NaN prepare=NaN start=NaN nf=0 np=0 measured=60 netdel=91095 netlost=0 rereq=0 delay=127053.000000",
			},
		},
		{
			sc: &Scenario{
				Name: "latency-storm", Nodes: 300, M: 5, Seed: 29, Spread: 25, Horizon: 250,
				Net: true, NetJitterMS: 300,
				Events: []sim.Event{
					sim.LatencyShiftAt(40, 20),
					sim.SwitchAt(55, -1),
					sim.LatencyShiftAt(110, 1),
				},
			},
			want: []string{
				"kind=switch tick=55 old=0 new=35 cohort=148 ctrl=22572960 data=1235804160 played=47025 stalled=12474 finish=33.195946 prepare=21.358108 start=34.537415 nf=0 np=0 measured=41 netdel=40820 netlost=0 rereq=0 delay=90977.000000",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.sc.Name, func(t *testing.T) {
			if tc.sc.NetSubtick {
				t.Fatal("golden scenarios must run the quantized transport")
			}
			cfg, err := tc.sc.Scaled(150).Config(sim.Fast)
			if err != nil {
				t.Fatal(err)
			}
			res := mustRun(t, cfg)
			if len(res.Windows) != len(tc.want) {
				t.Fatalf("windows = %d, want %d", len(res.Windows), len(tc.want))
			}
			for i, w := range res.Windows {
				if got := goldenNetLine(w); got != tc.want[i] {
					t.Errorf("window %d drifted from the PR 3 tick-floored transport:\n got %s\nwant %s", i, got, tc.want[i])
				}
			}
		})
	}
}

func goldenNetLine(w *sim.SwitchMetrics) string {
	return fmt.Sprintf("%s netdel=%d netlost=%d rereq=%d delay=%.6f",
		goldenLine(w), w.NetDelivered, w.NetLost, w.NetReRequests, w.NetDelaySeconds)
}

func goldenLine(w *sim.SwitchMetrics) string {
	return fmt.Sprintf("kind=%s tick=%d old=%d new=%d cohort=%d ctrl=%d data=%d played=%d stalled=%d finish=%.6f prepare=%.6f start=%.6f nf=%d np=%d measured=%d",
		w.Kind, w.Tick, w.OldSource, w.NewSource, w.Cohort, w.ControlBits, w.DataBits,
		w.PlayedSegments, w.StalledSlots, w.AvgFinishS1(), w.AvgPrepareS2(), w.AvgStartS2(),
		w.UnfinishedS1, w.UnpreparedS2, w.MeasuredTicks)
}
