package core

import (
	"math"
	"testing"

	"gossipstream/internal/buffer"
	"gossipstream/internal/model"
	"gossipstream/internal/segment"
)

// mapView is a deterministic View for tests: explicit holdings with
// explicit FIFO positions.
type mapView struct {
	capacity int
	pos      map[segment.ID]int // position from tail; presence = held
}

func newMapView(capacity int) *mapView {
	return &mapView{capacity: capacity, pos: map[segment.ID]int{}}
}

func (v *mapView) add(id segment.ID, pos int) *mapView { v.pos[id] = pos; return v }

func (v *mapView) Has(id segment.ID) bool             { _, ok := v.pos[id]; return ok }
func (v *mapView) PositionFromTail(id segment.ID) int { return v.pos[id] }
func (v *mapView) Cap() int                           { return v.capacity }

func basicEnv() *Env {
	return &Env{
		Tau:      1.0,
		P:        10,
		Q:        10,
		Inbound:  15,
		Playhead: 100,
	}
}

func TestUrgencyEquation7(t *testing.T) {
	env := basicEnv()
	env.Suppliers = []Supplier{{ID: 1, Rate: 5, View: newMapView(600).add(150, 10)}}
	env.NeedOld = []segment.ID{150}
	cands := BuildCandidates(env, ScoreOptions{}, nil)
	if len(cands) != 1 {
		t.Fatalf("got %d candidates", len(cands))
	}
	// t_i = (150-100)/10 - 1/5 = 4.8; urgency = 1/4.8.
	want := 1 / 4.8
	if math.Abs(cands[0].Urgency-want) > 1e-12 {
		t.Errorf("urgency = %v, want %v", cands[0].Urgency, want)
	}
}

func TestUrgencySaturation(t *testing.T) {
	env := basicEnv()
	env.Suppliers = []Supplier{{ID: 1, Rate: 5, View: newMapView(600).add(100, 10).add(101, 10)}}
	// Segment at the playhead: slack = 0/10 - 1/5 < 0 → saturated.
	env.NeedOld = []segment.ID{100, 101}
	cands := BuildCandidates(env, ScoreOptions{}, nil)
	if cands[0].Urgency != UrgencySaturation {
		t.Errorf("deadline-due urgency = %v, want saturation", cands[0].Urgency)
	}
	// One segment ahead: slack = 0.1 - 0.2 < 0 → still saturated.
	if cands[1].Urgency != UrgencySaturation {
		t.Errorf("near-deadline urgency = %v, want saturation", cands[1].Urgency)
	}
}

func TestMaxRateIsEquation6(t *testing.T) {
	env := basicEnv()
	env.Suppliers = []Supplier{
		{ID: 1, Rate: 3, View: newMapView(600).add(150, 10)},
		{ID: 2, Rate: 9, View: newMapView(600).add(150, 10)},
		{ID: 3, Rate: 20, View: newMapView(600)}, // does not hold it
	}
	env.NeedOld = []segment.ID{150}
	cands := BuildCandidates(env, ScoreOptions{}, nil)
	if cands[0].MaxRate != 9 {
		t.Errorf("Ri = %v, want max over holders = 9", cands[0].MaxRate)
	}
}

func TestRarityEquation8(t *testing.T) {
	env := basicEnv()
	env.Suppliers = []Supplier{
		{ID: 1, Rate: 5, View: newMapView(600).add(150, 300)},
		{ID: 2, Rate: 5, View: newMapView(600).add(150, 450)},
	}
	env.NeedOld = []segment.ID{150}
	cands := BuildCandidates(env, ScoreOptions{}, nil)
	want := (300.0 / 600.0) * (450.0 / 600.0)
	if math.Abs(cands[0].Rarity-want) > 1e-12 {
		t.Errorf("rarity = %v, want %v", cands[0].Rarity, want)
	}
}

func TestRarityTraditional(t *testing.T) {
	env := basicEnv()
	env.Suppliers = []Supplier{
		{ID: 1, Rate: 5, View: newMapView(600).add(150, 300)},
		{ID: 2, Rate: 5, View: newMapView(600).add(150, 450)},
	}
	env.NeedOld = []segment.ID{150}
	cands := BuildCandidates(env, ScoreOptions{Rarity: RarityTraditional}, nil)
	if cands[0].Rarity != 0.5 { // 1/n_i with n_i = 2
		t.Errorf("traditional rarity = %v, want 0.5", cands[0].Rarity)
	}
}

func TestPriorityEquation9(t *testing.T) {
	env := basicEnv()
	// Far-future segment held near eviction: rarity dominates urgency.
	env.Suppliers = []Supplier{{ID: 1, Rate: 10, View: newMapView(600).add(400, 590)}}
	env.NeedOld = []segment.ID{400}
	cands := BuildCandidates(env, ScoreOptions{}, nil)
	c := cands[0]
	if c.Priority != math.Max(c.Urgency, c.Rarity) {
		t.Errorf("priority = %v, want max(%v, %v)", c.Priority, c.Urgency, c.Rarity)
	}
	if c.Priority != c.Rarity {
		t.Errorf("expected rarity-dominated priority, got urgency %v rarity %v", c.Urgency, c.Rarity)
	}
}

func TestPriorityModes(t *testing.T) {
	env := basicEnv()
	env.Suppliers = []Supplier{{ID: 1, Rate: 10, View: newMapView(600).add(400, 590)}}
	env.NeedOld = []segment.ID{400}
	u := BuildCandidates(env, ScoreOptions{Priority: PriorityUrgencyOnly}, nil)[0]
	r := BuildCandidates(env, ScoreOptions{Priority: PriorityRarityOnly}, nil)[0]
	if u.Priority != u.Urgency {
		t.Error("urgency-only mode ignored")
	}
	if r.Priority != r.Rarity {
		t.Error("rarity-only mode ignored")
	}
}

func TestCandidatesDropUnsupplied(t *testing.T) {
	env := basicEnv()
	env.Suppliers = []Supplier{{ID: 1, Rate: 5, View: newMapView(600).add(150, 10)}}
	env.NeedOld = []segment.ID{150, 151}
	cands := BuildCandidates(env, ScoreOptions{}, nil)
	if len(cands) != 1 || cands[0].ID != 150 {
		t.Fatalf("candidates = %+v, want only 150", cands)
	}
}

func TestBufferSatisfiesView(t *testing.T) {
	var _ View = buffer.New(600)
	var _ View = &buffer.Map{}
}

// fullView holds every segment with a fixed position.
type fullView struct{ capacity, position int }

func (v fullView) Has(segment.ID) bool             { return true }
func (v fullView) PositionFromTail(segment.ID) int { return v.position }
func (v fullView) Cap() int                        { return v.capacity }

func TestGreedyAssignmentSpreadsOverSuppliers(t *testing.T) {
	// Algorithm 1: per-supplier queueing time must spread requests across
	// suppliers rather than pile onto the fastest one.
	env := basicEnv()
	env.Inbound = 12
	env.Suppliers = []Supplier{
		{ID: 1, Rate: 4, View: fullView{600, 300}},
		{ID: 2, Rate: 4, View: fullView{600, 300}},
		{ID: 3, Rate: 4, View: fullView{600, 300}},
	}
	for id := segment.ID(101); id <= 140; id++ {
		env.NeedOld = append(env.NeedOld, id)
	}
	var plan Plan
	fast := &FastSwitch{}
	fast.Plan(env, &plan)
	perSupplier := map[SupplierID]int{}
	for _, r := range plan.Requests {
		perSupplier[r.Supplier]++
		if r.ExpectedAt > env.Tau+1e-9 {
			t.Errorf("request for %v expected at %v > τ", r.Segment, r.ExpectedAt)
		}
	}
	// Each supplier can deliver at most R(j)·τ = 4 segments within τ.
	for id, n := range perSupplier {
		if n > 4 {
			t.Errorf("supplier %d assigned %d > R·τ segments", id, n)
		}
	}
	if len(plan.Requests) != 12 {
		t.Errorf("requests = %d, want inbound budget 12", len(plan.Requests))
	}
}

func TestPlanRespectsInboundBudget(t *testing.T) {
	env := basicEnv()
	env.Inbound = 5
	env.Suppliers = []Supplier{{ID: 1, Rate: 30, View: fullView{600, 300}}}
	for id := segment.ID(101); id <= 160; id++ {
		env.NeedOld = append(env.NeedOld, id)
	}
	var plan Plan
	fast := &FastSwitch{}
	fast.Plan(env, &plan)
	if len(plan.Requests) != 5 {
		t.Errorf("fast requests = %d, want 5", len(plan.Requests))
	}
	normal := &NormalSwitch{}
	normal.Plan(env, &plan)
	if len(plan.Requests) != 5 {
		t.Errorf("normal requests = %d, want 5", len(plan.Requests))
	}
}

func TestNormalStrictPriority(t *testing.T) {
	// Normal: all budget to S1 while S1 supply exists; S2 gets leftovers.
	env := basicEnv()
	env.Inbound = 8
	env.Suppliers = []Supplier{{ID: 1, Rate: 30, View: fullView{600, 300}}}
	env.NeedOld = []segment.ID{101, 102, 103, 104, 105, 106}
	env.NeedNew = []segment.ID{501, 502, 503, 504, 505}
	var plan Plan
	normal := &NormalSwitch{}
	normal.Plan(env, &plan)
	old, new_ := 0, 0
	for i, r := range plan.Requests {
		if r.Stream == StreamOld {
			old++
			if i >= 6 {
				t.Error("S1 request ranked after an S2 request under normal")
			}
		} else {
			new_++
		}
	}
	if old != 6 || new_ != 2 {
		t.Errorf("normal split = (%d, %d), want (6, 2)", old, new_)
	}
	// S1 requests in ascending id (deadline) order.
	for i := 1; i < 6; i++ {
		if plan.Requests[i].Segment < plan.Requests[i-1].Segment {
			t.Error("normal S1 order not ascending")
		}
	}
}

func TestFastSplitFigure2Shape(t *testing.T) {
	// Figure 2's setting: 7-segment budget, 5 S1 + 5 S2 available. The
	// fast algorithm interleaves (taking fewer S1 than normal), the normal
	// algorithm takes all 5 S1 first.
	mkEnv := func() *Env {
		env := basicEnv()
		env.Inbound = 7
		env.Suppliers = []Supplier{
			{ID: 1, Rate: 4, View: fullView{600, 550}},
			{ID: 2, Rate: 4, View: fullView{600, 550}},
		}
		env.NeedOld = []segment.ID{101, 102, 103, 104, 105}
		env.NeedNew = []segment.ID{501, 502, 503, 504, 505}
		return env
	}
	var plan Plan
	fast := &FastSwitch{}
	fast.Plan(mkEnv(), &plan)
	fastOld, fastNew := countStreams(plan.Requests)
	if fastNew == 0 {
		t.Fatal("fast plan took no S2 segments")
	}
	if fastOld+fastNew != 7 {
		t.Fatalf("fast plan size = %d, want 7", fastOld+fastNew)
	}

	normal := &NormalSwitch{}
	normal.Plan(mkEnv(), &plan)
	normOld, normNew := countStreams(plan.Requests)
	if normOld != 5 || normNew != 2 {
		t.Fatalf("normal split = (%d, %d), want (5, 2)", normOld, normNew)
	}
	if fastOld >= normOld {
		t.Errorf("fast takes %d S1 segments, should be fewer than normal's %d", fastOld, normOld)
	}
}

func countStreams(reqs []Request) (old, new_ int) {
	for _, r := range reqs {
		if r.Stream == StreamOld {
			old++
		} else {
			new_++
		}
	}
	return old, new_
}

func TestFastReportsSplitCase(t *testing.T) {
	env := basicEnv()
	env.Suppliers = []Supplier{
		{ID: 1, Rate: 10, View: fullView{600, 300}},
		{ID: 2, Rate: 10, View: fullView{600, 300}},
	}
	for id := segment.ID(101); id <= 150; id++ {
		env.NeedOld = append(env.NeedOld, id)
	}
	for id := segment.ID(501); id <= 550; id++ {
		env.NeedNew = append(env.NeedNew, id)
	}
	var plan Plan
	fast := &FastSwitch{}
	fast.Plan(env, &plan)
	if plan.Split.Case == 0 {
		t.Error("plan did not record the rate-split case")
	}
	if plan.Q1 != 50 || plan.Q2 != 50 {
		t.Errorf("plan backlogs = (%d, %d), want (50, 50)", plan.Q1, plan.Q2)
	}
	if plan.O1 == 0 || plan.O2 == 0 {
		t.Error("schedulable sets empty")
	}
}

func TestFastFollowsOptimalSplitWhenUnconstrained(t *testing.T) {
	// With abundant supply on both streams, the request counts should
	// track the closed-form r1/r2 (up to integer truncation and leftover
	// redistribution).
	env := basicEnv()
	env.Inbound = 15
	env.Suppliers = []Supplier{
		{ID: 1, Rate: 15, View: fullView{600, 300}},
		{ID: 2, Rate: 15, View: fullView{600, 300}},
		{ID: 3, Rate: 15, View: fullView{600, 300}},
	}
	for id := segment.ID(101); id <= 250; id++ {
		env.NeedOld = append(env.NeedOld, id)
	}
	for id := segment.ID(501); id <= 550; id++ {
		env.NeedNew = append(env.NeedNew, id)
	}
	var plan Plan
	fast := &FastSwitch{}
	fast.Plan(env, &plan)
	old, new_ := countStreams(plan.Requests)

	params := model.Params{Q: 10, Q1: 150, Q2: 50, P: 10, I: 15}
	r1, r2 := params.OptimalSplit()
	if math.Abs(float64(old)-r1) > 2 {
		t.Errorf("S1 requests = %d, optimal r1 = %v", old, r1)
	}
	if math.Abs(float64(new_)-r2) > 2 {
		t.Errorf("S2 requests = %d, optimal r2 = %v", new_, r2)
	}
}

func TestDisableSplitAblation(t *testing.T) {
	env := basicEnv()
	env.Inbound = 6
	env.Suppliers = []Supplier{{ID: 1, Rate: 30, View: fullView{600, 550}}}
	env.NeedOld = []segment.ID{101, 102, 103}
	env.NeedNew = []segment.ID{501, 502, 503}
	var plan Plan
	fast := &FastSwitch{DisableSplit: true}
	fast.Plan(env, &plan)
	if len(plan.Requests) != 6 {
		t.Errorf("ablated plan size = %d, want 6", len(plan.Requests))
	}
	// Pure priority order: requests must be non-increasing in priority.
	for i := 1; i < len(plan.Requests); i++ {
		if plan.Requests[i].Priority > plan.Requests[i-1].Priority+1e-12 {
			t.Error("ablated plan not in priority order")
		}
	}
}

func TestEmptyEnvironment(t *testing.T) {
	env := basicEnv()
	var plan Plan
	fast := &FastSwitch{}
	fast.Plan(env, &plan)
	if len(plan.Requests) != 0 {
		t.Error("plan from empty environment")
	}
	normal := &NormalSwitch{}
	normal.Plan(env, &plan)
	if len(plan.Requests) != 0 {
		t.Error("normal plan from empty environment")
	}
}

func TestZeroBudget(t *testing.T) {
	env := basicEnv()
	env.Inbound = 0
	env.Suppliers = []Supplier{{ID: 1, Rate: 5, View: fullView{600, 300}}}
	env.NeedOld = []segment.ID{101}
	var plan Plan
	fast := &FastSwitch{}
	fast.Plan(env, &plan)
	if len(plan.Requests) != 0 {
		t.Error("requests despite zero inbound")
	}
}

func TestPlanReuseResets(t *testing.T) {
	env := basicEnv()
	env.Suppliers = []Supplier{{ID: 1, Rate: 5, View: fullView{600, 300}}}
	env.NeedOld = []segment.ID{101, 102}
	var plan Plan
	fast := &FastSwitch{}
	fast.Plan(env, &plan)
	first := len(plan.Requests)
	empty := basicEnv()
	fast.Plan(empty, &plan)
	if len(plan.Requests) != 0 {
		t.Errorf("plan reuse leaked %d of %d requests", len(plan.Requests), first)
	}
}

func TestStreamString(t *testing.T) {
	if StreamOld.String() != "S1" || StreamNew.String() != "S2" {
		t.Error("stream names wrong")
	}
	if Stream(9).String() != "S?9" {
		t.Error("unknown stream formatting wrong")
	}
}

func BenchmarkFastPlan(b *testing.B) {
	env := basicEnv()
	env.Suppliers = []Supplier{
		{ID: 1, Rate: 15, View: fullView{600, 300}},
		{ID: 2, Rate: 15, View: fullView{600, 300}},
		{ID: 3, Rate: 15, View: fullView{600, 300}},
		{ID: 4, Rate: 15, View: fullView{600, 300}},
		{ID: 5, Rate: 15, View: fullView{600, 300}},
	}
	for id := segment.ID(101); id <= 250; id++ {
		env.NeedOld = append(env.NeedOld, id)
	}
	for id := segment.ID(501); id <= 550; id++ {
		env.NeedNew = append(env.NeedNew, id)
	}
	var plan Plan
	fast := &FastSwitch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fast.Plan(env, &plan)
	}
}

func BenchmarkNormalPlan(b *testing.B) {
	env := basicEnv()
	env.Suppliers = []Supplier{
		{ID: 1, Rate: 15, View: fullView{600, 300}},
		{ID: 2, Rate: 15, View: fullView{600, 300}},
	}
	for id := segment.ID(101); id <= 250; id++ {
		env.NeedOld = append(env.NeedOld, id)
	}
	var plan Plan
	normal := &NormalSwitch{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		normal.Plan(env, &plan)
	}
}
