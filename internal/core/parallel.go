// Parallel-source rate allocation — the extension the paper names as
// future work ("Next step we would try to extend our work to the scenario
// where multiple sources work in parallel", Section 6).
//
// With K sources streaming simultaneously, a node must divide its inbound
// rate I across K live streams so that no stream starves. Generalizing the
// serial model of Section 3: stream k has an undelivered backlog Q_k and a
// playback deadline horizon D_k (seconds until the backlog is due); the
// allocation should minimize the worst deadline overrun max_k(Q_k/I_k −
// D_k), subject to per-stream supply caps O_k and ΣI_k ≤ I. The optimum
// equalizes the weighted finish lateness across unconstrained streams —
// computed here by bisection on the common lateness (a water-filling
// argument: demand for rate is monotone in the target lateness).

package core

import (
	"fmt"
	"math"
)

// ParallelDemand describes one concurrently-live stream at a node.
type ParallelDemand struct {
	// Backlog is the number of undelivered segments the node still needs
	// (Q_k).
	Backlog float64
	// Deadline is the time in seconds until that backlog is due (D_k);
	// non-positive means "due now".
	Deadline float64
	// Supply caps the rate the neighborhood can deliver for this stream
	// (O_k); non-positive means unconstrained.
	Supply float64
}

// ParallelSplit allocates the inbound rate across parallel streams. It
// returns one rate per demand, with ΣI_k ≤ inbound and I_k ≤ O_k where a
// supply cap is set. Streams with zero backlog receive zero. The result
// minimizes max_k(Q_k/I_k − D_k) over feasible allocations.
func ParallelSplit(inbound float64, demands []ParallelDemand) ([]float64, error) {
	if inbound <= 0 {
		return nil, fmt.Errorf("core: ParallelSplit inbound %v must be positive", inbound)
	}
	out := make([]float64, len(demands))
	active := 0
	for _, d := range demands {
		if d.Backlog > 0 {
			active++
		}
	}
	if active == 0 {
		return out, nil
	}

	// rateNeeded(k, L) is the rate stream k needs so its lateness equals
	// L: Q_k/I_k − D_k = L ⇒ I_k = Q_k/(D_k + L), clamped to its supply.
	rateNeeded := func(d ParallelDemand, lateness float64) float64 {
		if d.Backlog <= 0 {
			return 0
		}
		den := d.Deadline + lateness
		if den <= 0 {
			// Even infinite rate would miss by more than this lateness.
			return math.Inf(1)
		}
		r := d.Backlog / den
		if d.Supply > 0 && r > d.Supply {
			r = d.Supply
		}
		return r
	}
	total := func(lateness float64) float64 {
		sum := 0.0
		for _, d := range demands {
			sum += rateNeeded(d, lateness)
		}
		return sum
	}

	// Bisection: total demand decreases monotonically in the permitted
	// lateness. Find the smallest lateness whose demand fits in inbound.
	lo, hi := -minDeadline(demands)+1e-9, 1.0
	for total(hi) > inbound && hi < 1e9 {
		hi *= 2
	}
	for iter := 0; iter < 200 && hi-lo > 1e-9*math.Max(1, hi); iter++ {
		mid := (lo + hi) / 2
		if total(mid) > inbound {
			lo = mid
		} else {
			hi = mid
		}
	}
	used := 0.0
	for i, d := range demands {
		r := rateNeeded(d, hi)
		if math.IsInf(r, 1) {
			r = inbound - used // starved corner: give it whatever remains
		}
		out[i] = r
		used += r
	}
	// Distribute float slack to the most supply-limited backlogged stream
	// (work conservation).
	if slack := inbound - used; slack > 1e-12 {
		for i, d := range demands {
			if d.Backlog > 0 && (d.Supply <= 0 || out[i] < d.Supply) {
				grant := slack
				if d.Supply > 0 && out[i]+grant > d.Supply {
					grant = d.Supply - out[i]
				}
				out[i] += grant
				slack -= grant
				if slack <= 1e-12 {
					break
				}
			}
		}
	}
	return out, nil
}

func minDeadline(demands []ParallelDemand) float64 {
	m := math.Inf(1)
	for _, d := range demands {
		if d.Backlog > 0 && d.Deadline < m {
			m = d.Deadline
		}
	}
	if math.IsInf(m, 1) {
		return 0
	}
	return m
}

// ParallelLateness evaluates the worst-case lateness of an allocation:
// max_k(Q_k/I_k − D_k) over backlogged streams.
func ParallelLateness(rates []float64, demands []ParallelDemand) float64 {
	worst := math.Inf(-1)
	for i, d := range demands {
		if d.Backlog <= 0 {
			continue
		}
		var late float64
		if rates[i] <= 0 {
			late = math.Inf(1)
		} else {
			late = d.Backlog/rates[i] - d.Deadline
		}
		if late > worst {
			worst = late
		}
	}
	if math.IsInf(worst, -1) {
		return 0
	}
	return worst
}
