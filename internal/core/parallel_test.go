package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParallelSplitTwoEqualStreams(t *testing.T) {
	demands := []ParallelDemand{
		{Backlog: 50, Deadline: 5},
		{Backlog: 50, Deadline: 5},
	}
	rates, err := ParallelSplit(20, demands)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[0]-rates[1]) > 1e-6 {
		t.Errorf("symmetric demands got asymmetric rates %v", rates)
	}
	if math.Abs(rates[0]+rates[1]-20) > 1e-6 {
		t.Errorf("rates %v do not use the full inbound", rates)
	}
}

func TestParallelSplitSkewedBacklogs(t *testing.T) {
	demands := []ParallelDemand{
		{Backlog: 90, Deadline: 5},
		{Backlog: 10, Deadline: 5},
	}
	rates, err := ParallelSplit(20, demands)
	if err != nil {
		t.Fatal(err)
	}
	if rates[0] <= rates[1] {
		t.Errorf("larger backlog got smaller rate: %v", rates)
	}
	// Equal lateness at the optimum: Q0/I0 − D = Q1/I1 − D.
	l0 := demands[0].Backlog/rates[0] - demands[0].Deadline
	l1 := demands[1].Backlog/rates[1] - demands[1].Deadline
	if math.Abs(l0-l1) > 1e-3 {
		t.Errorf("latenesses not equalized: %v vs %v", l0, l1)
	}
}

func TestParallelSplitRespectsSupply(t *testing.T) {
	demands := []ParallelDemand{
		{Backlog: 100, Deadline: 2, Supply: 3},
		{Backlog: 10, Deadline: 10},
	}
	rates, err := ParallelSplit(20, demands)
	if err != nil {
		t.Fatal(err)
	}
	if rates[0] > 3+1e-9 {
		t.Errorf("supply cap violated: %v", rates[0])
	}
	// The freed capacity goes to the other stream.
	if rates[1] < 1 {
		t.Errorf("uncapped stream starved: %v", rates)
	}
}

func TestParallelSplitZeroBacklog(t *testing.T) {
	demands := []ParallelDemand{
		{Backlog: 0, Deadline: 1},
		{Backlog: 40, Deadline: 4},
	}
	rates, err := ParallelSplit(15, demands)
	if err != nil {
		t.Fatal(err)
	}
	if rates[0] != 0 {
		t.Errorf("idle stream received rate %v", rates[0])
	}
	if rates[1] <= 0 {
		t.Error("backlogged stream starved")
	}
}

func TestParallelSplitRejectsBadInbound(t *testing.T) {
	if _, err := ParallelSplit(0, nil); err == nil {
		t.Error("zero inbound accepted")
	}
	if _, err := ParallelSplit(-3, nil); err == nil {
		t.Error("negative inbound accepted")
	}
}

func TestParallelSplitAllIdle(t *testing.T) {
	rates, err := ParallelSplit(15, []ParallelDemand{{Backlog: 0}, {Backlog: 0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rates {
		if r != 0 {
			t.Errorf("idle streams got %v", rates)
		}
	}
}

func TestParallelSplitOptimality(t *testing.T) {
	// No grid allocation beats the computed split on worst lateness.
	demands := []ParallelDemand{
		{Backlog: 80, Deadline: 3},
		{Backlog: 30, Deadline: 8},
		{Backlog: 50, Deadline: 5},
	}
	const inbound = 18.0
	rates, err := ParallelSplit(inbound, demands)
	if err != nil {
		t.Fatal(err)
	}
	best := ParallelLateness(rates, demands)
	for a := 0.5; a < inbound; a += 0.5 {
		for b := 0.5; a+b < inbound; b += 0.5 {
			c := inbound - a - b
			cand := ParallelLateness([]float64{a, b, c}, demands)
			if cand < best-1e-3 {
				t.Fatalf("grid allocation (%v,%v,%v) lateness %v beats optimum %v",
					a, b, c, cand, best)
			}
		}
	}
}

func TestQuickParallelSplitInvariants(t *testing.T) {
	f := func(q1, q2, q3 uint8, inboundRaw uint8) bool {
		inbound := 1 + float64(inboundRaw%30)
		demands := []ParallelDemand{
			{Backlog: float64(q1 % 100), Deadline: 2},
			{Backlog: float64(q2 % 100), Deadline: 6},
			{Backlog: float64(q3 % 100), Deadline: 10},
		}
		rates, err := ParallelSplit(inbound, demands)
		if err != nil {
			return false
		}
		sum := 0.0
		for i, r := range rates {
			if r < -1e-9 {
				return false
			}
			if demands[i].Backlog == 0 && r != 0 {
				return false
			}
			sum += r
		}
		return sum <= inbound+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
