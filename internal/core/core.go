// Package core implements the paper's primary contribution: the fast
// source switch algorithm (Section 4) and the normal switch baseline it is
// evaluated against (Section 5.1).
//
// Per scheduling period τ every node independently:
//
//  1. builds the candidate set — undelivered segments of the old source S1
//     it still needs for playback, and undelivered segments among the
//     first Qs of the new source S2;
//  2. scores each candidate with urgency (eq. 7), rarity (eq. 8) and
//     priority = max(urgency, rarity) (eq. 9);
//  3. greedily assigns a supplier to every candidate in priority order,
//     tracking per-supplier queueing time (Algorithm 1, step 1) — this
//     yields the schedulable sets O1 and O2;
//  4. splits its inbound rate I into I1/I2 using the closed-form optimum
//     r1 (eq. 4) degraded through the four supply-constrained cases of
//     Section 4, and requests the first I1·τ segments of O1 and the first
//     I2·τ segments of O2 (Algorithm 1, step 2).
//
// The normal switch algorithm shares steps 1 and 3 but ranks every S1
// segment above every S2 segment and allocates inbound to S1 first.
package core

import (
	"fmt"
	"math"
	"slices"

	"gossipstream/internal/model"
	"gossipstream/internal/segment"
)

// Stream tags which source a candidate belongs to.
type Stream int

// The two streams of a switch in progress.
const (
	StreamOld Stream = 1 // S1, the source being played out
	StreamNew Stream = 2 // S2, the source being prepared
)

// String implements fmt.Stringer.
func (s Stream) String() string {
	switch s {
	case StreamOld:
		return "S1"
	case StreamNew:
		return "S2"
	}
	return fmt.Sprintf("S?%d", int(s))
}

// SupplierID names a neighbor in the enclosing system's id space.
type SupplierID int

// View is the availability information a node has about one neighbor,
// obtained from the periodic buffer-map exchange. *buffer.Buffer satisfies
// it (the simulator's zero-staleness shortcut for a same-tick snapshot),
// and so does *buffer.Map (the decoded wire form).
type View interface {
	// Has reports whether the neighbor advertises the segment.
	Has(id segment.ID) bool
	// PositionFromTail is the segment's FIFO position p_ij in the
	// neighbor's buffer: 1 = newest, Cap() = next to be evicted; 0 if
	// absent.
	PositionFromTail(id segment.ID) int
	// Cap is the neighbor's buffer capacity B.
	Cap() int
}

// Supplier is one neighbor considered as a segment source.
type Supplier struct {
	ID   SupplierID
	Rate float64 // R(j): the neighbor's sending rate, segments/second
	View View
}

// MaxSuppliers bounds the neighbor count a single plan can consider; the
// candidate set tracks supplier membership in a 64-bit mask. The paper
// uses M=5 neighbors, so the bound is generous.
const MaxSuppliers = 64

// Env is the complete local knowledge a node has when its scheduler runs.
// The enclosing simulator (or application) fills it each period.
type Env struct {
	Tau     float64 // scheduling period τ, seconds
	P       float64 // playback rate p, segments/second
	Q       float64 // S1 consecutive-segment playback threshold
	Inbound float64 // total inbound rate I, segments/second

	// Playhead is idplay: the id of the next segment playback will
	// consume.
	Playhead segment.ID

	// NeedOld lists the undelivered segments of the stream currently being
	// played (ascending, no duplicates). During a switch this is S1's
	// remaining tail; in steady state it is the window behind the live
	// edge.
	NeedOld []segment.ID

	// NeedNew lists the undelivered segments among the first Qs of the new
	// source (ascending). Empty while no switch is in sight.
	NeedNew []segment.ID

	Suppliers []Supplier
}

// Candidate is a scored, supplier-annotated segment the scheduler may
// request this period.
type Candidate struct {
	ID       segment.ID
	Stream   Stream
	Urgency  float64
	Rarity   float64
	Priority float64
	MaxRate  float64 // Ri = max supplier rate (eq. 6)
	owners   uint64  // bitmask over Env.Suppliers
}

// HasSupplier reports whether supplier index i can provide the candidate.
func (c *Candidate) HasSupplier(i int) bool { return c.owners&(1<<uint(i)) != 0 }

// UrgencySaturation is the finite stand-in for "deadline already due":
// eq. (7) divides by the slack t_i, which can reach zero or go negative
// for a segment the playhead is waiting on. Any saturated candidate
// outranks every unsaturated one.
const UrgencySaturation = 1e9

// RarityMode selects how rarity is computed — eq. (8) by default, or the
// "traditional" 1/n_i the paper argues against (kept for the ablation
// benchmarks).
type RarityMode int

// Rarity computation variants.
const (
	RarityEviction    RarityMode = iota // eq. (8): Π p_ij / B
	RarityTraditional                   // 1/n_i
)

// PriorityMode selects how urgency and rarity combine — eq. (9) by
// default; the single-term variants exist for the ablation benchmarks.
type PriorityMode int

// Priority combination variants.
const (
	PriorityMax         PriorityMode = iota // eq. (9): max(urgency, rarity)
	PriorityUrgencyOnly                     // urgency
	PriorityRarityOnly                      // rarity
)

// ScoreOptions parameterize candidate scoring.
type ScoreOptions struct {
	Rarity   RarityMode
	Priority PriorityMode
}

// BuildCandidates scores every needed segment that at least one supplier
// advertises, appending to dst (which may be nil) and returning it.
// Candidates no supplier holds are dropped — they cannot be scheduled this
// period.
func BuildCandidates(env *Env, opt ScoreOptions, dst []Candidate) []Candidate {
	if len(env.Suppliers) > MaxSuppliers {
		panic(fmt.Sprintf("core: %d suppliers exceeds MaxSuppliers=%d", len(env.Suppliers), MaxSuppliers))
	}
	dst = appendScored(env, opt, dst, env.NeedOld, StreamOld)
	dst = appendScored(env, opt, dst, env.NeedNew, StreamNew)
	return dst
}

func appendScored(env *Env, opt ScoreOptions, dst []Candidate, need []segment.ID, stream Stream) []Candidate {
	for _, id := range need {
		c := Candidate{ID: id, Stream: stream}
		n := 0
		rarity := 1.0
		for i := range env.Suppliers {
			sup := &env.Suppliers[i]
			if sup.Rate <= 0 || sup.View == nil || !sup.View.Has(id) {
				continue
			}
			c.owners |= 1 << uint(i)
			n++
			if sup.Rate > c.MaxRate {
				c.MaxRate = sup.Rate
			}
			if opt.Rarity == RarityEviction {
				b := sup.View.Cap()
				pos := sup.View.PositionFromTail(id)
				if b > 0 && pos > 0 {
					rarity *= float64(pos) / float64(b)
				}
			}
		}
		if n == 0 {
			continue
		}
		if opt.Rarity == RarityTraditional {
			rarity = 1 / float64(n)
		}
		c.Rarity = rarity
		c.Urgency = urgency(env, id, c.MaxRate)
		switch opt.Priority {
		case PriorityUrgencyOnly:
			c.Priority = c.Urgency
		case PriorityRarityOnly:
			c.Priority = c.Rarity
		default:
			c.Priority = math.Max(c.Urgency, c.Rarity)
		}
		dst = append(dst, c)
	}
	return dst
}

// urgency implements eq. (7): t_i = (id_i - id_play)/p - 1/R_i, and
// urgency_i = 1/t_i, saturated when the slack is non-positive.
func urgency(env *Env, id segment.ID, maxRate float64) float64 {
	if env.P <= 0 || maxRate <= 0 {
		return UrgencySaturation
	}
	slack := float64(id-env.Playhead)/env.P - 1/maxRate
	if slack <= 0 {
		return UrgencySaturation
	}
	u := 1 / slack
	if u > UrgencySaturation {
		return UrgencySaturation
	}
	return u
}

// Request is one scheduled segment pull.
type Request struct {
	Segment  segment.ID
	Stream   Stream
	Supplier SupplierID
	// SupplierIndex is the position of Supplier in Env.Suppliers.
	SupplierIndex int
	// ExpectedAt is the expected receive offset within the period,
	// seconds: queueing at the supplier plus 1/R(j) transfer (Algorithm 1,
	// line 13-14).
	ExpectedAt float64
	Priority   float64
}

// Plan is the outcome of one scheduler run.
type Plan struct {
	// Requests to issue this period, at most Inbound·τ of them, ordered by
	// descending retrieval precedence.
	Requests []Request
	// O1 and O2 are the sizes of the schedulable sets (Algorithm 1 step 1)
	// before the rate split truncates them.
	O1, O2 int
	// Q1 and Q2 are the undelivered backlogs the split was computed from.
	Q1, Q2 int
	// Split records the I1/I2 decision and which of the four cases fired.
	// For the normal algorithm it reports the strict-priority allocation.
	Split model.Split
}

// reset clears a plan for reuse without freeing its backing arrays.
func (p *Plan) reset() {
	p.Requests = p.Requests[:0]
	p.O1, p.O2, p.Q1, p.Q2 = 0, 0, 0, 0
	p.Split = model.Split{}
}

// Algorithm is a pluggable per-node scheduler.
type Algorithm interface {
	// Name identifies the algorithm in metrics and tables.
	Name() string
	// Plan computes this period's requests into out (reused across calls).
	Plan(env *Env, out *Plan)
}

// assignment is Algorithm 1 step 1: greedy earliest-completion supplier
// selection with per-supplier queueing times. cands must already be in
// retrieval-priority order. The returned slices hold old-stream and
// new-stream requests in assignment order.
//
// Two practicalities refine the paper's pseudo-code. First, the period
// boundary is closed: a transfer expected to complete exactly at τ still
// counts (strict '<' would waste one slot per supplier every period).
// Second, each stream's assignment stops at the inbound budget I·τ — the
// node cannot retrieve more segments than that in total, and letting an
// abundant stream monopolize every supplier queue would report O=0 for
// the other stream even when neighbors hold its data, defeating the rate
// split the assignment exists to inform.
type assignment struct {
	queue [MaxSuppliers]float64 // τ(j), queueing time per supplier
	old   []Request
	fresh []Request
}

func (a *assignment) run(env *Env, cands []Candidate) {
	for i := range a.queue[:len(env.Suppliers)] {
		a.queue[i] = 0
	}
	a.old = a.old[:0]
	a.fresh = a.fresh[:0]
	budget := int(env.Inbound*env.Tau + 1e-9)
	for ci := range cands {
		c := &cands[ci]
		if c.Stream == StreamOld && len(a.old) >= budget {
			continue
		}
		if c.Stream == StreamNew && len(a.fresh) >= budget {
			continue
		}
		tmin := math.Inf(1)
		best := -1
		for si := range env.Suppliers {
			if !c.HasSupplier(si) {
				continue
			}
			sup := &env.Suppliers[si]
			ttrans := 1 / sup.Rate
			t := ttrans + a.queue[si]
			if t < tmin && t <= env.Tau+1e-9 {
				tmin = t
				best = si
			}
		}
		if best < 0 {
			continue // no supplier can deliver it within the period
		}
		a.queue[best] = tmin
		req := Request{
			Segment:       c.ID,
			Stream:        c.Stream,
			Supplier:      env.Suppliers[best].ID,
			SupplierIndex: best,
			ExpectedAt:    tmin,
			Priority:      c.Priority,
		}
		if c.Stream == StreamOld {
			a.old = append(a.old, req)
		} else {
			a.fresh = append(a.fresh, req)
		}
	}
}

// FastSwitch is the paper's algorithm. The zero value uses the paper's
// scoring (eq. 8 rarity, eq. 9 max-priority); the mode fields exist for
// the ablation experiments.
type FastSwitch struct {
	Options ScoreOptions
	// DisableSplit replaces the four-case optimal rate split with plain
	// global priority order (ablation: isolates the split's contribution).
	DisableSplit bool

	scratch []Candidate
	assign  assignment
}

var _ Algorithm = (*FastSwitch)(nil)

// Name implements Algorithm.
func (f *FastSwitch) Name() string { return "fast" }

// Plan implements Algorithm: the full Section 4 pipeline.
func (f *FastSwitch) Plan(env *Env, out *Plan) {
	out.reset()
	out.Q1, out.Q2 = len(env.NeedOld), len(env.NeedNew)
	f.scratch = BuildCandidates(env, f.Options, f.scratch[:0])
	cands := f.scratch
	sortByPriority(cands)
	f.assign.run(env, cands)
	o1, o2 := f.assign.old, f.assign.fresh
	out.O1, out.O2 = len(o1), len(o2)

	budget := int(env.Inbound*env.Tau + 1e-9)
	if budget <= 0 {
		return
	}
	var n1, n2 int
	if f.DisableSplit {
		// Ablation: merge the two sets purely by priority and take the
		// first `budget` entries.
		n1, n2 = takeByPriority(o1, o2, budget)
	} else {
		params := model.Params{
			Q:  env.Q,
			Q1: float64(out.Q1),
			Q2: float64(out.Q2),
			P:  env.P,
			I:  env.Inbound,
		}
		split := params.ConstrainedSplit(
			float64(out.O1)/env.Tau,
			float64(out.O2)/env.Tau,
		)
		out.Split = split
		// Integer application of the split, matching the paper's Figure 2
		// (I=7, r1≈4.6 → 4 old + 3 new): the old stream takes ⌊I1·τ⌋
		// slots, the new stream the complement, and any slots one set
		// cannot fill flow back to the other ("maximize the inbound
		// throughput", Section 4).
		n1 = min(len(o1), int(split.I1*env.Tau+1e-9))
		n2 = min(len(o2), budget-n1)
		n1 += min(len(o1)-n1, budget-n1-n2)
	}
	out.Requests = mergeByPriority(out.Requests, o1[:n1], o2[:n2])
}

// NormalSwitch is the baseline of Section 5.1: retrieve S1 segments in
// strict priority; give S2 only the leftover inbound rate.
type NormalSwitch struct {
	scratch []Candidate
	assign  assignment
}

var _ Algorithm = (*NormalSwitch)(nil)

// Name implements Algorithm.
func (n *NormalSwitch) Name() string { return "normal" }

// Plan implements Algorithm.
func (n *NormalSwitch) Plan(env *Env, out *Plan) {
	out.reset()
	out.Q1, out.Q2 = len(env.NeedOld), len(env.NeedNew)
	// Scoring is irrelevant to the normal ordering, but urgency still
	// breaks ties inside S1 (deadline order == ascending id) and the
	// priorities are reported in the plan for observability.
	n.scratch = BuildCandidates(env, ScoreOptions{}, n.scratch[:0])
	cands := n.scratch
	slices.SortStableFunc(cands, func(a, b Candidate) int {
		if a.Stream != b.Stream {
			if a.Stream == StreamOld {
				return -1
			}
			return 1
		}
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	n.assign.run(env, cands)
	o1, o2 := n.assign.old, n.assign.fresh
	out.O1, out.O2 = len(o1), len(o2)

	budget := int(env.Inbound*env.Tau + 1e-9)
	if budget <= 0 {
		return
	}
	n1 := min(len(o1), budget)
	n2 := min(len(o2), budget-n1)
	out.Split = model.Split{
		I1:   float64(n1) / env.Tau,
		I2:   float64(n2) / env.Tau,
		Case: model.CaseBothLimited,
	}
	out.Requests = append(out.Requests, o1[:n1]...)
	out.Requests = append(out.Requests, o2[:n2]...)
}

// sortByPriority orders candidates by descending priority; ties prefer the
// old stream, then the lower id — a deterministic order that matches the
// paper's Figure 2 example. The generic stable sort produces the same
// permutation the reflection-based sort.SliceStable did (stability makes
// the output unique) without its two heap allocations per call — this
// runs once per node per round, the single hottest call site of a tick.
func sortByPriority(cands []Candidate) {
	slices.SortStableFunc(cands, func(a, b Candidate) int {
		switch {
		case a.Priority > b.Priority:
			return -1
		case a.Priority < b.Priority:
			return 1
		}
		if a.Stream != b.Stream {
			if a.Stream == StreamOld {
				return -1
			}
			return 1
		}
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
}

// takeByPriority walks the two request lists in merged priority order and
// counts how many of each to take, up to budget.
func takeByPriority(o1, o2 []Request, budget int) (n1, n2 int) {
	for budget > 0 && (n1 < len(o1) || n2 < len(o2)) {
		take1 := n2 >= len(o2) ||
			(n1 < len(o1) && o1[n1].Priority >= o2[n2].Priority)
		if take1 {
			n1++
		} else {
			n2++
		}
		budget--
	}
	return n1, n2
}

// mergeByPriority appends the two lists to dst interleaved by descending
// priority (stable: o1 wins ties), mirroring the retrieval order of the
// paper's Figure 2.
func mergeByPriority(dst []Request, o1, o2 []Request) []Request {
	i, j := 0, 0
	for i < len(o1) || j < len(o2) {
		if j >= len(o2) || (i < len(o1) && o1[i].Priority >= o2[j].Priority) {
			dst = append(dst, o1[i])
			i++
		} else {
			dst = append(dst, o2[j])
			j++
		}
	}
	return dst
}
