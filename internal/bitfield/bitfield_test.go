package bitfield

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	s := New(600)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 599} {
		if s.Get(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Set(i)
		if !s.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
		s.Clear(i)
		if s.Get(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestCountAndReset(t *testing.T) {
	s := New(600)
	for i := 0; i < 600; i += 3 {
		s.Set(i)
	}
	if got := s.Count(); got != 200 {
		t.Fatalf("Count = %d, want 200", got)
	}
	s.Reset()
	if got := s.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d", got)
	}
}

func TestNextSet(t *testing.T) {
	s := New(200)
	s.Set(5)
	s.Set(64)
	s.Set(199)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 199}, {199, 199}, {200, -1}, {-3, 5},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestNextClear(t *testing.T) {
	s := New(130)
	for i := 0; i < 130; i++ {
		s.Set(i)
	}
	if got := s.NextClear(0); got != -1 {
		t.Fatalf("NextClear on full set = %d, want -1", got)
	}
	s.Clear(128)
	if got := s.NextClear(0); got != 128 {
		t.Fatalf("NextClear = %d, want 128", got)
	}
	if got := s.NextClear(129); got != -1 {
		t.Fatalf("NextClear(129) = %d, want -1", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(64)
	s.Set(10)
	c := s.Clone()
	c.Set(20)
	if s.Get(20) {
		t.Error("mutating clone changed original")
	}
	if !c.Get(10) {
		t.Error("clone lost original bit")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			s.Get(i)
		}()
	}
}

func TestWireBits(t *testing.T) {
	// Section 5.3: 600 map bits + 20 anchor bits = 620.
	if got := WireBits(600); got != 620 {
		t.Fatalf("WireBits(600) = %d, want 620", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(700)
		s := New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				s.Set(i)
			}
		}
		anchor := rng.Int63n(MaxAnchor + 1)
		img, err := Encode(anchor, s)
		if err != nil {
			t.Fatal(err)
		}
		if want := (WireBits(n) + 7) / 8; len(img) != want {
			t.Fatalf("image size %d bytes, want %d", len(img), want)
		}
		gotAnchor, gotSet, err := Decode(img, n)
		if err != nil {
			t.Fatal(err)
		}
		if gotAnchor != anchor {
			t.Fatalf("anchor %d, want %d", gotAnchor, anchor)
		}
		for i := 0; i < n; i++ {
			if gotSet.Get(i) != s.Get(i) {
				t.Fatalf("trial %d: bit %d mismatch", trial, i)
			}
		}
	}
}

func TestEncodeAnchorRange(t *testing.T) {
	s := New(8)
	if _, err := Encode(MaxAnchor+1, s); err == nil {
		t.Error("anchor beyond 20 bits must fail")
	}
	if _, err := Encode(-1, s); err == nil {
		t.Error("negative anchor must fail")
	}
	if _, err := Encode(MaxAnchor, s); err != nil {
		t.Errorf("anchor at limit failed: %v", err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	s := New(600)
	img, err := Encode(7, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(img[:len(img)-1], 600); err == nil {
		t.Error("truncated image must fail")
	}
	if _, _, err := Decode(append(img, 0), 600); err == nil {
		t.Error("oversized image must fail")
	}
}

func TestQuickCountMatchesSetBits(t *testing.T) {
	f := func(idxs []uint16) bool {
		s := New(1024)
		want := map[int]bool{}
		for _, i := range idxs {
			j := int(i) % 1024
			s.Set(j)
			want[j] = true
		}
		if s.Count() != len(want) {
			return false
		}
		// NextSet enumeration must visit exactly the set bits.
		seen := 0
		for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
			if !want[i] {
				return false
			}
			seen++
		}
		return seen == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
