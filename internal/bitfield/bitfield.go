// Package bitfield implements the fixed-width bitset used for buffer
// availability maps and their 620-bit wire encoding.
//
// Section 5.3 of the paper fixes the format: a node's buffer holds B=600
// segments, so availability is a 600-bit map (bit 1 = segment present),
// anchored by the 20-bit id of the first segment in the buffer (a source
// emits at most 864000 < 2^20 segments per day). One buffer-map exchange
// therefore costs 620 bits, the constant behind the communication-overhead
// metric of Figures 8 and 12.
package bitfield

import (
	"errors"
	"fmt"
	"math/bits"
)

// Set is a fixed-capacity bitset. The zero value is unusable; create one
// with New.
type Set struct {
	n     int
	words []uint64
}

// New returns a Set able to hold n bits, all clear. n must be positive.
func New(n int) *Set {
	if n <= 0 {
		panic(fmt.Sprintf("bitfield: New(%d): size must be positive", n))
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// check panics on out-of-range indexes; indexes come from internal buffer
// arithmetic, so a violation is a bug, not an input error.
func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitfield: index %d out of range [0,%d)", i, s.n))
	}
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i>>6] |= 1 << uint(i&63)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i>>6] &^= 1 << uint(i&63)
}

// Get reports bit i.
func (s *Set) Get(i int) bool {
	s.check(i)
	return s.words[i>>6]&(1<<uint(i&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// NextSet returns the index of the first set bit at or after i, or -1.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	w := i >> 6
	masked := s.words[w] >> uint(i&63)
	if masked != 0 {
		idx := i + bits.TrailingZeros64(masked)
		if idx < s.n {
			return idx
		}
		return -1
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			idx := w<<6 + bits.TrailingZeros64(s.words[w])
			if idx < s.n {
				return idx
			}
			return -1
		}
	}
	return -1
}

// NextClear returns the index of the first clear bit at or after i, or -1
// when every bit in [i, Len) is set.
func (s *Set) NextClear(i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < s.n; i++ {
		// Skip fully-set words in bulk.
		if i&63 == 0 {
			for i>>6 < len(s.words) && s.words[i>>6] == ^uint64(0) {
				i += 64
			}
			if i >= s.n {
				return -1
			}
		}
		if !s.Get(i) {
			return i
		}
	}
	return -1
}

// Wire format ----------------------------------------------------------------

// AnchorBits is the width of the buffer-map anchor id (Section 5.3).
const AnchorBits = 20

// MaxAnchor is the largest anchor id expressible on the wire.
const MaxAnchor = 1<<AnchorBits - 1

// WireBits returns the size in bits of an encoded map with n availability
// bits: n bits of map plus the 20-bit anchor. For the paper's B=600 this is
// the canonical 620.
func WireBits(n int) int { return n + AnchorBits }

// ErrCorrupt is returned when a wire image cannot be decoded.
var ErrCorrupt = errors.New("bitfield: corrupt wire image")

// ErrAnchorRange is returned when the anchor id does not fit in 20 bits.
var ErrAnchorRange = errors.New("bitfield: anchor id exceeds 20-bit range")

// Encode serializes anchor and the set into a byte slice: 20-bit anchor
// (big-endian, packed) followed by the map bits, zero-padded to a byte
// boundary. Wire cost accounting should use WireBits, not len(bytes)*8.
func Encode(anchor int64, s *Set) ([]byte, error) {
	if anchor < 0 || anchor > MaxAnchor {
		return nil, fmt.Errorf("%w: %d", ErrAnchorRange, anchor)
	}
	nbits := AnchorBits + s.n
	out := make([]byte, (nbits+7)/8)
	// Pack the anchor into the first 20 bits.
	putBits(out, 0, AnchorBits, uint64(anchor))
	for i := 0; i < s.n; i++ {
		if s.Get(i) {
			setWireBit(out, AnchorBits+i)
		}
	}
	return out, nil
}

// Decode parses a wire image produced by Encode for a map of n bits.
func Decode(img []byte, n int) (anchor int64, s *Set, err error) {
	need := (AnchorBits + n + 7) / 8
	if len(img) != need {
		return 0, nil, fmt.Errorf("%w: got %d bytes, want %d", ErrCorrupt, len(img), need)
	}
	anchor = int64(getBits(img, 0, AnchorBits))
	s = New(n)
	for i := 0; i < n; i++ {
		if getWireBit(img, AnchorBits+i) {
			s.Set(i)
		}
	}
	return anchor, s, nil
}

func setWireBit(b []byte, i int) { b[i>>3] |= 1 << uint(7-i&7) }

func getWireBit(b []byte, i int) bool { return b[i>>3]&(1<<uint(7-i&7)) != 0 }

// putBits writes the low `width` bits of v into b starting at bit offset
// off, most significant bit first.
func putBits(b []byte, off, width int, v uint64) {
	for i := 0; i < width; i++ {
		if v&(1<<uint(width-1-i)) != 0 {
			setWireBit(b, off+i)
		}
	}
}

// getBits reads `width` bits starting at bit offset off, MSB first.
func getBits(b []byte, off, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v <<= 1
		if getWireBit(b, off+i) {
			v |= 1
		}
	}
	return v
}
