package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// The structured trace stream: one JSON object per line (JSONL), each a
// typed run event. The schema is documented in docs/OBSERVABILITY.md
// and enforced by ValidateTrace — CI runs a traced scenario and
// validates every line, so the doc and the emitter cannot drift.
//
// Tracing is observational only: emitters read run state and write
// bytes, never feed anything back, so a traced run is bit-identical to
// an untraced one (pinned by TestTracedRunBitIdentical).

// Trace event types. Every line carries "t" (one of these) and "tick".
const (
	EvRunStart    = "run-start"    // scenario, algo, nodes, seed
	EvTick        = "tick"         // ns: the tick's wall-clock duration
	EvEvent       = "event"        // kind; node/to/seg where applicable
	EvWindowOpen  = "window-open"  // window, kind, cohort
	EvWindowClose = "window-close" // window, measured, unfinished, unprepared
	EvSwitch      = "switch"       // kind: milestone (s1-end, become-source); seg, node
	EvRetry       = "retry"        // dest, seq: a control-plane retransmission
	EvPartition   = "partition"    // kind: sever|heal
	EvRunEnd      = "run-end"      // windows: closed window count
	EvFailover    = "failover"     // kind: suspected|recovered|dead; dest: the shard
)

// TraceEvent is one trace line. Optional fields are pointers (or
// omitempty scalars that cannot legitimately be zero) so absent and
// zero-valued never blur: node 0 and window 0 are real identities.
type TraceEvent struct {
	T    string `json:"t"`
	Tick int    `json:"tick"`

	NS       int64  `json:"ns,omitempty"`       // tick
	Kind     string `json:"kind,omitempty"`     // event, window-open, switch, partition
	Scenario string `json:"scenario,omitempty"` // run-start
	Algo     string `json:"algo,omitempty"`     // run-start
	Nodes    int    `json:"nodes,omitempty"`    // run-start
	Seed     int64  `json:"seed,omitempty"`     // run-start

	Window *int   `json:"window,omitempty"` // window-open, window-close
	Node   *int64 `json:"node,omitempty"`   // event, switch
	To     *int64 `json:"to,omitempty"`     // event
	Seg    *int64 `json:"seg,omitempty"`    // event, switch

	Cohort     int `json:"cohort,omitempty"`     // window-open
	Measured   int `json:"measured,omitempty"`   // window-close
	Unfinished int `json:"unfinished,omitempty"` // window-close
	Unprepared int `json:"unprepared,omitempty"` // window-close
	Windows    int `json:"windows,omitempty"`    // run-end

	Dest  int    `json:"dest,omitempty"`  // retry
	Seq   uint64 `json:"seq,omitempty"`   // retry
	Shard int    `json:"shard,omitempty"` // any, in multi-process runs
}

// P returns a pointer to v — for the optional TraceEvent fields.
func P[T any](v T) *T { return &v }

// Trace is a concurrency-safe JSONL writer. A nil *Trace discards every
// event, which is how a run disables tracing.
type Trace struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer
	events int64
	err    error
}

// NewTrace wraps a writer in a trace sink.
func NewTrace(w io.Writer) *Trace {
	t := &Trace{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// OpenTrace creates (truncates) a trace file.
func OpenTrace(path string) (*Trace, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace file: %w", err)
	}
	return NewTrace(f), nil
}

// Emit appends one event line. Safe from any goroutine; a nil Trace
// drops the event.
func (t *Trace) Emit(ev TraceEvent) {
	if t == nil {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return // unmarshalable event: a programming bug, not worth a panic mid-run
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(data); err != nil {
		t.err = err
		return
	}
	if err := t.w.WriteByte('\n'); err != nil {
		t.err = err
		return
	}
	t.events++
}

// Events reports how many lines were emitted.
func (t *Trace) Events() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Close flushes (and closes the underlying file, when Trace opened it).
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.w.Flush()
	if t.err != nil {
		err = t.err
	}
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// traceRequired maps each event type to the extra keys it must carry
// (beyond t and tick). Validation decodes into a map so it also rejects
// lines whose required fields were omitted as zero values.
var traceRequired = map[string][]string{
	EvRunStart:    {"scenario", "nodes"},
	EvTick:        {"ns"},
	EvEvent:       {"kind"},
	EvWindowOpen:  {"window", "kind"},
	EvWindowClose: {"window"},
	EvSwitch:      {"kind"},
	EvRetry:       {"dest", "seq"},
	EvPartition:   {"kind"},
	EvRunEnd:      {},
	EvFailover:    {"kind", "dest"},
}

// ValidateTraceLine checks one JSONL line against the schema: valid
// JSON object, a known "t", a numeric "tick", and the type's required
// fields present.
func ValidateTraceLine(line []byte) error {
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		return fmt.Errorf("not a JSON object: %w", err)
	}
	t, _ := m["t"].(string)
	req, known := traceRequired[t]
	if !known {
		return fmt.Errorf("unknown event type %q", t)
	}
	if _, ok := m["tick"].(float64); !ok {
		return fmt.Errorf("%s event without a numeric tick", t)
	}
	for _, k := range req {
		if _, ok := m[k]; !ok {
			return fmt.Errorf("%s event missing required field %q", t, k)
		}
	}
	return nil
}

// ValidateTrace checks a whole JSONL stream, returning the number of
// valid lines or the first offending line's error.
func ValidateTrace(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := ValidateTraceLine(line); err != nil {
			return n, fmt.Errorf("line %d: %w", n+1, err)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	if n == 0 {
		return 0, fmt.Errorf("empty trace")
	}
	return n, nil
}
