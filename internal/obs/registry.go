package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics registry: named atomic counters, gauges and histograms,
// registered once at run setup and updated from hot paths with plain
// atomic operations — no maps, no locks, no allocation after
// registration. A nil *Registry (observability disabled) hands out nil
// metrics whose methods are no-ops, so instrumented code needs no
// branches and a disabled run pays one nil check per update.

// Counter is a monotonically increasing series. The zero value is ready
// to use; a nil Counter ignores every update.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// SetTotal overwrites the counter with an externally accumulated total —
// for mirroring a cumulative count kept elsewhere (transport stats, the
// kernel's drop counter) into the registry. The source must itself be
// monotonic for the series to stay a well-formed counter.
func (c *Counter) SetTotal(v int64) {
	if c == nil {
		return
	}
	c.v.Store(v)
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a series that can go up and down. A nil Gauge ignores every
// update.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed exponential buckets —
// cumulative in the Prometheus exposition, per-bucket atomics
// internally. A nil Histogram ignores every observation.
type Histogram struct {
	bounds  []int64 // ascending upper bounds; implicit +Inf bucket after
	buckets []atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// DurationBuckets are the default nanosecond bounds for duration
// histograms: powers of four from 1µs to ~4.3s.
var DurationBuckets = []int64{
	1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20,
	1 << 22, 1 << 24, 1 << 26, 1 << 28, 1 << 30, 1 << 32,
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Linear scan: the bucket count is small and fixed, and the common
	// samples land early. No allocation, no lock.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count reads the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reads the accumulated sample total (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// metric is one registered series.
type metric struct {
	name   string // full series name, labels included
	family string // name with the label part stripped
	help   string
	kind   string // "counter", "gauge", "histogram"
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds the run's metric series. Registration (Counter, Gauge,
// Histogram) is idempotent by full series name and safe for concurrent
// use; it is meant for run setup, not hot paths. A nil *Registry is the
// disabled registry: it returns nil metrics and writes nothing.
type Registry struct {
	mu     sync.Mutex
	series map[string]*metric
	order  []string
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*metric)}
}

// family strips a trailing {label="..."} part off a series name.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// register adds (or finds) one series under the full name.
func (r *Registry) register(name, help, kind string) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.series[name]; ok {
		return m
	}
	m := &metric{name: name, family: family(name), help: help, kind: kind}
	switch kind {
	case "counter":
		m.c = &Counter{}
	case "gauge":
		m.g = &Gauge{}
	case "histogram":
		m.h = &Histogram{bounds: DurationBuckets,
			buckets: make([]atomic.Int64, len(DurationBuckets)+1)}
	}
	r.series[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter registers (or finds) a counter series. The name may carry a
// Prometheus label part: `gossip_phase_ns_total{phase="plan"}`.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, "counter").c
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, "gauge").g
}

// Histogram registers (or finds) a histogram series with the default
// duration buckets.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, "histogram").h
}

// labeled splices an extra label (le for histogram buckets) into a
// series name that may or may not already carry labels.
func labeled(name, extra string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:len(name)-1] + "," + extra + "}"
	}
	return name + "{" + extra + "}"
}

// WritePrometheus renders every series in the text exposition format,
// families in registration order, HELP and TYPE once per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	series := make([]*metric, len(names))
	for i, n := range names {
		series[i] = r.series[n]
	}
	r.mu.Unlock()

	// Stable family grouping: first occurrence fixes the family's slot.
	seen := make(map[string]bool)
	for _, m := range series {
		if !seen[m.family] {
			seen[m.family] = true
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
				m.family, m.help, m.family, m.kind); err != nil {
				return err
			}
			for _, sm := range series {
				if sm.family != m.family {
					continue
				}
				if err := writeSeries(w, sm); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, m *metric) error {
	switch m.kind {
	case "counter":
		_, err := fmt.Fprintf(w, "%s %d\n", m.name, m.c.Value())
		return err
	case "gauge":
		_, err := fmt.Fprintf(w, "%s %d\n", m.name, m.g.Value())
		return err
	case "histogram":
		h := m.h
		var cum int64
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			if _, err := fmt.Fprintf(w, "%s %d\n",
				labeled(m.name+"_bucket", fmt.Sprintf(`le="%d"`, b)), cum); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", labeled(m.name+"_bucket", `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n",
			m.name, h.Sum(), m.name, h.Count()); err != nil {
			return err
		}
		return nil
	}
	return nil
}

// Snapshot returns every plain series value by full name (histograms
// contribute name_sum and name_count) — the /runz-friendly JSON view.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.series))
	for name, m := range r.series {
		switch m.kind {
		case "counter":
			out[name] = m.c.Value()
		case "gauge":
			out[name] = m.g.Value()
		case "histogram":
			out[name+"_sum"] = m.h.Sum()
			out[name+"_count"] = m.h.Count()
		}
	}
	return out
}

// Families lists the registered family names, sorted — test and
// debugging convenience.
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	for _, m := range r.series {
		if !seen[m.family] {
			seen[m.family] = true
			out = append(out, m.family)
		}
	}
	sort.Strings(out)
	return out
}
