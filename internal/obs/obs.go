package obs

// Obs bundles the sinks a run threads through its layers: the metrics
// registry, the JSONL trace stream and the Chrome span exporter. Any
// field may be nil; a nil *Obs disables everything. The nil-safe
// accessors let consumers hold a single possibly-nil *Obs and read
// sinks without branching.
type Obs struct {
	Reg    *Registry
	Trace  *Trace
	Chrome *ChromeTrace
}

// Registry returns the metrics registry (nil when disabled).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Reg
}

// Tracer returns the trace stream (nil when disabled).
func (o *Obs) Tracer() *Trace {
	if o == nil {
		return nil
	}
	return o.Trace
}

// ChromeSink returns the span exporter (nil when disabled).
func (o *Obs) ChromeSink() *ChromeTrace {
	if o == nil {
		return nil
	}
	return o.Chrome
}

// Close flushes and closes every sink that needs it.
func (o *Obs) Close() error {
	if o == nil {
		return nil
	}
	err := o.Trace.Close()
	if cerr := o.Chrome.Close(); err == nil {
		err = cerr
	}
	return err
}
