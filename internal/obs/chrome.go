package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// ChromeTrace exports spans in the Chrome trace-event format (the JSON
// array flavor), loadable in chrome://tracing or https://ui.perfetto.dev
// — one complete ("ph":"X") event per engine phase execution, so a
// tick's phase pipeline renders as a row of nested spans on a
// microsecond timeline. A nil *ChromeTrace discards every span.
type ChromeTrace struct {
	mu    sync.Mutex
	f     *os.File
	start time.Time
	first bool
	err   error
	spans int64
}

// chromeEvent is one trace-event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`  // µs since the trace epoch
	Dur  int64          `json:"dur"` // µs
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// OpenChrome creates (truncates) a Chrome trace file.
func OpenChrome(path string) (*ChromeTrace, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: chrome trace file: %w", err)
	}
	if _, err := f.WriteString("[\n"); err != nil {
		f.Close()
		return nil, err
	}
	return &ChromeTrace{f: f, start: time.Now(), first: true}, nil
}

// Span records one completed span. tid groups spans into rows (the
// engine uses tid 0 for the tick pipeline and 1 for the plan/serve
// sub-pipeline); tick is attached as an argument for the inspector.
func (c *ChromeTrace) Span(name string, tid int, tick int64, start time.Time, d time.Duration) {
	if c == nil {
		return
	}
	ev := chromeEvent{
		Name: name, Ph: "X",
		TS:  start.Sub(c.start).Microseconds(),
		Dur: d.Microseconds(),
		TID: tid,
		Args: map[string]any{
			"tick": tick,
		},
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	if !c.first {
		if _, err := c.f.WriteString(",\n"); err != nil {
			c.err = err
			return
		}
	}
	c.first = false
	if _, err := c.f.Write(data); err != nil {
		c.err = err
		return
	}
	c.spans++
}

// Spans reports how many spans were recorded.
func (c *ChromeTrace) Spans() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spans
}

// Close terminates the JSON array and closes the file.
func (c *ChromeTrace) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, werr := c.f.WriteString("\n]\n")
	cerr := c.f.Close()
	if c.err != nil {
		return c.err
	}
	if werr != nil {
		return werr
	}
	return cerr
}
