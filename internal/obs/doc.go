// Package obs is the runtime observability layer shared by all three
// execution backends (the simulator's phase pipeline, the live
// goroutine-peer runtime, and the multi-process cluster): a metrics
// registry of atomic counters/gauges/histograms with a Prometheus text
// exposition, a structured JSONL trace stream with a validated schema,
// a Chrome trace-event exporter for per-phase spans, and a debug HTTP
// endpoint (/metrics, /healthz, /runz, pprof).
//
// Two properties are load-bearing and pinned by tests:
//
//   - Free when disabled. Every sink type (Registry, Trace, ChromeTrace)
//     is nil-safe: a nil receiver makes every update a no-op, so
//     instrumented hot paths pay one nil check and nothing else.
//     TestTickAllocations holds the steady-state allocation budget with
//     the instrumentation compiled in, and TestTickAllocationsWithObs
//     holds the same budget with a live registry attached — updates are
//     pre-registered atomics, never allocations.
//
//   - Non-perturbing when enabled. Observability only reads run state;
//     nothing flows back. TestTracedRunBitIdentical pins a traced,
//     registry-enabled run bit-identical to a bare run at multiple
//     worker counts — the determinism contract does not bend for
//     telemetry.
//
// See docs/OBSERVABILITY.md for the metric catalog, the trace schema,
// the endpoint table and the cluster health view.
package obs
