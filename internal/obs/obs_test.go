package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

func TestNilSinksAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "x")
	g := r.Gauge("y", "y")
	h := r.Histogram("z_ns", "z")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry handed out non-nil metrics")
	}
	c.Add(5)
	c.Inc()
	c.SetTotal(9)
	g.Set(3)
	h.Observe(100)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil metrics accumulated state")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q err=%v", buf.String(), err)
	}
	if r.Snapshot() != nil {
		t.Fatalf("nil registry snapshot non-nil")
	}

	var tr *Trace
	tr.Emit(TraceEvent{T: EvTick, Tick: 1, NS: 5})
	if tr.Events() != 0 {
		t.Fatalf("nil trace counted events")
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("nil trace close: %v", err)
	}

	var ch *ChromeTrace
	ch.Span("plan", 0, 1, time.Now(), time.Millisecond)
	if ch.Spans() != 0 || ch.Close() != nil {
		t.Fatalf("nil chrome trace not a no-op")
	}

	var o *Obs
	if o.Registry() != nil || o.Tracer() != nil || o.ChromeSink() != nil || o.Close() != nil {
		t.Fatalf("nil Obs accessors not nil-safe")
	}
}

func TestRegistryIdempotentAndAtomic(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("gossip_ticks_total", "ticks")
	b := r.Counter("gossip_ticks_total", "ticks")
	if a != b {
		t.Fatalf("re-registration returned a different counter")
	}
	a.Add(3)
	b.Inc()
	if a.Value() != 4 {
		t.Fatalf("counter = %d, want 4", a.Value())
	}
	g := r.Gauge("gossip_inbox_depth", "depth")
	g.Set(7)
	g.Set(2)
	if g.Value() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Value())
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("gossip_ticks_total", "scheduling periods executed").Add(12)
	r.Counter(`gossip_phase_ns_total{phase="plan"}`, "per-phase ns").Add(100)
	r.Counter(`gossip_phase_ns_total{phase="serve"}`, "per-phase ns").Add(200)
	r.Gauge("gossip_inbox_depth", "max inbox depth").Set(4)
	h := r.Histogram("gossip_tick_ns", "tick duration")
	h.Observe(2000)    // second bucket (1024 < 2000 <= 4096)
	h.Observe(5 << 30) // above every bound: +Inf bucket
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE gossip_ticks_total counter",
		"gossip_ticks_total 12",
		"# HELP gossip_phase_ns_total per-phase ns",
		`gossip_phase_ns_total{phase="plan"} 100`,
		`gossip_phase_ns_total{phase="serve"} 200`,
		"# TYPE gossip_inbox_depth gauge",
		"gossip_inbox_depth 4",
		"# TYPE gossip_tick_ns histogram",
		`gossip_tick_ns_bucket{le="4096"} 1`,
		`gossip_tick_ns_bucket{le="+Inf"} 2`,
		fmt.Sprintf("gossip_tick_ns_sum %d", int64(2000+5<<30)),
		"gossip_tick_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE once per family, even with several labeled series.
	if n := strings.Count(out, "# TYPE gossip_phase_ns_total"); n != 1 {
		t.Errorf("phase family TYPE emitted %d times", n)
	}
	snap := r.Snapshot()
	if snap["gossip_ticks_total"] != 12 || snap["gossip_tick_ns_count"] != 2 {
		t.Errorf("snapshot mismatch: %v", snap)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_ns", "d")
	for i := 0; i < 10; i++ {
		h.Observe(1) // all in the first bucket
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	// Every bucket line must carry the cumulative count 10.
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "d_ns_bucket") && !strings.HasSuffix(line, " 10") {
			t.Fatalf("non-cumulative bucket line: %q", line)
		}
	}
}

func TestTraceEmitAndValidate(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.Emit(TraceEvent{T: EvRunStart, Tick: 0, Scenario: "paper-single-switch", Algo: "fast", Nodes: 150, Seed: 42})
	tr.Emit(TraceEvent{T: EvTick, Tick: 0, NS: 123456})
	tr.Emit(TraceEvent{T: EvEvent, Tick: 40, Kind: "switch-planned", Node: P[int64](0), To: P[int64](7)})
	tr.Emit(TraceEvent{T: EvWindowOpen, Tick: 40, Window: P(0), Kind: "switch", Cohort: 148})
	tr.Emit(TraceEvent{T: EvSwitch, Tick: 40, Kind: "s1-end", Seg: P[int64](620)})
	tr.Emit(TraceEvent{T: EvRetry, Tick: 41, Dest: 2, Seq: 17})
	tr.Emit(TraceEvent{T: EvPartition, Tick: 42, Kind: "sever"})
	tr.Emit(TraceEvent{T: EvWindowClose, Tick: 55, Window: P(0), Measured: 15})
	tr.Emit(TraceEvent{T: EvRunEnd, Tick: 56, Windows: 1})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 9 {
		t.Fatalf("events = %d, want 9", tr.Events())
	}
	n, err := ValidateTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("emitted trace fails its own schema: %v", err)
	}
	if n != 9 {
		t.Fatalf("validated %d lines, want 9", n)
	}
	// Window 0 and node 0 must survive the optional-field encoding.
	if !strings.Contains(buf.String(), `"window":0`) {
		t.Errorf("window 0 dropped from the wire: %s", buf.String())
	}
	if !strings.Contains(buf.String(), `"node":0`) {
		t.Errorf("node 0 dropped from the wire: %s", buf.String())
	}
}

func TestValidateTraceRejects(t *testing.T) {
	cases := []string{
		`{"t":"nope","tick":1}`,                   // unknown type
		`{"t":"tick"}`,                            // no tick
		`{"t":"tick","tick":1}`,                   // tick without ns
		`{"t":"event","tick":1}`,                  // event without kind
		`{"t":"window-open","tick":1,"kind":"x"}`, // open without window index
		`not json`,                                // not JSON
	}
	for _, c := range cases {
		if err := ValidateTraceLine([]byte(c)); err == nil {
			t.Errorf("line %q validated, want error", c)
		}
	}
	if _, err := ValidateTrace(strings.NewReader("")); err == nil {
		t.Errorf("empty trace validated")
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	path := t.TempDir() + "/trace.json"
	c, err := OpenChrome(path)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now()
	c.Span("plan", 0, 1, base, 2*time.Millisecond)
	c.Span("serve", 0, 1, base.Add(2*time.Millisecond), 3*time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.Spans() != 2 {
		t.Fatalf("spans = %d, want 2", c.Spans())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []chromeEvent
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v\n%s", err, data)
	}
	if len(events) != 2 || events[0].Name != "plan" || events[1].Name != "serve" {
		t.Fatalf("unexpected events: %+v", events)
	}
	if events[0].Ph != "X" || events[0].Dur != 2000 {
		t.Fatalf("span shape wrong: %+v", events[0])
	}
}

func TestDebugEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("gossip_ticks_total", "ticks").Add(5)
	s, err := StartDebug("127.0.0.1:0", reg,
		func() any { return map[string]any{"status": "ok", "tick": 12} },
		func() any { return map[string]any{"tick": 12, "windows": 1} })
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}
	if out := get("/metrics"); !strings.Contains(out, "gossip_ticks_total 5") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/healthz"); !strings.Contains(out, `"status": "ok"`) {
		t.Errorf("/healthz body: %s", out)
	}
	if out := get("/runz"); !strings.Contains(out, `"windows": 1`) {
		t.Errorf("/runz body: %s", out)
	}
	if out := get("/debug/pprof/cmdline"); len(out) == 0 {
		t.Errorf("/debug/pprof/cmdline empty")
	}
}
