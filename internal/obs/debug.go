package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// The debug HTTP endpoint: Prometheus text-format /metrics from the
// registry, /healthz and /runz JSON snapshots from caller-supplied
// closures, and net/http/pprof under /debug/pprof/. The server binds
// first and serves in a background goroutine, so callers (and tests)
// learn the bound address synchronously and the run is never blocked.

// DebugServer is one bound debug endpoint.
type DebugServer struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// NewMux assembles the debug handler set. healthz and runz supply the
// JSON bodies of their endpoints; either may be nil (the endpoint then
// answers with a minimal liveness object).
func NewMux(reg *Registry, healthz, runz func() any) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthz != nil {
			writeJSON(w, healthz())
			return
		}
		writeJSON(w, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("/runz", func(w http.ResponseWriter, r *http.Request) {
		if runz != nil {
			writeJSON(w, runz())
			return
		}
		writeJSON(w, map[string]any{"status": "no run"})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebug binds addr (host:port; an empty host means all interfaces,
// port 0 means ephemeral) and serves the debug mux in the background.
func StartDebug(addr string, reg *Registry, healthz, runz func() any) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen %s: %w", addr, err)
	}
	s := &DebugServer{
		ln:    ln,
		srv:   &http.Server{Handler: NewMux(reg, healthz, runz)},
		start: time.Now(),
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr is the bound address (useful with an ephemeral port).
func (s *DebugServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Uptime is the time since the server started.
func (s *DebugServer) Uptime() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// Close shuts the server down.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
