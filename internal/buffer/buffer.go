// Package buffer implements the per-node segment buffer of the paper:
// capacity B segments, FIFO replacement, and position-from-tail queries.
//
// The FIFO discipline and the "position is the distance from the tail"
// convention come from Table 2 of the paper: new segments enter at the
// tail, the oldest segment is evicted from the head, and a segment's
// position p_ij grows from 1 (just inserted) to B (next to be evicted).
// Rarity (eq. 8) multiplies p_ij/B across suppliers, i.e. it treats the
// normalized position as the probability that the segment is about to be
// replaced in that supplier's buffer.
//
// Segment ids in a streaming session are dense integers starting near 0,
// so membership is indexed by a flat slice over the id space rather than a
// hash map: simulations hold one buffer per node for up to 10^4 nodes, and
// the flat index keeps Has/PositionFromTail at a few nanoseconds with no
// GC pressure.
package buffer

import (
	"fmt"

	"gossipstream/internal/bitfield"
	"gossipstream/internal/segment"
)

// Buffer is a fixed-capacity FIFO segment store. It is not safe for
// concurrent use; each simulated node owns exactly one.
type Buffer struct {
	capacity int
	ring     []segment.ID // ring buffer, oldest at head
	head     int
	size     int

	// Dense index over the id space: slot[id-base] = ring position + 1,
	// zero meaning absent. base only moves down (rare rebase on
	// out-of-range-low inserts); the slice grows upward as ids rise.
	base  segment.ID
	slots []int32

	maxSeen segment.ID // high-water mark of inserted ids (never decreases)
}

// New returns an empty buffer with the given capacity (the paper's B=600).
func New(capacity int) *Buffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("buffer: capacity %d must be positive", capacity))
	}
	return &Buffer{
		capacity: capacity,
		ring:     make([]segment.ID, capacity),
		// Pre-size the dense index to one capacity's worth of ids: the
		// warm-up stream fits without a single setSlot growth, and longer
		// streams fall back to amortized doubling.
		slots:   make([]int32, 0, capacity),
		base:    -1,
		maxSeen: segment.None,
	}
}

// Cap returns the buffer capacity B.
func (b *Buffer) Cap() int { return b.capacity }

// Len returns the number of segments currently held.
func (b *Buffer) Len() int { return b.size }

// MaxSeen returns the largest id ever inserted (segment.None when empty);
// it is an upper bound for MaxID and O(1).
func (b *Buffer) MaxSeen() segment.ID { return b.maxSeen }

func (b *Buffer) slotOf(id segment.ID) int32 {
	if b.base < 0 || id < b.base {
		return 0
	}
	off := int(id - b.base)
	if off >= len(b.slots) {
		return 0
	}
	return b.slots[off]
}

func (b *Buffer) setSlot(id segment.ID, v int32) {
	if b.base < 0 {
		b.base = id
	}
	if id < b.base {
		// Rebase downward: prepend space. Rare — ids almost always grow.
		shift := int(b.base - id)
		grown := make([]int32, shift+len(b.slots))
		copy(grown[shift:], b.slots)
		b.slots = grown
		b.base = id
	}
	off := int(id - b.base)
	for off >= len(b.slots) {
		if cap(b.slots) > off {
			b.slots = b.slots[:off+1]
		} else {
			b.slots = append(b.slots, make([]int32, off+1-len(b.slots))...)
		}
	}
	b.slots[off] = v
}

// Has reports whether the segment is in the buffer.
func (b *Buffer) Has(id segment.ID) bool {
	return id.Valid() && b.slotOf(id) != 0
}

// Insert adds a segment at the tail. If the buffer is full the oldest
// segment is evicted and returned; otherwise evicted is segment.None.
// Inserting a segment that is already present is a no-op (ok=false).
func (b *Buffer) Insert(id segment.ID) (evicted segment.ID, ok bool) {
	evicted = segment.None
	if !id.Valid() {
		panic("buffer: Insert of invalid segment id")
	}
	if b.Has(id) {
		return evicted, false
	}
	if b.size == b.capacity {
		evicted = b.ring[b.head]
		b.setSlot(evicted, 0)
		b.head = (b.head + 1) % b.capacity
		b.size--
	}
	slot := (b.head + b.size) % b.capacity
	b.ring[slot] = id
	b.setSlot(id, int32(slot)+1)
	b.size++
	if id > b.maxSeen {
		b.maxSeen = id
	}
	return evicted, true
}

// PositionFromTail returns a segment's FIFO position counted from the
// tail: 1 for the most recently inserted segment, Len() for the next
// segment to be evicted. It returns 0 when the segment is absent.
func (b *Buffer) PositionFromTail(id segment.ID) int {
	s := int(b.slotOf(id))
	if s == 0 {
		return 0
	}
	logical := (s - 1 - b.head + b.capacity) % b.capacity // 0 = oldest
	return b.size - logical
}

// Oldest returns the segment at the FIFO head (next eviction victim), or
// segment.None when empty.
func (b *Buffer) Oldest() segment.ID {
	if b.size == 0 {
		return segment.None
	}
	return b.ring[b.head]
}

// Newest returns the most recently inserted segment, or segment.None.
func (b *Buffer) Newest() segment.ID {
	if b.size == 0 {
		return segment.None
	}
	return b.ring[(b.head+b.size-1)%b.capacity]
}

// MinID returns the smallest segment id held, or segment.None when empty.
// Insertion order usually tracks id order, but pull scheduling fills holes
// out of order, so this is a scan over the FIFO contents.
func (b *Buffer) MinID() segment.ID {
	lowest := segment.None
	for i := 0; i < b.size; i++ {
		id := b.ring[(b.head+i)%b.capacity]
		if lowest == segment.None || id < lowest {
			lowest = id
		}
	}
	return lowest
}

// MaxID returns the largest segment id held, or segment.None when empty.
func (b *Buffer) MaxID() segment.ID {
	highest := segment.None
	for i := 0; i < b.size; i++ {
		id := b.ring[(b.head+i)%b.capacity]
		if id > highest {
			highest = id
		}
	}
	return highest
}

// Contents returns the held ids in FIFO order (oldest first). The slice is
// freshly allocated.
func (b *Buffer) Contents() []segment.ID {
	out := make([]segment.ID, 0, b.size)
	for i := 0; i < b.size; i++ {
		out = append(out, b.ring[(b.head+i)%b.capacity])
	}
	return out
}

// CountInRange returns how many held ids fall in r.
func (b *Buffer) CountInRange(r segment.Range) int {
	n := 0
	for id := r.Lo; id < r.Hi; id++ {
		if b.Has(id) {
			n++
		}
	}
	return n
}

// ConsecutiveFrom returns the length of the run of consecutively held
// segments starting at id (0 when id itself is absent). The playback
// startup rules (Q consecutive for S1, the first Qs for S2) are built on
// this query.
func (b *Buffer) ConsecutiveFrom(id segment.ID) int {
	n := 0
	for b.Has(id + segment.ID(n)) {
		n++
	}
	return n
}

// Map is a snapshot of buffer availability in the paper's wire format: a
// 20-bit anchor id plus one availability bit per buffer slot, covering ids
// [Anchor, Anchor+Cap). Ids outside the window are clipped (cannot happen
// while the stream lag stays under B segments, which holds in every
// experiment of the paper).
type Map struct {
	Anchor   segment.ID
	Capacity int
	Bits     *bitfield.Set
}

// Snapshot builds the availability map the node advertises to neighbors.
// The anchor is the smallest id held; an empty buffer yields an anchor of
// 0 and an all-clear map.
func (b *Buffer) Snapshot() *Map {
	if b.size == 0 {
		return &Map{Anchor: 0, Capacity: b.capacity, Bits: bitfield.New(b.capacity)}
	}
	return b.SnapshotFrom(b.MinID())
}

// SnapshotFrom builds the availability map for the window [anchor,
// anchor+B) — holdings outside it are clipped. A node whose buffer
// spans more than B ids (an ex-listener promoted to source keeps its
// old playback tail while generating at the live edge) must anchor its
// advertisement at the freshest window, maxSeen-B+1, or the map cannot
// represent the segments it is the unique supplier of; the live runtime
// (internal/runtime) advertises exactly that window.
func (b *Buffer) SnapshotFrom(anchor segment.ID) *Map {
	m := &Map{Anchor: 0, Capacity: b.capacity, Bits: bitfield.New(b.capacity)}
	return b.SnapshotInto(m, anchor)
}

// SnapshotInto refills dst in place with the window [anchor, anchor+B) —
// the allocation-free variant of SnapshotFrom for per-period
// advertisement loops. A nil dst, or one built for a different capacity,
// falls back to a fresh snapshot; either way the filled map is returned.
func (b *Buffer) SnapshotInto(dst *Map, anchor segment.ID) *Map {
	if dst == nil || dst.Bits == nil || dst.Bits.Len() != b.capacity {
		return b.SnapshotFrom(anchor)
	}
	if anchor < 0 {
		anchor = 0
	}
	dst.Anchor = anchor
	dst.Capacity = b.capacity
	dst.Bits.Reset()
	for i := 0; i < b.size; i++ {
		id := b.ring[(b.head+i)%b.capacity]
		off := int(id - anchor)
		if off >= 0 && off < b.capacity {
			dst.Bits.Set(off)
		}
	}
	return dst
}

// Has reports whether the map advertises the segment.
func (m *Map) Has(id segment.ID) bool {
	off := int(id - m.Anchor)
	if off < 0 || off >= m.Bits.Len() {
		return false
	}
	return m.Bits.Get(off)
}

// Count returns the number of advertised segments.
func (m *Map) Count() int { return m.Bits.Count() }

// Cap returns the capacity of the buffer the map describes, making *Map
// usable as a core.View.
func (m *Map) Cap() int { return m.Capacity }

// PositionFromTail estimates a segment's FIFO position from the map alone:
// the count of advertised segments with a higher id, plus one. When
// segments arrived in id order (the overwhelmingly common case in a
// streaming session) this equals the true FIFO position, which is what a
// real deployment — where only the wire map crosses the network — would
// compute for eq. (8). Returns 0 when the segment is absent.
func (m *Map) PositionFromTail(id segment.ID) int {
	if !m.Has(id) {
		return 0
	}
	pos := 1
	for i := m.Bits.NextSet(int(id-m.Anchor) + 1); i >= 0; i = m.Bits.NextSet(i + 1) {
		pos++
	}
	return pos
}

// WireBits returns the control-traffic cost of shipping this map once:
// the canonical 620 bits for B=600 (Section 5.3).
func (m *Map) WireBits() int { return bitfield.WireBits(m.Bits.Len()) }

// Encode serializes the map to the 620-bit wire image.
func (m *Map) Encode() ([]byte, error) {
	anchor := int64(m.Anchor)
	// The 20-bit anchor wraps daily in a real deployment; simulations never
	// exceed it, but the modulo keeps Encode total.
	anchor %= bitfield.MaxAnchor + 1
	return bitfield.Encode(anchor, m.Bits)
}

// DecodeMap parses a wire image for a buffer of the given capacity.
func DecodeMap(img []byte, capacity int) (*Map, error) {
	anchor, bits, err := bitfield.Decode(img, capacity)
	if err != nil {
		return nil, err
	}
	return &Map{Anchor: segment.ID(anchor), Capacity: capacity, Bits: bits}, nil
}
