package buffer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gossipstream/internal/segment"
)

func TestInsertAndHas(t *testing.T) {
	b := New(4)
	if b.Has(1) {
		t.Fatal("empty buffer has segment")
	}
	if ev, ok := b.Insert(1); !ok || ev != segment.None {
		t.Fatalf("Insert(1) = (%v, %v)", ev, ok)
	}
	if !b.Has(1) || b.Len() != 1 {
		t.Fatal("segment not stored")
	}
	if _, ok := b.Insert(1); ok {
		t.Fatal("duplicate insert must be a no-op")
	}
	if b.Len() != 1 {
		t.Fatal("duplicate insert changed length")
	}
}

func TestFIFOEviction(t *testing.T) {
	b := New(3)
	b.Insert(10)
	b.Insert(11)
	b.Insert(12)
	ev, ok := b.Insert(13)
	if !ok || ev != 10 {
		t.Fatalf("evicted %v, want 10", ev)
	}
	if b.Has(10) {
		t.Error("evicted segment still present")
	}
	// Eviction follows insertion order even when ids arrive out of order.
	b = New(3)
	b.Insert(20)
	b.Insert(5) // older id inserted later
	b.Insert(30)
	ev, _ = b.Insert(40)
	if ev != 20 {
		t.Fatalf("evicted %v, want first-inserted 20", ev)
	}
	ev, _ = b.Insert(50)
	if ev != 5 {
		t.Fatalf("evicted %v, want second-inserted 5", ev)
	}
}

func TestPositionFromTail(t *testing.T) {
	b := New(5)
	for id := segment.ID(0); id < 5; id++ {
		b.Insert(id)
	}
	// Newest (id 4) has position 1; oldest (id 0) position 5 (Table 2).
	for id := segment.ID(0); id < 5; id++ {
		want := 5 - int(id)
		if got := b.PositionFromTail(id); got != want {
			t.Errorf("position of %d = %d, want %d", id, got, want)
		}
	}
	if got := b.PositionFromTail(99); got != 0 {
		t.Errorf("position of absent segment = %d, want 0", got)
	}
	// After eviction, positions shift.
	b.Insert(5) // evicts 0
	if got := b.PositionFromTail(1); got != 5 {
		t.Errorf("position of oldest after eviction = %d, want 5", got)
	}
	if got := b.PositionFromTail(5); got != 1 {
		t.Errorf("position of newest = %d, want 1", got)
	}
}

func TestOldestNewestMinMax(t *testing.T) {
	b := New(4)
	if b.Oldest() != segment.None || b.Newest() != segment.None {
		t.Fatal("empty buffer Oldest/Newest must be None")
	}
	if b.MinID() != segment.None || b.MaxID() != segment.None {
		t.Fatal("empty buffer MinID/MaxID must be None")
	}
	b.Insert(7)
	b.Insert(3)
	b.Insert(9)
	if b.Oldest() != 7 || b.Newest() != 9 {
		t.Fatalf("Oldest=%v Newest=%v", b.Oldest(), b.Newest())
	}
	if b.MinID() != 3 || b.MaxID() != 9 {
		t.Fatalf("MinID=%v MaxID=%v", b.MinID(), b.MaxID())
	}
	if b.MaxSeen() != 9 {
		t.Fatalf("MaxSeen=%v", b.MaxSeen())
	}
}

func TestContentsOrder(t *testing.T) {
	b := New(3)
	b.Insert(4)
	b.Insert(2)
	b.Insert(8)
	b.Insert(6) // evicts 4
	got := b.Contents()
	want := []segment.ID{2, 8, 6}
	if len(got) != len(want) {
		t.Fatalf("contents %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("contents %v, want %v", got, want)
		}
	}
}

func TestConsecutiveFrom(t *testing.T) {
	b := New(10)
	for _, id := range []segment.ID{5, 6, 7, 9} {
		b.Insert(id)
	}
	if got := b.ConsecutiveFrom(5); got != 3 {
		t.Errorf("ConsecutiveFrom(5) = %d, want 3", got)
	}
	if got := b.ConsecutiveFrom(8); got != 0 {
		t.Errorf("ConsecutiveFrom(8) = %d, want 0", got)
	}
	if got := b.ConsecutiveFrom(9); got != 1 {
		t.Errorf("ConsecutiveFrom(9) = %d, want 1", got)
	}
}

func TestCountInRange(t *testing.T) {
	b := New(10)
	for id := segment.ID(10); id < 20; id += 2 {
		b.Insert(id)
	}
	if got := b.CountInRange(segment.Range{Lo: 10, Hi: 20}); got != 5 {
		t.Errorf("CountInRange = %d, want 5", got)
	}
	if got := b.CountInRange(segment.Range{Lo: 11, Hi: 12}); got != 0 {
		t.Errorf("CountInRange = %d, want 0", got)
	}
}

func TestRebaseOnLowInsert(t *testing.T) {
	b := New(8)
	b.Insert(1000)
	b.Insert(995) // forces a downward rebase of the dense index
	b.Insert(1001)
	for _, id := range []segment.ID{1000, 995, 1001} {
		if !b.Has(id) {
			t.Errorf("segment %d lost after rebase", id)
		}
	}
	if b.Has(996) || b.Has(999) {
		t.Error("phantom segments after rebase")
	}
}

func TestSnapshotAndWire(t *testing.T) {
	b := New(600)
	for id := segment.ID(100); id < 160; id++ {
		if id%7 != 0 {
			b.Insert(id)
		}
	}
	m := b.Snapshot()
	if m.Anchor != 100 && b.MinID() != m.Anchor {
		t.Fatalf("anchor %d, want MinID %d", m.Anchor, b.MinID())
	}
	for id := segment.ID(90); id < 170; id++ {
		if m.Has(id) != b.Has(id) {
			t.Fatalf("map/buffer disagree at %d", id)
		}
	}
	if m.WireBits() != 620 {
		t.Fatalf("WireBits = %d, want 620", m.WireBits())
	}
	img, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeMap(img, 600)
	if err != nil {
		t.Fatal(err)
	}
	if back.Anchor != m.Anchor || back.Count() != m.Count() {
		t.Fatalf("decoded anchor=%d count=%d, want %d/%d", back.Anchor, back.Count(), m.Anchor, m.Count())
	}
}

func TestMapPositionEstimateMatchesInOrderBuffer(t *testing.T) {
	// When segments arrive in id order, the wire map's position estimate
	// equals the true FIFO position (the basis for using eq. 8 from local
	// information only).
	b := New(50)
	for id := segment.ID(0); id < 50; id++ {
		b.Insert(id)
	}
	m := b.Snapshot()
	for id := segment.ID(0); id < 50; id++ {
		if got, want := m.PositionFromTail(id), b.PositionFromTail(id); got != want {
			t.Fatalf("position estimate of %d = %d, true = %d", id, got, want)
		}
	}
}

func TestQuickFIFOInvariants(t *testing.T) {
	// Properties: Len <= Cap; eviction count = inserts - Len; all held ids
	// are distinct; position-from-tail is a bijection onto [1, Len].
	f := func(raw []uint16, capRaw uint8) bool {
		capacity := 1 + int(capRaw)%64
		b := New(capacity)
		inserted := 0
		for _, r := range raw {
			if _, ok := b.Insert(segment.ID(r)); ok {
				inserted++
			}
		}
		if b.Len() > capacity {
			return false
		}
		contents := b.Contents()
		if len(contents) != b.Len() {
			return false
		}
		seenPos := map[int]bool{}
		seenID := map[segment.ID]bool{}
		for _, id := range contents {
			if seenID[id] {
				return false
			}
			seenID[id] = true
			p := b.PositionFromTail(id)
			if p < 1 || p > b.Len() || seenPos[p] {
				return false
			}
			seenPos[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSnapshotAgreesWithHas(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := New(64)
		base := segment.ID(rng.Intn(100))
		for i := 0; i < int(n); i++ {
			b.Insert(base + segment.ID(rng.Intn(64)))
		}
		m := b.Snapshot()
		for id := base - 5; id < base+70; id++ {
			if id.Valid() && m.Has(id) != b.Has(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	buf := New(600)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Insert(segment.ID(i))
	}
}

func BenchmarkHas(b *testing.B) {
	buf := New(600)
	for i := 0; i < 600; i++ {
		buf.Insert(segment.ID(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Has(segment.ID(i % 900))
	}
}

func BenchmarkPositionFromTail(b *testing.B) {
	buf := New(600)
	for i := 0; i < 600; i++ {
		buf.Insert(segment.ID(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.PositionFromTail(segment.ID(i % 600))
	}
}
