package chaos

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

// The OS-process fault driver: real fail-stop for multi-process tests.
// A worker run with -stats-every 1 prints the live runtime's per-tick
// stats marker ("live: tick N/D ..."); WatchTick scans that stream for
// a target tick, and KillAtTick SIGKILLs the process the moment the
// marker passes — a deterministic-enough trigger (tick-quantized) for
// a genuinely asynchronous death.

// tickMarker matches the runner's periodic stats line.
var tickMarker = regexp.MustCompile(`live: tick (\d+)/`)

// WatchTick consumes r line by line until the stats marker reports a
// tick >= target, then sends true. If the stream ends first (the
// process died or never printed), it sends false. The channel receives
// exactly one value.
func WatchTick(r io.Reader, target int) <-chan bool {
	ch := make(chan bool, 1)
	go func() {
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			m := tickMarker.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			if n, err := strconv.Atoi(m[1]); err == nil && n >= target {
				ch <- true
				// Keep draining so the watched process never blocks on a
				// full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		ch <- false
	}()
	return ch
}

// KillAtTick watches the process's output stream for the target tick
// and SIGKILLs it (os.Process.Kill — no handler, no cleanup, the real
// fail-stop). Returns nil once the kill is delivered, or an error when
// the stream ended before the tick was reached.
func KillAtTick(p *os.Process, out io.Reader, tick int) error {
	if !<-WatchTick(out, tick) {
		return fmt.Errorf("chaos: output ended before tick %d; nothing killed", tick)
	}
	return p.Kill()
}
