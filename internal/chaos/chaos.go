// Package chaos is the deterministic fault-injection layer for the
// cluster runtime: a seeded FaultPlan scripts worker failures (kill at
// a tick, hang for a stretch, drop control acks, delay status reports),
// and an Injector executes one worker's share of the plan at the
// cluster agent's seams. The same faults drive two test styles: the
// in-process harness (the agent consults its Injector every tick) and
// the OS-process SIGKILL driver in proc.go, which watches a worker's
// stats stream and kills the real process at the scripted tick.
//
// The package is dependency-free by design — internal/cluster imports
// it, never the other way around.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Kind enumerates injectable faults.
type Kind uint8

const (
	// Kill fail-stops the worker at the fault's tick: the agent aborts
	// its peers, closes its control socket and returns ErrKilled — from
	// the cluster's point of view, a crash.
	Kill Kind = iota + 1
	// Hang wedges the worker's run loop for Ticks scheduling periods
	// (statuses stop; the link's reader keeps answering keepalives).
	Hang
	// DropAcks suppresses the worker's outbound control acks for Ticks
	// periods; directives still apply, but the coordinator's reliable
	// layer must ride its retries until the window closes.
	DropAcks
	// DelayReports holds every status cast inside the window [Tick,
	// Tick+Ticks) back by Ticks periods — a late, bursty status stream.
	DelayReports
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Kill:
		return "kill"
	case Hang:
		return "hang"
	case DropAcks:
		return "drop-acks"
	case DelayReports:
		return "delay-reports"
	}
	return "fault(?)"
}

// ErrKilled is the error a chaos-killed agent returns — the expected
// outcome tests assert with errors.Is.
var ErrKilled = errors.New("chaos: fail-stop injected")

// Fault is one scripted failure: shard Shard suffers Kind at tick Tick,
// lasting Ticks periods where the kind has a duration.
type Fault struct {
	Shard int
	Tick  int
	Kind  Kind
	Ticks int
}

// Plan is a scripted fault timeline for one cluster run.
type Plan struct {
	Faults []Fault
}

// Validate rejects malformed plans (unknown kinds, negative ticks,
// missing durations).
func (p *Plan) Validate() error {
	for i, f := range p.Faults {
		if f.Kind < Kill || f.Kind > DelayReports {
			return fmt.Errorf("chaos: fault %d: unknown kind %d", i, f.Kind)
		}
		if f.Shard < 0 || f.Tick < 0 {
			return fmt.Errorf("chaos: fault %d: negative shard or tick", i)
		}
		if f.Kind != Kill && f.Ticks <= 0 {
			return fmt.Errorf("chaos: fault %d: %v needs a positive duration", i, f.Kind)
		}
	}
	return nil
}

// Generate draws a seeded random plan over worker shards 1..shards-1
// with fault ticks inside the first half of the horizon — the same
// plan for the same seed on every run and machine.
func Generate(seed int64, shards, horizon int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	p := &Plan{}
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		f := Fault{
			Shard: 1 + rng.Intn(shards-1),
			Tick:  horizon/10 + rng.Intn(horizon/2-horizon/10+1),
			Kind:  Kind(1 + rng.Intn(4)),
			Ticks: 2 + rng.Intn(9),
		}
		p.Faults = append(p.Faults, f)
	}
	return p
}

// Step is what an Injector tells the agent to do this tick.
type Step struct {
	Kill      bool
	HangTicks int
}

// Injector executes one shard's share of a Plan. Step is called from
// the agent's run loop once per tick; DropAcksActive is consulted from
// the link's reader goroutine, hence the lock.
type Injector struct {
	mu      sync.Mutex
	shard   int
	pending []Fault // this shard's faults, sorted by tick
	killed  bool

	tick       int
	acksUntil  int
	delayUntil int
	delayTicks int
}

// NewInjector builds the injector for one shard; faults for other
// shards are ignored.
func NewInjector(p *Plan, shard int) *Injector {
	in := &Injector{shard: shard}
	if p == nil {
		return in
	}
	for _, f := range p.Faults {
		if f.Shard == shard {
			in.pending = append(in.pending, f)
		}
	}
	sort.SliceStable(in.pending, func(i, j int) bool {
		return in.pending[i].Tick < in.pending[j].Tick
	})
	return in
}

// Step fires every fault due at or before the tick and returns the run
// loop's marching orders. Windowed faults (DropAcks, DelayReports)
// arm their windows here and are enforced by the accessors below.
func (in *Injector) Step(tick int) Step {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.tick = tick
	var st Step
	for len(in.pending) > 0 && in.pending[0].Tick <= tick {
		f := in.pending[0]
		in.pending = in.pending[1:]
		switch f.Kind {
		case Kill:
			st.Kill = true
			in.killed = true
		case Hang:
			st.HangTicks += f.Ticks
		case DropAcks:
			if until := tick + f.Ticks; until > in.acksUntil {
				in.acksUntil = until
			}
		case DelayReports:
			in.delayUntil = tick + f.Ticks
			in.delayTicks = f.Ticks
		}
	}
	return st
}

// DropAcksActive reports whether an ack-drop window covers the last
// stepped tick (reader-goroutine safe).
func (in *Injector) DropAcksActive() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.tick < in.acksUntil
}

// StatusDelay returns how many periods to hold this tick's status cast
// back (0 outside any delay window).
func (in *Injector) StatusDelay(tick int) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	if tick < in.delayUntil {
		return in.delayTicks
	}
	return 0
}

// Killed reports whether the kill fault has fired.
func (in *Injector) Killed() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.killed
}
