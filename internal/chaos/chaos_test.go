package chaos

import (
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestPlanValidate(t *testing.T) {
	good := &Plan{Faults: []Fault{
		{Shard: 1, Tick: 10, Kind: Kill},
		{Shard: 2, Tick: 5, Kind: Hang, Ticks: 3},
		{Shard: 1, Tick: 0, Kind: DropAcks, Ticks: 1},
		{Shard: 3, Tick: 7, Kind: DelayReports, Ticks: 4},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []*Plan{
		{Faults: []Fault{{Shard: 1, Tick: 1, Kind: 0}}},
		{Faults: []Fault{{Shard: 1, Tick: 1, Kind: DelayReports + 1}}},
		{Faults: []Fault{{Shard: -1, Tick: 1, Kind: Kill}}},
		{Faults: []Fault{{Shard: 1, Tick: -1, Kind: Kill}}},
		{Faults: []Fault{{Shard: 1, Tick: 1, Kind: Hang}}}, // missing duration
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(42, 4, 100)
	b := Generate(42, 4, 100)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different plans:\n%+v\n%+v", a, b)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	for i, f := range a.Faults {
		if f.Shard < 1 || f.Shard >= 4 {
			t.Errorf("fault %d targets shard %d outside worker range [1,4)", i, f.Shard)
		}
		if f.Tick < 10 || f.Tick > 50 {
			t.Errorf("fault %d at tick %d outside [horizon/10, horizon/2]", i, f.Tick)
		}
	}
	if c := Generate(43, 4, 100); reflect.DeepEqual(a, c) {
		t.Log("seeds 42 and 43 drew identical plans (possible, but worth a look)")
	}
}

func TestInjectorFiresOnlyOwnShard(t *testing.T) {
	p := &Plan{Faults: []Fault{
		{Shard: 1, Tick: 5, Kind: Kill},
		{Shard: 2, Tick: 5, Kind: Hang, Ticks: 3},
	}}
	in := NewInjector(p, 2)
	for tick := 0; tick <= 10; tick++ {
		st := in.Step(tick)
		if st.Kill {
			t.Fatalf("tick %d: shard 2's injector fired shard 1's kill", tick)
		}
		if tick == 5 && st.HangTicks != 3 {
			t.Fatalf("tick 5: HangTicks = %d, want 3", st.HangTicks)
		}
		if tick != 5 && st.HangTicks != 0 {
			t.Fatalf("tick %d: spurious hang %d", tick, st.HangTicks)
		}
	}
	if in.Killed() {
		t.Fatal("shard 2 marked killed by shard 1's fault")
	}
}

func TestInjectorKillAndWindows(t *testing.T) {
	p := &Plan{Faults: []Fault{
		{Shard: 1, Tick: 3, Kind: DropAcks, Ticks: 4},
		{Shard: 1, Tick: 4, Kind: DelayReports, Ticks: 2},
		{Shard: 1, Tick: 8, Kind: Kill},
	}}
	in := NewInjector(p, 1)

	in.Step(2)
	if in.DropAcksActive() {
		t.Fatal("drop-acks active before its window")
	}
	in.Step(3)
	if !in.DropAcksActive() {
		t.Fatal("drop-acks inactive at window open")
	}
	if d := in.StatusDelay(3); d != 0 {
		t.Fatalf("StatusDelay(3) = %d before the delay window", d)
	}
	in.Step(4)
	if d := in.StatusDelay(4); d != 2 {
		t.Fatalf("StatusDelay(4) = %d, want 2", d)
	}
	in.Step(6)
	if !in.DropAcksActive() {
		t.Fatal("drop-acks inactive inside the [3, 7) window")
	}
	if d := in.StatusDelay(6); d != 0 {
		t.Fatalf("StatusDelay(6) = %d after the delay window", d)
	}
	in.Step(7)
	if in.DropAcksActive() {
		t.Fatal("drop-acks still active at tick 3+4")
	}
	if st := in.Step(8); !st.Kill || !in.Killed() {
		t.Fatalf("kill did not fire at its tick: %+v killed=%v", st, in.Killed())
	}
}

func TestInjectorLateStepCatchesUp(t *testing.T) {
	// A hung run loop that skips ticks still fires every fault due at or
	// before the tick it wakes up on.
	p := &Plan{Faults: []Fault{
		{Shard: 1, Tick: 2, Kind: Hang, Ticks: 5},
		{Shard: 1, Tick: 4, Kind: Kill},
	}}
	in := NewInjector(p, 1)
	st := in.Step(9)
	if !st.Kill || st.HangTicks != 5 {
		t.Fatalf("late step got %+v, want kill with 5 hang ticks", st)
	}
}

func TestWatchTick(t *testing.T) {
	out := strings.NewReader(
		"cluster: joined 127.0.0.1:9 as shard 1/3\n" +
			"live: tick 10/90 peers=30 idle=false\n" +
			"noise line\n" +
			"live: tick 12/90 peers=30 idle=false\n" +
			"live: tick 14/90 peers=30 idle=false\n")
	if !<-WatchTick(out, 12) {
		t.Fatal("marker at tick 12 not seen")
	}
	if <-WatchTick(strings.NewReader("live: tick 5/90\n"), 12) {
		t.Fatal("reported a tick the stream never reached")
	}
	if <-WatchTick(io.MultiReader(), 1) {
		t.Fatal("empty stream reported a tick")
	}
}
