package overlay

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddRemoveEdge(t *testing.T) {
	g := New(4)
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge failed")
	}
	if g.AddEdge(0, 1) || g.AddEdge(1, 0) {
		t.Error("duplicate edge accepted")
	}
	if g.AddEdge(2, 2) {
		t.Error("self-loop accepted")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if !g.HasEdge(1, 0) {
		t.Error("undirected edge not symmetric")
	}
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge failed")
	}
	if g.RemoveEdge(0, 1) {
		t.Error("removing absent edge succeeded")
	}
	if g.M() != 0 || g.Degree(0) != 0 {
		t.Error("edge not fully removed")
	}
}

func TestDegreesAndAverages(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if g.Degree(0) != 3 || g.Degree(1) != 1 {
		t.Fatal("degrees wrong")
	}
	if g.MinDegree() != 1 {
		t.Errorf("MinDegree = %d", g.MinDegree())
	}
	if got := g.AvgDegree(); got != 1.5 {
		t.Errorf("AvgDegree = %v, want 1.5", got)
	}
}

func TestComponentsAndConnectivity(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 { // {0,1}, {2,3,4}, {5}
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if g.Connected() {
		t.Error("disconnected graph reports connected")
	}
	rng := rand.New(rand.NewSource(1))
	EnsureConnected(g, rng)
	if !g.Connected() {
		t.Error("EnsureConnected failed")
	}
}

func TestBFSDepths(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	d := g.BFSDepths(0)
	want := []int{0, 1, 2, 3, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("depth[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestAddNodeAndClearNode(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	id := g.AddNode()
	if id != 3 || g.N() != 4 {
		t.Fatalf("AddNode id=%d N=%d", id, g.N())
	}
	g.AddEdge(id, 0)
	former := g.ClearNode(0)
	if len(former) != 3 {
		t.Fatalf("ClearNode returned %d neighbors, want 3", len(former))
	}
	if g.Degree(0) != 0 || g.M() != 0 {
		t.Error("ClearNode left edges behind")
	}
	for _, v := range former {
		if g.HasEdge(0, v) {
			t.Errorf("edge to %d survived ClearNode", v)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Clone()
	c.AddEdge(1, 2)
	if g.HasEdge(1, 2) {
		t.Error("mutating clone changed original")
	}
	if c.M() != 2 || g.M() != 1 {
		t.Error("edge counts wrong after clone")
	}
}

func TestAugmentMinDegree(t *testing.T) {
	// The paper's preparation: sparse crawl topologies are augmented until
	// every node holds M=5 neighbors; the result must be connected.
	for _, n := range []int{10, 100, 500} {
		rng := rand.New(rand.NewSource(int64(n)))
		g := Generate(KindPreferential, n, 1, rng)
		AugmentMinDegree(g, 5, rng)
		if got := g.MinDegree(); got < 5 {
			t.Errorf("n=%d: min degree %d after augmentation", n, got)
		}
		if !g.Connected() {
			t.Errorf("n=%d: augmented graph disconnected", n)
		}
	}
}

func TestGenerateFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, kind := range []GeneratorKind{KindPreferential, KindUniform, KindRing} {
		g := Generate(kind, 200, 2, rng)
		if g.N() != 200 {
			t.Fatalf("kind %d: N = %d", kind, g.N())
		}
		if g.M() == 0 {
			t.Fatalf("kind %d: no edges", kind)
		}
		if !g.Connected() && kind != KindPreferential {
			// Uniform/ring attach every node to an earlier one or a ring —
			// always connected. Preferential may isolate stragglers before
			// augmentation; that is the crawls' realism.
			t.Errorf("kind %d: disconnected", kind)
		}
	}
}

func TestPreferentialSkew(t *testing.T) {
	// Preferential attachment should produce a heavier-tailed degree
	// distribution than uniform attachment: its max degree dominates.
	rng := rand.New(rand.NewSource(11))
	pa := Generate(KindPreferential, 2000, 1, rng)
	uni := Generate(KindUniform, 2000, 1, rng)
	maxDeg := func(g *Graph) int {
		m := 0
		for u := 0; u < g.N(); u++ {
			if d := g.Degree(NodeID(u)); d > m {
				m = d
			}
		}
		return m
	}
	if maxDeg(pa) <= maxDeg(uni) {
		t.Errorf("preferential max degree %d not above uniform %d", maxDeg(pa), maxDeg(uni))
	}
}

func TestQuickEdgeSymmetry(t *testing.T) {
	f := func(pairs []uint16) bool {
		g := New(64)
		for _, p := range pairs {
			u, v := NodeID(p%64), NodeID((p/64)%64)
			g.AddEdge(u, v)
		}
		// Symmetry + degree sum = 2M.
		sum := 0
		for u := 0; u < g.N(); u++ {
			sum += g.Degree(NodeID(u))
			for _, v := range g.Neighbors(NodeID(u)) {
				if !g.HasEdge(v, NodeID(u)) {
					return false
				}
			}
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAugmentMinDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		g := Generate(KindPreferential, 1000, 1, rng)
		AugmentMinDegree(g, 5, rng)
	}
}
