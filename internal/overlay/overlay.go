// Package overlay provides the undirected overlay graphs the simulations
// run on: construction, the paper's random-edge augmentation to M
// connected neighbors per node, connectivity checks, and generators for
// Gnutella-like topologies standing in for the dead dss.clip2.com traces
// (see DESIGN.md, substitution table).
package overlay

import (
	"fmt"
	"math/rand"
	"sort"
)

// NodeID indexes a node in a graph; ids are dense in [0, N).
type NodeID int

// Graph is a simple undirected graph (no self-loops, no multi-edges).
// It is not safe for concurrent mutation.
type Graph struct {
	adj   [][]NodeID
	edges int
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("overlay: negative node count %d", n))
	}
	return &Graph{adj: make([][]NodeID, n)}
}

// N returns the node count.
func (g *Graph) N() int { return len(g.adj) }

// M returns the edge count.
func (g *Graph) M() int { return g.edges }

// Degree returns the degree of u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// Neighbors returns u's adjacency list. The slice is owned by the graph;
// callers must not mutate it.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj[u] }

// HasEdge reports whether {u,v} is present.
func (g *Graph) HasEdge(u, v NodeID) bool {
	// Scan the shorter list; degrees are tiny (≈M) in every workload.
	a, b := u, v
	if len(g.adj[b]) < len(g.adj[a]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// AddEdge inserts the undirected edge {u,v}; it reports false for
// self-loops and duplicates.
func (g *Graph) AddEdge(u, v NodeID) bool {
	if u == v || g.HasEdge(u, v) {
		return false
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges++
	return true
}

// AddNode grows the graph by one isolated node and returns its id.
// Supports the dynamic-environment experiments, where 5% of nodes join
// per scheduling period.
func (g *Graph) AddNode() NodeID {
	g.adj = append(g.adj, nil)
	return NodeID(len(g.adj) - 1)
}

// ClearNode removes every edge incident to u (the node slot itself
// remains, as dense ids are load-bearing for the simulator). It returns
// the former neighbors.
func (g *Graph) ClearNode(u NodeID) []NodeID {
	former := append([]NodeID(nil), g.adj[u]...)
	for _, v := range former {
		removeFrom(&g.adj[v], u)
		g.edges--
	}
	g.adj[u] = g.adj[u][:0]
	return former
}

// RemoveEdge deletes the undirected edge {u,v}; it reports whether the
// edge existed.
func (g *Graph) RemoveEdge(u, v NodeID) bool {
	if !removeFrom(&g.adj[u], v) {
		return false
	}
	removeFrom(&g.adj[v], u)
	g.edges--
	return true
}

func removeFrom(list *[]NodeID, v NodeID) bool {
	l := *list
	for i, w := range l {
		if w == v {
			l[i] = l[len(l)-1]
			*list = l[:len(l)-1]
			return true
		}
	}
	return false
}

// MinDegree returns the smallest degree in the graph (0 for empty graphs).
func (g *Graph) MinDegree() int {
	if g.N() == 0 {
		return 0
	}
	deg := len(g.adj[0])
	for _, l := range g.adj[1:] {
		deg = min(deg, len(l))
	}
	return deg
}

// AvgDegree returns the mean degree.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(g.N())
}

// Connected reports whether the graph is a single connected component.
func (g *Graph) Connected() bool {
	if g.N() == 0 {
		return true
	}
	return len(g.componentFrom(0)) == g.N()
}

// Components returns the connected components, each sorted ascending,
// ordered by their smallest member.
func (g *Graph) Components() [][]NodeID {
	seen := make([]bool, g.N())
	var comps [][]NodeID
	for u := 0; u < g.N(); u++ {
		if seen[u] {
			continue
		}
		comp := g.componentFrom(NodeID(u))
		for _, v := range comp {
			seen[v] = true
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

func (g *Graph) componentFrom(start NodeID) []NodeID {
	seen := make(map[NodeID]bool, 64)
	queue := []NodeID{start}
	seen[start] = true
	var out []NodeID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		out = append(out, u)
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return out
}

// BFSDepths returns each node's hop distance from start (-1 when
// unreachable). Used by tests and by the experiment harness to report
// propagation depth.
func (g *Graph) BFSDepths(start NodeID) []int {
	depth := make([]int, g.N())
	for i := range depth {
		depth[i] = -1
	}
	depth[start] = 0
	queue := []NodeID{start}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.adj[u] {
			if depth[v] < 0 {
				depth[v] = depth[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return depth
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	c := New(g.N())
	c.edges = g.edges
	for u, l := range g.adj {
		c.adj[u] = append([]NodeID(nil), l...)
	}
	return c
}

// AugmentMinDegree adds uniformly random edges until every node has at
// least m neighbors — the paper's preparation step: "we add random edges
// into each overlay to let every node hold M=5 connected neighbors"
// (Section 5.1). The result is also made connected (random components are
// bridged first, which the M=5 requirement almost always implies anyway).
func AugmentMinDegree(g *Graph, m int, rng *rand.Rand) {
	if m >= g.N() {
		panic(fmt.Sprintf("overlay: cannot reach min degree %d with %d nodes", m, g.N()))
	}
	EnsureConnected(g, rng)
	// Collect nodes below target degree and keep wiring random pairs.
	deficient := make([]NodeID, 0, g.N())
	for u := 0; u < g.N(); u++ {
		if g.Degree(NodeID(u)) < m {
			deficient = append(deficient, NodeID(u))
		}
	}
	for len(deficient) > 0 {
		u := deficient[len(deficient)-1]
		if g.Degree(u) >= m {
			deficient = deficient[:len(deficient)-1]
			continue
		}
		// Prefer pairing two deficient nodes so the augmentation stays
		// close to the target degree; fall back to any random node.
		var v NodeID
		if len(deficient) > 1 && rng.Intn(2) == 0 {
			v = deficient[rng.Intn(len(deficient)-1)]
		} else {
			v = NodeID(rng.Intn(g.N()))
		}
		if u == v || g.HasEdge(u, v) {
			// Dense corner: retry with a fresh uniform pick; progress is
			// guaranteed because m < N.
			v = NodeID(rng.Intn(g.N()))
			if u == v || g.HasEdge(u, v) {
				continue
			}
		}
		g.AddEdge(u, v)
	}
}

// EnsureConnected bridges components with random edges until the graph is
// connected.
func EnsureConnected(g *Graph, rng *rand.Rand) {
	comps := g.Components()
	for len(comps) > 1 {
		// Link a random member of each subsequent component to a random
		// member of the first (growing) one.
		base := comps[0]
		next := comps[1]
		u := base[rng.Intn(len(base))]
		v := next[rng.Intn(len(next))]
		g.AddEdge(u, v)
		base = append(base, next...)
		comps = append([][]NodeID{base}, comps[2:]...)
	}
}

// GeneratorKind names a synthetic topology family.
type GeneratorKind int

// Topology generator families.
const (
	// KindPreferential grows a preferential-attachment graph: power-law-ish
	// degrees, low average degree — the closest stand-in for 2000/2001
	// Gnutella crawls.
	KindPreferential GeneratorKind = iota
	// KindUniform wires each node to k uniform random earlier nodes.
	KindUniform
	// KindRing is a ring plus random chords (small-world-ish); used in
	// tests for its predictable structure.
	KindRing
)

// Generate builds a topology of the given family with n nodes. attach
// controls the edges contributed per arriving node (the Gnutella crawls'
// average degree was well under M; 1-2 is faithful).
func Generate(kind GeneratorKind, n, attach int, rng *rand.Rand) *Graph {
	if attach < 1 {
		attach = 1
	}
	g := New(n)
	switch kind {
	case KindPreferential:
		generatePreferential(g, attach, rng)
	case KindUniform:
		for u := 1; u < n; u++ {
			for e := 0; e < attach; e++ {
				v := NodeID(rng.Intn(u))
				g.AddEdge(NodeID(u), v)
			}
		}
	case KindRing:
		for u := 0; u < n; u++ {
			g.AddEdge(NodeID(u), NodeID((u+1)%n))
		}
		for e := 0; e < n*(attach-1); e++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			g.AddEdge(u, v)
		}
	default:
		panic(fmt.Sprintf("overlay: unknown generator kind %d", int(kind)))
	}
	return g
}

// generatePreferential implements a Barabási–Albert-style process using a
// repeated-endpoint urn: each new node attaches `attach` edges to
// endpoints sampled proportionally to degree.
func generatePreferential(g *Graph, attach int, rng *rand.Rand) {
	n := g.N()
	if n == 0 {
		return
	}
	if n == 1 {
		return
	}
	// Seed with a small clique so early picks have endpoints.
	seed := attach + 1
	if seed > n {
		seed = n
	}
	var urn []NodeID
	for u := 0; u < seed; u++ {
		for v := 0; v < u; v++ {
			if g.AddEdge(NodeID(u), NodeID(v)) {
				urn = append(urn, NodeID(u), NodeID(v))
			}
		}
	}
	for u := seed; u < n; u++ {
		added := 0
		for tries := 0; added < attach && tries < attach*8; tries++ {
			var v NodeID
			if len(urn) == 0 {
				v = NodeID(rng.Intn(u))
			} else {
				v = urn[rng.Intn(len(urn))]
			}
			if g.AddEdge(NodeID(u), v) {
				urn = append(urn, NodeID(u), v)
				added++
			}
		}
	}
}
