// Package model implements the paper's analytic source-switch model
// (Section 3) and its bandwidth-constrained refinement (Section 4).
//
// A node splits its constant inbound rate I into I1 (receiving the old
// source S1) and I2 (receiving the new source S2) to minimize
//
//	T2 = Q2/I2   subject to   T2 >= T1' = Q1/I1 + Q/p,
//
// where Q1 is the number of undelivered S1 segments, Q2 the number of S2
// segments still needed to start playback, Q the consecutive-segment
// startup threshold of S1, and p the playback rate. The closed-form
// optimum is I1 = r1 (eq. 4), I2 = I - r1. When the neighborhood can only
// supply S1 at rate O1 and S2 at rate O2, the split degrades through the
// four cases of Section 4.
package model

import (
	"errors"
	"fmt"
	"math"
)

// Params carries the model inputs of Table 1. All quantities are in
// segments and segments/second.
type Params struct {
	Q  float64 // consecutive segments required to play S1
	Q1 float64 // undelivered segments of S1
	Q2 float64 // undelivered segments of S2 (initially Qs)
	P  float64 // playback rate, segments/second
	I  float64 // total inbound rate, segments/second
}

// Validate checks the parameter domain.
func (p Params) Validate() error {
	switch {
	case p.Q <= 0:
		return fmt.Errorf("model: Q=%v must be positive", p.Q)
	case p.P <= 0:
		return fmt.Errorf("model: p=%v must be positive", p.P)
	case p.I <= 0:
		return fmt.Errorf("model: I=%v must be positive", p.I)
	case p.Q1 < 0 || p.Q2 < 0:
		return fmt.Errorf("model: Q1=%v, Q2=%v must be non-negative", p.Q1, p.Q2)
	case math.IsNaN(p.Q) || math.IsNaN(p.Q1) || math.IsNaN(p.Q2) || math.IsNaN(p.P) || math.IsNaN(p.I):
		return errors.New("model: NaN parameter")
	}
	return nil
}

// Roots returns both roots r1 >= r1' of the quadratic (2):
//
//	I1^2 + (p(Q1+Q2)/Q - I) I1 - pIQ1/Q = 0.
//
// The paper shows r1' < 0 whenever Q1 > 0, so only r1 is meaningful; both
// are exposed for the property tests that verify that claim.
func (p Params) Roots() (r1, r1p float64) {
	b := p.P*(p.Q1+p.Q2)/p.Q - p.I
	c := -p.P * p.I * p.Q1 / p.Q
	disc := b*b - 4*c
	if disc < 0 {
		// b^2 - 4c = b^2 + 4pIQ1/Q >= b^2 >= 0 analytically; guard against
		// float rounding only.
		disc = 0
	}
	sq := math.Sqrt(disc)
	r1 = (-b + sq) / 2
	r1p = (-b - sq) / 2
	return r1, r1p
}

// OptimalSplit returns the unconstrained optimum I1 = r1, I2 = I - r1
// (eq. 4-5). The result is clamped to [0, I] against float rounding.
func (p Params) OptimalSplit() (i1, i2 float64) {
	r1, _ := p.Roots()
	if r1 < 0 {
		r1 = 0
	}
	if r1 > p.I {
		r1 = p.I
	}
	return r1, p.I - r1
}

// Times evaluates the schedule for a given split: T1 (time to receive the
// rest of S1), T1' (time to finish playing S1) and T2 (time to gather the
// first Qs segments of S2). A zero rate with a zero backlog costs zero
// time; a zero rate with a positive backlog costs +Inf.
func (p Params) Times(i1, i2 float64) (t1, t1p, t2 float64) {
	t1 = safeDiv(p.Q1, i1)
	t1p = t1 + p.Q/p.P
	t2 = safeDiv(p.Q2, i2)
	return t1, t1p, t2
}

// SwitchTime returns the startup delay of the new source under a split:
// the playback of S2 starts at max(T1', T2) (the two start conditions of
// Section 1).
func (p Params) SwitchTime(i1, i2 float64) float64 {
	_, t1p, t2 := p.Times(i1, i2)
	return math.Max(t1p, t2)
}

func safeDiv(q, rate float64) float64 {
	if q <= 0 {
		return 0
	}
	if rate <= 0 {
		return math.Inf(1)
	}
	return q / rate
}

// Case identifies which of Section 4's four feasibility cases produced a
// constrained split.
type Case int

// The four cases of Section 4, in the paper's numbering.
const (
	// CaseUnconstrained: r1 <= O1 and r2 <= O2 — the optimum is feasible.
	CaseUnconstrained Case = 1 + iota
	// CaseS2Limited: r2 > O2 — S2 supply is the bottleneck.
	CaseS2Limited
	// CaseS1Limited: r1 > O1 — S1 supply is the bottleneck.
	CaseS1Limited
	// CaseBothLimited: both supplies bind.
	CaseBothLimited
)

// String implements fmt.Stringer.
func (c Case) String() string {
	switch c {
	case CaseUnconstrained:
		return "case1(unconstrained)"
	case CaseS2Limited:
		return "case2(S2-limited)"
	case CaseS1Limited:
		return "case3(S1-limited)"
	case CaseBothLimited:
		return "case4(both-limited)"
	}
	return fmt.Sprintf("case(%d)", int(c))
}

// Split is a resolved inbound allocation.
type Split struct {
	I1, I2 float64
	Case   Case
}

// ConstrainedSplit applies the four cases of Section 4 given the available
// supply rates O1 (old source) and O2 (new source):
//
//	case 1: r1<=O1, r2<=O2  -> I1=r1,               I2=r2
//	case 2: r1<=O1, r2>O2   -> I1=min(O1, I-O2),    I2=O2
//	case 3: r1>O1,  r2<=O2  -> I1=O1,               I2=min(O2, I-O1)
//	case 4: r1>O1,  r2>O2   -> I1=O1,               I2=O2
func (p Params) ConstrainedSplit(o1, o2 float64) Split {
	if o1 < 0 {
		o1 = 0
	}
	if o2 < 0 {
		o2 = 0
	}
	r1, r2 := p.OptimalSplit()
	switch {
	case r1 <= o1 && r2 <= o2:
		return Split{I1: r1, I2: r2, Case: CaseUnconstrained}
	case r1 <= o1 && r2 > o2:
		return Split{I1: math.Min(o1, p.I-o2), I2: o2, Case: CaseS2Limited}
	case r1 > o1 && r2 <= o2:
		return Split{I1: o1, I2: math.Min(o2, p.I-o1), Case: CaseS1Limited}
	default:
		return Split{I1: o1, I2: o2, Case: CaseBothLimited}
	}
}

// NormalSplit is the baseline allocation of Section 5.1: give the old
// source strict priority — fill I1 with as much S1 supply as the inbound
// allows, then hand whatever is left to S2.
func (p Params) NormalSplit(o1, o2 float64) Split {
	if o1 < 0 {
		o1 = 0
	}
	if o2 < 0 {
		o2 = 0
	}
	i1 := math.Min(p.I, o1)
	// Retrieving more S1 supply than the remaining backlog is useless; the
	// practical scheduler only ever offers Q1 segments, mirrored here.
	if i1 > p.Q1 {
		i1 = p.Q1
	}
	i2 := math.Min(p.I-i1, o2)
	if i2 > p.Q2 {
		i2 = p.Q2
	}
	return Split{I1: i1, I2: i2, Case: CaseBothLimited}
}
