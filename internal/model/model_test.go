package model

import (
	"math"
	"testing"
	"testing/quick"
)

// paperParams returns the Section 5.1 defaults with a given backlog state.
func paperParams(q1, q2 float64) Params {
	return Params{Q: 10, Q1: q1, Q2: q2, P: 10, I: 15}
}

func TestValidate(t *testing.T) {
	if err := paperParams(100, 50).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Q: 0, Q1: 1, Q2: 1, P: 10, I: 15},
		{Q: 10, Q1: 1, Q2: 1, P: 0, I: 15},
		{Q: 10, Q1: 1, Q2: 1, P: 10, I: 0},
		{Q: 10, Q1: -1, Q2: 1, P: 10, I: 15},
		{Q: 10, Q1: 1, Q2: -1, P: 10, I: 15},
		{Q: math.NaN(), Q1: 1, Q2: 1, P: 10, I: 15},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestRootsSatisfyQuadratic(t *testing.T) {
	// Both roots must satisfy I1² + (p(Q1+Q2)/Q − I)·I1 − pIQ1/Q = 0 (eq. 2).
	p := paperParams(150, 50)
	r1, r1p := p.Roots()
	for _, r := range []float64{r1, r1p} {
		b := p.P*(p.Q1+p.Q2)/p.Q - p.I
		c := -p.P * p.I * p.Q1 / p.Q
		residual := r*r + b*r + c
		if math.Abs(residual) > 1e-6 {
			t.Errorf("root %v residual %v", r, residual)
		}
	}
}

func TestNegativeRootClaim(t *testing.T) {
	// The paper: "Clearly r1' < 0 and thus r1' is not a reasonable
	// solution" — holds whenever Q1 > 0.
	f := func(q1, q2, i uint16) bool {
		p := Params{Q: 10, Q1: 1 + float64(q1%2000), Q2: float64(q2 % 2000), P: 10, I: 10 + float64(i%24)}
		_, r1p := p.Roots()
		return r1p < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOptimalSplitBounds(t *testing.T) {
	// 0 <= r1 <= I and r1 + r2 = I for any valid parameters.
	f := func(q1, q2, i uint16) bool {
		p := Params{Q: 10, Q1: float64(q1 % 3000), Q2: float64(q2 % 3000), P: 10, I: 10 + float64(i%24)}
		i1, i2 := p.OptimalSplit()
		return i1 >= 0 && i1 <= p.I && math.Abs(i1+i2-p.I) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOptimumBalancesDeadlines(t *testing.T) {
	// At the optimum the constraint is tight: T2 = T1' (the fast switch
	// "splits the difference"). Requires both backlogs positive.
	f := func(q1r, q2r, ir uint16) bool {
		p := Params{Q: 10, Q1: 1 + float64(q1r%2000), Q2: 1 + float64(q2r%2000), P: 10, I: 10 + float64(ir%24)}
		i1, i2 := p.OptimalSplit()
		if i1 <= 0 || i2 <= 0 {
			return true // degenerate corner: nothing to balance
		}
		_, t1p, t2 := p.Times(i1, i2)
		return math.Abs(t1p-t2) < 1e-6*math.Max(1, t2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOptimumIsFeasibleAndMinimal(t *testing.T) {
	// No feasible static split (T2 >= T1') achieves smaller T2 than the
	// closed form — verified by scanning I1 on a grid.
	for _, q1 := range []float64{1, 40, 150, 400} {
		for _, q2 := range []float64{10, 50, 120} {
			p := paperParams(q1, q2)
			i1Opt, i2Opt := p.OptimalSplit()
			_, t1pOpt, t2Opt := p.Times(i1Opt, i2Opt)
			if t2Opt < t1pOpt-1e-9 {
				t.Fatalf("Q1=%v Q2=%v: optimum infeasible (T2=%v < T1'=%v)", q1, q2, t2Opt, t1pOpt)
			}
			for i1 := 0.01; i1 < p.I; i1 += 0.01 {
				_, t1p, t2 := p.Times(i1, p.I-i1)
				if t2 >= t1p && t2 < t2Opt-1e-6 {
					t.Fatalf("Q1=%v Q2=%v: grid split I1=%v beats optimum (%v < %v)",
						q1, q2, i1, t2, t2Opt)
				}
			}
		}
	}
}

func TestZeroQ2GivesAllToOld(t *testing.T) {
	// With no new-source demand the whole inbound goes to S1: analytically
	// r1 = I exactly (the quadratic becomes a perfect square).
	for _, q1 := range []float64{1, 10, 500} {
		p := paperParams(q1, 0)
		i1, i2 := p.OptimalSplit()
		if math.Abs(i1-p.I) > 1e-9 || i2 > 1e-9 {
			t.Errorf("Q1=%v: split = (%v, %v), want (I, 0)", q1, i1, i2)
		}
	}
}

func TestZeroQ1LeavesPlaybackConstraint(t *testing.T) {
	// With nothing left of S1, the constraint degenerates to
	// T2 >= Q/p, so r1 = max(0, I − p·Q2/Q).
	p := paperParams(0, 50)
	i1, _ := p.OptimalSplit()
	want := math.Max(0, p.I-p.P*p.Q2/p.Q)
	if math.Abs(i1-want) > 1e-9 {
		t.Errorf("r1 = %v, want %v", i1, want)
	}
}

func TestTimes(t *testing.T) {
	p := paperParams(100, 50)
	t1, t1p, t2 := p.Times(10, 5)
	if t1 != 10 {
		t.Errorf("T1 = %v, want 10", t1)
	}
	if t1p != 11 { // + Q/p = 1s
		t.Errorf("T1' = %v, want 11", t1p)
	}
	if t2 != 10 {
		t.Errorf("T2 = %v, want 10", t2)
	}
	// Zero rate with backlog: infinite; zero backlog: zero.
	_, _, t2inf := p.Times(15, 0)
	if !math.IsInf(t2inf, 1) {
		t.Errorf("T2 with zero rate = %v, want +Inf", t2inf)
	}
	pz := paperParams(0, 0)
	t1z, _, t2z := pz.Times(0, 0)
	if t1z != 0 || t2z != 0 {
		t.Errorf("zero-backlog times = %v, %v", t1z, t2z)
	}
}

func TestSwitchTime(t *testing.T) {
	p := paperParams(100, 50)
	got := p.SwitchTime(10, 5)
	if got != 11 { // max(11, 10)
		t.Errorf("SwitchTime = %v, want 11", got)
	}
}

func TestConstrainedSplitCases(t *testing.T) {
	p := paperParams(150, 50)
	r1, r2 := p.OptimalSplit()

	cases := []struct {
		o1, o2 float64
		want   Case
	}{
		{r1 + 1, r2 + 1, CaseUnconstrained},
		{r1 + 1, r2 / 2, CaseS2Limited},
		{r1 / 2, r2 + 1, CaseS1Limited},
		{r1 / 2, r2 / 2, CaseBothLimited},
	}
	for _, c := range cases {
		got := p.ConstrainedSplit(c.o1, c.o2)
		if got.Case != c.want {
			t.Errorf("O1=%v O2=%v: case %v, want %v", c.o1, c.o2, got.Case, c.want)
		}
	}
}

func TestConstrainedSplitRespectsLimits(t *testing.T) {
	// In every case: I1 <= O1 (case 2-4), I2 <= O2 (case 2-4),
	// I1+I2 <= I, and all non-negative.
	f := func(q1, q2, o1r, o2r uint16) bool {
		p := paperParams(float64(q1%1000), float64(q2%300))
		o1 := float64(o1r % 40)
		o2 := float64(o2r % 40)
		s := p.ConstrainedSplit(o1, o2)
		if s.I1 < 0 || s.I2 < 0 {
			return false
		}
		if s.I1+s.I2 > p.I+1e-9 {
			return false
		}
		if s.Case != CaseUnconstrained && s.I1 > o1+1e-9 && s.I2 > o2+1e-9 {
			return false
		}
		switch s.Case {
		case CaseS2Limited, CaseBothLimited:
			if s.I2 > o2+1e-9 {
				return false
			}
		}
		switch s.Case {
		case CaseS1Limited, CaseBothLimited:
			if s.I1 > o1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalSplitPriority(t *testing.T) {
	p := paperParams(150, 50)
	// Plenty of S1 supply: everything goes to S1.
	s := p.NormalSplit(100, 100)
	if s.I1 != p.I || s.I2 != 0 {
		t.Errorf("normal split with rich S1 supply = (%v, %v), want (I, 0)", s.I1, s.I2)
	}
	// S1 supply-limited: leftover flows to S2.
	s = p.NormalSplit(6, 100)
	if s.I1 != 6 || s.I2 != 9 {
		t.Errorf("normal split = (%v, %v), want (6, 9)", s.I1, s.I2)
	}
	// Small backlog: no point exceeding it.
	pSmall := paperParams(4, 50)
	s = pSmall.NormalSplit(100, 100)
	if s.I1 != 4 || s.I2 != 11 {
		t.Errorf("normal split small backlog = (%v, %v), want (4, 11)", s.I1, s.I2)
	}
}

func TestCaseString(t *testing.T) {
	for c, want := range map[Case]string{
		CaseUnconstrained: "case1(unconstrained)",
		CaseS2Limited:     "case2(S2-limited)",
		CaseS1Limited:     "case3(S1-limited)",
		CaseBothLimited:   "case4(both-limited)",
		Case(99):          "case(99)",
	} {
		if got := c.String(); got != want {
			t.Errorf("Case(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}

func BenchmarkOptimalSplit(b *testing.B) {
	p := paperParams(150, 50)
	for i := 0; i < b.N; i++ {
		p.OptimalSplit()
	}
}

func BenchmarkConstrainedSplit(b *testing.B) {
	p := paperParams(150, 50)
	for i := 0; i < b.N; i++ {
		p.ConstrainedSplit(12, 4)
	}
}
