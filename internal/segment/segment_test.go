package segment

import (
	"testing"
	"testing/quick"
)

func TestIDValid(t *testing.T) {
	if None.Valid() {
		t.Error("None must not be valid")
	}
	if !ID(0).Valid() {
		t.Error("id 0 must be valid")
	}
	if !ID(1 << 40).Valid() {
		t.Error("large ids must be valid")
	}
	if ID(-7).Valid() {
		t.Error("negative ids must not be valid")
	}
}

func TestIDString(t *testing.T) {
	if got := None.String(); got != "seg(none)" {
		t.Errorf("None.String() = %q", got)
	}
	if got := ID(42).String(); got != "seg(42)" {
		t.Errorf("ID(42).String() = %q", got)
	}
}

func TestSessionOpenClose(t *testing.T) {
	tl := NewTimeline(3)
	cur := tl.Current()
	if !cur.Open() {
		t.Fatal("fresh timeline session must be open")
	}
	if cur.Begin != 0 {
		t.Fatalf("first session begins at %d, want 0", cur.Begin)
	}
	if cur.Len() != -1 {
		t.Errorf("open session Len = %d, want -1", cur.Len())
	}
	if !cur.Contains(1_000_000) {
		t.Error("open session must contain any future id")
	}
	closed := tl.Close(99)
	if closed.Open() {
		t.Error("closed session reports open")
	}
	if closed.Len() != 100 {
		t.Errorf("closed session Len = %d, want 100", closed.Len())
	}
	if closed.Contains(100) {
		t.Error("closed session must not contain ids past End")
	}
	if !closed.Contains(99) || !closed.Contains(0) {
		t.Error("closed session must contain its range")
	}
}

func TestTimelineAppend(t *testing.T) {
	tl := NewTimeline(1)
	if _, err := tl.Append(2); err != ErrOpenTail {
		t.Fatalf("Append on open tail: err = %v, want ErrOpenTail", err)
	}
	tl.Close(49)
	s2, err := tl.Append(2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Begin != 50 {
		t.Errorf("idbegin = %d, want idend+1 = 50", s2.Begin)
	}
	if !s2.Open() {
		t.Error("appended session must be open")
	}
	if got := len(tl.Sessions()); got != 2 {
		t.Errorf("session count = %d, want 2", got)
	}
}

func TestTimelineSessionOf(t *testing.T) {
	tl := NewTimeline(1)
	tl.Close(49)
	tl.Append(2)
	tl.Close(120)
	tl.Append(3)

	cases := []struct {
		id   ID
		want SourceID
		ok   bool
	}{
		{0, 1, true}, {49, 1, true}, {50, 2, true}, {120, 2, true},
		{121, 3, true}, {1 << 30, 3, true}, {None, -1, false},
	}
	for _, c := range cases {
		s, ok := tl.SessionOf(c.id)
		if ok != c.ok {
			t.Errorf("SessionOf(%d) ok = %v, want %v", c.id, ok, c.ok)
			continue
		}
		if ok && s.Source != c.want {
			t.Errorf("SessionOf(%d) source = %d, want %d", c.id, s.Source, c.want)
		}
	}
}

func TestTimelineManySessions(t *testing.T) {
	tl := NewTimeline(0)
	end := ID(-1)
	for i := 1; i <= 20; i++ {
		end += 100
		tl.Close(end)
		if _, err := tl.Append(SourceID(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Every id maps to the session that owns its century.
	for id := ID(0); id < 2000; id += 37 {
		s, ok := tl.SessionOf(id)
		if !ok {
			t.Fatalf("SessionOf(%d) missed", id)
		}
		if want := SourceID(id / 100); s.Source != want {
			t.Fatalf("SessionOf(%d) source = %d, want %d", id, s.Source, want)
		}
	}
}

func TestClosePanics(t *testing.T) {
	tl := NewTimeline(1)
	tl.Close(10)
	defer func() {
		if recover() == nil {
			t.Error("Close on a closed session must panic")
		}
	}()
	tl.Close(20)
}

func TestRangeBasics(t *testing.T) {
	r := Range{Lo: 10, Hi: 20}
	if r.Empty() || r.Len() != 10 {
		t.Fatalf("range %v: empty=%v len=%d", r, r.Empty(), r.Len())
	}
	if !r.Contains(10) || r.Contains(20) || r.Contains(9) {
		t.Error("half-open containment wrong")
	}
	if (Range{Lo: 5, Hi: 5}).Len() != 0 {
		t.Error("empty range must have zero length")
	}
}

func TestRangeIntersect(t *testing.T) {
	cases := []struct {
		a, b, want Range
	}{
		{Range{0, 10}, Range{5, 15}, Range{5, 10}},
		{Range{0, 10}, Range{10, 20}, Range{10, 10}},
		{Range{0, 10}, Range{20, 30}, Range{20, 20}},
		{Range{3, 7}, Range{0, 100}, Range{3, 7}},
	}
	for _, c := range cases {
		got := c.a.Intersect(c.b)
		if got.Len() != c.want.Len() || (!got.Empty() && got.Lo != c.want.Lo) {
			t.Errorf("%v ∩ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRangeIntersectProperties(t *testing.T) {
	// Intersection is commutative in content and never grows either side.
	f := func(aLo, aLen, bLo, bLen uint16) bool {
		a := Range{Lo: ID(aLo), Hi: ID(aLo) + ID(aLen)}
		b := Range{Lo: ID(bLo), Hi: ID(bLo) + ID(bLen)}
		ab, ba := a.Intersect(b), b.Intersect(a)
		if ab.Len() != ba.Len() {
			return false
		}
		if ab.Len() > a.Len() || ab.Len() > b.Len() {
			return false
		}
		// Every id in the intersection lies in both inputs.
		for id := ab.Lo; id < ab.Hi; id += 13 {
			if !a.Contains(id) || !b.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
