// Package segment defines the stream data model shared by every other
// package in gossipstream: segment identifiers, source sessions, and the
// arithmetic that relates segment ids to playback time.
//
// The paper ("Fast Source Switching for Gossip-based Peer-to-Peer
// Streaming", ICPP 2008) uses a single monotonically increasing id space
// across serial sources: when the old source S1 ends at segment idend, the
// new source S2 begins at idbegin = idend+1 (Table 2). A Session describes
// one source's contiguous id range inside that space.
package segment

import (
	"errors"
	"fmt"
)

// ID identifies one data segment in the global id space. IDs start at 0
// and increase by one per generated segment. The paper budgets 20 bits for
// an id anchor in the buffer-map wire format because a source emits at most
// 10*3600*24 = 864000 segments per day (Section 5.3); we use a wider Go
// integer internally and enforce the 20-bit bound only at the wire layer.
type ID int64

// None is the sentinel for "no segment". All valid IDs are >= 0.
const None ID = -1

// Valid reports whether the id denotes a real segment.
func (id ID) Valid() bool { return id >= 0 }

// String implements fmt.Stringer.
func (id ID) String() string {
	if id == None {
		return "seg(none)"
	}
	return fmt.Sprintf("seg(%d)", int64(id))
}

// SourceID identifies a streaming source (a node acting as speaker).
type SourceID int

// Session is one source's contiguous range of the global id space.
// End == None while the source is still streaming (open session).
type Session struct {
	Source SourceID
	Begin  ID
	End    ID // inclusive; None while open
}

// Open reports whether the session is still generating segments.
func (s Session) Open() bool { return s.End == None }

// Contains reports whether id belongs to this session. Open sessions
// contain every id at or after Begin.
func (s Session) Contains(id ID) bool {
	if !id.Valid() || id < s.Begin {
		return false
	}
	return s.Open() || id <= s.End
}

// Len returns the number of segments in a closed session, or -1 while the
// session is open.
func (s Session) Len() int {
	if s.Open() {
		return -1
	}
	return int(s.End - s.Begin + 1)
}

// String implements fmt.Stringer.
func (s Session) String() string {
	if s.Open() {
		return fmt.Sprintf("session(src=%d, [%d..))", s.Source, s.Begin)
	}
	return fmt.Sprintf("session(src=%d, [%d..%d])", s.Source, s.Begin, s.End)
}

// ErrOverlap is returned by Timeline.Append when a new session would
// overlap the id range of the previous one.
var ErrOverlap = errors.New("segment: session overlaps previous session")

// ErrOpenTail is returned by Timeline.Append when the previous session has
// not been closed yet.
var ErrOpenTail = errors.New("segment: previous session still open")

// Timeline is the ordered list of serial source sessions. The paper's
// scenario is exactly a timeline of length two (S1 then S2), but the
// conference example replays many hand-offs, so the type supports any
// number of serial sessions.
type Timeline struct {
	sessions []Session
}

// NewTimeline returns a timeline with a single open session for the first
// source, beginning at id 0.
func NewTimeline(first SourceID) *Timeline {
	return &Timeline{sessions: []Session{{Source: first, Begin: 0, End: None}}}
}

// Sessions returns a copy of the session list in order.
func (t *Timeline) Sessions() []Session {
	out := make([]Session, len(t.sessions))
	copy(out, t.sessions)
	return out
}

// SessionsInto overwrites dst with the session list and returns it,
// reusing dst's backing array when it is large enough — the
// allocation-free variant for per-tick snapshots.
func (t *Timeline) SessionsInto(dst []Session) []Session {
	return append(dst[:0], t.sessions...)
}

// Current returns the most recent session.
func (t *Timeline) Current() Session { return t.sessions[len(t.sessions)-1] }

// Close ends the current session at end (inclusive). It returns the closed
// session. Closing an already-closed timeline or moving the end before the
// session's begin is a programming error and panics: session bookkeeping is
// driven by the simulator, never by external input.
func (t *Timeline) Close(end ID) Session {
	cur := &t.sessions[len(t.sessions)-1]
	if !cur.Open() {
		panic("segment: Close on closed session")
	}
	if end < cur.Begin-1 {
		panic(fmt.Sprintf("segment: Close(%d) before session begin %d", end, cur.Begin))
	}
	cur.End = end
	return *cur
}

// Append starts a new open session for source immediately after the
// previous session's end (idbegin = idend+1, Table 2).
func (t *Timeline) Append(source SourceID) (Session, error) {
	prev := t.Current()
	if prev.Open() {
		return Session{}, ErrOpenTail
	}
	s := Session{Source: source, Begin: prev.End + 1, End: None}
	t.sessions = append(t.sessions, s)
	return s, nil
}

// SessionOf returns the session containing id and true, or a zero Session
// and false when id precedes the timeline or is invalid.
func (t *Timeline) SessionOf(id ID) (Session, bool) {
	if !id.Valid() {
		return Session{}, false
	}
	// Serial sessions are ordered by Begin; binary search is overkill for
	// the 2-3 sessions real runs use, but keeps SessionOf O(log n) for the
	// conference example's long timelines.
	lo, hi := 0, len(t.sessions)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		s := t.sessions[mid]
		switch {
		case id < s.Begin:
			hi = mid - 1
		case s.Contains(id):
			return s, true
		default:
			lo = mid + 1
		}
	}
	return Segmentless, false
}

// Segmentless is the zero Session returned on lookup misses.
var Segmentless = Session{Source: -1, Begin: None, End: None}

// Range is a half-open interval of ids [Lo, Hi). It is the currency of
// "which segments do I still need" computations.
type Range struct {
	Lo, Hi ID
}

// Empty reports whether the range contains no ids.
func (r Range) Empty() bool { return r.Hi <= r.Lo }

// Len returns the number of ids in the range.
func (r Range) Len() int {
	if r.Empty() {
		return 0
	}
	return int(r.Hi - r.Lo)
}

// Contains reports whether id lies in [Lo, Hi).
func (r Range) Contains(id ID) bool { return id >= r.Lo && id < r.Hi }

// Intersect returns the overlap of two ranges (possibly empty).
func (r Range) Intersect(o Range) Range {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	if hi < lo {
		hi = lo
	}
	return Range{Lo: lo, Hi: hi}
}

// String implements fmt.Stringer.
func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }
