// Churnstorm: the dynamic environment of Section 5.4, pushed harder. The
// paper churns 5% of the nodes per scheduling period; this example sweeps
// churn from 0% to 10% and reports how the source switch degrades — and
// that the gossip membership keeps the mesh connected enough for the
// switch to complete at all.
//
//	go run ./examples/churnstorm
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gossipstream/internal/overlay"
	"gossipstream/internal/sim"
	"gossipstream/internal/trace"
)

func main() {
	fmt.Println("source switch under churn (N=300, 5 neighbors, paper defaults)")
	fmt.Println("churn/period   fast prep(s)   normal prep(s)   survivors prepared")
	for _, churn := range []float64{0, 0.02, 0.05, 0.10} {
		fast := stormRun(churn, sim.Fast)
		normal := stormRun(churn, sim.Normal)
		fmt.Printf("%11.0f%%   %12.2f   %14.2f   %9d / %d\n",
			churn*100, fast.AvgPrepareS2(), normal.AvgPrepareS2(),
			len(fast.PrepareS2Times), fast.Cohort)
	}
	fmt.Println("\nnodes that leave mid-switch stop counting; joiners adopt their")
	fmt.Println("neighbors' playback position and are not part of the switch cohort")
	fmt.Println("(Section 5.4 semantics).")
}

func stormRun(churn float64, factory sim.AlgorithmFactory) *sim.Result {
	tr := trace.Synthesize("churnstorm", 300, 1, 77)
	g, err := tr.Graph()
	if err != nil {
		log.Fatal(err)
	}
	overlay.AugmentMinDegree(g, 5, rand.New(rand.NewSource(77)))
	cfg := sim.Config{
		Graph:           g,
		Seed:            99,
		NewAlgorithm:    factory,
		FirstSource:     -1,
		NewSource:       -1,
		WarmupTicks:     40,
		JoinSpreadTicks: 25,
		SharedOutbound:  true,
	}
	if churn > 0 {
		cfg.Churn = &sim.ChurnConfig{LeaveFraction: churn, JoinFraction: churn}
	}
	s, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}
