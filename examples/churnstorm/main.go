// Churnstorm: the dynamic environment of Section 5.4, pushed harder. The
// paper churns 5% of the nodes per scheduling period; this example keeps
// a 2% baseline and breaks churn *storms* of growing intensity over the
// source switch — each storm a ChurnBurst event of the scenario engine —
// and reports how the switch degrades, and that the gossip membership
// keeps the mesh connected enough for the switch to complete at all.
//
//	go run ./examples/churnstorm
package main

import (
	"fmt"
	"log"

	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
)

func main() {
	fmt.Println("source switch under churn storms (N=300, 5 neighbors, 2% baseline churn)")
	fmt.Println("storm/period   fast prep(s)   normal prep(s)   survivors prepared")
	for _, storm := range []float64{0, 0.02, 0.05, 0.10} {
		sc := stormScenario(storm)
		fast, err := sc.Run(sim.Fast)
		if err != nil {
			log.Fatal(err)
		}
		normal, err := sc.Run(sim.Normal)
		if err != nil {
			log.Fatal(err)
		}
		fw, nw := fast.Windows[0], normal.Windows[0]
		fmt.Printf("%11.0f%%   %12.2f   %14.2f   %9d / %d\n",
			storm*100, fw.AvgPrepareS2(), nw.AvgPrepareS2(),
			len(fw.PrepareS2Times), fw.Cohort)
	}
	fmt.Println("\nnodes that leave mid-switch stop counting; joiners adopt their")
	fmt.Println("neighbors' playback position and are not part of the switch cohort")
	fmt.Println("(Section 5.4 semantics). The storm rages from 10 ticks before the")
	fmt.Println("switch until 20 after it.")
}

// stormScenario is the churn-storm library scenario at one storm level: a
// 2% churn baseline with a burst breaking over the switch.
func stormScenario(storm float64) *scenario.Scenario {
	sc := &scenario.Scenario{
		Name:       "churnstorm-example",
		Desc:       "a churn storm breaks over the source switch",
		Nodes:      300,
		M:          5,
		Seed:       77,
		Spread:     25,
		Horizon:    250,
		ChurnLeave: 0.02,
		ChurnJoin:  0.02,
		Events: []sim.Event{
			sim.SwitchAt(40, -1),
		},
	}
	if storm > 0 {
		sc.Events = append([]sim.Event{sim.ChurnBurstAt(30, 30, storm, storm)}, sc.Events...)
	}
	return sc
}
