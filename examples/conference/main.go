// Conference: the paper's motivating scenario — a video conference where
// "every member can become the streaming source but there is usually only
// one source (that is the speaker) at a time" (Section 1).
//
// Five speakers take the floor in turn; each hand-off is a measured source
// switch. The example reports per-hand-off switch times for the fast and
// normal algorithms, plus the parallel-source rate split (the paper's
// future-work extension) for a panel segment where two speakers overlap.
//
//	go run ./examples/conference
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gossipstream/internal/core"
	"gossipstream/internal/overlay"
	"gossipstream/internal/sim"
	"gossipstream/internal/trace"
)

const members = 400

func main() {
	fmt.Printf("conference with %d members, 5 speakers in turn\n\n", members)

	speakers := []overlay.NodeID{3, 41, 97, 155, 289}
	fmt.Println("hand-off            fast(s)  normal(s)  reduction")
	var fastTotal, normalTotal float64
	for i := 0; i+1 < len(speakers); i++ {
		fast := handoff(speakers[i], speakers[i+1], int64(i), sim.Fast)
		normal := handoff(speakers[i], speakers[i+1], int64(i), sim.Normal)
		red := (normal - fast) / normal
		fmt.Printf("speaker %3d -> %3d  %7.2f  %9.2f  %8.1f%%\n",
			speakers[i], speakers[i+1], fast, normal, red*100)
		fastTotal += fast
		normalTotal += normal
	}
	fmt.Printf("total switching     %7.2f  %9.2f  %8.1f%%\n\n",
		fastTotal, normalTotal, (normalTotal-fastTotal)/normalTotal*100)

	// Panel segment: two speakers live at once. The serial switch model no
	// longer applies; the parallel extension splits a listener's inbound
	// across both live streams by equalizing deadline lateness.
	fmt.Println("panel segment: two live speakers, one listener with I=15 seg/s")
	demands := []core.ParallelDemand{
		{Backlog: 80, Deadline: 6, Supply: 9},  // main camera, behind
		{Backlog: 30, Deadline: 8, Supply: 12}, // slides stream
	}
	rates, err := core.ParallelSplit(15, demands)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range rates {
		fmt.Printf("  stream %d: backlog=%3.0f due in %2.0fs supply<=%2.0f -> allocated %.2f seg/s\n",
			i+1, demands[i].Backlog, demands[i].Deadline, demands[i].Supply, r)
	}
	fmt.Printf("  worst lateness: %.2f s\n", core.ParallelLateness(rates, demands))
}

// handoff simulates one speaker change and returns the average preparing
// time of the new speaker's stream.
func handoff(from, to overlay.NodeID, seed int64, factory sim.AlgorithmFactory) float64 {
	tr := trace.Synthesize("conference", members, 1, 1000+seed)
	g, err := tr.Graph()
	if err != nil {
		log.Fatal(err)
	}
	overlay.AugmentMinDegree(g, 5, rand.New(rand.NewSource(seed)))
	s, err := sim.New(sim.Config{
		Graph:           g,
		Seed:            seed,
		NewAlgorithm:    factory,
		FirstSource:     from,
		NewSource:       to,
		SharedOutbound:  true,
		WarmupTicks:     40,
		JoinSpreadTicks: 25,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res.AvgPrepareS2()
}
