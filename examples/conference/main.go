// Conference: the paper's motivating scenario — a video conference where
// "every member can become the streaming source but there is usually only
// one source (that is the speaker) at a time" (Section 1).
//
// Five speakers take the floor in turn — a single scenario with four
// serial hand-off events in ONE live mesh (the scenario engine's whole
// point: before it, each hand-off had to be faked as a separate
// simulation). Every hand-off is a measured source switch with its own
// metrics block; the example compares the fast and normal algorithms
// hand-off by hand-off, plus the parallel-source rate split (the paper's
// future-work extension) for a panel segment where two speakers overlap.
//
//	go run ./examples/conference
package main

import (
	"fmt"
	"log"

	"gossipstream/internal/core"
	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
	"gossipstream/internal/stats"
)

const members = 400

func main() {
	fmt.Printf("conference with %d members, 5 speakers in turn\n\n", members)

	sc := &scenario.Scenario{
		Name:    "conference",
		Desc:    "five speakers take the floor in turn",
		Nodes:   members,
		M:       5,
		Seed:    3,
		First:   3, // speaker 3 opens the conference
		Spread:  25,
		Horizon: 110,
		Events: []sim.Event{
			// The floor then passes four times.
			sim.SwitchAt(40, 41),
			sim.SwitchAt(150, 97),
			sim.SwitchAt(260, 155),
			sim.SwitchAt(370, 289),
		},
	}
	fast := run(sc, sim.Fast)
	normal := run(sc, sim.Normal)

	fmt.Println("hand-off            fast(s)  normal(s)  reduction")
	var fastTotal, normalTotal float64
	for i, fw := range fast.Windows {
		nw := normal.Windows[i]
		fp, np := fw.AvgPrepareS2(), nw.AvgPrepareS2()
		fmt.Printf("speaker %3d -> %3d  %7.2f  %9.2f  %8.1f%%\n",
			fw.OldSource, fw.NewSource, fp, np, stats.ReductionRatio(np, fp)*100)
		fastTotal += fp
		normalTotal += np
	}
	fmt.Printf("total switching     %7.2f  %9.2f  %8.1f%%\n\n",
		fastTotal, normalTotal, stats.ReductionRatio(normalTotal, fastTotal)*100)

	// Panel segment: two speakers live at once. The serial switch model no
	// longer applies; the parallel extension splits a listener's inbound
	// across both live streams by equalizing deadline lateness.
	fmt.Println("panel segment: two live speakers, one listener with I=15 seg/s")
	demands := []core.ParallelDemand{
		{Backlog: 80, Deadline: 6, Supply: 9},  // main camera, behind
		{Backlog: 30, Deadline: 8, Supply: 12}, // slides stream
	}
	rates, err := core.ParallelSplit(15, demands)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range rates {
		fmt.Printf("  stream %d: backlog=%3.0f due in %2.0fs supply<=%2.0f -> allocated %.2f seg/s\n",
			i+1, demands[i].Backlog, demands[i].Deadline, demands[i].Supply, r)
	}
	fmt.Printf("  worst lateness: %.2f s\n", core.ParallelLateness(rates, demands))
}

// run executes the conference scenario under one scheduler.
func run(sc *scenario.Scenario, factory sim.AlgorithmFactory) *sim.Result {
	res, err := sc.Run(factory)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Windows) != len(sc.Events) {
		log.Fatalf("expected %d hand-off windows, got %d", len(sc.Events), len(res.Windows))
	}
	return res
}
