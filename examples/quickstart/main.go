// Quickstart: the smallest end-to-end use of gossipstream.
//
// It builds a 300-node gossip streaming overlay, runs one source switch
// under the paper's fast switch algorithm and under the normal baseline,
// and prints the headline comparison — the 60-second version of the
// paper's evaluation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gossipstream/internal/overlay"
	"gossipstream/internal/sim"
	"gossipstream/internal/trace"
)

func main() {
	// 1. A Gnutella-like overlay trace, augmented so every node holds
	//    M=5 neighbors (the paper's Section 5.1 preparation).
	tr := trace.Synthesize("quickstart", 300, 1, 42)
	g, err := tr.Graph()
	if err != nil {
		log.Fatal(err)
	}
	overlay.AugmentMinDegree(g, 5, rand.New(rand.NewSource(42)))
	fmt.Printf("overlay: %d nodes, %d edges, min degree %d\n\n", g.N(), g.M(), g.MinDegree())

	// 2. Simulated source switches per algorithm, averaged over a few run
	//    seeds (a single switch is noisy: the randomly chosen new source's
	//    position in the overlay matters).
	run := func(factory sim.AlgorithmFactory, seed int64) *sim.Result {
		s, err := sim.New(sim.Config{
			Graph:        g.Clone(), // churnless here, but Clone keeps runs independent
			Seed:         seed,
			NewAlgorithm: factory,
			FirstSource:  -1,
			NewSource:    -1,
			// Everything else defaults to the paper's setup: τ=1 s, p=10,
			// Q=10, Qs=50, B=600, heterogeneous inbound with mean 15.
			SharedOutbound:  true,
			WarmupTicks:     40,
			JoinSpreadTicks: 25,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	const seeds = 5
	var fastFin, fastPrep, normFin, normPrep, fastOv, normOv float64
	for seed := int64(0); seed < seeds; seed++ {
		fast := run(sim.Fast, seed)
		normal := run(sim.Normal, seed)
		fastFin += fast.AvgFinishS1() / seeds
		fastPrep += fast.AvgPrepareS2() / seeds
		fastOv += fast.Overhead() / seeds
		normFin += normal.AvgFinishS1() / seeds
		normPrep += normal.AvgPrepareS2() / seeds
		normOv += normal.Overhead() / seeds
	}

	// 3. The paper's headline metrics.
	fmt.Printf("averages over %d switches:\n", seeds)
	fmt.Println("                       fast     normal")
	fmt.Printf("avg finish S1 (s)   %7.2f  %9.2f\n", fastFin, normFin)
	fmt.Printf("avg prepare S2 (s)  %7.2f  %9.2f   <- the switch time\n", fastPrep, normPrep)
	fmt.Printf("overhead            %7.4f  %9.4f\n", fastOv, normOv)
	fmt.Printf("\nswitch-time reduction: %.1f%%\n", (normPrep-fastPrep)/normPrep*100)
}
