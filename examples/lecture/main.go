// Lecture: the paper's distance-education scenario. A lecturer streams to
// a large class whose members trickle in late (and must catch up on what
// they missed); afterwards a teaching assistant takes over for the Q&A —
// the source switch whose startup delay the fast algorithm minimizes.
//
// The example shows how the hand-off behaves as the class grows, and how
// the stragglers (the last nodes to prepare) fare — the tail the paper
// plots in Figure 5.
//
//	go run ./examples/lecture
package main

import (
	"fmt"
	"log"
	"math/rand"

	"gossipstream/internal/overlay"
	"gossipstream/internal/sim"
	"gossipstream/internal/stats"
	"gossipstream/internal/trace"
)

func main() {
	fmt.Println("lecture -> Q&A hand-off at growing class sizes")
	fmt.Println("class   fast avg/p95 (s)    normal avg/p95 (s)   reduction")
	for _, n := range []int{100, 300, 600} {
		fast := classRun(n, sim.Fast)
		normal := classRun(n, sim.Normal)
		fp := stats.Percentile(fast.PrepareS2Times, 95)
		np := stats.Percentile(normal.PrepareS2Times, 95)
		red := (normal.AvgPrepareS2() - fast.AvgPrepareS2()) / normal.AvgPrepareS2()
		fmt.Printf("%5d   %6.2f / %6.2f     %6.2f / %6.2f     %6.1f%%\n",
			n, fast.AvgPrepareS2(), fp, normal.AvgPrepareS2(), np, red*100)
	}

	fmt.Println("\nstraggler anatomy at N=300 (fast algorithm):")
	res := classRun(300, sim.Fast)
	s := stats.Summarize(res.PrepareS2Times)
	fmt.Printf("  prepare times: %v\n", s)
	fmt.Printf("  the Q&A could start for the median student %.1f s after the lecturer stopped;\n", s.Median)
	fmt.Printf("  the slowest straggler needed %.1f s.\n", s.Max)
}

func classRun(n int, factory sim.AlgorithmFactory) *sim.Result {
	tr := trace.Synthesize("lecture", n, 1, int64(n))
	g, err := tr.Graph()
	if err != nil {
		log.Fatal(err)
	}
	overlay.AugmentMinDegree(g, 5, rand.New(rand.NewSource(int64(n))))
	s, err := sim.New(sim.Config{
		Graph:        g,
		Seed:         int64(n) * 3,
		NewAlgorithm: factory,
		FirstSource:  -1,
		NewSource:    -1,
		// Students arrive over the first 30 of 45 warm-up periods and play
		// the lecture from its beginning — the catch-up backlog that makes
		// the hand-off hard.
		WarmupTicks:     45,
		JoinSpreadTicks: 30,
		SharedOutbound:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}
