// Package gossipstream's root benchmark harness: one testing.B entry per
// figure of the paper's evaluation (Section 5) and one per ablation from
// DESIGN.md. Each benchmark runs the corresponding experiment at a bench-
// friendly scale and reports the paper's metrics as custom units, so
//
//	go test -bench=Fig -benchmem
//
// regenerates the whole evaluation and
//
//	go test -bench=Ablation -benchmem
//
// the design-choice studies. EXPERIMENTS.md records the full-scale runs
// produced by cmd/sweep.
package gossipstream_test

import (
	"fmt"
	"runtime"
	"testing"

	"gossipstream/internal/experiment"
	"gossipstream/internal/metrics"
	"gossipstream/internal/model"
	"gossipstream/internal/scenario"
	"gossipstream/internal/sim"
)

// benchWorkload scales the paper's setup down to benchmark-iteration cost
// while preserving every protocol parameter.
func benchWorkload() experiment.Workload {
	w := experiment.Paper()
	w.Sizes = []int{300}
	w.SeedsPerSize = 1
	return w
}

func reportRows(b *testing.B, rows []metrics.SizeRow) {
	b.Helper()
	if len(rows) == 0 {
		b.Fatal("no rows")
	}
	r := rows[len(rows)-1]
	b.ReportMetric(r.FastPrepareS2, "s-fast-prepare")
	b.ReportMetric(r.NormalPrepareS2, "s-normal-prepare")
	b.ReportMetric(r.Reduction*100, "%reduction")
}

// BenchmarkFig05RatioTrackStatic regenerates Figure 5: the undelivered/
// delivered ratio tracks in a static 1000-node network (bench scale: 300).
func BenchmarkFig05RatioTrackStatic(b *testing.B) {
	w := benchWorkload()
	for i := 0; i < b.N; i++ {
		rt, err := w.RunRatioTrack(300)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rt.NormalLastFinish, "s-normal-last-finish")
		b.ReportMetric(rt.NormalLastPrep, "s-normal-last-prepare")
		b.ReportMetric(rt.FastLastPrepare, "s-fast-last-prepare")
	}
}

// BenchmarkFig06FinishPrepareStatic regenerates Figure 6: average
// finishing time of S1 and preparing time of S2 per overlay size.
func BenchmarkFig06FinishPrepareStatic(b *testing.B) {
	w := benchWorkload()
	for i := 0; i < b.N; i++ {
		rows, err := w.RunSizeSweep()
		if err != nil {
			b.Fatal(err)
		}
		r := rows[len(rows)-1]
		b.ReportMetric(r.FastFinishS1, "s-fast-finish")
		b.ReportMetric(r.NormalFinishS1, "s-normal-finish")
		b.ReportMetric(r.FastPrepareS2, "s-fast-prepare")
		b.ReportMetric(r.NormalPrepareS2, "s-normal-prepare")
	}
}

// BenchmarkFig07SwitchTimeStatic regenerates Figure 7: average switch time
// and the reduction ratio.
func BenchmarkFig07SwitchTimeStatic(b *testing.B) {
	w := benchWorkload()
	for i := 0; i < b.N; i++ {
		rows, err := w.RunSizeSweep()
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkFig08OverheadStatic regenerates Figure 8: communication
// overhead (control bits / data bits).
func BenchmarkFig08OverheadStatic(b *testing.B) {
	w := benchWorkload()
	for i := 0; i < b.N; i++ {
		rows, err := w.RunSizeSweep()
		if err != nil {
			b.Fatal(err)
		}
		r := rows[len(rows)-1]
		b.ReportMetric(r.FastOverhead*100, "%fast-overhead")
		b.ReportMetric(r.NormalOverhead*100, "%normal-overhead")
	}
}

// BenchmarkFig09RatioTrackDynamic regenerates Figure 9 (ratio tracks under
// 5% churn per period).
func BenchmarkFig09RatioTrackDynamic(b *testing.B) {
	w := benchWorkload()
	w.Churn = true
	for i := 0; i < b.N; i++ {
		rt, err := w.RunRatioTrack(300)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rt.FastLastPrepare, "s-fast-last-prepare")
		b.ReportMetric(rt.NormalLastPrep, "s-normal-last-prepare")
	}
}

// BenchmarkFig10FinishPrepareDynamic regenerates Figure 10.
func BenchmarkFig10FinishPrepareDynamic(b *testing.B) {
	w := benchWorkload()
	w.Churn = true
	for i := 0; i < b.N; i++ {
		rows, err := w.RunSizeSweep()
		if err != nil {
			b.Fatal(err)
		}
		r := rows[len(rows)-1]
		b.ReportMetric(r.FastFinishS1, "s-fast-finish")
		b.ReportMetric(r.NormalFinishS1, "s-normal-finish")
	}
}

// BenchmarkFig11SwitchTimeDynamic regenerates Figure 11.
func BenchmarkFig11SwitchTimeDynamic(b *testing.B) {
	w := benchWorkload()
	w.Churn = true
	for i := 0; i < b.N; i++ {
		rows, err := w.RunSizeSweep()
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rows)
	}
}

// BenchmarkFig12OverheadDynamic regenerates Figure 12.
func BenchmarkFig12OverheadDynamic(b *testing.B) {
	w := benchWorkload()
	w.Churn = true
	for i := 0; i < b.N; i++ {
		rows, err := w.RunSizeSweep()
		if err != nil {
			b.Fatal(err)
		}
		r := rows[len(rows)-1]
		b.ReportMetric(r.FastOverhead*100, "%fast-overhead")
		b.ReportMetric(r.NormalOverhead*100, "%normal-overhead")
	}
}

// BenchmarkModelOptimalSplit measures the closed-form Section 3 solution —
// the per-period cost every node pays to re-solve eq. (4).
func BenchmarkModelOptimalSplit(b *testing.B) {
	p := model.Params{Q: 10, Q1: 150, Q2: 50, P: 10, I: 15}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.ConstrainedSplit(12, 4)
	}
}

// BenchmarkAblationRarity compares eq. (8) rarity against the traditional
// 1/n form the paper argues against.
func BenchmarkAblationRarity(b *testing.B) {
	w := benchWorkload()
	variants := experiment.PriorityVariants()
	ab := experiment.Ablation{Workload: w, N: 300, Baseline: "normal",
		Variants: []experiment.NamedFactory{variants[0], variants[1], variants[2]}}
	for i := 0; i < b.N; i++ {
		rows, err := ab.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].PrepareS2, "s-eq8-prepare")
		b.ReportMetric(rows[2].PrepareS2, "s-1overN-prepare")
	}
}

// BenchmarkAblationPriority compares the eq. (9) max-combination against
// urgency-only and rarity-only scoring.
func BenchmarkAblationPriority(b *testing.B) {
	w := benchWorkload()
	variants := experiment.PriorityVariants()
	ab := experiment.Ablation{Workload: w, N: 300, Baseline: "normal",
		Variants: []experiment.NamedFactory{variants[0], variants[1], variants[3], variants[4]}}
	for i := 0; i < b.N; i++ {
		rows, err := ab.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].PrepareS2, "s-max-prepare")
		b.ReportMetric(rows[2].PrepareS2, "s-urgency-prepare")
		b.ReportMetric(rows[3].PrepareS2, "s-rarity-prepare")
	}
}

// BenchmarkAblationRateSplit isolates the optimal I1/I2 split (Section 4's
// four cases) from the rest of the fast algorithm.
func BenchmarkAblationRateSplit(b *testing.B) {
	w := benchWorkload()
	ab := experiment.Ablation{Workload: w, N: 300, Baseline: "normal",
		Variants: experiment.SplitVariants()}
	for i := 0; i < b.N; i++ {
		rows, err := ab.Run()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[1].PrepareS2, "s-with-split")
		b.ReportMetric(rows[2].PrepareS2, "s-no-split")
	}
}

// BenchmarkAblationNeighborCount probes the paper's "M=5 is usually a good
// practical choice" claim.
func BenchmarkAblationNeighborCount(b *testing.B) {
	w := benchWorkload()
	for i := 0; i < b.N; i++ {
		rows, ms, err := experiment.NeighborCountSweep(w, 300, []int{3, 5, 8})
		if err != nil {
			b.Fatal(err)
		}
		for j, r := range rows {
			b.ReportMetric(r.FastPrepareS2, "s-prepare-M"+string(rune('0'+ms[j])))
		}
	}
}

// BenchmarkAblationStartupThreshold sweeps Qs, the number of new-source
// segments required before playback starts.
func BenchmarkAblationStartupThreshold(b *testing.B) {
	w := benchWorkload()
	for i := 0; i < b.N; i++ {
		rows, _, err := experiment.StartupThresholdSweep(w, 300, []int{25, 50})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].FastPrepareS2, "s-prepare-Qs25")
		b.ReportMetric(rows[1].FastPrepareS2, "s-prepare-Qs50")
	}
}

// BenchmarkAblationSubstrate contrasts the shared-outbound substrate with
// the per-link model and the prefetch-disabled mesh.
func BenchmarkAblationSubstrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sub := range []struct {
			name  string
			apply func(*experiment.Workload)
		}{
			{"shared", func(*experiment.Workload) {}},
			{"perlink", func(w *experiment.Workload) { w.PerLinkOutbound = true }},
			{"noprefetch", func(w *experiment.Workload) { w.DisablePrefetch = true }},
		} {
			w := benchWorkload()
			sub.apply(&w)
			rows, err := w.RunSizeSweep()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(rows[0].FastFinishS1, "s-finish-"+sub.name)
		}
	}
}

// BenchmarkSimulationTick measures raw simulator throughput: one full
// scheduling period of a 1000-node system (all phases: maps, planning,
// contention, transfers, playback) on the serial engine.
func BenchmarkSimulationTick(b *testing.B) {
	benchTicks(b, 1000, 1)
}

// BenchmarkScenario measures the scenario engine end to end: the
// serial-handoff-chain library scenario (three measured switches in one
// live mesh) at N=200 on the serial and the parallel engine. One op is a
// whole multi-window run; the windows' mean switch time is reported so
// the benchmark doubles as a metrics sanity check.
func BenchmarkScenario(b *testing.B) {
	for vi, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		parallel := vi == 1
		b.Run(fmt.Sprintf("serial-handoff-chain/workers=%d", workers), func(b *testing.B) {
			skipDegenerateParallel(b, parallel)
			sc := scenario.SerialHandoffChain().Scaled(200)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg, err := sc.Config(sim.Fast)
				if err != nil {
					b.Fatal(err)
				}
				cfg.Workers = workers
				s, err := sim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.Run()
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Windows) != 3 {
					b.Fatalf("windows = %d, want 3", len(res.Windows))
				}
				var prep float64
				for _, w := range res.Windows {
					prep += w.AvgPrepareS2()
				}
				b.ReportMetric(prep/3, "s-prepare-mean")
			}
		})
	}
}

// BenchmarkEngineParallel contrasts the serial engine (workers=1) with
// the parallel engine (workers=GOMAXPROCS) at three scales, n=100000
// being the headline. The engine's determinism contract makes the runs
// bit-identical — only wall-clock differs — so ns/op across the workers
// variants IS the speedup measurement. cmd/bench runs the same
// workloads at fixed iteration counts and appends each capture to the
// BENCH_engine.json trajectory.
func BenchmarkEngineParallel(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		for vi, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			parallel := vi == 1
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				skipDegenerateParallel(b, parallel)
				benchTicks(b, n, workers)
			})
		}
	}
}

// skipDegenerateParallel skips the workers=GOMAXPROCS variant on a
// single-CPU runner, where it degenerates to a re-run of the serial
// engine: the duplicate numbers would read as a measured speedup of 1.0
// when no parallel execution ever happened (cmd/bench records the same
// condition as an explicit skipped row in BENCH_engine.json).
func skipDegenerateParallel(b *testing.B, parallelVariant bool) {
	b.Helper()
	if parallelVariant && runtime.GOMAXPROCS(0) == 1 {
		b.Skip("GOMAXPROCS=1: the parallel variant degenerates to the serial engine; run on a multi-core machine to measure speedup")
	}
}

// benchTicks times b.N warm-up scheduling periods of an n-node system at
// the given engine concurrency.
func benchTicks(b *testing.B, n, workers int) {
	b.Helper()
	w := experiment.Paper()
	g, err := w.Topology(n, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{
		Graph: g, Seed: 1, NewAlgorithm: sim.Fast,
		FirstSource: -1, NewSource: -1, SharedOutbound: true,
		WarmupTicks: b.N, HorizonTicks: 1, JoinSpreadTicks: 10,
		Workers: workers,
	}
	s, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
